file(REMOVE_RECURSE
  "CMakeFiles/stateless_engine_test.dir/stateless_engine_test.cc.o"
  "CMakeFiles/stateless_engine_test.dir/stateless_engine_test.cc.o.d"
  "stateless_engine_test"
  "stateless_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stateless_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

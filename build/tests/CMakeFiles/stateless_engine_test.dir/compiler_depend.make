# Empty compiler generated dependencies file for stateless_engine_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for pensieve_engine_test.
# This may be replaced when dependencies are built.

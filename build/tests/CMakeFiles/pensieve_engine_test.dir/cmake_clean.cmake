file(REMOVE_RECURSE
  "CMakeFiles/pensieve_engine_test.dir/pensieve_engine_test.cc.o"
  "CMakeFiles/pensieve_engine_test.dir/pensieve_engine_test.cc.o.d"
  "pensieve_engine_test"
  "pensieve_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for attention_kernel_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/attention_kernel_test.dir/attention_kernel_test.cc.o"
  "CMakeFiles/attention_kernel_test.dir/attention_kernel_test.cc.o.d"
  "attention_kernel_test"
  "attention_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

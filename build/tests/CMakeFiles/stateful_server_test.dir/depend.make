# Empty dependencies file for stateful_server_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stateful_server_test.dir/stateful_server_test.cc.o"
  "CMakeFiles/stateful_server_test.dir/stateful_server_test.cc.o.d"
  "stateful_server_test"
  "stateful_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stateful_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

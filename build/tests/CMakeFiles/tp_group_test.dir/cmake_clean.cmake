file(REMOVE_RECURSE
  "CMakeFiles/tp_group_test.dir/tp_group_test.cc.o"
  "CMakeFiles/tp_group_test.dir/tp_group_test.cc.o.d"
  "tp_group_test"
  "tp_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

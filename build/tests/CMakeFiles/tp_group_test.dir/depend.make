# Empty dependencies file for tp_group_test.
# This may be replaced when dependencies are built.

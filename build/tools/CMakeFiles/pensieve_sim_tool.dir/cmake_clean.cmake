file(REMOVE_RECURSE
  "CMakeFiles/pensieve_sim_tool.dir/pensieve_sim.cc.o"
  "CMakeFiles/pensieve_sim_tool.dir/pensieve_sim.cc.o.d"
  "pensieve_sim"
  "pensieve_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pensieve_sim_tool.
# This may be replaced when dependencies are built.

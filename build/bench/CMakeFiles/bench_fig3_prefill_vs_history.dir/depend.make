# Empty dependencies file for bench_fig3_prefill_vs_history.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_prefill_vs_history.dir/bench_fig3_prefill_vs_history.cc.o"
  "CMakeFiles/bench_fig3_prefill_vs_history.dir/bench_fig3_prefill_vs_history.cc.o.d"
  "bench_fig3_prefill_vs_history"
  "bench_fig3_prefill_vs_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_prefill_vs_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_kernel.cc" "bench/CMakeFiles/bench_fig12_kernel.dir/bench_fig12_kernel.cc.o" "gcc" "bench/CMakeFiles/bench_fig12_kernel.dir/bench_fig12_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pensieve_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/pensieve_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/pensieve_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/eviction/CMakeFiles/pensieve_eviction.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pensieve_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pensieve_model.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/pensieve_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pensieve_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/pensieve_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pensieve_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pensieve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

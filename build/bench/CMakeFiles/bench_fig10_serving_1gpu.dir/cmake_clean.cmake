file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_serving_1gpu.dir/bench_fig10_serving_1gpu.cc.o"
  "CMakeFiles/bench_fig10_serving_1gpu.dir/bench_fig10_serving_1gpu.cc.o.d"
  "bench_fig10_serving_1gpu"
  "bench_fig10_serving_1gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_serving_1gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

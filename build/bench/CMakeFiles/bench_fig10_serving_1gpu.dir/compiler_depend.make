# Empty compiler generated dependencies file for bench_fig10_serving_1gpu.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_tab2_datasets.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig11_serving_4gpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_serving_4gpu.dir/bench_fig11_serving_4gpu.cc.o"
  "CMakeFiles/bench_fig11_serving_4gpu.dir/bench_fig11_serving_4gpu.cc.o.d"
  "bench_fig11_serving_4gpu"
  "bench_fig11_serving_4gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_serving_4gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

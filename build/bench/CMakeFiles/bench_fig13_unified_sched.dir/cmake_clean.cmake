file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_unified_sched.dir/bench_fig13_unified_sched.cc.o"
  "CMakeFiles/bench_fig13_unified_sched.dir/bench_fig13_unified_sched.cc.o.d"
  "bench_fig13_unified_sched"
  "bench_fig13_unified_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_unified_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

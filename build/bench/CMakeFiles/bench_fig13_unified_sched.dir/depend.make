# Empty dependencies file for bench_fig13_unified_sched.
# This may be replaced when dependencies are built.

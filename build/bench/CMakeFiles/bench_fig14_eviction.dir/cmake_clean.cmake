file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_eviction.dir/bench_fig14_eviction.cc.o"
  "CMakeFiles/bench_fig14_eviction.dir/bench_fig14_eviction.cc.o.d"
  "bench_fig14_eviction"
  "bench_fig14_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig14_eviction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_pcie_duplex.dir/bench_pcie_duplex.cc.o"
  "CMakeFiles/bench_pcie_duplex.dir/bench_pcie_duplex.cc.o.d"
  "bench_pcie_duplex"
  "bench_pcie_duplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcie_duplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_pcie_duplex.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_multi_turn_chatbot.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_multi_turn_chatbot.dir/multi_turn_chatbot.cpp.o"
  "CMakeFiles/example_multi_turn_chatbot.dir/multi_turn_chatbot.cpp.o.d"
  "multi_turn_chatbot"
  "multi_turn_chatbot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_turn_chatbot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

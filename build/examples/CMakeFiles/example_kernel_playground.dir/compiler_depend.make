# Empty compiler generated dependencies file for example_kernel_playground.
# This may be replaced when dependencies are built.

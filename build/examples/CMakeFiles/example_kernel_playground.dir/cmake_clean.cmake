file(REMOVE_RECURSE
  "CMakeFiles/example_kernel_playground.dir/kernel_playground.cpp.o"
  "CMakeFiles/example_kernel_playground.dir/kernel_playground.cpp.o.d"
  "kernel_playground"
  "kernel_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kernel_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

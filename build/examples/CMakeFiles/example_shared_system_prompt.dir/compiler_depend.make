# Empty compiler generated dependencies file for example_shared_system_prompt.
# This may be replaced when dependencies are built.

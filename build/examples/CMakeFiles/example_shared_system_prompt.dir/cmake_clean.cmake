file(REMOVE_RECURSE
  "CMakeFiles/example_shared_system_prompt.dir/shared_system_prompt.cpp.o"
  "CMakeFiles/example_shared_system_prompt.dir/shared_system_prompt.cpp.o.d"
  "shared_system_prompt"
  "shared_system_prompt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shared_system_prompt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

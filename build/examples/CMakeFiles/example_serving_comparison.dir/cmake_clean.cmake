file(REMOVE_RECURSE
  "CMakeFiles/example_serving_comparison.dir/serving_comparison.cpp.o"
  "CMakeFiles/example_serving_comparison.dir/serving_comparison.cpp.o.d"
  "serving_comparison"
  "serving_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_serving_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_serving_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpensieve_model.a"
)

# Empty compiler generated dependencies file for pensieve_model.
# This may be replaced when dependencies are built.

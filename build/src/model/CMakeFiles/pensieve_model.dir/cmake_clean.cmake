file(REMOVE_RECURSE
  "CMakeFiles/pensieve_model.dir/model_config.cc.o"
  "CMakeFiles/pensieve_model.dir/model_config.cc.o.d"
  "CMakeFiles/pensieve_model.dir/transformer.cc.o"
  "CMakeFiles/pensieve_model.dir/transformer.cc.o.d"
  "libpensieve_model.a"
  "libpensieve_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pensieve_scheduler.
# This may be replaced when dependencies are built.

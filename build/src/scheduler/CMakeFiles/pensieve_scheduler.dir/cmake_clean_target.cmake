file(REMOVE_RECURSE
  "libpensieve_scheduler.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pensieve_scheduler.dir/cache_coordinator.cc.o"
  "CMakeFiles/pensieve_scheduler.dir/cache_coordinator.cc.o.d"
  "CMakeFiles/pensieve_scheduler.dir/step_cost.cc.o"
  "CMakeFiles/pensieve_scheduler.dir/step_cost.cc.o.d"
  "libpensieve_scheduler.a"
  "libpensieve_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pensieve_core.
# This may be replaced when dependencies are built.

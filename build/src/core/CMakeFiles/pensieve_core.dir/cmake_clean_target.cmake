file(REMOVE_RECURSE
  "libpensieve_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pensieve_core.dir/experiment.cc.o"
  "CMakeFiles/pensieve_core.dir/experiment.cc.o.d"
  "CMakeFiles/pensieve_core.dir/stateful_server.cc.o"
  "CMakeFiles/pensieve_core.dir/stateful_server.cc.o.d"
  "libpensieve_core.a"
  "libpensieve_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pensieve_kernels.dir/attention.cc.o"
  "CMakeFiles/pensieve_kernels.dir/attention.cc.o.d"
  "libpensieve_kernels.a"
  "libpensieve_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

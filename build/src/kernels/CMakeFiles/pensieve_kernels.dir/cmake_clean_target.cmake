file(REMOVE_RECURSE
  "libpensieve_kernels.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/attention.cc" "src/kernels/CMakeFiles/pensieve_kernels.dir/attention.cc.o" "gcc" "src/kernels/CMakeFiles/pensieve_kernels.dir/attention.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pensieve_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/pensieve_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pensieve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

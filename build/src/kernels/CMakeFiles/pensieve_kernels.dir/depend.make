# Empty dependencies file for pensieve_kernels.
# This may be replaced when dependencies are built.

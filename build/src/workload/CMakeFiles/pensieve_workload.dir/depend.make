# Empty dependencies file for pensieve_workload.
# This may be replaced when dependencies are built.

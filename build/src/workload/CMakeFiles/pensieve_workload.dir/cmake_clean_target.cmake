file(REMOVE_RECURSE
  "libpensieve_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pensieve_workload.dir/dataset.cc.o"
  "CMakeFiles/pensieve_workload.dir/dataset.cc.o.d"
  "CMakeFiles/pensieve_workload.dir/trace.cc.o"
  "CMakeFiles/pensieve_workload.dir/trace.cc.o.d"
  "CMakeFiles/pensieve_workload.dir/trace_io.cc.o"
  "CMakeFiles/pensieve_workload.dir/trace_io.cc.o.d"
  "libpensieve_workload.a"
  "libpensieve_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpensieve_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pensieve_common.dir/flags.cc.o"
  "CMakeFiles/pensieve_common.dir/flags.cc.o.d"
  "CMakeFiles/pensieve_common.dir/interp.cc.o"
  "CMakeFiles/pensieve_common.dir/interp.cc.o.d"
  "CMakeFiles/pensieve_common.dir/logging.cc.o"
  "CMakeFiles/pensieve_common.dir/logging.cc.o.d"
  "CMakeFiles/pensieve_common.dir/rng.cc.o"
  "CMakeFiles/pensieve_common.dir/rng.cc.o.d"
  "CMakeFiles/pensieve_common.dir/stats.cc.o"
  "CMakeFiles/pensieve_common.dir/stats.cc.o.d"
  "CMakeFiles/pensieve_common.dir/status.cc.o"
  "CMakeFiles/pensieve_common.dir/status.cc.o.d"
  "libpensieve_common.a"
  "libpensieve_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

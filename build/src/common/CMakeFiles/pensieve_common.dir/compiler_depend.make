# Empty compiler generated dependencies file for pensieve_common.
# This may be replaced when dependencies are built.

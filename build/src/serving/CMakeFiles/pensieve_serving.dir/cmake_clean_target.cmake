file(REMOVE_RECURSE
  "libpensieve_serving.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pensieve_serving.dir/driver.cc.o"
  "CMakeFiles/pensieve_serving.dir/driver.cc.o.d"
  "CMakeFiles/pensieve_serving.dir/metrics.cc.o"
  "CMakeFiles/pensieve_serving.dir/metrics.cc.o.d"
  "CMakeFiles/pensieve_serving.dir/pensieve_engine.cc.o"
  "CMakeFiles/pensieve_serving.dir/pensieve_engine.cc.o.d"
  "CMakeFiles/pensieve_serving.dir/stateless_engine.cc.o"
  "CMakeFiles/pensieve_serving.dir/stateless_engine.cc.o.d"
  "CMakeFiles/pensieve_serving.dir/telemetry.cc.o"
  "CMakeFiles/pensieve_serving.dir/telemetry.cc.o.d"
  "libpensieve_serving.a"
  "libpensieve_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pensieve_serving.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pensieve_tensor.dir/ops.cc.o"
  "CMakeFiles/pensieve_tensor.dir/ops.cc.o.d"
  "CMakeFiles/pensieve_tensor.dir/tensor.cc.o"
  "CMakeFiles/pensieve_tensor.dir/tensor.cc.o.d"
  "libpensieve_tensor.a"
  "libpensieve_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

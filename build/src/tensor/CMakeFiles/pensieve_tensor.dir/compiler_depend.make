# Empty compiler generated dependencies file for pensieve_tensor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpensieve_tensor.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvcache/block.cc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/block.cc.o" "gcc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/block.cc.o.d"
  "/root/repo/src/kvcache/block_allocator.cc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/block_allocator.cc.o" "gcc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/block_allocator.cc.o.d"
  "/root/repo/src/kvcache/context_state.cc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/context_state.cc.o" "gcc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/context_state.cc.o.d"
  "/root/repo/src/kvcache/kv_pool.cc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/kv_pool.cc.o" "gcc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/kv_pool.cc.o.d"
  "/root/repo/src/kvcache/two_tier_cache.cc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/two_tier_cache.cc.o" "gcc" "src/kvcache/CMakeFiles/pensieve_kvcache.dir/two_tier_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pensieve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/pensieve_kvcache.dir/block.cc.o"
  "CMakeFiles/pensieve_kvcache.dir/block.cc.o.d"
  "CMakeFiles/pensieve_kvcache.dir/block_allocator.cc.o"
  "CMakeFiles/pensieve_kvcache.dir/block_allocator.cc.o.d"
  "CMakeFiles/pensieve_kvcache.dir/context_state.cc.o"
  "CMakeFiles/pensieve_kvcache.dir/context_state.cc.o.d"
  "CMakeFiles/pensieve_kvcache.dir/kv_pool.cc.o"
  "CMakeFiles/pensieve_kvcache.dir/kv_pool.cc.o.d"
  "CMakeFiles/pensieve_kvcache.dir/two_tier_cache.cc.o"
  "CMakeFiles/pensieve_kvcache.dir/two_tier_cache.cc.o.d"
  "libpensieve_kvcache.a"
  "libpensieve_kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pensieve_kvcache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpensieve_kvcache.a"
)

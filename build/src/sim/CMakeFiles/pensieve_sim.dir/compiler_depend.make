# Empty compiler generated dependencies file for pensieve_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpensieve_sim.a"
)

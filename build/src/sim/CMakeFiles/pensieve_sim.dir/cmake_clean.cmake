file(REMOVE_RECURSE
  "CMakeFiles/pensieve_sim.dir/cost_model.cc.o"
  "CMakeFiles/pensieve_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/pensieve_sim.dir/hardware.cc.o"
  "CMakeFiles/pensieve_sim.dir/hardware.cc.o.d"
  "CMakeFiles/pensieve_sim.dir/pcie_link.cc.o"
  "CMakeFiles/pensieve_sim.dir/pcie_link.cc.o.d"
  "CMakeFiles/pensieve_sim.dir/tp_group.cc.o"
  "CMakeFiles/pensieve_sim.dir/tp_group.cc.o.d"
  "libpensieve_sim.a"
  "libpensieve_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

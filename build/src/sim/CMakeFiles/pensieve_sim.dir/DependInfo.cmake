
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/pensieve_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/pensieve_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/hardware.cc" "src/sim/CMakeFiles/pensieve_sim.dir/hardware.cc.o" "gcc" "src/sim/CMakeFiles/pensieve_sim.dir/hardware.cc.o.d"
  "/root/repo/src/sim/pcie_link.cc" "src/sim/CMakeFiles/pensieve_sim.dir/pcie_link.cc.o" "gcc" "src/sim/CMakeFiles/pensieve_sim.dir/pcie_link.cc.o.d"
  "/root/repo/src/sim/tp_group.cc" "src/sim/CMakeFiles/pensieve_sim.dir/tp_group.cc.o" "gcc" "src/sim/CMakeFiles/pensieve_sim.dir/tp_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pensieve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pensieve_model.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/pensieve_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pensieve_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/pensieve_kvcache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/pensieve_eviction.dir/cost_estimator.cc.o"
  "CMakeFiles/pensieve_eviction.dir/cost_estimator.cc.o.d"
  "CMakeFiles/pensieve_eviction.dir/policy.cc.o"
  "CMakeFiles/pensieve_eviction.dir/policy.cc.o.d"
  "libpensieve_eviction.a"
  "libpensieve_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pensieve_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

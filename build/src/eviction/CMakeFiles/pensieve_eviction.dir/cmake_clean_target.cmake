file(REMOVE_RECURSE
  "libpensieve_eviction.a"
)

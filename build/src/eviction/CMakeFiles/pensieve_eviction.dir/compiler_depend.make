# Empty compiler generated dependencies file for pensieve_eviction.
# This may be replaced when dependencies are built.

// Experiment assembly helpers shared by the benchmark binaries.
//
// Builds each evaluated system (Pensieve, Pensieve GPU-cache-only, vLLM,
// TensorRT-LLM) with the paper's configuration — 40 GB of KV cache per GPU
// for every system — and runs request-rate sweeps that produce the
// latency-vs-throughput curves of Figures 10, 11, 13, 14 and 15.

#ifndef PENSIEVE_SRC_CORE_EXPERIMENT_H_
#define PENSIEVE_SRC_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/serving/driver.h"
#include "src/serving/engine.h"
#include "src/serving/pensieve_engine.h"
#include "src/serving/stateless_engine.h"
#include "src/sim/cost_model.h"
#include "src/workload/trace.h"

namespace pensieve {

enum class SystemKind {
  kPensieve,
  kPensieveGpuOnly,  // "Pensieve (GPU cache)" variant
  kVllm,
  kTensorRtLlm,
};

const char* SystemKindName(SystemKind kind);

// Dense-operator speedup attributed to TensorRT-LLM's ahead-of-time graph
// compilation relative to the PyTorch-backend systems.
inline constexpr double kTensorRtDenseSpeedup = 1.25;

// KV-cache capacity in tokens that fits the per-GPU cache budget.
int64_t GpuKvCacheTokens(const ModelConfig& model, const HardwareSpec& hw);
int64_t CpuKvCacheTokens(const ModelConfig& model, const HardwareSpec& hw);

struct EngineOverrides {
  int64_t max_batch_tokens = 4096;
  int64_t max_running = 256;
  EvictionPolicyKind policy = EvictionPolicyKind::kRetentionValue;
  bool unified_scheduling = true;
  bool pipelined_restore = true;
  bool prioritize_swap_in = true;
  // Cross-conversation shared-prefix dedup (Pensieve variants). Harmless on
  // traces without template metadata: no trie traffic, bit-identical output.
  bool enable_prefix_sharing = true;
  // Scales both cache tiers (useful for stress tests); 1.0 = paper setup.
  double cache_scale = 1.0;
  // Additional multiplier applied to the CPU tier only, on top of
  // cache_scale. Flash-tier benchmarks shrink the CPU tier below the working
  // set while keeping the GPU large enough for every conversation.
  double cpu_cache_scale = 1.0;
  std::string name_suffix;
  // PCIe KV-transfer fault injection (Pensieve variants only; the stateless
  // baselines never move KV over the link). All rates zero = off.
  LinkFaultProfile pcie_fault_profile;
  LinkRetryPolicy fault_retry;
  uint64_t fault_seed = 0;
  // Flash (SSD) tier behind the CPU tier (full Pensieve variant only). The
  // capacity is in GiB of KV data and is deliberately NOT scaled by
  // cache_scale: stress tests shrink the GPU/CPU tiers to force traffic into
  // a fixed-size flash. 0 disables the tier.
  double ssd_capacity_gb = 0.0;
  FlashAlgoKind ssd_algo = FlashAlgoKind::kLru;
  int64_t ssd_segment_blocks = 64;
  LinkFaultProfile ssd_fault_profile;
  // Int8-quantize KV blocks at the GPU boundary (Pensieve variants only).
  // CPU/SSD tiers hold ~2x the conversations and off-GPU transfers move the
  // compressed bytes; GPU-resident KV stays fp32.
  bool kv_quant = false;
  // Cross-replica CPU-tier spill (cluster runs only, DESIGN.md §14): record
  // CPU-pressure drops as peer offers for the cluster driver to place.
  bool peer_spill = false;
};

std::unique_ptr<Engine> MakeEngine(SystemKind kind, const GpuCostModel& cost_model,
                                   const EngineOverrides& overrides = {});

struct SweepPoint {
  double conversation_rate = 0.0;
  ServingSummary summary;
};

struct SweepOptions {
  int64_t num_conversations = 300;
  // When > 0, the conversation count is raised to rate * target_arrival_span
  // so that the Poisson arrival process spans at least this many seconds at
  // every swept rate — the steady-state measurement window needs the
  // arrival span to dominate individual conversations' think-time chains.
  double target_arrival_span = 900.0;
  double mean_think_time = 60.0;
  uint64_t seed = 42;
  EngineOverrides overrides;
};

// Runs one experiment per rate; each rate gets a fresh engine and trace.
std::vector<SweepPoint> RateSweep(SystemKind kind, const GpuCostModel& cost_model,
                                  const DatasetProfile& profile,
                                  const std::vector<double>& conversation_rates,
                                  const SweepOptions& options = {});

// Prints "rate  throughput(req/s)  p90-norm-latency(ms/token)  ..." rows.
void PrintSweep(const std::string& title, const std::vector<SweepPoint>& points);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_CORE_EXPERIMENT_H_

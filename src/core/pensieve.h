// Umbrella header for the Pensieve library.
//
// Pensieve is a stateful LLM serving system (EuroSys '25): it caches the KV
// state of multi-turn conversations in a two-tier GPU/CPU cache so follow-up
// requests only process their new prompt tokens. This header exposes:
//
//  * StatefulLlmServer  — the embeddable stateful serving API (real
//    numerics over the CPU substrate).
//  * PensieveEngine / StatelessEngine + RunServingExperiment — the
//    simulated-hardware serving engines and experiment driver used to
//    reproduce the paper's evaluation.
//  * RunClusterExperiment — the multi-replica serving layer: a router
//    (round-robin / least-loaded / session-affinity) in front of N engines
//    with KV migration over a simulated inter-replica link.
//  * Workload generation, eviction policies, cost models and the paged
//    two-tier KV cache they are built on.

#ifndef PENSIEVE_SRC_CORE_PENSIEVE_H_
#define PENSIEVE_SRC_CORE_PENSIEVE_H_

#include "src/cluster/cluster_driver.h"
#include "src/cluster/router.h"
#include "src/core/experiment.h"
#include "src/core/stateful_server.h"
#include "src/eviction/policy.h"
#include "src/kernels/attention.h"
#include "src/kvcache/two_tier_cache.h"
#include "src/model/model_config.h"
#include "src/model/transformer.h"
#include "src/serving/driver.h"
#include "src/serving/pensieve_engine.h"
#include "src/serving/stateless_engine.h"
#include "src/sim/cost_model.h"
#include "src/tensor/ops.h"
#include "src/workload/trace.h"

#endif  // PENSIEVE_SRC_CORE_PENSIEVE_H_

// Pensieve's public stateful serving API, running real numerics.
//
// StatefulLlmServer is the embeddable form of Pensieve: a caller holds a
// conversation id and submits turns; the server keeps the conversation's KV
// state in the two-tier cache between turns and only processes new prompt
// tokens (plus any dropped prefix it must recompute). Every mechanism the
// simulated serving engine uses — paged pools, chunk swap, drop/restore,
// multi-token attention with sub-request splitting — executes for real here
// over the CPU tensor substrate, which is how the test suite proves that
// stateful serving is output-equivalent to stateless recomputation.

#ifndef PENSIEVE_SRC_CORE_STATEFUL_SERVER_H_
#define PENSIEVE_SRC_CORE_STATEFUL_SERVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/eviction/policy.h"
#include "src/kvcache/two_tier_cache.h"
#include "src/model/model_config.h"
#include "src/model/transformer.h"
#include "src/scheduler/cache_coordinator.h"

namespace pensieve {

struct StatefulServerConfig {
  ModelConfig model;  // must be a tiny preset for numeric execution
  int64_t block_size = 16;
  int64_t num_gpu_blocks = 128;
  int64_t num_cpu_blocks = 512;
  uint64_t weight_seed = 1234;
  EvictionPolicyKind policy = EvictionPolicyKind::kRetentionValue;
  // Weight storage for the numeric transformer: int8 runs the prepacked
  // int8 microkernels (per-column symmetric scales, fp32 accumulation).
  QuantMode weight_quant = QuantMode::kFp32;
  // Int8-quantize KV blocks demoted to the CPU tier (GPU KV stays fp32).
  bool kv_quant = false;
};

class StatefulLlmServer {
 public:
  explicit StatefulLlmServer(const StatefulServerConfig& config);

  // Processes one conversation turn: the new prompt is appended to the
  // conversation context and `max_new_tokens` tokens are generated greedily.
  // History KV is reused from the cache; dropped prefixes are transparently
  // recomputed from the raw history.
  StatusOr<std::vector<int32_t>> Chat(int64_t conversation_id,
                                      const std::vector<int32_t>& prompt,
                                      int64_t max_new_tokens);

  // Releases all cached state for a conversation.
  void EndConversation(int64_t conversation_id);

  // --- Shared system prompts (paper footnote 3) --------------------------
  // A chatbot deployment usually prepends one system prompt to every
  // conversation. Its KV state can be computed once, pinned in the cache,
  // and shared read-only by all conversations: Pensieve's paged attention
  // simply prepends the shared blocks to each conversation's block table.
  //
  // Registers a shared prefix and computes its KV once. Only whole chunks
  // are shared; a trailing partial chunk's tokens are re-processed as part
  // of each conversation's first prompt (keeping block tables aligned).
  // Returns a prefix id.
  StatusOr<int64_t> RegisterSharedPrefix(const std::vector<int32_t>& tokens);
  // Releases a shared prefix (conversations started from it must be ended
  // first; enforced by a pin count).
  Status UnregisterSharedPrefix(int64_t prefix_id);
  // Starts a conversation whose context begins with the shared prefix. Must
  // be called before the conversation's first Chat.
  Status StartConversationWithPrefix(int64_t conversation_id, int64_t prefix_id);
  // Tokens of the prefix that are served from the shared cache.
  int64_t SharedPrefixLen(int64_t prefix_id) const;

  // --- Cache-pressure knobs (tests / demos) ------------------------------
  // Moves every GPU-resident chunk of the conversation to the CPU tier.
  Status SwapOutConversation(int64_t conversation_id);
  // Drops the first `num_chunks` chunks entirely (forcing recomputation on
  // the next turn).
  Status DropLeadingChunks(int64_t conversation_id, int64_t num_chunks);

  const TwoTierKvCache& cache() const { return cache_; }
  const Transformer& model() const { return *model_; }
  // Raw token history (prompts + responses) of a conversation.
  const std::vector<int32_t>& History(int64_t conversation_id) const;

 private:
  // Advances the clock used for eviction recency.
  double Tick() { return logical_time_ += 1.0; }

  struct SharedPrefix {
    int64_t cache_key = 0;           // reserved conversation key in the cache
    std::vector<int32_t> tokens;     // full prefix (raw)
    int64_t shared_len = 0;          // whole-chunk portion served from cache
    int32_t attached_conversations = 0;
  };
  // Cache key reserved for a prefix (disjoint from user conversation ids,
  // which must be non-negative).
  static int64_t PrefixCacheKey(int64_t prefix_id) { return -(prefix_id + 1); }

  StatefulServerConfig config_;
  std::unique_ptr<Transformer> model_;
  TwoTierKvCache cache_;
  ChunkCostEstimator cost_estimator_;
  std::unique_ptr<EvictionPolicy> policy_;
  CacheCoordinator coordinator_;
  // Persistent raw-token store (paper Figure 7): the source of truth used
  // to recompute dropped context.
  std::unordered_map<int64_t, std::vector<int32_t>> history_;
  std::unordered_map<int64_t, SharedPrefix> shared_prefixes_;
  // conversation id -> prefix id, for conversations started from a prefix.
  std::unordered_map<int64_t, int64_t> conversation_prefix_;
  int64_t next_prefix_id_ = 0;
  double logical_time_ = 0.0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_CORE_STATEFUL_SERVER_H_

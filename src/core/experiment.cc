#include "src/core/experiment.h"

#include <algorithm>
#include <cstdio>

#include "src/common/logging.h"

namespace pensieve {

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kPensieve:
      return "pensieve";
    case SystemKind::kPensieveGpuOnly:
      return "pensieve-gpu-cache";
    case SystemKind::kVllm:
      return "vllm";
    case SystemKind::kTensorRtLlm:
      return "tensorrt-llm";
  }
  return "?";
}

int64_t GpuKvCacheTokens(const ModelConfig& model, const HardwareSpec& hw) {
  return hw.gpu_kv_cache_bytes / model.KvBytesPerTokenPerGpu();
}

int64_t CpuKvCacheTokens(const ModelConfig& model, const HardwareSpec& hw) {
  return hw.cpu_kv_cache_bytes / model.KvBytesPerTokenPerGpu();
}

std::unique_ptr<Engine> MakeEngine(SystemKind kind, const GpuCostModel& cost_model,
                                   const EngineOverrides& overrides) {
  const ModelConfig& model = cost_model.model();
  const HardwareSpec& hw = cost_model.hardware();
  const int64_t gpu_tokens = static_cast<int64_t>(
      static_cast<double>(GpuKvCacheTokens(model, hw)) * overrides.cache_scale);
  const int64_t cpu_tokens = static_cast<int64_t>(
      static_cast<double>(CpuKvCacheTokens(model, hw)) * overrides.cache_scale *
      overrides.cpu_cache_scale);

  switch (kind) {
    case SystemKind::kPensieve:
    case SystemKind::kPensieveGpuOnly: {
      PensieveEngineOptions options;
      options.name = SystemKindName(kind) + overrides.name_suffix;
      options.block_size = kDefaultBlockSize;
      options.num_gpu_blocks = gpu_tokens / options.block_size;
      options.num_cpu_blocks = cpu_tokens / options.block_size;
      options.max_batch_tokens = overrides.max_batch_tokens;
      options.max_running = overrides.max_running;
      options.use_cpu_cache = kind == SystemKind::kPensieve;
      options.unified_scheduling = overrides.unified_scheduling;
      options.pipelined_restore = overrides.pipelined_restore;
      options.prioritize_swap_in = overrides.prioritize_swap_in;
      options.enable_prefix_sharing = overrides.enable_prefix_sharing;
      options.policy = overrides.policy;
      options.pcie_fault_profile = overrides.pcie_fault_profile;
      options.fault_retry = overrides.fault_retry;
      options.fault_seed = overrides.fault_seed;
      options.kv_quant = overrides.kv_quant;
      options.peer_spill = overrides.peer_spill;
      if (kind == SystemKind::kPensieve && overrides.ssd_capacity_gb > 0.0) {
        const int64_t ssd_tokens = static_cast<int64_t>(
            overrides.ssd_capacity_gb * 1024.0 * 1024.0 * 1024.0 /
            static_cast<double>(model.KvBytesPerTokenPerGpu()));
        options.num_ssd_blocks = ssd_tokens / options.block_size;
        options.ssd_algo = overrides.ssd_algo;
        options.ssd_segment_blocks = overrides.ssd_segment_blocks;
        options.ssd_fault_profile = overrides.ssd_fault_profile;
      }
      return std::make_unique<PensieveEngine>(cost_model, options);
    }
    case SystemKind::kVllm:
    case SystemKind::kTensorRtLlm: {
      StatelessEngineOptions options;
      options.name = SystemKindName(kind) + overrides.name_suffix;
      options.block_size = 16;
      options.num_gpu_blocks = gpu_tokens / options.block_size;
      options.max_batch_tokens = overrides.max_batch_tokens;
      options.max_running = overrides.max_running;
      options.dense_speedup =
          kind == SystemKind::kTensorRtLlm ? kTensorRtDenseSpeedup : 1.0;
      return std::make_unique<StatelessEngine>(cost_model, options);
    }
  }
  PENSIEVE_LOG_FATAL << "unknown system kind";
  return nullptr;
}

std::vector<SweepPoint> RateSweep(SystemKind kind, const GpuCostModel& cost_model,
                                  const DatasetProfile& profile,
                                  const std::vector<double>& conversation_rates,
                                  const SweepOptions& options) {
  std::vector<SweepPoint> points;
  points.reserve(conversation_rates.size());
  for (double rate : conversation_rates) {
    TraceOptions trace_options;
    trace_options.num_conversations = options.num_conversations;
    if (options.target_arrival_span > 0.0) {
      trace_options.num_conversations =
          std::max(trace_options.num_conversations,
                   static_cast<int64_t>(rate * options.target_arrival_span));
    }
    trace_options.conversation_rate = rate;
    trace_options.mean_think_time = options.mean_think_time;
    trace_options.seed = options.seed;
    WorkloadTrace trace(profile, trace_options);
    std::unique_ptr<Engine> engine = MakeEngine(kind, cost_model, options.overrides);
    SweepPoint point;
    point.conversation_rate = rate;
    point.summary = RunServingExperiment(engine.get(), trace);
    points.push_back(std::move(point));
  }
  return points;
}

void PrintSweep(const std::string& title, const std::vector<SweepPoint>& points) {
  std::printf("## %s\n", title.c_str());
  std::printf("%-12s %-14s %-16s %-18s %-18s %-10s %-10s\n", "conv_rate",
              "tput(req/s)", "tok_tput(tok/s)", "p90_norm_lat(ms)",
              "mean_norm_lat(ms)", "hit_rate", "cpu_hit");
  for (const SweepPoint& p : points) {
    const ServingSummary& s = p.summary;
    std::printf("%-12.3f %-14.3f %-16.1f %-18.1f %-18.1f %-10.3f %-10.3f\n",
                p.conversation_rate, s.throughput_rps, s.token_throughput,
                s.p90_normalized_latency * 1e3, s.mean_normalized_latency * 1e3,
                s.engine_stats.CacheHitRate(), s.engine_stats.CpuCacheHitRate());
  }
  std::printf("\n");
}

}  // namespace pensieve

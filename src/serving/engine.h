// Common interface for serving engines (Pensieve and the baselines).
//
// Engines run in virtual time: the driver delivers arrivals and repeatedly
// calls Step(now); each step returns the latency it would occupy on the
// simulated hardware, and the driver advances the clock accordingly.

#ifndef PENSIEVE_SRC_SERVING_ENGINE_H_
#define PENSIEVE_SRC_SERVING_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/scheduler/request.h"
#include "src/sim/fault_injector.h"

namespace pensieve {

struct EngineStats {
  int64_t steps = 0;
  int64_t generated_tokens = 0;
  int64_t prefill_tokens = 0;  // input tokens processed (incl. recompute)
  // History-token accounting across all requests (Figure 14 analysis).
  int64_t reused_gpu_tokens = 0;
  int64_t reused_cpu_tokens = 0;
  int64_t reused_ssd_tokens = 0;
  int64_t recomputed_history_tokens = 0;
  int64_t suspensions = 0;
  int64_t preemptions = 0;
  // Requests finished early because their conversation's KV filled the whole
  // GPU (the simulator's effective maximum context length).
  int64_t context_capped_requests = 0;
  int64_t forced_swap_out_tokens = 0;
  int64_t aot_swap_out_tokens = 0;
  int64_t dropped_tokens = 0;
  // Cluster-migration accounting: KV tokens this engine shipped to / adopted
  // from other replicas (each migrated token is charged to exactly one
  // importer).
  int64_t migrated_out_tokens = 0;
  int64_t migrated_in_tokens = 0;
  double busy_seconds = 0.0;
  // GPU seconds spent recomputing dropped history (what the retention-value
  // eviction policy minimizes; deeper drops cost quadratically more).
  double recompute_seconds = 0.0;
  double restore_stall_seconds = 0.0;
  // KV-transfer fault accounting (injected faults on the PCIe link, their
  // retries, and what had to degrade to recomputation). All zero when fault
  // injection is off.
  LinkFaultStats link_faults;
  // Admissions that dropped corrupt or unrestorable chunks and went through
  // the recomputation path instead.
  int64_t fault_degraded_admissions = 0;
  // History tokens whose recomputation is attributable to a KV fault (they
  // had live copies that were corrupted or could not be restored).
  int64_t fault_recompute_tokens = 0;
  int64_t fault_dropped_chunks = 0;
  // Swap-out transfers (ahead-of-time, forced, or suspension) whose device-
  // to-host copy exhausted its retries.
  int64_t fault_failed_swap_outs = 0;
  // CPU copies rejected by checksum verification at (or ahead of) swap-in.
  int64_t checksum_detected_corruptions = 0;
  // --- Flash (SSD) tier accounting. All zero when the tier is disabled. ---
  // Faults injected on the simulated SSD link (demote/promote transfers).
  LinkFaultStats ssd_link_faults;
  int64_t ssd_demoted_chunks = 0;   // CPU -> flash spills
  int64_t ssd_demoted_tokens = 0;
  int64_t ssd_promoted_chunks = 0;  // flash -> CPU promotes (SSD "hits")
  int64_t ssd_evicted_chunks = 0;   // dropped by the flash eviction algorithm
  int64_t ssd_evicted_tokens = 0;
  // Segment-log bookkeeping: user appends, GC relocations and GC passes.
  // Write amplification = (user + gc_moves) / user.
  int64_t ssd_user_blocks_written = 0;
  int64_t ssd_gc_moves = 0;
  int64_t ssd_gc_runs = 0;
  // Demotions that failed (flash full of pinned chunks) and fell back to a
  // plain drop, and tokens the three-way planner chose to recompute rather
  // than pull through the SSD + PCIe path.
  int64_t ssd_failed_demotes = 0;
  int64_t ssd_planned_recompute_tokens = 0;
  // --- Shared-prefix dedup accounting. All zero when sharing is off. ---
  // Admissions that attached at least one shared block, and the tokens they
  // were spared from prefilling (subset of reused_gpu_tokens).
  int64_t dedup_hit_requests = 0;
  int64_t reused_shared_tokens = 0;
  // Chunk views attached over shared blocks (initial attach + dropped-chunk
  // re-attach) and copy-on-write block copies on divergence.
  int64_t shared_attached_chunks = 0;
  int64_t cow_copies = 0;
  // High-water mark of physical GPU blocks held by more than one view.
  int64_t peak_shared_blocks = 0;
  // --- Cross-replica CPU-tier spill accounting (DESIGN.md §14). All zero
  // when --peer-spill is off. Tokens this engine's CPU-tier evictions
  // offered out to peers, and foreign tokens re-adopted into the local
  // dropped prefix from a peer's stash.
  int64_t peer_spill_out_tokens = 0;
  int64_t peer_spill_in_tokens = 0;
  // --- KV-quantization accounting. All zero when kv_quant is off. ---
  // Blocks int8-quantized crossing the GPU->CPU tier boundary, and the
  // cumulative bytes compression kept off the CPU/SSD tiers.
  int64_t kv_quant_blocks = 0;
  int64_t kv_quant_bytes_saved = 0;
  // Allocator reference-balance snapshot (acquires == releases + live at all
  // times; live == 0 at leak-free shutdown) and the GPU-capacity high-water
  // mark, for capacity-per-GB analysis.
  int64_t kv_block_acquires = 0;
  int64_t kv_block_releases = 0;
  int64_t kv_blocks_live = 0;
  int64_t gpu_peak_allocated_blocks = 0;

  // Field-wise accumulation, used wherever stats from several engines (or
  // several engine incarnations of one replica, across crashes) are summed.
  EngineStats& operator+=(const EngineStats& other) {
    steps += other.steps;
    generated_tokens += other.generated_tokens;
    prefill_tokens += other.prefill_tokens;
    reused_gpu_tokens += other.reused_gpu_tokens;
    reused_cpu_tokens += other.reused_cpu_tokens;
    reused_ssd_tokens += other.reused_ssd_tokens;
    recomputed_history_tokens += other.recomputed_history_tokens;
    suspensions += other.suspensions;
    preemptions += other.preemptions;
    context_capped_requests += other.context_capped_requests;
    forced_swap_out_tokens += other.forced_swap_out_tokens;
    aot_swap_out_tokens += other.aot_swap_out_tokens;
    dropped_tokens += other.dropped_tokens;
    migrated_out_tokens += other.migrated_out_tokens;
    migrated_in_tokens += other.migrated_in_tokens;
    busy_seconds += other.busy_seconds;
    recompute_seconds += other.recompute_seconds;
    restore_stall_seconds += other.restore_stall_seconds;
    link_faults += other.link_faults;
    fault_degraded_admissions += other.fault_degraded_admissions;
    fault_recompute_tokens += other.fault_recompute_tokens;
    fault_dropped_chunks += other.fault_dropped_chunks;
    fault_failed_swap_outs += other.fault_failed_swap_outs;
    checksum_detected_corruptions += other.checksum_detected_corruptions;
    ssd_link_faults += other.ssd_link_faults;
    ssd_demoted_chunks += other.ssd_demoted_chunks;
    ssd_demoted_tokens += other.ssd_demoted_tokens;
    ssd_promoted_chunks += other.ssd_promoted_chunks;
    ssd_evicted_chunks += other.ssd_evicted_chunks;
    ssd_evicted_tokens += other.ssd_evicted_tokens;
    ssd_user_blocks_written += other.ssd_user_blocks_written;
    ssd_gc_moves += other.ssd_gc_moves;
    ssd_gc_runs += other.ssd_gc_runs;
    ssd_failed_demotes += other.ssd_failed_demotes;
    ssd_planned_recompute_tokens += other.ssd_planned_recompute_tokens;
    peer_spill_out_tokens += other.peer_spill_out_tokens;
    peer_spill_in_tokens += other.peer_spill_in_tokens;
    dedup_hit_requests += other.dedup_hit_requests;
    reused_shared_tokens += other.reused_shared_tokens;
    shared_attached_chunks += other.shared_attached_chunks;
    cow_copies += other.cow_copies;
    peak_shared_blocks += other.peak_shared_blocks;
    kv_quant_blocks += other.kv_quant_blocks;
    kv_quant_bytes_saved += other.kv_quant_bytes_saved;
    kv_block_acquires += other.kv_block_acquires;
    kv_block_releases += other.kv_block_releases;
    kv_blocks_live += other.kv_blocks_live;
    gpu_peak_allocated_blocks += other.gpu_peak_allocated_blocks;
    return *this;
  }

  // Fraction of needed history tokens served from cache (any tier).
  double CacheHitRate() const {
    const int64_t hits = reused_gpu_tokens + reused_cpu_tokens + reused_ssd_tokens;
    const int64_t total = hits + recomputed_history_tokens;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
  // Fraction of GPU-missing history tokens that the CPU tier saved.
  double CpuCacheHitRate() const {
    const int64_t misses =
        reused_cpu_tokens + reused_ssd_tokens + recomputed_history_tokens;
    return misses == 0 ? 0.0
                       : static_cast<double>(reused_cpu_tokens) /
                             static_cast<double>(misses);
  }
  // Fraction of tokens missing from both GPU and CPU that the flash tier
  // saved from recomputation.
  double SsdCacheHitRate() const {
    const int64_t misses = reused_ssd_tokens + recomputed_history_tokens;
    return misses == 0 ? 0.0
                       : static_cast<double>(reused_ssd_tokens) /
                             static_cast<double>(misses);
  }
  // Flash write amplification: physical writes (user appends + GC
  // relocations) per user append. 1.0 with no GC traffic or no tier.
  double SsdWriteAmplification() const {
    return ssd_user_blocks_written == 0
               ? 1.0
               : static_cast<double>(ssd_user_blocks_written + ssd_gc_moves) /
                     static_cast<double>(ssd_user_blocks_written);
  }
};

struct StepResult {
  // Seconds of simulated hardware time consumed by this step (0 if idle).
  double duration = 0.0;
  bool idle = false;
  // Requests that computed in this step and the input tokens they processed
  // (decode tokens + prefill tokens), for telemetry.
  int64_t batch_requests = 0;
  int64_t batch_tokens = 0;
  std::vector<RequestOutcome> finished;
};

// Instantaneous load snapshot, used by cluster routers to pick a replica.
struct EngineLoad {
  int64_t waiting_requests = 0;
  int64_t running_requests = 0;
  // Input tokens the engine still has to prefill (queued work).
  int64_t queued_input_tokens = 0;
  // Output tokens still owed by running requests (decode backlog).
  int64_t outstanding_output_tokens = 0;
  // History tokens queued-but-unadmitted requests will have to recompute
  // because no local KV covers them. `queued_input_tokens` only counts an
  // unadmitted request's new prompt (the recompute tail is priced at
  // admission); without this term a prefill-pool dispatcher herds cold
  // conversations onto one replica whose queue looks short by prompt
  // tokens but is long by prefill work.
  int64_t queued_uncached_prefill_tokens = 0;

  int64_t OutstandingTokens() const {
    return queued_input_tokens + outstanding_output_tokens;
  }
  // Outstanding work including the unadmitted recompute backlog — what
  // prefill-pool dispatch balances on.
  int64_t WeightedTokens() const {
    return OutstandingTokens() + queued_uncached_prefill_tokens;
  }
  int64_t TotalRequests() const { return waiting_requests + running_requests; }
};

// A conversation's KV state as shipped between replicas (cluster migration).
// Only sizes travel in simulated mode; `resident_tokens` is what actually
// crosses the wire, the leading remainder had already been dropped at the
// source and must be recomputed wherever the conversation lands.
struct MigratedKvState {
  int64_t kv_len = 0;           // total history tokens with chunk bookkeeping
  int64_t resident_tokens = 0;  // trailing tokens with live KV copies
  // Wire size of the resident KV across all tensor-parallel slices, filled
  // by the exporting engine (it knows its KV geometry).
  double bytes = 0.0;
  // Layer-pipelined handoff streams (DESIGN.md §13) land directly in the
  // receiving GPU's KV pool — the decode side admits without a host->device
  // restore. Overload rehoming keeps the default host-memory landing.
  bool gpu_direct = false;

  bool Empty() const { return kv_len == 0; }
};

// What a crashing (or draining) engine still owed: every queued and running
// request in arrival order, plus the decode progress that is thrown away
// (re-routed requests restart generation from scratch elsewhere).
struct DrainedWork {
  std::vector<Request> requests;
  int64_t lost_generated_tokens = 0;
};

// One CPU-tier eviction offered to a peer replica instead of being dropped
// (cross-replica spill, DESIGN.md §14). Token offsets are absolute within
// the conversation's history; the chunk was at the leading edge of the
// dropped/SSD prefix, so successive offers of one conversation are
// contiguous and stack into a single peer-side segment.
struct PeerSpillOffer {
  int64_t conversation_id = 0;
  int64_t first_token = 0;
  int64_t num_tokens = 0;
  double bytes = 0.0;  // wire size across all tensor-parallel slices
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual const std::string& name() const = 0;

  // Delivers a request at virtual time `now`.
  virtual void Enqueue(const Request& request, double now) = 0;

  // True if any request is queued or running.
  virtual bool HasWork() const = 0;

  // Executes one scheduling iteration at virtual time `now`.
  virtual StepResult Step(double now) = 0;

  virtual const EngineStats& stats() const = 0;

  // Load snapshot for cluster routing decisions.
  virtual EngineLoad Load() const = 0;

  // --- Cluster state migration -------------------------------------------
  // Stateful engines can hand a conversation's cached KV to another replica.
  // A stateless engine keeps nothing between requests, so the defaults make
  // migration a no-op re-home.
  virtual bool SupportsStateMigration() const { return false; }

  // Tokens of this conversation's history with live KV copies here (either
  // tier). Routers use it to score how much a migration would save.
  virtual int64_t CachedConversationTokens(int64_t conversation_id) const {
    return 0;
  }

  // Detaches the conversation's cached state and forgets it locally. Must
  // not be called while the conversation has a queued or running request.
  virtual MigratedKvState ExportConversationState(int64_t conversation_id) {
    return {};
  }

  // Adopts migrated state ahead of the conversation's next request. The
  // transferred KV lands in the CPU tier (it arrives in host memory); the
  // normal swap-in path restores it on first use. Returns the tokens
  // actually adopted (less than state.resident_tokens if the receiving CPU
  // tier is short on space).
  virtual int64_t ImportConversationState(int64_t conversation_id,
                                          const MigratedKvState& state,
                                          double now) {
    return 0;
  }

  // --- Fault injection -----------------------------------------------------
  // Removes every queued and running request (crash/drain path) and returns
  // them sorted by request id (= arrival order). Cache bookkeeping for the
  // drained conversations is not released: the caller is about to discard
  // the whole engine (replica failure) or explicitly migrate the state.
  virtual DrainedWork DrainUnfinished() { return {}; }

  // Drain variant for a replica that stays alive (quarantine / scale-down
  // retirement, DESIGN.md §14): same contract as DrainUnfinished, but the
  // engine additionally unwinds running requests' admission state (pins,
  // partially restored chunks) so their conversations are immediately
  // exportable over the migration path.
  virtual DrainedWork DrainForRehome() { return DrainUnfinished(); }

  // --- Cross-replica CPU-tier spill (DESIGN.md §14) ------------------------
  // Drains the CPU-tier evictions this engine offered to peers since the
  // last call. The chunks were dropped locally either way; a successful peer
  // transfer is pure upside and a failed one degrades to exactly the
  // recompute path the drop already implied.
  virtual std::vector<PeerSpillOffer> TakePeerSpillOffers() { return {}; }

  // Idle CPU-tier capacity (tokens) a peer's spill could occupy.
  virtual int64_t IdleCpuCacheTokens() const { return 0; }

  // Reserves CPU-tier capacity for a peer's spilled KV (all-or-nothing;
  // returns the tokens actually reserved, 0 when the tier is short), and
  // releases it again when the stash is fetched back or invalidated.
  virtual int64_t ReserveForeignCpuTokens(int64_t tokens) { return 0; }
  virtual void ReleaseForeignCpuTokens(int64_t tokens) {}

  // Re-adopts a fetched-back stash segment [first_token, last_token) into
  // the conversation's dropped prefix ahead of its next request.
  // `kv_len_hint` is the conversation's history length per the incoming
  // request, used when this engine has no bookkeeping for it. Returns the
  // tokens actually adopted (0 when the segment no longer lines up with the
  // local dropped frontier).
  virtual int64_t AcceptPeerPrefix(int64_t conversation_id,
                                   int64_t first_token, int64_t last_token,
                                   int64_t kv_len_hint, double now) {
    return 0;
  }

  // Total history tokens with live KV copies on this engine, either tier —
  // what a replica failure destroys. Stateless engines keep nothing between
  // requests.
  virtual int64_t TotalCachedTokens() const { return 0; }
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SERVING_ENGINE_H_

// Common interface for serving engines (Pensieve and the baselines).
//
// Engines run in virtual time: the driver delivers arrivals and repeatedly
// calls Step(now); each step returns the latency it would occupy on the
// simulated hardware, and the driver advances the clock accordingly.

#ifndef PENSIEVE_SRC_SERVING_ENGINE_H_
#define PENSIEVE_SRC_SERVING_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/scheduler/request.h"

namespace pensieve {

struct EngineStats {
  int64_t steps = 0;
  int64_t generated_tokens = 0;
  int64_t prefill_tokens = 0;  // input tokens processed (incl. recompute)
  // History-token accounting across all requests (Figure 14 analysis).
  int64_t reused_gpu_tokens = 0;
  int64_t reused_cpu_tokens = 0;
  int64_t recomputed_history_tokens = 0;
  int64_t suspensions = 0;
  int64_t preemptions = 0;
  int64_t forced_swap_out_tokens = 0;
  int64_t aot_swap_out_tokens = 0;
  int64_t dropped_tokens = 0;
  double busy_seconds = 0.0;
  // GPU seconds spent recomputing dropped history (what the retention-value
  // eviction policy minimizes; deeper drops cost quadratically more).
  double recompute_seconds = 0.0;
  double restore_stall_seconds = 0.0;

  // Fraction of needed history tokens served from cache (either tier).
  double CacheHitRate() const {
    const int64_t total =
        reused_gpu_tokens + reused_cpu_tokens + recomputed_history_tokens;
    return total == 0 ? 0.0
                      : static_cast<double>(reused_gpu_tokens + reused_cpu_tokens) /
                            static_cast<double>(total);
  }
  // Fraction of GPU-missing history tokens that the CPU tier saved.
  double CpuCacheHitRate() const {
    const int64_t misses = reused_cpu_tokens + recomputed_history_tokens;
    return misses == 0 ? 0.0
                       : static_cast<double>(reused_cpu_tokens) /
                             static_cast<double>(misses);
  }
};

struct StepResult {
  // Seconds of simulated hardware time consumed by this step (0 if idle).
  double duration = 0.0;
  bool idle = false;
  // Requests that computed in this step and the input tokens they processed
  // (decode tokens + prefill tokens), for telemetry.
  int64_t batch_requests = 0;
  int64_t batch_tokens = 0;
  std::vector<RequestOutcome> finished;
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual const std::string& name() const = 0;

  // Delivers a request at virtual time `now`.
  virtual void Enqueue(const Request& request, double now) = 0;

  // True if any request is queued or running.
  virtual bool HasWork() const = 0;

  // Executes one scheduling iteration at virtual time `now`.
  virtual StepResult Step(double now) = 0;

  virtual const EngineStats& stats() const = 0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SERVING_ENGINE_H_

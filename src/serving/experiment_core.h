// Shared experiment core for the serving drivers.
//
// The single-engine driver (src/serving/driver.cc) and the cluster driver
// (src/cluster/cluster_driver.cc) are thin clients of three pieces that live
// here exactly once:
//
//  * ArrivalProcess — seeds every conversation's first turn into an
//    EventQueue, builds the Request for a popped arrival event, and chains
//    the conversation's next turn after the engine finishes the previous one
//    plus the sampled user think time (causal dependency, paper §6.1).
//  * ComputeSteadyStateWindow — the steady-state measurement window both
//    summarize paths use: skip the warm-up (first 10% of the conversation
//    arrival span) and cut off at the end of the arrival process so a few
//    long think-time chains don't dominate the throughput denominator. A
//    single-burst trace (arrival span 0) falls back to [0, last_finish].
//  * The trace's dense-conversation-id invariant is validated once at trace
//    load (WorkloadTrace); the chain here indexes by id without re-checking.

#ifndef PENSIEVE_SRC_SERVING_EXPERIMENT_CORE_H_
#define PENSIEVE_SRC_SERVING_EXPERIMENT_CORE_H_

#include <cstdint>

#include "src/scheduler/request.h"
#include "src/sim/event_loop.h"
#include "src/workload/trace.h"

namespace pensieve {

// Latest first arrival across the trace's conversations (the length of the
// open-loop arrival process).
double ArrivalSpan(const WorkloadTrace& trace);

struct SteadyStateWindow {
  double begin = 0.0;
  double end = 0.0;
};

// [0.1 * span, span] normally; [0, last_finish] when the span is zero
// (single-burst traces where every conversation arrives at t = 0).
SteadyStateWindow ComputeSteadyStateWindow(double arrival_span,
                                           double last_finish);

// Arrival/think-time chain plus request builder, shared verbatim by both
// drivers so their request streams are identical by construction.
class ArrivalProcess {
 public:
  // Seeds one kArrival event per conversation (its first turn) into
  // `events`. Both pointers must outlive this object.
  ArrivalProcess(const WorkloadTrace& trace, EventQueue* events);

  // Builds the Request for a popped kArrival event, assigning the next
  // dense request id.
  Request BuildRequest(const SimEvent& arrival);

  // Chains the conversation's next turn (if any) after the user think time:
  // pushes a kArrival event at finish_time + think into the queue.
  void OnRequestFinished(const RequestOutcome& outcome);

  int64_t requests_built() const { return next_request_id_; }

 private:
  const WorkloadTrace& trace_;
  EventQueue* events_;
  int64_t next_request_id_ = 0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SERVING_EXPERIMENT_CORE_H_

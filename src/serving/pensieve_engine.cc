#include "src/serving/pensieve_engine.h"

#include <algorithm>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace pensieve {

namespace {

KvCacheConfig MakeCacheConfig(const PensieveEngineOptions& options,
                              const GpuCostModel& cost_model) {
  KvCacheConfig config;
  config.block_size = options.block_size;
  config.num_gpu_blocks = options.num_gpu_blocks;
  config.num_cpu_blocks = options.use_cpu_cache ? options.num_cpu_blocks : 0;
  // The flash tier sits behind the CPU tier; without one it has no feeder.
  config.num_ssd_blocks = options.use_cpu_cache ? options.num_ssd_blocks : 0;
  config.ssd_algo = options.ssd_algo;
  config.ssd_segment_blocks = options.ssd_segment_blocks;
  config.numeric = false;
  config.enable_prefix_sharing = options.enable_prefix_sharing;
  config.kv_quant = options.kv_quant;
  if (options.kv_quant) {
    // CPU/SSD capacity is accounted in compressed bytes: one block of
    // block_size tokens shrinks from the fp16 substrate size to the int8
    // payload plus one amax scale, and the cache scales its CPU/SSD block
    // budgets up by that ratio.
    const ModelConfig& model = cost_model.model();
    config.kv_raw_block_bytes = options.block_size * model.KvBytesPerTokenPerGpu();
    config.kv_quant_block_bytes =
        options.block_size * model.KvQuantBytesPerTokenPerGpu() +
        static_cast<int64_t>(sizeof(float));
  }
  return config;
}

// Cumulative FNV-1a chain over a template's raw token stream, one hash per
// full block. A pure function of (template id, block count): the publisher
// and every later reader derive identical trie keys without materializing
// each other's blocks — content identity by construction, since the template
// token stream itself is the deterministic function TemplatePrefixMix.
std::vector<uint64_t> TemplateHashChain(int32_t template_id, int64_t num_blocks,
                                        int64_t block_size) {
  std::vector<uint64_t> chain;
  chain.reserve(static_cast<size_t>(num_blocks));
  uint64_t h = kFnv1a64OffsetBasis;
  int64_t pos = 0;
  for (int64_t b = 0; b < num_blocks; ++b) {
    for (int64_t i = 0; i < block_size; ++i, ++pos) {
      const uint64_t tok = TemplatePrefixMix(template_id, pos);
      h = Fnv1a64(&tok, sizeof(tok), h);
    }
    chain.push_back(h);
  }
  return chain;
}

CacheCoordinator::Options MakeCoordinatorOptions(const PensieveEngineOptions& options) {
  CacheCoordinator::Options coord;
  coord.use_cpu_cache = options.use_cpu_cache;
  coord.use_ssd_cache = options.use_cpu_cache && options.num_ssd_blocks > 0;
  coord.swap_out_target = options.swap_out_threshold;
  coord.conversation_granularity =
      options.policy == EvictionPolicyKind::kConversationLru;
  // Peer spill only ever targets chunk-granularity CPU evictions.
  coord.peer_spill = options.peer_spill && options.use_cpu_cache &&
                     !coord.conversation_granularity;
  return coord;
}

// Decorrelates the SSD injector's RNG stream from the PCIe injector's, so
// arming one link's faults never shifts the other's draw sequence.
constexpr uint64_t kSsdSeedSalt = 0x9E3779B97F4A7C15ull;

}  // namespace

PensieveEngine::PensieveEngine(const GpuCostModel& cost_model,
                               PensieveEngineOptions options)
    : cost_model_(cost_model), options_(std::move(options)),
      cache_(MakeCacheConfig(options_, cost_model)),
      cost_estimator_(ChunkCostEstimator::ProfileFromCostModel(
          cost_model, options_.block_size, cost_model.model().max_context)),
      policy_(MakeEvictionPolicy(options_.policy, cost_estimator_)),
      coordinator_(&cache_, policy_.get(), MakeCoordinatorOptions(options_),
                   [this](int64_t conv) {
                     auto it = inflight_.find(conv);
                     return it == inflight_.end() || it->second == 0;
                   }),
      link_(cost_model.hardware().num_gpus, cost_model.hardware().pcie_bandwidth,
            cost_model.hardware().pcie_duplex_factor, options_.prioritize_swap_in),
      pcie_faults_(options_.fault_seed, options_.pcie_fault_profile,
                   options_.fault_retry),
      ssd_link_(cost_model.hardware().ssd_read_bandwidth,
                cost_model.hardware().ssd_write_bandwidth,
                cost_model.hardware().ssd_access_latency),
      ssd_faults_(options_.fault_seed ^ kSsdSeedSalt, options_.ssd_fault_profile,
                  options_.fault_retry) {
  PENSIEVE_CHECK_GT(options_.num_gpu_blocks, 0);
}

double PensieveEngine::TransferDeviceToHost(double now, double bytes,
                                            bool* delivered) {
  const LinkTransferOutcome out = pcie_faults_.Transfer(
      now, bytes,
      [this](double start, double b) { return link_.ScheduleDeviceToHost(start, b); });
  stats_.link_faults = pcie_faults_.stats();
  *delivered = out.delivered;
  return out.done;
}

double PensieveEngine::TransferHostToDevice(double now, double bytes,
                                            bool* delivered) {
  const LinkTransferOutcome out = pcie_faults_.Transfer(
      now, bytes,
      [this](double start, double b) { return link_.ScheduleHostToDevice(start, b); });
  stats_.link_faults = pcie_faults_.stats();
  *delivered = out.delivered;
  return out.done;
}

double PensieveEngine::TransferSsdRead(double now, double bytes, bool* delivered) {
  const LinkTransferOutcome out = ssd_faults_.Transfer(
      now, bytes,
      [this](double start, double b) { return ssd_link_.ScheduleRead(start, b); });
  stats_.ssd_link_faults = ssd_faults_.stats();
  *delivered = out.delivered;
  return out.done;
}

double PensieveEngine::TransferSsdWrite(double now, double bytes, bool* delivered) {
  const LinkTransferOutcome out = ssd_faults_.Transfer(
      now, bytes,
      [this](double start, double b) { return ssd_link_.ScheduleWrite(start, b); });
  stats_.ssd_link_faults = ssd_faults_.stats();
  *delivered = out.delivered;
  return out.done;
}

void PensieveEngine::ChargeFlashSpill(double now) {
  if (!cache_.flash_enabled()) {
    return;
  }
  const CacheCoordinator::SpillOutcome spill = coordinator_.TakeSpill();
  stats_.ssd_failed_demotes += spill.failed_demotes;
  if (spill.demoted_tokens == 0) {
    return;
  }
  stats_.ssd_demoted_tokens += spill.demoted_tokens;
  const double bytes = static_cast<double>(spill.demoted_tokens) *
                       static_cast<double>(KvWireBytesPerToken());
  bool delivered = false;
  TransferSsdWrite(now, bytes, &delivered);
  if (!delivered) {
    // The state transitions already happened; poison the flash copies that
    // never landed so promotion detects the loss and degrades to
    // recomputation instead of restoring garbage.
    for (const auto& [conv, chunk] : spill.demoted) {
      (void)cache_.MarkSsdCorrupt(conv, chunk);
    }
  }
}

void PensieveEngine::PlanSsdRecompute(int64_t conversation_id) {
  if (!cache_.flash_enabled()) {
    return;
  }
  ContextState* conv = cache_.Find(conversation_id);
  if (conv == nullptr) {
    return;
  }
  const HardwareSpec& hw = cost_model_.hardware();
  RestoreLinkSpeeds speeds;
  speeds.pcie_bandwidth = hw.pcie_bandwidth;
  speeds.ssd_read_bandwidth = hw.ssd_read_bandwidth;
  speeds.ssd_access_latency = hw.ssd_access_latency;
  const int64_t kv_bytes = KvWireBytesPerToken();
  int64_t context = conv->LeadingDroppedTokens();
  for (int64_t i = conv->LeadingDroppedChunks(); i < conv->num_chunks(); ++i) {
    const Chunk& c = conv->chunk(i);
    if (!c.OnSsd() && c.location != ChunkLocation::kCpu) {
      break;  // GPU-resident: the restorable frontier ends here
    }
    context += c.num_tokens;
    const RestoreSource source =
        c.OnSsd() ? RestoreSource::kSsd : RestoreSource::kCpu;
    if (PlanChunkRestore(cost_estimator_, source, c.num_tokens, context,
                         kv_bytes, speeds) == RestoreAction::kRestore) {
      break;
    }
    stats_.ssd_planned_recompute_tokens += c.num_tokens;
    PENSIEVE_CHECK_OK(cache_.DropChunk(conversation_id, i));
  }
}

void PensieveEngine::SyncFlashStats() {
  if (!cache_.flash_enabled()) {
    return;
  }
  const TwoTierKvCache::Counters& counters = cache_.counters();
  stats_.ssd_demoted_chunks = counters.demoted_to_flash_chunks;
  stats_.ssd_promoted_chunks = counters.promoted_from_flash_chunks;
  stats_.ssd_evicted_chunks = counters.flash_evicted_chunks;
  stats_.ssd_evicted_tokens = counters.flash_evicted_tokens;
  const SegmentLog::Stats& log_stats = cache_.flash_tier()->log().stats();
  stats_.ssd_user_blocks_written = log_stats.user_appends;
  stats_.ssd_gc_moves = log_stats.gc_moves;
  stats_.ssd_gc_runs = log_stats.gc_runs;
}

void PensieveEngine::SyncQuantStats() {
  const TwoTierKvCache::Counters& counters = cache_.counters();
  stats_.kv_quant_blocks = counters.quantized_blocks;
  stats_.kv_quant_bytes_saved = counters.quant_bytes_saved;
}

int64_t PensieveEngine::KvWireBytesPerToken() const {
  if (!options_.kv_quant) {
    return cost_model_.KvBytesPerToken();
  }
  // The per-block amax scale rides along but is noise at wire granularity
  // (4 bytes per block_size tokens); capacity accounting carries it exactly.
  return cost_model_.model().KvQuantBytesPerTokenPerGpu();
}

PensieveEngine::TemplateAttachOutcome PensieveEngine::AttachTemplatePrefix(
    Running* r, ContextState* conv, bool first_admission) {
  TemplateAttachOutcome attach;
  if (!options_.enable_prefix_sharing || r->request.template_id < 0) {
    return attach;
  }
  const int64_t bs = options_.block_size;
  const int64_t template_blocks = r->request.template_prefix_len / bs;
  if (template_blocks == 0) {
    return attach;  // a sub-block template can never publish, so never matches
  }
  std::vector<BlockId> blocks;
  const int64_t matched = cache_.LookupSharedPrefix(
      TemplateHashChain(r->request.template_id, template_blocks, bs), &blocks);
  if (matched <= 0) {
    return attach;
  }
  const int64_t conv_id = r->request.conversation_id;
  if (first_admission && conv->kv_len() == 0) {
    // Fresh conversation: attach the matched run as refcounted views, capped
    // one short of the pending input so the step keeps a query token to
    // extend the context with. The cap (or the template length) can land
    // mid-block; the partial tail view diverges via copy-on-write on the
    // first append into it.
    const int64_t span =
        std::min(std::min(matched * bs, r->request.template_prefix_len),
                 r->pending_new_tokens - 1);
    if (span <= 0) {
      return attach;
    }
    blocks.resize(static_cast<size_t>((span + bs - 1) / bs));
    const int64_t tail_raw = r->request.history_len;  // kv_len() == 0
    attach.fresh_tokens = cache_.AttachSharedPrefix(conv_id, blocks, span);
    r->pending_new_tokens -= attach.fresh_tokens;
    r->reused_shared += attach.fresh_tokens;
    r->shared_prompt_skipped = std::max<int64_t>(0, attach.fresh_tokens - tail_raw);
    ++stats_.dedup_hit_requests;
    stats_.reused_shared_tokens += attach.fresh_tokens;
    attach.counted_hit = true;
    return attach;
  }
  // Re-admission (or a later turn): a dropped leading run still matching
  // published template blocks is re-attached as views instead of being
  // restored and recomputed. All or nothing: rescuing only part of the
  // dropped prefix would leave dropped chunks *behind* GPU-resident ones,
  // breaking the drop-prefix invariant the restore paths rely on.
  const int64_t dropped_prefix = conv->LeadingDroppedChunks();
  if (dropped_prefix == 0 || dropped_prefix > matched) {
    return attach;
  }
  for (int64_t i = 0; i < dropped_prefix; ++i) {
    if (conv->chunk(i).num_tokens != bs) {
      return attach;  // a partial dropped chunk stays private
    }
  }
  for (int64_t i = 0; i < dropped_prefix; ++i) {
    if (!cache_.ReattachDroppedShared(conv_id, i, blocks[static_cast<size_t>(i)])
             .ok()) {
      // Re-drop the rescued run (front to back) so the invariant holds, and
      // fall back to the ordinary restore + recompute path.
      for (int64_t j = 0; j < i; ++j) {
        PENSIEVE_CHECK_OK(cache_.DropChunk(conv_id, j));
      }
      return attach;
    }
    ++attach.reattached_chunks;
    attach.reattached_tokens += conv->chunk(i).num_tokens;
  }
  if (attach.reattached_tokens > 0 && first_admission) {
    r->reused_shared += attach.reattached_tokens;
    stats_.reused_shared_tokens += attach.reattached_tokens;
    ++stats_.dedup_hit_requests;
    attach.counted_hit = true;
  }
  return attach;
}

void PensieveEngine::UndoTemplateAttach(Running* r,
                                        const TemplateAttachOutcome& attach) {
  const int64_t conv_id = r->request.conversation_id;
  if (attach.fresh_tokens > 0) {
    // The conversation was fresh before the attach, so releasing its state
    // restores exactly the pre-attach world (views DecRef'd, blocks freed
    // when the last holder drops).
    cache_.Release(conv_id);
    r->pending_new_tokens += attach.fresh_tokens;
    r->shared_prompt_skipped = 0;
  }
  for (int64_t j = 0; j < attach.reattached_chunks; ++j) {
    PENSIEVE_CHECK_OK(cache_.DropChunk(conv_id, j));
  }
  if (attach.counted_hit) {
    const int64_t tokens = attach.fresh_tokens + attach.reattached_tokens;
    r->reused_shared -= tokens;
    stats_.reused_shared_tokens -= tokens;
    --stats_.dedup_hit_requests;
  }
}

void PensieveEngine::PublishTemplatePrefix(const Running& r) {
  if (!options_.enable_prefix_sharing || r.request.template_id < 0) {
    return;
  }
  const int64_t bs = options_.block_size;
  const int64_t template_blocks = r.request.template_prefix_len / bs;
  if (template_blocks == 0) {
    return;
  }
  const ContextState* conv = cache_.Find(r.request.conversation_id);
  if (conv == nullptr) {
    return;
  }
  // Leading run of full, GPU-resident chunks within the template span. A
  // chunk evicted between prefill and this publish simply shortens the run.
  std::vector<BlockId> blocks;
  const int64_t limit = std::min(template_blocks, conv->num_chunks());
  for (int64_t i = 0; i < limit; ++i) {
    const Chunk& c = conv->chunk(i);
    if (!c.OnGpu() || c.num_tokens < bs) {
      break;
    }
    blocks.push_back(c.gpu_block);
  }
  if (blocks.empty()) {
    return;
  }
  cache_.PublishSharedPrefix(
      TemplateHashChain(r.request.template_id,
                        static_cast<int64_t>(blocks.size()), bs),
      blocks);
}

void PensieveEngine::SyncShareStats() {
  const TwoTierKvCache::Counters& counters = cache_.counters();
  stats_.shared_attached_chunks = counters.shared_attached_chunks;
  stats_.cow_copies = counters.cow_copies;
  stats_.peak_shared_blocks = counters.peak_shared_blocks;
  const BlockAllocator& gpu = cache_.gpu_allocator();
  stats_.kv_block_acquires = gpu.total_acquires();
  stats_.kv_block_releases = gpu.total_releases();
  stats_.kv_blocks_live = gpu.live_refs();
  stats_.gpu_peak_allocated_blocks = gpu.peak_allocated();
}

void PensieveEngine::ChargeForcedSwapOut(const CacheCoordinator::FreeOutcome& freed,
                                         double now) {
  if (freed.forced_swap_out_tokens == 0) {
    return;
  }
  const double bytes = static_cast<double>(freed.forced_swap_out_tokens) *
                       static_cast<double>(KvWireBytesPerToken());
  bool delivered = false;
  const double done = TransferDeviceToHost(now, bytes, &delivered);
  pending_forced_stall_ += std::max(0.0, done - now);
  stats_.forced_swap_out_tokens += freed.forced_swap_out_tokens;
  if (!delivered) {
    // The GPU slots are already reassigned; the copies that never landed
    // are poisoned so the next swap-in attempt detects the loss and
    // degrades to recomputation.
    for (const auto& [conv, chunk] : freed.forced_swapped) {
      (void)cache_.MarkCpuCorrupt(conv, chunk);
    }
    stats_.fault_failed_swap_outs +=
        static_cast<int64_t>(freed.forced_swapped.size());
  }
}

void PensieveEngine::DegradePrefixThrough(int64_t conversation_id,
                                          int64_t deepest_chunk) {
  ContextState* conv = cache_.Find(conversation_id);
  if (conv == nullptr) {
    return;
  }
  int64_t degraded_tokens = 0;
  for (int64_t i = conv->LeadingDroppedChunks(); i <= deepest_chunk; ++i) {
    const int64_t tokens = conv->chunk(i).num_tokens;
    if (!cache_.DropChunk(conversation_id, i).ok()) {
      break;
    }
    degraded_tokens += tokens;
    ++stats_.fault_dropped_chunks;
  }
  stats_.fault_recompute_tokens += degraded_tokens;
  ++stats_.fault_degraded_admissions;
}

void PensieveEngine::DegradeCorruptChunks(int64_t conversation_id) {
  ContextState* conv = cache_.Find(conversation_id);
  if (conv == nullptr) {
    return;
  }
  int64_t deepest = -1;
  for (int64_t i = 0; i < conv->num_chunks(); ++i) {
    const Chunk& c = conv->chunk(i);
    if (c.location == ChunkLocation::kGpuAndCpu && c.cpu_corrupt) {
      // The GPU copy is intact; just discard the poisoned CPU copy.
      ++stats_.checksum_detected_corruptions;
      (void)cache_.DropCpuCopy(conversation_id, i);
      continue;
    }
    if (c.OnSsd() && !cache_.VerifySsdChecksum(conversation_id, i).ok()) {
      // A flash copy whose demotion transfer failed (or that rotted on the
      // device): only recomputation can rebuild it.
      ++stats_.checksum_detected_corruptions;
      deepest = i;
      continue;
    }
    if (c.location == ChunkLocation::kCpu &&
        !cache_.VerifyCpuChecksum(conversation_id, i).ok()) {
      ++stats_.checksum_detected_corruptions;
      deepest = i;
    }
  }
  if (deepest >= 0) {
    DegradePrefixThrough(conversation_id, deepest);
  }
}

void PensieveEngine::Enqueue(const Request& request, double now) {
  PENSIEVE_CHECK_GT(request.new_prompt_len, 0);
  PENSIEVE_CHECK_GT(request.target_output_len, 0);
  Running r;
  r.request = request;
  r.pending_new_tokens = request.new_prompt_len;
  ++inflight_[request.conversation_id];
  waiting_.push_back(std::move(r));
}

bool PensieveEngine::HasWork() const { return !waiting_.empty() || !running_.empty(); }

bool PensieveEngine::TryAdmit(Running* r, double now, int64_t batch_input_tokens) {
  const int64_t conv_id = r->request.conversation_id;
  ContextState& conv = cache_.GetOrCreate(conv_id);
  const bool first_admission = r->first_scheduled_time < 0;
  if (first_admission) {
    // The cached context covers a prefix of the raw history. When this
    // engine served every prior turn, the only uncached raw token is the
    // previous turn's final generated token, which was emitted but never
    // fed back through the model; that pending tail token joins this
    // turn's input. A larger gap is also legal: a forgotten conversation
    // re-enters with an empty state, and under cluster routing a
    // conversation can return to a replica that cached only its early
    // turns. Either way the uncached raw suffix is fetched from the
    // persistent store and recomputed as new input atop whatever prefix is
    // still cached here.
    const int64_t tail_raw = r->request.history_len - conv.kv_len();
    // Negative is legal in exactly one case: a shared-prefix attach from an
    // earlier failed admission attempt of this same request already covers
    // part of this turn's prompt, so kv_len exceeds the raw history by that
    // in-prompt span (always leaving at least one pending query token).
    PENSIEVE_CHECK(tail_raw >= 0 ||
                   (r->request.template_id >= 0 &&
                    -tail_raw < r->request.new_prompt_len))
        << "conversation " << conv_id << " turn " << r->request.turn_index;
    r->pending_new_tokens = tail_raw + r->request.new_prompt_len;
  }

  // Detected-corruption degrade: chunks whose CPU or flash copy fails
  // checksum verification are dropped (with the prefix before them) before
  // the admission plan is computed, so they re-enter through the
  // recomputation path below instead of restoring garbage KV.
  if (pcie_faults_.enabled() || ssd_faults_.enabled()) {
    DegradeCorruptChunks(conv_id);
  }
  // Three-way restore planning: drop frontier chunks whose recomputation
  // beats their restore path (no-op unless the flash tier is enabled).
  PlanSsdRecompute(conv_id);

  // Shared-prefix dedup: attach (or re-attach) published template blocks
  // before the admission plan is computed, so the shared run counts as
  // GPU-resident reuse instead of restore or recompute work. Runs after the
  // degrade passes above: a prefix they dropped may be rescued from the trie.
  const TemplateAttachOutcome attach =
      AttachTemplatePrefix(r, &conv, first_admission);

  const int64_t dropped_chunks = conv.LeadingDroppedChunks();
  const int64_t dropped_tokens = conv.LeadingDroppedTokens();
  const std::vector<int64_t> ssd_chunks = conv.SsdChunks();
  const std::vector<int64_t> staged_cpu_chunks = conv.CpuOnlyChunks();
  const int64_t input_tokens = dropped_tokens + r->pending_new_tokens;
  if (batch_input_tokens > 0 &&
      batch_input_tokens + input_tokens > options_.max_batch_tokens) {
    UndoTemplateAttach(r, attach);
    return false;
  }
  const int64_t append_chunks = cache_.AppendBlockDemand(conv_id, r->pending_new_tokens);
  const int64_t blocks_needed = dropped_chunks +
                                static_cast<int64_t>(ssd_chunks.size()) +
                                static_cast<int64_t>(staged_cpu_chunks.size()) +
                                append_chunks;
  // Decode reservation (§4.3.5): leave headroom for requests already
  // generating, unless the batch is empty.
  const int64_t capacity = cache_.gpu_allocator().capacity();
  const double reserve_blocks = options_.decode_reserve * static_cast<double>(capacity);
  if (!running_.empty() &&
      static_cast<double>(cache_.AvailableGpuBlocks() - blocks_needed) < reserve_blocks) {
    UndoTemplateAttach(r, attach);
    return false;
  }

  conv.Pin();
  const CacheCoordinator::FreeOutcome freed =
      coordinator_.EnsureFreeGpuBlocks(blocks_needed, now);
  ChargeForcedSwapOut(freed, now);
  ChargeFlashSpill(now);
  if (!freed.ok) {
    conv.Unpin();
    UndoTemplateAttach(r, attach);
    return false;
  }

  // Flash promotion phase: stage the conversation's SSD run back into the
  // CPU tier so the normal swap-in path below restores it. The flash read is
  // charged on the SSD link; the host-to-device transfer then starts when
  // that read completes. Any failure degrades the run to recomputation and
  // retries admission inline (same pattern as the PCIe path below).
  double restore_start = now;
  int64_t promoted_tokens = 0;
  if (!ssd_chunks.empty()) {
    int64_t ssd_tokens = 0;
    for (int64_t idx : ssd_chunks) {
      ssd_tokens += conv.chunk(idx).num_tokens;
    }
    const int64_t staging = static_cast<int64_t>(ssd_chunks.size());
    if (cache_.cpu_allocator().num_free() < staging &&
        !coordinator_.EnsureFreeCpuBlocks(staging, now)) {
      ChargeFlashSpill(now);
      DegradePrefixThrough(conv_id, ssd_chunks.back());
      conv.Unpin();
      return TryAdmit(r, now, batch_input_tokens);
    }
    ChargeFlashSpill(now);
    const double bytes = static_cast<double>(ssd_tokens) *
                         static_cast<double>(KvWireBytesPerToken());
    bool delivered = false;
    const double ssd_done = TransferSsdRead(now, bytes, &delivered);
    if (!delivered) {
      DegradePrefixThrough(conv_id, ssd_chunks.back());
      conv.Unpin();
      return TryAdmit(r, now, batch_input_tokens);
    }
    restore_start = std::max(restore_start, ssd_done);
    // Promote back to front so the remaining flash run stays a contiguous
    // extension of the dropped prefix.
    for (auto it = ssd_chunks.rbegin(); it != ssd_chunks.rend(); ++it) {
      const int64_t chunk_tokens = conv.chunk(*it).num_tokens;
      if (!cache_.PromoteFromFlash(conv_id, *it).ok()) {
        // Corrupt flash copy (or staging raced away): drop the prefix
        // through this chunk — deeper chunks already promoted stay — and
        // re-admit on the recompute path.
        DegradePrefixThrough(conv_id, *it);
        conv.Unpin();
        return TryAdmit(r, now, batch_input_tokens);
      }
      promoted_tokens += chunk_tokens;
    }
  }

  // CPU-resident chunks to restore, including anything just promoted.
  const std::vector<int64_t> cpu_chunks = conv.CpuOnlyChunks();
  int64_t cpu_tokens = 0;
  for (int64_t idx : cpu_chunks) {
    cpu_tokens += conv.chunk(idx).num_tokens;
  }

  // Restore transfer for the CPU-resident chunks; it overlaps the upcoming
  // step's compute layer by layer (§4.3.3), with any overhang charged as
  // stall. Runs before the accounting snapshot so a transfer that exhausts
  // its retries can degrade cleanly: the prefix through the deepest CPU
  // chunk is dropped and admission retries inline on the recompute path
  // (the failed attempts' link time is already charged).
  double restore_transfer_s = 0.0;
  if (cpu_tokens > 0) {
    const double bytes = static_cast<double>(cpu_tokens) *
                         static_cast<double>(KvWireBytesPerToken());
    bool delivered = false;
    const double done = TransferHostToDevice(restore_start, bytes, &delivered);
    if (!delivered) {
      DegradePrefixThrough(conv_id, cpu_chunks.back());
      conv.Unpin();
      // Re-admit immediately on the recompute path. The degraded prefix is
      // now kDropped, so the retry has no CPU chunks to restore and cannot
      // take this branch again — without the inline retry a lone request
      // would leave the step idle and strand the experiment.
      return TryAdmit(r, now, batch_input_tokens);
    }
    restore_transfer_s = std::max(0.0, done - now);
  }

  // Reuse accounting snapshot (Figure 14 analysis), first admission only.
  if (first_admission) {
    r->reused_gpu = conv.TokensOnGpu();
    r->reused_ssd = promoted_tokens;
    r->reused_cpu = cpu_tokens - promoted_tokens;
    // Recomputed history = dropped-prefix tokens plus the uncached raw
    // suffix re-entering as new input (minus one pending tail token that
    // was never computed in the first place).
    const int64_t uncached_suffix =
        std::max<int64_t>(0, r->pending_new_tokens - r->request.new_prompt_len - 1);
    r->recomputed = dropped_tokens + uncached_suffix;
    // Accounting covers the cached history (raw history minus the pending
    // tail token folded into this turn's input).
    PENSIEVE_CHECK_EQ(
        r->reused_gpu + r->reused_cpu + r->reused_ssd + dropped_tokens,
        conv.kv_len());
    stats_.reused_gpu_tokens += r->reused_gpu;
    stats_.reused_cpu_tokens += r->reused_cpu;
    stats_.reused_ssd_tokens += r->reused_ssd;
    stats_.recomputed_history_tokens += r->recomputed;
    if (uncached_suffix > 0) {
      stats_.recompute_seconds +=
          cost_model_.AttentionTime(uncached_suffix,
                                    conv.kv_len() + uncached_suffix) +
          cost_model_.MarginalLinearTime(uncached_suffix);
    }
    r->first_scheduled_time = now;
  }

  // Swap in the CPU-resident chunks whose transfer just completed. Cannot
  // fail: blocks were ensured above and checksums pre-verified (the injector
  // only poisons unpinned conversations' copies).
  for (int64_t idx : cpu_chunks) {
    PENSIEVE_CHECK_OK(cache_.SwapIn(conv_id, idx));
  }
  r->restore_transfer_s = restore_transfer_s;

  // Restore dropped-prefix chunks; their KV is recomputed by the next step
  // as a separate attention sub-request (§4.3.4).
  for (int64_t i = 0; i < dropped_chunks; ++i) {
    PENSIEVE_CHECK_OK(cache_.RestoreDropped(conv_id, i));
  }
  r->restored_chunks = dropped_chunks;
  r->pending_recompute = dropped_tokens;
  if (dropped_tokens > 0) {
    stats_.recompute_seconds += cost_model_.AttentionTime(dropped_tokens,
                                                          dropped_tokens) +
                                cost_model_.MarginalLinearTime(dropped_tokens);
  }

  conv.set_last_active(now);
  return true;
}

int64_t PensieveEngine::AdmitRequests(double now) {
  int64_t batch_tokens = 0;
  for (const Running& r : running_) {
    batch_tokens += r.pending_new_tokens + r.pending_recompute;
  }
  int64_t admitted = 0;
  while (!waiting_.empty()) {
    if (static_cast<int64_t>(running_.size()) >= options_.max_running) {
      break;
    }
    Running& cand = waiting_.front();
    if (!TryAdmit(&cand, now, batch_tokens)) {
      break;
    }
    batch_tokens += cand.pending_new_tokens + cand.pending_recompute;
    running_.push_back(std::move(waiting_.front()));
    waiting_.pop_front();
    ++admitted;
  }
  return admitted;
}

void PensieveEngine::EvictConversationFromGpu(int64_t conversation_id, double now) {
  ContextState* conv = cache_.Find(conversation_id);
  PENSIEVE_CHECK(conv != nullptr);
  int64_t swapped_tokens = 0;
  std::vector<int64_t> swapped_chunks;
  for (int64_t i = 0; i < conv->num_chunks(); ++i) {
    if (conv->chunk(i).location == ChunkLocation::kGpuAndCpu) {
      if (!cache_.ReclaimGpu(conversation_id, i).ok()) {
        // The CPU copy is corrupt; discard it and re-evict the GPU copy
        // through the paths below.
        (void)cache_.DropCpuCopy(conversation_id, i);
      } else {
        continue;
      }
    }
    if (conv->chunk(i).location != ChunkLocation::kGpu) {
      continue;
    }
    const bool can_swap = options_.use_cpu_cache &&
                          (cache_.cpu_allocator().num_free() > 0 ||
                           coordinator_.EnsureFreeCpuBlocks(1, now));
    if (can_swap) {
      const int64_t chunk_tokens = conv->chunk(i).num_tokens;
      if (cache_.SwapOut(conversation_id, i).ok() &&
          cache_.ReclaimGpu(conversation_id, i).ok()) {
        swapped_tokens += chunk_tokens;
        swapped_chunks.push_back(i);
        continue;
      }
    }
    // No CPU space (or the swap failed): drop this chunk, which requires
    // dropping the prefix before it first.
    for (int64_t j = 0; j <= i; ++j) {
      if (!conv->chunk(j).Dropped()) {
        if (!cache_.DropChunk(conversation_id, j).ok()) {
          break;
        }
      }
    }
  }
  if (swapped_tokens > 0) {
    const double bytes = static_cast<double>(swapped_tokens) *
                         static_cast<double>(KvWireBytesPerToken());
    bool delivered = false;
    TransferDeviceToHost(now, bytes, &delivered);
    if (!delivered) {
      // The evicted copies never landed; poison them so the conversation's
      // next admission degrades to recomputation instead of restoring
      // garbage.
      for (int64_t chunk : swapped_chunks) {
        (void)cache_.MarkCpuCorrupt(conversation_id, chunk);
      }
      stats_.fault_failed_swap_outs +=
          static_cast<int64_t>(swapped_chunks.size());
    }
  }
  // The per-chunk EnsureFreeCpuBlocks calls above may have spilled to flash.
  ChargeFlashSpill(now);
}

void PensieveEngine::SuspendRequest(size_t index, double now) {
  PENSIEVE_CHECK_LT(index, running_.size());
  Running r = std::move(running_[index]);
  running_.erase(running_.begin() + static_cast<int64_t>(index));
  const int64_t conv_id = r.request.conversation_id;
  ContextState* conv = cache_.Find(conv_id);
  PENSIEVE_CHECK(conv != nullptr);
  conv->Unpin();
  // Chunks restored for a prefill that never ran hold garbage; re-drop them
  // (front to back, satisfying the prefix invariant).
  for (int64_t i = 0; i < r.restored_chunks; ++i) {
    if (!cache_.DropChunk(conv_id, i).ok()) {
      break;
    }
  }
  r.restored_chunks = 0;
  r.restore_transfer_s = 0.0;
  EvictConversationFromGpu(conv_id, now);
  ++r.suspensions;
  ++stats_.suspensions;
  waiting_.push_front(std::move(r));
}

StepResult PensieveEngine::Step(double now) {
  StepResult result;
  pending_forced_stall_ = 0.0;

  // Ahead-of-time eviction (§4.3.2): fully overlapped with compute; swap
  // traffic only occupies the device-to-host link.
  const CacheCoordinator::EvictOutcome aot = coordinator_.AheadOfTimeEvict(now);
  if (aot.swapped_out_tokens > 0) {
    const double bytes = static_cast<double>(aot.swapped_out_tokens) *
                         static_cast<double>(KvWireBytesPerToken());
    bool delivered = false;
    TransferDeviceToHost(now, bytes, &delivered);
    if (delivered) {
      stats_.aot_swap_out_tokens += aot.swapped_out_tokens;
    } else {
      // The ahead-of-time copies never landed: roll them back. The chunks
      // are still kGpuAndCpu (reclamation is lazy), so nothing is lost —
      // they simply stay unevicted until a later pass retries.
      for (const auto& [conv, chunk] : aot.swapped) {
        (void)cache_.DropCpuCopy(conv, chunk);
      }
      stats_.fault_failed_swap_outs += static_cast<int64_t>(aot.swapped.size());
    }
  }
  stats_.dropped_tokens += aot.dropped_tokens;
  // Ahead-of-time eviction may have spilled CPU chunks to flash to make room.
  ChargeFlashSpill(now);

  const int64_t admitted = AdmitRequests(now);

  if (running_.empty()) {
    result.idle = true;
    SyncFlashStats();
    SyncShareStats();
    SyncQuantStats();
    return result;
  }

  // Unified scheduling processes everything together; the split-phase
  // ablation (Figure 13) runs a prefill-only step when anything was
  // admitted.
  size_t compute_begin = 0;
  if (!options_.unified_scheduling && admitted > 0) {
    compute_begin = running_.size() - static_cast<size_t>(admitted);
  }

  // Append each computing request's pending tokens, suspending
  // latest-arrived requests under memory pressure (§4.3.5).
  const auto append_pending_range = [&](size_t begin) {
    size_t i = begin;
    while (i < running_.size()) {
      Running& r = running_[i];
      const int64_t conv_id = r.request.conversation_id;
      const int64_t need = cache_.AppendBlockDemand(conv_id, r.pending_new_tokens);
      bool ok = need <= cache_.gpu_allocator().num_free();
      if (!ok) {
        const CacheCoordinator::FreeOutcome freed =
            coordinator_.EnsureFreeGpuBlocks(need, now);
        ChargeForcedSwapOut(freed, now);
        ChargeFlashSpill(now);
        ok = freed.ok;
      }
      if (!ok) {
        // Suspend the most recently arrived request that has not yet been
        // processed this step; fall back to suspending this one.
        size_t victim = i;
        for (size_t j = i + 1; j < running_.size(); ++j) {
          if (victim == i || running_[j].request.arrival_time >
                                 running_[victim].request.arrival_time) {
            victim = j;
          }
        }
        SuspendRequest(victim, now);
        continue;  // indices at/above `victim` shifted; retry position i
      }
      PENSIEVE_CHECK_OK(cache_.AppendTokenSlots(conv_id, r.pending_new_tokens, nullptr));
      ++i;
    }
  };
  for (;;) {
    append_pending_range(compute_begin);
    if (running_.empty()) {
      result.idle = true;
      SyncFlashStats();
      SyncShareStats();
      SyncQuantStats();
      return result;
    }
    if (compute_begin < running_.size()) {
      break;
    }
    // Every admitted request of a split-phase prefill step got suspended;
    // fall back to a decode step over the surviving (not yet appended)
    // requests rather than idling with work pending.
    compute_begin = 0;
  }

  // Build the unified batch (prefill sub-requests + decode tokens).
  std::vector<GpuCostModel::BatchItem> items;
  double max_restore_overhang = 0.0;
  for (size_t idx = compute_begin; idx < running_.size(); ++idx) {
    Running& r = running_[idx];
    const ContextState* conv = cache_.Find(r.request.conversation_id);
    if (r.pending_recompute > 0) {
      // Dropped-prefix recomputation: the prefix attends only to itself
      // (Figure 8 step d, first sub-request).
      items.push_back({r.pending_recompute, r.pending_recompute});
    }
    items.push_back({r.pending_new_tokens, conv->kv_len()});
    max_restore_overhang = std::max(max_restore_overhang, r.restore_transfer_s);
  }

  const double compute_s = UnifiedStepTime(cost_model_, items, options_.dense_speedup);
  const double restore_stall =
      RestoreStall(compute_s, max_restore_overhang, cost_model_.model().num_layers,
                   options_.pipelined_restore);
  const double duration = compute_s + restore_stall + pending_forced_stall_;
  stats_.restore_stall_seconds += restore_stall;
  result.duration = duration;
  result.batch_requests = static_cast<int64_t>(running_.size() - compute_begin);
  for (const GpuCostModel::BatchItem& item : items) {
    result.batch_tokens += item.query_len;
  }
  ++stats_.steps;
  stats_.busy_seconds += duration;

  const double finish_time = now + duration;
  std::vector<Running> keep;
  keep.reserve(running_.size());
  for (size_t idx = 0; idx < compute_begin; ++idx) {
    keep.push_back(std::move(running_[idx]));  // decode requests paused by a
                                               // split-phase prefill step
  }
  for (size_t idx = compute_begin; idx < running_.size(); ++idx) {
    Running& r = running_[idx];
    if (!r.prefilled) {
      stats_.prefill_tokens += r.pending_recompute + r.pending_new_tokens;
      r.prefilled = true;
      r.first_token_time = finish_time;
      r.prefill_compute_start = now;
      // The template prefix (if any) now holds valid KV: publish it so later
      // conversations with the same template attach instead of prefilling.
      PublishTemplatePrefix(r);
    } else {
      stats_.prefill_tokens += r.pending_recompute;
    }
    r.pending_recompute = 0;
    r.restored_chunks = 0;
    r.restore_transfer_s = 0.0;
    r.pending_new_tokens = 1;
    ++r.generated;
    ++stats_.generated_tokens;
    // Context-length cap: a conversation whose KV already fills the entire
    // GPU can never append another token — eviction only frees blocks held
    // by OTHER conversations, so a later admission would need more blocks
    // than the device has and stall forever. Finish at the current length,
    // the way a real server enforces its maximum context length. The flash
    // tier makes this state reachable (demotion preserves full-GPU-sized
    // histories that pure CPU-pressure drops used to truncate), so the cap
    // is gated on it: with the tier off, behavior stays bit-identical to
    // the two-tier build.
    ContextState* capped_conv = cache_.Find(r.request.conversation_id);
    const bool context_capped =
        cache_.flash_enabled() &&
        capped_conv->num_chunks() + capped_conv->NumNewChunksForAppend(1) >
        cache_.gpu_allocator().capacity();
    if (context_capped && r.generated < r.request.target_output_len) {
      ++stats_.context_capped_requests;
    }
    // Disaggregated prefill replicas stop after the prefill step: the first
    // output token is emitted here, the remaining decode runs wherever the
    // streamed KV lands (DESIGN.md §13).
    const bool prefill_done = r.request.prefill_only && r.prefilled;
    if (r.generated >= r.request.target_output_len || context_capped ||
        prefill_done) {
      ContextState* conv = cache_.Find(r.request.conversation_id);
      conv->Unpin();
      conv->set_last_active(finish_time);
      auto inflight_it = inflight_.find(r.request.conversation_id);
      if (--inflight_it->second == 0) {
        inflight_.erase(inflight_it);
      }
      RequestOutcome outcome;
      outcome.request = r.request;
      outcome.first_scheduled_time = r.first_scheduled_time;
      outcome.finish_time = finish_time;
      outcome.prefill_input_tokens =
          r.recomputed + r.request.new_prompt_len - r.shared_prompt_skipped;
      outcome.reused_gpu_tokens = r.reused_gpu;
      outcome.reused_cpu_tokens = r.reused_cpu;
      outcome.reused_ssd_tokens = r.reused_ssd;
      outcome.reused_shared_tokens = r.reused_shared;
      outcome.recomputed_tokens = r.recomputed;
      outcome.generated_tokens = r.generated;
      outcome.suspensions = r.suspensions;
      outcome.first_token_time = r.first_token_time;
      outcome.prefill_compute_start = r.prefill_compute_start;
      result.finished.push_back(std::move(outcome));
    } else {
      keep.push_back(std::move(r));
    }
  }
  running_ = std::move(keep);
  SyncFlashStats();
  SyncShareStats();
  SyncQuantStats();
  return result;
}

EngineLoad PensieveEngine::Load() const {
  EngineLoad load;
  load.waiting_requests = num_waiting();
  load.running_requests = num_running();
  for (const Running& r : waiting_) {
    load.queued_input_tokens += r.pending_new_tokens + r.pending_recompute;
    load.outstanding_output_tokens += r.request.target_output_len - r.generated;
    if (r.first_scheduled_time < 0) {
      // Never admitted: the recompute tail is only priced at admission, so
      // count the history tokens no local KV covers as queued prefill work.
      const int64_t uncached =
          r.request.history_len -
          CachedConversationTokens(r.request.conversation_id);
      load.queued_uncached_prefill_tokens += std::max<int64_t>(0, uncached);
    }
  }
  for (const Running& r : running_) {
    load.outstanding_output_tokens += r.request.target_output_len - r.generated;
  }
  return load;
}

int64_t PensieveEngine::CachedConversationTokens(int64_t conversation_id) const {
  const ContextState* conv = cache_.Find(conversation_id);
  if (conv == nullptr) {
    return 0;
  }
  return conv->kv_len() - conv->LeadingDroppedTokens();
}

MigratedKvState PensieveEngine::ExportConversationState(int64_t conversation_id) {
  MigratedKvState state;
  ContextState* conv = cache_.Find(conversation_id);
  if (conv == nullptr) {
    return state;
  }
  PENSIEVE_CHECK(inflight_.find(conversation_id) == inflight_.end())
      << "cannot migrate conversation " << conversation_id
      << " with requests in flight";
  PENSIEVE_CHECK(!conv->pinned());
  state.kv_len = conv->kv_len();
  state.resident_tokens = state.kv_len - conv->LeadingDroppedTokens();
  // Every tensor-parallel worker ships its feature slice of each chunk.
  state.bytes = static_cast<double>(state.resident_tokens) *
                static_cast<double>(KvWireBytesPerToken()) *
                static_cast<double>(cost_model_.hardware().num_gpus);
  cache_.Release(conversation_id);
  stats_.migrated_out_tokens += state.resident_tokens;
  return state;
}

DrainedWork PensieveEngine::DrainUnfinished() {
  DrainedWork drained;
  drained.requests.reserve(waiting_.size() + running_.size());
  for (const Running& r : running_) {
    drained.requests.push_back(r.request);
    drained.lost_generated_tokens += r.generated;
  }
  for (const Running& r : waiting_) {
    drained.requests.push_back(r.request);
    drained.lost_generated_tokens += r.generated;
  }
  std::sort(drained.requests.begin(), drained.requests.end(),
            [](const Request& a, const Request& b) {
              return a.request_id < b.request_id;
            });
  running_.clear();
  waiting_.clear();
  inflight_.clear();
  pending_forced_stall_ = 0.0;
  SyncFlashStats();
  SyncShareStats();
  SyncQuantStats();
  return drained;
}

DrainedWork PensieveEngine::DrainForRehome() {
  // Running requests hold admission state a crash simply discards but a live
  // drain must unwind: their conversations are pinned (TryAdmit) and may
  // hold restored-but-unprefilled chunks whose KV is garbage until the
  // prefill runs. Mirror SuspendRequest: unpin and re-drop those chunks so
  // ExportConversationState sees a clean, unpinned conversation.
  for (Running& r : running_) {
    const int64_t conv_id = r.request.conversation_id;
    ContextState* conv = cache_.Find(conv_id);
    PENSIEVE_CHECK(conv != nullptr);
    conv->Unpin();
    for (int64_t i = 0; i < r.restored_chunks; ++i) {
      if (!cache_.DropChunk(conv_id, i).ok()) {
        break;
      }
    }
    r.restored_chunks = 0;
  }
  return DrainUnfinished();
}

std::vector<PeerSpillOffer> PensieveEngine::TakePeerSpillOffers() {
  std::vector<PeerSpillOffer> offers;
  for (const CacheCoordinator::PeerOffer& o : coordinator_.TakePeerOffers()) {
    PeerSpillOffer out;
    out.conversation_id = o.conversation;
    out.first_token = o.first_token;
    out.num_tokens = o.num_tokens;
    out.bytes = static_cast<double>(o.num_tokens) *
                static_cast<double>(KvWireBytesPerToken()) *
                static_cast<double>(cost_model_.hardware().num_gpus);
    stats_.peer_spill_out_tokens += o.num_tokens;
    offers.push_back(out);
  }
  return offers;
}

int64_t PensieveEngine::IdleCpuCacheTokens() const {
  return cache_.cpu_allocator().num_free() * options_.block_size;
}

int64_t PensieveEngine::ReserveForeignCpuTokens(int64_t tokens) {
  PENSIEVE_CHECK_GE(tokens, 0);
  if (tokens == 0) {
    return 0;
  }
  const int64_t blocks =
      (tokens + options_.block_size - 1) / options_.block_size;
  return cache_.ReserveForeignCpuBlocks(blocks) == blocks ? tokens : 0;
}

void PensieveEngine::ReleaseForeignCpuTokens(int64_t tokens) {
  PENSIEVE_CHECK_GE(tokens, 0);
  const int64_t blocks =
      (tokens + options_.block_size - 1) / options_.block_size;
  cache_.ReleaseForeignCpuBlocks(blocks);
}

int64_t PensieveEngine::AcceptPeerPrefix(int64_t conversation_id,
                                         int64_t first_token,
                                         int64_t last_token,
                                         int64_t kv_len_hint, double now) {
  if (last_token <= first_token) {
    return 0;
  }
  ContextState* conv = cache_.Find(conversation_id);
  if (conv == nullptr) {
    // No local bookkeeping: the segment is adoptable only as the trailing
    // end of the conversation's full history (everything after it would
    // otherwise be silently forgotten).
    if (kv_len_hint <= 0 || last_token != kv_len_hint) {
      return 0;
    }
    const int64_t adopted = cache_.ImportCpuResident(
        conversation_id, kv_len_hint, last_token - first_token);
    if (adopted > 0) {
      cache_.Find(conversation_id)->set_last_active(now);
      stats_.peer_spill_in_tokens += adopted;
    }
    return adopted;
  }
  if (inflight_.find(conversation_id) != inflight_.end()) {
    // A racing request is already recomputing locally; never clobber it.
    return 0;
  }
  if (conv->LeadingDroppedTokens() != last_token) {
    // The stash no longer lines up with the dropped frontier (the local
    // copy was dropped deeper or restored past it); adopting would leave a
    // hole in the prefix.
    return 0;
  }
  int64_t adopted = 0;
  for (int64_t chunk = conv->LeadingDroppedChunks() - 1;
       chunk >= 0 && conv->ChunkStartToken(chunk) >= first_token; --chunk) {
    if (!cache_.RestoreDroppedToCpu(conversation_id, chunk).ok()) {
      break;  // CPU tier full (or flash run below): keep what landed
    }
    adopted += conv->chunk(chunk).num_tokens;
  }
  if (adopted > 0) {
    conv->set_last_active(now);
    stats_.peer_spill_in_tokens += adopted;
  }
  return adopted;
}

int64_t PensieveEngine::TotalCachedTokens() const {
  int64_t total = 0;
  for (const auto& [id, conv] : cache_.conversations()) {
    total += conv.kv_len() - conv.LeadingDroppedTokens();
  }
  return total;
}

int64_t PensieveEngine::ImportConversationState(int64_t conversation_id,
                                                const MigratedKvState& state,
                                                double now) {
  if (state.Empty()) {
    return 0;
  }
  if (inflight_.find(conversation_id) != inflight_.end()) {
    // A racing request is already recomputing this conversation locally
    // (e.g. a handoff stream landed after its continuation had been
    // re-routed past it). Dropping the stream is the degradation contract;
    // never clobber live KV.
    return 0;
  }
  const ContextState* existing = cache_.Find(conversation_id);
  if (existing != nullptr) {
    const int64_t existing_resident =
        existing->kv_len() - existing->LeadingDroppedTokens();
    if (existing->kv_len() >= state.kv_len &&
        existing_resident >= state.resident_tokens) {
      return 0;  // the local copy is at least as fresh as the import
    }
    cache_.Release(conversation_id);
  }
  const int64_t adopted =
      state.gpu_direct
          ? cache_.ImportGpuResident(conversation_id, state.kv_len,
                                     state.resident_tokens)
          : cache_.ImportCpuResident(conversation_id, state.kv_len,
                                     state.resident_tokens);
  cache_.Find(conversation_id)->set_last_active(now);
  stats_.migrated_in_tokens += adopted;
  return adopted;
}

}  // namespace pensieve

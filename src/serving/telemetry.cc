#include "src/serving/telemetry.h"

#include <cstdio>
#include <fstream>

namespace pensieve {

StepTraceSummary SummarizeStepTrace(const std::vector<StepTraceEntry>& trace) {
  StepTraceSummary summary;
  summary.steps = static_cast<int64_t>(trace.size());
  if (trace.empty()) {
    return summary;
  }
  double requests = 0.0;
  double tokens = 0.0;
  for (const StepTraceEntry& e : trace) {
    requests += static_cast<double>(e.batch_requests);
    tokens += static_cast<double>(e.batch_tokens);
    summary.busy_seconds += e.duration;
  }
  summary.mean_batch_requests = requests / static_cast<double>(trace.size());
  summary.mean_batch_tokens = tokens / static_cast<double>(trace.size());
  summary.mean_step_seconds = summary.busy_seconds / static_cast<double>(trace.size());
  return summary;
}

std::string FormatLinkFaultLine(const LinkFaultStats& faults) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%lld injected on %lld transfers (%lld timeout, %lld stall, "
                "%lld partial, %lld corrupt); %lld retries, %lld recovered, "
                "%lld unrecovered, %lld exhausted, %.3f s backoff",
                static_cast<long long>(faults.InjectedFaults()),
                static_cast<long long>(faults.transfers),
                static_cast<long long>(faults.injected_timeouts),
                static_cast<long long>(faults.injected_stalls),
                static_cast<long long>(faults.injected_partials),
                static_cast<long long>(faults.injected_corruptions),
                static_cast<long long>(faults.retries),
                static_cast<long long>(faults.recovered_faults),
                static_cast<long long>(faults.unrecovered_faults),
                static_cast<long long>(faults.exhausted_transfers),
                faults.retry_backoff_seconds);
  return buf;
}

std::string FormatKvFaultSummary(const EngineStats& stats) {
  if (stats.link_faults.InjectedFaults() == 0 &&
      stats.fault_degraded_admissions == 0 &&
      stats.checksum_detected_corruptions == 0) {
    return "";
  }
  std::string out = "kv-faults:         " + FormatLinkFaultLine(stats.link_faults) + "\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "kv-degrade:        %lld degraded admissions, %lld corrupt "
                "chunks detected, %lld chunks dropped, %lld tokens recomputed, "
                "%lld failed swap-outs\n",
                static_cast<long long>(stats.fault_degraded_admissions),
                static_cast<long long>(stats.checksum_detected_corruptions),
                static_cast<long long>(stats.fault_dropped_chunks),
                static_cast<long long>(stats.fault_recompute_tokens),
                static_cast<long long>(stats.fault_failed_swap_outs));
  out += buf;
  return out;
}

std::string FormatSsdTierSummary(const EngineStats& stats) {
  if (stats.ssd_demoted_chunks == 0 && stats.ssd_promoted_chunks == 0 &&
      stats.reused_ssd_tokens == 0 &&
      stats.ssd_link_faults.InjectedFaults() == 0) {
    return "";
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ssd-hits:          %lld tokens promoted (%lld chunks) vs "
                "%lld tokens demoted (%lld chunks), %.3f hit rate\n",
                static_cast<long long>(stats.reused_ssd_tokens),
                static_cast<long long>(stats.ssd_promoted_chunks),
                static_cast<long long>(stats.ssd_demoted_tokens),
                static_cast<long long>(stats.ssd_demoted_chunks),
                stats.SsdCacheHitRate());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "ssd-write-amp:     %.3f (%lld user blocks, %lld GC moves)\n",
                stats.SsdWriteAmplification(),
                static_cast<long long>(stats.ssd_user_blocks_written),
                static_cast<long long>(stats.ssd_gc_moves));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "ssd-gc-moves:      %lld relocations over %lld GC runs; "
                "%lld chunks (%lld tokens) evicted, %lld failed demotes, "
                "%lld tokens planned for recompute\n",
                static_cast<long long>(stats.ssd_gc_moves),
                static_cast<long long>(stats.ssd_gc_runs),
                static_cast<long long>(stats.ssd_evicted_chunks),
                static_cast<long long>(stats.ssd_evicted_tokens),
                static_cast<long long>(stats.ssd_failed_demotes),
                static_cast<long long>(stats.ssd_planned_recompute_tokens));
  out += buf;
  if (stats.ssd_link_faults.InjectedFaults() > 0) {
    out += "ssd-faults:        " + FormatLinkFaultLine(stats.ssd_link_faults) + "\n";
  }
  return out;
}

std::string FormatPrefixSharingSummary(const EngineStats& stats) {
  if (stats.dedup_hit_requests == 0 && stats.shared_attached_chunks == 0 &&
      stats.cow_copies == 0) {
    return "";
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "dedup-hits:        %lld requests attached %lld shared tokens "
                "(%lld chunk views)\n",
                static_cast<long long>(stats.dedup_hit_requests),
                static_cast<long long>(stats.reused_shared_tokens),
                static_cast<long long>(stats.shared_attached_chunks));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "shared-blocks:     %lld peak shared, %lld peak allocated of a "
                "ledger of %lld acquires / %lld releases (%lld live)\n",
                static_cast<long long>(stats.peak_shared_blocks),
                static_cast<long long>(stats.gpu_peak_allocated_blocks),
                static_cast<long long>(stats.kv_block_acquires),
                static_cast<long long>(stats.kv_block_releases),
                static_cast<long long>(stats.kv_blocks_live));
  out += buf;
  std::snprintf(buf, sizeof(buf), "cow-copies:        %lld divergence copies\n",
                static_cast<long long>(stats.cow_copies));
  out += buf;
  return out;
}

std::string FormatKvQuantSummary(const EngineStats& stats) {
  if (stats.kv_quant_blocks == 0 && stats.kv_quant_bytes_saved == 0) {
    return "";
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "kv-quant-blocks:   %lld blocks int8-quantized at the GPU "
                "boundary\n",
                static_cast<long long>(stats.kv_quant_blocks));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "kv-quant-bytes-saved: %.1f MB vs fp16 KV in the CPU/SSD "
                "tiers\n",
                static_cast<double>(stats.kv_quant_bytes_saved) / 1e6);
  out += buf;
  return out;
}

Status WriteStepTraceCsv(const std::string& path,
                         const std::vector<StepTraceEntry>& trace,
                         QuantMode weight_quant) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path);
  }
  const char* quant = QuantModeName(weight_quant);
  out << "start_s,duration_s,batch_requests,batch_tokens,finished,weight_quant\n";
  for (const StepTraceEntry& e : trace) {
    out << e.start << ',' << e.duration << ',' << e.batch_requests << ','
        << e.batch_tokens << ',' << e.finished << ',' << quant << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed for " + path);
  }
  return Status::Ok();
}

Status WriteOutcomesCsv(const std::string& path,
                        const std::vector<RequestOutcome>& outcomes) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path);
  }
  out << "request_id,conversation_id,turn,arrival_s,first_scheduled_s,finish_s,"
         "prompt_tokens,history_tokens,output_tokens,normalized_latency_s,"
         "reused_gpu,reused_cpu,reused_ssd,reused_shared,recomputed,suspensions,"
         "first_token_s,prefill_replica,handoff_done_s,decode_admit_s\n";
  for (const RequestOutcome& o : outcomes) {
    out << o.request.request_id << ',' << o.request.conversation_id << ','
        << o.request.turn_index << ',' << o.request.arrival_time << ','
        << o.first_scheduled_time << ',' << o.finish_time << ','
        << o.request.new_prompt_len << ',' << o.request.history_len << ','
        << o.request.target_output_len << ',' << o.NormalizedLatency() << ','
        << o.reused_gpu_tokens << ',' << o.reused_cpu_tokens << ','
        << o.reused_ssd_tokens << ',' << o.reused_shared_tokens << ','
        << o.recomputed_tokens << ',' << o.suspensions << ','
        // TTFT attribution (DESIGN.md §13): which replica ran the prefill
        // and where the time went — prefill queueing (first_scheduled),
        // stream latency (handoff_done), decode admission (decode_admit).
        << o.first_token_time << ',' << o.prefill_replica << ','
        << o.handoff_stream_done << ',' << o.decode_admit_time << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace pensieve

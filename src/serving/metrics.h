// Experiment metrics: throughput and normalized latency (paper §6.1).

#ifndef PENSIEVE_SRC_SERVING_METRICS_H_
#define PENSIEVE_SRC_SERVING_METRICS_H_

#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/scheduler/request.h"
#include "src/serving/engine.h"

namespace pensieve {

struct ServingSummary {
  std::string engine_name;
  int64_t completed_requests = 0;  // total over the whole experiment
  double makespan = 0.0;
  // Steady-state measurement window. Experiments are open-loop only at the
  // conversation level; a handful of long think-time chains outlive the
  // arrival process, so throughput over the full makespan would be
  // tail-dominated. Metrics below are computed over completions inside
  // [window_begin, window_end] (with a fallback to the full run when the
  // window holds too few samples).
  double window_begin = 0.0;
  double window_end = 0.0;
  int64_t window_completions = 0;
  // Completed requests per second within the window.
  double throughput_rps = 0.0;
  // Generated tokens per second within the window.
  double token_throughput = 0.0;
  // Normalized latency = end-to-end latency / output tokens (s/token).
  double mean_normalized_latency = 0.0;
  double p50_normalized_latency = 0.0;
  double p90_normalized_latency = 0.0;
  double p99_normalized_latency = 0.0;
  // Time-to-first-token and inter-token latency, over outcomes that carry a
  // first-token timestamp (engines that predate the field contribute
  // nothing). ITL = (finish - first_token) / (generated - 1), the
  // prefill-interference signal disaggregation targets; requests generating
  // a single token have no token gap and are skipped.
  int64_t ttft_samples = 0;
  double mean_ttft = 0.0;
  double p99_ttft = 0.0;
  int64_t itl_samples = 0;
  double mean_itl = 0.0;
  double p99_itl = 0.0;
  EngineStats engine_stats;
};

class MetricsCollector {
 public:
  void Record(const RequestOutcome& outcome);

  // window_begin/window_end delimit the steady-state measurement interval;
  // pass (0, makespan) to measure the full run.
  ServingSummary Summarize(const std::string& engine_name, double makespan,
                           const EngineStats& engine_stats,
                           double window_begin = 0.0,
                           double window_end = -1.0) const;

  // Summarizes the union of several collectors' outcomes (in collector
  // order) without copying them anywhere: the cluster driver merges its
  // per-replica collectors this way, so every outcome is stored exactly
  // once. Null entries are skipped.
  static ServingSummary SummarizeMerged(
      const std::vector<const MetricsCollector*>& collectors,
      const std::string& engine_name, double makespan,
      const EngineStats& engine_stats, double window_begin = 0.0,
      double window_end = -1.0);

  const std::vector<RequestOutcome>& outcomes() const { return outcomes_; }

 private:
  std::vector<RequestOutcome> outcomes_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SERVING_METRICS_H_

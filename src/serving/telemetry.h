// Experiment telemetry: per-step traces and CSV export.
//
// A downstream user analyzing a serving run wants more than summary
// percentiles: per-step batch composition (to see batching efficiency),
// per-request timelines (queueing vs service), and machine-readable dumps
// of sweep results for plotting. This module provides all three.

#ifndef PENSIEVE_SRC_SERVING_TELEMETRY_H_
#define PENSIEVE_SRC_SERVING_TELEMETRY_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/scheduler/request.h"
#include "src/serving/engine.h"
#include "src/tensor/packed_matrix.h"

namespace pensieve {

// One scheduler iteration, as observed by the driver.
struct StepTraceEntry {
  double start = 0.0;
  double duration = 0.0;
  int64_t batch_requests = 0;
  int64_t batch_tokens = 0;
  int64_t finished = 0;
};

// Aggregates over a step trace.
struct StepTraceSummary {
  int64_t steps = 0;
  double mean_batch_requests = 0.0;
  double mean_batch_tokens = 0.0;
  double mean_step_seconds = 0.0;
  double busy_seconds = 0.0;
};
StepTraceSummary SummarizeStepTrace(const std::vector<StepTraceEntry>& trace);

// One line of injected-fault accounting for a KV-transfer link (no trailing
// newline).
std::string FormatLinkFaultLine(const LinkFaultStats& faults);

// Human-readable KV-fault report for an experiment summary: the PCIe link's
// fault accounting plus what degraded to recomputation. Empty when nothing
// was injected or detected, so zero-rate runs print exactly what they always
// did.
std::string FormatKvFaultSummary(const EngineStats& stats);

// Human-readable flash-tier report (`ssd-hits:`, `ssd-write-amp:`,
// `ssd-gc-moves:` lines, plus `ssd-faults:` when the SSD link injected any).
// Empty when the tier saw no traffic, so flash-disabled runs print exactly
// what they always did.
std::string FormatSsdTierSummary(const EngineStats& stats);

// Human-readable shared-prefix dedup report (`dedup-hits:`,
// `shared-blocks:`, `cow-copies:` lines). Empty when no sharing happened, so
// dedup-off runs and template-free traces print exactly what they always did.
std::string FormatPrefixSharingSummary(const EngineStats& stats);

// Human-readable KV-quantization report (`kv-quant-blocks:` and
// `kv-quant-bytes-saved:` lines). Empty when no block was quantized, so
// kv-quant-off runs print exactly what they always did.
std::string FormatKvQuantSummary(const EngineStats& stats);

// CSV writers. Paths are created/truncated; returns an error on I/O failure.
// The step trace carries the run's weight-quantization mode as a constant
// `weight_quant` column so downstream plots can separate fp32/int8 sweeps.
Status WriteStepTraceCsv(const std::string& path,
                         const std::vector<StepTraceEntry>& trace,
                         QuantMode weight_quant = QuantMode::kFp32);
Status WriteOutcomesCsv(const std::string& path,
                        const std::vector<RequestOutcome>& outcomes);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SERVING_TELEMETRY_H_

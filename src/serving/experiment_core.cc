#include "src/serving/experiment_core.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

double ArrivalSpan(const WorkloadTrace& trace) {
  double span = 0.0;
  for (const TraceConversation& conv : trace.conversations()) {
    span = std::max(span, conv.first_arrival);
  }
  return span;
}

SteadyStateWindow ComputeSteadyStateWindow(double arrival_span,
                                           double last_finish) {
  SteadyStateWindow window;
  window.begin = 0.1 * arrival_span;
  window.end = arrival_span > 0.0 ? arrival_span : last_finish;
  return window;
}

ArrivalProcess::ArrivalProcess(const WorkloadTrace& trace, EventQueue* events)
    : trace_(trace), events_(events) {
  PENSIEVE_CHECK(events_ != nullptr);
  const auto& conversations = trace_.conversations();
  for (int64_t i = 0; i < static_cast<int64_t>(conversations.size()); ++i) {
    SimEvent event;
    event.time = conversations[static_cast<size_t>(i)].first_arrival;
    event.kind = SimEventKind::kArrival;
    event.id = i;
    event.turn = 0;
    events_->Push(event);
  }
}

Request ArrivalProcess::BuildRequest(const SimEvent& arrival) {
  PENSIEVE_CHECK(arrival.kind == SimEventKind::kArrival);
  const TraceConversation& conv =
      trace_.conversations()[static_cast<size_t>(arrival.id)];
  const TurnSpec& turn = conv.spec.turns[static_cast<size_t>(arrival.turn)];
  Request req;
  req.request_id = next_request_id_++;
  req.conversation_id = conv.spec.conversation_id;
  req.turn_index = arrival.turn;
  req.new_prompt_len = turn.input_len;
  req.history_len = conv.spec.HistoryLenBeforeTurn(arrival.turn);
  req.target_output_len = turn.output_len;
  req.arrival_time = arrival.time;
  req.template_id = conv.spec.template_id;
  req.template_prefix_len = conv.spec.template_prefix_len;
  return req;
}

void ArrivalProcess::OnRequestFinished(const RequestOutcome& outcome) {
  // Conversation ids are validated dense at trace load, so the id doubles as
  // the index.
  const int64_t conv_index = outcome.request.conversation_id;
  const TraceConversation& conv =
      trace_.conversations()[static_cast<size_t>(conv_index)];
  const int32_t next_turn = outcome.request.turn_index + 1;
  if (next_turn >= static_cast<int32_t>(conv.spec.turns.size())) {
    return;
  }
  const double think =
      conv.think_times[static_cast<size_t>(outcome.request.turn_index)];
  SimEvent event;
  event.time = outcome.finish_time + think;
  event.kind = SimEventKind::kArrival;
  event.id = conv_index;
  event.turn = next_turn;
  events_->Push(event);
}

}  // namespace pensieve

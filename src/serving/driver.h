// Virtual-time serving experiment driver.
//
// Replays a WorkloadTrace against an engine: new conversations arrive by the
// pre-sampled Poisson process; a conversation's next turn arrives only after
// the engine finishes the previous turn plus the sampled user think time
// (causal dependency, paper §6.1).

#ifndef PENSIEVE_SRC_SERVING_DRIVER_H_
#define PENSIEVE_SRC_SERVING_DRIVER_H_

#include <vector>

#include "src/serving/engine.h"
#include "src/serving/metrics.h"
#include "src/serving/telemetry.h"
#include "src/workload/trace.h"

namespace pensieve {

struct DriverOptions {
  // Safety valve on simulated steps (0 = unlimited).
  int64_t max_steps = 0;
  // When non-null, receives one entry per scheduler iteration.
  std::vector<StepTraceEntry>* step_trace = nullptr;
  // When non-null, receives every request outcome (for CSV export).
  std::vector<RequestOutcome>* outcomes = nullptr;
};

ServingSummary RunServingExperiment(Engine* engine, const WorkloadTrace& trace,
                                    const DriverOptions& options = {});

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SERVING_DRIVER_H_

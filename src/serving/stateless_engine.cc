#include "src/serving/stateless_engine.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

StatelessEngine::StatelessEngine(const GpuCostModel& cost_model,
                                 StatelessEngineOptions options)
    : cost_model_(cost_model), options_(std::move(options)),
      allocator_(options_.num_gpu_blocks) {
  PENSIEVE_CHECK_GT(options_.num_gpu_blocks, 0);
}

void StatelessEngine::Enqueue(const Request& request, double now) {
  Sequence seq;
  seq.request = request;
  // Stateless serving: the entire history is part of the prompt.
  seq.prefill_len = request.history_len + request.new_prompt_len;
  waiting_.push_back(std::move(seq));
}

bool StatelessEngine::HasWork() const { return !waiting_.empty() || !running_.empty(); }

bool StatelessEngine::GrowTo(Sequence* seq, int64_t new_context_len) {
  const int64_t needed = BlocksForTokens(new_context_len);
  while (static_cast<int64_t>(seq->blocks.size()) < needed) {
    auto block = allocator_.Allocate();
    if (!block.has_value()) {
      return false;
    }
    seq->blocks.push_back(*block);
  }
  seq->context_len = new_context_len;
  return true;
}

void StatelessEngine::FreeSequence(Sequence* seq) {
  for (BlockId b : seq->blocks) {
    allocator_.Free(b);
  }
  seq->blocks.clear();
  seq->context_len = 0;
}

DrainedWork StatelessEngine::DrainUnfinished() {
  DrainedWork drained;
  drained.requests.reserve(waiting_.size() + running_.size());
  for (Sequence& seq : running_) {
    drained.requests.push_back(seq.request);
    drained.lost_generated_tokens += seq.generated;
    FreeSequence(&seq);
  }
  for (Sequence& seq : waiting_) {
    drained.requests.push_back(seq.request);
    drained.lost_generated_tokens += seq.generated;
    FreeSequence(&seq);
  }
  std::sort(drained.requests.begin(), drained.requests.end(),
            [](const Request& a, const Request& b) {
              return a.request_id < b.request_id;
            });
  running_.clear();
  waiting_.clear();
  return drained;
}

void StatelessEngine::Preempt(Sequence* seq) {
  // Recompute-preemption (vLLM default): release all memory; on
  // readmission the prompt plus already-emitted output is prefull-ed again.
  FreeSequence(seq);
  seq->prefill_len = seq->request.history_len + seq->request.new_prompt_len +
                     seq->generated;
  ++seq->preemptions;
  ++stats_.preemptions;
  waiting_.push_front(std::move(*seq));
}

RequestOutcome StatelessEngine::MakeOutcome(const Sequence& seq,
                                            double finish_time) const {
  RequestOutcome outcome;
  outcome.request = seq.request;
  outcome.first_scheduled_time = seq.first_scheduled_time;
  outcome.finish_time = finish_time;
  outcome.prefill_input_tokens = seq.request.history_len + seq.request.new_prompt_len;
  outcome.recomputed_tokens = seq.request.history_len;  // stateless: all history
  outcome.generated_tokens = seq.generated;
  outcome.suspensions = seq.preemptions;
  return outcome;
}

EngineLoad StatelessEngine::Load() const {
  EngineLoad load;
  load.waiting_requests = static_cast<int64_t>(waiting_.size());
  load.running_requests = static_cast<int64_t>(running_.size());
  for (const Sequence& seq : waiting_) {
    load.queued_input_tokens += seq.prefill_len;
    load.outstanding_output_tokens += seq.request.target_output_len - seq.generated;
  }
  for (const Sequence& seq : running_) {
    load.outstanding_output_tokens += seq.request.target_output_len - seq.generated;
  }
  return load;
}

StepResult StatelessEngine::Step(double now) {
  StepResult result;

  // --- Phase selection: prefill has priority (vLLM scheduler) -------------
  std::vector<size_t> admitted;
  int64_t batch_tokens = 0;
  while (!waiting_.empty()) {
    Sequence& cand = waiting_.front();
    if (static_cast<int64_t>(running_.size() + admitted.size()) >=
        options_.max_running) {
      break;
    }
    if (batch_tokens + cand.prefill_len > options_.max_batch_tokens &&
        !admitted.empty()) {
      break;
    }
    // Admission requires room for the whole prompt's pages.
    if (BlocksForTokens(cand.prefill_len) > allocator_.num_free()) {
      break;
    }
    Sequence seq = std::move(waiting_.front());
    waiting_.pop_front();
    PENSIEVE_CHECK(GrowTo(&seq, seq.prefill_len));
    if (seq.first_scheduled_time < 0) {
      seq.first_scheduled_time = now;
    }
    batch_tokens += seq.prefill_len;
    running_.push_back(std::move(seq));
    admitted.push_back(running_.size() - 1);
    // A very long prompt may exceed the token budget on its own; it is
    // admitted alone (checked above via !admitted.empty()).
    if (batch_tokens >= options_.max_batch_tokens) {
      break;
    }
  }

  std::vector<GpuCostModel::BatchItem> items;
  if (!admitted.empty()) {
    // Prefill-only step (baselines batch the two phases separately). The
    // prefill also produces each sequence's first output token.
    items.reserve(admitted.size());
    for (size_t idx : admitted) {
      Sequence& seq = running_[idx];
      items.push_back({seq.prefill_len, seq.context_len});
      stats_.prefill_tokens += seq.prefill_len;
      stats_.recomputed_history_tokens += seq.request.history_len;
    }
  } else {
    if (running_.empty()) {
      result.idle = true;
      return result;
    }
    // Decode step: one token per running sequence. Grow pages first; on
    // exhaustion, preempt the latest-arrived sequence and retry.
    for (size_t i = 0; i < running_.size();) {
      Sequence& seq = running_[i];
      if (GrowTo(&seq, seq.context_len + 1)) {
        ++i;
        continue;
      }
      // Preempt the most recently arrived running sequence.
      size_t victim = 0;
      for (size_t j = 1; j < running_.size(); ++j) {
        if (running_[j].request.arrival_time >
            running_[victim].request.arrival_time) {
          victim = j;
        }
      }
      Sequence victim_seq = std::move(running_[victim]);
      running_.erase(running_.begin() + static_cast<int64_t>(victim));
      Preempt(&victim_seq);
      if (victim <= i && i > 0) {
        --i;  // indices shifted left
      }
      if (running_.empty()) {
        result.idle = true;
        return result;
      }
    }
    items.reserve(running_.size());
    for (Sequence& seq : running_) {
      items.push_back({1, seq.context_len});
    }
  }

  const double duration = UnifiedStepTime(cost_model_, items, options_.dense_speedup);
  result.duration = duration;
  result.batch_requests = static_cast<int64_t>(items.size());
  for (const GpuCostModel::BatchItem& item : items) {
    result.batch_tokens += item.query_len;
  }
  ++stats_.steps;
  stats_.busy_seconds += duration;

  // Every sequence that computed this step emits one token.
  const double finish_time = now + duration;
  std::vector<Sequence> still_running;
  still_running.reserve(running_.size());
  const bool prefill_step = !admitted.empty();
  for (size_t i = 0; i < running_.size(); ++i) {
    Sequence& seq = running_[i];
    const bool computed =
        !prefill_step || std::find(admitted.begin(), admitted.end(), i) != admitted.end();
    if (!computed) {
      still_running.push_back(std::move(seq));
      continue;
    }
    ++seq.generated;
    ++stats_.generated_tokens;
    if (seq.generated >= seq.request.target_output_len) {
      FreeSequence(&seq);  // stateless: release everything at finish
      result.finished.push_back(MakeOutcome(seq, finish_time));
    } else {
      still_running.push_back(std::move(seq));
    }
  }
  running_ = std::move(still_running);
  return result;
}

}  // namespace pensieve

#include "src/serving/metrics.h"

#include <algorithm>
#include <tuple>

namespace pensieve {

void MetricsCollector::Record(const RequestOutcome& outcome) {
  outcomes_.push_back(outcome);
}

ServingSummary MetricsCollector::Summarize(const std::string& engine_name,
                                           double makespan,
                                           const EngineStats& engine_stats,
                                           double window_begin,
                                           double window_end) const {
  return SummarizeMerged({this}, engine_name, makespan, engine_stats,
                         window_begin, window_end);
}

ServingSummary MetricsCollector::SummarizeMerged(
    const std::vector<const MetricsCollector*>& collectors,
    const std::string& engine_name, double makespan,
    const EngineStats& engine_stats, double window_begin, double window_end) {
  if (window_end < 0.0) {
    window_end = makespan;
  }
  int64_t total_outcomes = 0;
  for (const MetricsCollector* c : collectors) {
    if (c != nullptr) {
      total_outcomes += static_cast<int64_t>(c->outcomes_.size());
    }
  }
  ServingSummary summary;
  summary.engine_name = engine_name;
  summary.completed_requests = total_outcomes;
  summary.makespan = makespan;

  auto collect = [&](double begin, double end) {
    SampleStats latency;
    SampleStats ttft;
    SampleStats itl;
    int64_t tokens = 0;
    int64_t completions = 0;
    for (const MetricsCollector* c : collectors) {
      if (c == nullptr) {
        continue;
      }
      for (const RequestOutcome& o : c->outcomes_) {
        if (o.finish_time < begin || o.finish_time > end) {
          continue;
        }
        latency.Add(o.NormalizedLatency());
        if (o.first_token_time > 0.0) {
          ttft.Add(o.first_token_time - o.request.arrival_time);
          if (o.generated_tokens > 1) {
            itl.Add((o.finish_time - o.first_token_time) /
                    static_cast<double>(o.generated_tokens - 1));
          }
        }
        // Tokens actually generated, not the target: an early-terminated
        // request must not inflate token throughput.
        tokens += o.generated_tokens;
        ++completions;
      }
    }
    return std::make_tuple(std::move(latency), std::move(ttft),
                           std::move(itl), tokens, completions);
  };

  auto [latency, ttft, itl, tokens, completions] =
      collect(window_begin, window_end);
  // Fall back to the full run when the window holds too few samples (small
  // unit-test traces).
  const int64_t min_samples = std::max<int64_t>(10, total_outcomes / 20);
  if (completions < min_samples) {
    window_begin = 0.0;
    window_end = makespan;
    std::tie(latency, ttft, itl, tokens, completions) =
        collect(window_begin, window_end);
  }
  summary.window_begin = window_begin;
  summary.window_end = window_end;
  summary.window_completions = completions;
  const double span = window_end - window_begin;
  if (span > 0.0) {
    summary.throughput_rps = static_cast<double>(completions) / span;
    summary.token_throughput = static_cast<double>(tokens) / span;
  }
  if (!latency.empty()) {
    summary.mean_normalized_latency = latency.Mean();
    summary.p50_normalized_latency = latency.Percentile(0.50);
    summary.p90_normalized_latency = latency.Percentile(0.90);
    summary.p99_normalized_latency = latency.Percentile(0.99);
  }
  if (!ttft.empty()) {
    summary.ttft_samples = static_cast<int64_t>(ttft.count());
    summary.mean_ttft = ttft.Mean();
    summary.p99_ttft = ttft.Percentile(0.99);
  }
  if (!itl.empty()) {
    summary.itl_samples = static_cast<int64_t>(itl.count());
    summary.mean_itl = itl.Mean();
    summary.p99_itl = itl.Percentile(0.99);
  }
  summary.engine_stats = engine_stats;
  return summary;
}

}  // namespace pensieve

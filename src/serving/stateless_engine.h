// Stateless baseline engines: vLLM and TensorRT-LLM (paper §6.1).
//
// Both baselines use paged KV memory, iteration-level batching with separate
// prefill and decode phases, FCFS admission, and recompute-preemption — and
// both are stateless across requests: a request's prompt is the full
// conversation history plus the new user prompt, and all of its cache slots
// are freed the moment it finishes.
//
// TensorRT-LLM is modeled as the same scheduler with a dense-operator
// speedup (graph rewriting / operator fusion) over the PyTorch-backend cost,
// which is exactly the advantage the paper attributes to it.

#ifndef PENSIEVE_SRC_SERVING_STATELESS_ENGINE_H_
#define PENSIEVE_SRC_SERVING_STATELESS_ENGINE_H_

#include <deque>
#include <string>
#include <vector>

#include "src/kvcache/block_allocator.h"
#include "src/scheduler/step_cost.h"
#include "src/serving/engine.h"
#include "src/sim/cost_model.h"

namespace pensieve {

struct StatelessEngineOptions {
  std::string name = "vllm";
  int64_t block_size = 16;  // vLLM's default page size
  int64_t num_gpu_blocks = 0;
  // Token budget for a prefill batch (vLLM max_num_batched_tokens).
  int64_t max_batch_tokens = 4096;
  int64_t max_running = 256;
  // > 1 models TensorRT-LLM's fused dense operators.
  double dense_speedup = 1.0;
};

class StatelessEngine final : public Engine {
 public:
  StatelessEngine(const GpuCostModel& cost_model, StatelessEngineOptions options);

  const std::string& name() const override { return options_.name; }
  void Enqueue(const Request& request, double now) override;
  bool HasWork() const override;
  StepResult Step(double now) override;
  const EngineStats& stats() const override { return stats_; }
  // No cross-request state, so the migration defaults (no-op) apply.
  EngineLoad Load() const override;

  // Fault injection: hand back all queued/running requests (crash path).
  DrainedWork DrainUnfinished() override;

 private:
  struct Sequence {
    Request request;
    double first_scheduled_time = -1.0;
    // Prompt tokens needing (re)computation at admission: history + new
    // prompt, plus any output tokens regenerated after a preemption.
    int64_t prefill_len = 0;
    int64_t generated = 0;  // output tokens produced so far
    int64_t context_len = 0;  // tokens with KV currently in the cache
    int32_t preemptions = 0;
    std::vector<BlockId> blocks;
  };

  int64_t BlocksForTokens(int64_t tokens) const {
    return (tokens + options_.block_size - 1) / options_.block_size;
  }
  bool GrowTo(Sequence* seq, int64_t new_context_len);
  void FreeSequence(Sequence* seq);
  void Preempt(Sequence* seq);
  RequestOutcome MakeOutcome(const Sequence& seq, double finish_time) const;

  const GpuCostModel& cost_model_;
  StatelessEngineOptions options_;
  BlockAllocator allocator_;
  std::deque<Sequence> waiting_;
  std::vector<Sequence> running_;
  EngineStats stats_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SERVING_STATELESS_ENGINE_H_

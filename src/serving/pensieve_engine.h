// The Pensieve stateful serving engine (paper §4).
//
// Key behaviours, with paper section references:
//  * Stateful KV reuse: a finished request's KV-tokens stay cached; the
//    conversation's next turn only processes its new prompt (§3.1).
//  * Unified iteration-level batching: prefill and generation tokens share
//    one batch/step, enabled by the multi-token attention kernel (§4.2,
//    §4.4.1). A split-phase mode reproduces the Figure 13 ablation.
//  * Two-tier GPU/CPU cache with chunk-granular retention-value eviction
//    (§4.3.1), ahead-of-time swap-out with lazy slot reclamation (§4.3.2),
//    pipelined layer-by-layer restore (§4.3.3), dropped-prefix
//    recomputation via sub-request splitting (§4.3.4), and suspension of
//    late-arriving requests under decode memory pressure (§4.3.5).
//  * Swap-in prioritized over eviction on the PCIe link (§5).

#ifndef PENSIEVE_SRC_SERVING_PENSIEVE_ENGINE_H_
#define PENSIEVE_SRC_SERVING_PENSIEVE_ENGINE_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/eviction/policy.h"
#include "src/kvcache/two_tier_cache.h"
#include "src/scheduler/cache_coordinator.h"
#include "src/scheduler/step_cost.h"
#include "src/serving/engine.h"
#include "src/sim/cost_model.h"
#include "src/sim/fault_injector.h"
#include "src/sim/ssd_link.h"
#include "src/sim/tp_group.h"

namespace pensieve {

struct PensieveEngineOptions {
  std::string name = "pensieve";
  int64_t block_size = kDefaultBlockSize;  // 32-token chunks (§4.3.1)
  int64_t num_gpu_blocks = 0;
  int64_t num_cpu_blocks = 0;
  int64_t max_batch_tokens = 4096;
  int64_t max_running = 256;
  // Ahead-of-time swap-out trigger: keep free+reclaimable above this (§4.3.2).
  double swap_out_threshold = 0.25;
  // Stop admitting new requests below this free fraction (§4.3.5).
  double decode_reserve = 0.10;
  bool use_cpu_cache = true;       // false => Pensieve (GPU cache) variant
  bool unified_scheduling = true;  // false => Figure 13 split-phase ablation
  bool pipelined_restore = true;   // false => blocking swap-in ablation
  bool prioritize_swap_in = true;  // false => duplex PCIe ablation (§5)
  double dense_speedup = 1.0;
  // Cross-conversation shared-prefix dedup: conversations opening with the
  // same template prefix (Request::template_id) attach refcounted views over
  // the blocks the first such conversation prefilled, skipping that prefill
  // entirely. Safe to leave on: a workload without template metadata never
  // touches the trie, keeping the engine bit-identical to the dedup-free
  // build.
  bool enable_prefix_sharing = true;
  EvictionPolicyKind policy = EvictionPolicyKind::kRetentionValue;
  // KV-transfer fault injection on the PCIe link (off by default: all rates
  // zero, which takes the injector's draw-free fast path).
  LinkFaultProfile pcie_fault_profile;
  LinkRetryPolicy fault_retry;
  uint64_t fault_seed = 0;
  // --- Flash (SSD) tier ----------------------------------------------------
  // Capacity 0 disables the tier entirely: the engine is then bit-identical
  // to the two-tier build. The tier also requires use_cpu_cache (it sits
  // behind the CPU tier).
  int64_t num_ssd_blocks = 0;
  FlashAlgoKind ssd_algo = FlashAlgoKind::kLru;
  int64_t ssd_segment_blocks = 64;
  // Fault injection on the simulated SSD link (demote/promote transfers).
  LinkFaultProfile ssd_fault_profile;
  // Int8 KV quantization at the tier boundary: CPU/SSD copies are stored
  // and transferred compressed (per-block amax scale), the CPU and SSD
  // block budgets are accounted in compressed bytes (~2x the
  // conversations per GB), and every off-GPU KV transfer — swap, spill,
  // promote, migration — is priced at the compressed size. Off by default;
  // when off the engine is bit-identical to the unquantized build.
  bool kv_quant = false;
  // Cross-replica CPU-tier spill (DESIGN.md §14): record CPU-pressure drops
  // as peer offers instead of discarding them silently. Off by default; the
  // local eviction sequence is identical either way.
  bool peer_spill = false;
};

class PensieveEngine final : public Engine {
 public:
  PensieveEngine(const GpuCostModel& cost_model, PensieveEngineOptions options);

  const std::string& name() const override { return options_.name; }
  void Enqueue(const Request& request, double now) override;
  bool HasWork() const override;
  StepResult Step(double now) override;
  const EngineStats& stats() const override { return stats_; }
  EngineLoad Load() const override;

  // Cluster state migration: a conversation's cached KV can be detached
  // here and re-homed on another replica (imported into its CPU tier).
  bool SupportsStateMigration() const override { return true; }
  int64_t CachedConversationTokens(int64_t conversation_id) const override;
  MigratedKvState ExportConversationState(int64_t conversation_id) override;
  int64_t ImportConversationState(int64_t conversation_id,
                                  const MigratedKvState& state,
                                  double now) override;

  // Fault injection: hand back all queued/running requests (crash path).
  DrainedWork DrainUnfinished() override;
  int64_t TotalCachedTokens() const override;

  // Live-drain variant (quarantine / scale-down, DESIGN.md §14): unpins the
  // running requests' conversations and re-drops their restored chunks so
  // every drained conversation is immediately exportable.
  DrainedWork DrainForRehome() override;

  // Cross-replica CPU-tier spill (DESIGN.md §14).
  std::vector<PeerSpillOffer> TakePeerSpillOffers() override;
  int64_t IdleCpuCacheTokens() const override;
  int64_t ReserveForeignCpuTokens(int64_t tokens) override;
  void ReleaseForeignCpuTokens(int64_t tokens) override;
  int64_t AcceptPeerPrefix(int64_t conversation_id, int64_t first_token,
                           int64_t last_token, int64_t kv_len_hint,
                           double now) override;

  // Introspection for tests.
  const TwoTierKvCache& cache() const { return cache_; }
  const LinkFaultInjector& pcie_faults() const { return pcie_faults_; }
  const LinkFaultInjector& ssd_faults() const { return ssd_faults_; }
  int64_t num_waiting() const { return static_cast<int64_t>(waiting_.size()); }
  int64_t num_running() const { return static_cast<int64_t>(running_.size()); }

 private:
  struct Running {
    Request request;
    double first_scheduled_time = -1.0;
    int64_t generated = 0;
    // Tokens to process at the context tail next step: the new prompt at
    // first execution, then one (the freshly generated token) per decode
    // step. A suspended request resumes with its pending token intact.
    int64_t pending_new_tokens = 0;
    // Dropped-prefix tokens restored at admission and recomputed by the
    // next step (paper Figure 5 segment 1).
    int64_t pending_recompute = 0;
    // Chunks restored for that recomputation (re-dropped if the request is
    // suspended before its prefill runs).
    int64_t restored_chunks = 0;
    // Swap-in transfer overhang to be absorbed by the next step (§4.3.3).
    double restore_transfer_s = 0.0;
    bool prefilled = false;
    // Stamped when `prefilled` transitions: when the first output token was
    // emitted and when the step that ran the prefill began (the compute
    // window a disaggregated handoff stream overlaps with).
    double first_token_time = 0.0;
    double prefill_compute_start = 0.0;
    int32_t suspensions = 0;
    // Reuse accounting, captured at first admission.
    int64_t reused_gpu = 0;
    int64_t reused_cpu = 0;
    int64_t reused_ssd = 0;
    // Subset of reused_gpu attached as shared-prefix views over blocks
    // another conversation prefilled.
    int64_t reused_shared = 0;
    // Of reused_shared, tokens that displaced this turn's own prompt
    // prefill (rather than cached-history recompute); subtracted from the
    // outcome's prefill-input accounting.
    int64_t shared_prompt_skipped = 0;
    int64_t recomputed = 0;
  };

  // Admission of waiting requests into the running batch. Appends admitted
  // entries to running_; returns how many were admitted.
  int64_t AdmitRequests(double now);
  bool TryAdmit(Running* r, double now, int64_t batch_input_tokens);

  // Appends `n` pending tokens for a conversation, evicting or suspending
  // others as needed. Returns false when even suspension cannot free memory.
  bool EnsureAppend(int64_t conversation_id, int64_t n, double now,
                    size_t self_index, size_t processed_limit);

  // Takes running_[index] out of the batch, evicts its KV (swap or drop)
  // and re-queues it (§4.3.5).
  void SuspendRequest(size_t index, double now);

  // Evicts every GPU-resident chunk of a conversation (suspension path).
  void EvictConversationFromGpu(int64_t conversation_id, double now);

  // --- KV-fault handling ---------------------------------------------------
  // Device-to-host / host-to-device transfers routed through the fault
  // injector. Return the completion (or abandonment) time; `delivered` is
  // false when the transfer exhausted its retries.
  double TransferDeviceToHost(double now, double bytes, bool* delivered);
  double TransferHostToDevice(double now, double bytes, bool* delivered);

  // Charges a FreeOutcome's forced swap-out traffic to the link; when the
  // transfer fails, the landed CPU copies are poisoned so a later swap-in
  // degrades to recomputation instead of restoring garbage.
  void ChargeForcedSwapOut(const CacheCoordinator::FreeOutcome& freed, double now);

  // --- Flash (SSD) tier ----------------------------------------------------
  // SSD-link transfers routed through the SSD fault injector (reads promote
  // flash data toward the CPU, writes carry demotions the other way).
  double TransferSsdRead(double now, double bytes, bool* delivered);
  double TransferSsdWrite(double now, double bytes, bool* delivered);

  // Drains the coordinator's pending CPU->flash demotions and charges their
  // bytes on the SSD write link as background traffic (like ahead-of-time
  // swap-out, demotion is off the critical path). A failed transfer poisons
  // the flash copies so a later promote degrades to recomputation.
  void ChargeFlashSpill(double now);

  // Three-way restore planning (flash enabled only): walks the
  // conversation's frontier over its SSD run and CPU-only chunks, dropping
  // each chunk for which recomputation beats the restore path (SSD read +
  // PCIe hop, or PCIe alone). Recompute cost grows with context length while
  // restore cost is flat, so the scan stops at the first chunk where restore
  // wins and the drop stays a legal prefix.
  void PlanSsdRecompute(int64_t conversation_id);

  // Mirrors the cache's monotone flash counters into stats_ (assignment, not
  // accumulation — same idiom as the link-fault stats snapshots).
  void SyncFlashStats();

  // Mirrors the cache's KV-quantization counters into stats_ (assignment
  // idiom, like SyncFlashStats). No-op fields when kv_quant is off.
  void SyncQuantStats();

  // Bytes one KV token occupies on the wire for off-GPU transfers (swap,
  // spill, promote, migration) and in CPU/SSD storage: the compressed int8
  // size under kv_quant, the fp16 substrate size otherwise. Per-GPU share,
  // matching cost_model_.KvBytesPerToken().
  int64_t KvWireBytesPerToken() const;

  // --- Shared-prefix dedup -------------------------------------------------
  // What AttachTemplatePrefix changed, so a failed admission can undo it: a
  // request waiting in the queue must not hold shared views, since its
  // conversation is inflight (unevictable) and pinned views could starve
  // every other admission.
  struct TemplateAttachOutcome {
    int64_t fresh_tokens = 0;       // fresh-attach tokens taken off pending
    int64_t reattached_chunks = 0;  // dropped chunks rescued as views
    int64_t reattached_tokens = 0;
    bool counted_hit = false;       // reuse bookkeeping was applied
  };

  // Consults the prefix trie for the request's template and attaches (or, on
  // re-admission, re-attaches dropped leading chunks as) views over the
  // shared block run. On a fresh conversation the attached span comes off
  // r->pending_new_tokens — the tokens admit GPU-resident with zero prefill.
  TemplateAttachOutcome AttachTemplatePrefix(Running* r, ContextState* conv,
                                             bool first_admission);

  // Reverses a TemplateAttachOutcome (views released, pending and reuse
  // bookkeeping restored). Called on every failed-admission path after the
  // attach; a no-op for an empty outcome.
  void UndoTemplateAttach(Running* r, const TemplateAttachOutcome& attach);

  // After a template conversation's prefill completes, publishes its leading
  // full GPU-resident chunks (within the template span) into the trie so
  // later conversations can attach them. Idempotent.
  void PublishTemplatePrefix(const Running& r);

  // Mirrors the cache's sharing counters and the GPU allocator's refcount
  // ledger into stats_ (assignment idiom, like SyncFlashStats).
  void SyncShareStats();

  // Degradation ladder entry: discards corrupt CPU copies that still have a
  // GPU twin, and drops the prefix through the deepest CPU-only chunk whose
  // copy fails checksum verification, so admission rebuilds it through the
  // recomputation path (§4.3.4).
  void DegradeCorruptChunks(int64_t conversation_id);

  // Drops the conversation's resident prefix through `deepest_chunk`
  // (inclusive), counting the degraded tokens against the fault stats.
  void DegradePrefixThrough(int64_t conversation_id, int64_t deepest_chunk);

  const GpuCostModel& cost_model_;
  PensieveEngineOptions options_;
  TwoTierKvCache cache_;
  ChunkCostEstimator cost_estimator_;
  std::unique_ptr<EvictionPolicy> policy_;
  CacheCoordinator coordinator_;
  // One PCIe link per tensor-parallel worker; each worker moves its own
  // feature slice of every chunk (Â§4.4.2).
  TpLinkGroup link_;
  // Every KV transfer on link_ goes through this injector; with all rates
  // zero it is a draw-free pass-through.
  LinkFaultInjector pcie_faults_;
  // Simulated flash device and its own fault injector. The injector gets a
  // decorrelated seed so arming SSD faults never perturbs the PCIe draw
  // sequence (and vice versa).
  SsdLink ssd_link_;
  LinkFaultInjector ssd_faults_;
  std::deque<Running> waiting_;
  std::vector<Running> running_;
  // Conversations with a queued or running request; their (possibly fully
  // dropped) cache bookkeeping must not be forgotten.
  std::unordered_map<int64_t, int32_t> inflight_;
  // Synchronous stall accumulated by forced swap-outs during the current
  // step's admissions.
  double pending_forced_stall_ = 0.0;
  EngineStats stats_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SERVING_PENSIEVE_ENGINE_H_

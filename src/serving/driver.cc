#include "src/serving/driver.h"

#include <queue>

#include "src/common/logging.h"
#include "src/sim/virtual_clock.h"

namespace pensieve {

namespace {

struct Arrival {
  double time;
  int64_t conversation_index;  // index into trace.conversations()
  int32_t turn_index;

  bool operator>(const Arrival& other) const { return time > other.time; }
};

}  // namespace

ServingSummary RunServingExperiment(Engine* engine, const WorkloadTrace& trace,
                                    const DriverOptions& options) {
  PENSIEVE_CHECK(engine != nullptr);
  VirtualClock clock;
  MetricsCollector metrics;
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>> arrivals;

  const auto& conversations = trace.conversations();
  for (int64_t i = 0; i < static_cast<int64_t>(conversations.size()); ++i) {
    arrivals.push(Arrival{conversations[i].first_arrival, i, 0});
  }

  int64_t next_request_id = 0;
  int64_t delivered = 0;
  int64_t steps = 0;
  double last_finish_time = 0.0;

  auto deliver_due = [&]() {
    while (!arrivals.empty() && arrivals.top().time <= clock.now()) {
      const Arrival a = arrivals.top();
      arrivals.pop();
      const TraceConversation& conv = conversations[static_cast<size_t>(a.conversation_index)];
      const TurnSpec& turn = conv.spec.turns[static_cast<size_t>(a.turn_index)];
      Request req;
      req.request_id = next_request_id++;
      req.conversation_id = conv.spec.conversation_id;
      req.turn_index = a.turn_index;
      req.new_prompt_len = turn.input_len;
      req.history_len = conv.spec.HistoryLenBeforeTurn(a.turn_index);
      req.target_output_len = turn.output_len;
      req.arrival_time = a.time;
      engine->Enqueue(req, clock.now());
      ++delivered;
    }
  };

  while (true) {
    deliver_due();
    if (!engine->HasWork()) {
      if (arrivals.empty()) {
        break;
      }
      clock.AdvanceTo(arrivals.top().time);
      continue;
    }
    const double step_start = clock.now();
    StepResult result = engine->Step(clock.now());
    if (result.idle) {
      if (arrivals.empty()) {
        PENSIEVE_LOG_WARNING << "engine " << engine->name()
                             << " idle with pending work and no future arrivals; "
                                "aborting experiment";
        break;
      }
      clock.AdvanceTo(arrivals.top().time);
      continue;
    }
    clock.Advance(result.duration);
    if (options.step_trace != nullptr) {
      options.step_trace->push_back(StepTraceEntry{
          step_start, result.duration, result.batch_requests, result.batch_tokens,
          static_cast<int64_t>(result.finished.size())});
    }
    for (const RequestOutcome& outcome : result.finished) {
      metrics.Record(outcome);
      if (options.outcomes != nullptr) {
        options.outcomes->push_back(outcome);
      }
      last_finish_time = std::max(last_finish_time, outcome.finish_time);
      // Schedule the conversation's next turn after the user's think time.
      // Trace conversation ids are assigned densely by the generator, so the
      // id doubles as the index.
      const int64_t conv_index = outcome.request.conversation_id;
      PENSIEVE_CHECK_LT(conv_index, static_cast<int64_t>(conversations.size()));
      const TraceConversation& conv = conversations[static_cast<size_t>(conv_index)];
      const int32_t next_turn = outcome.request.turn_index + 1;
      if (next_turn < static_cast<int32_t>(conv.spec.turns.size())) {
        const double think =
            conv.think_times[static_cast<size_t>(outcome.request.turn_index)];
        arrivals.push(Arrival{outcome.finish_time + think, conv_index, next_turn});
      }
    }
    ++steps;
    if (options.max_steps > 0 && steps >= options.max_steps) {
      PENSIEVE_LOG_WARNING << "experiment hit max_steps=" << options.max_steps;
      break;
    }
  }

  // Steady-state window: skip the warm-up (first 10% of the conversation
  // arrival span) and cut off at the end of the arrival process so that a
  // few long think-time chains don't dominate the throughput denominator.
  double arrival_span = 0.0;
  for (const TraceConversation& conv : conversations) {
    arrival_span = std::max(arrival_span, conv.first_arrival);
  }
  const double window_begin = 0.1 * arrival_span;
  const double window_end =
      arrival_span > 0.0 ? arrival_span : last_finish_time;
  return metrics.Summarize(engine->name(), last_finish_time, engine->stats(),
                           window_begin, window_end);
}

}  // namespace pensieve

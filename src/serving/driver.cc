#include "src/serving/driver.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/serving/experiment_core.h"
#include "src/sim/event_loop.h"
#include "src/sim/virtual_clock.h"

namespace pensieve {

ServingSummary RunServingExperiment(Engine* engine, const WorkloadTrace& trace,
                                    const DriverOptions& options) {
  PENSIEVE_CHECK(engine != nullptr);
  VirtualClock clock;
  MetricsCollector metrics;
  EventQueue events;
  ArrivalProcess arrivals(trace, &events);

  int64_t steps = 0;
  double last_finish_time = 0.0;

  auto deliver_due = [&]() {
    while (!events.Empty() && events.Top().time <= clock.now()) {
      engine->Enqueue(arrivals.BuildRequest(events.Pop()), clock.now());
    }
  };

  while (true) {
    deliver_due();
    if (!engine->HasWork()) {
      if (events.Empty()) {
        break;
      }
      clock.AdvanceTo(events.NextTime());
      continue;
    }
    const double step_start = clock.now();
    StepResult result = engine->Step(clock.now());
    if (result.idle) {
      if (events.Empty()) {
        PENSIEVE_LOG_WARNING << "engine " << engine->name()
                             << " idle with pending work and no future arrivals; "
                                "aborting experiment";
        break;
      }
      clock.AdvanceTo(events.NextTime());
      continue;
    }
    clock.Advance(result.duration);
    if (options.step_trace != nullptr) {
      options.step_trace->push_back(StepTraceEntry{
          step_start, result.duration, result.batch_requests, result.batch_tokens,
          static_cast<int64_t>(result.finished.size())});
    }
    for (const RequestOutcome& outcome : result.finished) {
      metrics.Record(outcome);
      if (options.outcomes != nullptr) {
        options.outcomes->push_back(outcome);
      }
      last_finish_time = std::max(last_finish_time, outcome.finish_time);
      // Schedule the conversation's next turn after the user's think time.
      arrivals.OnRequestFinished(outcome);
    }
    ++steps;
    if (options.max_steps > 0 && steps >= options.max_steps) {
      PENSIEVE_LOG_WARNING << "experiment hit max_steps=" << options.max_steps;
      break;
    }
  }

  const SteadyStateWindow window =
      ComputeSteadyStateWindow(ArrivalSpan(trace), last_finish_time);
  return metrics.Summarize(engine->name(), last_finish_time, engine->stats(),
                           window.begin, window.end);
}

}  // namespace pensieve

#include "src/kvcache/kv_pool.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace pensieve {

KvPool::KvPool(int64_t num_blocks, int64_t block_size, int64_t num_layers,
               int64_t num_kv_heads, int64_t head_dim)
    : num_blocks_(num_blocks), block_size_(block_size), num_layers_(num_layers),
      num_kv_heads_(num_kv_heads), head_dim_(head_dim),
      token_stride_(num_kv_heads * head_dim),
      block_stride_(num_layers * 2 * block_size * token_stride_),
      data_(static_cast<size_t>(num_blocks * block_stride_), 0.0f),
      quant_(static_cast<size_t>(num_blocks)) {
  PENSIEVE_CHECK_GT(block_size, 0);
  PENSIEVE_CHECK_GT(num_layers, 0);
  PENSIEVE_CHECK_GT(num_kv_heads, 0);
  PENSIEVE_CHECK_GT(head_dim, 0);
}

int64_t KvPool::Offset(BlockId block, int64_t layer, int kv, int64_t slot) const {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, num_blocks_);
  PENSIEVE_CHECK_GE(layer, 0);
  PENSIEVE_CHECK_LT(layer, num_layers_);
  PENSIEVE_CHECK_GE(kv, 0);
  PENSIEVE_CHECK_LE(kv, 1);
  PENSIEVE_CHECK_GE(slot, 0);
  PENSIEVE_CHECK_LT(slot, block_size_);
  return block * block_stride_ + ((layer * 2 + kv) * block_size_ + slot) * token_stride_;
}

float* KvPool::TokenData(BlockId block, int64_t layer, int kv, int64_t slot) {
  return data_.data() + Offset(block, layer, kv, slot);
}

const float* KvPool::TokenData(BlockId block, int64_t layer, int kv, int64_t slot) const {
  return data_.data() + Offset(block, layer, kv, slot);
}

void KvPool::WriteToken(BlockId block, int64_t layer, int64_t slot, const float* k,
                        const float* v) {
  std::memcpy(TokenData(block, layer, /*kv=*/0, slot), k,
              static_cast<size_t>(token_stride_) * sizeof(float));
  std::memcpy(TokenData(block, layer, /*kv=*/1, slot), v,
              static_cast<size_t>(token_stride_) * sizeof(float));
}

void KvPool::CopyBlock(const KvPool& src, BlockId src_block, KvPool& dst,
                       BlockId dst_block) {
  PENSIEVE_CHECK_EQ(src.block_stride_, dst.block_stride_);
  PENSIEVE_CHECK_GE(src_block, 0);
  PENSIEVE_CHECK_LT(src_block, src.num_blocks_);
  PENSIEVE_CHECK_GE(dst_block, 0);
  PENSIEVE_CHECK_LT(dst_block, dst.num_blocks_);
  std::memcpy(dst.data_.data() + dst_block * dst.block_stride_,
              src.data_.data() + src_block * src.block_stride_,
              static_cast<size_t>(src.block_stride_) * sizeof(float));
  dst.quant_[static_cast<size_t>(dst_block)] =
      src.quant_[static_cast<size_t>(src_block)];
}

void KvPool::QuantizeBlock(const KvPool& src, BlockId src_block, KvPool& dst,
                           BlockId dst_block) {
  PENSIEVE_CHECK_EQ(src.block_stride_, dst.block_stride_);
  PENSIEVE_CHECK_GE(src_block, 0);
  PENSIEVE_CHECK_LT(src_block, src.num_blocks_);
  PENSIEVE_CHECK_GE(dst_block, 0);
  PENSIEVE_CHECK_LT(dst_block, dst.num_blocks_);
  PENSIEVE_CHECK(!src.quant_[static_cast<size_t>(src_block)].quantized)
      << "quantizing an already-quantized block";
  const float* in = src.data_.data() + src_block * src.block_stride_;
  int8_t* out =
      reinterpret_cast<int8_t*>(dst.data_.data() + dst_block * dst.block_stride_);
  const int64_t n = src.block_stride_;
  float amax = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    amax = std::max(amax, std::fabs(in[i]));
  }
  const float scale = amax / 127.0f;
  if (scale == 0.0f) {
    // All-zero block (or amax so small the scale flushes to zero): the
    // payload is exactly zero and dequantizes to exactly zero.
    std::memset(out, 0, static_cast<size_t>(n));
  } else {
    for (int64_t i = 0; i < n; ++i) {
      // lround = round-half-away-from-zero, independent of the FP
      // environment. |in| <= amax bounds the quotient by 127; the clamp
      // only guards rounding at the +-amax endpoints.
      const long q = std::lround(in[i] / scale);
      out[i] = static_cast<int8_t>(std::max<long>(-127, std::min<long>(127, q)));
    }
  }
  dst.quant_[static_cast<size_t>(dst_block)] = QuantInfo{true, scale};
}

void KvPool::DequantizeBlock(const KvPool& src, BlockId src_block, KvPool& dst,
                             BlockId dst_block) {
  PENSIEVE_CHECK_EQ(src.block_stride_, dst.block_stride_);
  PENSIEVE_CHECK_GE(src_block, 0);
  PENSIEVE_CHECK_LT(src_block, src.num_blocks_);
  PENSIEVE_CHECK_GE(dst_block, 0);
  PENSIEVE_CHECK_LT(dst_block, dst.num_blocks_);
  const QuantInfo& info = src.quant_[static_cast<size_t>(src_block)];
  if (!info.quantized) {
    CopyBlock(src, src_block, dst, dst_block);
    return;
  }
  const int8_t* in = reinterpret_cast<const int8_t*>(src.data_.data() +
                                                     src_block * src.block_stride_);
  float* out = dst.data_.data() + dst_block * dst.block_stride_;
  const int64_t n = src.block_stride_;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = info.scale * static_cast<float>(in[i]);
  }
  dst.quant_[static_cast<size_t>(dst_block)] = QuantInfo{};
}

bool KvPool::BlockQuantized(BlockId block) const {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, num_blocks_);
  return quant_[static_cast<size_t>(block)].quantized;
}

float KvPool::BlockScale(BlockId block) const {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, num_blocks_);
  return quant_[static_cast<size_t>(block)].scale;
}

uint32_t KvPool::BlockChecksum(BlockId block) const {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, num_blocks_);
  const QuantInfo& info = quant_[static_cast<size_t>(block)];
  if (info.quantized) {
    // Hash the int8 payload, then chain the scale in — together these are
    // the bytes a quantized transfer actually moves.
    const uint32_t payload = Fnv1a32(data_.data() + block * block_stride_,
                                     static_cast<size_t>(block_stride_));
    return Fnv1a32(&info.scale, sizeof(info.scale), payload);
  }
  return Fnv1a32(data_.data() + block * block_stride_,
                 static_cast<size_t>(block_stride_) * sizeof(float));
}

void KvPool::CorruptBlock(BlockId block) {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, num_blocks_);
  unsigned char* bytes =
      reinterpret_cast<unsigned char*>(data_.data() + block * block_stride_);
  bytes[0] ^= 0x40;  // mantissa bit flip; value stays finite
}

}  // namespace pensieve

#include "src/kvcache/kv_pool.h"

#include <cstring>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace pensieve {

KvPool::KvPool(int64_t num_blocks, int64_t block_size, int64_t num_layers,
               int64_t num_kv_heads, int64_t head_dim)
    : num_blocks_(num_blocks), block_size_(block_size), num_layers_(num_layers),
      num_kv_heads_(num_kv_heads), head_dim_(head_dim),
      token_stride_(num_kv_heads * head_dim),
      block_stride_(num_layers * 2 * block_size * token_stride_),
      data_(static_cast<size_t>(num_blocks * block_stride_), 0.0f) {
  PENSIEVE_CHECK_GT(block_size, 0);
  PENSIEVE_CHECK_GT(num_layers, 0);
  PENSIEVE_CHECK_GT(num_kv_heads, 0);
  PENSIEVE_CHECK_GT(head_dim, 0);
}

int64_t KvPool::Offset(BlockId block, int64_t layer, int kv, int64_t slot) const {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, num_blocks_);
  PENSIEVE_CHECK_GE(layer, 0);
  PENSIEVE_CHECK_LT(layer, num_layers_);
  PENSIEVE_CHECK_GE(kv, 0);
  PENSIEVE_CHECK_LE(kv, 1);
  PENSIEVE_CHECK_GE(slot, 0);
  PENSIEVE_CHECK_LT(slot, block_size_);
  return block * block_stride_ + ((layer * 2 + kv) * block_size_ + slot) * token_stride_;
}

float* KvPool::TokenData(BlockId block, int64_t layer, int kv, int64_t slot) {
  return data_.data() + Offset(block, layer, kv, slot);
}

const float* KvPool::TokenData(BlockId block, int64_t layer, int kv, int64_t slot) const {
  return data_.data() + Offset(block, layer, kv, slot);
}

void KvPool::WriteToken(BlockId block, int64_t layer, int64_t slot, const float* k,
                        const float* v) {
  std::memcpy(TokenData(block, layer, /*kv=*/0, slot), k,
              static_cast<size_t>(token_stride_) * sizeof(float));
  std::memcpy(TokenData(block, layer, /*kv=*/1, slot), v,
              static_cast<size_t>(token_stride_) * sizeof(float));
}

void KvPool::CopyBlock(const KvPool& src, BlockId src_block, KvPool& dst,
                       BlockId dst_block) {
  PENSIEVE_CHECK_EQ(src.block_stride_, dst.block_stride_);
  PENSIEVE_CHECK_GE(src_block, 0);
  PENSIEVE_CHECK_LT(src_block, src.num_blocks_);
  PENSIEVE_CHECK_GE(dst_block, 0);
  PENSIEVE_CHECK_LT(dst_block, dst.num_blocks_);
  std::memcpy(dst.data_.data() + dst_block * dst.block_stride_,
              src.data_.data() + src_block * src.block_stride_,
              static_cast<size_t>(src.block_stride_) * sizeof(float));
}

uint32_t KvPool::BlockChecksum(BlockId block) const {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, num_blocks_);
  return Fnv1a32(data_.data() + block * block_stride_,
                 static_cast<size_t>(block_stride_) * sizeof(float));
}

void KvPool::CorruptBlock(BlockId block) {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, num_blocks_);
  unsigned char* bytes =
      reinterpret_cast<unsigned char*>(data_.data() + block * block_stride_);
  bytes[0] ^= 0x40;  // mantissa bit flip; value stays finite
}

}  // namespace pensieve

#include "src/kvcache/block_allocator.h"

#include "src/common/logging.h"

namespace pensieve {

BlockAllocator::BlockAllocator(int64_t num_blocks)
    : capacity_(num_blocks), allocated_(static_cast<size_t>(num_blocks), false) {
  PENSIEVE_CHECK_GE(num_blocks, 0);
  free_list_.reserve(static_cast<size_t>(num_blocks));
  // Hand out low block ids first: keeps numeric-mode pool accesses dense.
  for (BlockId b = static_cast<BlockId>(num_blocks) - 1; b >= 0; --b) {
    free_list_.push_back(b);
  }
}

std::optional<BlockId> BlockAllocator::Allocate() {
  if (free_list_.empty()) {
    return std::nullopt;
  }
  BlockId b = free_list_.back();
  free_list_.pop_back();
  allocated_[static_cast<size_t>(b)] = true;
  return b;
}

void BlockAllocator::Free(BlockId block) {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, capacity_);
  PENSIEVE_CHECK(allocated_[static_cast<size_t>(block)]) << "double free of block " << block;
  allocated_[static_cast<size_t>(block)] = false;
  free_list_.push_back(block);
}

bool BlockAllocator::IsAllocated(BlockId block) const {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, capacity_);
  return allocated_[static_cast<size_t>(block)];
}

}  // namespace pensieve

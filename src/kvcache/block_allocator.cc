#include "src/kvcache/block_allocator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

BlockAllocator::BlockAllocator(int64_t num_blocks)
    : capacity_(num_blocks), refcount_(static_cast<size_t>(num_blocks), 0) {
  PENSIEVE_CHECK_GE(num_blocks, 0);
  free_list_.reserve(static_cast<size_t>(num_blocks));
  // Hand out low block ids first: keeps numeric-mode pool accesses dense.
  for (BlockId b = static_cast<BlockId>(num_blocks) - 1; b >= 0; --b) {
    free_list_.push_back(b);
  }
}

std::optional<BlockId> BlockAllocator::Allocate() {
  if (free_list_.empty()) {
    return std::nullopt;
  }
  BlockId b = free_list_.back();
  free_list_.pop_back();
  refcount_[static_cast<size_t>(b)] = 1;
  ++total_acquires_;
  peak_allocated_ = std::max(peak_allocated_, num_allocated());
  return b;
}

void BlockAllocator::Share(BlockId block) {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, capacity_);
  int32_t& rc = refcount_[static_cast<size_t>(block)];
  PENSIEVE_CHECK_GT(rc, 0) << "share of unallocated block " << block;
  if (++rc == 2) {
    ++num_shared_;
  }
  ++total_acquires_;
}

bool BlockAllocator::Free(BlockId block) {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, capacity_);
  int32_t& rc = refcount_[static_cast<size_t>(block)];
  PENSIEVE_CHECK_GT(rc, 0) << "double free of block " << block;
  ++total_releases_;
  if (--rc == 1) {
    --num_shared_;
  }
  if (rc > 0) {
    return false;
  }
  free_list_.push_back(block);
  return true;
}

bool BlockAllocator::IsAllocated(BlockId block) const {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, capacity_);
  return refcount_[static_cast<size_t>(block)] > 0;
}

int32_t BlockAllocator::refcount(BlockId block) const {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, capacity_);
  return refcount_[static_cast<size_t>(block)];
}

void BlockAllocator::CheckAllFree() const {
  PENSIEVE_CHECK_EQ(num_allocated(), 0)
      << "block leak: " << num_allocated() << " blocks still allocated at shutdown";
  PENSIEVE_CHECK_EQ(live_refs(), 0)
      << "refcount imbalance: " << total_acquires_ << " acquires vs " << total_releases_
      << " releases";
  PENSIEVE_CHECK_EQ(num_shared_, 0);
}

}  // namespace pensieve

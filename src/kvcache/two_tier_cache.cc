#include "src/kvcache/two_tier_cache.h"

#include <algorithm>
#include <string>

#include "src/common/logging.h"

namespace pensieve {

namespace {

// Capacity accounting in compressed bytes: with kv_quant on, the same CPU /
// SSD byte budget holds raw/quant times more blocks, so the block budgets
// are scaled up before any allocator or pool is sized.
KvCacheConfig ApplyKvQuantCapacity(KvCacheConfig config) {
  if (config.kv_quant && config.kv_raw_block_bytes > 0 &&
      config.kv_quant_block_bytes > 0) {
    config.num_cpu_blocks =
        config.num_cpu_blocks * config.kv_raw_block_bytes / config.kv_quant_block_bytes;
    config.num_ssd_blocks =
        config.num_ssd_blocks * config.kv_raw_block_bytes / config.kv_quant_block_bytes;
  }
  return config;
}

}  // namespace

TwoTierKvCache::TwoTierKvCache(const KvCacheConfig& config)
    : config_(ApplyKvQuantCapacity(config)),
      gpu_allocator_(config_.num_gpu_blocks),
      cpu_allocator_(config_.num_cpu_blocks) {
  if (config_.numeric) {
    gpu_pool_ = std::make_unique<KvPool>(config_.num_gpu_blocks, config_.block_size,
                                         config_.num_layers, config_.num_kv_heads,
                                         config_.head_dim);
    cpu_pool_ = std::make_unique<KvPool>(config_.num_cpu_blocks, config_.block_size,
                                         config_.num_layers, config_.num_kv_heads,
                                         config_.head_dim);
  }
  if (config_.num_ssd_blocks > 0) {
    FlashTierConfig flash;
    flash.capacity_blocks = config_.num_ssd_blocks;
    flash.segment_blocks = config_.ssd_segment_blocks;
    flash.algo = config_.ssd_algo;
    flash.numeric = config_.numeric;
    flash.block_size = config_.block_size;
    flash.num_layers = config_.num_layers;
    flash.num_kv_heads = config_.num_kv_heads;
    flash.head_dim = config_.head_dim;
    flash_ = std::make_unique<FlashTier>(flash);
  }
  if (config_.kv_quant) {
    if (config_.kv_raw_block_bytes > 0 && config_.kv_quant_block_bytes > 0) {
      quant_saved_per_block_ =
          config_.kv_raw_block_bytes - config_.kv_quant_block_bytes;
    } else if (cpu_pool_ != nullptr) {
      quant_saved_per_block_ =
          cpu_pool_->BlockBytes() - cpu_pool_->QuantizedBlockBytes();
    }
  }
}

TwoTierKvCache::~TwoTierKvCache() {
  // Peer-spill reservations the cluster never fetched back die with the
  // replica; return them before the leak audit.
  ReleaseForeignCpuBlocks(static_cast<int64_t>(foreign_cpu_blocks_.size()));
  VerifyNoLeaks();
}

ContextState& TwoTierKvCache::GetOrCreate(ConversationId id) {
  auto it = conversations_.find(id);
  if (it == conversations_.end()) {
    it = conversations_.emplace(id, ContextState(config_.block_size)).first;
  }
  return it->second;
}

ContextState* TwoTierKvCache::Find(ConversationId id) {
  auto it = conversations_.find(id);
  return it == conversations_.end() ? nullptr : &it->second;
}

const ContextState* TwoTierKvCache::Find(ConversationId id) const {
  auto it = conversations_.find(id);
  return it == conversations_.end() ? nullptr : &it->second;
}

ContextState& TwoTierKvCache::MustFind(ConversationId id) {
  ContextState* state = Find(id);
  PENSIEVE_CHECK(state != nullptr) << "unknown conversation " << id;
  return *state;
}

Status TwoTierKvCache::FindChunk(ConversationId id, int64_t chunk_index,
                                 ContextState** state) {
  *state = Find(id);
  if (*state == nullptr) {
    return Status::NotFound("unknown conversation " + std::to_string(id));
  }
  if (chunk_index < 0 || chunk_index >= (*state)->num_chunks()) {
    return Status::OutOfRange("chunk " + std::to_string(chunk_index) +
                              " out of range for conversation " +
                              std::to_string(id));
  }
  return Status::Ok();
}

uint32_t TwoTierKvCache::ComputeCpuChecksum(ConversationId id,
                                            int64_t chunk_index,
                                            const Chunk& c) const {
  if (cpu_pool_ != nullptr) {
    return cpu_pool_->BlockChecksum(c.cpu_block);
  }
  return SimChunkChecksum(id, chunk_index, c.num_tokens);
}

uint32_t TwoTierKvCache::ComputeSsdChecksum(ConversationId id,
                                            int64_t chunk_index,
                                            const Chunk& c) const {
  KvPool* pool = flash_->pool();
  if (pool != nullptr) {
    return pool->BlockChecksum(flash_->BlockOf(FlashTier::MakeKey(id, chunk_index)));
  }
  return SimChunkChecksum(id, chunk_index, c.num_tokens);
}

void TwoTierKvCache::Release(ConversationId id) {
  ContextState* state = Find(id);
  if (state == nullptr) {
    return;
  }
  for (int64_t i = 0; i < state->num_chunks(); ++i) {
    Chunk& c = state->mutable_chunk(i);
    if (c.OnGpu()) {
      ReleaseGpuBlock(c.gpu_block);
      if (c.location == ChunkLocation::kGpuAndCpu) {
        --reclaimable_gpu_blocks_;
      }
    }
    if (c.HasCpuCopy()) {
      cpu_allocator_.Free(c.cpu_block);
    }
    if (c.OnSsd()) {
      flash_->Erase(FlashTier::MakeKey(id, i));
    }
  }
  conversations_.erase(id);
}

Status TwoTierKvCache::AppendTokenSlots(ConversationId id, int64_t n,
                                        std::vector<ContextState::SlotRef>* slots) {
  ContextState& state = GetOrCreate(id);
  const int64_t new_chunks = state.NumNewChunksForAppend(n);
  // Writing into a partial tail that views a shared block needs one extra
  // block for the copy-on-write.
  int64_t cow_blocks = 0;
  if (n > 0 && state.num_chunks() > 0) {
    const Chunk& tail = state.chunk(state.num_chunks() - 1);
    if (tail.num_tokens < config_.block_size && tail.OnGpu() &&
        SharedGpuBlock(tail.gpu_block)) {
      cow_blocks = 1;
    }
  }
  if (new_chunks + cow_blocks > gpu_allocator_.num_free()) {
    return Status::ResourceExhausted("GPU tier has no free blocks for append");
  }
  // Invalidate a stale CPU copy on the partial tail chunk we are extending.
  if (n > 0 && state.num_chunks() > 0) {
    Chunk& tail = state.mutable_chunk(state.num_chunks() - 1);
    if (tail.num_tokens < config_.block_size) {
      if (tail.location == ChunkLocation::kGpuAndCpu) {
        cpu_allocator_.Free(tail.cpu_block);
        tail.cpu_block = kInvalidBlock;
        tail.cpu_checksum = 0;
        tail.cpu_corrupt = false;
        tail.location = ChunkLocation::kGpu;
        --reclaimable_gpu_blocks_;
      } else if (tail.location != ChunkLocation::kGpu) {
        return Status::FailedPrecondition(
            "cannot append into a tail chunk that is not GPU-resident");
      }
    }
  }
  if (cow_blocks == 1) {
    // First write into a shared block: detach this view onto a private block
    // before any slot is handed out. The pools are preallocated and the
    // blocks disjoint, so the numeric copy is a straight block-to-block move
    // — no heap allocation, decode stays allocation-free.
    Chunk& tail = state.mutable_chunk(state.num_chunks() - 1);
    auto fresh = gpu_allocator_.Allocate();
    PENSIEVE_CHECK(fresh.has_value());
    if (gpu_pool_ != nullptr) {
      KvPool::CopyBlock(*gpu_pool_, tail.gpu_block, *gpu_pool_, *fresh);
    }
    ReleaseGpuBlock(tail.gpu_block);
    tail.gpu_block = *fresh;
    ++counters_.cow_copies;
  }
  std::vector<BlockId> blocks;
  blocks.reserve(static_cast<size_t>(new_chunks));
  for (int64_t i = 0; i < new_chunks; ++i) {
    auto b = gpu_allocator_.Allocate();
    PENSIEVE_CHECK(b.has_value());
    blocks.push_back(*b);
  }
  state.AppendTokens(n, blocks, slots);
  return Status::Ok();
}

Status TwoTierKvCache::SwapOut(ConversationId id, int64_t chunk_index) {
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  Chunk& c = state->mutable_chunk(chunk_index);
  if (c.location != ChunkLocation::kGpu) {
    return Status::FailedPrecondition("SwapOut requires a GPU-only chunk");
  }
  auto cpu_block = cpu_allocator_.Allocate();
  if (!cpu_block.has_value()) {
    return Status::ResourceExhausted("CPU tier full during swap-out");
  }
  c.cpu_block = *cpu_block;
  if (cpu_pool_ != nullptr) {
    if (config_.kv_quant) {
      KvPool::QuantizeBlock(*gpu_pool_, c.gpu_block, *cpu_pool_, c.cpu_block);
    } else {
      KvPool::CopyBlock(*gpu_pool_, c.gpu_block, *cpu_pool_, c.cpu_block);
    }
  }
  if (config_.kv_quant) {
    ++counters_.quantized_blocks;
    counters_.quant_bytes_saved += quant_saved_per_block_;
  }
  c.location = ChunkLocation::kGpuAndCpu;
  c.cpu_checksum = ComputeCpuChecksum(id, chunk_index, c);
  c.cpu_corrupt = false;
  ++reclaimable_gpu_blocks_;
  ++counters_.swapped_out_chunks;
  return Status::Ok();
}

Status TwoTierKvCache::ReclaimGpu(ConversationId id, int64_t chunk_index) {
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  Chunk& c = state->mutable_chunk(chunk_index);
  if (c.location != ChunkLocation::kGpuAndCpu) {
    return Status::FailedPrecondition("ReclaimGpu requires a clean CPU copy");
  }
  if (c.cpu_corrupt) {
    // Releasing the GPU copy would leave only a known-bad CPU copy.
    return Status::DataLoss("ReclaimGpu refused: CPU copy is corrupt");
  }
  ReleaseGpuBlock(c.gpu_block);
  c.gpu_block = kInvalidBlock;
  c.location = ChunkLocation::kCpu;
  --reclaimable_gpu_blocks_;
  ++counters_.reclaimed_gpu_blocks;
  return Status::Ok();
}

Status TwoTierKvCache::SwapIn(ConversationId id, int64_t chunk_index) {
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  Chunk& c = state->mutable_chunk(chunk_index);
  if (c.location != ChunkLocation::kCpu) {
    return Status::FailedPrecondition("SwapIn requires a CPU-only chunk");
  }
  Status verified = VerifyCpuChecksum(id, chunk_index);
  if (!verified.ok()) {
    return verified;
  }
  auto gpu_block = gpu_allocator_.Allocate();
  if (!gpu_block.has_value()) {
    return Status::ResourceExhausted("GPU tier full during swap-in");
  }
  c.gpu_block = *gpu_block;
  if (gpu_pool_ != nullptr) {
    if (config_.kv_quant) {
      // Falls back to a plain copy for an unquantized CPU copy (e.g. one
      // materialized by a migration import).
      KvPool::DequantizeBlock(*cpu_pool_, c.cpu_block, *gpu_pool_, c.gpu_block);
    } else {
      KvPool::CopyBlock(*cpu_pool_, c.cpu_block, *gpu_pool_, c.gpu_block);
    }
  }
  c.location = ChunkLocation::kGpuAndCpu;
  ++reclaimable_gpu_blocks_;
  ++counters_.swapped_in_chunks;
  return Status::Ok();
}

Status TwoTierKvCache::MarkCpuCorrupt(ConversationId id, int64_t chunk_index) {
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  Chunk& c = state->mutable_chunk(chunk_index);
  if (!c.HasCpuCopy()) {
    return Status::FailedPrecondition("no CPU copy to corrupt");
  }
  c.cpu_corrupt = true;
  if (cpu_pool_ != nullptr) {
    cpu_pool_->CorruptBlock(c.cpu_block);
  }
  ++counters_.corrupt_marked_chunks;
  return Status::Ok();
}

Status TwoTierKvCache::VerifyCpuChecksum(ConversationId id, int64_t chunk_index) {
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  const Chunk& c = state->chunk(chunk_index);
  if (!c.HasCpuCopy()) {
    return Status::FailedPrecondition("no CPU copy to verify");
  }
  ++counters_.checksum_verifications;
  if (c.cpu_corrupt || ComputeCpuChecksum(id, chunk_index, c) != c.cpu_checksum) {
    ++counters_.checksum_failures;
    return Status::DataLoss("CPU copy checksum mismatch (conversation " +
                            std::to_string(id) + ", chunk " +
                            std::to_string(chunk_index) + ")");
  }
  return Status::Ok();
}

Status TwoTierKvCache::DropCpuCopy(ConversationId id, int64_t chunk_index) {
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  Chunk& c = state->mutable_chunk(chunk_index);
  if (c.location != ChunkLocation::kGpuAndCpu) {
    return Status::FailedPrecondition("DropCpuCopy requires a kGpuAndCpu chunk");
  }
  cpu_allocator_.Free(c.cpu_block);
  c.cpu_block = kInvalidBlock;
  c.cpu_checksum = 0;
  c.cpu_corrupt = false;
  c.location = ChunkLocation::kGpu;
  --reclaimable_gpu_blocks_;
  return Status::Ok();
}

Status TwoTierKvCache::DropChunk(ConversationId id, int64_t chunk_index) {
  ContextState* state_ptr = nullptr;
  Status found = FindChunk(id, chunk_index, &state_ptr);
  if (!found.ok()) {
    return found;
  }
  ContextState& state = *state_ptr;
  // Drop-from-the-front invariant: all earlier chunks must already be
  // dropped, otherwise recomputation could not treat the dropped region as a
  // context prefix (paper Figure 5).
  for (int64_t i = 0; i < chunk_index; ++i) {
    if (!state.chunk(i).Dropped()) {
      return Status::FailedPrecondition("non-prefix chunk drop attempted");
    }
  }
  Chunk& c = state.mutable_chunk(chunk_index);
  if (c.Dropped()) {
    return Status::FailedPrecondition("chunk already dropped");
  }
  if (c.OnGpu()) {
    ReleaseGpuBlock(c.gpu_block);
    if (c.location == ChunkLocation::kGpuAndCpu) {
      --reclaimable_gpu_blocks_;
    }
    c.gpu_block = kInvalidBlock;
  }
  if (c.HasCpuCopy()) {
    cpu_allocator_.Free(c.cpu_block);
    c.cpu_block = kInvalidBlock;
  }
  if (c.OnSsd()) {
    // Idempotent: the flash algo may already have evicted the key.
    flash_->Erase(FlashTier::MakeKey(id, chunk_index));
  }
  c.cpu_checksum = 0;
  c.cpu_corrupt = false;
  c.ssd_checksum = 0;
  c.ssd_corrupt = false;
  c.location = ChunkLocation::kDropped;
  ++counters_.dropped_chunks;
  return Status::Ok();
}

Status TwoTierKvCache::DropThroughPrefix(ConversationId id, int64_t chunk_index,
                                         int64_t* dropped_tokens) {
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  for (int64_t i = state->LeadingDroppedChunks(); i <= chunk_index; ++i) {
    const int64_t tokens = state->chunk(i).num_tokens;
    Status dropped = DropChunk(id, i);
    if (!dropped.ok()) {
      return dropped;
    }
    if (dropped_tokens != nullptr) {
      *dropped_tokens += tokens;
    }
  }
  return Status::Ok();
}

Status TwoTierKvCache::DemoteToFlash(ConversationId id, int64_t chunk_index) {
  if (flash_ == nullptr) {
    return Status::FailedPrecondition("no flash tier configured");
  }
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  Chunk& c = state->mutable_chunk(chunk_index);
  if (c.location != ChunkLocation::kCpu) {
    return Status::FailedPrecondition("DemoteToFlash requires a CPU-only chunk");
  }
  for (int64_t i = 0; i < chunk_index; ++i) {
    if (!state->chunk(i).Dropped() && !state->chunk(i).OnSsd()) {
      return Status::FailedPrecondition(
          "demotion must extend the dropped/SSD prefix");
    }
  }
  // Never spill a copy that already fails verification; the caller drops it
  // and the chunk degrades to recomputation.
  Status verified = VerifyCpuChecksum(id, chunk_index);
  if (!verified.ok()) {
    return verified;
  }
  const uint64_t key = FlashTier::MakeKey(id, chunk_index);
  const auto evictable = [this](uint64_t k) {
    const ContextState* s = Find(FlashTier::KeyConversation(k));
    return s == nullptr || !s->pinned();
  };
  std::vector<uint64_t> evicted;
  const bool admitted = flash_->Insert(key, evictable, &evicted);
  // Keys the algorithm evicted are gone from the tier either way; their
  // chunks must be dropped even when the admission itself stalled.
  DropFlashVictims(evicted);
  if (!admitted) {
    return Status::ResourceExhausted("flash tier full of pinned chunks");
  }
  if (flash_->pool() != nullptr) {
    KvPool::CopyBlock(*cpu_pool_, c.cpu_block, *flash_->pool(),
                      flash_->BlockOf(key));
  }
  cpu_allocator_.Free(c.cpu_block);
  c.cpu_block = kInvalidBlock;
  c.cpu_checksum = 0;
  c.cpu_corrupt = false;
  c.location = ChunkLocation::kSsd;
  c.ssd_checksum = ComputeSsdChecksum(id, chunk_index, c);
  c.ssd_corrupt = false;
  ++counters_.demoted_to_flash_chunks;
  return Status::Ok();
}

Status TwoTierKvCache::PromoteFromFlash(ConversationId id, int64_t chunk_index) {
  if (flash_ == nullptr) {
    return Status::FailedPrecondition("no flash tier configured");
  }
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  Chunk& c = state->mutable_chunk(chunk_index);
  if (!c.OnSsd()) {
    return Status::FailedPrecondition("PromoteFromFlash requires an SSD chunk");
  }
  Status verified = VerifySsdChecksum(id, chunk_index);
  if (!verified.ok()) {
    return verified;  // DATA_LOSS: chunk untouched, caller degrades to recompute
  }
  auto cpu_block = cpu_allocator_.Allocate();
  if (!cpu_block.has_value()) {
    return Status::ResourceExhausted("CPU tier full during flash promote");
  }
  const uint64_t key = FlashTier::MakeKey(id, chunk_index);
  c.cpu_block = *cpu_block;
  if (flash_->pool() != nullptr) {
    KvPool::CopyBlock(*flash_->pool(), flash_->BlockOf(key), *cpu_pool_,
                      c.cpu_block);
  }
  flash_->Erase(key);
  c.location = ChunkLocation::kCpu;
  c.cpu_checksum = ComputeCpuChecksum(id, chunk_index, c);
  c.cpu_corrupt = false;
  c.ssd_checksum = 0;
  c.ssd_corrupt = false;
  ++counters_.promoted_from_flash_chunks;
  return Status::Ok();
}

Status TwoTierKvCache::MarkSsdCorrupt(ConversationId id, int64_t chunk_index) {
  if (flash_ == nullptr) {
    return Status::FailedPrecondition("no flash tier configured");
  }
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  Chunk& c = state->mutable_chunk(chunk_index);
  if (!c.OnSsd()) {
    return Status::FailedPrecondition("no flash copy to corrupt");
  }
  c.ssd_corrupt = true;
  if (flash_->pool() != nullptr) {
    flash_->pool()->CorruptBlock(
        flash_->BlockOf(FlashTier::MakeKey(id, chunk_index)));
  }
  ++counters_.corrupt_marked_chunks;
  return Status::Ok();
}

Status TwoTierKvCache::VerifySsdChecksum(ConversationId id, int64_t chunk_index) {
  if (flash_ == nullptr) {
    return Status::FailedPrecondition("no flash tier configured");
  }
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  const Chunk& c = state->chunk(chunk_index);
  if (!c.OnSsd()) {
    return Status::FailedPrecondition("no flash copy to verify");
  }
  ++counters_.checksum_verifications;
  if (c.ssd_corrupt || ComputeSsdChecksum(id, chunk_index, c) != c.ssd_checksum) {
    ++counters_.checksum_failures;
    return Status::DataLoss("flash copy checksum mismatch (conversation " +
                            std::to_string(id) + ", chunk " +
                            std::to_string(chunk_index) + ")");
  }
  return Status::Ok();
}

void TwoTierKvCache::DropFlashVictims(const std::vector<uint64_t>& evicted) {
  for (uint64_t key : evicted) {
    const ConversationId conv = FlashTier::KeyConversation(key);
    const int64_t victim_chunk = FlashTier::KeyChunk(key);
    ContextState* state = Find(conv);
    if (state == nullptr || victim_chunk >= state->num_chunks()) {
      continue;
    }
    // Prefix-drop through the victim; intermediate chunks are on SSD too
    // (flash runs are contiguous) and count as collateral evictions.
    for (int64_t i = state->LeadingDroppedChunks(); i <= victim_chunk; ++i) {
      if (state->chunk(i).Dropped()) {
        continue;  // an earlier victim in this batch already took it down
      }
      counters_.flash_evicted_tokens += state->chunk(i).num_tokens;
      ++counters_.flash_evicted_chunks;
      Status dropped = DropChunk(conv, i);
      PENSIEVE_CHECK(dropped.ok()) << dropped.message();
    }
  }
}

Status TwoTierKvCache::RestoreDropped(ConversationId id, int64_t chunk_index) {
  ContextState* state_ptr = nullptr;
  Status found = FindChunk(id, chunk_index, &state_ptr);
  if (!found.ok()) {
    return found;
  }
  ContextState& state = *state_ptr;
  Chunk& c = state.mutable_chunk(chunk_index);
  if (!c.Dropped()) {
    return Status::FailedPrecondition("RestoreDropped requires a dropped chunk");
  }
  auto gpu_block = gpu_allocator_.Allocate();
  if (!gpu_block.has_value()) {
    return Status::ResourceExhausted("GPU tier full during dropped-chunk restore");
  }
  c.gpu_block = *gpu_block;
  c.location = ChunkLocation::kGpu;
  ++counters_.restored_chunks;
  return Status::Ok();
}

int64_t TwoTierKvCache::ImportCpuResident(ConversationId id, int64_t kv_len,
                                          int64_t resident_tokens) {
  PENSIEVE_CHECK(Find(id) == nullptr) << "import over live conversation " << id;
  PENSIEVE_CHECK_LE(resident_tokens, kv_len);
  ContextState& state = GetOrCreate(id);
  state.InitializeImported(kv_len);
  // Materialize CPU copies for the trailing resident region, newest first,
  // keeping the dropped region a prefix (the cache-wide invariant).
  int64_t budget = resident_tokens;
  int64_t imported = 0;
  for (int64_t i = state.num_chunks() - 1; i >= 0; --i) {
    Chunk& c = state.mutable_chunk(i);
    if (budget < c.num_tokens) {
      break;
    }
    auto cpu_block = cpu_allocator_.Allocate();
    if (!cpu_block.has_value()) {
      break;
    }
    c.cpu_block = *cpu_block;
    c.location = ChunkLocation::kCpu;
    c.cpu_checksum = ComputeCpuChecksum(id, i, c);
    c.cpu_corrupt = false;
    budget -= c.num_tokens;
    imported += c.num_tokens;
  }
  return imported;
}

int64_t TwoTierKvCache::ImportGpuResident(ConversationId id, int64_t kv_len,
                                          int64_t resident_tokens) {
  PENSIEVE_CHECK(Find(id) == nullptr) << "import over live conversation " << id;
  PENSIEVE_CHECK_LE(resident_tokens, kv_len);
  ContextState& state = GetOrCreate(id);
  state.InitializeImported(kv_len);
  int64_t budget = resident_tokens;
  int64_t imported = 0;
  for (int64_t i = state.num_chunks() - 1; i >= 0; --i) {
    Chunk& c = state.mutable_chunk(i);
    if (budget < c.num_tokens) {
      break;
    }
    if (auto gpu_block = gpu_allocator_.Allocate(); gpu_block.has_value()) {
      c.gpu_block = *gpu_block;
      c.location = ChunkLocation::kGpu;
    } else if (auto cpu_block = cpu_allocator_.Allocate(); cpu_block.has_value()) {
      // GPU pool full: bounce this chunk through host memory like an
      // ordinary migration; the swap-in path restores it on first use.
      c.cpu_block = *cpu_block;
      c.location = ChunkLocation::kCpu;
      c.cpu_checksum = ComputeCpuChecksum(id, i, c);
      c.cpu_corrupt = false;
    } else {
      break;
    }
    budget -= c.num_tokens;
    imported += c.num_tokens;
  }
  return imported;
}

int64_t TwoTierKvCache::ReserveForeignCpuBlocks(int64_t blocks) {
  PENSIEVE_CHECK_GE(blocks, 0);
  if (blocks == 0 || cpu_allocator_.num_free() < blocks) {
    return 0;
  }
  for (int64_t i = 0; i < blocks; ++i) {
    auto block = cpu_allocator_.Allocate();
    PENSIEVE_CHECK(block.has_value());
    foreign_cpu_blocks_.push_back(*block);
  }
  return blocks;
}

void TwoTierKvCache::ReleaseForeignCpuBlocks(int64_t blocks) {
  PENSIEVE_CHECK_LE(blocks, static_cast<int64_t>(foreign_cpu_blocks_.size()));
  for (int64_t i = 0; i < blocks; ++i) {
    cpu_allocator_.Free(foreign_cpu_blocks_.back());
    foreign_cpu_blocks_.pop_back();
  }
}

Status TwoTierKvCache::RestoreDroppedToCpu(ConversationId id,
                                           int64_t chunk_index) {
  ContextState* state_ptr = nullptr;
  Status found = FindChunk(id, chunk_index, &state_ptr);
  if (!found.ok()) {
    return found;
  }
  ContextState& state = *state_ptr;
  Chunk& c = state.mutable_chunk(chunk_index);
  if (!c.Dropped()) {
    return Status::FailedPrecondition(
        "RestoreDroppedToCpu requires a dropped chunk");
  }
  // Keep the dropped region a prefix: only the trailing edge may come back.
  if (chunk_index + 1 != state.LeadingDroppedChunks()) {
    return Status::FailedPrecondition(
        "RestoreDroppedToCpu only legal at the dropped-prefix frontier");
  }
  // A flash run must remain a contiguous extension of the dropped prefix; a
  // CPU copy below an SSD chunk would break it.
  if (chunk_index + 1 < state.num_chunks() &&
      state.chunk(chunk_index + 1).OnSsd()) {
    return Status::FailedPrecondition(
        "RestoreDroppedToCpu would split the conversation's flash run");
  }
  auto cpu_block = cpu_allocator_.Allocate();
  if (!cpu_block.has_value()) {
    return Status::ResourceExhausted("CPU tier full during peer-prefix adopt");
  }
  c.cpu_block = *cpu_block;
  c.location = ChunkLocation::kCpu;
  c.cpu_checksum = ComputeCpuChecksum(id, chunk_index, c);
  c.cpu_corrupt = false;
  return Status::Ok();
}

std::vector<BlockId> TwoTierKvCache::GpuBlockTable(ConversationId id,
                                                   int64_t first_chunk) const {
  const ContextState* state = Find(id);
  PENSIEVE_CHECK(state != nullptr);
  std::vector<BlockId> table;
  table.reserve(static_cast<size_t>(state->num_chunks() - first_chunk));
  for (int64_t i = first_chunk; i < state->num_chunks(); ++i) {
    const Chunk& c = state->chunk(i);
    PENSIEVE_CHECK(c.OnGpu()) << "chunk " << i << " not GPU-resident ("
                              << ChunkLocationName(c.location) << ")";
    table.push_back(c.gpu_block);
  }
  return table;
}

void TwoTierKvCache::ReleaseGpuBlock(BlockId block) {
  if (gpu_allocator_.Free(block)) {
    trie_.InvalidateBlock(block);
  }
}

int64_t TwoTierKvCache::AppendBlockDemand(ConversationId id, int64_t n) const {
  const ContextState* state = Find(id);
  if (state == nullptr) {
    return n <= 0 ? 0 : (n + config_.block_size - 1) / config_.block_size;
  }
  int64_t demand = state->NumNewChunksForAppend(n);
  if (n > 0 && state->num_chunks() > 0) {
    const Chunk& tail = state->chunk(state->num_chunks() - 1);
    if (tail.num_tokens < config_.block_size && tail.OnGpu() &&
        SharedGpuBlock(tail.gpu_block)) {
      ++demand;  // copy-on-write block
    }
  }
  return demand;
}

bool TwoTierKvCache::SharedGpuBlock(BlockId block) const {
  return block != kInvalidBlock && gpu_allocator_.refcount(block) > 1;
}

int64_t TwoTierKvCache::LookupSharedPrefix(const std::vector<uint64_t>& chain,
                                           std::vector<BlockId>* blocks) const {
  if (!config_.enable_prefix_sharing) {
    return 0;
  }
  return trie_.Lookup(chain, blocks);
}

int64_t TwoTierKvCache::PublishSharedPrefix(const std::vector<uint64_t>& chain,
                                            const std::vector<BlockId>& blocks) {
  if (!config_.enable_prefix_sharing) {
    return 0;
  }
  for (BlockId b : blocks) {
    PENSIEVE_CHECK(gpu_allocator_.IsAllocated(b))
        << "publishing unallocated block " << b;
  }
  return trie_.Publish(chain, blocks);
}

int64_t TwoTierKvCache::AttachSharedPrefix(ConversationId id,
                                           const std::vector<BlockId>& blocks,
                                           int64_t tokens) {
  PENSIEVE_CHECK(config_.enable_prefix_sharing);
  PENSIEVE_CHECK(!blocks.empty());
  PENSIEVE_CHECK_GT(tokens,
                    (static_cast<int64_t>(blocks.size()) - 1) * config_.block_size);
  PENSIEVE_CHECK_LE(tokens, static_cast<int64_t>(blocks.size()) * config_.block_size);
  ContextState& state = GetOrCreate(id);
  PENSIEVE_CHECK_EQ(state.kv_len(), 0)
      << "shared prefix attach requires a fresh conversation";
  int64_t remaining = tokens;
  for (BlockId b : blocks) {
    const int64_t take = std::min(remaining, config_.block_size);
    gpu_allocator_.Share(b);
    state.AttachSharedChunk(b, take);
    remaining -= take;
    ++counters_.shared_attached_chunks;
  }
  counters_.shared_attached_tokens += tokens;
  counters_.peak_shared_blocks =
      std::max(counters_.peak_shared_blocks, gpu_allocator_.num_shared());
  return tokens;
}

Status TwoTierKvCache::ReattachDroppedShared(ConversationId id, int64_t chunk_index,
                                             BlockId block) {
  if (!config_.enable_prefix_sharing) {
    return Status::FailedPrecondition("prefix sharing disabled");
  }
  ContextState* state = nullptr;
  Status found = FindChunk(id, chunk_index, &state);
  if (!found.ok()) {
    return found;
  }
  Chunk& c = state->mutable_chunk(chunk_index);
  if (!c.Dropped()) {
    return Status::FailedPrecondition("ReattachDroppedShared requires a dropped chunk");
  }
  if (c.num_tokens != config_.block_size) {
    return Status::FailedPrecondition("partial chunks stay private");
  }
  if (!gpu_allocator_.IsAllocated(block)) {
    return Status::FailedPrecondition("shared block no longer allocated");
  }
  gpu_allocator_.Share(block);
  c.gpu_block = block;
  c.location = ChunkLocation::kGpu;
  ++counters_.shared_attached_chunks;
  counters_.shared_attached_tokens += c.num_tokens;
  counters_.peak_shared_blocks =
      std::max(counters_.peak_shared_blocks, gpu_allocator_.num_shared());
  return Status::Ok();
}

void TwoTierKvCache::VerifyNoLeaks() const {
  int64_t gpu_refs = 0;
  int64_t cpu_refs = 0;
  for (const auto& [id, state] : conversations_) {
    for (const Chunk& c : state.chunks()) {
      if (c.OnGpu()) {
        ++gpu_refs;
      }
      if (c.HasCpuCopy()) {
        ++cpu_refs;
      }
    }
  }
  PENSIEVE_CHECK_EQ(gpu_refs, gpu_allocator_.live_refs())
      << "GPU KV block leak: " << gpu_allocator_.live_refs()
      << " live references but only " << gpu_refs << " chunk views";
  cpu_refs += static_cast<int64_t>(foreign_cpu_blocks_.size());
  PENSIEVE_CHECK_EQ(cpu_refs, cpu_allocator_.live_refs())
      << "CPU KV block leak: " << cpu_allocator_.live_refs()
      << " live references but only " << cpu_refs
      << " chunk views + foreign reservations";
}

void TwoTierKvCache::CheckInvariants() const {
  int64_t gpu_in_use = 0;
  int64_t cpu_in_use = 0;
  int64_t reclaimable = 0;
  int64_t ssd_chunks = 0;
  std::unordered_map<BlockId, int64_t> gpu_views;
  for (const auto& [id, state] : conversations_) {
    bool seen_non_dropped = false;
    bool seen_past_flash_run = false;
    for (int64_t i = 0; i < state.num_chunks(); ++i) {
      const Chunk& c = state.chunk(i);
      if (c.Dropped()) {
        PENSIEVE_CHECK(!seen_non_dropped)
            << "conversation " << id << ": dropped chunk " << i
            << " follows a resident chunk (prefix invariant violated)";
        PENSIEVE_CHECK_EQ(c.gpu_block, kInvalidBlock);
        PENSIEVE_CHECK_EQ(c.cpu_block, kInvalidBlock);
        continue;
      }
      seen_non_dropped = true;
      if (c.OnSsd()) {
        PENSIEVE_CHECK(!seen_past_flash_run)
            << "conversation " << id << ": SSD chunk " << i
            << " follows a CPU/GPU-resident chunk (flash-run invariant)";
        PENSIEVE_CHECK(flash_ != nullptr);
        PENSIEVE_CHECK(flash_->Contains(FlashTier::MakeKey(id, i)));
        PENSIEVE_CHECK_EQ(c.gpu_block, kInvalidBlock);
        PENSIEVE_CHECK_EQ(c.cpu_block, kInvalidBlock);
        ++ssd_chunks;
      } else {
        seen_past_flash_run = true;
      }
      if (c.OnGpu()) {
        PENSIEVE_CHECK(gpu_allocator_.IsAllocated(c.gpu_block));
        ++gpu_in_use;
        ++gpu_views[c.gpu_block];
      }
      if (c.HasCpuCopy()) {
        PENSIEVE_CHECK(cpu_allocator_.IsAllocated(c.cpu_block));
        ++cpu_in_use;
      }
      if (c.location == ChunkLocation::kGpuAndCpu) {
        ++reclaimable;
      }
      // Only the final chunk may be partial.
      if (i + 1 < state.num_chunks()) {
        PENSIEVE_CHECK_EQ(c.num_tokens, config_.block_size);
      }
    }
  }
  // Shared blocks make chunk views and physical blocks distinct quantities:
  // every view holds one allocator reference, distinct blocks equal the
  // physically allocated count, and each block's refcount matches its views.
  PENSIEVE_CHECK_EQ(gpu_in_use, gpu_allocator_.live_refs());
  PENSIEVE_CHECK_EQ(static_cast<int64_t>(gpu_views.size()),
                    gpu_allocator_.num_allocated());
  for (const auto& [block, views] : gpu_views) {
    PENSIEVE_CHECK_EQ(views, gpu_allocator_.refcount(block))
        << "block " << block << " refcount disagrees with its view count";
  }
  // The CPU tier is never shared: views, live references, and physical
  // blocks all coincide — plus whatever is reserved for peer spill, which
  // holds references without views.
  const int64_t foreign = static_cast<int64_t>(foreign_cpu_blocks_.size());
  PENSIEVE_CHECK_EQ(cpu_in_use + foreign, cpu_allocator_.num_allocated());
  PENSIEVE_CHECK_EQ(cpu_in_use + foreign, cpu_allocator_.live_refs());
  // Trie references are weak but must never dangle: invalidation happens
  // when the last view releases the block.
  for (BlockId b : trie_.ReferencedBlocks()) {
    PENSIEVE_CHECK(gpu_allocator_.IsAllocated(b))
        << "prefix trie references freed block " << b;
  }
  PENSIEVE_CHECK_EQ(reclaimable, reclaimable_gpu_blocks_);
  if (flash_ != nullptr) {
    PENSIEVE_CHECK_EQ(ssd_chunks, flash_->live_blocks());
    PENSIEVE_CHECK_EQ(ssd_chunks, flash_->algo().size());
  } else {
    PENSIEVE_CHECK_EQ(ssd_chunks, 0);
  }
}

}  // namespace pensieve

// Content-addressed prefix trie mapping token-prefix identity to runs of
// shared GPU KV blocks (PagedAttention §4.3 style dedup).
//
// Identity is a cumulative FNV-1a hash chain over full blocks of token ids:
// chain[i] covers tokens [0, (i+1)*block_size). A conversation whose prompt
// hashes to a published chain prefix can attach the corresponding physical
// blocks instead of prefilling them. Only full blocks are ever published —
// partial tail blocks stay private to their owner.
//
// The trie holds *weak* references: publishing does not pin a block. The
// cache invalidates a trie node when the underlying block's refcount drops
// to zero (last reader released it), which also severs every descendant —
// a prefix with a hole in the middle is unusable by construction.

#ifndef PENSIEVE_SRC_KVCACHE_PREFIX_TRIE_H_
#define PENSIEVE_SRC_KVCACHE_PREFIX_TRIE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/kvcache/block.h"

namespace pensieve {

class PrefixTrie {
 public:
  PrefixTrie() = default;
  PrefixTrie(const PrefixTrie&) = delete;
  PrefixTrie& operator=(const PrefixTrie&) = delete;

  // Walks the chain from the root and appends the GPU block of every
  // matched node to *blocks. Returns the number of matched blocks (the
  // longest live published prefix of the chain).
  int64_t Lookup(const std::vector<uint64_t>& chain,
                 std::vector<BlockId>* blocks) const;

  // Publishes blocks[i] under chain[i] for every position where the chain
  // extends the trie. Existing nodes are kept (first publisher wins; its
  // block is the one readers share). Stops if an existing node disagrees
  // with chain continuity. Returns the number of newly created nodes.
  int64_t Publish(const std::vector<uint64_t>& chain,
                  const std::vector<BlockId>& blocks);

  // Removes the node holding `block` (if any) and its whole subtree.
  // Called when a physical block is freed; descendants are unreachable for
  // matching once their prefix is gone. Returns nodes removed.
  int64_t InvalidateBlock(BlockId block);

  bool ContainsBlock(BlockId block) const {
    return by_block_.find(block) != by_block_.end();
  }

  // Number of live published nodes (== distinct blocks referenced).
  int64_t size() const { return static_cast<int64_t>(by_block_.size()); }

  // All blocks currently referenced by the trie (for invariant checks).
  std::vector<BlockId> ReferencedBlocks() const;

  int64_t publishes() const { return publishes_; }
  int64_t invalidations() const { return invalidations_; }

 private:
  struct Node {
    uint64_t hash = 0;
    BlockId block = kInvalidBlock;
    Node* parent = nullptr;
    std::unordered_map<uint64_t, std::unique_ptr<Node>> children;
  };

  int64_t RemoveSubtree(Node* node);

  // Root's children are the depth-0 nodes keyed by chain[0].
  std::unordered_map<uint64_t, std::unique_ptr<Node>> roots_;
  std::unordered_map<BlockId, Node*> by_block_;
  int64_t publishes_ = 0;
  int64_t invalidations_ = 0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_PREFIX_TRIE_H_

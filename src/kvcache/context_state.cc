#include "src/kvcache/context_state.h"

#include "src/common/logging.h"

namespace pensieve {

int64_t ContextState::LeadingDroppedChunks() const {
  int64_t n = 0;
  while (n < num_chunks() && chunk(n).Dropped()) {
    ++n;
  }
  return n;
}

int64_t ContextState::LeadingDroppedTokens() const {
  int64_t n = 0;
  int64_t tokens = 0;
  while (n < num_chunks() && chunk(n).Dropped()) {
    tokens += chunk(n).num_tokens;
    ++n;
  }
  return tokens;
}

int64_t ContextState::LeadingDroppedOrSsdChunks() const {
  int64_t n = 0;
  while (n < num_chunks() && (chunk(n).Dropped() || chunk(n).OnSsd())) {
    ++n;
  }
  return n;
}

int64_t ContextState::TokensOnGpu() const {
  int64_t t = 0;
  for (const Chunk& c : chunks_) {
    if (c.OnGpu()) {
      t += c.num_tokens;
    }
  }
  return t;
}

int64_t ContextState::TokensCpuOnly() const {
  int64_t t = 0;
  for (const Chunk& c : chunks_) {
    if (c.location == ChunkLocation::kCpu) {
      t += c.num_tokens;
    }
  }
  return t;
}

int64_t ContextState::TokensOnSsd() const {
  int64_t t = 0;
  for (const Chunk& c : chunks_) {
    if (c.OnSsd()) {
      t += c.num_tokens;
    }
  }
  return t;
}

int64_t ContextState::TokensDropped() const {
  int64_t t = 0;
  for (const Chunk& c : chunks_) {
    if (c.Dropped()) {
      t += c.num_tokens;
    }
  }
  return t;
}

std::vector<int64_t> ContextState::CpuOnlyChunks() const {
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < num_chunks(); ++i) {
    if (chunk(i).location == ChunkLocation::kCpu) {
      idx.push_back(i);
    }
  }
  return idx;
}

std::vector<int64_t> ContextState::SsdChunks() const {
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < num_chunks(); ++i) {
    if (chunk(i).OnSsd()) {
      idx.push_back(i);
    }
  }
  return idx;
}

bool ContextState::FullyOnGpu() const {
  for (const Chunk& c : chunks_) {
    if (!c.OnGpu()) {
      return false;
    }
  }
  return true;
}

int64_t ContextState::NumNewChunksForAppend(int64_t n) const {
  PENSIEVE_CHECK_GE(n, 0);
  int64_t room = 0;
  if (!chunks_.empty()) {
    room = block_size_ - chunks_.back().num_tokens;
  }
  const int64_t overflow = n - room;
  if (overflow <= 0) {
    return 0;
  }
  return (overflow + block_size_ - 1) / block_size_;
}

void ContextState::AppendTokens(int64_t n, const std::vector<BlockId>& new_gpu_blocks,
                                std::vector<SlotRef>* slots) {
  PENSIEVE_CHECK_EQ(static_cast<int64_t>(new_gpu_blocks.size()), NumNewChunksForAppend(n));
  if (!chunks_.empty() && chunks_.back().num_tokens < block_size_) {
    // The partial tail chunk receives tokens first; it must be GPU-resident
    // and must not carry a (now stale) CPU copy — the cache invalidates the
    // copy before calling us.
    PENSIEVE_CHECK(n == 0 || chunks_.back().location == ChunkLocation::kGpu)
        << "appending into a tail chunk in state "
        << ChunkLocationName(chunks_.back().location);
  }
  size_t next_new_block = 0;
  int64_t remaining = n;
  while (remaining > 0) {
    if (chunks_.empty() || chunks_.back().num_tokens == block_size_) {
      Chunk c;
      c.location = ChunkLocation::kGpu;
      c.gpu_block = new_gpu_blocks[next_new_block++];
      c.num_tokens = 0;
      chunks_.push_back(c);
    }
    Chunk& tail = chunks_.back();
    const int64_t take = std::min(remaining, block_size_ - tail.num_tokens);
    if (slots != nullptr) {
      for (int64_t i = 0; i < take; ++i) {
        slots->push_back(SlotRef{num_chunks() - 1, tail.gpu_block, tail.num_tokens + i});
      }
    }
    tail.num_tokens += take;
    kv_len_ += take;
    remaining -= take;
  }
  PENSIEVE_CHECK_EQ(next_new_block, new_gpu_blocks.size());
}

void ContextState::AttachSharedChunk(BlockId block, int64_t tokens) {
  PENSIEVE_CHECK_GT(tokens, 0);
  PENSIEVE_CHECK_LE(tokens, block_size_);
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK(chunks_.empty() || chunks_.back().num_tokens == block_size_)
      << "shared chunk attached behind a partial tail";
  Chunk c;
  c.location = ChunkLocation::kGpu;
  c.gpu_block = block;
  c.num_tokens = tokens;
  chunks_.push_back(c);
  kv_len_ += tokens;
}

void ContextState::InitializeImported(int64_t kv_len) {
  PENSIEVE_CHECK(chunks_.empty());
  PENSIEVE_CHECK_EQ(kv_len_, 0);
  PENSIEVE_CHECK_GE(kv_len, 0);
  int64_t remaining = kv_len;
  while (remaining > 0) {
    Chunk c;
    c.location = ChunkLocation::kDropped;
    c.num_tokens = std::min(remaining, block_size_);
    chunks_.push_back(c);
    remaining -= c.num_tokens;
  }
  kv_len_ = kv_len;
}

}  // namespace pensieve

#include "src/kvcache/flash/flash_tier.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

namespace {
constexpr int kChunkBits = 20;
constexpr uint64_t kChunkMask = (uint64_t{1} << kChunkBits) - 1;

SegmentLogConfig MakeLogConfig(const FlashTierConfig& config) {
  SegmentLogConfig log;
  log.segment_blocks = config.segment_blocks;
  // Physical capacity = logical capacity rounded up to whole segments, plus
  // two spare segments of over-provisioning so GC always has headroom.
  const int64_t logical_segments =
      (config.capacity_blocks + config.segment_blocks - 1) / config.segment_blocks;
  log.num_segments = logical_segments + 2;
  return log;
}
}  // namespace

FlashTier::FlashTier(const FlashTierConfig& config)
    : config_(config),
      log_(MakeLogConfig(config)),
      algo_(MakeFlashCacheAlgo(config.algo, config.capacity_blocks)) {
  PENSIEVE_CHECK_GT(config_.capacity_blocks, 0);
  if (config_.numeric) {
    pool_ = std::make_unique<KvPool>(log_.capacity_blocks(), config_.block_size,
                                     config_.num_layers, config_.num_kv_heads,
                                     config_.head_dim);
  }
}

uint64_t FlashTier::MakeKey(int64_t conversation_id, int64_t chunk_index) {
  PENSIEVE_CHECK_GE(conversation_id, 0);
  PENSIEVE_CHECK_GE(chunk_index, 0);
  PENSIEVE_CHECK_LT(chunk_index, int64_t{1} << kChunkBits);
  return (static_cast<uint64_t>(conversation_id) << kChunkBits) |
         static_cast<uint64_t>(chunk_index);
}

int64_t FlashTier::KeyConversation(uint64_t key) {
  return static_cast<int64_t>(key >> kChunkBits);
}

int64_t FlashTier::KeyChunk(uint64_t key) {
  return static_cast<int64_t>(key & kChunkMask);
}

bool FlashTier::Insert(uint64_t key,
                       const FlashCacheAlgo::EvictablePredicate& evictable,
                       std::vector<uint64_t>* evicted) {
  PENSIEVE_CHECK(!Contains(key)) << "flash insert of resident key";
  const size_t mark = evicted->size();
  const bool admitted = algo_->Admit(key, evictable, evicted);
  // Even a failed admission may have evicted keys before stalling; their log
  // blocks die either way (the caller drops the chunks).
  for (size_t i = mark; i < evicted->size(); ++i) {
    auto it = block_of_.find((*evicted)[i]);
    PENSIEVE_CHECK(it != block_of_.end());
    log_.MarkDead(it->second);
    block_of_.erase(it);
  }
  if (!admitted) {
    return false;
  }
  const auto relocate = [this](uint64_t k, FlashBlockId from, FlashBlockId to) {
    OnRelocate(k, from, to);
  };
  std::optional<FlashBlockId> block = log_.Append(key, relocate);
  // The algorithm keeps live keys <= logical capacity and the log is
  // over-provisioned past it, so GC can always reclaim space.
  PENSIEVE_CHECK(block.has_value()) << "flash log full despite over-provisioning";
  block_of_[key] = *block;
  return true;
}

bool FlashTier::Contains(uint64_t key) const { return block_of_.count(key) > 0; }

void FlashTier::Touch(uint64_t key) { algo_->Touch(key); }

void FlashTier::Erase(uint64_t key) {
  auto it = block_of_.find(key);
  if (it == block_of_.end()) {
    return;
  }
  log_.MarkDead(it->second);
  block_of_.erase(it);
  algo_->Erase(key);
}

FlashBlockId FlashTier::BlockOf(uint64_t key) const {
  auto it = block_of_.find(key);
  return it == block_of_.end() ? kInvalidFlashBlock : it->second;
}

void FlashTier::OnRelocate(uint64_t key, FlashBlockId from, FlashBlockId to) {
  auto it = block_of_.find(key);
  PENSIEVE_CHECK(it != block_of_.end());
  PENSIEVE_CHECK_EQ(it->second, from);
  it->second = to;
  if (pool_ != nullptr && from != to) {
    KvPool::CopyBlock(*pool_, from, *pool_, to);
  }
}

}  // namespace pensieve

// Pluggable in-tier eviction/indexing algorithms for the flash (SSD) tier.
//
// The flash tier separates *placement* (the append-only segment log, which
// decides where bytes live and when they move) from *retention* (which keys
// stay cached). This header owns retention: a small registry of classic
// cache-replacement algorithms — LRU, FIFO, S3FIFO, SIEVE — selectable by
// name via the --ssd-algo flag, all operating on opaque 64-bit keys (packed
// conversation + chunk ids).
//
// Every algorithm is fully deterministic (no clocks, no RNG) so the
// simulator's bit-identical-across-thread-counts contract extends to the
// flash tier. Victim selection takes an `evictable` predicate so pinned
// conversations (a request actively using them) are never victimized;
// an admission that cannot find an eligible victim fails cleanly and the
// caller falls back to dropping (recompute later).

#ifndef PENSIEVE_SRC_KVCACHE_FLASH_CACHE_ALGO_H_
#define PENSIEVE_SRC_KVCACHE_FLASH_CACHE_ALGO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pensieve {

enum class FlashAlgoKind : uint8_t {
  kLru,
  kFifo,
  kS3Fifo,
  kSieve,
};

const char* FlashAlgoKindName(FlashAlgoKind kind);
// Case-sensitive lookup of the registry names "lru", "fifo", "s3fifo",
// "sieve". Returns false (leaving *kind untouched) for unknown names.
bool FlashAlgoKindByName(const std::string& name, FlashAlgoKind* kind);
// All registered kinds, in registry order (for sweeps and tests).
std::vector<FlashAlgoKind> AllFlashAlgoKinds();

class FlashCacheAlgo {
 public:
  using EvictablePredicate = std::function<bool(uint64_t)>;

  virtual ~FlashCacheAlgo() = default;

  virtual const char* name() const = 0;
  int64_t capacity() const { return capacity_; }
  virtual int64_t size() const = 0;
  virtual bool Contains(uint64_t key) const = 0;

  // Admits `key` (which must be absent), evicting resident keys — appended
  // to *evicted in eviction order — until the algorithm is within capacity.
  // `evictable` vetoes victims (pinned conversations); when no eligible
  // victim can make room the admission fails and nothing changes.
  bool Admit(uint64_t key, const EvictablePredicate& evictable,
             std::vector<uint64_t>* evicted);

  // Records a cache hit on a resident key (no-op when absent or for
  // recency-blind algorithms).
  virtual void Touch(uint64_t key) = 0;

  // Removes a key if resident (promotion back to the CPU tier, or a prefix
  // drop). No-op when absent.
  virtual void Erase(uint64_t key) = 0;

 protected:
  explicit FlashCacheAlgo(int64_t capacity) : capacity_(capacity) {}

  // Unconditionally inserts an absent key (capacity already ensured).
  virtual void Insert(uint64_t key) = 0;
  // Selects and removes one victim honoring `evictable`; nullopt when every
  // resident key is vetoed.
  virtual std::optional<uint64_t> EvictOne(const EvictablePredicate& evictable) = 0;

  int64_t capacity_;
};

// Factory for the registry. `capacity` is the logical capacity in blocks.
std::unique_ptr<FlashCacheAlgo> MakeFlashCacheAlgo(FlashAlgoKind kind,
                                                   int64_t capacity);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_FLASH_CACHE_ALGO_H_

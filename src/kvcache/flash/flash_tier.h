// The flash (simulated SSD) tier: segment log + eviction algorithm + an
// optional numeric KV pool, behind one facade.
//
// The tier indexes KV chunks by an opaque 64-bit key packing (conversation,
// chunk index). The key -> flash-block mapping is fully internal: GC
// relocations rewrite it without the upper layers noticing, so Chunk
// bookkeeping never stores flash block ids — a chunk is merely "on SSD"
// (ChunkLocation::kSsd) and the tier resolves the bytes.
//
// Capacity is split in two: the *logical* capacity enforced by the eviction
// algorithm, and the *physical* log capacity, which is over-provisioned by a
// couple of segments so GC always has somewhere to relocate live blocks
// (real SSDs reserve spare area for exactly this reason).

#ifndef PENSIEVE_SRC_KVCACHE_FLASH_FLASH_TIER_H_
#define PENSIEVE_SRC_KVCACHE_FLASH_FLASH_TIER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/kvcache/block.h"
#include "src/kvcache/flash/cache_algo.h"
#include "src/kvcache/flash/segment_log.h"
#include "src/kvcache/kv_pool.h"

namespace pensieve {

struct FlashTierConfig {
  // Logical capacity (cache-algorithm budget) in KV blocks.
  int64_t capacity_blocks = 0;
  int64_t segment_blocks = 64;
  FlashAlgoKind algo = FlashAlgoKind::kLru;
  // Numeric mode: allocate a real pool with this geometry.
  bool numeric = false;
  int64_t block_size = kDefaultBlockSize;
  int64_t num_layers = 1;
  int64_t num_kv_heads = 1;
  int64_t head_dim = 1;
};

class FlashTier {
 public:
  explicit FlashTier(const FlashTierConfig& config);

  // Key packing: conversation id in the high bits, chunk index in the low
  // 20 bits.
  static uint64_t MakeKey(int64_t conversation_id, int64_t chunk_index);
  static int64_t KeyConversation(uint64_t key);
  static int64_t KeyChunk(uint64_t key);

  int64_t capacity_blocks() const { return config_.capacity_blocks; }
  int64_t live_blocks() const { return log_.live_blocks(); }

  // Admits `key`, evicting resident keys (appended to *evicted) as the
  // algorithm requires; their log blocks are already dead when this returns.
  // Fails (inserting nothing) when no evictable victim can make room.
  bool Insert(uint64_t key, const FlashCacheAlgo::EvictablePredicate& evictable,
              std::vector<uint64_t>* evicted);
  bool Contains(uint64_t key) const;
  void Touch(uint64_t key);
  // Removes a key (promotion or drop). Idempotent.
  void Erase(uint64_t key);
  // Current log block of a resident key; kInvalidFlashBlock when absent.
  FlashBlockId BlockOf(uint64_t key) const;

  // Null in simulated mode. Blocks are addressed by BlockOf's FlashBlockId.
  KvPool* pool() { return pool_.get(); }

  const SegmentLog& log() const { return log_; }
  const FlashCacheAlgo& algo() const { return *algo_; }

 private:
  void OnRelocate(uint64_t key, FlashBlockId from, FlashBlockId to);

  FlashTierConfig config_;
  SegmentLog log_;
  std::unique_ptr<FlashCacheAlgo> algo_;
  std::unique_ptr<KvPool> pool_;
  std::unordered_map<uint64_t, FlashBlockId> block_of_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_FLASH_FLASH_TIER_H_

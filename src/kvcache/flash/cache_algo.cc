#include "src/kvcache/flash/cache_algo.h"

#include <deque>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/logging.h"

namespace pensieve {

const char* FlashAlgoKindName(FlashAlgoKind kind) {
  switch (kind) {
    case FlashAlgoKind::kLru:
      return "lru";
    case FlashAlgoKind::kFifo:
      return "fifo";
    case FlashAlgoKind::kS3Fifo:
      return "s3fifo";
    case FlashAlgoKind::kSieve:
      return "sieve";
  }
  return "?";
}

bool FlashAlgoKindByName(const std::string& name, FlashAlgoKind* kind) {
  for (FlashAlgoKind k : AllFlashAlgoKinds()) {
    if (name == FlashAlgoKindName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

std::vector<FlashAlgoKind> AllFlashAlgoKinds() {
  return {FlashAlgoKind::kLru, FlashAlgoKind::kFifo, FlashAlgoKind::kS3Fifo,
          FlashAlgoKind::kSieve};
}

bool FlashCacheAlgo::Admit(uint64_t key, const EvictablePredicate& evictable,
                           std::vector<uint64_t>* evicted) {
  PENSIEVE_CHECK(!Contains(key)) << "flash admit of resident key";
  while (size() >= capacity_) {
    std::optional<uint64_t> victim = EvictOne(evictable);
    if (!victim.has_value()) {
      // Keys already appended to *evicted were removed before the stall and
      // stay evicted; the caller drops their blocks either way.
      return false;
    }
    evicted->push_back(*victim);
  }
  Insert(key);
  return true;
}

namespace {

// ---------------------------------------------------------------------------
// LRU: recency list, evict from the cold end, hits move to the hot end.
// ---------------------------------------------------------------------------
class LruAlgo final : public FlashCacheAlgo {
 public:
  explicit LruAlgo(int64_t capacity) : FlashCacheAlgo(capacity) {}

  const char* name() const override { return "lru"; }
  int64_t size() const override { return static_cast<int64_t>(order_.size()); }
  bool Contains(uint64_t key) const override { return where_.count(key) > 0; }

  void Touch(uint64_t key) override {
    auto it = where_.find(key);
    if (it == where_.end()) {
      return;
    }
    order_.splice(order_.begin(), order_, it->second);
  }

  void Erase(uint64_t key) override {
    auto it = where_.find(key);
    if (it == where_.end()) {
      return;
    }
    order_.erase(it->second);
    where_.erase(it);
  }

 protected:
  void Insert(uint64_t key) override {
    order_.push_front(key);
    where_[key] = order_.begin();
  }

  std::optional<uint64_t> EvictOne(const EvictablePredicate& evictable) override {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (evictable(*it)) {
        const uint64_t key = *it;
        Erase(key);
        return key;
      }
    }
    return std::nullopt;
  }

 private:
  std::list<uint64_t> order_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where_;
};

// ---------------------------------------------------------------------------
// FIFO: insertion order only; hits do not reorder.
// ---------------------------------------------------------------------------
class FifoAlgo final : public FlashCacheAlgo {
 public:
  explicit FifoAlgo(int64_t capacity) : FlashCacheAlgo(capacity) {}

  const char* name() const override { return "fifo"; }
  int64_t size() const override { return static_cast<int64_t>(order_.size()); }
  bool Contains(uint64_t key) const override { return where_.count(key) > 0; }

  void Touch(uint64_t /*key*/) override {}

  void Erase(uint64_t key) override {
    auto it = where_.find(key);
    if (it == where_.end()) {
      return;
    }
    order_.erase(it->second);
    where_.erase(it);
  }

 protected:
  void Insert(uint64_t key) override {
    order_.push_front(key);
    where_[key] = order_.begin();
  }

  std::optional<uint64_t> EvictOne(const EvictablePredicate& evictable) override {
    // Oldest insertion is at the back.
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (evictable(*it)) {
        const uint64_t key = *it;
        Erase(key);
        return key;
      }
    }
    return std::nullopt;
  }

 private:
  std::list<uint64_t> order_;  // front = newest insertion
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where_;
};

// ---------------------------------------------------------------------------
// SIEVE (NSDI'24): FIFO order with a visited bit and a hand that sweeps from
// the cold (tail) end toward the hot (head) end, clearing visited bits and
// evicting the first unvisited entry. Hits only set the bit — no list
// movement — so the structure is cheap and scan-resistant.
// ---------------------------------------------------------------------------
class SieveAlgo final : public FlashCacheAlgo {
 public:
  explicit SieveAlgo(int64_t capacity) : FlashCacheAlgo(capacity) {}

  const char* name() const override { return "sieve"; }
  int64_t size() const override { return static_cast<int64_t>(order_.size()); }
  bool Contains(uint64_t key) const override { return where_.count(key) > 0; }

  void Touch(uint64_t key) override {
    auto it = where_.find(key);
    if (it == where_.end()) {
      return;
    }
    it->second->visited = true;
  }

  void Erase(uint64_t key) override {
    auto it = where_.find(key);
    if (it == where_.end()) {
      return;
    }
    if (hand_valid_ && hand_ == it->second) {
      AdvanceHandFrom(it->second);
    }
    order_.erase(it->second);
    where_.erase(it);
  }

 protected:
  void Insert(uint64_t key) override {
    order_.push_front(Node{key, false});
    where_[key] = order_.begin();
  }

  std::optional<uint64_t> EvictOne(const EvictablePredicate& evictable) override {
    if (order_.empty()) {
      return std::nullopt;
    }
    auto it = hand_valid_ ? hand_ : std::prev(order_.end());
    // Two full sweeps suffice: the first clears every visited bit, the
    // second finds an evictable entry if one exists.
    for (int64_t steps = 2 * size() + 2; steps > 0; --steps) {
      if (it->visited) {
        it->visited = false;
      } else if (evictable(it->key)) {
        const uint64_t key = it->key;
        AdvanceHandFrom(it);
        where_.erase(key);
        order_.erase(it);
        return key;
      }
      it = (it == order_.begin()) ? std::prev(order_.end()) : std::prev(it);
    }
    return std::nullopt;
  }

 private:
  struct Node {
    uint64_t key;
    bool visited;
  };

  // Moves the hand to the next sweep position past `it` (toward the head,
  // wrapping to the tail).
  void AdvanceHandFrom(std::list<Node>::iterator it) {
    if (it == order_.begin()) {
      hand_valid_ = false;  // next sweep restarts at the tail
    } else {
      hand_ = std::prev(it);
      hand_valid_ = true;
    }
  }

  std::list<Node> order_;  // front = newest insertion
  std::unordered_map<uint64_t, std::list<Node>::iterator> where_;
  std::list<Node>::iterator hand_;
  bool hand_valid_ = false;
};

// ---------------------------------------------------------------------------
// S3FIFO (SOSP'23): a small probationary FIFO (~10% of capacity), a main
// FIFO, and a ghost FIFO of recently evicted keys. New keys enter the small
// queue; keys re-admitted while still in the ghost enter main directly.
// Eviction from small promotes entries with any hits to main (lazy
// promotion); main gives hit entries a second chance at the tail with a
// decremented counter.
// ---------------------------------------------------------------------------
class S3FifoAlgo final : public FlashCacheAlgo {
 public:
  explicit S3FifoAlgo(int64_t capacity) : FlashCacheAlgo(capacity) {}

  const char* name() const override { return "s3fifo"; }
  int64_t size() const override {
    return static_cast<int64_t>(small_.size() + main_.size());
  }
  bool Contains(uint64_t key) const override { return where_.count(key) > 0; }

  void Touch(uint64_t key) override {
    auto it = freq_.find(key);
    if (it == freq_.end()) {
      return;
    }
    it->second = std::min(3, it->second + 1);
  }

  void Erase(uint64_t key) override {
    auto it = where_.find(key);
    if (it == where_.end()) {
      return;
    }
    (it->second.in_small ? small_ : main_).erase(it->second.pos);
    where_.erase(it);
    freq_.erase(key);
  }

 protected:
  void Insert(uint64_t key) override {
    if (ghost_set_.erase(key) > 0) {
      main_.push_back(key);
      where_[key] = {false, std::prev(main_.end())};
    } else {
      small_.push_back(key);
      where_[key] = {true, std::prev(small_.end())};
    }
    freq_[key] = 0;
  }

  std::optional<uint64_t> EvictOne(const EvictablePredicate& evictable) override {
    uint64_t victim = 0;
    // Each pass either evicts, or moves one entry between queues; bound the
    // passes so a fully pinned cache terminates.
    for (int64_t guard = 2 * size() + 4; guard > 0; --guard) {
      const bool prefer_small =
          !small_.empty() &&
          (static_cast<int64_t>(small_.size()) > SmallTarget() || main_.empty());
      int r = ScanQueue(prefer_small, evictable, &victim);
      if (r == kNothing) {
        r = ScanQueue(!prefer_small, evictable, &victim);
      }
      if (r == kNothing) {
        return std::nullopt;
      }
      if (r == kEvicted) {
        return victim;
      }
      // kMoved: an entry changed queues; re-evaluate which queue to drain.
    }
    return std::nullopt;
  }

 private:
  struct Where {
    bool in_small;
    std::list<uint64_t>::iterator pos;
  };

  static constexpr int kNothing = 0;
  static constexpr int kMoved = 1;
  static constexpr int kEvicted = 2;

  int64_t SmallTarget() const { return capacity_ / 10; }

  // Walks one queue from its FIFO head for the first entry it may act on:
  // promote/requeue an entry with hits (kMoved), or evict the first eligible
  // zero-hit entry (kEvicted, victim in *out). kNothing when every entry is
  // pinned at zero hits (or the queue is empty).
  int ScanQueue(bool use_small, const EvictablePredicate& evictable, uint64_t* out) {
    std::list<uint64_t>& q = use_small ? small_ : main_;
    for (auto it = q.begin(); it != q.end(); ++it) {
      const uint64_t key = *it;
      int& f = freq_[key];
      if (f > 0) {
        if (use_small) {
          q.erase(it);
          main_.push_back(key);
          where_[key] = {false, std::prev(main_.end())};
          f = 0;
        } else {
          --f;
          q.splice(q.end(), q, it);
          where_[key] = {false, std::prev(q.end())};
        }
        return kMoved;
      }
      if (evictable(key)) {
        q.erase(it);
        where_.erase(key);
        freq_.erase(key);
        PushGhost(key);
        *out = key;
        return kEvicted;
      }
      // Pinned with zero hits: leave it in place, consider the next entry.
    }
    return kNothing;
  }

  void PushGhost(uint64_t key) {
    ghost_set_.insert(key);
    ghost_fifo_.push_back(key);
    // Re-admitted keys leave the set but not the deque; skip stale entries.
    while (!ghost_fifo_.empty() &&
           static_cast<int64_t>(ghost_set_.size()) > capacity_) {
      ghost_set_.erase(ghost_fifo_.front());
      ghost_fifo_.pop_front();
    }
  }

  std::list<uint64_t> small_;  // front = oldest
  std::list<uint64_t> main_;   // front = oldest
  std::unordered_map<uint64_t, Where> where_;
  std::unordered_map<uint64_t, int> freq_;
  std::unordered_set<uint64_t> ghost_set_;
  std::deque<uint64_t> ghost_fifo_;
};

}  // namespace

std::unique_ptr<FlashCacheAlgo> MakeFlashCacheAlgo(FlashAlgoKind kind,
                                                   int64_t capacity) {
  PENSIEVE_CHECK_GT(capacity, 0);
  switch (kind) {
    case FlashAlgoKind::kLru:
      return std::make_unique<LruAlgo>(capacity);
    case FlashAlgoKind::kFifo:
      return std::make_unique<FifoAlgo>(capacity);
    case FlashAlgoKind::kS3Fifo:
      return std::make_unique<S3FifoAlgo>(capacity);
    case FlashAlgoKind::kSieve:
      return std::make_unique<SieveAlgo>(capacity);
  }
  PENSIEVE_CHECK(false) << "unknown flash algo kind";
  return nullptr;
}

}  // namespace pensieve

// Append-only segment log for the simulated SSD tier.
//
// Flash-friendly layout (after Wajorrr/lsc and classic LFS): the block
// address space is carved into fixed-size segments; writes only ever append
// to the single open segment, full segments are sealed, and space is
// reclaimed by garbage collection — pick the sealed segment with the fewest
// live blocks, relocate its live blocks to the log head, and erase it whole.
// Overwrite-in-place never happens, which is exactly the constraint real
// NAND imposes.
//
// The log tracks the two quantities the ISSUE's accounting asks for:
//   * write amplification = (user appends + GC relocations) / user appends
//   * space utilization   = live blocks / physical capacity
//
// Everything is deterministic: victim selection breaks ties by lowest
// segment index and relocation preserves slot order, so flash-tier runs are
// bit-identical across thread counts.

#ifndef PENSIEVE_SRC_KVCACHE_FLASH_SEGMENT_LOG_H_
#define PENSIEVE_SRC_KVCACHE_FLASH_SEGMENT_LOG_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace pensieve {

// A flash block address: segment * segment_blocks + slot.
using FlashBlockId = int32_t;
inline constexpr FlashBlockId kInvalidFlashBlock = -1;

struct SegmentLogConfig {
  int64_t segment_blocks = 64;
  int64_t num_segments = 0;
};

class SegmentLog {
 public:
  // GC relocation callback: the live block for `key` moved from `from` to
  // `to`. The caller keeps its key->block index (and any backing bytes) in
  // sync. `from == to` is possible when the erased victim is immediately
  // reopened as the log head; treat that as a no-op byte copy.
  using RelocateFn =
      std::function<void(uint64_t key, FlashBlockId from, FlashBlockId to)>;

  struct Stats {
    int64_t user_appends = 0;   // blocks written on behalf of the cache
    int64_t gc_moves = 0;       // live-block relocations done by GC
    int64_t gc_runs = 0;        // sealed segments erased by GC
    int64_t zero_live_erases = 0;  // GC victims that held no live blocks

    double WriteAmplification() const {
      if (user_appends == 0) {
        return 1.0;
      }
      return static_cast<double>(user_appends + gc_moves) /
             static_cast<double>(user_appends);
    }
  };

  explicit SegmentLog(const SegmentLogConfig& config);

  int64_t segment_blocks() const { return config_.segment_blocks; }
  int64_t num_segments() const { return config_.num_segments; }
  int64_t capacity_blocks() const {
    return config_.num_segments * config_.segment_blocks;
  }
  int64_t live_blocks() const { return live_blocks_; }
  double Utilization() const {
    return static_cast<double>(live_blocks_) /
           static_cast<double>(capacity_blocks());
  }
  int64_t free_segments() const;

  // Appends a live block for `key`, running GC when the open segment fills
  // and no free segment remains. Returns the block's address, or nullopt
  // when even GC cannot make room (every other segment is fully live).
  std::optional<FlashBlockId> Append(uint64_t key, const RelocateFn& relocate);

  // Marks a previously appended block dead. Its space is reclaimed when GC
  // eventually erases the segment.
  void MarkDead(FlashBlockId block);

  bool IsLive(FlashBlockId block) const;
  uint64_t KeyAt(FlashBlockId block) const;

  // One GC pass (also used directly by tests): erases the sealed segment
  // with the fewest live blocks after relocating them. Returns false when no
  // sealed segment with reclaimable space exists.
  bool GcOnce(const RelocateFn& relocate);

  const Stats& stats() const { return stats_; }

 private:
  enum class SegState : uint8_t { kFree, kOpen, kSealed };

  int64_t SegmentOf(FlashBlockId block) const {
    return block / config_.segment_blocks;
  }
  // Ensures the open segment has a free slot, opening a free segment (and
  // GC-ing when `allow_gc`) as needed.
  bool EnsureOpenSlot(const RelocateFn& relocate, bool allow_gc);
  FlashBlockId AppendRaw(uint64_t key);

  SegmentLogConfig config_;
  std::vector<SegState> seg_state_;
  std::vector<int64_t> seg_live_;     // live blocks per segment
  std::vector<uint64_t> slot_key_;    // key per block slot
  std::vector<uint8_t> slot_live_;    // liveness per block slot
  int64_t open_segment_ = -1;
  int64_t open_cursor_ = 0;  // next slot within the open segment
  int64_t live_blocks_ = 0;
  Stats stats_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_FLASH_SEGMENT_LOG_H_

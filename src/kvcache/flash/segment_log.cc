#include "src/kvcache/flash/segment_log.h"

#include <utility>

#include "src/common/logging.h"

namespace pensieve {

SegmentLog::SegmentLog(const SegmentLogConfig& config) : config_(config) {
  PENSIEVE_CHECK_GT(config_.segment_blocks, 0);
  PENSIEVE_CHECK_GE(config_.num_segments, 2)
      << "the log needs at least one sealed and one open segment";
  seg_state_.assign(static_cast<size_t>(config_.num_segments), SegState::kFree);
  seg_live_.assign(static_cast<size_t>(config_.num_segments), 0);
  slot_key_.assign(static_cast<size_t>(capacity_blocks()), 0);
  slot_live_.assign(static_cast<size_t>(capacity_blocks()), 0);
}

int64_t SegmentLog::free_segments() const {
  int64_t n = 0;
  for (SegState s : seg_state_) {
    if (s == SegState::kFree) {
      ++n;
    }
  }
  return n;
}

std::optional<FlashBlockId> SegmentLog::Append(uint64_t key,
                                               const RelocateFn& relocate) {
  if (!EnsureOpenSlot(relocate, /*allow_gc=*/true)) {
    return std::nullopt;
  }
  ++stats_.user_appends;
  return AppendRaw(key);
}

void SegmentLog::MarkDead(FlashBlockId block) {
  PENSIEVE_CHECK_GE(block, 0);
  PENSIEVE_CHECK_LT(block, capacity_blocks());
  PENSIEVE_CHECK(slot_live_[static_cast<size_t>(block)])
      << "double MarkDead of flash block " << block;
  slot_live_[static_cast<size_t>(block)] = 0;
  --seg_live_[static_cast<size_t>(SegmentOf(block))];
  --live_blocks_;
}

bool SegmentLog::IsLive(FlashBlockId block) const {
  return block >= 0 && block < capacity_blocks() &&
         slot_live_[static_cast<size_t>(block)] != 0;
}

uint64_t SegmentLog::KeyAt(FlashBlockId block) const {
  PENSIEVE_CHECK(IsLive(block));
  return slot_key_[static_cast<size_t>(block)];
}

bool SegmentLog::EnsureOpenSlot(const RelocateFn& relocate, bool allow_gc) {
  while (open_segment_ < 0 || open_cursor_ == config_.segment_blocks) {
    // Prefer a free segment; lowest index for determinism.
    int64_t free_seg = -1;
    for (int64_t s = 0; s < config_.num_segments; ++s) {
      if (seg_state_[static_cast<size_t>(s)] == SegState::kFree) {
        free_seg = s;
        break;
      }
    }
    if (free_seg >= 0) {
      if (open_segment_ >= 0) {
        seg_state_[static_cast<size_t>(open_segment_)] = SegState::kSealed;
      }
      seg_state_[static_cast<size_t>(free_seg)] = SegState::kOpen;
      open_segment_ = free_seg;
      open_cursor_ = 0;
      return true;
    }
    if (!allow_gc || !GcOnce(relocate)) {
      return false;
    }
    // GcOnce may have opened a segment (relocations) or freed one; re-check.
  }
  return true;
}

FlashBlockId SegmentLog::AppendRaw(uint64_t key) {
  PENSIEVE_CHECK_GE(open_segment_, 0);
  PENSIEVE_CHECK_LT(open_cursor_, config_.segment_blocks);
  const FlashBlockId block = static_cast<FlashBlockId>(
      open_segment_ * config_.segment_blocks + open_cursor_);
  slot_key_[static_cast<size_t>(block)] = key;
  slot_live_[static_cast<size_t>(block)] = 1;
  ++seg_live_[static_cast<size_t>(open_segment_)];
  ++open_cursor_;
  ++live_blocks_;
  return block;
}

bool SegmentLog::GcOnce(const RelocateFn& relocate) {
  // Victim: the sealed segment with the fewest live blocks (greedy policy;
  // ties broken by lowest index for determinism).
  int64_t victim = -1;
  for (int64_t s = 0; s < config_.num_segments; ++s) {
    if (seg_state_[static_cast<size_t>(s)] != SegState::kSealed) {
      continue;
    }
    if (victim < 0 || seg_live_[static_cast<size_t>(s)] <
                          seg_live_[static_cast<size_t>(victim)]) {
      victim = s;
    }
  }
  if (victim < 0 || seg_live_[static_cast<size_t>(victim)] == config_.segment_blocks) {
    // No sealed segment, or even the best victim is fully live: erasing it
    // would reclaim nothing.
    return false;
  }

  // Collect the victim's live blocks in slot order, then erase the segment
  // so its space is immediately available to receive the relocations.
  std::vector<std::pair<uint64_t, FlashBlockId>> live;
  const FlashBlockId base =
      static_cast<FlashBlockId>(victim * config_.segment_blocks);
  for (int64_t i = 0; i < config_.segment_blocks; ++i) {
    const FlashBlockId b = base + static_cast<FlashBlockId>(i);
    if (slot_live_[static_cast<size_t>(b)]) {
      live.emplace_back(slot_key_[static_cast<size_t>(b)], b);
      slot_live_[static_cast<size_t>(b)] = 0;
    }
  }
  live_blocks_ -= static_cast<int64_t>(live.size());
  seg_live_[static_cast<size_t>(victim)] = 0;
  seg_state_[static_cast<size_t>(victim)] = SegState::kFree;

  for (const auto& [key, from] : live) {
    // The victim was just freed, so an open slot always exists; GC never
    // recurses into GC.
    PENSIEVE_CHECK(EnsureOpenSlot(relocate, /*allow_gc=*/false));
    const FlashBlockId to = AppendRaw(key);
    ++stats_.gc_moves;
    relocate(key, from, to);
  }
  ++stats_.gc_runs;
  if (live.empty()) {
    ++stats_.zero_live_erases;
  }
  return true;
}

}  // namespace pensieve

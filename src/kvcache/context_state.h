// Per-conversation cached-context bookkeeping.
//
// A conversation's processed context is an ordered list of chunks (paper
// §4.3). Pensieve always evicts/drops from the leading end, so a typical
// layout is: [dropped prefix][CPU-resident middle][GPU-resident tail]
// (paper Figure 5). The drop-from-the-front invariant is enforced by the
// two-tier cache mechanism; swap state (GPU/CPU) may interleave freely.

#ifndef PENSIEVE_SRC_KVCACHE_CONTEXT_STATE_H_
#define PENSIEVE_SRC_KVCACHE_CONTEXT_STATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/kvcache/block.h"

namespace pensieve {

class ContextState {
 public:
  explicit ContextState(int64_t block_size) : block_size_(block_size) {}

  int64_t block_size() const { return block_size_; }

  int64_t num_chunks() const { return static_cast<int64_t>(chunks_.size()); }
  const Chunk& chunk(int64_t i) const { return chunks_[static_cast<size_t>(i)]; }
  Chunk& mutable_chunk(int64_t i) { return chunks_[static_cast<size_t>(i)]; }
  std::vector<Chunk>& chunks() { return chunks_; }
  const std::vector<Chunk>& chunks() const { return chunks_; }

  // Total KV tokens represented (including dropped ones).
  int64_t kv_len() const { return kv_len_; }

  // First token position covered by chunk i.
  int64_t ChunkStartToken(int64_t i) const { return i * block_size_; }
  // Context length "seen" by the last token of chunk i (causal attention):
  // all tokens up to and including the chunk itself.
  int64_t ChunkContextLen(int64_t i) const {
    return ChunkStartToken(i) + chunk(i).num_tokens;
  }

  // Length of the contiguous dropped prefix, in tokens.
  int64_t LeadingDroppedTokens() const;
  int64_t LeadingDroppedChunks() const;
  // The "CPU frontier": length of the contiguous prefix of chunks that are
  // dropped or demoted to the flash tier. The first chunk past it is the
  // oldest chunk still holding a CPU/GPU copy — the next demotion (or drop)
  // candidate. Equal to LeadingDroppedChunks() when no flash tier exists.
  int64_t LeadingDroppedOrSsdChunks() const;

  // Token counts by residency.
  int64_t TokensOnGpu() const;
  int64_t TokensCpuOnly() const;
  int64_t TokensOnSsd() const;
  int64_t TokensDropped() const;

  // Chunk indices (ascending) that are CPU-only: these must be swapped in
  // before the conversation's next request can run.
  std::vector<int64_t> CpuOnlyChunks() const;
  // Chunk indices (ascending) demoted to the flash tier: these must be
  // promoted back to the CPU tier (then swapped in) before the
  // conversation's next request can run.
  std::vector<int64_t> SsdChunks() const;

  // True when every non-dropped chunk is GPU-resident.
  bool FullyOnGpu() const;

  // Appends bookkeeping for `n` more tokens; newly needed chunks are created
  // with the provided GPU blocks. The caller supplies exactly
  // NumNewChunksForAppend(n) block ids. Returns per-token (block, slot)
  // positions via *slots if non-null.
  struct SlotRef {
    int64_t chunk_index;
    BlockId block;
    int64_t slot;
  };
  int64_t NumNewChunksForAppend(int64_t n) const;
  void AppendTokens(int64_t n, const std::vector<BlockId>& new_gpu_blocks,
                    std::vector<SlotRef>* slots);

  // Appends a chunk that *views* an already-populated (shared) GPU block:
  // the tokens count as processed KV without any prefill. The caller owns
  // refcounting on `block`. A partial view (tokens < block_size) is legal
  // only as the final attached chunk — the next append into it goes through
  // the cache's copy-on-write path. Requires a full (or empty) tail.
  void AttachSharedChunk(BlockId block, int64_t tokens);

  // Rebuilds bookkeeping for `kv_len` migrated-in tokens: chunks start in
  // the dropped state (no blocks); the cache then materializes CPU copies
  // for whatever suffix actually arrived. Only legal on an empty state.
  void InitializeImported(int64_t kv_len);

  // Last-activity timestamp (seconds); drives the eviction policy's T.
  double last_active() const { return last_active_; }
  void set_last_active(double t) { last_active_ = t; }

  // Pins prevent eviction while a request is actively using the context.
  void Pin() { ++pin_count_; }
  void Unpin() { --pin_count_; }
  bool pinned() const { return pin_count_ > 0; }

 private:
  int64_t block_size_;
  std::vector<Chunk> chunks_;
  int64_t kv_len_ = 0;
  double last_active_ = 0.0;
  int pin_count_ = 0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_CONTEXT_STATE_H_

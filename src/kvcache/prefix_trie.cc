#include "src/kvcache/prefix_trie.h"

#include "src/common/logging.h"

namespace pensieve {

int64_t PrefixTrie::Lookup(const std::vector<uint64_t>& chain,
                           std::vector<BlockId>* blocks) const {
  const std::unordered_map<uint64_t, std::unique_ptr<Node>>* level = &roots_;
  int64_t matched = 0;
  for (uint64_t hash : chain) {
    auto it = level->find(hash);
    if (it == level->end()) {
      break;
    }
    if (blocks != nullptr) {
      blocks->push_back(it->second->block);
    }
    ++matched;
    level = &it->second->children;
  }
  return matched;
}

int64_t PrefixTrie::Publish(const std::vector<uint64_t>& chain,
                            const std::vector<BlockId>& blocks) {
  PENSIEVE_CHECK_LE(blocks.size(), chain.size());
  std::unordered_map<uint64_t, std::unique_ptr<Node>>* level = &roots_;
  Node* parent = nullptr;
  int64_t created = 0;
  for (size_t i = 0; i < blocks.size(); ++i) {
    auto it = level->find(chain[i]);
    if (it == level->end()) {
      // A physical block can anchor at most one trie node; if this block is
      // already published elsewhere the chain has lost continuity — stop.
      if (by_block_.find(blocks[i]) != by_block_.end()) {
        break;
      }
      auto node = std::make_unique<Node>();
      node->hash = chain[i];
      node->block = blocks[i];
      node->parent = parent;
      by_block_[blocks[i]] = node.get();
      it = level->emplace(chain[i], std::move(node)).first;
      ++created;
      ++publishes_;
    }
    parent = it->second.get();
    level = &it->second->children;
  }
  return created;
}

int64_t PrefixTrie::RemoveSubtree(Node* node) {
  int64_t removed = 1;
  by_block_.erase(node->block);
  for (auto& child : node->children) {
    removed += RemoveSubtree(child.second.get());
  }
  node->children.clear();
  return removed;
}

int64_t PrefixTrie::InvalidateBlock(BlockId block) {
  auto it = by_block_.find(block);
  if (it == by_block_.end()) {
    return 0;
  }
  Node* node = it->second;
  const int64_t removed = RemoveSubtree(node);
  invalidations_ += removed;
  auto* level = node->parent != nullptr ? &node->parent->children : &roots_;
  level->erase(node->hash);  // destroys `node` and the detached subtree
  return removed;
}

std::vector<BlockId> PrefixTrie::ReferencedBlocks() const {
  std::vector<BlockId> blocks;
  blocks.reserve(by_block_.size());
  for (const auto& [block, node] : by_block_) {
    blocks.push_back(block);
  }
  return blocks;
}

}  // namespace pensieve

#include "src/kvcache/block.h"

namespace pensieve {

const char* ChunkLocationName(ChunkLocation loc) {
  switch (loc) {
    case ChunkLocation::kGpu:
      return "GPU";
    case ChunkLocation::kGpuAndCpu:
      return "GPU+CPU";
    case ChunkLocation::kCpu:
      return "CPU";
    case ChunkLocation::kDropped:
      return "DROPPED";
  }
  return "?";
}

}  // namespace pensieve

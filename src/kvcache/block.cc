#include "src/kvcache/block.h"

namespace pensieve {

const char* ChunkLocationName(ChunkLocation loc) {
  switch (loc) {
    case ChunkLocation::kGpu:
      return "GPU";
    case ChunkLocation::kGpuAndCpu:
      return "GPU+CPU";
    case ChunkLocation::kCpu:
      return "CPU";
    case ChunkLocation::kSsd:
      return "SSD";
    case ChunkLocation::kDropped:
      return "DROPPED";
  }
  return "?";
}

uint32_t SimChunkChecksum(int64_t conversation_id, int64_t chunk_index,
                          int64_t num_tokens) {
  // splitmix64-style finalizer over the chunk identity, folded to 32 bits.
  uint64_t x = static_cast<uint64_t>(conversation_id) * 0x9E3779B97F4A7C15ull +
               static_cast<uint64_t>(chunk_index) * 0xBF58476D1CE4E5B9ull +
               static_cast<uint64_t>(num_tokens);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<uint32_t>(x ^ (x >> 32));
}

}  // namespace pensieve

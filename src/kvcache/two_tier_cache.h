// Two-tier (GPU + CPU) paged KV cache (paper §4.3).
//
// This class owns the block allocators for both tiers, the per-conversation
// ContextState map, and — in numeric mode — the real KV pools whose contents
// the swap operations copy. It implements the *mechanisms* (swap out/in,
// lazy GPU reclamation, prefix dropping, dropped-chunk restore); *policy*
// (which chunk, when) lives in src/eviction and the engine's cache
// coordinator.
//
// Chunk lifecycle:
//
//             SwapOut              ReclaimGpu
//   kGpu  ------------> kGpuAndCpu -----------> kCpu
//    ^                      |  ^                 |
//    |   DropCpuCopy        |  |     SwapIn      |
//    +----------------------+  +-----------------+
//    |                                            DropChunk
//    +-- RestoreDropped <-- kDropped <------------+
//
// kGpuAndCpu is the paper's lazy-reclamation state: the chunk was copied to
// the CPU ahead of time, but its GPU slot is only actually released
// (ReclaimGpu) when the scheduler hands that slot to another conversation.
//
// With the flash tier enabled (num_ssd_blocks > 0) a third level sits behind
// the CPU: DemoteToFlash (kCpu -> kSsd) spills CPU-pressure victims into the
// log-structured SSD instead of dropping them, PromoteFromFlash
// (kSsd -> kCpu) stages them back on the restore path, and flash-algo
// evictions drop kSsd chunks as context prefixes.

#ifndef PENSIEVE_SRC_KVCACHE_TWO_TIER_CACHE_H_
#define PENSIEVE_SRC_KVCACHE_TWO_TIER_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/kvcache/block.h"
#include "src/kvcache/block_allocator.h"
#include "src/kvcache/context_state.h"
#include "src/kvcache/flash/flash_tier.h"
#include "src/kvcache/kv_pool.h"
#include "src/kvcache/prefix_trie.h"

namespace pensieve {

using ConversationId = int64_t;

struct KvCacheConfig {
  int64_t block_size = kDefaultBlockSize;
  int64_t num_gpu_blocks = 0;
  int64_t num_cpu_blocks = 0;
  // Flash (SSD) tier behind the CPU tier; 0 disables it, preserving exact
  // two-tier behavior.
  int64_t num_ssd_blocks = 0;
  FlashAlgoKind ssd_algo = FlashAlgoKind::kLru;
  int64_t ssd_segment_blocks = 64;
  // Cross-conversation shared-prefix dedup: refcounted GPU blocks published
  // in a content-addressed prefix trie, attached by later conversations with
  // matching prompts, copy-on-write on divergence. Off by default; when off
  // every block keeps the exclusive-ownership lifecycle bit-identically.
  bool enable_prefix_sharing = false;
  // Int8 KV quantization at the tier boundary: GPU copies stay fp32,
  // swap-out quantizes into the CPU tier (per-block amax scale, checksums
  // over the quantized bytes), swap-in dequantizes back, and flash copies
  // stay quantized end to end. Off by default; when off every copy and
  // checksum is bit-identical to the unquantized build.
  bool kv_quant = false;
  // Per-block byte sizes in the serving substrate (e.g. fp16 KV vs int8 +
  // scale), used to account CPU/SSD capacity in *compressed* bytes: when
  // kv_quant is on and both are set, the num_cpu_blocks / num_ssd_blocks
  // budgets are scaled up by raw/quant so the same byte budget holds ~2x
  // the conversations. Zero leaves the budgets untouched.
  int64_t kv_raw_block_bytes = 0;
  int64_t kv_quant_block_bytes = 0;
  // Numeric mode: allocate real pools with this geometry.
  bool numeric = false;
  int64_t num_layers = 1;
  int64_t num_kv_heads = 1;
  int64_t head_dim = 1;
};

class TwoTierKvCache {
 public:
  explicit TwoTierKvCache(const KvCacheConfig& config);
  // Shutdown leak audit: every allocator reference must be reachable from a
  // chunk view. Aborts with a diagnostic on leaked blocks, which previously
  // died silently with the pool.
  ~TwoTierKvCache();

  int64_t block_size() const { return config_.block_size; }
  bool prefix_sharing_enabled() const { return config_.enable_prefix_sharing; }

  BlockAllocator& gpu_allocator() { return gpu_allocator_; }
  const BlockAllocator& gpu_allocator() const { return gpu_allocator_; }
  BlockAllocator& cpu_allocator() { return cpu_allocator_; }
  const BlockAllocator& cpu_allocator() const { return cpu_allocator_; }

  // Null in simulated mode.
  KvPool* gpu_pool() { return gpu_pool_.get(); }
  KvPool* cpu_pool() { return cpu_pool_.get(); }

  // Flash tier (null when num_ssd_blocks == 0).
  bool flash_enabled() const { return flash_ != nullptr; }
  FlashTier* flash_tier() { return flash_.get(); }
  const FlashTier* flash_tier() const { return flash_.get(); }

  ContextState& GetOrCreate(ConversationId id);
  ContextState* Find(ConversationId id);
  const ContextState* Find(ConversationId id) const;
  // Frees every block owned by the conversation and forgets it.
  void Release(ConversationId id);

  // All conversations currently tracked (for eviction scans).
  const std::unordered_map<ConversationId, ContextState>& conversations() const {
    return conversations_;
  }

  // GPU blocks that could be reclaimed instantly because a clean CPU copy
  // exists (kGpuAndCpu chunks).
  int64_t ReclaimableGpuBlocks() const { return reclaimable_gpu_blocks_; }
  // Free + instantly reclaimable.
  int64_t AvailableGpuBlocks() const {
    return gpu_allocator_.num_free() + reclaimable_gpu_blocks_;
  }

  // --- Append path -------------------------------------------------------
  // Appends n token slots on the GPU, allocating new blocks as needed (the
  // caller must have ensured availability; fails with RESOURCE_EXHAUSTED
  // otherwise, leaving state unchanged). If the tail chunk is partial and
  // carries a CPU copy, the copy is invalidated (freed). If the tail chunk
  // is a partial view of a *shared* block, the first appended token triggers
  // copy-on-write: the view moves to a freshly allocated private block
  // (contents copied in numeric mode) before any slot is handed out.
  Status AppendTokenSlots(ConversationId id, int64_t n,
                          std::vector<ContextState::SlotRef>* slots);
  // GPU blocks AppendTokenSlots would consume for an n-token append: new
  // chunks plus a possible copy-on-write block for a shared partial tail.
  // Identical to ContextState::NumNewChunksForAppend when sharing is off.
  int64_t AppendBlockDemand(ConversationId id, int64_t n) const;

  // --- Shared-prefix dedup -----------------------------------------------
  // All no-ops / failures unless config.enable_prefix_sharing.
  //
  // Longest published run matching the content-hash chain; appends the
  // backing GPU blocks to *blocks. Returns matched block count.
  int64_t LookupSharedPrefix(const std::vector<uint64_t>& chain,
                             std::vector<BlockId>* blocks) const;
  // Publishes a conversation's full, GPU-resident prefix blocks under the
  // chain (weak references; first publisher wins). Returns new trie nodes.
  int64_t PublishSharedPrefix(const std::vector<uint64_t>& chain,
                              const std::vector<BlockId>& blocks);
  // Attaches `tokens` tokens of shared prefix to a *fresh* conversation as
  // views over `blocks` (refcounts bumped, no prefill needed). The final
  // view may be partial; a later append into it goes through copy-on-write.
  // Returns the tokens attached.
  int64_t AttachSharedPrefix(ConversationId id, const std::vector<BlockId>& blocks,
                             int64_t tokens);
  // Re-attaches a *dropped* full chunk to a still-published shared block,
  // replacing the RestoreDropped + recompute path with a refcount bump.
  Status ReattachDroppedShared(ConversationId id, int64_t chunk_index, BlockId block);
  // True when more than one view holds the block (detaching one reader
  // frees no physical memory, and a later restore is a re-attach).
  bool SharedGpuBlock(BlockId block) const;
  const PrefixTrie& prefix_trie() const { return trie_; }

  // --- Swap / drop mechanisms --------------------------------------------
  // kGpu -> kGpuAndCpu. Copies data in numeric mode.
  Status SwapOut(ConversationId id, int64_t chunk_index);
  // kGpuAndCpu -> kCpu. Frees the GPU block (no data movement needed).
  Status ReclaimGpu(ConversationId id, int64_t chunk_index);
  // kCpu -> kGpuAndCpu. Allocates a GPU block; copies data in numeric mode.
  Status SwapIn(ConversationId id, int64_t chunk_index);
  // kGpuAndCpu -> kGpu. Frees the (still valid) CPU copy.
  Status DropCpuCopy(ConversationId id, int64_t chunk_index);
  // {kCpu, kGpu, kGpuAndCpu} -> kDropped, freeing all blocks. Only legal if
  // every earlier chunk is already dropped (drop-from-the-front invariant).
  Status DropChunk(ConversationId id, int64_t chunk_index);
  // kDropped -> kGpu with a freshly allocated (zeroed in numeric mode) GPU
  // block; the caller then recomputes the chunk's KV into it.
  Status RestoreDropped(ConversationId id, int64_t chunk_index);
  // Drops every non-dropped chunk up to and including `chunk_index`
  // (front-to-back, so each DropChunk call is legal). Adds the dropped
  // tokens to *dropped_tokens when non-null.
  Status DropThroughPrefix(ConversationId id, int64_t chunk_index,
                           int64_t* dropped_tokens = nullptr);

  // --- Flash (SSD) tier ---------------------------------------------------
  // kCpu -> kSsd: verifies the CPU copy's checksum, admits the chunk into
  // the flash tier (evicting lower-value flash chunks, which are dropped as
  // context prefixes of their conversations), copies data in numeric mode
  // and frees the CPU block. Only legal when every earlier chunk is already
  // dropped or on SSD, so a conversation's flash run stays a contiguous
  // extension of its dropped prefix — which is what makes flash-algo
  // evictions expressible as prefix drops.
  Status DemoteToFlash(ConversationId id, int64_t chunk_index);
  // kSsd -> kCpu: verifies the flash checksum (DATA_LOSS leaves the chunk
  // untouched, so corruption degrades to recomputation), allocates a CPU
  // block, copies data in numeric mode and releases the flash block. Promote
  // the *last* chunk of a flash run first to keep the run contiguous.
  Status PromoteFromFlash(ConversationId id, int64_t chunk_index);
  // Poisons a chunk's flash copy (the demotion transfer failed after the
  // state transition). Numeric mode also flips a bit in the flash pool.
  Status MarkSsdCorrupt(ConversationId id, int64_t chunk_index);
  // OK if the flash copy matches its recorded checksum, DATA_LOSS if
  // corrupted, FAILED_PRECONDITION when the chunk is not on SSD.
  Status VerifySsdChecksum(ConversationId id, int64_t chunk_index);

  // --- Checksums / fault handling ----------------------------------------
  // Every CPU copy carries a checksum recorded when the copy was created
  // (SwapOut / ImportCpuResident) and re-verified before it is trusted
  // again. SwapIn verifies internally and fails with DATA_LOSS — leaving
  // the chunk untouched — so a corrupted copy can only ever degrade to
  // recomputation, never flow back to the GPU.
  //
  // Poisons a chunk's CPU copy (fault injection observed the transfer that
  // produced it fail after the state transition). Numeric mode also flips a
  // bit in the backing pool so the real hash mismatches.
  Status MarkCpuCorrupt(ConversationId id, int64_t chunk_index);
  // Returns OK if the chunk's CPU copy still matches its recorded checksum,
  // DATA_LOSS if it was corrupted, FAILED_PRECONDITION if there is no CPU
  // copy to verify.
  Status VerifyCpuChecksum(ConversationId id, int64_t chunk_index);

  // --- Cluster migration --------------------------------------------------
  // Adopts a conversation migrated from another replica: `kv_len` tokens of
  // chunk bookkeeping whose trailing `resident_tokens` arrive as CPU-tier
  // copies (migrated KV lands in host memory); the leading remainder is
  // dropped. When the CPU tier lacks blocks the resident region shrinks
  // from the front (oldest KV is the cheapest to lose). The conversation
  // must not already be tracked. Returns the tokens actually materialized
  // in the CPU tier.
  int64_t ImportCpuResident(ConversationId id, int64_t kv_len,
                            int64_t resident_tokens);

  // Same adoption, but the resident region lands directly in the GPU tier
  // (a layer-pipelined handoff stream writes into the decode replica's KV
  // pool, so no swap-in is owed before first use). Chunks that cannot get a
  // GPU block degrade to CPU-tier copies; when both tiers are exhausted the
  // remaining leading region stays dropped. Returns the tokens materialized
  // in either tier.
  int64_t ImportGpuResident(ConversationId id, int64_t kv_len,
                            int64_t resident_tokens);

  // Frees exactly one GPU block by downgrading some kGpuAndCpu chunk chosen
  // by the caller. Convenience for the coordinator: equivalent to
  // ReclaimGpu.
  // (No extra method needed; coordinator calls ReclaimGpu directly.)

  // --- Cross-replica CPU-tier spill (DESIGN.md §14) -----------------------
  // Reserves real CPU-tier blocks to hold a peer replica's spilled KV.
  // All-or-nothing: returns `blocks` when the reservation succeeded, 0 when
  // the tier is short. Reserved blocks hold allocator references without a
  // chunk view; the leak audit accounts them separately.
  int64_t ReserveForeignCpuBlocks(int64_t blocks);
  // Returns `blocks` previously reserved blocks to the free list (the stash
  // was fetched back or invalidated).
  void ReleaseForeignCpuBlocks(int64_t blocks);
  int64_t foreign_cpu_blocks() const {
    return static_cast<int64_t>(foreign_cpu_blocks_.size());
  }

  // kDropped -> kCpu: re-adopts one chunk of a fetched-back spill segment as
  // a fresh CPU copy (checksummed like any SwapOut product). Only legal at
  // the trailing edge of the dropped prefix — the chunk right before the
  // first resident chunk — and only when that resident chunk is not on SSD
  // (a flash run must stay a contiguous extension of the dropped prefix).
  // Walk backward from the frontier to adopt a multi-chunk segment.
  Status RestoreDroppedToCpu(ConversationId id, int64_t chunk_index);

  // Builds the GPU block table covering the conversation's chunks
  // [first_chunk, num_chunks); every such chunk must be GPU-resident.
  std::vector<BlockId> GpuBlockTable(ConversationId id, int64_t first_chunk = 0) const;

  // --- Introspection / stats ---------------------------------------------
  struct Counters {
    int64_t swapped_out_chunks = 0;
    int64_t swapped_in_chunks = 0;
    int64_t dropped_chunks = 0;
    int64_t restored_chunks = 0;
    int64_t reclaimed_gpu_blocks = 0;
    int64_t checksum_verifications = 0;
    int64_t checksum_failures = 0;
    int64_t corrupt_marked_chunks = 0;
    // Flash-tier traffic.
    int64_t demoted_to_flash_chunks = 0;
    int64_t promoted_from_flash_chunks = 0;
    int64_t flash_evicted_chunks = 0;
    int64_t flash_evicted_tokens = 0;
    // Shared-prefix dedup traffic.
    int64_t shared_attached_chunks = 0;
    int64_t shared_attached_tokens = 0;
    int64_t cow_copies = 0;
    int64_t peak_shared_blocks = 0;
    // KV quantization traffic: blocks quantized crossing the GPU->CPU
    // boundary and the cumulative bytes that compression kept off the
    // CPU/SSD tiers.
    int64_t quantized_blocks = 0;
    int64_t quant_bytes_saved = 0;
  };
  const Counters& counters() const { return counters_; }

  // Internal-consistency audit used by tests: verifies allocator/refcount
  // agreement and the drop-prefix invariant. Aborts on violation.
  void CheckInvariants() const;

  // Leak audit (also run by the destructor): every live allocator reference
  // in both tiers is held by exactly one chunk view. Unlike CheckInvariants
  // this is legal mid-operation and with conversations still resident.
  void VerifyNoLeaks() const;

 private:
  ContextState& MustFind(ConversationId id);
  // Status-returning lookup used by the swap/drop mechanisms so bad ids or
  // chunk indices report instead of aborting (fault paths must compose).
  Status FindChunk(ConversationId id, int64_t chunk_index, ContextState** state);
  // Checksum of the chunk's CPU copy: real hash in numeric mode, synthetic
  // per-chunk tag in simulated mode.
  uint32_t ComputeCpuChecksum(ConversationId id, int64_t chunk_index,
                              const Chunk& c) const;
  uint32_t ComputeSsdChecksum(ConversationId id, int64_t chunk_index,
                              const Chunk& c) const;
  // Drops the chunks behind flash-algo evictions, each as a prefix drop of
  // its conversation (intermediate flash chunks go down with their victim).
  void DropFlashVictims(const std::vector<uint64_t>& evicted);
  // Drops one reference to a GPU block; when the last reference goes, the
  // block returns to the free list and any trie entry anchored on it (plus
  // descendants) is invalidated — trie references are weak.
  void ReleaseGpuBlock(BlockId block);

  KvCacheConfig config_;
  // Bytes one quantized tier crossing saves (0 when kv_quant is off).
  int64_t quant_saved_per_block_ = 0;
  BlockAllocator gpu_allocator_;
  BlockAllocator cpu_allocator_;
  std::unique_ptr<KvPool> gpu_pool_;
  std::unique_ptr<KvPool> cpu_pool_;
  std::unique_ptr<FlashTier> flash_;
  std::unordered_map<ConversationId, ContextState> conversations_;
  PrefixTrie trie_;
  int64_t reclaimable_gpu_blocks_ = 0;
  // CPU blocks reserved for peer replicas' spilled KV (no chunk view; freed
  // on release or at destruction).
  std::vector<BlockId> foreign_cpu_blocks_;
  Counters counters_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_TWO_TIER_CACHE_H_

// Free-list allocator for fixed-size KV cache blocks in one memory tier.

#ifndef PENSIEVE_SRC_KVCACHE_BLOCK_ALLOCATOR_H_
#define PENSIEVE_SRC_KVCACHE_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/kvcache/block.h"

namespace pensieve {

class BlockAllocator {
 public:
  explicit BlockAllocator(int64_t num_blocks);

  // Returns a free block, or nullopt if the tier is exhausted.
  std::optional<BlockId> Allocate();

  void Free(BlockId block);

  int64_t num_free() const { return static_cast<int64_t>(free_list_.size()); }
  int64_t num_allocated() const { return capacity_ - num_free(); }
  int64_t capacity() const { return capacity_; }
  double FreeFraction() const {
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(num_free()) / static_cast<double>(capacity_);
  }
  bool IsAllocated(BlockId block) const;

 private:
  int64_t capacity_;
  std::vector<BlockId> free_list_;
  std::vector<bool> allocated_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_BLOCK_ALLOCATOR_H_

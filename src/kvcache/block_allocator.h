// Free-list allocator for fixed-size KV cache blocks in one memory tier.
//
// Blocks are reference counted so several conversation views can share one
// physical block (PagedAttention-style prefix dedup). Allocate() hands out a
// block with refcount 1, Share() adds a reader, and Free() drops one
// reference — the block returns to the free list only when the last
// reference is released. For the exclusive-ownership lifecycle
// (Allocate → Free with no Share in between) the free-list order is
// identical to the pre-refcount allocator, which keeps dedup-off runs
// bit-identical.

#ifndef PENSIEVE_SRC_KVCACHE_BLOCK_ALLOCATOR_H_
#define PENSIEVE_SRC_KVCACHE_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/kvcache/block.h"

namespace pensieve {

class BlockAllocator {
 public:
  explicit BlockAllocator(int64_t num_blocks);

  // Returns a free block with refcount 1, or nullopt if the tier is
  // exhausted.
  std::optional<BlockId> Allocate();

  // Adds one reference to an allocated block.
  void Share(BlockId block);

  // Releases one reference. Returns true when this was the last reference
  // and the block went back to the free list.
  bool Free(BlockId block);

  int64_t num_free() const { return static_cast<int64_t>(free_list_.size()); }
  int64_t num_allocated() const { return capacity_ - num_free(); }
  int64_t capacity() const { return capacity_; }
  double FreeFraction() const {
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(num_free()) / static_cast<double>(capacity_);
  }
  bool IsAllocated(BlockId block) const;
  int32_t refcount(BlockId block) const;

  // Reference-balance accounting: every Allocate/Share is an acquire and
  // every Free a release, so total_acquires == total_releases + live_refs
  // holds at all times and live_refs == 0 at a leak-free shutdown.
  int64_t total_acquires() const { return total_acquires_; }
  int64_t total_releases() const { return total_releases_; }
  int64_t live_refs() const { return total_acquires_ - total_releases_; }

  // Physical blocks currently held by more than one reference.
  int64_t num_shared() const { return num_shared_; }
  // High-water mark of physically allocated blocks over the allocator's
  // lifetime (capacity actually consumed).
  int64_t peak_allocated() const { return peak_allocated_; }

  // Shutdown leak check: every block returned and every reference
  // balanced. Dies with a diagnostic if blocks leaked.
  void CheckAllFree() const;

 private:
  int64_t capacity_;
  std::vector<BlockId> free_list_;
  std::vector<int32_t> refcount_;
  int64_t total_acquires_ = 0;
  int64_t total_releases_ = 0;
  int64_t num_shared_ = 0;
  int64_t peak_allocated_ = 0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_BLOCK_ALLOCATOR_H_

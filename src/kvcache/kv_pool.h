// Numeric-mode storage for KV tokens: a pool of fixed-size blocks holding
// the Key and Value embeddings for every layer.
//
// Layout per block (row-major floats):
//   [num_layers][2 (K=0, V=1)][block_size][num_kv_heads][head_dim]
//
// A conversation chunk occupies one block across all layers, matching the
// paper's eviction granularity (a chunk's KV for all layers moves together;
// the layer-by-layer pipelined restore of §4.3.3 is a *timing* detail that
// the simulator models, not a layout one).

#ifndef PENSIEVE_SRC_KVCACHE_KV_POOL_H_
#define PENSIEVE_SRC_KVCACHE_KV_POOL_H_

#include <cstdint>
#include <vector>

#include "src/kvcache/block.h"

namespace pensieve {

class KvPool {
 public:
  KvPool(int64_t num_blocks, int64_t block_size, int64_t num_layers, int64_t num_kv_heads,
         int64_t head_dim);

  int64_t num_blocks() const { return num_blocks_; }
  int64_t block_size() const { return block_size_; }
  int64_t num_layers() const { return num_layers_; }
  int64_t num_kv_heads() const { return num_kv_heads_; }
  int64_t head_dim() const { return head_dim_; }

  // Pointer to one token's K (kv = 0) or V (kv = 1) vector
  // [num_kv_heads * head_dim] within a block.
  float* TokenData(BlockId block, int64_t layer, int kv, int64_t slot);
  const float* TokenData(BlockId block, int64_t layer, int kv, int64_t slot) const;

  // Writes one token's K and V (each [num_kv_heads * head_dim]) for a layer.
  void WriteToken(BlockId block, int64_t layer, int64_t slot, const float* k,
                  const float* v);

  // Copies the full contents of one block (all layers) between pools,
  // including its quantization state; used by the numeric swap path
  // (GPU tier <-> CPU tier) and the flash demote/promote copies.
  static void CopyBlock(const KvPool& src, BlockId src_block, KvPool& dst,
                        BlockId dst_block);

  // --- Int8 block quantization (tier-boundary compression) ---------------
  // Quantizes an fp32 source block into dst with one symmetric per-block
  // amax scale (scale = amax / 127) and an int8 payload stored in the
  // leading quarter of dst's storage; dst is marked quantized and carries
  // the scale in its block metadata. The source must not itself be
  // quantized.
  static void QuantizeBlock(const KvPool& src, BlockId src_block, KvPool& dst,
                            BlockId dst_block);
  // Expands a quantized source block back to fp32 in dst. A non-quantized
  // source degenerates to CopyBlock, so promote paths need not branch on
  // how the copy was created.
  static void DequantizeBlock(const KvPool& src, BlockId src_block, KvPool& dst,
                              BlockId dst_block);

  // Whether the block currently holds an int8 payload, and its scale.
  bool BlockQuantized(BlockId block) const;
  float BlockScale(BlockId block) const;

  // Bytes occupied by one block in this pool (fp32 substrate).
  int64_t BlockBytes() const { return block_stride_ * static_cast<int64_t>(sizeof(float)); }
  // Wire/storage size of an int8-quantized block: the int8 payload plus its
  // fp32 scale. What compressed tiers and transfer pricing account in.
  int64_t QuantizedBlockBytes() const {
    return block_stride_ * static_cast<int64_t>(sizeof(int8_t)) +
           static_cast<int64_t>(sizeof(float));
  }

  // FNV-1a hash over the block's payload (all layers). For a quantized
  // block this covers the int8 bytes *and* the scale — exactly the bytes a
  // transfer moves — so the PR 5/6 fault handling verifies quantized copies
  // unchanged. Recorded at swap-out and verified at swap-in to catch
  // in-flight bit flips.
  uint32_t BlockChecksum(BlockId block) const;

  // Flips one bit of the block's payload (deterministic position), the
  // numeric-mode realization of a silent transfer corruption. The flipped
  // byte lies inside the int8 payload when the block is quantized.
  void CorruptBlock(BlockId block);

 private:
  int64_t Offset(BlockId block, int64_t layer, int kv, int64_t slot) const;

  // Per-block quantization state; default fp32 (not quantized).
  struct QuantInfo {
    bool quantized = false;
    float scale = 0.0f;
  };

  int64_t num_blocks_;
  int64_t block_size_;
  int64_t num_layers_;
  int64_t num_kv_heads_;
  int64_t head_dim_;
  int64_t token_stride_;  // floats per token per layer per K-or-V
  int64_t block_stride_;  // floats per block
  std::vector<float> data_;
  std::vector<QuantInfo> quant_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_KV_POOL_H_

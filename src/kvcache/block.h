// Basic block/chunk vocabulary shared by the KV cache, kernels and scheduler.
//
// Pensieve manages the KV cache as fixed-size blocks ("chunks" in the paper,
// 32 tokens by default). A conversation's cached context is an ordered list
// of chunks, each of which lives on the GPU, on the CPU, on both (a clean
// GPU copy whose CPU backup already exists, the paper's lazy-reclamation
// state), or has been dropped and must be recomputed.

#ifndef PENSIEVE_SRC_KVCACHE_BLOCK_H_
#define PENSIEVE_SRC_KVCACHE_BLOCK_H_

#include <cstdint>

namespace pensieve {

using BlockId = int32_t;
inline constexpr BlockId kInvalidBlock = -1;

// Default chunk size; the paper reports 32 tokens works well (§4.3.1).
inline constexpr int64_t kDefaultBlockSize = 32;

enum class ChunkLocation : uint8_t {
  kGpu,        // resident only in GPU memory
  kGpuAndCpu,  // resident in GPU memory with a clean CPU copy (swap-out done,
               // GPU slot reclaimable for free)
  kCpu,        // resident only in CPU memory
  kDropped,    // evicted everywhere; recompute from raw tokens when needed
};

const char* ChunkLocationName(ChunkLocation loc);

// One cached chunk of a conversation's context.
struct Chunk {
  ChunkLocation location = ChunkLocation::kDropped;
  BlockId gpu_block = kInvalidBlock;
  BlockId cpu_block = kInvalidBlock;
  // Number of KV tokens stored (== block_size except possibly the last
  // chunk of a conversation).
  int64_t num_tokens = 0;

  bool OnGpu() const {
    return location == ChunkLocation::kGpu || location == ChunkLocation::kGpuAndCpu;
  }
  bool HasCpuCopy() const {
    return location == ChunkLocation::kGpuAndCpu || location == ChunkLocation::kCpu;
  }
  bool Dropped() const { return location == ChunkLocation::kDropped; }
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_BLOCK_H_

// Basic block/chunk vocabulary shared by the KV cache, kernels and scheduler.
//
// Pensieve manages the KV cache as fixed-size blocks ("chunks" in the paper,
// 32 tokens by default). A conversation's cached context is an ordered list
// of chunks, each of which lives on the GPU, on the CPU, on both (a clean
// GPU copy whose CPU backup already exists, the paper's lazy-reclamation
// state), or has been dropped and must be recomputed.

#ifndef PENSIEVE_SRC_KVCACHE_BLOCK_H_
#define PENSIEVE_SRC_KVCACHE_BLOCK_H_

#include <cstdint>

namespace pensieve {

using BlockId = int32_t;
inline constexpr BlockId kInvalidBlock = -1;

// Default chunk size; the paper reports 32 tokens works well (§4.3.1).
inline constexpr int64_t kDefaultBlockSize = 32;

enum class ChunkLocation : uint8_t {
  kGpu,        // resident only in GPU memory
  kGpuAndCpu,  // resident in GPU memory with a clean CPU copy (swap-out done,
               // GPU slot reclaimable for free)
  kCpu,        // resident only in CPU memory
  kSsd,        // resident only in the flash tier (demoted under CPU pressure)
  kDropped,    // evicted everywhere; recompute from raw tokens when needed
};

const char* ChunkLocationName(ChunkLocation loc);

// Synthetic checksum for simulated-mode chunks (no real bytes to hash):
// a deterministic mix of the chunk's identity, so a re-created CPU copy of
// the same chunk gets the same tag and corruption is modeled by the
// cpu_corrupt flag rather than a value mismatch.
uint32_t SimChunkChecksum(int64_t conversation_id, int64_t chunk_index,
                          int64_t num_tokens);

// One cached chunk of a conversation's context.
struct Chunk {
  ChunkLocation location = ChunkLocation::kDropped;
  BlockId gpu_block = kInvalidBlock;
  BlockId cpu_block = kInvalidBlock;
  // Number of KV tokens stored (== block_size except possibly the last
  // chunk of a conversation).
  int64_t num_tokens = 0;
  // Checksum of the CPU-tier copy, recorded when the copy is created
  // (swap-out / migration arrival) and verified before the copy is trusted
  // again (swap-in). Numeric mode hashes the block's floats; simulated mode
  // uses a synthetic per-chunk tag. Zero while no CPU copy exists.
  uint32_t cpu_checksum = 0;
  // Set when fault injection corrupted the CPU copy in flight; the next
  // checksum verification fails and the chunk degrades to recomputation.
  bool cpu_corrupt = false;
  // Same pair for the flash-tier copy (kSsd chunks): recorded at demotion,
  // verified before the copy is promoted back to the CPU tier. The flash
  // block id itself lives inside FlashTier (GC relocates blocks without
  // touching chunk bookkeeping).
  uint32_t ssd_checksum = 0;
  bool ssd_corrupt = false;

  bool OnGpu() const {
    return location == ChunkLocation::kGpu || location == ChunkLocation::kGpuAndCpu;
  }
  bool HasCpuCopy() const {
    return location == ChunkLocation::kGpuAndCpu || location == ChunkLocation::kCpu;
  }
  bool OnSsd() const { return location == ChunkLocation::kSsd; }
  bool Dropped() const { return location == ChunkLocation::kDropped; }
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KVCACHE_BLOCK_H_

// Model architecture descriptions (paper Table 1) plus tiny validation models.
//
// The serving system and the cost model are parameterized entirely by this
// struct; the numeric reference transformer (src/model/transformer.h)
// instantiates real weights only for the tiny presets.

#ifndef PENSIEVE_SRC_MODEL_MODEL_CONFIG_H_
#define PENSIEVE_SRC_MODEL_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

namespace pensieve {

enum class Activation { kGelu, kSilu, kRelu };
enum class NormKind { kLayerNorm, kRmsNorm };
enum class PositionEmbedding { kLearned, kRotary };

struct ModelConfig {
  std::string name;
  int64_t num_layers = 0;
  int64_t hidden_size = 0;
  int64_t num_heads = 0;
  int64_t num_kv_heads = 0;  // < num_heads => grouped-query attention
  int64_t head_dim = 0;
  int64_t ffn_hidden = 0;    // intermediate FFN width
  int64_t vocab_size = 0;
  int64_t max_context = 16384;
  Activation activation = Activation::kGelu;
  NormKind norm = NormKind::kLayerNorm;
  PositionEmbedding pos_embedding = PositionEmbedding::kLearned;
  bool gated_ffn = false;     // Llama-style SwiGLU (gate * up -> down)
  bool qkv_bias = true;       // OPT uses biases; Llama does not
  int num_gpus = 1;           // tensor-parallel degree used in the paper
  int bytes_per_value = 2;    // fp16 in all paper experiments

  // GQA group size: how many query heads share one KV head.
  int64_t GqaGroupSize() const { return num_heads / num_kv_heads; }

  // Bytes to store one token's K and V across all layers (whole model).
  // Matches the paper's example: OPT-13B = 2 * 40 * 5120 * 2 B = 0.78 MiB.
  int64_t KvBytesPerToken() const {
    return 2 * num_layers * num_kv_heads * head_dim * bytes_per_value;
  }

  // Per-GPU share of KvBytesPerToken under tensor parallelism (KV heads are
  // partitioned across GPUs along the feature dimension, paper §4.4.2).
  int64_t KvBytesPerTokenPerGpu() const { return KvBytesPerToken() / num_gpus; }

  // Int8-quantized KV bytes per token (one byte per K/V value; the per-block
  // amax scale is accounted separately at block granularity). What a
  // kv_quant tier stores and a quantized transfer moves.
  int64_t KvQuantBytesPerToken() const {
    return 2 * num_layers * num_kv_heads * head_dim;
  }
  int64_t KvQuantBytesPerTokenPerGpu() const {
    return KvQuantBytesPerToken() / num_gpus;
  }

  // Approximate parameter count (weights only; used by the cost model for
  // memory-bandwidth-bound decode steps).
  int64_t ApproxParamCount() const;

  // FLOPs of non-attention computation (QKV/output projections, FFN, and the
  // final vocabulary projection is excluded as per-step constant) for a
  // single token passing through all layers.
  double NonAttentionFlopsPerToken() const;

  // FLOPs of the attention score+aggregation computation for one query token
  // attending to `context_len` KV tokens, across all layers.
  double AttentionFlopsPerToken(int64_t context_len) const;
};

// Paper Table 1 presets.
ModelConfig Opt13BConfig();
ModelConfig Opt66BConfig();
ModelConfig Llama2_13BConfig();   // KV heads reduced 40 -> 10 as in the paper
ModelConfig Llama2_70BConfig();

// Tiny architectures (same structural features) for numeric validation.
ModelConfig TinyOptConfig();
ModelConfig TinyLlamaConfig();

// Looks up any preset by name ("opt-13b", "llama2-70b", "tiny-opt", ...).
// Returns true and fills *config on success.
bool ModelConfigByName(const std::string& name, ModelConfig* config);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_MODEL_MODEL_CONFIG_H_

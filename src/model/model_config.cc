#include "src/model/model_config.h"

namespace pensieve {

int64_t ModelConfig::ApproxParamCount() const {
  const int64_t h = hidden_size;
  const int64_t q_dim = num_heads * head_dim;
  const int64_t kv_dim = num_kv_heads * head_dim;
  // Attention: Wq [h, q_dim], Wk/Wv [h, kv_dim], Wo [q_dim, h].
  int64_t attn = h * q_dim + 2 * h * kv_dim + q_dim * h;
  // FFN: gated uses three matrices, plain uses two.
  int64_t ffn = gated_ffn ? 3 * h * ffn_hidden : 2 * h * ffn_hidden;
  int64_t per_layer = attn + ffn;
  // Embedding (tied with LM head).
  int64_t embed = vocab_size * h;
  return num_layers * per_layer + embed;
}

double ModelConfig::NonAttentionFlopsPerToken() const {
  const double h = static_cast<double>(hidden_size);
  const double q_dim = static_cast<double>(num_heads * head_dim);
  const double kv_dim = static_cast<double>(num_kv_heads * head_dim);
  const double f = static_cast<double>(ffn_hidden);
  // 2 FLOPs per multiply-accumulate.
  double attn_proj = 2.0 * (h * q_dim + 2.0 * h * kv_dim + q_dim * h);
  double ffn = gated_ffn ? 2.0 * 3.0 * h * f : 2.0 * 2.0 * h * f;
  return static_cast<double>(num_layers) * (attn_proj + ffn);
}

double ModelConfig::AttentionFlopsPerToken(int64_t context_len) const {
  const double q_dim = static_cast<double>(num_heads * head_dim);
  // QK^T and softmax(A)V each cost 2 * q_dim FLOPs per (query, key) pair.
  return static_cast<double>(num_layers) * 4.0 * q_dim *
         static_cast<double>(context_len);
}

ModelConfig Opt13BConfig() {
  ModelConfig c;
  c.name = "opt-13b";
  c.num_layers = 40;
  c.hidden_size = 5120;
  c.num_heads = 40;
  c.num_kv_heads = 40;
  c.head_dim = 128;
  c.ffn_hidden = 4 * 5120;
  c.vocab_size = 50272;
  c.activation = Activation::kRelu;
  c.norm = NormKind::kLayerNorm;
  c.pos_embedding = PositionEmbedding::kLearned;
  c.gated_ffn = false;
  c.qkv_bias = true;
  c.num_gpus = 1;
  return c;
}

ModelConfig Opt66BConfig() {
  ModelConfig c = Opt13BConfig();
  c.name = "opt-66b";
  c.num_layers = 64;
  c.hidden_size = 9216;
  c.num_heads = 72;
  c.num_kv_heads = 72;
  c.head_dim = 128;
  c.ffn_hidden = 4 * 9216;
  c.num_gpus = 4;
  return c;
}

ModelConfig Llama2_13BConfig() {
  ModelConfig c;
  c.name = "llama2-13b";
  c.num_layers = 40;
  c.hidden_size = 5120;
  c.num_heads = 40;
  // The paper changes Llama 2-13B KV heads from 40 to 10 to exercise GQA
  // (group size 4).
  c.num_kv_heads = 10;
  c.head_dim = 128;
  c.ffn_hidden = 13824;
  c.vocab_size = 32000;
  c.activation = Activation::kSilu;
  c.norm = NormKind::kRmsNorm;
  c.pos_embedding = PositionEmbedding::kRotary;
  c.gated_ffn = true;
  c.qkv_bias = false;
  c.num_gpus = 1;
  return c;
}

ModelConfig Llama2_70BConfig() {
  ModelConfig c = Llama2_13BConfig();
  c.name = "llama2-70b";
  c.num_layers = 80;
  c.hidden_size = 8192;
  c.num_heads = 64;
  c.num_kv_heads = 8;  // GQA group size 8
  c.head_dim = 128;
  c.ffn_hidden = 28672;
  c.num_gpus = 4;
  return c;
}

ModelConfig TinyOptConfig() {
  ModelConfig c;
  c.name = "tiny-opt";
  c.num_layers = 2;
  c.hidden_size = 64;
  c.num_heads = 4;
  c.num_kv_heads = 4;
  c.head_dim = 16;
  c.ffn_hidden = 128;
  c.vocab_size = 128;
  c.max_context = 512;
  c.activation = Activation::kRelu;
  c.norm = NormKind::kLayerNorm;
  c.pos_embedding = PositionEmbedding::kLearned;
  c.gated_ffn = false;
  c.qkv_bias = true;
  c.num_gpus = 1;
  c.bytes_per_value = 4;  // fp32 on the CPU substrate
  return c;
}

ModelConfig TinyLlamaConfig() {
  ModelConfig c;
  c.name = "tiny-llama";
  c.num_layers = 2;
  c.hidden_size = 64;
  c.num_heads = 4;
  c.num_kv_heads = 2;  // exercises GQA (group size 2)
  c.head_dim = 16;
  c.ffn_hidden = 96;
  c.vocab_size = 128;
  c.max_context = 512;
  c.activation = Activation::kSilu;
  c.norm = NormKind::kRmsNorm;
  c.pos_embedding = PositionEmbedding::kRotary;
  c.gated_ffn = true;
  c.qkv_bias = false;
  c.num_gpus = 1;
  c.bytes_per_value = 4;
  return c;
}

bool ModelConfigByName(const std::string& name, ModelConfig* config) {
  if (name == "opt-13b") {
    *config = Opt13BConfig();
  } else if (name == "opt-66b") {
    *config = Opt66BConfig();
  } else if (name == "llama2-13b") {
    *config = Llama2_13BConfig();
  } else if (name == "llama2-70b") {
    *config = Llama2_70BConfig();
  } else if (name == "tiny-opt") {
    *config = TinyOptConfig();
  } else if (name == "tiny-llama") {
    *config = TinyLlamaConfig();
  } else {
    return false;
  }
  return true;
}

}  // namespace pensieve

#include "src/model/transformer.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/tensor/ops.h"

namespace pensieve {

namespace {
constexpr float kNormEps = 1e-5f;
constexpr float kRotaryBase = 10000.0f;
}  // namespace

Transformer::Transformer(const ModelConfig& config, uint64_t seed) : config_(config) {
  const int64_t h = config.hidden_size;
  const float w_std = 1.0f / std::sqrt(static_cast<float>(h));
  uint64_t s = seed;
  auto next_seed = [&s]() { return ++s; };

  embedding_ = Tensor({config.vocab_size, h});
  FillNormal(embedding_, next_seed(), 1.0f);
  if (config.pos_embedding == PositionEmbedding::kLearned) {
    pos_embedding_ = Tensor({config.max_context, h});
    FillNormal(pos_embedding_, next_seed(), 0.1f);
  }
  final_norm_gain_ = Tensor::Full({h}, 1.0f);
  final_norm_bias_ = Tensor::Zeros({h});

  const int64_t qkv_out = (config.num_heads + 2 * config.num_kv_heads) * config.head_dim;
  layers_.reserve(static_cast<size_t>(config.num_layers));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    LayerWeights w;
    w.attn_norm_gain = Tensor::Full({h}, 1.0f);
    w.attn_norm_bias = Tensor::Zeros({h});
    w.wqkv = Tensor({qkv_out, h});
    FillNormal(w.wqkv, next_seed(), w_std);
    w.bqkv = Tensor::Zeros({qkv_out});
    if (config.qkv_bias) {
      FillNormal(w.bqkv, next_seed(), 0.01f);
    }
    w.wo = Tensor({h, config.num_heads * config.head_dim});
    FillNormal(w.wo, next_seed(), w_std);
    w.bo = Tensor::Zeros({h});
    w.ffn_norm_gain = Tensor::Full({h}, 1.0f);
    w.ffn_norm_bias = Tensor::Zeros({h});
    w.w_up = Tensor({config.ffn_hidden, h});
    FillNormal(w.w_up, next_seed(), w_std);
    w.b_up = Tensor::Zeros({config.ffn_hidden});
    if (config.gated_ffn) {
      w.w_gate = Tensor({config.ffn_hidden, h});
      FillNormal(w.w_gate, next_seed(), w_std);
    }
    w.w_down = Tensor({h, config.ffn_hidden});
    FillNormal(w.w_down, next_seed(), 1.0f / std::sqrt(static_cast<float>(config.ffn_hidden)));
    w.b_down = Tensor::Zeros({h});
    layers_.push_back(std::move(w));
  }
}

Tensor Transformer::Normalize(const Tensor& x, const Tensor& gain,
                              const Tensor& bias) const {
  if (config_.norm == NormKind::kRmsNorm) {
    return RmsNorm(x, gain, kNormEps);
  }
  return LayerNorm(x, gain, bias, kNormEps);
}

Tensor Transformer::Forward(KvPool* pool, const ForwardBatch& batch) const {
  PENSIEVE_CHECK(pool != nullptr);
  const int64_t num_tokens = static_cast<int64_t>(batch.tokens.size());
  PENSIEVE_CHECK_GT(num_tokens, 0);
  PENSIEVE_CHECK_EQ(batch.positions.size(), batch.tokens.size());
  PENSIEVE_CHECK_EQ(batch.kv_slots.size(), batch.tokens.size());
  const int64_t h = config_.hidden_size;
  const int64_t head_dim = config_.head_dim;
  const int64_t num_heads = config_.num_heads;
  const int64_t num_kv_heads = config_.num_kv_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  // Token (+ learned position) embeddings. Validate serially (CHECK failures
  // must not fire on a pool worker), then gather rows in parallel.
  for (int64_t t = 0; t < num_tokens; ++t) {
    const int32_t tok = batch.tokens[static_cast<size_t>(t)];
    PENSIEVE_CHECK_GE(tok, 0);
    PENSIEVE_CHECK_LT(tok, config_.vocab_size);
    if (config_.pos_embedding == PositionEmbedding::kLearned) {
      PENSIEVE_CHECK_LT(batch.positions[static_cast<size_t>(t)], config_.max_context);
    }
  }
  Tensor x({num_tokens, h});
  ParallelFor(
      0, num_tokens,
      [&](int64_t token_begin, int64_t token_end) {
        for (int64_t t = token_begin; t < token_end; ++t) {
          const int32_t tok = batch.tokens[static_cast<size_t>(t)];
          const float* src = embedding_.data() + static_cast<int64_t>(tok) * h;
          std::copy(src, src + h, x.data() + t * h);
          if (config_.pos_embedding == PositionEmbedding::kLearned) {
            const int64_t pos = batch.positions[static_cast<size_t>(t)];
            const float* pe = pos_embedding_.data() + pos * h;
            float* row = x.data() + t * h;
            for (int64_t j = 0; j < h; ++j) {
              row[j] += pe[j];
            }
          }
        }
      },
      GrainForItemCost(h));

  for (int64_t l = 0; l < config_.num_layers; ++l) {
    const LayerWeights& w = layers_[static_cast<size_t>(l)];
    // --- Attention block (pre-norm residual) ---
    Tensor normed = Normalize(x, w.attn_norm_gain, w.attn_norm_bias);
    Tensor qkv = MatMulTransposedB(normed, w.wqkv);
    if (config_.qkv_bias) {
      AddBiasInPlace(qkv, w.bqkv);
    }
    // Split into Q [T, H, D] and K/V [T, KVH, D].
    Tensor q({num_tokens, num_heads, head_dim});
    Tensor k({num_tokens, num_kv_heads, head_dim});
    Tensor v({num_tokens, num_kv_heads, head_dim});
    const int64_t q_width = num_heads * head_dim;
    const int64_t kv_width = num_kv_heads * head_dim;
    const int64_t qkv_width = q_width + 2 * kv_width;
    ParallelFor(
        0, num_tokens,
        [&](int64_t token_begin, int64_t token_end) {
          for (int64_t t = token_begin; t < token_end; ++t) {
            const float* row = qkv.data() + t * qkv_width;
            std::copy(row, row + q_width, q.data() + t * q_width);
            std::copy(row + q_width, row + q_width + kv_width, k.data() + t * kv_width);
            std::copy(row + q_width + kv_width, row + qkv_width, v.data() + t * kv_width);
          }
        },
        GrainForItemCost(qkv_width));
    if (config_.pos_embedding == PositionEmbedding::kRotary) {
      ApplyRotaryInPlace(q, batch.positions, kRotaryBase);
      ApplyRotaryInPlace(k, batch.positions, kRotaryBase);
    }
    // Write K/V to the paged cache, then attend (paper Fig 8, steps c-d).
    for (int64_t t = 0; t < num_tokens; ++t) {
      const ForwardBatch::KvSlot& slot = batch.kv_slots[static_cast<size_t>(t)];
      pool->WriteToken(slot.block, l, slot.slot, k.data() + t * kv_width,
                       v.data() + t * kv_width);
    }
    Tensor attn_out({num_tokens, num_heads, head_dim});
    MultiTokenPagedAttention(*pool, l, q, batch.subs, scale, &attn_out);
    Tensor attn_flat = attn_out.Reshaped({num_tokens, q_width});
    Tensor proj = MatMulTransposedB(attn_flat, w.wo);
    AddBiasInPlace(proj, w.bo);
    AddInPlace(x, proj);

    // --- FFN block (pre-norm residual) ---
    Tensor ffn_in = Normalize(x, w.ffn_norm_gain, w.ffn_norm_bias);
    Tensor up = MatMulTransposedB(ffn_in, w.w_up);
    AddBiasInPlace(up, w.b_up);
    if (config_.gated_ffn) {
      Tensor gate = MatMulTransposedB(ffn_in, w.w_gate);
      switch (config_.activation) {
        case Activation::kSilu:
          SiluInPlace(gate);
          break;
        case Activation::kGelu:
          GeluInPlace(gate);
          break;
        case Activation::kRelu:
          ReluInPlace(gate);
          break;
      }
      MulInPlace(up, gate);
    } else {
      switch (config_.activation) {
        case Activation::kSilu:
          SiluInPlace(up);
          break;
        case Activation::kGelu:
          GeluInPlace(up);
          break;
        case Activation::kRelu:
          ReluInPlace(up);
          break;
      }
    }
    Tensor down = MatMulTransposedB(up, w.w_down);
    AddBiasInPlace(down, w.b_down);
    AddInPlace(x, down);
  }

  // Final norm + tied LM head on the requested rows only.
  Tensor selected({static_cast<int64_t>(batch.logit_rows.size()), h});
  for (size_t i = 0; i < batch.logit_rows.size(); ++i) {
    const int64_t row = batch.logit_rows[i];
    PENSIEVE_CHECK_GE(row, 0);
    PENSIEVE_CHECK_LT(row, num_tokens);
    std::copy(x.data() + row * h, x.data() + (row + 1) * h,
              selected.data() + static_cast<int64_t>(i) * h);
  }
  Tensor normed = Normalize(selected, final_norm_gain_, final_norm_bias_);
  return MatMulTransposedB(normed, embedding_);
}

int32_t Transformer::Greedy(const Tensor& logits, int64_t row) {
  PENSIEVE_CHECK_EQ(logits.rank(), 2u);
  PENSIEVE_CHECK_LT(row, logits.dim(0));
  const int64_t vocab = logits.dim(1);
  const float* p = logits.data() + row * vocab;
  int64_t best = 0;
  for (int64_t i = 1; i < vocab; ++i) {
    if (p[i] > p[best]) {
      best = i;
    }
  }
  return static_cast<int32_t>(best);
}

}  // namespace pensieve

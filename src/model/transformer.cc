#include "src/model/transformer.h"

#include <cmath>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/tensor/ops.h"

namespace pensieve {

namespace {
constexpr float kNormEps = 1e-5f;
constexpr float kRotaryBase = 10000.0f;
}  // namespace

Transformer::Transformer(const ModelConfig& config, uint64_t seed,
                         QuantMode weight_quant)
    : config_(config), weight_quant_(weight_quant) {
  const int64_t h = config.hidden_size;
  const float w_std = 1.0f / std::sqrt(static_cast<float>(h));
  uint64_t s = seed;
  auto next_seed = [&s]() { return ++s; };

  embedding_ = Tensor({config.vocab_size, h});
  FillNormal(embedding_, next_seed(), 1.0f);
  if (config.pos_embedding == PositionEmbedding::kLearned) {
    pos_embedding_ = Tensor({config.max_context, h});
    FillNormal(pos_embedding_, next_seed(), 0.1f);
  }
  final_norm_gain_ = Tensor::Full({h}, 1.0f);
  final_norm_bias_ = Tensor::Zeros({h});

  const int64_t qkv_out = (config.num_heads + 2 * config.num_kv_heads) * config.head_dim;
  layers_.reserve(static_cast<size_t>(config.num_layers));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    LayerWeights w;
    w.attn_norm_gain = Tensor::Full({h}, 1.0f);
    w.attn_norm_bias = Tensor::Zeros({h});
    w.wqkv = Tensor({qkv_out, h});
    FillNormal(w.wqkv, next_seed(), w_std);
    w.bqkv = Tensor::Zeros({qkv_out});
    if (config.qkv_bias) {
      FillNormal(w.bqkv, next_seed(), 0.01f);
    }
    w.wo = Tensor({h, config.num_heads * config.head_dim});
    FillNormal(w.wo, next_seed(), w_std);
    w.bo = Tensor::Zeros({h});
    w.ffn_norm_gain = Tensor::Full({h}, 1.0f);
    w.ffn_norm_bias = Tensor::Zeros({h});
    w.w_up = Tensor({config.ffn_hidden, h});
    FillNormal(w.w_up, next_seed(), w_std);
    w.b_up = Tensor::Zeros({config.ffn_hidden});
    if (config.gated_ffn) {
      w.w_gate = Tensor({config.ffn_hidden, h});
      FillNormal(w.w_gate, next_seed(), w_std);
    }
    w.w_down = Tensor({h, config.ffn_hidden});
    FillNormal(w.w_down, next_seed(), 1.0f / std::sqrt(static_cast<float>(config.ffn_hidden)));
    w.b_down = Tensor::Zeros({h});
    // Repack the static projections once; Forward multiplies only against
    // the packed forms. weight_quant selects the payload type for every
    // projection including the tied LM head.
    w.wqkv_packed = PackedMatrix(w.wqkv, weight_quant);
    w.wo_packed = PackedMatrix(w.wo, weight_quant);
    w.w_up_packed = PackedMatrix(w.w_up, weight_quant);
    if (config.gated_ffn) {
      w.w_gate_packed = PackedMatrix(w.w_gate, weight_quant);
    }
    w.w_down_packed = PackedMatrix(w.w_down, weight_quant);
    layers_.push_back(std::move(w));
  }
  lm_head_packed_ = PackedMatrix(embedding_, weight_quant);
}

void Transformer::NormalizeInto(const Tensor& x, const Tensor& gain,
                                const Tensor& bias, Tensor* out) const {
  if (config_.norm == NormKind::kRmsNorm) {
    RmsNormInto(x, gain, kNormEps, out);
  } else {
    LayerNormInto(x, gain, bias, kNormEps, out);
  }
}

void Transformer::ForwardInto(KvPool* pool, const ForwardBatch& batch,
                              Tensor* logits) const {
  PENSIEVE_CHECK(pool != nullptr);
  PENSIEVE_CHECK(logits != nullptr);
  const int64_t num_tokens = static_cast<int64_t>(batch.tokens.size());
  PENSIEVE_CHECK_GT(num_tokens, 0);
  PENSIEVE_CHECK_EQ(batch.positions.size(), batch.tokens.size());
  PENSIEVE_CHECK_EQ(batch.kv_slots.size(), batch.tokens.size());
  const int64_t h = config_.hidden_size;
  const int64_t head_dim = config_.head_dim;
  const int64_t num_heads = config_.num_heads;
  const int64_t num_kv_heads = config_.num_kv_heads;
  const int64_t q_width = num_heads * head_dim;
  const int64_t kv_width = num_kv_heads * head_dim;
  const int64_t qkv_width = q_width + 2 * kv_width;
  const int64_t num_logit_rows = static_cast<int64_t>(batch.logit_rows.size());
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  // Validate everything serially up front (CHECK failures must not fire on a
  // pool worker, and nothing below may allocate on the steady-state path).
  for (int64_t t = 0; t < num_tokens; ++t) {
    const int32_t tok = batch.tokens[static_cast<size_t>(t)];
    PENSIEVE_CHECK_GE(tok, 0);
    PENSIEVE_CHECK_LT(tok, config_.vocab_size);
    if (config_.pos_embedding == PositionEmbedding::kLearned) {
      PENSIEVE_CHECK_LT(batch.positions[static_cast<size_t>(t)], config_.max_context);
    }
  }
  for (int64_t row : batch.logit_rows) {
    PENSIEVE_CHECK_GE(row, 0);
    PENSIEVE_CHECK_LT(row, num_tokens);
  }

  // All intermediates are borrowed from the arena, hoisted out of the layer
  // loop and reused across layers. After the first pass at a given batch
  // size the arena never grows, so the pass is allocation-free.
  workspace_.Reset();
  Tensor x = workspace_.Alloc({num_tokens, h});
  Tensor normed = workspace_.Alloc({num_tokens, h});  // attn + ffn pre-norms
  Tensor qkv = workspace_.Alloc({num_tokens, qkv_width});
  Tensor q = workspace_.Alloc({num_tokens, num_heads, head_dim});
  Tensor k = workspace_.Alloc({num_tokens, num_kv_heads, head_dim});
  Tensor v = workspace_.Alloc({num_tokens, num_kv_heads, head_dim});
  Tensor attn_out = workspace_.Alloc({num_tokens, num_heads, head_dim});
  Tensor proj = workspace_.Alloc({num_tokens, h});  // attn proj + ffn down
  Tensor up = workspace_.Alloc({num_tokens, config_.ffn_hidden});
  Tensor gate;
  if (config_.gated_ffn) {
    gate = workspace_.Alloc({num_tokens, config_.ffn_hidden});
  }
  Tensor selected = workspace_.Alloc({num_logit_rows, h});
  Tensor selected_normed = workspace_.Alloc({num_logit_rows, h});

  // Token (+ learned position) embeddings: gather rows in parallel.
  ParallelFor(
      0, num_tokens,
      [&](int64_t token_begin, int64_t token_end) {
        for (int64_t t = token_begin; t < token_end; ++t) {
          const int32_t tok = batch.tokens[static_cast<size_t>(t)];
          const float* src = embedding_.data() + static_cast<int64_t>(tok) * h;
          std::copy(src, src + h, x.data() + t * h);
          if (config_.pos_embedding == PositionEmbedding::kLearned) {
            const int64_t pos = batch.positions[static_cast<size_t>(t)];
            const float* pe = pos_embedding_.data() + pos * h;
            float* row = x.data() + t * h;
            for (int64_t j = 0; j < h; ++j) {
              row[j] += pe[j];
            }
          }
        }
      },
      GrainForItemCost(h));

  for (int64_t l = 0; l < config_.num_layers; ++l) {
    const LayerWeights& w = layers_[static_cast<size_t>(l)];
    // --- Attention block (pre-norm residual) ---
    NormalizeInto(x, w.attn_norm_gain, w.attn_norm_bias, &normed);
    MatMulPackedInto(normed, w.wqkv_packed, &qkv);
    if (config_.qkv_bias) {
      AddBiasInPlace(qkv, w.bqkv);
    }
    // Split into Q [T, H, D] and K/V [T, KVH, D].
    ParallelFor(
        0, num_tokens,
        [&](int64_t token_begin, int64_t token_end) {
          for (int64_t t = token_begin; t < token_end; ++t) {
            const float* row = qkv.data() + t * qkv_width;
            std::copy(row, row + q_width, q.data() + t * q_width);
            std::copy(row + q_width, row + q_width + kv_width, k.data() + t * kv_width);
            std::copy(row + q_width + kv_width, row + qkv_width, v.data() + t * kv_width);
          }
        },
        GrainForItemCost(qkv_width));
    if (config_.pos_embedding == PositionEmbedding::kRotary) {
      ApplyRotaryInPlace(q, batch.positions, kRotaryBase);
      ApplyRotaryInPlace(k, batch.positions, kRotaryBase);
    }
    // Write K/V to the paged cache, then attend (paper Fig 8, steps c-d).
    for (int64_t t = 0; t < num_tokens; ++t) {
      const ForwardBatch::KvSlot& slot = batch.kv_slots[static_cast<size_t>(t)];
      pool->WriteToken(slot.block, l, slot.slot, k.data() + t * kv_width,
                       v.data() + t * kv_width);
    }
    // Rows not addressed by any sub-request must still read as zeros (the
    // arena hands back dirty memory; the owned-tensor version was zeroed).
    std::memset(attn_out.data(), 0,
                static_cast<size_t>(attn_out.numel()) * sizeof(float));
    MultiTokenPagedAttention(*pool, l, q, batch.subs, scale, &attn_out,
                             &workspace_);
    Tensor attn_flat = attn_out.Reshaped({num_tokens, q_width});  // free alias
    MatMulPackedInto(attn_flat, w.wo_packed, &proj);
    AddBiasInPlace(proj, w.bo);
    AddInPlace(x, proj);

    // --- FFN block (pre-norm residual) ---
    NormalizeInto(x, w.ffn_norm_gain, w.ffn_norm_bias, &normed);
    MatMulPackedInto(normed, w.w_up_packed, &up);
    AddBiasInPlace(up, w.b_up);
    if (config_.gated_ffn) {
      MatMulPackedInto(normed, w.w_gate_packed, &gate);
      switch (config_.activation) {
        case Activation::kSilu:
          SiluInPlace(gate);
          break;
        case Activation::kGelu:
          GeluInPlace(gate);
          break;
        case Activation::kRelu:
          ReluInPlace(gate);
          break;
      }
      MulInPlace(up, gate);
    } else {
      switch (config_.activation) {
        case Activation::kSilu:
          SiluInPlace(up);
          break;
        case Activation::kGelu:
          GeluInPlace(up);
          break;
        case Activation::kRelu:
          ReluInPlace(up);
          break;
      }
    }
    MatMulPackedInto(up, w.w_down_packed, &proj);
    AddBiasInPlace(proj, w.b_down);
    AddInPlace(x, proj);
  }

  // Final norm + tied LM head on the requested rows only.
  for (size_t i = 0; i < batch.logit_rows.size(); ++i) {
    const int64_t row = batch.logit_rows[i];
    std::copy(x.data() + row * h, x.data() + (row + 1) * h,
              selected.data() + static_cast<int64_t>(i) * h);
  }
  NormalizeInto(selected, final_norm_gain_, final_norm_bias_, &selected_normed);
  const Shape logits_shape{num_logit_rows, config_.vocab_size};
  if (logits->shape() != logits_shape) {
    *logits = Tensor(logits_shape);
  }
  MatMulPackedInto(selected_normed, lm_head_packed_, logits);
}

Tensor Transformer::Forward(KvPool* pool, const ForwardBatch& batch) const {
  Tensor logits;
  ForwardInto(pool, batch, &logits);
  return logits;
}

int32_t Transformer::Greedy(const Tensor& logits, int64_t row) {
  PENSIEVE_CHECK_EQ(logits.rank(), 2u);
  PENSIEVE_CHECK_LT(row, logits.dim(0));
  const int64_t vocab = logits.dim(1);
  const float* p = logits.data() + row * vocab;
  int64_t best = 0;
  for (int64_t i = 1; i < vocab; ++i) {
    if (p[i] > p[best]) {
      best = i;
    }
  }
  return static_cast<int32_t>(best);
}

}  // namespace pensieve

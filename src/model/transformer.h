// Reference transformer executing over the paged KV pool (numeric mode).
//
// This plays the role PyTorch's C++ frontend plays in the paper's
// implementation: it runs the non-attention operators (projections, norms,
// FFN, embeddings) and calls into Pensieve's multi-token paged attention
// kernel for the attention step, writing K/V to the cache first (paper
// Figure 8 steps b-d). Weights are randomly initialized — serving-system
// behaviour is independent of weight values — and deterministic in the seed,
// so stateful and stateless execution can be compared token for token.
//
// Performance structure. Every projection matrix is repacked once at
// construction into the panel layout the cache-blocked GEMM consumes
// (src/tensor/packed_matrix.h). All intermediate activations live in a
// per-model Workspace arena (src/tensor/workspace.h) that is rewound — not
// freed — at the top of each pass, so a warmed-up ForwardInto performs zero
// heap allocations; tests/workspace_test.cc pins that with an
// operator-new counting hook.

#ifndef PENSIEVE_SRC_MODEL_TRANSFORMER_H_
#define PENSIEVE_SRC_MODEL_TRANSFORMER_H_

#include <cstdint>
#include <vector>

#include "src/kernels/attention.h"
#include "src/kvcache/kv_pool.h"
#include "src/model/model_config.h"
#include "src/tensor/packed_matrix.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"

namespace pensieve {

// One unified batch (prefill and generation tokens mixed, paper §4.2):
// tokens from all requests are concatenated; attention sub-requests address
// rows of that concatenation.
struct ForwardBatch {
  // Input token ids, all requests concatenated.
  std::vector<int32_t> tokens;
  // Absolute position of each token in its conversation context.
  std::vector<int64_t> positions;
  // Where each token's K/V is written in the GPU pool (same order).
  struct KvSlot {
    BlockId block;
    int64_t slot;
  };
  std::vector<KvSlot> kv_slots;
  // Attention work items; query_start indexes rows of `tokens`. Block tables
  // referenced here must outlive the Forward call.
  std::vector<AttentionSubRequest> subs;
  // Rows whose logits the caller wants (one per generating request).
  std::vector<int64_t> logit_rows;
};

class Transformer {
 public:
  // weight_quant selects the packed-weight payload for every projection
  // (QuantMode::kInt8 = per-column symmetric int8, fp32 accumulation); the
  // raw fp32 tensors and every non-GEMM operator are unaffected.
  Transformer(const ModelConfig& config, uint64_t seed,
              QuantMode weight_quant = QuantMode::kFp32);

  const ModelConfig& config() const { return config_; }
  QuantMode weight_quant() const { return weight_quant_; }

  // Runs the batch, updating the pool, and writes logits
  // [logit_rows.size(), vocab_size] into *logits. If *logits already has
  // that shape its buffer is reused (the steady-state decode path: no
  // allocation at all); otherwise it is replaced with a freshly allocated
  // tensor. Intermediate activations come from the internal workspace, so
  // the call is NOT reentrant: one Forward/ForwardInto at a time per model
  // instance.
  void ForwardInto(KvPool* pool, const ForwardBatch& batch, Tensor* logits) const;

  // Allocating convenience wrapper around ForwardInto. The returned tensor
  // owns its buffer (it never aliases the workspace).
  Tensor Forward(KvPool* pool, const ForwardBatch& batch) const;

  // Argmax over one logits row.
  static int32_t Greedy(const Tensor& logits, int64_t row);

  // Test hook: the activation arena, for asserting reuse across passes.
  const Workspace& workspace() const { return workspace_; }

 private:
  struct LayerWeights {
    Tensor attn_norm_gain;
    Tensor attn_norm_bias;
    Tensor wqkv;  // [(num_heads + 2 * num_kv_heads) * head_dim, hidden]
    Tensor bqkv;
    Tensor wo;  // [hidden, num_heads * head_dim]
    Tensor bo;
    Tensor ffn_norm_gain;
    Tensor ffn_norm_bias;
    Tensor w_up;    // [ffn_hidden, hidden]
    Tensor b_up;    // [ffn_hidden]
    Tensor w_gate;  // gated FFN only
    Tensor w_down;  // [hidden, ffn_hidden]
    Tensor b_down;  // [hidden]
    // Panel-packed copies of the projection matrices, built once in the
    // constructor; the forward pass only ever multiplies against these.
    PackedMatrix wqkv_packed;
    PackedMatrix wo_packed;
    PackedMatrix w_up_packed;
    PackedMatrix w_gate_packed;  // gated FFN only
    PackedMatrix w_down_packed;
  };

  void NormalizeInto(const Tensor& x, const Tensor& gain, const Tensor& bias,
                     Tensor* out) const;

  ModelConfig config_;
  QuantMode weight_quant_ = QuantMode::kFp32;
  Tensor embedding_;      // [vocab, hidden]; tied LM head
  Tensor pos_embedding_;  // [max_context, hidden] for learned positions
  Tensor final_norm_gain_;
  Tensor final_norm_bias_;
  std::vector<LayerWeights> layers_;
  PackedMatrix lm_head_packed_;  // packed embedding_ (tied LM head)
  // Activation arena, rewound per pass. Mutable: arena reuse is invisible in
  // the numeric results, so Forward stays logically const.
  mutable Workspace workspace_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_MODEL_TRANSFORMER_H_

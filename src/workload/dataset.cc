#include "src/workload/dataset.h"

#include <algorithm>
#include <cmath>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace pensieve {

DatasetProfile ShareGptProfile() {
  DatasetProfile p;
  p.name = "sharegpt";
  p.mean_turns = 5.56;
  p.mean_input_len = 37.77;
  p.input_len_cv = 1.5;
  p.mean_output_len = 204.58;
  p.output_len_cv = 0.9;
  return p;
}

DatasetProfile UltraChatProfile() {
  DatasetProfile p;
  p.name = "ultrachat";
  p.mean_turns = 3.86;
  p.mean_input_len = 51.78;
  p.input_len_cv = 1.2;
  p.mean_output_len = 257.81;
  p.output_len_cv = 0.7;
  return p;
}

int64_t ConversationSpec::HistoryLenBeforeTurn(int64_t t) const {
  PENSIEVE_CHECK_LE(t, static_cast<int64_t>(turns.size()));
  int64_t total = 0;
  for (int64_t i = 0; i < t; ++i) {
    total += turns[static_cast<size_t>(i)].input_len +
             turns[static_cast<size_t>(i)].output_len;
  }
  return total;
}

int64_t ConversationSpec::TotalTokens() const {
  return HistoryLenBeforeTurn(static_cast<int64_t>(turns.size()));
}

ConversationGenerator::ConversationGenerator(DatasetProfile profile, uint64_t seed)
    : profile_(std::move(profile)), rng_(seed) {}

ConversationSpec ConversationGenerator::Next() {
  ConversationSpec spec;
  spec.conversation_id = next_id_++;
  const int64_t num_turns = rng_.GeometricAtLeastOne(1.0 / profile_.mean_turns);
  int64_t context = 0;
  for (int64_t t = 0; t < num_turns; ++t) {
    TurnSpec turn;
    turn.input_len = std::max<int64_t>(
        profile_.min_len,
        static_cast<int64_t>(std::llround(rng_.LogNormalWithMean(
            profile_.mean_input_len, profile_.mean_input_len * profile_.input_len_cv))));
    turn.output_len = std::max<int64_t>(
        profile_.min_len,
        static_cast<int64_t>(std::llround(rng_.LogNormalWithMean(
            profile_.mean_output_len,
            profile_.mean_output_len * profile_.output_len_cv))));
    // Context cap: truncate the conversation instead of exceeding the
    // maximum context size.
    if (context + turn.input_len + turn.output_len > profile_.max_context) {
      break;
    }
    context += turn.input_len + turn.output_len;
    spec.turns.push_back(turn);
  }
  if (spec.turns.empty()) {
    // An oversized first turn: clamp it so that every conversation has at
    // least one feasible turn.
    TurnSpec turn;
    turn.input_len = std::min<int64_t>(static_cast<int64_t>(profile_.mean_input_len) + 1,
                                       profile_.max_context / 2);
    turn.output_len = std::min<int64_t>(
        static_cast<int64_t>(profile_.mean_output_len) + 1, profile_.max_context / 2);
    spec.turns.push_back(turn);
  }
  return spec;
}

int32_t SyntheticToken(int64_t conversation_id, int64_t position, int32_t vocab_size) {
  PENSIEVE_CHECK_GT(vocab_size, 0);
  // SplitMix64-style mix of (conversation, position) for a deterministic,
  // well-spread token id.
  uint64_t z = static_cast<uint64_t>(conversation_id) * 0x9E3779B97F4A7C15ULL +
               static_cast<uint64_t>(position) + 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return static_cast<int32_t>(z % static_cast<uint64_t>(vocab_size));
}

int32_t TemplatePrefixToken(int32_t template_id, int64_t position,
                            int32_t vocab_size) {
  PENSIEVE_CHECK_GE(template_id, 0);
  PENSIEVE_CHECK_GT(vocab_size, 0);
  return static_cast<int32_t>(TemplatePrefixMix(template_id, position) %
                              static_cast<uint64_t>(vocab_size));
}

}  // namespace pensieve

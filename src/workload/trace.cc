#include "src/workload/trace.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

WorkloadTrace::WorkloadTrace(const DatasetProfile& profile, const TraceOptions& options)
    : profile_(profile), options_(options) {
  PENSIEVE_CHECK_GT(options.conversation_rate, 0.0);
  Rng rng(options.seed);
  ConversationGenerator generator(profile, rng.Fork().engine()());
  std::vector<ConversationSpec> specs;
  specs.reserve(static_cast<size_t>(options.num_conversations));
  for (int64_t i = 0; i < options.num_conversations; ++i) {
    specs.push_back(generator.Next());
  }
  BuildTimeline(std::move(specs), &rng);
}

WorkloadTrace::WorkloadTrace(std::vector<ConversationSpec> conversations,
                             const DatasetProfile& profile,
                             const TraceOptions& options)
    : profile_(profile), options_(options) {
  PENSIEVE_CHECK_GT(options.conversation_rate, 0.0);
  if (options.num_conversations > 0 &&
      options.num_conversations < static_cast<int64_t>(conversations.size())) {
    conversations.resize(static_cast<size_t>(options.num_conversations));
  }
  Rng rng(options.seed);
  (void)rng.Fork();  // keep the arrival stream aligned with the other ctor
  BuildTimeline(std::move(conversations), &rng);
}

void WorkloadTrace::ValidateDenseConversationIds() const {
  // The experiment core (ArrivalProcess) indexes conversations() by
  // conversation id without bounds checks, so the "id doubles as a dense
  // index" invariant is enforced once here, at load, instead of being
  // re-checked by every driver's finish handler.
  for (size_t i = 0; i < conversations_.size(); ++i) {
    PENSIEVE_CHECK_EQ(conversations_[i].spec.conversation_id,
                      static_cast<int64_t>(i));
  }
}

void WorkloadTrace::BuildTimeline(std::vector<ConversationSpec> specs, Rng* rng) {
  double arrival = 0.0;
  conversations_.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    TraceConversation conv;
    conv.spec = std::move(specs[i]);
    // The driver uses conversation ids as dense indices into the trace.
    conv.spec.conversation_id = static_cast<int64_t>(i);
    // Template assignment is a pure function of the dense id — no RNG draws,
    // so the sampled bodies/arrivals/think-times are identical with and
    // without templates. Conversations the prepended prefix would push past
    // the context cap stay template-free.
    if (options_.num_prefix_templates > 0 && options_.prefix_len > 0 &&
        !conv.spec.turns.empty() &&
        conv.spec.TotalTokens() + options_.prefix_len <= profile_.max_context) {
      conv.spec.template_id =
          static_cast<int32_t>(conv.spec.conversation_id %
                               options_.num_prefix_templates);
      conv.spec.template_prefix_len = options_.prefix_len;
      conv.spec.turns.front().input_len += options_.prefix_len;
    }
    // Poisson process: exponential inter-arrival gaps.
    arrival += rng->Exponential(1.0 / options_.conversation_rate);
    conv.first_arrival = arrival;
    const int64_t turns = static_cast<int64_t>(conv.spec.turns.size());
    conv.think_times.reserve(static_cast<size_t>(std::max<int64_t>(0, turns - 1)));
    for (int64_t t = 0; t + 1 < turns; ++t) {
      conv.think_times.push_back(rng->Exponential(options_.mean_think_time));
    }
    conversations_.push_back(std::move(conv));
  }
  ValidateDenseConversationIds();
}

int64_t WorkloadTrace::TotalRequests() const {
  int64_t total = 0;
  for (const TraceConversation& conv : conversations_) {
    total += static_cast<int64_t>(conv.spec.turns.size());
  }
  return total;
}

void WorkloadTrace::WarpFirstArrivals(
    const std::function<double(double)>& warp) {
  double prev_old = -1.0;
  double prev_new = -1.0;
  for (TraceConversation& conv : conversations_) {
    const double warped = warp(conv.first_arrival);
    PENSIEVE_CHECK_GE(warped, 0.0);
    // Arrivals are generated in nondecreasing order; the warp must keep
    // them that way or the drivers' event interleaving loses determinism.
    if (prev_old >= 0.0 && conv.first_arrival >= prev_old) {
      PENSIEVE_CHECK_GE(warped, prev_new);
    }
    prev_old = conv.first_arrival;
    prev_new = warped;
    conv.first_arrival = warped;
  }
}

}  // namespace pensieve

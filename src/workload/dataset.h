// Multi-turn conversation workload synthesis.
//
// The paper's datasets (ShareGPT, UltraChat) are characterized by the Table
// 2 statistics: conversations per dataset, mean turns per conversation, and
// mean request input/output token lengths. We synthesize conversations whose
// distributions match those statistics: turn counts are geometric (at least
// one turn), lengths are log-normal (heavily right-skewed, like real chat
// data), and conversations exceeding the 16,384-token context cap are
// truncated — the paper likewise dropped the 0.57% of ShareGPT conversations
// exceeding the cap.

#ifndef PENSIEVE_SRC_WORKLOAD_DATASET_H_
#define PENSIEVE_SRC_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace pensieve {

struct DatasetProfile {
  std::string name;
  double mean_turns = 1.0;
  double mean_input_len = 1.0;
  // Log-normal shape: stddev as a multiple of the mean.
  double input_len_cv = 1.5;  // coefficient of variation
  double mean_output_len = 1.0;
  double output_len_cv = 0.9;
  int64_t max_context = 16384;
  int64_t min_len = 1;
};

// ShareGPT (Table 2): 5.56 turns, input 37.77, output 204.58.
DatasetProfile ShareGptProfile();
// UltraChat (Table 2): 3.86 turns, input 51.78, output 257.81.
DatasetProfile UltraChatProfile();

struct TurnSpec {
  int64_t input_len = 0;
  int64_t output_len = 0;
};

struct ConversationSpec {
  int64_t conversation_id = 0;
  // Shared-prefix template: when >= 0, the conversation opens with
  // `template_prefix_len` tokens of template `template_id`'s deterministic
  // token stream (TemplatePrefixToken), prepended to the first turn's prompt
  // (turns[0].input_len includes them). Conversations sharing a template id
  // share that prefix token-for-token.
  int32_t template_id = -1;
  int64_t template_prefix_len = 0;
  std::vector<TurnSpec> turns;

  // Total raw tokens (inputs + outputs) accumulated before turn t starts.
  int64_t HistoryLenBeforeTurn(int64_t t) const;
  // Total tokens if the whole conversation runs.
  int64_t TotalTokens() const;
};

class ConversationGenerator {
 public:
  ConversationGenerator(DatasetProfile profile, uint64_t seed);

  ConversationSpec Next();

  const DatasetProfile& profile() const { return profile_; }

 private:
  DatasetProfile profile_;
  Rng rng_;
  int64_t next_id_ = 0;
};

// Deterministic synthetic token id for (conversation, absolute position):
// plays the role of the persistent raw-text history store — any component
// can rematerialize a conversation's raw tokens at any time, which is how
// dropped-context recomputation fetches its inputs (paper §4.3.4).
int32_t SyntheticToken(int64_t conversation_id, int64_t position, int32_t vocab_size);

// Deterministic token id for position `position` of shared-prefix template
// `template_id`: identical across every conversation carrying that template,
// and salted differently from SyntheticToken so templates never collide with
// conversation bodies.
int32_t TemplatePrefixToken(int32_t template_id, int64_t position, int32_t vocab_size);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_WORKLOAD_DATASET_H_

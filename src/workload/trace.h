// Arrival-process construction for serving experiments.
//
// Conversations arrive as a Poisson process. Within a conversation, turn
// t+1 only arrives after turn t's response completes plus an exponentially
// distributed user "think time" (paper §6.1). Because follow-up arrival
// times depend on the serving system's own completions, the trace
// pre-samples everything that can be pre-sampled (conversation contents,
// first arrivals, think times) and the driver resolves follow-up arrivals
// online.

#ifndef PENSIEVE_SRC_WORKLOAD_TRACE_H_
#define PENSIEVE_SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/workload/dataset.h"

namespace pensieve {

struct TraceConversation {
  ConversationSpec spec;
  double first_arrival = 0.0;
  // think_times[t] = delay between turn t's completion and turn t+1's
  // arrival (size = turns - 1).
  std::vector<double> think_times;
};

struct TraceOptions {
  int64_t num_conversations = 200;
  // New-conversation arrival rate (conversations/second). The overall
  // request rate is approximately this times the dataset's mean turns.
  double conversation_rate = 1.0;
  // Mean user think time, seconds (60 in most paper experiments).
  double mean_think_time = 60.0;
  uint64_t seed = 42;
  // Shared-prefix templates: with both knobs positive, conversation i opens
  // with `prefix_len` tokens of template (i % num_prefix_templates) prepended
  // to its first prompt — the "N system prompts shared across M
  // conversations" pattern that shared-prefix dedup exploits. Assignment is
  // deterministic and draws nothing from the RNG, so enabling templates
  // never perturbs the sampled conversation bodies, arrivals, or think
  // times. Zero (the default) leaves the trace untouched.
  int64_t num_prefix_templates = 0;
  int64_t prefix_len = 0;
};

class WorkloadTrace {
 public:
  WorkloadTrace(const DatasetProfile& profile, const TraceOptions& options);

  // Builds a trace from pre-loaded conversations (e.g. a tokenized real
  // dataset loaded via LoadConversationsCsv); arrivals and think times are
  // sampled per `options`, and conversation ids are re-assigned densely
  // (the driver uses them as indices). options.num_conversations caps how
  // many are used (0 or more than available = all).
  WorkloadTrace(std::vector<ConversationSpec> conversations,
                const DatasetProfile& profile, const TraceOptions& options);

  const std::vector<TraceConversation>& conversations() const { return conversations_; }
  const TraceOptions& options() const { return options_; }
  const DatasetProfile& profile() const { return profile_; }

  int64_t TotalRequests() const;

  // Applies a monotone time-warp to the pre-sampled first arrivals
  // (new_first_arrival = warp(first_arrival)), leaving conversation bodies
  // and think times untouched. Benchmarks use this to superimpose diurnal or
  // flash-crowd intensity on a stationary Poisson trace: compressing a span
  // of arrival time raises the instantaneous rate there, stretching lowers
  // it, and because the map is the same for every variant the warped trace
  // is still a deterministic function of the seed. `warp` must be
  // non-decreasing and map non-negative times to non-negative times
  // (CHECKed).
  void WarpFirstArrivals(const std::function<double(double)>& warp);

 private:
  void BuildTimeline(std::vector<ConversationSpec> specs, Rng* rng);
  // CHECKs that conversation ids equal their index (the drivers' experiment
  // core relies on it); runs once at load.
  void ValidateDenseConversationIds() const;

  DatasetProfile profile_;
  TraceOptions options_;
  std::vector<TraceConversation> conversations_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_WORKLOAD_TRACE_H_

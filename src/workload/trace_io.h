// Conversation-trace persistence.
//
// The paper evaluates on real datasets (ShareGPT, UltraChat). Users who hold
// such data can tokenize it offline into a simple CSV of per-turn lengths
// and replay it here instead of the statistical generator; conversely,
// synthesized traces can be exported for inspection or external tooling.
//
// Format (header required):
//   conversation_id,turn,input_len,output_len
// Turns of a conversation must appear in order; conversations may interleave.

#ifndef PENSIEVE_SRC_WORKLOAD_TRACE_IO_H_
#define PENSIEVE_SRC_WORKLOAD_TRACE_IO_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/workload/dataset.h"

namespace pensieve {

Status WriteConversationsCsv(const std::string& path,
                             const std::vector<ConversationSpec>& conversations);

StatusOr<std::vector<ConversationSpec>> LoadConversationsCsv(const std::string& path);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_WORKLOAD_TRACE_IO_H_

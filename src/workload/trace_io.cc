#include "src/workload/trace_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace pensieve {

namespace {

constexpr char kHeader[] = "conversation_id,turn,input_len,output_len";

bool ParseInt(const std::string& field, int64_t* out) {
  if (field.empty()) {
    return false;
  }
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end != field.c_str() + field.size()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

Status WriteConversationsCsv(const std::string& path,
                             const std::vector<ConversationSpec>& conversations) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path);
  }
  out << kHeader << '\n';
  for (const ConversationSpec& conv : conversations) {
    for (size_t t = 0; t < conv.turns.size(); ++t) {
      out << conv.conversation_id << ',' << t << ',' << conv.turns[t].input_len << ','
          << conv.turns[t].output_len << '\n';
    }
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed for " + path);
  }
  return Status::Ok();
}

StatusOr<std::vector<ConversationSpec>> LoadConversationsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument(path + ": expected header '" + kHeader + "'");
  }
  std::vector<ConversationSpec> conversations;
  std::unordered_map<int64_t, size_t> index_of;
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    std::stringstream row(line);
    std::string field;
    int64_t values[4];
    for (int i = 0; i < 4; ++i) {
      if (!std::getline(row, field, ',') || !ParseInt(field, &values[i])) {
        return Status::InvalidArgument(path + ": malformed line " +
                                       std::to_string(line_number));
      }
    }
    if (std::getline(row, field, ',')) {
      return Status::InvalidArgument(path + ": too many fields at line " +
                                     std::to_string(line_number));
    }
    const int64_t conv_id = values[0];
    const int64_t turn = values[1];
    if (values[2] <= 0 || values[3] <= 0) {
      return Status::InvalidArgument(path + ": non-positive length at line " +
                                     std::to_string(line_number));
    }
    auto it = index_of.find(conv_id);
    if (it == index_of.end()) {
      if (turn != 0) {
        return Status::InvalidArgument(path + ": conversation " +
                                       std::to_string(conv_id) +
                                       " does not start at turn 0 (line " +
                                       std::to_string(line_number) + ")");
      }
      index_of.emplace(conv_id, conversations.size());
      ConversationSpec spec;
      spec.conversation_id = conv_id;
      conversations.push_back(std::move(spec));
      it = index_of.find(conv_id);
    }
    ConversationSpec& spec = conversations[it->second];
    if (turn != static_cast<int64_t>(spec.turns.size())) {
      return Status::InvalidArgument(path + ": out-of-order turn for conversation " +
                                     std::to_string(conv_id) + " (line " +
                                     std::to_string(line_number) + ")");
    }
    spec.turns.push_back(TurnSpec{values[2], values[3]});
  }
  return conversations;
}

}  // namespace pensieve

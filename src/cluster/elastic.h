// Elastic replica set: health probing, autoscaling, cross-replica CPU spill.
//
// Three cooperating mechanisms make the cluster react to trouble *before* it
// turns into lost work (DESIGN.md §14):
//
//  * HealthMonitor — a seeded probe loop on the simulated NIC tracks
//    consecutive probe failures/successes per replica and moves each one
//    through healthy -> suspect -> quarantined -> healthy with hysteresis.
//    Routers stop dispatching to a quarantined replica while it is still
//    alive, so its conversations drain over the ordinary migration path
//    instead of dying with it when it hard-fails.
//
//  * Autoscaler — grows/shrinks the active replica set mid-run from
//    queue-depth and p99-normalized-latency signals with cooldown
//    hysteresis. A retiring replica drains its decode homes before its
//    engine is destroyed, so scale-down never drops a request.
//
//  * Peer spill — an overloaded replica's CPU-tier evictions are offered to
//    a peer with idle CPU budget over the NIC instead of falling straight to
//    recompute; the accounting here tracks every spilled token until it is
//    fetched back, degraded by a transfer fault, invalidated, or left
//    stranded at run end.
//
// The idiom follows the source-list + failure-tracking + sync-to-healthy
// structure of classic replicated-source clients: probe everything, count
// consecutive failures, stop using a source before it is formally dead, and
// resynchronize state from whoever is healthy.

#ifndef PENSIEVE_SRC_CLUSTER_ELASTIC_H_
#define PENSIEVE_SRC_CLUSTER_ELASTIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/fault_injector.h"

namespace pensieve {

enum class ReplicaHealth : int32_t {
  kHealthy = 0,
  kSuspect = 1,      // failing probes, still dispatchable
  kQuarantined = 2,  // out of the dispatch set, draining
};

const char* ReplicaHealthName(ReplicaHealth health);

// Deterministic "sick replica" window: every probe of `replica_id` scheduled
// in [begin, end) fails, independent of the probe link's fault draw. This is
// how experiments model a replica that is degraded (and about to hard-fail)
// without killing it outright.
struct SickWindow {
  int32_t replica_id = 0;
  double begin = 0.0;
  double end = 0.0;
};

struct HealthOptions {
  bool enabled = false;
  // Virtual seconds between probe rounds (every alive, active replica is
  // probed once per round).
  double probe_interval = 1.0;
  // A probe that takes longer than this on the wire counts as failed even if
  // it was eventually delivered.
  double probe_timeout = 0.05;
  // Consecutive failures before a replica turns suspect / quarantined, and
  // consecutive successes a quarantined replica needs to rejoin. The gap
  // between the thresholds is the hysteresis band.
  int32_t suspect_after = 2;
  int32_t quarantine_after = 4;
  int32_t healthy_after = 3;
  // Probe wire size. Probes are control-plane traffic: they share the NIC's
  // latency/bandwidth figures but do not occupy data ports.
  double probe_bytes = 4096.0;
  // Ambient probe-loss model: a dedicated fault injector (single attempt per
  // probe; the next round is the retry) drawing from this profile.
  LinkFaultProfile probe_faults;
  // Mixed into the cluster fault seed so the probe stream is independent of
  // the data-plane fault stream.
  uint64_t probe_seed = 0x9E3779B97F4A7C15ull;
  std::vector<SickWindow> sick;
};

// Accounting identity: probes_sent == probes_ok + probes_failed.
struct HealthStats {
  int64_t probes_sent = 0;
  int64_t probes_ok = 0;
  int64_t probes_failed = 0;
  int64_t suspects = 0;         // healthy -> suspect transitions
  int64_t quarantines = 0;      // -> quarantined transitions
  int64_t reinstatements = 0;   // quarantined -> healthy transitions
  // Work proactively moved off quarantined replicas (vs lost in a crash).
  int64_t drained_requests = 0;
  int64_t drained_kv_tokens = 0;
  int64_t lost_generated_tokens = 0;  // decode progress restarted elsewhere
  // In-flight handoff streams voided because their destination was
  // quarantined mid-stream (the continuation degrades to recompute).
  int64_t voided_streams = 0;
};

// Consecutive-failure health state machine, one slot per replica.
class HealthMonitor {
 public:
  enum class Transition { kNone, kSuspect, kQuarantine, kReinstate };

  HealthMonitor(int32_t num_replicas, const HealthOptions& options);

  bool enabled() const { return options_.enabled; }
  const HealthOptions& options() const { return options_; }

  // True when a probe of `replica` at time `now` is forced to fail by a
  // configured sick window.
  bool InSickWindow(int32_t replica, double now) const;

  // Records one probe result and returns the state transition it caused.
  Transition RecordProbe(int32_t replica, bool ok);

  // Hard fail/recover resets the slot: the state machine restarts healthy
  // (a recovered replica gets a clean slate; a dead one is tracked by the
  // replica lifecycle, not by probes).
  void Reset(int32_t replica);

  ReplicaHealth health(int32_t replica) const;
  bool Quarantined(int32_t replica) const {
    return health(replica) == ReplicaHealth::kQuarantined;
  }

  HealthStats& stats() { return stats_; }
  const HealthStats& stats() const { return stats_; }

 private:
  struct Slot {
    ReplicaHealth health = ReplicaHealth::kHealthy;
    int32_t consecutive_failures = 0;
    int32_t consecutive_successes = 0;
  };

  HealthOptions options_;
  std::vector<Slot> slots_;
  HealthStats stats_;
};

struct AutoscaleOptions {
  bool enabled = false;
  int32_t min_replicas = 1;
  int32_t max_replicas = 1;
  // Virtual seconds between autoscaler evaluations.
  double check_interval = 2.0;
  // Minimum virtual seconds between two scale actions (hysteresis: a scale
  // decision must survive the cooldown before the next one is considered).
  double cooldown = 10.0;
  // Queue-depth signal: mean outstanding weighted tokens per active replica.
  // Above up_queue_tokens -> grow; below down_queue_tokens (with the latency
  // signal also calm) -> shrink. The gap is the hysteresis band.
  int64_t up_queue_tokens = 4096;
  int64_t down_queue_tokens = 512;
  // Latency signal: p99 of recent normalized latencies (s/token). 0 disables
  // the signal and scaling decisions use queue depth alone.
  double up_p99_latency = 0.0;
  // Ring-buffer size of the recent-latency window feeding the p99 estimate.
  int32_t latency_window = 128;
};

struct ScaleEvent {
  double time = 0.0;
  int32_t replica_id = -1;
  bool up = false;
  int64_t queue_tokens_per_replica = 0;  // the signal that triggered it
  double p99_latency = 0.0;
};

struct AutoscaleStats {
  int64_t scale_ups = 0;
  int64_t scale_downs = 0;
  // Work drained off retiring replicas (re-routed, never dropped).
  int64_t drained_requests = 0;
  int64_t drained_kv_tokens = 0;
  int64_t lost_generated_tokens = 0;
  // Idle KV released with retired engines (conversations recompute on
  // return; the release is deliberate, not a fault).
  int64_t released_kv_tokens = 0;
  int32_t peak_active_replicas = 0;
  int32_t min_active_replicas = 0;
  std::vector<ScaleEvent> events;
};

// Queue-depth / p99-latency scaling policy with cooldown hysteresis.
class Autoscaler {
 public:
  enum class Decision { kHold, kUp, kDown };

  explicit Autoscaler(const AutoscaleOptions& options);

  bool enabled() const { return options_.enabled; }
  const AutoscaleOptions& options() const { return options_; }

  // Feeds one finished request's normalized latency into the p99 window.
  void RecordFinish(double normalized_latency);

  // One evaluation at time `now` over the active set's total outstanding
  // weighted tokens. Pure decision; the driver performs the scale and calls
  // NoteScaled when it actually happened.
  Decision Decide(double now, int64_t total_weighted_tokens,
                  int32_t active_replicas) const;

  void NoteScaled(double now) { last_scale_time_ = now; }

  // p99 of the recent-latency window (0 while empty).
  double RecentP99() const;

 private:
  AutoscaleOptions options_;
  std::vector<double> window_;
  size_t window_next_ = 0;
  double last_scale_time_ = -1e300;
};

struct PeerSpillOptions {
  bool enabled = false;
};

// Every spilled token is tracked until exactly one of: fetched back,
// degraded by a transfer fault, invalidated (hole rule, peer loss, retiring
// peer), or left remaining at run end:
//   spilled_tokens == fetched_tokens + degraded_tokens
//                     + invalidated_tokens + remaining_tokens.
struct PeerSpillStats {
  int64_t offers = 0;            // CPU-tier evictions offered to peers
  int64_t declined_offers = 0;   // no peer had idle CPU budget
  int64_t spills = 0;            // transfers that landed in a peer's CPU tier
  int64_t spilled_tokens = 0;
  double spilled_bytes = 0.0;
  int64_t failed_transfers = 0;  // NIC retries exhausted (spill or fetch)
  int64_t fetchbacks = 0;        // stash segments pulled back on next use
  int64_t fetched_tokens = 0;    // tokens actually re-adopted
  double fetched_bytes = 0.0;
  int64_t degraded_tokens = 0;   // lost to transfer faults / partial adoption
  int64_t invalidated_tokens = 0;
  int64_t remaining_tokens = 0;  // still stashed at run end
  int64_t stash_peak_tokens = 0;
};

struct ElasticOptions {
  HealthOptions health;
  AutoscaleOptions autoscale;
  PeerSpillOptions peer_spill;

  bool Enabled() const {
    return health.enabled || autoscale.enabled || peer_spill.enabled;
  }
};

struct ElasticStats {
  HealthStats health;
  AutoscaleStats autoscale;
  PeerSpillStats peer_spill;
};

// Multi-line summary ("health-probes:/quarantines:/scale-events:/
// peer-spill-bytes:" lines); empty when no probing, scaling, or spill
// happened, so default runs stay bit-identical.
std::string FormatElasticSummary(const ElasticStats& stats);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_CLUSTER_ELASTIC_H_

#include "src/cluster/replica.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/logging.h"

namespace pensieve {

namespace {

// Prefill-equivalent cost of a delivery still in flight: the new prompt plus
// whatever history the migrated payload does not already carry. State-only
// deliveries enqueue nothing, so they cost nothing.
int64_t DeliveryLoadTokens(const Replica::Delivery& d) {
  if (d.state_only) {
    return 0;
  }
  return d.request.new_prompt_len +
         std::max<int64_t>(0, d.request.history_len - d.migrated.resident_tokens);
}

}  // namespace

Replica::Replica(int32_t id, std::unique_ptr<Engine> engine)
    : id_(id), engine_(std::move(engine)) {
  PENSIEVE_CHECK(engine_ != nullptr);
  engine_name_ = engine_->name();
}

EngineStats Replica::stats() const {
  EngineStats combined = retired_stats_;
  if (engine_ != nullptr) {
    combined += engine_->stats();
  }
  return combined;
}

Replica::FailureDrain Replica::Fail(double now) {
  PENSIEVE_CHECK(alive()) << "replica " << id_ << " failed while already down";
  clock_.AdvanceTo(std::max(clock_.now(), now));
  FailureDrain drain;
  drain.lost_kv_tokens = engine_->TotalCachedTokens();

  // In-flight deliveries die with the replica; their requests must be
  // re-routed, but any migrated KV riding along is lost in transit.
  while (!pending_.empty()) {
    Delivery d = pending_.top();
    pending_.pop();
    drain.lost_kv_tokens += d.migrated.resident_tokens;
    if (d.state_only) {
      // A KV-only handoff payload has no request to re-route; the
      // conversation simply recomputes wherever its next turn lands.
      continue;
    }
    d.migrated = MigratedKvState{};
    d.migration_stall = 0.0;
    d.time = now;
    drain.deliveries.push_back(std::move(d));
  }
  DrainedWork work = engine_->DrainUnfinished();
  drain.lost_generated_tokens = work.lost_generated_tokens;
  for (Request& req : work.requests) {
    Delivery d;
    d.time = now;
    d.request = req;
    drain.deliveries.push_back(std::move(d));
  }
  // Re-route in arrival order regardless of whether the request was still in
  // transit or already queued/running.
  std::sort(drain.deliveries.begin(), drain.deliveries.end(),
            [](const Delivery& a, const Delivery& b) {
              return a.request.request_id < b.request.request_id;
            });

  retired_stats_ += engine_->stats();
  engine_.reset();
  stalled_ = false;
  pending_request_tokens_ = 0;
  return drain;
}

Replica::LiveDrain Replica::DrainLive(double now, bool keep_state_only) {
  PENSIEVE_CHECK(alive()) << "live drain on dead replica " << id_;
  clock_.AdvanceTo(std::max(clock_.now(), now));
  LiveDrain drain;

  // Undelivered deliveries survive intact: the replica is alive, so nothing
  // in transit is lost — migrated payloads ride along to the new home. A
  // delivery's original arrival time is preserved; the driver re-routes at
  // max(now, d.time).
  std::vector<Delivery> keep;
  while (!pending_.empty()) {
    Delivery d = pending_.top();
    pending_.pop();
    if (d.state_only) {
      if (keep_state_only) {
        keep.push_back(std::move(d));
      } else {
        drain.dropped_state_tokens += d.migrated.resident_tokens;
      }
      continue;
    }
    drain.deliveries.push_back(std::move(d));
  }
  pending_request_tokens_ = 0;
  for (Delivery& d : keep) {
    Deliver(std::move(d));
  }

  DrainedWork work = engine_->DrainForRehome();
  drain.lost_generated_tokens = work.lost_generated_tokens;
  for (Request& req : work.requests) {
    Delivery d;
    d.time = now;
    d.request = req;
    drain.deliveries.push_back(std::move(d));
  }
  std::sort(drain.deliveries.begin(), drain.deliveries.end(),
            [](const Delivery& a, const Delivery& b) {
              return a.request.request_id < b.request.request_id;
            });
  stalled_ = false;
  return drain;
}

void Replica::Dormant() {
  PENSIEVE_CHECK(alive());
  PENSIEVE_CHECK(pending_.empty())
      << "replica " << id_ << " made dormant with deliveries pending";
  PENSIEVE_CHECK(!engine_->HasWork())
      << "replica " << id_ << " made dormant with work enqueued";
  engine_.reset();
}

int64_t Replica::Retire(double now) {
  PENSIEVE_CHECK(alive()) << "retiring dead replica " << id_;
  PENSIEVE_CHECK(pending_.empty())
      << "replica " << id_ << " retired with deliveries pending";
  clock_.AdvanceTo(std::max(clock_.now(), now));
  const int64_t released = engine_->TotalCachedTokens();
  retired_stats_ += engine_->stats();
  engine_.reset();
  stalled_ = false;
  pending_request_tokens_ = 0;
  return released;
}

void Replica::Recover(std::unique_ptr<Engine> engine, double now) {
  PENSIEVE_CHECK(!alive()) << "replica " << id_ << " recovered while alive";
  PENSIEVE_CHECK(engine != nullptr);
  engine_ = std::move(engine);
  engine_name_ = engine_->name();
  clock_.AdvanceTo(std::max(clock_.now(), now));
  stalled_ = false;
}

void Replica::Deliver(Delivery delivery) {
  // delivery.time may lie in this replica's past (it stepped beyond the
  // arrival while busy); DeliverDue then enqueues at the local clock, exactly
  // as the single-engine driver enqueues overdue arrivals at now().
  PENSIEVE_CHECK(alive()) << "delivery routed to dead replica " << id_;
  delivery.seq = next_delivery_seq_++;
  pending_request_tokens_ += DeliveryLoadTokens(delivery);
  pending_.push(std::move(delivery));
}

double Replica::NextEventTime() const {
  if (!alive()) {
    // A dead replica does nothing until the driver delivers a recovery.
    return std::numeric_limits<double>::infinity();
  }
  if (engine_->HasWork() && !stalled_) {
    return clock_.now();
  }
  if (!pending_.empty()) {
    return std::max(clock_.now(), pending_.top().time);
  }
  return std::numeric_limits<double>::infinity();
}

void Replica::DeliverDue() {
  while (!pending_.empty() && pending_.top().time <= clock_.now()) {
    const Delivery d = pending_.top();
    pending_.pop();
    pending_request_tokens_ -= DeliveryLoadTokens(d);
    if (!d.migrated.Empty()) {
      engine_->ImportConversationState(d.request.conversation_id, d.migrated,
                                       clock_.now());
    }
    migration_stall_seconds_ += d.migration_stall;
    if (d.state_only) {
      continue;  // KV placement only, nothing to enqueue
    }
    engine_->Enqueue(d.request, clock_.now());
    stalled_ = false;
  }
}

Replica::StepOutcome Replica::StepOnce(
    std::vector<ClusterStepTraceEntry>* step_trace) {
  PENSIEVE_CHECK(alive());
  StepOutcome out;
  if (!engine_->HasWork() || stalled_) {
    // Nothing runnable right now: jump to the next delivery. The driver only
    // calls us when NextEventTime() is finite, so a delivery must exist.
    PENSIEVE_CHECK(!pending_.empty());
    clock_.AdvanceTo(std::max(clock_.now(), pending_.top().time));
  }
  DeliverDue();
  if (!engine_->HasWork()) {
    // Everything due was state-only KV placement; nothing to step.
    return out;
  }

  const double step_start = clock_.now();
  StepResult result = engine_->Step(step_start);
  if (result.idle) {
    // Work is queued but not runnable (e.g. waiting on admission that a
    // future arrival unblocks). Mirror the single driver: skip ahead to the
    // next delivery, or mark the replica stalled so the cluster driver can
    // detect a wedged run.
    if (!pending_.empty()) {
      clock_.AdvanceTo(std::max(clock_.now(), pending_.top().time));
    } else {
      stalled_ = true;
    }
    return out;
  }
  clock_.Advance(result.duration);

  if (step_trace != nullptr) {
    ClusterStepTraceEntry entry;
    entry.replica_id = id_;
    entry.step = StepTraceEntry{step_start, result.duration,
                                result.batch_requests, result.batch_tokens,
                                static_cast<int64_t>(result.finished.size())};
    step_trace->push_back(entry);
  }
  for (const RequestOutcome& outcome : result.finished) {
    if (outcome.request.prefill_only || outcome.request.handoff_continuation) {
      // Half of a disaggregated handoff: the driver merges both sides and
      // records the end-to-end outcome via RecordOutcome.
      continue;
    }
    metrics_.Record(outcome);
    last_finish_time_ = std::max(last_finish_time_, outcome.finish_time);
  }
  out.progressed = true;
  out.result = std::move(result);
  return out;
}

void Replica::RecordOutcome(const RequestOutcome& outcome) {
  metrics_.Record(outcome);
  last_finish_time_ = std::max(last_finish_time_, outcome.finish_time);
}

}  // namespace pensieve

#include "src/cluster/replica.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/logging.h"

namespace pensieve {

Replica::Replica(int32_t id, std::unique_ptr<Engine> engine)
    : id_(id), engine_(std::move(engine)) {
  PENSIEVE_CHECK(engine_ != nullptr);
}

void Replica::Deliver(Delivery delivery) {
  // delivery.time may lie in this replica's past (it stepped beyond the
  // arrival while busy); DeliverDue then enqueues at the local clock, exactly
  // as the single-engine driver enqueues overdue arrivals at now().
  delivery.seq = next_delivery_seq_++;
  pending_.push(std::move(delivery));
}

double Replica::NextEventTime() const {
  if (engine_->HasWork() && !stalled_) {
    return clock_.now();
  }
  if (!pending_.empty()) {
    return std::max(clock_.now(), pending_.top().time);
  }
  return std::numeric_limits<double>::infinity();
}

void Replica::DeliverDue() {
  while (!pending_.empty() && pending_.top().time <= clock_.now()) {
    const Delivery d = pending_.top();
    pending_.pop();
    if (!d.migrated.Empty()) {
      engine_->ImportConversationState(d.request.conversation_id, d.migrated,
                                       clock_.now());
    }
    migration_stall_seconds_ += d.migration_stall;
    engine_->Enqueue(d.request, clock_.now());
    stalled_ = false;
  }
}

Replica::StepOutcome Replica::StepOnce(
    std::vector<ClusterStepTraceEntry>* step_trace) {
  StepOutcome out;
  if (!engine_->HasWork() || stalled_) {
    // Nothing runnable right now: jump to the next delivery. The driver only
    // calls us when NextEventTime() is finite, so a delivery must exist.
    PENSIEVE_CHECK(!pending_.empty());
    clock_.AdvanceTo(std::max(clock_.now(), pending_.top().time));
  }
  DeliverDue();
  PENSIEVE_CHECK(engine_->HasWork());

  const double step_start = clock_.now();
  StepResult result = engine_->Step(step_start);
  if (result.idle) {
    // Work is queued but not runnable (e.g. waiting on admission that a
    // future arrival unblocks). Mirror the single driver: skip ahead to the
    // next delivery, or mark the replica stalled so the cluster driver can
    // detect a wedged run.
    if (!pending_.empty()) {
      clock_.AdvanceTo(std::max(clock_.now(), pending_.top().time));
    } else {
      stalled_ = true;
    }
    return out;
  }
  clock_.Advance(result.duration);

  if (step_trace != nullptr) {
    ClusterStepTraceEntry entry;
    entry.replica_id = id_;
    entry.step = StepTraceEntry{step_start, result.duration,
                                result.batch_requests, result.batch_tokens,
                                static_cast<int64_t>(result.finished.size())};
    step_trace->push_back(entry);
  }
  for (const RequestOutcome& outcome : result.finished) {
    metrics_.Record(outcome);
    last_finish_time_ = std::max(last_finish_time_, outcome.finish_time);
  }
  out.progressed = true;
  out.result = std::move(result);
  return out;
}

}  // namespace pensieve

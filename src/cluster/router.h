// Cluster request routing policies.
//
// The router is the cluster's front door: every turn of every conversation
// passes through Route() before it reaches a replica. Pensieve's premise
// makes this decision stateful — a returning conversation is cheap only on
// the replica that still caches its KV — so the interesting policy is
// session affinity; round-robin and least-loaded are the stateless
// baselines a conventional load balancer would use.
//
//  * round-robin       — ignore everything, rotate over replicas.
//  * least-loaded      — pick the replica with the fewest outstanding
//                        tokens (queued prefill work + decode backlog).
//  * session-affinity  — pin each conversation to a home replica (chosen
//                        least-loaded at first contact). If the home is
//                        overloaded beyond a threshold when a turn returns,
//                        fail over cache-awarely: either keep queueing at
//                        home (preserving the cache at the cost of queueing
//                        delay) or migrate the conversation's KV state to
//                        the least-loaded replica over the inter-replica
//                        link and re-home it there.

#ifndef PENSIEVE_SRC_CLUSTER_ROUTER_H_
#define PENSIEVE_SRC_CLUSTER_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/scheduler/request.h"
#include "src/serving/engine.h"

namespace pensieve {

enum class RouterPolicy {
  kRoundRobin,
  kLeastLoaded,
  kSessionAffinity,
};

const char* RouterPolicyName(RouterPolicy policy);
bool RouterPolicyByName(const std::string& name, RouterPolicy* policy);

struct RouterOptions {
  RouterPolicy policy = RouterPolicy::kSessionAffinity;
  // Affinity failover threshold: the home replica counts as overloaded when
  // its outstanding tokens exceed both this absolute floor and
  // overload_factor times the cluster-mean outstanding tokens.
  double overload_factor = 2.0;
  int64_t min_overload_tokens = 8192;
  // Overloaded home: ship the conversation's KV to the least-loaded replica
  // and re-home it (true), or keep queueing at home (false).
  bool migrate_on_overload = true;
};

// What the router may observe about a replica when deciding. A dead replica
// keeps its index slot (routing decisions index the replica vector) but must
// never be chosen as a target. A replica can also be alive but not
// dispatchable (quarantined by the health monitor, or outside the
// autoscaler's active set, DESIGN.md §14): routers treat it exactly like a
// dead one when selecting targets, while the driver can still drain work
// *off* it over the migration path.
struct ReplicaView {
  const Engine* engine = nullptr;
  EngineLoad load;
  bool alive = true;
  bool dispatchable = true;
};

struct RoutingDecision {
  int32_t target = 0;
  // Re-home with KV migration: the driver detaches the conversation's state
  // from `source` and ships it to `target` before delivery.
  bool migrate = false;
  int32_t source = -1;
  // Disaggregated dispatch (DESIGN.md §13): run this request's prefill on
  // `target` (a prefill-pool replica), then stream the KV to a decode
  // replica. Only ever set by the disagg router.
  bool prefill_handoff = false;
};

// Decision counters, for cluster-level reporting.
struct RouterCounters {
  int64_t rehomes = 0;          // conversations reassigned to a new home
  int64_t overload_queued = 0;  // overloads resolved by queueing at home
};

class Router {
 public:
  virtual ~Router() = default;
  virtual const char* name() const = 0;
  virtual RoutingDecision Route(const Request& request,
                                const std::vector<ReplicaView>& replicas) = 0;

  // Fault hooks, called by the cluster driver before any routing happens at
  // the fault time. On a failure the replica's KV is gone: stateful routers
  // must forget any affinity to it (conversations re-home at next contact)
  // and every router must stop targeting it until NotifyReplicaUp.
  virtual void NotifyReplicaDown(int32_t replica_id) {}
  virtual void NotifyReplicaUp(int32_t replica_id) {}

  const RouterCounters& counters() const { return counters_; }

 protected:
  RouterCounters counters_;
};

std::unique_ptr<Router> MakeRouter(const RouterOptions& options);

// Shared helper: dispatchable replica with the fewest outstanding tokens
// (ties broken by fewest requests, then lowest id, keeping runs
// deterministic).
// With `weight_queued_prefill`, the score also counts history tokens that
// queued-but-unadmitted requests will have to recompute
// (EngineLoad::WeightedTokens) — without it, prefill-pool dispatch herds
// cold conversations onto whichever replica's queue looks short by prompt
// tokens alone. CHECK-fails when no replica is alive.
int32_t LeastLoadedReplica(const std::vector<ReplicaView>& replicas,
                           bool weight_queued_prefill = false);

// Prefill/decode disaggregation (DESIGN.md §13): replicas [0,
// prefill_replicas) form the prefill pool, the rest the decode pool. Turns
// whose pending prefill work (new prompt + history not cached at the decode
// home) reaches `min_handoff_tokens` run their prefill on the pool replica
// with the least weighted queued work and hand off; well-cached returning
// turns go straight to their decode home, colocated.
struct DisaggRouterConfig {
  int32_t prefill_replicas = 1;
  int64_t min_handoff_tokens = 64;
};

std::unique_ptr<Router> MakeDisaggRouter(const DisaggRouterConfig& config);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_CLUSTER_ROUTER_H_

#include "src/cluster/cluster_metrics.h"

#include <algorithm>
#include <fstream>

namespace pensieve {

EngineStats CombineEngineStats(const std::vector<ServingSummary>& replicas) {
  EngineStats total;
  for (const ServingSummary& r : replicas) {
    total += r.engine_stats;
  }
  return total;
}

double LoadImbalance(const std::vector<ServingSummary>& replicas) {
  if (replicas.empty()) {
    return 0.0;
  }
  double max_busy = 0.0;
  double total_busy = 0.0;
  for (const ServingSummary& r : replicas) {
    max_busy = std::max(max_busy, r.engine_stats.busy_seconds);
    total_busy += r.engine_stats.busy_seconds;
  }
  if (total_busy <= 0.0) {
    return 0.0;
  }
  return max_busy / (total_busy / static_cast<double>(replicas.size()));
}

Status WriteClusterStepTraceCsv(const std::string& path,
                                const std::vector<ClusterStepTraceEntry>& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path);
  }
  out << "replica_id,start_s,duration_s,batch_requests,batch_tokens,finished\n";
  for (const ClusterStepTraceEntry& e : trace) {
    out << e.replica_id << ',' << e.step.start << ',' << e.step.duration << ','
        << e.step.batch_requests << ',' << e.step.batch_tokens << ','
        << e.step.finished << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace pensieve

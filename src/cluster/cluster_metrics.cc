#include "src/cluster/cluster_metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace pensieve {

EngineStats CombineEngineStats(const std::vector<ServingSummary>& replicas) {
  EngineStats total;
  for (const ServingSummary& r : replicas) {
    total += r.engine_stats;
  }
  return total;
}

double LoadImbalance(const std::vector<ServingSummary>& replicas) {
  if (replicas.empty()) {
    return 0.0;
  }
  double max_busy = 0.0;
  double total_busy = 0.0;
  for (const ServingSummary& r : replicas) {
    max_busy = std::max(max_busy, r.engine_stats.busy_seconds);
    total_busy += r.engine_stats.busy_seconds;
  }
  if (total_busy <= 0.0) {
    return 0.0;
  }
  return max_busy / (total_busy / static_cast<double>(replicas.size()));
}

std::string FormatHandoffSummary(const HandoffStats& handoff) {
  if (handoff.handoff_requests == 0 && handoff.streams == 0) {
    return "";
  }
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "handoff-streams:   %lld streams (%lld chunks, %lld failed), "
                "%lld handoffs (%lld colocated, %lld local)\n",
                static_cast<long long>(handoff.streams),
                static_cast<long long>(handoff.stream_chunks),
                static_cast<long long>(handoff.failed_streams),
                static_cast<long long>(handoff.handoff_requests),
                static_cast<long long>(handoff.colocated_requests),
                static_cast<long long>(handoff.local_handoffs));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "handoff-bytes:     %.1f MB streamed, %lld tokens adopted, "
                "%lld tokens lost\n",
                handoff.stream_bytes / 1e6,
                static_cast<long long>(handoff.streamed_tokens),
                static_cast<long long>(handoff.kv_tokens_lost));
  out += buf;
  const double per_stream =
      handoff.streams > 0
          ? handoff.overlap_saved_seconds /
                static_cast<double>(handoff.streams)
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "handoff-overlap-ms: %.1f saved vs blocking (%.2f/stream), "
                "decode wait %.1f\n",
                handoff.overlap_saved_seconds * 1e3, per_stream * 1e3,
                handoff.stream_wait_seconds * 1e3);
  out += buf;
  return out;
}

Status WriteClusterStepTraceCsv(const std::string& path,
                                const std::vector<ClusterStepTraceEntry>& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path);
  }
  out << "replica_id,start_s,duration_s,batch_requests,batch_tokens,finished\n";
  for (const ClusterStepTraceEntry& e : trace) {
    out << e.replica_id << ',' << e.step.start << ',' << e.step.duration << ','
        << e.step.batch_requests << ',' << e.step.batch_tokens << ','
        << e.step.finished << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace pensieve

#include "src/cluster/cluster_metrics.h"

#include <algorithm>
#include <fstream>

namespace pensieve {

EngineStats CombineEngineStats(const std::vector<ServingSummary>& replicas) {
  EngineStats total;
  for (const ServingSummary& r : replicas) {
    const EngineStats& s = r.engine_stats;
    total.steps += s.steps;
    total.generated_tokens += s.generated_tokens;
    total.prefill_tokens += s.prefill_tokens;
    total.reused_gpu_tokens += s.reused_gpu_tokens;
    total.reused_cpu_tokens += s.reused_cpu_tokens;
    total.recomputed_history_tokens += s.recomputed_history_tokens;
    total.suspensions += s.suspensions;
    total.preemptions += s.preemptions;
    total.forced_swap_out_tokens += s.forced_swap_out_tokens;
    total.aot_swap_out_tokens += s.aot_swap_out_tokens;
    total.dropped_tokens += s.dropped_tokens;
    total.migrated_out_tokens += s.migrated_out_tokens;
    total.migrated_in_tokens += s.migrated_in_tokens;
    total.busy_seconds += s.busy_seconds;
    total.recompute_seconds += s.recompute_seconds;
    total.restore_stall_seconds += s.restore_stall_seconds;
  }
  return total;
}

double LoadImbalance(const std::vector<ServingSummary>& replicas) {
  if (replicas.empty()) {
    return 0.0;
  }
  double max_busy = 0.0;
  double total_busy = 0.0;
  for (const ServingSummary& r : replicas) {
    max_busy = std::max(max_busy, r.engine_stats.busy_seconds);
    total_busy += r.engine_stats.busy_seconds;
  }
  if (total_busy <= 0.0) {
    return 0.0;
  }
  return max_busy / (total_busy / static_cast<double>(replicas.size()));
}

Status WriteClusterStepTraceCsv(const std::string& path,
                                const std::vector<ClusterStepTraceEntry>& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path);
  }
  out << "replica_id,start_s,duration_s,batch_requests,batch_tokens,finished\n";
  for (const ClusterStepTraceEntry& e : trace) {
    out << e.replica_id << ',' << e.step.start << ',' << e.step.duration << ','
        << e.step.batch_requests << ',' << e.step.batch_tokens << ','
        << e.step.finished << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace pensieve

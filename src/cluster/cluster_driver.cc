#include "src/cluster/cluster_driver.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/cluster/replica.h"
#include "src/common/logging.h"
#include "src/serving/experiment_core.h"
#include "src/sim/event_loop.h"

namespace pensieve {

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

}  // namespace

ClusterSummary RunClusterExperiment(const ReplicaEngineFactory& make_engine,
                                    const WorkloadTrace& trace,
                                    const ClusterOptions& options) {
  PENSIEVE_CHECK(make_engine != nullptr);
  PENSIEVE_CHECK_GT(options.num_replicas, 0);

  std::vector<Replica> replicas;
  replicas.reserve(static_cast<size_t>(options.num_replicas));
  for (int32_t i = 0; i < options.num_replicas; ++i) {
    replicas.emplace_back(i, make_engine(i));
  }
  std::unique_ptr<Router> router = MakeRouter(options.router);
  ClusterInterconnect interconnect(options.num_replicas, options.interconnect);
  LinkFaultInjector nic_faults(options.fault_seed, options.nic_fault_profile,
                               options.fault_retry);

  // One typed event queue drives the run: arrivals and scheduled faults pop
  // in deterministic order (arrival < fail < recover on time ties), and
  // replica steps rank after all of them so routers always see fresh state.
  EventQueue events;
  ArrivalProcess arrivals(trace, &events);
  for (const ReplicaFault& fault : options.faults) {
    PENSIEVE_CHECK_GE(fault.replica_id, 0);
    PENSIEVE_CHECK_LT(fault.replica_id, options.num_replicas);
    PENSIEVE_CHECK_GE(fault.time, 0.0);
    SimEvent event;
    event.time = fault.time;
    event.kind = fault.recover ? SimEventKind::kReplicaRecover
                               : SimEventKind::kReplicaFail;
    event.id = fault.replica_id;
    events.Push(event);
  }

  int64_t total_steps = 0;
  MigrationStats migration;
  FaultStats faults;
  // Requests with no alive replica to run on; flushed at the next recovery.
  std::vector<Request> orphans;

  std::vector<ReplicaView> views(replicas.size());
  auto snapshot_views = [&]() {
    for (size_t i = 0; i < replicas.size(); ++i) {
      views[i].alive = replicas[i].alive();
      views[i].engine = views[i].alive ? &replicas[i].engine() : nullptr;
      views[i].load = views[i].alive ? replicas[i].engine().Load() : EngineLoad{};
    }
  };
  auto any_alive = [&]() {
    for (const Replica& r : replicas) {
      if (r.alive()) {
        return true;
      }
    }
    return false;
  };

  // Routes `req` at virtual time `now` and delivers it to the chosen
  // replica. `allow_migrate` is false for crash-rerouted requests: the KV
  // they would have migrated died with their replica.
  auto route_and_deliver = [&](const Request& req, double now,
                               bool allow_migrate) {
    if (!any_alive()) {
      orphans.push_back(req);
      ++faults.orphaned_requests;
      return;
    }
    snapshot_views();
    const RoutingDecision decision = router->Route(req, views);
    PENSIEVE_CHECK_GE(decision.target, 0);
    PENSIEVE_CHECK_LT(decision.target, static_cast<int32_t>(replicas.size()));
    PENSIEVE_CHECK(views[static_cast<size_t>(decision.target)].alive)
        << router->name() << " routed request " << req.request_id
        << " to dead replica " << decision.target;

    Replica::Delivery delivery;
    delivery.time = now;
    delivery.request = req;
    if (allow_migrate && decision.migrate && decision.source >= 0 &&
        decision.source != decision.target &&
        replicas[static_cast<size_t>(decision.source)].alive()) {
      Replica& source = replicas[static_cast<size_t>(decision.source)];
      MigratedKvState state =
          source.engine().ExportConversationState(req.conversation_id);
      if (state.resident_tokens > 0) {
        // The request cannot start at its new home before its KV lands (or
        // the transfer is abandoned; either way it waits out every attempt).
        const LinkTransferOutcome out = nic_faults.Transfer(
            now, state.bytes, [&](double start, double bytes) {
              return interconnect.ScheduleTransfer(decision.source,
                                                   decision.target, start, bytes);
            });
        delivery.time = out.done;
        delivery.migration_stall = out.done - now;
        ++migration.migrations;
        migration.migration_stall_seconds += delivery.migration_stall;
        if (out.delivered) {
          migration.migrated_bytes += state.bytes;
        } else {
          // KV lost in transit: the conversation is still re-homed, but
          // arrives with bookkeeping only — its history recomputes at the
          // destination through the dropped-prefix path.
          ++migration.failed_migrations;
          migration.kv_tokens_lost_in_transit += state.resident_tokens;
          faults.lost_kv_tokens += state.resident_tokens;
          state.resident_tokens = 0;
          state.bytes = 0.0;
        }
      }
      delivery.migrated = state;
    }
    replicas[static_cast<size_t>(decision.target)].Deliver(
        std::move(delivery));
  };

  auto handle_fail = [&](const SimEvent& event) {
    Replica& victim = replicas[static_cast<size_t>(event.id)];
    if (!victim.alive()) {
      PENSIEVE_LOG_WARNING << "fail event for already-dead replica "
                           << event.id << " at t=" << event.time << "; ignored";
      return;
    }
    // The router forgets the replica first so re-routed (and all future)
    // requests pick an alive home.
    router->NotifyReplicaDown(static_cast<int32_t>(event.id));
    Replica::FailureDrain drain = victim.Fail(event.time);
    ++faults.failures;
    faults.lost_kv_tokens += drain.lost_kv_tokens;
    faults.lost_generated_tokens += drain.lost_generated_tokens;
    faults.rerouted_requests += static_cast<int64_t>(drain.deliveries.size());
    for (const Replica::Delivery& d : drain.deliveries) {
      route_and_deliver(d.request, event.time, /*allow_migrate=*/false);
    }
  };

  auto handle_recover = [&](const SimEvent& event) {
    Replica& replica = replicas[static_cast<size_t>(event.id)];
    if (replica.alive()) {
      PENSIEVE_LOG_WARNING << "recover event for alive replica " << event.id
                           << " at t=" << event.time << "; ignored";
      return;
    }
    replica.Recover(make_engine(static_cast<int32_t>(event.id)), event.time);
    router->NotifyReplicaUp(static_cast<int32_t>(event.id));
    ++faults.recoveries;
    // Requests stranded while the whole cluster was down run here.
    std::vector<Request> stranded;
    stranded.swap(orphans);
    for (const Request& req : stranded) {
      route_and_deliver(req, event.time, /*allow_migrate=*/false);
    }
  };

  while (true) {
    const double t_event = events.NextTime();
    double t_replica = kNever;
    int32_t next_replica = -1;
    for (int32_t i = 0; i < static_cast<int32_t>(replicas.size()); ++i) {
      const double t = replicas[static_cast<size_t>(i)].NextEventTime();
      if (t < t_replica) {
        t_replica = t;
        next_replica = i;
      }
    }

    // Queued events outrank replica steps on ties: the single driver
    // delivers everything due before stepping, and routers should see the
    // freshest queue state.
    if (t_event <= t_replica) {
      if (events.Empty()) {
        break;  // both sides quiescent
      }
      const SimEvent event = events.Pop();
      switch (event.kind) {
        case SimEventKind::kArrival:
          route_and_deliver(arrivals.BuildRequest(event), event.time,
                            /*allow_migrate=*/true);
          break;
        case SimEventKind::kReplicaFail:
          handle_fail(event);
          break;
        case SimEventKind::kReplicaRecover:
          handle_recover(event);
          break;
      }
      continue;
    }

    if (next_replica < 0) {
      break;
    }
    Replica::StepOutcome step =
        replicas[static_cast<size_t>(next_replica)].StepOnce(
            options.step_trace);
    if (!step.progressed) {
      continue;
    }
    for (const RequestOutcome& outcome : step.result.finished) {
      if (options.outcomes != nullptr) {
        options.outcomes->push_back(outcome);
      }
      // Schedule the conversation's next turn after the user's think time.
      arrivals.OnRequestFinished(outcome);
    }
    ++total_steps;
    if (options.max_steps > 0 && total_steps >= options.max_steps) {
      PENSIEVE_LOG_WARNING << "cluster experiment hit max_steps="
                           << options.max_steps;
      break;
    }
  }

  for (const Replica& r : replicas) {
    if (r.alive() && r.engine().HasWork()) {
      PENSIEVE_LOG_WARNING << "replica " << r.id()
                           << " still has work at experiment end (stalled)";
    }
  }
  if (!orphans.empty()) {
    PENSIEVE_LOG_WARNING << orphans.size()
                         << " request(s) orphaned by replica failures never "
                            "ran (no recovery scheduled)";
  }

  double global_last_finish = 0.0;
  for (const Replica& r : replicas) {
    global_last_finish = std::max(global_last_finish, r.last_finish_time());
  }
  // Same steady-state window as the single driver, by construction.
  const SteadyStateWindow window =
      ComputeSteadyStateWindow(ArrivalSpan(trace), global_last_finish);

  ClusterSummary summary;
  summary.router_name = router->name();
  summary.num_replicas = options.num_replicas;
  std::vector<const MetricsCollector*> collectors;
  collectors.reserve(replicas.size());
  for (const Replica& r : replicas) {
    summary.replicas.push_back(r.metrics().Summarize(
        r.engine_name(), r.last_finish_time(), r.stats(), window.begin,
        window.end));
    collectors.push_back(&r.metrics());
    summary.migration.migrated_tokens += r.stats().migrated_in_tokens;
  }
  // The combined summary merges the per-replica collectors in place —
  // outcomes are stored once, in their replica's collector.
  summary.cluster = MetricsCollector::SummarizeMerged(
      collectors, std::string("cluster/") + router->name(), global_last_finish,
      CombineEngineStats(summary.replicas), window.begin, window.end);
  summary.load_imbalance = LoadImbalance(summary.replicas);
  summary.migration.migrations = migration.migrations;
  summary.migration.migrated_bytes = migration.migrated_bytes;
  summary.migration.migration_stall_seconds = migration.migration_stall_seconds;
  summary.migration.failed_migrations = migration.failed_migrations;
  summary.migration.kv_tokens_lost_in_transit =
      migration.kv_tokens_lost_in_transit;
  summary.migration.rehomes = router->counters().rehomes;
  summary.migration.overload_queued = router->counters().overload_queued;
  summary.faults = faults;
  summary.nic_link_faults = nic_faults.stats();
  return summary;
}

}  // namespace pensieve

#include "src/cluster/cluster_driver.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/cluster/replica.h"
#include "src/common/logging.h"
#include "src/serving/experiment_core.h"
#include "src/sim/event_loop.h"
#include "src/sim/kv_stream.h"

namespace pensieve {

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

// One prefill->decode KV stream on the NIC (DESIGN.md §13). Indexed by its
// kHandoffArrival event id; the entry outlives the stream so a replica
// failure between launch and arrival can void the payload in place.
struct HandoffStream {
  int64_t conversation_id = 0;
  int32_t src = -1;
  int32_t dst = -1;
  MigratedKvState state;
  Request continuation;
  bool state_only = false;  // nothing left to decode; KV placement only
  bool cancelled = false;   // an endpoint died mid-stream; payload lost
  bool arrived = false;     // the kHandoffArrival event has been processed
};

// Prefill-side half of a handed-off turn, waiting to be merged with the
// decode-side half into one end-to-end outcome. A conversation has at most
// one turn in flight, so at most one chain.
struct HandoffChain {
  Request original;
  RequestOutcome partial;
  bool has_partial = false;
};

}  // namespace

ClusterSummary RunClusterExperiment(const ReplicaEngineFactory& make_engine,
                                    const WorkloadTrace& trace,
                                    const ClusterOptions& options) {
  PENSIEVE_CHECK(make_engine != nullptr);
  PENSIEVE_CHECK_GT(options.num_replicas, 0);

  std::vector<Replica> replicas;
  replicas.reserve(static_cast<size_t>(options.num_replicas));
  for (int32_t i = 0; i < options.num_replicas; ++i) {
    replicas.emplace_back(i, make_engine(i));
  }
  std::unique_ptr<Router> router;
  if (options.disagg.enabled) {
    PENSIEVE_CHECK_GE(options.num_replicas, 2)
        << "disaggregation needs at least one prefill and one decode replica";
    DisaggRouterConfig config;
    config.prefill_replicas = options.disagg.prefill_replicas;
    config.min_handoff_tokens = options.disagg.min_handoff_tokens;
    router = MakeDisaggRouter(config);
  } else {
    router = MakeRouter(options.router);
  }
  ClusterInterconnect interconnect(options.num_replicas, options.interconnect);
  LinkFaultInjector nic_faults(options.fault_seed, options.nic_fault_profile,
                               options.fault_retry);

  // One typed event queue drives the run: arrivals and scheduled faults pop
  // in deterministic order (arrival < fail < recover on time ties), and
  // replica steps rank after all of them so routers always see fresh state.
  EventQueue events;
  ArrivalProcess arrivals(trace, &events);
  for (const ReplicaFault& fault : options.faults) {
    PENSIEVE_CHECK_GE(fault.replica_id, 0);
    PENSIEVE_CHECK_LT(fault.replica_id, options.num_replicas);
    PENSIEVE_CHECK_GE(fault.time, 0.0);
    SimEvent event;
    event.time = fault.time;
    event.kind = fault.recover ? SimEventKind::kReplicaRecover
                               : SimEventKind::kReplicaFail;
    event.id = fault.replica_id;
    events.Push(event);
  }

  int64_t total_steps = 0;
  MigrationStats migration;
  FaultStats faults;
  // Requests with no alive replica to run on; flushed at the next recovery.
  std::vector<Request> orphans;
  HandoffStats handoff;
  // Prefill-side halves waiting for their decode halves, by conversation.
  std::unordered_map<int64_t, HandoffChain> chains;
  // Every KV stream launched this run; kHandoffArrival events index this.
  std::vector<HandoffStream> streams;

  std::vector<ReplicaView> views(replicas.size());
  auto snapshot_views = [&]() {
    for (size_t i = 0; i < replicas.size(); ++i) {
      views[i].alive = replicas[i].alive();
      views[i].engine = views[i].alive ? &replicas[i].engine() : nullptr;
      views[i].load = views[i].alive ? replicas[i].engine().Load() : EngineLoad{};
      // Routed-but-undelivered work is invisible to the engine; without it a
      // burst dispatched between replica steps sees every load as zero and
      // herds. Folded into the weighted term only, so unweighted
      // (session-affinity / --disagg=off) decisions are untouched.
      views[i].load.queued_uncached_prefill_tokens +=
          replicas[i].pending_request_tokens();
    }
  };
  auto any_alive = [&]() {
    for (const Replica& r : replicas) {
      if (r.alive()) {
        return true;
      }
    }
    return false;
  };

  // Routes `req` at virtual time `now` and delivers it to the chosen
  // replica. `allow_migrate` is false for crash-rerouted requests: the KV
  // they would have migrated died with their replica.
  auto route_and_deliver = [&](const Request& req, double now,
                               bool allow_migrate) {
    if (!any_alive()) {
      orphans.push_back(req);
      ++faults.orphaned_requests;
      return;
    }
    snapshot_views();
    const RoutingDecision decision = router->Route(req, views);
    PENSIEVE_CHECK_GE(decision.target, 0);
    PENSIEVE_CHECK_LT(decision.target, static_cast<int32_t>(replicas.size()));
    PENSIEVE_CHECK(views[static_cast<size_t>(decision.target)].alive)
        << router->name() << " routed request " << req.request_id
        << " to dead replica " << decision.target;

    Replica::Delivery delivery;
    delivery.time = now;
    delivery.request = req;
    if (options.disagg.enabled && !req.handoff_continuation) {
      // The router decides afresh at every dispatch (including crash
      // re-drains) whether this turn prefills remotely or runs colocated.
      delivery.request.prefill_only = decision.prefill_handoff;
      if (decision.prefill_handoff) {
        ++handoff.handoff_requests;
        // (Re)arm the merge chain. A conversation has at most one turn in
        // flight, so any existing chain belongs to an earlier incarnation
        // of this same turn (its prefill replica crashed before finishing).
        HandoffChain& chain = chains[req.conversation_id];
        const bool keep_partial = chain.has_partial;
        if (!keep_partial) {
          chain.original = req;
          chain.original.prefill_only = false;
          chain.partial = RequestOutcome{};
          chain.partial.request = chain.original;
        }
      } else {
        ++handoff.colocated_requests;
      }
    }
    if (allow_migrate && decision.migrate && decision.source >= 0 &&
        decision.source != decision.target &&
        replicas[static_cast<size_t>(decision.source)].alive()) {
      Replica& source = replicas[static_cast<size_t>(decision.source)];
      MigratedKvState state =
          source.engine().ExportConversationState(req.conversation_id);
      if (state.resident_tokens > 0) {
        // The request cannot start at its new home before its KV lands (or
        // the transfer is abandoned; either way it waits out every attempt).
        const LinkTransferOutcome out = nic_faults.Transfer(
            now, state.bytes, [&](double start, double bytes) {
              return interconnect.ScheduleTransfer(decision.source,
                                                   decision.target, start, bytes);
            });
        delivery.time = out.done;
        delivery.migration_stall = out.done - now;
        ++migration.migrations;
        migration.migration_stall_seconds += delivery.migration_stall;
        if (out.delivered) {
          migration.migrated_bytes += state.bytes;
        } else {
          // KV lost in transit: the conversation is still re-homed, but
          // arrives with bookkeeping only — its history recomputes at the
          // destination through the dropped-prefix path.
          ++migration.failed_migrations;
          migration.kv_tokens_lost_in_transit += state.resident_tokens;
          faults.lost_kv_tokens += state.resident_tokens;
          state.resident_tokens = 0;
          state.bytes = 0.0;
        }
      }
      delivery.migrated = state;
    }
    replicas[static_cast<size_t>(decision.target)].Deliver(
        std::move(delivery));
  };

  auto handle_fail = [&](const SimEvent& event) {
    Replica& victim = replicas[static_cast<size_t>(event.id)];
    if (!victim.alive()) {
      PENSIEVE_LOG_WARNING << "fail event for already-dead replica "
                           << event.id << " at t=" << event.time << "; ignored";
      return;
    }
    // The router forgets the replica first so re-routed (and all future)
    // requests pick an alive home.
    router->NotifyReplicaDown(static_cast<int32_t>(event.id));
    Replica::FailureDrain drain = victim.Fail(event.time);
    ++faults.failures;
    faults.lost_kv_tokens += drain.lost_kv_tokens;
    faults.lost_generated_tokens += drain.lost_generated_tokens;
    faults.rerouted_requests += static_cast<int64_t>(drain.deliveries.size());
    for (const Replica::Delivery& d : drain.deliveries) {
      route_and_deliver(d.request, event.time, /*allow_migrate=*/false);
    }
    // KV streams touching the dead replica die mid-flight: the payload is
    // voided here, but the arrival event still fires and delivers (or
    // re-routes) the continuation with bookkeeping only, so the decode side
    // degrades to dropped-prefix recompute instead of dropping the request.
    for (HandoffStream& s : streams) {
      if (s.arrived || s.cancelled || s.state.resident_tokens <= 0) {
        continue;
      }
      if (s.src != static_cast<int32_t>(event.id) &&
          s.dst != static_cast<int32_t>(event.id)) {
        continue;
      }
      s.cancelled = true;
      ++handoff.failed_streams;
      handoff.kv_tokens_lost += s.state.resident_tokens;
      faults.lost_kv_tokens += s.state.resident_tokens;
      s.state.resident_tokens = 0;
      s.state.bytes = 0.0;
    }
  };

  auto handle_recover = [&](const SimEvent& event) {
    Replica& replica = replicas[static_cast<size_t>(event.id)];
    if (replica.alive()) {
      PENSIEVE_LOG_WARNING << "recover event for alive replica " << event.id
                           << " at t=" << event.time << "; ignored";
      return;
    }
    replica.Recover(make_engine(static_cast<int32_t>(event.id)), event.time);
    router->NotifyReplicaUp(static_cast<int32_t>(event.id));
    ++faults.recoveries;
    // Requests stranded while the whole cluster was down run here.
    std::vector<Request> stranded;
    stranded.swap(orphans);
    for (const Request& req : stranded) {
      route_and_deliver(req, event.time, /*allow_migrate=*/false);
    }
  };

  // Merges the prefill- and decode-side halves of a handed-off turn into
  // one end-to-end outcome and records it on the finishing replica.
  // `decode_half` is null for single-token responses that finished entirely
  // on the prefill side.
  auto finish_chain = [&](int64_t conv, const RequestOutcome* decode_half,
                          int32_t finishing_replica, double finish_time) {
    auto it = chains.find(conv);
    PENSIEVE_CHECK(it != chains.end())
        << "handoff half finished with no chain for conversation " << conv;
    RequestOutcome merged = it->second.partial;
    merged.request = it->second.original;
    merged.finish_time = finish_time;
    if (decode_half != nullptr) {
      merged.prefill_input_tokens += decode_half->prefill_input_tokens;
      merged.reused_gpu_tokens += decode_half->reused_gpu_tokens;
      merged.reused_cpu_tokens += decode_half->reused_cpu_tokens;
      merged.reused_ssd_tokens += decode_half->reused_ssd_tokens;
      merged.reused_shared_tokens += decode_half->reused_shared_tokens;
      merged.recomputed_tokens += decode_half->recomputed_tokens;
      merged.generated_tokens += decode_half->generated_tokens;
      merged.suspensions += decode_half->suspensions;
      merged.decode_admit_time = decode_half->first_scheduled_time;
    }
    replicas[static_cast<size_t>(finishing_replica)].RecordOutcome(merged);
    if (options.outcomes != nullptr) {
      options.outcomes->push_back(merged);
    }
    arrivals.OnRequestFinished(merged);
    chains.erase(it);
  };

  // A prefill-role replica finished the prefill half of a handed-off turn:
  // fold its accounting into the chain, place the remainder on a decode
  // replica, export the KV, and launch the layer-pipelined stream. The
  // stream was already overlapping the prefill step, so its chunks become
  // ready across [prefill_compute_start, finish_time].
  auto handle_prefill_finish = [&](const RequestOutcome& outcome, int32_t p) {
    const int64_t conv = outcome.request.conversation_id;
    auto it = chains.find(conv);
    PENSIEVE_CHECK(it != chains.end())
        << "prefill finished with no chain for conversation " << conv;
    HandoffChain& chain = it->second;
    if (!chain.has_partial) {
      chain.partial.first_scheduled_time = outcome.first_scheduled_time;
      chain.partial.first_token_time = outcome.first_token_time;
      chain.partial.prefill_compute_start = outcome.prefill_compute_start;
      chain.partial.prefill_replica = p;
      chain.has_partial = true;
    }
    chain.partial.prefill_input_tokens += outcome.prefill_input_tokens;
    chain.partial.reused_gpu_tokens += outcome.reused_gpu_tokens;
    chain.partial.reused_cpu_tokens += outcome.reused_cpu_tokens;
    chain.partial.reused_ssd_tokens += outcome.reused_ssd_tokens;
    chain.partial.reused_shared_tokens += outcome.reused_shared_tokens;
    chain.partial.recomputed_tokens += outcome.recomputed_tokens;
    chain.partial.generated_tokens += outcome.generated_tokens;
    chain.partial.suspensions += outcome.suspensions;

    // The decode-side remainder: the prefill side emitted the first output
    // token, which becomes the continuation's one-token "prompt".
    Request cont = outcome.request;
    cont.prefill_only = false;
    cont.handoff_continuation = true;
    cont.history_len =
        outcome.request.history_len + outcome.request.new_prompt_len;
    cont.new_prompt_len = 1;
    cont.target_output_len =
        outcome.request.target_output_len - outcome.generated_tokens;
    // Single-token responses finished entirely on the prefill side; the
    // stream below (if any) only places KV for the conversation's next turn.
    const bool state_only = cont.target_output_len <= 0;

    snapshot_views();
    const RoutingDecision decision = router->Route(cont, views);
    const int32_t d = decision.target;
    PENSIEVE_CHECK_GE(d, 0);
    PENSIEVE_CHECK_LT(d, static_cast<int32_t>(replicas.size()));

    Replica& prefiller = replicas[static_cast<size_t>(p)];
    if (d == p) {
      // Decode pool routed back onto the prefill replica (pool dead): the
      // KV is already resident here, no wire transfer.
      ++handoff.local_handoffs;
      if (state_only) {
        finish_chain(conv, nullptr, p, outcome.finish_time);
        return;
      }
      Replica::Delivery delivery;
      delivery.time = outcome.finish_time;
      delivery.request = cont;
      prefiller.Deliver(std::move(delivery));
      return;
    }

    MigratedKvState state = prefiller.engine().ExportConversationState(conv);
    // The stream writes layer by layer into the decode GPU's KV pool; no
    // host->device restore is owed when the continuation admits.
    state.gpu_direct = true;
    if (state.resident_tokens <= 0) {
      // Nothing resident to stream (evicted under pressure mid-prefill);
      // the decode side recomputes the whole prefix.
      ++handoff.local_handoffs;
      if (state_only) {
        finish_chain(conv, nullptr, p, outcome.finish_time);
        return;
      }
      Replica::Delivery delivery;
      delivery.time = outcome.finish_time;
      delivery.request = cont;
      delivery.migrated = state;  // kv_len bookkeeping only
      replicas[static_cast<size_t>(d)].Deliver(std::move(delivery));
      return;
    }

    KvStreamPlan plan;
    plan.src = p;
    plan.dst = d;
    plan.bytes = state.bytes;
    plan.num_layers = std::max<int64_t>(1, options.disagg.stream_layers);
    plan.compute_start = outcome.prefill_compute_start;
    plan.compute_end = outcome.finish_time;
    const KvStreamResult stream =
        StreamKvLayers(&interconnect, &nic_faults, plan);
    ++handoff.streams;
    handoff.stream_chunks += stream.chunks_delivered;
    handoff.stream_bytes += stream.bytes_delivered;
    if (stream.delivered) {
      handoff.overlap_saved_seconds += stream.unpipelined_done - stream.done;
      handoff.stream_wait_seconds +=
          std::max(0.0, stream.done - outcome.finish_time);
    } else {
      ++handoff.failed_streams;
      handoff.kv_tokens_lost += state.resident_tokens;
      faults.lost_kv_tokens += state.resident_tokens;
      state.resident_tokens = 0;
      state.bytes = 0.0;
    }
    chain.partial.handoff_stream_done = stream.done;
    if (state_only) {
      finish_chain(conv, nullptr, p, outcome.finish_time);
      // `chain` is dangling from here on.
    }

    HandoffStream inflight;
    inflight.conversation_id = conv;
    inflight.src = p;
    inflight.dst = d;
    inflight.state = state;
    inflight.continuation = cont;
    inflight.state_only = state_only;
    streams.push_back(std::move(inflight));
    SimEvent arrival;
    arrival.time = stream.done;
    arrival.kind = SimEventKind::kHandoffArrival;
    arrival.id = static_cast<int64_t>(streams.size()) - 1;
    events.Push(arrival);
  };

  // A KV stream's final layer landed (or its abandonment time passed):
  // admit the continuation at the decode replica with whatever survived.
  auto handle_handoff_arrival = [&](const SimEvent& event) {
    HandoffStream& s = streams[static_cast<size_t>(event.id)];
    s.arrived = true;
    Replica& dst = replicas[static_cast<size_t>(s.dst)];
    if (s.state_only) {
      if (dst.alive() && s.state.resident_tokens > 0) {
        Replica::Delivery delivery;
        delivery.time = event.time;
        delivery.request.conversation_id = s.conversation_id;
        delivery.migrated = s.state;
        delivery.state_only = true;
        handoff.streamed_tokens += s.state.resident_tokens;
        dst.Deliver(std::move(delivery));
      } else if (!dst.alive() && s.state.resident_tokens > 0) {
        // Landed on a corpse (the failure that would have voided the
        // payload hit after our send completed): the KV is simply lost.
        ++handoff.failed_streams;
        handoff.kv_tokens_lost += s.state.resident_tokens;
        faults.lost_kv_tokens += s.state.resident_tokens;
      }
      return;
    }
    if (!dst.alive()) {
      // The decode target died while the stream was in flight; the payload
      // was voided at fail time, and the continuation re-routes afresh.
      route_and_deliver(s.continuation, event.time, /*allow_migrate=*/false);
      return;
    }
    Replica::Delivery delivery;
    delivery.time = event.time;
    delivery.request = s.continuation;
    delivery.migrated = s.state;
    if (s.state.resident_tokens > 0) {
      handoff.streamed_tokens += s.state.resident_tokens;
    }
    dst.Deliver(std::move(delivery));
  };

  while (true) {
    const double t_event = events.NextTime();
    double t_replica = kNever;
    int32_t next_replica = -1;
    for (int32_t i = 0; i < static_cast<int32_t>(replicas.size()); ++i) {
      const double t = replicas[static_cast<size_t>(i)].NextEventTime();
      if (t < t_replica) {
        t_replica = t;
        next_replica = i;
      }
    }

    // Queued events outrank replica steps on ties: the single driver
    // delivers everything due before stepping, and routers should see the
    // freshest queue state.
    if (t_event <= t_replica) {
      if (events.Empty()) {
        break;  // both sides quiescent
      }
      const SimEvent event = events.Pop();
      switch (event.kind) {
        case SimEventKind::kArrival:
          route_and_deliver(arrivals.BuildRequest(event), event.time,
                            /*allow_migrate=*/true);
          break;
        case SimEventKind::kReplicaFail:
          handle_fail(event);
          break;
        case SimEventKind::kReplicaRecover:
          handle_recover(event);
          break;
        case SimEventKind::kHandoffArrival:
          handle_handoff_arrival(event);
          break;
      }
      continue;
    }

    if (next_replica < 0) {
      break;
    }
    Replica::StepOutcome step =
        replicas[static_cast<size_t>(next_replica)].StepOnce(
            options.step_trace);
    if (!step.progressed) {
      continue;
    }
    for (const RequestOutcome& outcome : step.result.finished) {
      if (outcome.request.prefill_only) {
        handle_prefill_finish(outcome, next_replica);
        continue;
      }
      if (outcome.request.handoff_continuation) {
        finish_chain(outcome.request.conversation_id, &outcome, next_replica,
                     outcome.finish_time);
        continue;
      }
      if (options.outcomes != nullptr) {
        options.outcomes->push_back(outcome);
      }
      // Schedule the conversation's next turn after the user's think time.
      arrivals.OnRequestFinished(outcome);
    }
    ++total_steps;
    if (options.max_steps > 0 && total_steps >= options.max_steps) {
      PENSIEVE_LOG_WARNING << "cluster experiment hit max_steps="
                           << options.max_steps;
      break;
    }
  }

  for (const Replica& r : replicas) {
    if (r.alive() && r.engine().HasWork()) {
      PENSIEVE_LOG_WARNING << "replica " << r.id()
                           << " still has work at experiment end (stalled)";
    }
  }
  if (!orphans.empty()) {
    PENSIEVE_LOG_WARNING << orphans.size()
                         << " request(s) orphaned by replica failures never "
                            "ran (no recovery scheduled)";
  }

  double global_last_finish = 0.0;
  for (const Replica& r : replicas) {
    global_last_finish = std::max(global_last_finish, r.last_finish_time());
  }
  // Same steady-state window as the single driver, by construction.
  const SteadyStateWindow window =
      ComputeSteadyStateWindow(ArrivalSpan(trace), global_last_finish);

  ClusterSummary summary;
  summary.router_name = router->name();
  summary.num_replicas = options.num_replicas;
  std::vector<const MetricsCollector*> collectors;
  collectors.reserve(replicas.size());
  for (const Replica& r : replicas) {
    summary.replicas.push_back(r.metrics().Summarize(
        r.engine_name(), r.last_finish_time(), r.stats(), window.begin,
        window.end));
    collectors.push_back(&r.metrics());
    summary.migration.migrated_tokens += r.stats().migrated_in_tokens;
  }
  // The combined summary merges the per-replica collectors in place —
  // outcomes are stored once, in their replica's collector.
  summary.cluster = MetricsCollector::SummarizeMerged(
      collectors, std::string("cluster/") + router->name(), global_last_finish,
      CombineEngineStats(summary.replicas), window.begin, window.end);
  summary.load_imbalance = LoadImbalance(summary.replicas);
  summary.migration.migrations = migration.migrations;
  summary.migration.migrated_bytes = migration.migrated_bytes;
  summary.migration.migration_stall_seconds = migration.migration_stall_seconds;
  summary.migration.failed_migrations = migration.failed_migrations;
  summary.migration.kv_tokens_lost_in_transit =
      migration.kv_tokens_lost_in_transit;
  summary.migration.rehomes = router->counters().rehomes;
  summary.migration.overload_queued = router->counters().overload_queued;
  summary.faults = faults;
  summary.nic_link_faults = nic_faults.stats();
  summary.handoff = handoff;
  if (options.disagg.enabled) {
    summary.prefill_replicas =
        std::min(options.disagg.prefill_replicas, options.num_replicas - 1);
  }
  return summary;
}

}  // namespace pensieve

#include "src/cluster/cluster_driver.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/cluster/replica.h"
#include "src/common/logging.h"
#include "src/serving/experiment_core.h"
#include "src/sim/event_loop.h"
#include "src/sim/kv_stream.h"

namespace pensieve {

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

// One prefill->decode KV stream on the NIC (DESIGN.md §13). Indexed by its
// kHandoffArrival event id; the entry outlives the stream so a replica
// failure between launch and arrival can void the payload in place.
struct HandoffStream {
  int64_t conversation_id = 0;
  int32_t src = -1;
  int32_t dst = -1;
  MigratedKvState state;
  Request continuation;
  bool state_only = false;  // nothing left to decode; KV placement only
  bool cancelled = false;   // an endpoint died mid-stream; payload lost
  bool arrived = false;     // the kHandoffArrival event has been processed
};

// Prefill-side half of a handed-off turn, waiting to be merged with the
// decode-side half into one end-to-end outcome. A conversation has at most
// one turn in flight, so at most one chain.
struct HandoffChain {
  Request original;
  RequestOutcome partial;
  bool has_partial = false;
};

}  // namespace

ClusterSummary RunClusterExperiment(const ReplicaEngineFactory& make_engine,
                                    const WorkloadTrace& trace,
                                    const ClusterOptions& options) {
  PENSIEVE_CHECK(make_engine != nullptr);
  PENSIEVE_CHECK_GT(options.num_replicas, 0);

  std::vector<Replica> replicas;
  replicas.reserve(static_cast<size_t>(options.num_replicas));
  for (int32_t i = 0; i < options.num_replicas; ++i) {
    replicas.emplace_back(i, make_engine(i));
  }
  std::unique_ptr<Router> router;
  if (options.disagg.enabled) {
    PENSIEVE_CHECK_GE(options.num_replicas, 2)
        << "disaggregation needs at least one prefill and one decode replica";
    DisaggRouterConfig config;
    config.prefill_replicas = options.disagg.prefill_replicas;
    config.min_handoff_tokens = options.disagg.min_handoff_tokens;
    router = MakeDisaggRouter(config);
  } else {
    router = MakeRouter(options.router);
  }
  ClusterInterconnect interconnect(options.num_replicas, options.interconnect);
  LinkFaultInjector nic_faults(options.fault_seed, options.nic_fault_profile,
                               options.fault_retry);

  // --- Elastic replica set (DESIGN.md §14) --------------------------------
  const ElasticOptions& elastic = options.elastic;
  HealthMonitor health(options.num_replicas, elastic.health);
  Autoscaler scaler(elastic.autoscale);
  // Probes are control-plane traffic: they share the NIC's latency/bandwidth
  // figures but never occupy data ports, and each probe gets exactly one
  // attempt (the next round is the retry). The injector seed mixes the
  // cluster fault seed with a probe salt so arming probes never perturbs the
  // data-plane fault draw sequence.
  LinkRetryPolicy probe_retry;
  probe_retry.max_attempts = 1;
  LinkFaultInjector probe_faults(options.fault_seed ^ elastic.health.probe_seed,
                                 elastic.health.probe_faults, probe_retry);
  // Active set membership (autoscaling). Inactive slots hold no engine; a
  // scale-up recovers the lowest inactive slot with a fresh engine.
  std::vector<bool> active(replicas.size(), true);
  AutoscaleStats autoscale_stats;
  if (elastic.autoscale.enabled) {
    PENSIEVE_CHECK(!options.disagg.enabled)
        << "autoscaling is incompatible with disaggregated prefill (the "
           "prefill/decode pools are statically partitioned)";
    PENSIEVE_CHECK_LE(elastic.autoscale.max_replicas, options.num_replicas);
    for (int32_t i = elastic.autoscale.min_replicas; i < options.num_replicas;
         ++i) {
      replicas[static_cast<size_t>(i)].Dormant();
      active[static_cast<size_t>(i)] = false;
      router->NotifyReplicaDown(i);
    }
  }
  auto dispatchable = [&](int32_t i) {
    return replicas[static_cast<size_t>(i)].alive() &&
           active[static_cast<size_t>(i)] && !health.Quarantined(i);
  };
  auto active_alive_count = [&]() {
    int32_t n = 0;
    for (size_t i = 0; i < replicas.size(); ++i) {
      if (active[i] && replicas[i].alive()) {
        ++n;
      }
    }
    return n;
  };
  autoscale_stats.peak_active_replicas = active_alive_count();
  autoscale_stats.min_active_replicas = autoscale_stats.peak_active_replicas;
  // Peer-spill stash directory: per conversation, the contiguous token
  // segment [first_token, last_token) parked in `peer`'s CPU tier.
  PeerSpillStats spill;
  struct StashEntry {
    int32_t peer = -1;
    int64_t first_token = 0;
    int64_t last_token = 0;
    double bytes = 0.0;
  };
  std::unordered_map<int64_t, StashEntry> stash;
  int64_t stash_tokens = 0;

  // One typed event queue drives the run: arrivals and scheduled faults pop
  // in deterministic order (arrival < fail < recover on time ties), and
  // replica steps rank after all of them so routers always see fresh state.
  EventQueue events;
  ArrivalProcess arrivals(trace, &events);
  for (const ReplicaFault& fault : options.faults) {
    PENSIEVE_CHECK_GE(fault.replica_id, 0);
    PENSIEVE_CHECK_LT(fault.replica_id, options.num_replicas);
    PENSIEVE_CHECK_GE(fault.time, 0.0);
    SimEvent event;
    event.time = fault.time;
    event.kind = fault.recover ? SimEventKind::kReplicaRecover
                               : SimEventKind::kReplicaFail;
    event.id = fault.replica_id;
    events.Push(event);
  }

  int64_t total_steps = 0;
  MigrationStats migration;
  FaultStats faults;
  // Requests with no alive replica to run on; flushed at the next recovery.
  std::vector<Request> orphans;
  HandoffStats handoff;
  // Prefill-side halves waiting for their decode halves, by conversation.
  std::unordered_map<int64_t, HandoffChain> chains;
  // Every KV stream launched this run; kHandoffArrival events index this.
  std::vector<HandoffStream> streams;

  std::vector<ReplicaView> views(replicas.size());
  auto snapshot_views = [&]() {
    for (size_t i = 0; i < replicas.size(); ++i) {
      views[i].alive = replicas[i].alive();
      views[i].engine = views[i].alive ? &replicas[i].engine() : nullptr;
      views[i].load = views[i].alive ? replicas[i].engine().Load() : EngineLoad{};
      // Routed-but-undelivered work is invisible to the engine; without it a
      // burst dispatched between replica steps sees every load as zero and
      // herds. Folded into the weighted term only, so unweighted
      // (session-affinity / --disagg=off) decisions are untouched.
      views[i].load.queued_uncached_prefill_tokens +=
          replicas[i].pending_request_tokens();
    }
    bool any_dispatchable = false;
    for (size_t i = 0; i < replicas.size(); ++i) {
      views[i].dispatchable =
          views[i].alive && active[i] &&
          !health.Quarantined(static_cast<int32_t>(i));
      any_dispatchable = any_dispatchable || views[i].dispatchable;
    }
    if (!any_dispatchable) {
      // Emergency: every alive replica is quarantined (or inactive). Routing
      // to a sick replica beats orphaning the request — quarantine is a
      // suspicion, not a death certificate.
      for (size_t i = 0; i < replicas.size(); ++i) {
        views[i].dispatchable = views[i].alive;
      }
    }
  };
  auto any_alive = [&]() {
    for (const Replica& r : replicas) {
      if (r.alive()) {
        return true;
      }
    }
    return false;
  };

  // Peer-spill fetch-back, applied at route time: if the routed
  // conversation has a stash segment parked on a peer, pull it back over the
  // NIC (or adopt it in place when the request landed on the stash-holding
  // peer) so the segment rejoins the dropped prefix before admission. Every
  // path disposes of the stash entry exactly once: fetched, degraded (NIC
  // fault), or invalidated (mismatch / migrated payload).
  auto fetch_stash = [&](Replica::Delivery* delivery, int32_t target,
                         double now) {
    auto it = stash.find(delivery->request.conversation_id);
    if (it == stash.end()) {
      return;
    }
    const StashEntry entry = it->second;
    const int64_t len = entry.last_token - entry.first_token;
    stash_tokens -= len;
    stash.erase(it);
    if (!delivery->migrated.Empty()) {
      // A migration is carrying the live KV; whatever frontier the import
      // creates won't line up with the stash segment. Hole rule: invalidate
      // rather than risk a gapped prefix.
      spill.invalidated_tokens += len;
      if (replicas[static_cast<size_t>(entry.peer)].alive()) {
        replicas[static_cast<size_t>(entry.peer)]
            .engine()
            .ReleaseForeignCpuTokens(len);
      }
      return;
    }
    Engine& target_engine = replicas[static_cast<size_t>(target)].engine();
    if (entry.peer == target) {
      // The request landed where its stash lives: adopt in place, no wire.
      target_engine.ReleaseForeignCpuTokens(len);
      const int64_t adopted = target_engine.AcceptPeerPrefix(
          delivery->request.conversation_id, entry.first_token,
          entry.last_token, delivery->request.history_len, now);
      ++spill.fetchbacks;
      spill.fetched_tokens += adopted;
      spill.invalidated_tokens += len - adopted;
      return;
    }
    if (!replicas[static_cast<size_t>(entry.peer)].alive()) {
      // Stale entry (the peer died and invalidation raced); nothing to pull.
      spill.invalidated_tokens += len;
      return;
    }
    const LinkTransferOutcome out = nic_faults.Transfer(
        now, entry.bytes, [&](double start, double bytes) {
          return interconnect.ScheduleTransfer(entry.peer, target, start,
                                               bytes);
        });
    replicas[static_cast<size_t>(entry.peer)].engine().ReleaseForeignCpuTokens(
        len);
    if (!out.delivered) {
      ++spill.failed_transfers;
      spill.degraded_tokens += len;  // recomputes at the target
      return;
    }
    // The request waits for its stash like it would for a migration.
    delivery->time = std::max(delivery->time, out.done);
    const int64_t adopted = target_engine.AcceptPeerPrefix(
        delivery->request.conversation_id, entry.first_token, entry.last_token,
        delivery->request.history_len, now);
    ++spill.fetchbacks;
    spill.fetched_bytes += entry.bytes;
    spill.fetched_tokens += adopted;
    spill.invalidated_tokens += len - adopted;
  };

  // Routes `req` at virtual time `now` and delivers it to the chosen
  // replica. `allow_migrate` is false for crash-rerouted requests: the KV
  // they would have migrated died with their replica.
  auto route_and_deliver = [&](const Request& req, double now,
                               bool allow_migrate) {
    if (!any_alive()) {
      orphans.push_back(req);
      ++faults.orphaned_requests;
      return;
    }
    snapshot_views();
    const RoutingDecision decision = router->Route(req, views);
    PENSIEVE_CHECK_GE(decision.target, 0);
    PENSIEVE_CHECK_LT(decision.target, static_cast<int32_t>(replicas.size()));
    PENSIEVE_CHECK(views[static_cast<size_t>(decision.target)].alive)
        << router->name() << " routed request " << req.request_id
        << " to dead replica " << decision.target;

    Replica::Delivery delivery;
    delivery.time = now;
    delivery.request = req;
    if (options.disagg.enabled && !req.handoff_continuation) {
      // The router decides afresh at every dispatch (including crash
      // re-drains) whether this turn prefills remotely or runs colocated.
      delivery.request.prefill_only = decision.prefill_handoff;
      if (decision.prefill_handoff) {
        ++handoff.handoff_requests;
        // (Re)arm the merge chain. A conversation has at most one turn in
        // flight, so any existing chain belongs to an earlier incarnation
        // of this same turn (its prefill replica crashed before finishing).
        HandoffChain& chain = chains[req.conversation_id];
        const bool keep_partial = chain.has_partial;
        if (!keep_partial) {
          chain.original = req;
          chain.original.prefill_only = false;
          chain.partial = RequestOutcome{};
          chain.partial.request = chain.original;
        }
      } else {
        ++handoff.colocated_requests;
      }
    }
    if (allow_migrate && decision.migrate && decision.source >= 0 &&
        decision.source != decision.target &&
        replicas[static_cast<size_t>(decision.source)].alive()) {
      Replica& source = replicas[static_cast<size_t>(decision.source)];
      MigratedKvState state =
          source.engine().ExportConversationState(req.conversation_id);
      if (state.resident_tokens > 0) {
        // The request cannot start at its new home before its KV lands (or
        // the transfer is abandoned; either way it waits out every attempt).
        const LinkTransferOutcome out = nic_faults.Transfer(
            now, state.bytes, [&](double start, double bytes) {
              return interconnect.ScheduleTransfer(decision.source,
                                                   decision.target, start, bytes);
            });
        delivery.time = out.done;
        delivery.migration_stall = out.done - now;
        ++migration.migrations;
        migration.migration_stall_seconds += delivery.migration_stall;
        if (out.delivered) {
          migration.migrated_bytes += state.bytes;
        } else {
          // KV lost in transit: the conversation is still re-homed, but
          // arrives with bookkeeping only — its history recomputes at the
          // destination through the dropped-prefix path.
          ++migration.failed_migrations;
          migration.kv_tokens_lost_in_transit += state.resident_tokens;
          faults.lost_kv_tokens += state.resident_tokens;
          state.resident_tokens = 0;
          state.bytes = 0.0;
        }
      }
      delivery.migrated = state;
    }
    if (elastic.peer_spill.enabled) {
      fetch_stash(&delivery, decision.target, now);
    }
    replicas[static_cast<size_t>(decision.target)].Deliver(
        std::move(delivery));
  };

  // Re-routes one delivery drained off a still-alive replica `src`
  // (quarantine or scale-down retirement), hand-carrying its KV: an
  // in-flight migrated payload is re-forwarded as is, otherwise the
  // conversation's cached state is exported from `src`. The extra hop is
  // charged on the NIC exactly like a router-initiated migration.
  // `drained_kv_tokens` accumulates the tokens that reached a new home.
  auto reroute_drained = [&](Replica::Delivery d, int32_t src, double now,
                             int64_t* drained_kv_tokens) {
    const double base = std::max(now, d.time);
    if (!any_alive()) {
      orphans.push_back(d.request);
      ++faults.orphaned_requests;
      return;
    }
    MigratedKvState state = d.migrated;
    if (state.Empty() && replicas[static_cast<size_t>(src)].alive()) {
      state = replicas[static_cast<size_t>(src)].engine().ExportConversationState(
          d.request.conversation_id);
      // A request drained mid-decode leaves KV for the tokens it had already
      // generated this turn. That progress restarts from scratch at the new
      // home (it is in lost_generated_tokens), so the trailing decode KV
      // must not travel: the import would otherwise cover more raw history
      // than the restarted request has.
      const int64_t excess = state.kv_len - d.request.history_len;
      if (excess > 0) {
        const int64_t kept =
            std::max<int64_t>(0, state.resident_tokens - excess);
        if (state.resident_tokens > 0) {
          state.bytes *= static_cast<double>(kept) /
                         static_cast<double>(state.resident_tokens);
        }
        state.kv_len = d.request.history_len;
        state.resident_tokens = kept;
      }
    }
    snapshot_views();
    const RoutingDecision decision = router->Route(d.request, views);
    PENSIEVE_CHECK_GE(decision.target, 0);
    PENSIEVE_CHECK_LT(decision.target, static_cast<int32_t>(replicas.size()));
    PENSIEVE_CHECK(views[static_cast<size_t>(decision.target)].alive);

    Replica::Delivery out;
    out.time = base;
    out.request = d.request;
    if (state.resident_tokens > 0 && decision.target != src) {
      const LinkTransferOutcome t = nic_faults.Transfer(
          base, state.bytes, [&](double start, double bytes) {
            return interconnect.ScheduleTransfer(src, decision.target, start,
                                                 bytes);
          });
      out.time = t.done;
      out.migration_stall = t.done - base;
      ++migration.migrations;
      migration.migration_stall_seconds += out.migration_stall;
      if (t.delivered) {
        migration.migrated_bytes += state.bytes;
        *drained_kv_tokens += state.resident_tokens;
      } else {
        ++migration.failed_migrations;
        migration.kv_tokens_lost_in_transit += state.resident_tokens;
        faults.lost_kv_tokens += state.resident_tokens;
        state.resident_tokens = 0;
        state.bytes = 0.0;
      }
    }
    out.migrated = state;
    if (elastic.peer_spill.enabled) {
      fetch_stash(&out, decision.target, base);
    }
    replicas[static_cast<size_t>(decision.target)].Deliver(std::move(out));
  };

  auto handle_fail = [&](const SimEvent& event) {
    Replica& victim = replicas[static_cast<size_t>(event.id)];
    if (!victim.alive()) {
      PENSIEVE_LOG_WARNING << "fail event for already-dead replica "
                           << event.id << " at t=" << event.time << "; ignored";
      return;
    }
    // The router forgets the replica first so re-routed (and all future)
    // requests pick an alive home.
    router->NotifyReplicaDown(static_cast<int32_t>(event.id));
    // Probe history dies with the replica; it restarts healthy on recovery.
    health.Reset(static_cast<int32_t>(event.id));
    // Stash segments parked on the dead replica died with its CPU tier.
    for (auto it = stash.begin(); it != stash.end();) {
      if (it->second.peer == static_cast<int32_t>(event.id)) {
        const int64_t len = it->second.last_token - it->second.first_token;
        spill.invalidated_tokens += len;
        stash_tokens -= len;
        it = stash.erase(it);
      } else {
        ++it;
      }
    }
    Replica::FailureDrain drain = victim.Fail(event.time);
    ++faults.failures;
    faults.lost_kv_tokens += drain.lost_kv_tokens;
    faults.lost_generated_tokens += drain.lost_generated_tokens;
    faults.rerouted_requests += static_cast<int64_t>(drain.deliveries.size());
    for (const Replica::Delivery& d : drain.deliveries) {
      route_and_deliver(d.request, event.time, /*allow_migrate=*/false);
    }
    // KV streams touching the dead replica die mid-flight: the payload is
    // voided here, but the arrival event still fires and delivers (or
    // re-routes) the continuation with bookkeeping only, so the decode side
    // degrades to dropped-prefix recompute instead of dropping the request.
    for (HandoffStream& s : streams) {
      if (s.arrived || s.cancelled || s.state.resident_tokens <= 0) {
        continue;
      }
      if (s.src != static_cast<int32_t>(event.id) &&
          s.dst != static_cast<int32_t>(event.id)) {
        continue;
      }
      s.cancelled = true;
      ++handoff.failed_streams;
      handoff.kv_tokens_lost += s.state.resident_tokens;
      faults.lost_kv_tokens += s.state.resident_tokens;
      s.state.resident_tokens = 0;
      s.state.bytes = 0.0;
    }
  };

  auto handle_recover = [&](const SimEvent& event) {
    Replica& replica = replicas[static_cast<size_t>(event.id)];
    if (replica.alive()) {
      PENSIEVE_LOG_WARNING << "recover event for alive replica " << event.id
                           << " at t=" << event.time << "; ignored";
      return;
    }
    replica.Recover(make_engine(static_cast<int32_t>(event.id)), event.time);
    router->NotifyReplicaUp(static_cast<int32_t>(event.id));
    health.Reset(static_cast<int32_t>(event.id));
    // A scheduled recovery targeting a dormant/retired slot puts it back in
    // the active set (it is serving now, whatever the autoscaler thinks).
    active[static_cast<size_t>(event.id)] = true;
    ++faults.recoveries;
    // Requests stranded while the whole cluster was down run here.
    std::vector<Request> stranded;
    stranded.swap(orphans);
    for (const Request& req : stranded) {
      route_and_deliver(req, event.time, /*allow_migrate=*/false);
    }
  };

  // Quarantine: the replica is alive but failing probes. It leaves the
  // dispatch set, and everything it still owes is proactively drained over
  // the migration path — requests re-route with their KV hand-carried, so
  // a later hard failure of this replica destroys far less.
  auto quarantine_replica = [&](int32_t id, double now) {
    router->NotifyReplicaDown(id);
    Replica& victim = replicas[static_cast<size_t>(id)];
    if (!victim.alive()) {
      return;  // already down; the failure path drained it
    }
    HealthStats& hs = health.stats();
    Replica::LiveDrain drain = victim.DrainLive(now, /*keep_state_only=*/true);
    hs.drained_requests += static_cast<int64_t>(drain.deliveries.size());
    hs.lost_generated_tokens += drain.lost_generated_tokens;
    for (Replica::Delivery& d : drain.deliveries) {
      if (options.disagg.enabled) {
        // Disagg re-dispatch must re-run the handoff chain logic; the
        // request re-routes without a KV carry (any in-flight payload is
        // voided, mirroring the crash path).
        if (!d.migrated.Empty()) {
          faults.lost_kv_tokens += d.migrated.resident_tokens;
        }
        route_and_deliver(d.request, std::max(now, d.time),
                          /*allow_migrate=*/false);
      } else {
        reroute_drained(std::move(d), id, now, &hs.drained_kv_tokens);
      }
    }
    // KV streams aimed at the quarantined replica are voided — their payload
    // would land on a sick target. The source side of a stream stays: the
    // quarantined replica is alive and keeps streaming what it already owes.
    for (HandoffStream& s : streams) {
      if (s.arrived || s.cancelled || s.state.resident_tokens <= 0 ||
          s.dst != id) {
        continue;
      }
      s.cancelled = true;
      ++handoff.failed_streams;
      ++hs.voided_streams;
      handoff.kv_tokens_lost += s.state.resident_tokens;
      faults.lost_kv_tokens += s.state.resident_tokens;
      s.state.resident_tokens = 0;
      s.state.bytes = 0.0;
    }
  };

  // True while re-arming a control-plane timer could still matter: any
  // non-timer event pending, any replica with a finite next-event time, or
  // stranded work a future scale-up could rescue. When false, the timer lets
  // itself lapse so the run can terminate.
  auto cluster_busy = [&]() {
    const int64_t timers =
        events.PendingOfKind(SimEventKind::kHealthProbe) +
        events.PendingOfKind(SimEventKind::kAutoscale);
    if (static_cast<int64_t>(events.Size()) > timers) {
      return true;
    }
    for (const Replica& r : replicas) {
      if (r.NextEventTime() < kNever) {
        return true;
      }
    }
    if (elastic.autoscale.enabled && !orphans.empty()) {
      for (size_t i = 0; i < replicas.size(); ++i) {
        if (!active[i]) {
          return true;  // a scale-up could still rescue the orphans
        }
      }
    }
    return false;
  };
  auto arm_timer = [&](SimEventKind kind, double time) {
    SimEvent e;
    e.time = time;
    e.kind = kind;
    events.Push(e);
  };

  // One probe round: every alive, active replica is probed once on the NIC
  // with a single attempt; ok means delivered within the probe timeout. A
  // sick window forces the verdict to failed *after* the draw, so arming
  // sick windows never shifts the probe RNG sequence.
  auto handle_probe = [&](const SimEvent& event) {
    const double now = event.time;
    for (int32_t i = 0; i < static_cast<int32_t>(replicas.size()); ++i) {
      if (!replicas[static_cast<size_t>(i)].alive() ||
          !active[static_cast<size_t>(i)]) {
        continue;  // dead and dormant replicas are not probed
      }
      const LinkTransferOutcome out = probe_faults.Transfer(
          now, elastic.health.probe_bytes, [&](double start, double bytes) {
            return start + interconnect.spec().latency +
                   bytes / interconnect.spec().bandwidth;
          });
      bool ok =
          out.delivered && (out.done - now) <= elastic.health.probe_timeout;
      if (health.InSickWindow(i, now)) {
        ok = false;
      }
      switch (health.RecordProbe(i, ok)) {
        case HealthMonitor::Transition::kQuarantine:
          quarantine_replica(i, now);
          break;
        case HealthMonitor::Transition::kReinstate:
          router->NotifyReplicaUp(i);
          break;
        default:
          break;
      }
    }
    if (cluster_busy()) {
      arm_timer(SimEventKind::kHealthProbe,
                now + elastic.health.probe_interval);
    }
  };

  auto scale_up = [&](double now, int64_t signal_tokens, double p99) {
    int32_t slot = -1;
    for (int32_t i = 0; i < static_cast<int32_t>(replicas.size()); ++i) {
      if (!active[static_cast<size_t>(i)]) {
        slot = i;
        break;
      }
    }
    if (slot < 0) {
      return;  // crashed-but-active replicas keep their slots
    }
    replicas[static_cast<size_t>(slot)].Recover(make_engine(slot), now);
    active[static_cast<size_t>(slot)] = true;
    health.Reset(slot);
    router->NotifyReplicaUp(slot);
    ++autoscale_stats.scale_ups;
    autoscale_stats.events.push_back(
        ScaleEvent{now, slot, /*up=*/true, signal_tokens, p99});
    scaler.NoteScaled(now);
    // Work stranded while the active set was empty runs here.
    std::vector<Request> stranded;
    stranded.swap(orphans);
    for (const Request& req : stranded) {
      route_and_deliver(req, now, /*allow_migrate=*/false);
    }
  };

  auto scale_down = [&](double now, int64_t signal_tokens, double p99) {
    int32_t victim = -1;
    for (int32_t i = static_cast<int32_t>(replicas.size()) - 1; i >= 0; --i) {
      if (active[static_cast<size_t>(i)] &&
          replicas[static_cast<size_t>(i)].alive()) {
        victim = i;
        break;
      }
    }
    if (victim < 0) {
      return;
    }
    // The drained work needs somewhere dispatchable to land; if every other
    // replica is quarantined or down, keep the victim in service.
    bool other_home = false;
    for (int32_t i = 0; i < static_cast<int32_t>(replicas.size()); ++i) {
      if (i != victim && dispatchable(i)) {
        other_home = true;
        break;
      }
    }
    if (!other_home) {
      return;
    }
    router->NotifyReplicaDown(victim);
    active[static_cast<size_t>(victim)] = false;
    Replica& r = replicas[static_cast<size_t>(victim)];
    Replica::LiveDrain drain = r.DrainLive(now, /*keep_state_only=*/false);
    autoscale_stats.drained_requests +=
        static_cast<int64_t>(drain.deliveries.size());
    autoscale_stats.lost_generated_tokens += drain.lost_generated_tokens;
    // State-only payloads discarded with the retiring replica are a
    // deliberate release, not a fault.
    autoscale_stats.released_kv_tokens += drain.dropped_state_tokens;
    for (Replica::Delivery& d : drain.deliveries) {
      reroute_drained(std::move(d), victim, now,
                      &autoscale_stats.drained_kv_tokens);
    }
    // Stash segments parked on the victim retire with its engine.
    for (auto it = stash.begin(); it != stash.end();) {
      if (it->second.peer == victim) {
        const int64_t len = it->second.last_token - it->second.first_token;
        spill.invalidated_tokens += len;
        stash_tokens -= len;
        it = stash.erase(it);
      } else {
        ++it;
      }
    }
    autoscale_stats.released_kv_tokens += r.Retire(now);
    health.Reset(victim);
    ++autoscale_stats.scale_downs;
    autoscale_stats.events.push_back(
        ScaleEvent{now, victim, /*up=*/false, signal_tokens, p99});
    scaler.NoteScaled(now);
  };

  auto handle_autoscale = [&](const SimEvent& event) {
    const double now = event.time;
    snapshot_views();
    int64_t total_weighted = 0;
    int32_t n_active = 0;
    for (size_t i = 0; i < replicas.size(); ++i) {
      if (active[i] && replicas[i].alive()) {
        total_weighted += views[i].load.WeightedTokens();
        ++n_active;
      }
    }
    const double p99 = scaler.RecentP99();
    const int64_t per_replica =
        n_active > 0 ? total_weighted / n_active : total_weighted;
    if (n_active < elastic.autoscale.min_replicas) {
      // Below the floor (crashes ate into the active set): restore it
      // immediately, cooldown notwithstanding — this is a safety floor, not
      // a load decision.
      scale_up(now, per_replica, p99);
    } else {
      switch (scaler.Decide(now, total_weighted, n_active)) {
        case Autoscaler::Decision::kUp:
          scale_up(now, per_replica, p99);
          break;
        case Autoscaler::Decision::kDown:
          scale_down(now, per_replica, p99);
          break;
        case Autoscaler::Decision::kHold:
          break;
      }
    }
    const int32_t after = active_alive_count();
    autoscale_stats.peak_active_replicas =
        std::max(autoscale_stats.peak_active_replicas, after);
    autoscale_stats.min_active_replicas =
        std::min(autoscale_stats.min_active_replicas, after);
    if (cluster_busy()) {
      arm_timer(SimEventKind::kAutoscale,
                now + elastic.autoscale.check_interval);
    }
  };

  // A CPU-tier eviction the stepped replica offered out: pick the peer with
  // the most idle CPU budget, reserve, and ship the chunk over the NIC. The
  // chunk was dropped locally either way, so a declined or failed offer
  // costs nothing beyond the recompute the drop already implied.
  auto handle_spill_offer = [&](int32_t src, const PeerSpillOffer& o,
                                double now) {
    ++spill.offers;
    auto it = stash.find(o.conversation_id);
    if (it != stash.end() && o.first_token != it->second.last_token) {
      // Non-contiguous with the existing stash (the frontier moved past it
      // some other way). Hole rule: invalidate before stashing afresh.
      const int64_t len = it->second.last_token - it->second.first_token;
      spill.invalidated_tokens += len;
      stash_tokens -= len;
      if (replicas[static_cast<size_t>(it->second.peer)].alive()) {
        replicas[static_cast<size_t>(it->second.peer)]
            .engine()
            .ReleaseForeignCpuTokens(len);
      }
      stash.erase(it);
      it = stash.end();
    }
    if (it != stash.end()) {
      // Extend the existing segment on its peer.
      StashEntry& entry = it->second;
      if (!dispatchable(entry.peer) ||
          replicas[static_cast<size_t>(entry.peer)]
                  .engine()
                  .ReserveForeignCpuTokens(o.num_tokens) == 0) {
        ++spill.declined_offers;
        return;
      }
      const LinkTransferOutcome out = nic_faults.Transfer(
          now, o.bytes, [&](double start, double bytes) {
            return interconnect.ScheduleTransfer(src, entry.peer, start,
                                                 bytes);
          });
      if (!out.delivered) {
        replicas[static_cast<size_t>(entry.peer)]
            .engine()
            .ReleaseForeignCpuTokens(o.num_tokens);
        ++spill.failed_transfers;
        return;
      }
      entry.last_token += o.num_tokens;
      entry.bytes += o.bytes;
      ++spill.spills;
      spill.spilled_tokens += o.num_tokens;
      spill.spilled_bytes += o.bytes;
      stash_tokens += o.num_tokens;
      spill.stash_peak_tokens =
          std::max(spill.stash_peak_tokens, stash_tokens);
      return;
    }
    // Fresh segment: the healthiest-looking peer with the most idle CPU.
    int32_t best = -1;
    int64_t best_idle = 0;
    for (int32_t j = 0; j < static_cast<int32_t>(replicas.size()); ++j) {
      if (j == src || !dispatchable(j)) {
        continue;
      }
      const int64_t idle =
          replicas[static_cast<size_t>(j)].engine().IdleCpuCacheTokens();
      if (idle > best_idle) {
        best_idle = idle;
        best = j;
      }
    }
    if (best < 0 || best_idle < o.num_tokens ||
        replicas[static_cast<size_t>(best)].engine().ReserveForeignCpuTokens(
            o.num_tokens) == 0) {
      ++spill.declined_offers;
      return;
    }
    const LinkTransferOutcome out = nic_faults.Transfer(
        now, o.bytes, [&](double start, double bytes) {
          return interconnect.ScheduleTransfer(src, best, start, bytes);
        });
    if (!out.delivered) {
      replicas[static_cast<size_t>(best)].engine().ReleaseForeignCpuTokens(
          o.num_tokens);
      ++spill.failed_transfers;
      return;
    }
    StashEntry entry;
    entry.peer = best;
    entry.first_token = o.first_token;
    entry.last_token = o.first_token + o.num_tokens;
    entry.bytes = o.bytes;
    stash[o.conversation_id] = entry;
    ++spill.spills;
    spill.spilled_tokens += o.num_tokens;
    spill.spilled_bytes += o.bytes;
    stash_tokens += o.num_tokens;
    spill.stash_peak_tokens = std::max(spill.stash_peak_tokens, stash_tokens);
  };

  // Merges the prefill- and decode-side halves of a handed-off turn into
  // one end-to-end outcome and records it on the finishing replica.
  // `decode_half` is null for single-token responses that finished entirely
  // on the prefill side.
  auto finish_chain = [&](int64_t conv, const RequestOutcome* decode_half,
                          int32_t finishing_replica, double finish_time) {
    auto it = chains.find(conv);
    PENSIEVE_CHECK(it != chains.end())
        << "handoff half finished with no chain for conversation " << conv;
    RequestOutcome merged = it->second.partial;
    merged.request = it->second.original;
    merged.finish_time = finish_time;
    if (decode_half != nullptr) {
      merged.prefill_input_tokens += decode_half->prefill_input_tokens;
      merged.reused_gpu_tokens += decode_half->reused_gpu_tokens;
      merged.reused_cpu_tokens += decode_half->reused_cpu_tokens;
      merged.reused_ssd_tokens += decode_half->reused_ssd_tokens;
      merged.reused_shared_tokens += decode_half->reused_shared_tokens;
      merged.recomputed_tokens += decode_half->recomputed_tokens;
      merged.generated_tokens += decode_half->generated_tokens;
      merged.suspensions += decode_half->suspensions;
      merged.decode_admit_time = decode_half->first_scheduled_time;
    }
    replicas[static_cast<size_t>(finishing_replica)].RecordOutcome(merged);
    if (elastic.autoscale.enabled && merged.request.target_output_len > 0) {
      scaler.RecordFinish(merged.NormalizedLatency());
    }
    if (options.outcomes != nullptr) {
      options.outcomes->push_back(merged);
    }
    arrivals.OnRequestFinished(merged);
    chains.erase(it);
  };

  // A prefill-role replica finished the prefill half of a handed-off turn:
  // fold its accounting into the chain, place the remainder on a decode
  // replica, export the KV, and launch the layer-pipelined stream. The
  // stream was already overlapping the prefill step, so its chunks become
  // ready across [prefill_compute_start, finish_time].
  auto handle_prefill_finish = [&](const RequestOutcome& outcome, int32_t p) {
    const int64_t conv = outcome.request.conversation_id;
    auto it = chains.find(conv);
    PENSIEVE_CHECK(it != chains.end())
        << "prefill finished with no chain for conversation " << conv;
    HandoffChain& chain = it->second;
    if (!chain.has_partial) {
      chain.partial.first_scheduled_time = outcome.first_scheduled_time;
      chain.partial.first_token_time = outcome.first_token_time;
      chain.partial.prefill_compute_start = outcome.prefill_compute_start;
      chain.partial.prefill_replica = p;
      chain.has_partial = true;
    }
    chain.partial.prefill_input_tokens += outcome.prefill_input_tokens;
    chain.partial.reused_gpu_tokens += outcome.reused_gpu_tokens;
    chain.partial.reused_cpu_tokens += outcome.reused_cpu_tokens;
    chain.partial.reused_ssd_tokens += outcome.reused_ssd_tokens;
    chain.partial.reused_shared_tokens += outcome.reused_shared_tokens;
    chain.partial.recomputed_tokens += outcome.recomputed_tokens;
    chain.partial.generated_tokens += outcome.generated_tokens;
    chain.partial.suspensions += outcome.suspensions;

    // The decode-side remainder: the prefill side emitted the first output
    // token, which becomes the continuation's one-token "prompt".
    Request cont = outcome.request;
    cont.prefill_only = false;
    cont.handoff_continuation = true;
    cont.history_len =
        outcome.request.history_len + outcome.request.new_prompt_len;
    cont.new_prompt_len = 1;
    cont.target_output_len =
        outcome.request.target_output_len - outcome.generated_tokens;
    // Single-token responses finished entirely on the prefill side; the
    // stream below (if any) only places KV for the conversation's next turn.
    const bool state_only = cont.target_output_len <= 0;

    snapshot_views();
    const RoutingDecision decision = router->Route(cont, views);
    const int32_t d = decision.target;
    PENSIEVE_CHECK_GE(d, 0);
    PENSIEVE_CHECK_LT(d, static_cast<int32_t>(replicas.size()));

    Replica& prefiller = replicas[static_cast<size_t>(p)];
    if (d == p) {
      // Decode pool routed back onto the prefill replica (pool dead): the
      // KV is already resident here, no wire transfer.
      ++handoff.local_handoffs;
      if (state_only) {
        finish_chain(conv, nullptr, p, outcome.finish_time);
        return;
      }
      Replica::Delivery delivery;
      delivery.time = outcome.finish_time;
      delivery.request = cont;
      prefiller.Deliver(std::move(delivery));
      return;
    }

    MigratedKvState state = prefiller.engine().ExportConversationState(conv);
    // The stream writes layer by layer into the decode GPU's KV pool; no
    // host->device restore is owed when the continuation admits.
    state.gpu_direct = true;
    if (state.resident_tokens <= 0) {
      // Nothing resident to stream (evicted under pressure mid-prefill);
      // the decode side recomputes the whole prefix.
      ++handoff.local_handoffs;
      if (state_only) {
        finish_chain(conv, nullptr, p, outcome.finish_time);
        return;
      }
      Replica::Delivery delivery;
      delivery.time = outcome.finish_time;
      delivery.request = cont;
      delivery.migrated = state;  // kv_len bookkeeping only
      replicas[static_cast<size_t>(d)].Deliver(std::move(delivery));
      return;
    }

    KvStreamPlan plan;
    plan.src = p;
    plan.dst = d;
    plan.bytes = state.bytes;
    plan.num_layers = std::max<int64_t>(1, options.disagg.stream_layers);
    plan.compute_start = outcome.prefill_compute_start;
    plan.compute_end = outcome.finish_time;
    const KvStreamResult stream =
        StreamKvLayers(&interconnect, &nic_faults, plan);
    ++handoff.streams;
    handoff.stream_chunks += stream.chunks_delivered;
    handoff.stream_bytes += stream.bytes_delivered;
    if (stream.delivered) {
      handoff.overlap_saved_seconds += stream.unpipelined_done - stream.done;
      handoff.stream_wait_seconds +=
          std::max(0.0, stream.done - outcome.finish_time);
    } else {
      ++handoff.failed_streams;
      handoff.kv_tokens_lost += state.resident_tokens;
      faults.lost_kv_tokens += state.resident_tokens;
      state.resident_tokens = 0;
      state.bytes = 0.0;
    }
    chain.partial.handoff_stream_done = stream.done;
    if (state_only) {
      finish_chain(conv, nullptr, p, outcome.finish_time);
      // `chain` is dangling from here on.
    }

    HandoffStream inflight;
    inflight.conversation_id = conv;
    inflight.src = p;
    inflight.dst = d;
    inflight.state = state;
    inflight.continuation = cont;
    inflight.state_only = state_only;
    streams.push_back(std::move(inflight));
    SimEvent arrival;
    arrival.time = stream.done;
    arrival.kind = SimEventKind::kHandoffArrival;
    arrival.id = static_cast<int64_t>(streams.size()) - 1;
    events.Push(arrival);
  };

  // A KV stream's final layer landed (or its abandonment time passed):
  // admit the continuation at the decode replica with whatever survived.
  auto handle_handoff_arrival = [&](const SimEvent& event) {
    HandoffStream& s = streams[static_cast<size_t>(event.id)];
    s.arrived = true;
    Replica& dst = replicas[static_cast<size_t>(s.dst)];
    if (s.state_only) {
      if (dst.alive() && s.state.resident_tokens > 0) {
        Replica::Delivery delivery;
        delivery.time = event.time;
        delivery.request.conversation_id = s.conversation_id;
        delivery.migrated = s.state;
        delivery.state_only = true;
        handoff.streamed_tokens += s.state.resident_tokens;
        dst.Deliver(std::move(delivery));
      } else if (!dst.alive() && s.state.resident_tokens > 0) {
        // Landed on a corpse (the failure that would have voided the
        // payload hit after our send completed): the KV is simply lost.
        ++handoff.failed_streams;
        handoff.kv_tokens_lost += s.state.resident_tokens;
        faults.lost_kv_tokens += s.state.resident_tokens;
      }
      return;
    }
    if (!dst.alive() || !dispatchable(s.dst)) {
      // The decode target died — or was quarantined — while the stream was
      // in flight; the payload was voided at fail/quarantine time, and the
      // continuation re-routes afresh (degrading to recompute, never
      // dropping the request).
      route_and_deliver(s.continuation, event.time, /*allow_migrate=*/false);
      return;
    }
    Replica::Delivery delivery;
    delivery.time = event.time;
    delivery.request = s.continuation;
    delivery.migrated = s.state;
    if (s.state.resident_tokens > 0) {
      handoff.streamed_tokens += s.state.resident_tokens;
    }
    dst.Deliver(std::move(delivery));
  };

  // Control-plane timers start one interval in (the cluster state at t=0 is
  // by construction healthy and unloaded).
  if (elastic.health.enabled) {
    arm_timer(SimEventKind::kHealthProbe, elastic.health.probe_interval);
  }
  if (elastic.autoscale.enabled) {
    arm_timer(SimEventKind::kAutoscale, elastic.autoscale.check_interval);
  }

  while (true) {
    const double t_event = events.NextTime();
    double t_replica = kNever;
    int32_t next_replica = -1;
    for (int32_t i = 0; i < static_cast<int32_t>(replicas.size()); ++i) {
      const double t = replicas[static_cast<size_t>(i)].NextEventTime();
      if (t < t_replica) {
        t_replica = t;
        next_replica = i;
      }
    }

    // Queued events outrank replica steps on ties: the single driver
    // delivers everything due before stepping, and routers should see the
    // freshest queue state.
    if (t_event <= t_replica) {
      if (events.Empty()) {
        break;  // both sides quiescent
      }
      const SimEvent event = events.Pop();
      switch (event.kind) {
        case SimEventKind::kArrival:
          route_and_deliver(arrivals.BuildRequest(event), event.time,
                            /*allow_migrate=*/true);
          break;
        case SimEventKind::kReplicaFail:
          handle_fail(event);
          break;
        case SimEventKind::kReplicaRecover:
          handle_recover(event);
          break;
        case SimEventKind::kHandoffArrival:
          handle_handoff_arrival(event);
          break;
        case SimEventKind::kHealthProbe:
          handle_probe(event);
          break;
        case SimEventKind::kAutoscale:
          handle_autoscale(event);
          break;
      }
      continue;
    }

    if (next_replica < 0) {
      break;
    }
    Replica::StepOutcome step =
        replicas[static_cast<size_t>(next_replica)].StepOnce(
            options.step_trace);
    if (!step.progressed) {
      continue;
    }
    for (const RequestOutcome& outcome : step.result.finished) {
      if (outcome.request.prefill_only) {
        handle_prefill_finish(outcome, next_replica);
        continue;
      }
      if (outcome.request.handoff_continuation) {
        finish_chain(outcome.request.conversation_id, &outcome, next_replica,
                     outcome.finish_time);
        continue;
      }
      if (elastic.autoscale.enabled && outcome.request.target_output_len > 0) {
        scaler.RecordFinish(outcome.NormalizedLatency());
      }
      if (options.outcomes != nullptr) {
        options.outcomes->push_back(outcome);
      }
      // Schedule the conversation's next turn after the user's think time.
      arrivals.OnRequestFinished(outcome);
    }
    if (elastic.peer_spill.enabled &&
        replicas[static_cast<size_t>(next_replica)].alive()) {
      // CPU-pressure drops this step recorded as peer offers: place each on
      // a peer with idle CPU budget (or let it stay the plain drop it was).
      Replica& stepped = replicas[static_cast<size_t>(next_replica)];
      for (const PeerSpillOffer& o : stepped.engine().TakePeerSpillOffers()) {
        handle_spill_offer(next_replica, o, stepped.now());
      }
    }
    ++total_steps;
    if (options.max_steps > 0 && total_steps >= options.max_steps) {
      PENSIEVE_LOG_WARNING << "cluster experiment hit max_steps="
                           << options.max_steps;
      break;
    }
  }

  for (const Replica& r : replicas) {
    if (r.alive() && r.engine().HasWork()) {
      PENSIEVE_LOG_WARNING << "replica " << r.id()
                           << " still has work at experiment end (stalled)";
    }
  }
  if (!orphans.empty()) {
    PENSIEVE_LOG_WARNING << orphans.size()
                         << " request(s) orphaned by replica failures never "
                            "ran (no recovery scheduled)";
  }

  double global_last_finish = 0.0;
  for (const Replica& r : replicas) {
    global_last_finish = std::max(global_last_finish, r.last_finish_time());
  }
  // Same steady-state window as the single driver, by construction.
  const SteadyStateWindow window =
      ComputeSteadyStateWindow(ArrivalSpan(trace), global_last_finish);

  ClusterSummary summary;
  summary.router_name = router->name();
  summary.num_replicas = options.num_replicas;
  std::vector<const MetricsCollector*> collectors;
  collectors.reserve(replicas.size());
  for (const Replica& r : replicas) {
    summary.replicas.push_back(r.metrics().Summarize(
        r.engine_name(), r.last_finish_time(), r.stats(), window.begin,
        window.end));
    collectors.push_back(&r.metrics());
    summary.migration.migrated_tokens += r.stats().migrated_in_tokens;
  }
  // The combined summary merges the per-replica collectors in place —
  // outcomes are stored once, in their replica's collector.
  summary.cluster = MetricsCollector::SummarizeMerged(
      collectors, std::string("cluster/") + router->name(), global_last_finish,
      CombineEngineStats(summary.replicas), window.begin, window.end);
  summary.load_imbalance = LoadImbalance(summary.replicas);
  summary.migration.migrations = migration.migrations;
  summary.migration.migrated_bytes = migration.migrated_bytes;
  summary.migration.migration_stall_seconds = migration.migration_stall_seconds;
  summary.migration.failed_migrations = migration.failed_migrations;
  summary.migration.kv_tokens_lost_in_transit =
      migration.kv_tokens_lost_in_transit;
  summary.migration.rehomes = router->counters().rehomes;
  summary.migration.overload_queued = router->counters().overload_queued;
  summary.faults = faults;
  summary.nic_link_faults = nic_faults.stats();
  summary.handoff = handoff;
  // Stash segments never fetched back close the peer-spill identity:
  // spilled == fetched + degraded + invalidated + remaining.
  for (const auto& [conv, entry] : stash) {
    spill.remaining_tokens += entry.last_token - entry.first_token;
  }
  summary.elastic.health = health.stats();
  summary.elastic.autoscale = autoscale_stats;
  summary.elastic.peer_spill = spill;
  if (options.disagg.enabled) {
    summary.prefill_replicas =
        std::min(options.disagg.prefill_replicas, options.num_replicas - 1);
  }
  return summary;
}

}  // namespace pensieve

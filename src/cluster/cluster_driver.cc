#include "src/cluster/cluster_driver.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "src/cluster/replica.h"
#include "src/common/logging.h"

namespace pensieve {

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

// Same shape and comparator as the single-engine driver's arrival queue so
// that equal-time arrivals pop in the identical heap order.
struct Arrival {
  double time;
  int64_t conversation_index;  // index into trace.conversations()
  int32_t turn_index;

  bool operator>(const Arrival& other) const { return time > other.time; }
};

}  // namespace

ClusterSummary RunClusterExperiment(const ReplicaEngineFactory& make_engine,
                                    const WorkloadTrace& trace,
                                    const ClusterOptions& options) {
  PENSIEVE_CHECK(make_engine != nullptr);
  PENSIEVE_CHECK_GT(options.num_replicas, 0);

  std::vector<Replica> replicas;
  replicas.reserve(static_cast<size_t>(options.num_replicas));
  for (int32_t i = 0; i < options.num_replicas; ++i) {
    replicas.emplace_back(i, make_engine(i));
  }
  std::unique_ptr<Router> router = MakeRouter(options.router);
  ClusterInterconnect interconnect(options.num_replicas, options.interconnect);

  const auto& conversations = trace.conversations();
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      arrivals;
  for (int64_t i = 0; i < static_cast<int64_t>(conversations.size()); ++i) {
    arrivals.push(Arrival{conversations[i].first_arrival, i, 0});
  }

  int64_t next_request_id = 0;
  int64_t total_steps = 0;
  MigrationStats migration;

  std::vector<ReplicaView> views(replicas.size());
  auto snapshot_views = [&]() {
    for (size_t i = 0; i < replicas.size(); ++i) {
      views[i].engine = &replicas[i].engine();
      views[i].load = replicas[i].engine().Load();
    }
  };

  while (true) {
    const double t_arrival = arrivals.empty() ? kNever : arrivals.top().time;
    double t_replica = kNever;
    int32_t next_replica = -1;
    for (int32_t i = 0; i < static_cast<int32_t>(replicas.size()); ++i) {
      const double t = replicas[static_cast<size_t>(i)].NextEventTime();
      if (t < t_replica) {
        t_replica = t;
        next_replica = i;
      }
    }

    // Arrivals outrank replica steps on ties: the single driver delivers
    // everything due before stepping, and routers should see the freshest
    // queue state.
    if (t_arrival <= t_replica) {
      if (arrivals.empty()) {
        break;  // both sides quiescent
      }
      const Arrival a = arrivals.top();
      arrivals.pop();
      const TraceConversation& conv =
          conversations[static_cast<size_t>(a.conversation_index)];
      const TurnSpec& turn = conv.spec.turns[static_cast<size_t>(a.turn_index)];
      Request req;
      req.request_id = next_request_id++;
      req.conversation_id = conv.spec.conversation_id;
      req.turn_index = a.turn_index;
      req.new_prompt_len = turn.input_len;
      req.history_len = conv.spec.HistoryLenBeforeTurn(a.turn_index);
      req.target_output_len = turn.output_len;
      req.arrival_time = a.time;

      snapshot_views();
      const RoutingDecision decision = router->Route(req, views);
      PENSIEVE_CHECK_GE(decision.target, 0);
      PENSIEVE_CHECK_LT(decision.target, static_cast<int32_t>(replicas.size()));

      Replica::Delivery delivery;
      delivery.time = a.time;
      delivery.request = req;
      if (decision.migrate && decision.source >= 0 &&
          decision.source != decision.target) {
        Replica& source = replicas[static_cast<size_t>(decision.source)];
        MigratedKvState state =
            source.engine().ExportConversationState(req.conversation_id);
        if (state.resident_tokens > 0) {
          // The request cannot start at its new home before its KV lands.
          const double done = interconnect.ScheduleTransfer(
              decision.source, decision.target, a.time, state.bytes);
          delivery.time = done;
          delivery.migration_stall = done - a.time;
          ++migration.migrations;
          migration.migrated_bytes += state.bytes;
          migration.migration_stall_seconds += delivery.migration_stall;
        }
        delivery.migrated = state;
      }
      replicas[static_cast<size_t>(decision.target)].Deliver(
          std::move(delivery));
      continue;
    }

    if (next_replica < 0) {
      break;
    }
    Replica::StepOutcome step =
        replicas[static_cast<size_t>(next_replica)].StepOnce(
            options.step_trace);
    if (!step.progressed) {
      continue;
    }
    for (const RequestOutcome& outcome : step.result.finished) {
      if (options.outcomes != nullptr) {
        options.outcomes->push_back(outcome);
      }
      // Trace conversation ids are assigned densely by the generator, so the
      // id doubles as the index (same invariant the single driver relies on).
      const int64_t conv_index = outcome.request.conversation_id;
      PENSIEVE_CHECK_LT(conv_index,
                        static_cast<int64_t>(conversations.size()));
      const TraceConversation& conv =
          conversations[static_cast<size_t>(conv_index)];
      const int32_t next_turn = outcome.request.turn_index + 1;
      if (next_turn < static_cast<int32_t>(conv.spec.turns.size())) {
        const double think =
            conv.think_times[static_cast<size_t>(outcome.request.turn_index)];
        arrivals.push(
            Arrival{outcome.finish_time + think, conv_index, next_turn});
      }
    }
    ++total_steps;
    if (options.max_steps > 0 && total_steps >= options.max_steps) {
      PENSIEVE_LOG_WARNING << "cluster experiment hit max_steps="
                           << options.max_steps;
      break;
    }
  }

  for (const Replica& r : replicas) {
    if (r.engine().HasWork()) {
      PENSIEVE_LOG_WARNING << "replica " << r.id()
                           << " still has work at experiment end (stalled)";
    }
  }

  // Same steady-state window as the single driver: skip the first 10% of the
  // conversation arrival span, cut off at the end of the arrival process.
  double arrival_span = 0.0;
  for (const TraceConversation& conv : conversations) {
    arrival_span = std::max(arrival_span, conv.first_arrival);
  }
  double global_last_finish = 0.0;
  for (const Replica& r : replicas) {
    global_last_finish = std::max(global_last_finish, r.last_finish_time());
  }
  const double window_begin = 0.1 * arrival_span;
  const double window_end =
      arrival_span > 0.0 ? arrival_span : global_last_finish;

  ClusterSummary summary;
  summary.router_name = router->name();
  summary.num_replicas = options.num_replicas;
  MetricsCollector combined;
  for (const Replica& r : replicas) {
    summary.replicas.push_back(r.metrics().Summarize(
        r.engine().name(), r.last_finish_time(), r.engine().stats(),
        window_begin, window_end));
    for (const RequestOutcome& outcome : r.metrics().outcomes()) {
      combined.Record(outcome);
    }
    summary.migration.migrated_tokens += r.engine().stats().migrated_in_tokens;
  }
  summary.cluster =
      combined.Summarize(std::string("cluster/") + router->name(),
                         global_last_finish,
                         CombineEngineStats(summary.replicas), window_begin,
                         window_end);
  summary.load_imbalance = LoadImbalance(summary.replicas);
  summary.migration.migrations = migration.migrations;
  summary.migration.migrated_bytes = migration.migrated_bytes;
  summary.migration.migration_stall_seconds = migration.migration_stall_seconds;
  summary.migration.rehomes = router->counters().rehomes;
  summary.migration.overload_queued = router->counters().overload_queued;
  return summary;
}

}  // namespace pensieve

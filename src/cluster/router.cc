#include "src/cluster/router.h"

#include "src/common/logging.h"

namespace pensieve {

const char* RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin:
      return "round-robin";
    case RouterPolicy::kLeastLoaded:
      return "least-loaded";
    case RouterPolicy::kSessionAffinity:
      return "session-affinity";
  }
  return "?";
}

bool RouterPolicyByName(const std::string& name, RouterPolicy* policy) {
  if (name == "round-robin") {
    *policy = RouterPolicy::kRoundRobin;
  } else if (name == "least-loaded") {
    *policy = RouterPolicy::kLeastLoaded;
  } else if (name == "session-affinity") {
    *policy = RouterPolicy::kSessionAffinity;
  } else {
    return false;
  }
  return true;
}

int32_t LeastLoadedReplica(const std::vector<ReplicaView>& replicas) {
  PENSIEVE_CHECK(!replicas.empty());
  int32_t best = -1;
  for (int32_t i = 0; i < static_cast<int32_t>(replicas.size()); ++i) {
    if (!replicas[static_cast<size_t>(i)].alive) {
      continue;
    }
    if (best < 0) {
      best = i;
      continue;
    }
    const EngineLoad& cand = replicas[static_cast<size_t>(i)].load;
    const EngineLoad& cur = replicas[static_cast<size_t>(best)].load;
    if (cand.OutstandingTokens() < cur.OutstandingTokens() ||
        (cand.OutstandingTokens() == cur.OutstandingTokens() &&
         cand.TotalRequests() < cur.TotalRequests())) {
      best = i;
    }
  }
  PENSIEVE_CHECK_GE(best, 0) << "no alive replica to route to";
  return best;
}

namespace {

class RoundRobinRouter final : public Router {
 public:
  const char* name() const override {
    return RouterPolicyName(RouterPolicy::kRoundRobin);
  }

  RoutingDecision Route(const Request& request,
                        const std::vector<ReplicaView>& replicas) override {
    const int32_t n = static_cast<int32_t>(replicas.size());
    RoutingDecision decision;
    // Rotate past dead replicas; with everyone alive this is the plain
    // rotation (the 1-replica bit-for-bit case is untouched).
    for (int32_t tried = 0; tried < n; ++tried) {
      const int32_t candidate = next_;
      next_ = (next_ + 1) % n;
      if (replicas[static_cast<size_t>(candidate)].alive) {
        decision.target = candidate;
        return decision;
      }
    }
    PENSIEVE_LOG_FATAL << "round-robin: no alive replica to route to";
    return decision;
  }

 private:
  int32_t next_ = 0;
};

class LeastLoadedRouter final : public Router {
 public:
  const char* name() const override {
    return RouterPolicyName(RouterPolicy::kLeastLoaded);
  }

  RoutingDecision Route(const Request& request,
                        const std::vector<ReplicaView>& replicas) override {
    RoutingDecision decision;
    decision.target = LeastLoadedReplica(replicas);
    return decision;
  }
};

class SessionAffinityRouter final : public Router {
 public:
  explicit SessionAffinityRouter(const RouterOptions& options)
      : options_(options) {}

  const char* name() const override {
    return RouterPolicyName(RouterPolicy::kSessionAffinity);
  }

  RoutingDecision Route(const Request& request,
                        const std::vector<ReplicaView>& replicas) override {
    RoutingDecision decision;
    auto it = home_.find(request.conversation_id);
    if (it == home_.end()) {
      // First contact: place the conversation on the least-loaded replica.
      decision.target = LeastLoadedReplica(replicas);
      home_[request.conversation_id] = decision.target;
      return decision;
    }
    const int32_t home = it->second;
    decision.target = home;
    if (!Overloaded(home, replicas)) {
      return decision;
    }
    const int32_t fallback = LeastLoadedReplica(replicas);
    if (fallback == home) {
      return decision;
    }
    if (!options_.migrate_on_overload) {
      ++counters_.overload_queued;
      return decision;
    }
    // Cache-aware failover: re-home onto the least-loaded replica. When the
    // home still holds KV for this conversation, the driver ships it over
    // the inter-replica link instead of letting the new home recompute the
    // whole history.
    const Engine* home_engine = replicas[static_cast<size_t>(home)].engine;
    decision.target = fallback;
    decision.migrate =
        home_engine != nullptr && home_engine->SupportsStateMigration();
    decision.source = home;
    it->second = fallback;
    ++counters_.rehomes;
    return decision;
  }

  void NotifyReplicaDown(int32_t replica_id) override {
    // The dead replica's KV is gone, so any affinity to it is worthless:
    // forget those homes and let the conversations re-home (as first
    // contact, onto the least-loaded alive replica) at their next turn.
    for (auto it = home_.begin(); it != home_.end();) {
      if (it->second == replica_id) {
        it = home_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  bool Overloaded(int32_t replica,
                  const std::vector<ReplicaView>& replicas) const {
    const int64_t outstanding =
        replicas[static_cast<size_t>(replica)].load.OutstandingTokens();
    if (outstanding <= options_.min_overload_tokens) {
      return false;
    }
    int64_t total = 0;
    for (const ReplicaView& view : replicas) {
      total += view.load.OutstandingTokens();
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(replicas.size());
    return static_cast<double>(outstanding) > options_.overload_factor * mean;
  }

  RouterOptions options_;
  std::unordered_map<int64_t, int32_t> home_;
};

}  // namespace

std::unique_ptr<Router> MakeRouter(const RouterOptions& options) {
  switch (options.policy) {
    case RouterPolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouter>();
    case RouterPolicy::kLeastLoaded:
      return std::make_unique<LeastLoadedRouter>();
    case RouterPolicy::kSessionAffinity:
      return std::make_unique<SessionAffinityRouter>(options);
  }
  PENSIEVE_LOG_FATAL << "unknown router policy";
  return nullptr;
}

}  // namespace pensieve

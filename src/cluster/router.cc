#include "src/cluster/router.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

const char* RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin:
      return "round-robin";
    case RouterPolicy::kLeastLoaded:
      return "least-loaded";
    case RouterPolicy::kSessionAffinity:
      return "session-affinity";
  }
  return "?";
}

bool RouterPolicyByName(const std::string& name, RouterPolicy* policy) {
  if (name == "round-robin") {
    *policy = RouterPolicy::kRoundRobin;
  } else if (name == "least-loaded") {
    *policy = RouterPolicy::kLeastLoaded;
  } else if (name == "session-affinity") {
    *policy = RouterPolicy::kSessionAffinity;
  } else {
    return false;
  }
  return true;
}

namespace {

// True when a replica may be chosen as a routing target: alive and not
// pulled from the dispatch set by quarantine / autoscale.
bool Selectable(const ReplicaView& view) {
  return view.alive && view.dispatchable;
}

// Selectable replica in [pool_begin, pool_end) with the least outstanding
// work; -1 when the whole pool is dead. Same deterministic tie-breaks as
// LeastLoadedReplica.
int32_t BestInPool(const std::vector<ReplicaView>& replicas,
                   int32_t pool_begin, int32_t pool_end,
                   bool weight_queued_prefill) {
  int32_t best = -1;
  for (int32_t i = pool_begin; i < pool_end; ++i) {
    if (!Selectable(replicas[static_cast<size_t>(i)])) {
      continue;
    }
    if (best < 0) {
      best = i;
      continue;
    }
    const EngineLoad& cand = replicas[static_cast<size_t>(i)].load;
    const EngineLoad& cur = replicas[static_cast<size_t>(best)].load;
    const int64_t cand_tokens = weight_queued_prefill
                                    ? cand.WeightedTokens()
                                    : cand.OutstandingTokens();
    const int64_t cur_tokens = weight_queued_prefill
                                   ? cur.WeightedTokens()
                                   : cur.OutstandingTokens();
    if (cand_tokens < cur_tokens ||
        (cand_tokens == cur_tokens &&
         cand.TotalRequests() < cur.TotalRequests())) {
      best = i;
    }
  }
  return best;
}

}  // namespace

int32_t LeastLoadedReplica(const std::vector<ReplicaView>& replicas,
                           bool weight_queued_prefill) {
  PENSIEVE_CHECK(!replicas.empty());
  const int32_t best =
      BestInPool(replicas, 0, static_cast<int32_t>(replicas.size()),
                 weight_queued_prefill);
  PENSIEVE_CHECK_GE(best, 0) << "no dispatchable replica to route to";
  return best;
}

namespace {

class RoundRobinRouter final : public Router {
 public:
  const char* name() const override {
    return RouterPolicyName(RouterPolicy::kRoundRobin);
  }

  RoutingDecision Route(const Request& request,
                        const std::vector<ReplicaView>& replicas) override {
    const int32_t n = static_cast<int32_t>(replicas.size());
    RoutingDecision decision;
    // Rotate past dead/undispatchable replicas; with everyone alive this is
    // the plain rotation (the 1-replica bit-for-bit case is untouched).
    for (int32_t tried = 0; tried < n; ++tried) {
      const int32_t candidate = next_;
      next_ = (next_ + 1) % n;
      if (Selectable(replicas[static_cast<size_t>(candidate)])) {
        decision.target = candidate;
        return decision;
      }
    }
    PENSIEVE_LOG_FATAL << "round-robin: no dispatchable replica to route to";
    return decision;
  }

 private:
  int32_t next_ = 0;
};

class LeastLoadedRouter final : public Router {
 public:
  const char* name() const override {
    return RouterPolicyName(RouterPolicy::kLeastLoaded);
  }

  RoutingDecision Route(const Request& request,
                        const std::vector<ReplicaView>& replicas) override {
    RoutingDecision decision;
    // Weighted: a cold conversation's queued recompute work counts, so a
    // burst of long-history turns spreads instead of herding onto one
    // replica whose queue looks short by prompt tokens alone.
    decision.target = LeastLoadedReplica(replicas, /*weight_queued_prefill=*/true);
    return decision;
  }
};

class SessionAffinityRouter final : public Router {
 public:
  explicit SessionAffinityRouter(const RouterOptions& options)
      : options_(options) {}

  const char* name() const override {
    return RouterPolicyName(RouterPolicy::kSessionAffinity);
  }

  RoutingDecision Route(const Request& request,
                        const std::vector<ReplicaView>& replicas) override {
    RoutingDecision decision;
    auto it = home_.find(request.conversation_id);
    if (it == home_.end()) {
      // First contact: place the conversation on the least-loaded replica.
      decision.target = LeastLoadedReplica(replicas);
      home_[request.conversation_id] = decision.target;
      return decision;
    }
    const int32_t home = it->second;
    if (!Selectable(replicas[static_cast<size_t>(home)])) {
      // Home pulled from the dispatch set (NotifyReplicaDown normally erases
      // these entries first; this is the backstop): re-home as first
      // contact, without a migration — the driver drains quarantined homes
      // itself.
      decision.target = LeastLoadedReplica(replicas);
      it->second = decision.target;
      ++counters_.rehomes;
      return decision;
    }
    decision.target = home;
    if (!Overloaded(home, replicas)) {
      return decision;
    }
    const int32_t fallback = LeastLoadedReplica(replicas);
    if (fallback == home) {
      return decision;
    }
    if (!options_.migrate_on_overload) {
      ++counters_.overload_queued;
      return decision;
    }
    // Cache-aware failover: re-home onto the least-loaded replica. When the
    // home still holds KV for this conversation, the driver ships it over
    // the inter-replica link instead of letting the new home recompute the
    // whole history.
    const Engine* home_engine = replicas[static_cast<size_t>(home)].engine;
    decision.target = fallback;
    decision.migrate =
        home_engine != nullptr && home_engine->SupportsStateMigration();
    decision.source = home;
    it->second = fallback;
    ++counters_.rehomes;
    return decision;
  }

  void NotifyReplicaDown(int32_t replica_id) override {
    // The dead replica's KV is gone, so any affinity to it is worthless:
    // forget those homes and let the conversations re-home (as first
    // contact, onto the least-loaded alive replica) at their next turn.
    for (auto it = home_.begin(); it != home_.end();) {
      if (it->second == replica_id) {
        it = home_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  bool Overloaded(int32_t replica,
                  const std::vector<ReplicaView>& replicas) const {
    const int64_t outstanding =
        replicas[static_cast<size_t>(replica)].load.OutstandingTokens();
    if (outstanding <= options_.min_overload_tokens) {
      return false;
    }
    int64_t total = 0;
    for (const ReplicaView& view : replicas) {
      total += view.load.OutstandingTokens();
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(replicas.size());
    return static_cast<double>(outstanding) > options_.overload_factor * mean;
  }

  RouterOptions options_;
  std::unordered_map<int64_t, int32_t> home_;
};

// Alive least-weighted-load replica in [pool_begin, pool_end), scanning from
// a rotating offset so exact ties round-robin across the pool instead of
// collapsing onto the lowest index. Load snapshots often tie at zero here: a
// replica's clock races ahead of the router's while it burns through a
// prefill that arrived, ran and finished inside one step, so consecutive
// dispatches all see an "idle" pool. BestInPool's first-index tie-break then
// serializes the whole burst onto one replica; rotation spreads it.
int32_t RotatedBestInPool(const std::vector<ReplicaView>& replicas,
                          int32_t pool_begin, int32_t pool_end, int32_t* rr) {
  const int32_t size = pool_end - pool_begin;
  int32_t best = -1;
  int64_t best_tokens = 0;
  for (int32_t k = 0; k < size; ++k) {
    const int32_t i = pool_begin + (*rr + k) % size;
    if (!Selectable(replicas[static_cast<size_t>(i)])) {
      continue;
    }
    const int64_t tokens =
        replicas[static_cast<size_t>(i)].load.WeightedTokens();
    if (best < 0 || tokens < best_tokens) {
      best = i;
      best_tokens = tokens;
    }
  }
  if (best >= 0) {
    *rr = (best - pool_begin + 1) % size;
  }
  return best;
}

// Prefill/decode disaggregation (DESIGN.md §13). Replicas [0, prefill_n)
// prefill, the rest decode. Decode homes are sticky per conversation (the
// KV streamed there stays useful across turns); prefill dispatch balances
// on weighted queued work so the pool does not herd.
class DisaggRouter final : public Router {
 public:
  explicit DisaggRouter(const DisaggRouterConfig& config) : config_(config) {}

  const char* name() const override { return "disagg"; }

  RoutingDecision Route(const Request& request,
                        const std::vector<ReplicaView>& replicas) override {
    const int32_t n = static_cast<int32_t>(replicas.size());
    PENSIEVE_CHECK_GE(n, 2) << "disaggregation needs >= 2 replicas";
    // Always leave at least one decode replica.
    const int32_t prefill_n = std::min(config_.prefill_replicas, n - 1);

    RoutingDecision decision;
    if (request.handoff_continuation) {
      // Decode-side placement of a finished prefill's remainder.
      decision.target = DecodeTarget(request.conversation_id, replicas,
                                     prefill_n, n);
      return decision;
    }

    // Pending prefill work if the turn ran at its decode home: the new
    // prompt plus whatever history the home no longer caches.
    const auto it = home_.find(request.conversation_id);
    const int32_t home =
        (it != home_.end() && Selectable(replicas[static_cast<size_t>(it->second)]))
            ? it->second
            : -1;
    int64_t cached = 0;
    if (home >= 0 && replicas[static_cast<size_t>(home)].engine != nullptr) {
      cached = replicas[static_cast<size_t>(home)].engine->
          CachedConversationTokens(request.conversation_id);
    }
    const int64_t pending =
        request.new_prompt_len +
        std::max<int64_t>(0, request.history_len - cached);
    if (pending >= config_.min_handoff_tokens) {
      const int32_t p = RotatedBestInPool(replicas, 0, prefill_n, &rr_prefill_);
      if (p >= 0 && replicas[static_cast<size_t>(p)].engine != nullptr &&
          replicas[static_cast<size_t>(p)].engine->SupportsStateMigration()) {
        decision.target = p;
        decision.prefill_handoff = true;
        return decision;
      }
      // Prefill pool dead (or stateless): fall through colocated.
    }
    decision.target = DecodeTarget(request.conversation_id, replicas,
                                   prefill_n, n);
    return decision;
  }

  void NotifyReplicaDown(int32_t replica_id) override {
    for (auto it = home_.begin(); it != home_.end();) {
      if (it->second == replica_id) {
        it = home_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  int32_t DecodeTarget(int64_t conversation_id,
                       const std::vector<ReplicaView>& replicas,
                       int32_t prefill_n, int32_t n) {
    const auto it = home_.find(conversation_id);
    if (it != home_.end() &&
        Selectable(replicas[static_cast<size_t>(it->second)])) {
      return it->second;
    }
    int32_t target = RotatedBestInPool(replicas, prefill_n, n, &rr_decode_);
    if (target < 0) {
      // Whole decode pool is down: decode wherever something is alive
      // rather than dropping the request.
      target = LeastLoadedReplica(replicas, /*weight_queued_prefill=*/true);
    }
    if (it != home_.end()) {
      ++counters_.rehomes;
      it->second = target;
    } else {
      home_[conversation_id] = target;
    }
    return target;
  }

  DisaggRouterConfig config_;
  std::unordered_map<int64_t, int32_t> home_;
  int32_t rr_prefill_ = 0;
  int32_t rr_decode_ = 0;
};

}  // namespace

std::unique_ptr<Router> MakeDisaggRouter(const DisaggRouterConfig& config) {
  return std::make_unique<DisaggRouter>(config);
}

std::unique_ptr<Router> MakeRouter(const RouterOptions& options) {
  switch (options.policy) {
    case RouterPolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouter>();
    case RouterPolicy::kLeastLoaded:
      return std::make_unique<LeastLoadedRouter>();
    case RouterPolicy::kSessionAffinity:
      return std::make_unique<SessionAffinityRouter>(options);
  }
  PENSIEVE_LOG_FATAL << "unknown router policy";
  return nullptr;
}

}  // namespace pensieve

// Cluster-level experiment metrics.
//
// A cluster run produces one ServingSummary per replica plus aggregates
// that only exist at the cluster level: load imbalance across replicas,
// migration traffic, and the combined (all-replica) summary used to compare
// routing policies apples-to-apples against a single-engine run.

#ifndef PENSIEVE_SRC_CLUSTER_CLUSTER_METRICS_H_
#define PENSIEVE_SRC_CLUSTER_CLUSTER_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/elastic.h"
#include "src/common/status.h"
#include "src/serving/metrics.h"
#include "src/serving/telemetry.h"
#include "src/sim/fault_injector.h"

namespace pensieve {

// One scheduler iteration on one replica (cluster-wide step trace).
struct ClusterStepTraceEntry {
  int32_t replica_id = 0;
  StepTraceEntry step;
};

// KV-migration accounting for the whole run. Token counts are what the
// importing replicas actually adopted, so every migrated token is charged
// to exactly one replica (the sum of per-replica
// EngineStats::migrated_in_tokens equals `migrated_tokens`).
struct MigrationStats {
  int64_t migrations = 0;       // KV transfers scheduled on the interconnect
  int64_t rehomes = 0;          // home reassignments (with or without a transfer)
  int64_t overload_queued = 0;  // overloads resolved by queueing at home
  int64_t migrated_tokens = 0;  // tokens adopted by importing replicas
  double migrated_bytes = 0.0;  // bytes on the inter-replica links
  // Extra arrival delay requests paid waiting for their KV to land.
  double migration_stall_seconds = 0.0;
  // Migrations whose NIC transfer exhausted its retries: the KV was lost in
  // transit and the conversation recomputes at its destination.
  int64_t failed_migrations = 0;
  int64_t kv_tokens_lost_in_transit = 0;
};

// Fault-injection accounting: what replica failures cost the run. The lost
// KV shows up again as recomputed_history_tokens at the re-homed
// conversations' new replicas; the re-routed requests pay their failover in
// end-to-end latency (they keep their original arrival times).
struct FaultStats {
  int64_t failures = 0;
  int64_t recoveries = 0;
  // Queued/running/in-transit requests re-routed off a crashed replica.
  int64_t rerouted_requests = 0;
  // Requests that had to wait for a recovery because no replica was alive.
  int64_t orphaned_requests = 0;
  // Resident KV tokens destroyed with failed replicas (including migrated
  // state lost in transit).
  int64_t lost_kv_tokens = 0;
  // Decode progress thrown away (restarted requests regenerate it).
  int64_t lost_generated_tokens = 0;
};

// Prefill->decode handoff accounting for disaggregated runs (DESIGN.md §13).
// All zero when --disagg is off.
struct HandoffStats {
  int64_t handoff_requests = 0;    // turns dispatched to the prefill pool
  int64_t colocated_requests = 0;  // turns kept on their decode home
  int64_t streams = 0;             // KV streams launched prefill -> decode
  int64_t stream_chunks = 0;       // layer-group chunks delivered
  double stream_bytes = 0.0;       // wire bytes delivered
  int64_t streamed_tokens = 0;     // KV tokens adopted by decode replicas
  // Streams that died: NIC retries exhausted on a chunk, or either endpoint
  // failed mid-stream. The decode side recomputed the prefix instead; no
  // request was dropped.
  int64_t failed_streams = 0;
  int64_t kv_tokens_lost = 0;
  // Handoffs resolved without a wire transfer (decode target == prefill
  // replica because the decode pool was dead, or nothing resident).
  int64_t local_handoffs = 0;
  // Virtual seconds the pipelined streams finished ahead of the equivalent
  // blocking transfer issued at prefill completion (the overlap win), and
  // the decode-side wait between prefill completion and stream arrival.
  double overlap_saved_seconds = 0.0;
  double stream_wait_seconds = 0.0;
};

struct ClusterSummary {
  std::string router_name;
  int32_t num_replicas = 0;
  // Per-replica summaries over the shared steady-state window.
  std::vector<ServingSummary> replicas;
  // Combined summary over every outcome in the run; engine stats are summed
  // across replicas.
  ServingSummary cluster;
  // Peak-to-mean ratio of per-replica busy seconds (1.0 = perfectly even,
  // 0.0 when the cluster never computed).
  double load_imbalance = 0.0;
  MigrationStats migration;
  FaultStats faults;
  // Injected-fault accounting for the inter-replica NIC (migration link).
  // Per-replica PCIe fault stats live in each replica's
  // EngineStats::link_faults and sum into `cluster`.
  LinkFaultStats nic_link_faults;
  // Disaggregated prefill/decode accounting; all zero when --disagg is off.
  HandoffStats handoff;
  // Number of prefill-role replicas this run (0 = colocated).
  int32_t prefill_replicas = 0;
  // Elastic-cluster accounting (health probing, autoscaling, peer spill;
  // DESIGN.md §14). All zero when the elastic features are off.
  ElasticStats elastic;
};

// Field-wise sum of per-replica engine stats.
EngineStats CombineEngineStats(const std::vector<ServingSummary>& replicas);

// Peak-to-mean ratio of per-replica busy seconds.
double LoadImbalance(const std::vector<ServingSummary>& replicas);

// CSV dump of a cluster step trace (replica_id column + the per-step
// columns of WriteStepTraceCsv).
Status WriteClusterStepTraceCsv(const std::string& path,
                                const std::vector<ClusterStepTraceEntry>& trace);

// Multi-line handoff summary ("handoff-streams:/handoff-bytes:/
// handoff-overlap-ms:" lines); empty when the run never handed off, so
// colocated output stays bit-identical.
std::string FormatHandoffSummary(const HandoffStats& handoff);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_CLUSTER_CLUSTER_METRICS_H_

// Multi-replica virtual-time serving experiment driver.
//
// Replays a WorkloadTrace across N independent replicas behind a router.
// Every turn passes through the router; returning conversations are cheap
// only where their KV still lives, so policy choice shows up directly in the
// cluster cache-hit rate. Replicas advance on their own virtual clocks; the
// driver interleaves them in global event order, which makes a 1-replica
// cluster reproduce the single-engine driver bit for bit regardless of
// routing policy.
//
// Session-affinity failover may migrate a conversation's KV between
// replicas over a simulated interconnect; the shipped bytes, the arrival
// stall, and the adopted tokens are all accounted in the ClusterSummary.
//
// The loop itself is a thin client of the shared experiment core
// (src/sim/event_loop.h + src/serving/experiment_core.h): one typed event
// queue interleaves arrivals and scheduled replica faults with replica
// steps, which is what lets a replica be killed and recovered mid-run
// (recovery cost lands in FaultStats and in the re-homed conversations'
// recompute accounting).

#ifndef PENSIEVE_SRC_CLUSTER_CLUSTER_DRIVER_H_
#define PENSIEVE_SRC_CLUSTER_CLUSTER_DRIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/cluster_metrics.h"
#include "src/cluster/elastic.h"
#include "src/cluster/router.h"
#include "src/serving/engine.h"
#include "src/sim/cluster_link.h"
#include "src/sim/fault_injector.h"
#include "src/workload/trace.h"

namespace pensieve {

// One scheduled fault event. A failure destroys the replica's engine: its
// GPU+CPU KV is lost, its queued/running/in-transit requests are re-routed
// to the surviving replicas (restarting from scratch), and re-homed
// conversations recompute their history at the new home. A recovery brings
// the replica back with a fresh, empty engine.
struct ReplicaFault {
  double time = 0.0;
  int32_t replica_id = 0;
  bool recover = false;  // false = fail at `time`, true = recover
};

// Prefill/decode disaggregation (DESIGN.md §13). When enabled, replicas
// [0, prefill_replicas) form the prefill pool: turns with enough pending
// prefill work run there, and as the prefill step's per-layer KV becomes
// ready it streams over the NIC into the turn's decode replica, which
// admits the continuation when the final layer lands. Disabled runs are
// bit-identical to the colocated cluster.
struct DisaggOptions {
  bool enabled = false;
  // Replicas [0, prefill_replicas) serve prefill; clamped so at least one
  // decode replica remains.
  int32_t prefill_replicas = 1;
  // Minimum pending prefill tokens (new prompt + history the decode home no
  // longer caches) for a turn to be worth the handoff.
  int64_t min_handoff_tokens = 64;
  // Transformer layers per stream (the chunking granularity); callers set
  // this from the model config.
  int64_t stream_layers = 1;
};

struct ClusterOptions {
  int32_t num_replicas = 1;
  RouterOptions router;
  InterconnectSpec interconnect;
  DisaggOptions disagg;
  // Scheduled replica fault injection, interleaved with arrivals and steps
  // in deterministic event order (arrival < fail < recover on time ties).
  std::vector<ReplicaFault> faults;
  // KV-migration fault injection on the inter-replica NIC (off by default:
  // all rates zero). A migration whose transfer exhausts its retries loses
  // the KV in transit; the conversation is still re-homed and recomputes
  // its history at the destination — the request is never dropped.
  LinkFaultProfile nic_fault_profile;
  LinkRetryPolicy fault_retry;
  uint64_t fault_seed = 0;
  // Elastic-cluster features (DESIGN.md §14): active health probing with
  // quarantine, queue/latency-driven autoscaling, and cross-replica CPU-tier
  // spill. All off by default, leaving the run bit-identical to the
  // inelastic driver. With autoscaling, num_replicas is the slot count
  // (= max_replicas); only autoscale.min_replicas slots start active.
  ElasticOptions elastic;
  // Safety valve on total scheduler iterations across all replicas
  // (0 = unlimited).
  int64_t max_steps = 0;
  // When non-null, receives one replica-tagged entry per scheduler iteration.
  std::vector<ClusterStepTraceEntry>* step_trace = nullptr;
  // When non-null, receives every request outcome (for CSV export).
  std::vector<RequestOutcome>* outcomes = nullptr;
};

// Builds the engine for one replica. Each replica must get its own engine
// (own cache, own simulated hardware); sharing an Engine* across replicas is
// not supported.
using ReplicaEngineFactory =
    std::function<std::unique_ptr<Engine>(int32_t replica_id)>;

ClusterSummary RunClusterExperiment(const ReplicaEngineFactory& make_engine,
                                    const WorkloadTrace& trace,
                                    const ClusterOptions& options = {});

}  // namespace pensieve

#endif  // PENSIEVE_SRC_CLUSTER_CLUSTER_DRIVER_H_

// One stateful serving replica inside a cluster.
//
// A replica owns an engine plus its own virtual clock; the cluster driver
// interleaves replicas in global time order, so each replica advances
// independently exactly as the single-engine driver would have advanced it.
// Routed requests arrive as Deliveries: a delivery carries the request, an
// optional migrated KV payload (imported just before the request is
// enqueued), and the stall the request paid waiting for that payload to
// cross the inter-replica link.

#ifndef PENSIEVE_SRC_CLUSTER_REPLICA_H_
#define PENSIEVE_SRC_CLUSTER_REPLICA_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/cluster/cluster_metrics.h"
#include "src/scheduler/request.h"
#include "src/serving/engine.h"
#include "src/serving/metrics.h"
#include "src/sim/virtual_clock.h"

namespace pensieve {

class Replica {
 public:
  struct Delivery {
    double time = 0.0;  // when the request reaches the replica's queue
    Request request;
    MigratedKvState migrated;  // adopted right before Enqueue (may be empty)
    double migration_stall = 0.0;
    // KV-only delivery (DESIGN.md §13): a handoff stream for a request that
    // finished entirely on the prefill side. The migrated state is imported
    // but no request is enqueued; if the replica dies first, the payload is
    // lost with it (never re-routed).
    bool state_only = false;
    int64_t seq = 0;  // assigned by Deliver(); FIFO among equal times
  };

  struct StepOutcome {
    bool progressed = false;  // false: the replica only advanced its clock
    StepResult result;
  };

  // Everything a failing replica loses: the requests it still owed (queued
  // deliveries plus the engine's queued/running requests, stripped of any
  // in-flight migrated KV), the resident KV destroyed, and the decode
  // progress thrown away.
  struct FailureDrain {
    std::vector<Delivery> deliveries;
    int64_t lost_kv_tokens = 0;
    int64_t lost_generated_tokens = 0;
  };

  // What a *live* drain hands back: unlike Fail, the replica (and its engine)
  // stays up, so in-flight migrated payloads survive inside their deliveries
  // and the engine's cached KV is still exportable afterwards. Used for
  // quarantine drains (keep_state_only=true: state-only KV deliveries are
  // left in place, the replica keeps serving as a cache donor) and for
  // scale-down retirement (keep_state_only=false: state-only payloads are
  // dropped and counted, the replica is about to be destroyed).
  struct LiveDrain {
    std::vector<Delivery> deliveries;
    int64_t lost_generated_tokens = 0;
    // Tokens of state-only KV deliveries discarded (retirement path only).
    int64_t dropped_state_tokens = 0;
  };

  Replica(int32_t id, std::unique_ptr<Engine> engine);

  int32_t id() const { return id_; }
  bool alive() const { return engine_ != nullptr; }
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }
  const std::string& engine_name() const { return engine_name_; }
  double now() const { return clock_.now(); }

  // Combined engine stats across every incarnation of this replica: retired
  // stats from engines destroyed by failures plus the current engine's.
  EngineStats stats() const;

  // Crash at virtual time `now`: destroys the engine (all KV and progress
  // lost), retires its stats, and hands back the unfinished work for the
  // driver to re-route. The replica stops reporting events until Recover.
  FailureDrain Fail(double now);

  // Rejoins with a fresh (empty) engine at virtual time `now`.
  void Recover(std::unique_ptr<Engine> engine, double now);

  // Drains every pending request off a replica that stays alive: undelivered
  // deliveries keep their migrated payloads (the driver re-forwards them),
  // and the engine's queued/running requests are unpinned and handed back
  // via DrainForRehome. The engine keeps its cached KV so the driver can
  // still ExportConversationState from it. With keep_state_only, state-only
  // KV deliveries are re-queued locally instead of drained.
  LiveDrain DrainLive(double now, bool keep_state_only);

  // Initial autoscale slot that never served: drops the engine without
  // retiring stats. Only legal before any work was delivered.
  void Dormant();

  // Graceful scale-down destruction: requires an already-drained replica
  // (no pending deliveries). Retires the engine's stats and returns the KV
  // tokens released with it.
  int64_t Retire(double now);

  void Deliver(Delivery delivery);

  // Global time at which this replica next does something: now() when it can
  // step immediately, the next delivery time when it is waiting for input,
  // +inf when fully quiescent.
  double NextEventTime() const;

  // Runs one scheduler iteration (or clock advance) at NextEventTime().
  // Appends a replica-tagged entry to `step_trace` when non-null.
  StepOutcome StepOnce(std::vector<ClusterStepTraceEntry>* step_trace);

  const MetricsCollector& metrics() const { return metrics_; }
  double last_finish_time() const { return last_finish_time_; }
  double migration_stall_seconds() const { return migration_stall_seconds_; }

  // Prefill-equivalent tokens of routed-but-undelivered requests sitting in
  // pending_. The engine's Load() cannot see these (they are not enqueued
  // yet), so a router balancing on engine load alone herds a burst onto
  // whichever replica looked idle at the first dispatch. Weighted routing
  // (EngineLoad::WeightedTokens) folds this in via the cluster driver's view
  // snapshot.
  int64_t pending_request_tokens() const { return pending_request_tokens_; }

  // Records a request outcome into this replica's metrics. StepOnce does
  // this itself for ordinary requests; handoff halves (prefill_only /
  // handoff_continuation) are instead returned unrecorded so the cluster
  // driver can merge the two sides and record the single end-to-end outcome
  // here, on the replica that finished the request.
  void RecordOutcome(const RequestOutcome& outcome);

 private:
  void DeliverDue();

  struct DeliveryLater {
    bool operator()(const Delivery& a, const Delivery& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  int32_t id_;
  std::unique_ptr<Engine> engine_;  // null while the replica is down
  std::string engine_name_;
  // Stats of engine incarnations destroyed by failures (the work they did
  // before crashing still happened on the simulated hardware).
  EngineStats retired_stats_;
  VirtualClock clock_;
  MetricsCollector metrics_;
  std::priority_queue<Delivery, std::vector<Delivery>, DeliveryLater> pending_;
  int64_t next_delivery_seq_ = 0;
  int64_t pending_request_tokens_ = 0;
  double last_finish_time_ = 0.0;
  double migration_stall_seconds_ = 0.0;
  // Engine reported idle with work queued and nothing pending: it is waiting
  // on an external event (a future delivery), not runnable at now().
  bool stalled_ = false;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_CLUSTER_REPLICA_H_

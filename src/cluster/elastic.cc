#include "src/cluster/elastic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace pensieve {

const char* ReplicaHealthName(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kQuarantined:
      return "quarantined";
  }
  return "?";
}

HealthMonitor::HealthMonitor(int32_t num_replicas,
                             const HealthOptions& options)
    : options_(options), slots_(static_cast<size_t>(num_replicas)) {
  if (options_.enabled) {
    PENSIEVE_CHECK_GT(options_.probe_interval, 0.0);
    PENSIEVE_CHECK_GE(options_.suspect_after, 1);
    PENSIEVE_CHECK_GE(options_.quarantine_after, options_.suspect_after);
    PENSIEVE_CHECK_GE(options_.healthy_after, 1);
  }
  for (const SickWindow& w : options_.sick) {
    PENSIEVE_CHECK_GE(w.replica_id, 0);
    PENSIEVE_CHECK_LT(w.replica_id, num_replicas);
    PENSIEVE_CHECK_LE(w.begin, w.end);
  }
}

bool HealthMonitor::InSickWindow(int32_t replica, double now) const {
  for (const SickWindow& w : options_.sick) {
    if (w.replica_id == replica && now >= w.begin && now < w.end) {
      return true;
    }
  }
  return false;
}

HealthMonitor::Transition HealthMonitor::RecordProbe(int32_t replica,
                                                     bool ok) {
  Slot& slot = slots_[static_cast<size_t>(replica)];
  ++stats_.probes_sent;
  if (ok) {
    ++stats_.probes_ok;
    slot.consecutive_failures = 0;
    ++slot.consecutive_successes;
    if (slot.health == ReplicaHealth::kQuarantined &&
        slot.consecutive_successes >= options_.healthy_after) {
      slot.health = ReplicaHealth::kHealthy;
      slot.consecutive_successes = 0;
      ++stats_.reinstatements;
      return Transition::kReinstate;
    }
    if (slot.health == ReplicaHealth::kSuspect &&
        slot.consecutive_successes >= options_.healthy_after) {
      // A suspect never left the dispatch set; it recovers silently.
      slot.health = ReplicaHealth::kHealthy;
      slot.consecutive_successes = 0;
    }
    return Transition::kNone;
  }
  ++stats_.probes_failed;
  slot.consecutive_successes = 0;
  ++slot.consecutive_failures;
  if (slot.health != ReplicaHealth::kQuarantined &&
      slot.consecutive_failures >= options_.quarantine_after) {
    slot.health = ReplicaHealth::kQuarantined;
    ++stats_.quarantines;
    return Transition::kQuarantine;
  }
  if (slot.health == ReplicaHealth::kHealthy &&
      slot.consecutive_failures >= options_.suspect_after) {
    slot.health = ReplicaHealth::kSuspect;
    ++stats_.suspects;
    return Transition::kSuspect;
  }
  return Transition::kNone;
}

void HealthMonitor::Reset(int32_t replica) {
  slots_[static_cast<size_t>(replica)] = Slot{};
}

ReplicaHealth HealthMonitor::health(int32_t replica) const {
  return slots_[static_cast<size_t>(replica)].health;
}

Autoscaler::Autoscaler(const AutoscaleOptions& options) : options_(options) {
  if (options_.enabled) {
    PENSIEVE_CHECK_GE(options_.min_replicas, 1);
    PENSIEVE_CHECK_GE(options_.max_replicas, options_.min_replicas);
    PENSIEVE_CHECK_GT(options_.check_interval, 0.0);
    PENSIEVE_CHECK_GE(options_.cooldown, 0.0);
    PENSIEVE_CHECK_GT(options_.up_queue_tokens, options_.down_queue_tokens)
        << "autoscale thresholds need a hysteresis band";
    PENSIEVE_CHECK_GE(options_.latency_window, 1);
  }
}

void Autoscaler::RecordFinish(double normalized_latency) {
  if (!options_.enabled) {
    return;
  }
  const size_t cap = static_cast<size_t>(options_.latency_window);
  if (window_.size() < cap) {
    window_.push_back(normalized_latency);
  } else {
    window_[window_next_ % cap] = normalized_latency;
  }
  ++window_next_;
}

double Autoscaler::RecentP99() const {
  if (window_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = window_;
  std::sort(sorted.begin(), sorted.end());
  const size_t idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       std::ceil(0.99 * static_cast<double>(sorted.size())) - 1.0));
  return sorted[idx];
}

Autoscaler::Decision Autoscaler::Decide(double now,
                                        int64_t total_weighted_tokens,
                                        int32_t active_replicas) const {
  if (!options_.enabled || active_replicas <= 0) {
    return Decision::kHold;
  }
  if (now - last_scale_time_ < options_.cooldown) {
    return Decision::kHold;
  }
  const int64_t per_replica =
      total_weighted_tokens / static_cast<int64_t>(active_replicas);
  const double p99 = options_.up_p99_latency > 0.0 ? RecentP99() : 0.0;
  const bool latency_hot =
      options_.up_p99_latency > 0.0 && p99 > options_.up_p99_latency;
  if ((per_replica > options_.up_queue_tokens || latency_hot) &&
      active_replicas < options_.max_replicas) {
    return Decision::kUp;
  }
  if (per_replica < options_.down_queue_tokens && !latency_hot &&
      active_replicas > options_.min_replicas) {
    return Decision::kDown;
  }
  return Decision::kHold;
}

std::string FormatElasticSummary(const ElasticStats& stats) {
  std::string out;
  char buf[512];
  const HealthStats& h = stats.health;
  if (h.probes_sent > 0) {
    std::snprintf(buf, sizeof(buf),
                  "health-probes:     %lld sent (%lld ok, %lld failed), "
                  "%lld suspects\n",
                  static_cast<long long>(h.probes_sent),
                  static_cast<long long>(h.probes_ok),
                  static_cast<long long>(h.probes_failed),
                  static_cast<long long>(h.suspects));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "quarantines:       %lld (%lld reinstated), %lld requests + "
                  "%lld KV tokens drained, %lld streams voided\n",
                  static_cast<long long>(h.quarantines),
                  static_cast<long long>(h.reinstatements),
                  static_cast<long long>(h.drained_requests),
                  static_cast<long long>(h.drained_kv_tokens),
                  static_cast<long long>(h.voided_streams));
    out += buf;
  }
  const AutoscaleStats& a = stats.autoscale;
  if (a.scale_ups > 0 || a.scale_downs > 0 || !a.events.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "scale-events:      %lld up, %lld down (active %d..%d), "
                  "%lld requests + %lld KV tokens drained, %lld idle KV "
                  "released\n",
                  static_cast<long long>(a.scale_ups),
                  static_cast<long long>(a.scale_downs),
                  a.min_active_replicas, a.peak_active_replicas,
                  static_cast<long long>(a.drained_requests),
                  static_cast<long long>(a.drained_kv_tokens),
                  static_cast<long long>(a.released_kv_tokens));
    out += buf;
  }
  const PeerSpillStats& p = stats.peer_spill;
  if (p.offers > 0) {
    std::snprintf(buf, sizeof(buf),
                  "peer-spill-bytes:  %.1f MB out (%lld spills of %lld "
                  "offers, %lld declined, %lld failed), %.1f MB fetched\n",
                  p.spilled_bytes / 1e6, static_cast<long long>(p.spills),
                  static_cast<long long>(p.offers),
                  static_cast<long long>(p.declined_offers),
                  static_cast<long long>(p.failed_transfers),
                  p.fetched_bytes / 1e6);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "peer-spill-tokens: %lld spilled = %lld fetched + %lld "
                  "degraded + %lld invalidated + %lld remaining (peak stash "
                  "%lld)\n",
                  static_cast<long long>(p.spilled_tokens),
                  static_cast<long long>(p.fetched_tokens),
                  static_cast<long long>(p.degraded_tokens),
                  static_cast<long long>(p.invalidated_tokens),
                  static_cast<long long>(p.remaining_tokens),
                  static_cast<long long>(p.stash_peak_tokens));
    out += buf;
  }
  return out;
}

}  // namespace pensieve

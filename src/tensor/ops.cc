#include "src/tensor/ops.h"

#include <cmath>
#include <random>

namespace pensieve {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PENSIEVE_CHECK_EQ(a.rank(), 2u);
  PENSIEVE_CHECK_EQ(b.rank(), 2u);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  PENSIEVE_CHECK_EQ(b.dim(0), k);
  const int64_t n = b.dim(1);
  Tensor c({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // B and C, which is the cache-friendly order for row-major data.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = ap[i * k + kk];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = bp + kk * n;
      float* crow = cp + i * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  PENSIEVE_CHECK_EQ(a.rank(), 2u);
  PENSIEVE_CHECK_EQ(b.rank(), 2u);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  PENSIEVE_CHECK_EQ(b.dim(1), k);
  const int64_t n = b.dim(0);
  Tensor c({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ap + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bp + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += arow[kk] * brow[kk];
      }
      cp[i * n + j] = acc;
    }
  }
  return c;
}

void AddBiasInPlace(Tensor& x, const Tensor& bias) {
  PENSIEVE_CHECK_EQ(x.rank(), 2u);
  PENSIEVE_CHECK_EQ(bias.rank(), 1u);
  const int64_t m = x.dim(0);
  const int64_t n = x.dim(1);
  PENSIEVE_CHECK_EQ(bias.dim(0), n);
  float* xp = x.data();
  const float* bp = bias.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      xp[i * n + j] += bp[j];
    }
  }
}

void AddInPlace(Tensor& x, const Tensor& y) {
  PENSIEVE_CHECK(x.SameShape(y));
  float* xp = x.data();
  const float* yp = y.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    xp[i] += yp[i];
  }
}

void SoftmaxRowsInPlace(Tensor& x) {
  PENSIEVE_CHECK_EQ(x.rank(), 2u);
  const int64_t m = x.dim(0);
  const int64_t n = x.dim(1);
  float* xp = x.data();
  for (int64_t i = 0; i < m; ++i) {
    float* row = xp + i * n;
    float max_v = row[0];
    for (int64_t j = 1; j < n; ++j) {
      max_v = std::max(max_v, row[j]);
    }
    float sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - max_v);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < n; ++j) {
      row[j] *= inv;
    }
  }
}

Tensor LayerNorm(const Tensor& x, const Tensor& gain, const Tensor& bias, float eps) {
  PENSIEVE_CHECK_EQ(x.rank(), 2u);
  const int64_t m = x.dim(0);
  const int64_t n = x.dim(1);
  PENSIEVE_CHECK_EQ(gain.dim(0), n);
  PENSIEVE_CHECK_EQ(bias.dim(0), n);
  Tensor out({m, n});
  const float* xp = x.data();
  const float* gp = gain.data();
  const float* bp = bias.data();
  float* op = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = xp + i * n;
    float mean = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      mean += row[j];
    }
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      var += (row[j] - mean) * (row[j] - mean);
    }
    var /= static_cast<float>(n);
    const float inv_std = 1.0f / std::sqrt(var + eps);
    float* orow = op + i * n;
    for (int64_t j = 0; j < n; ++j) {
      orow[j] = (row[j] - mean) * inv_std * gp[j] + bp[j];
    }
  }
  return out;
}

Tensor RmsNorm(const Tensor& x, const Tensor& gain, float eps) {
  PENSIEVE_CHECK_EQ(x.rank(), 2u);
  const int64_t m = x.dim(0);
  const int64_t n = x.dim(1);
  PENSIEVE_CHECK_EQ(gain.dim(0), n);
  Tensor out({m, n});
  const float* xp = x.data();
  const float* gp = gain.data();
  float* op = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = xp + i * n;
    float sum_sq = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      sum_sq += row[j] * row[j];
    }
    const float inv_rms = 1.0f / std::sqrt(sum_sq / static_cast<float>(n) + eps);
    float* orow = op + i * n;
    for (int64_t j = 0; j < n; ++j) {
      orow[j] = row[j] * inv_rms * gp[j];
    }
  }
  return out;
}

void SiluInPlace(Tensor& x) {
  float* xp = x.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    xp[i] = xp[i] / (1.0f + std::exp(-xp[i]));
  }
}

void GeluInPlace(Tensor& x) {
  // tanh approximation, as used by GPT-family models.
  constexpr float kSqrt2OverPi = 0.7978845608f;
  float* xp = x.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float v = xp[i];
    xp[i] = 0.5f * v * (1.0f + std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v)));
  }
}

void ReluInPlace(Tensor& x) {
  float* xp = x.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    xp[i] = std::max(0.0f, xp[i]);
  }
}

void MulInPlace(Tensor& x, const Tensor& y) {
  PENSIEVE_CHECK(x.SameShape(y));
  float* xp = x.data();
  const float* yp = y.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    xp[i] *= yp[i];
  }
}

void ApplyRotaryInPlace(Tensor& x, const std::vector<int64_t>& positions, float base) {
  PENSIEVE_CHECK_EQ(x.rank(), 3u);
  const int64_t num_tokens = x.dim(0);
  const int64_t num_heads = x.dim(1);
  const int64_t head_dim = x.dim(2);
  PENSIEVE_CHECK_EQ(static_cast<int64_t>(positions.size()), num_tokens);
  PENSIEVE_CHECK_EQ(head_dim % 2, 0);
  float* xp = x.data();
  for (int64_t t = 0; t < num_tokens; ++t) {
    const double pos = static_cast<double>(positions[t]);
    for (int64_t h = 0; h < num_heads; ++h) {
      float* vec = xp + (t * num_heads + h) * head_dim;
      for (int64_t i = 0; i < head_dim / 2; ++i) {
        const double theta =
            pos * std::pow(static_cast<double>(base),
                           -2.0 * static_cast<double>(i) / static_cast<double>(head_dim));
        const float cos_t = static_cast<float>(std::cos(theta));
        const float sin_t = static_cast<float>(std::sin(theta));
        const float a = vec[2 * i];
        const float b = vec[2 * i + 1];
        vec[2 * i] = a * cos_t - b * sin_t;
        vec[2 * i + 1] = a * sin_t + b * cos_t;
      }
    }
  }
}

void FillNormal(Tensor& x, uint64_t seed, float stddev) {
  std::mt19937_64 engine(seed);
  std::normal_distribution<float> dist(0.0f, stddev);
  float* xp = x.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    xp[i] = dist(engine);
  }
}

}  // namespace pensieve

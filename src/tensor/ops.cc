#include "src/tensor/ops.h"

#include <cmath>
#include <random>

#include "src/common/thread_pool.h"

namespace pensieve {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PENSIEVE_CHECK_EQ(a.rank(), 2u);
  PENSIEVE_CHECK_EQ(b.rank(), 2u);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  PENSIEVE_CHECK_EQ(b.dim(0), k);
  const int64_t n = b.dim(1);
  Tensor c({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // B and C, which is the cache-friendly order for row-major data. Rows of C
  // are independent, so the row loop is partitioned; the k-reduction for a
  // row never crosses a chunk boundary (determinism contract). The inner
  // loop is branch-free: skipping zero A elements would trade a predictable
  // FMA stream for a value-dependent branch that the predictor loses on
  // dense activations.
  ParallelFor(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          for (int64_t kk = 0; kk < k; ++kk) {
            const float av = ap[i * k + kk];
            const float* brow = bp + kk * n;
            float* crow = cp + i * n;
            for (int64_t j = 0; j < n; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      },
      GrainForItemCost(k * n));
  return c;
}

namespace {

// Dot product of one activation row against one weight row, with the fixed
// 4-accumulator association both MatMulTransposedB partitioning paths share
// (determinism contract: the value of C[i, j] must not depend on which path
// or chunk computed it).
inline float TransposedDot(const float* arow, const float* brow, int64_t k) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  int64_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    a0 += arow[kk] * brow[kk];
    a1 += arow[kk + 1] * brow[kk + 1];
    a2 += arow[kk + 2] * brow[kk + 2];
    a3 += arow[kk + 3] * brow[kk + 3];
  }
  for (; kk < k; ++kk) {
    a0 += arow[kk] * brow[kk];
  }
  return (a0 + a1) + (a2 + a3);
}

}  // namespace

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  PENSIEVE_CHECK_EQ(a.rank(), 2u);
  PENSIEVE_CHECK_EQ(b.rank(), 2u);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  PENSIEVE_CHECK_EQ(b.dim(1), k);
  const int64_t n = b.dim(0);
  Tensor c({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  if (m <= 8 && m > 0) {
    // Decode-sized batches: partitioning over the m rows would leave every
    // thread but one idle, so partition over output columns instead. Each
    // C element is still one TransposedDot, so bits match the row path.
    ParallelFor(
        0, n,
        [&](int64_t col_begin, int64_t col_end) {
          for (int64_t i = 0; i < m; ++i) {
            const float* arow = ap + i * k;
            for (int64_t j = col_begin; j < col_end; ++j) {
              cp[i * n + j] = TransposedDot(arow, bp + j * k, k);
            }
          }
        },
        GrainForItemCost(m * k));
    return c;
  }
  ParallelFor(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const float* arow = ap + i * k;
          for (int64_t j = 0; j < n; ++j) {
            cp[i * n + j] = TransposedDot(arow, bp + j * k, k);
          }
        }
      },
      GrainForItemCost(k * n));
  return c;
}

void AddBiasInPlace(Tensor& x, const Tensor& bias) {
  PENSIEVE_CHECK_EQ(x.rank(), 2u);
  PENSIEVE_CHECK_EQ(bias.rank(), 1u);
  const int64_t m = x.dim(0);
  const int64_t n = x.dim(1);
  PENSIEVE_CHECK_EQ(bias.dim(0), n);
  float* xp = x.data();
  const float* bp = bias.data();
  ParallelFor(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            xp[i * n + j] += bp[j];
          }
        }
      },
      GrainForItemCost(n));
}

void AddInPlace(Tensor& x, const Tensor& y) {
  PENSIEVE_CHECK(x.SameShape(y));
  float* xp = x.data();
  const float* yp = y.data();
  ParallelFor(
      0, x.numel(),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          xp[i] += yp[i];
        }
      },
      GrainForItemCost(1));
}

void SoftmaxRowsInPlace(Tensor& x) {
  PENSIEVE_CHECK_EQ(x.rank(), 2u);
  const int64_t m = x.dim(0);
  const int64_t n = x.dim(1);
  float* xp = x.data();
  ParallelFor(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          float* row = xp + i * n;
          float max_v = row[0];
          for (int64_t j = 1; j < n; ++j) {
            max_v = std::max(max_v, row[j]);
          }
          float sum = 0.0f;
          for (int64_t j = 0; j < n; ++j) {
            row[j] = std::exp(row[j] - max_v);
            sum += row[j];
          }
          const float inv = 1.0f / sum;
          for (int64_t j = 0; j < n; ++j) {
            row[j] *= inv;
          }
        }
      },
      GrainForItemCost(n));
}

void LayerNormInto(const Tensor& x, const Tensor& gain, const Tensor& bias,
                   float eps, Tensor* out) {
  PENSIEVE_CHECK_EQ(x.rank(), 2u);
  const int64_t m = x.dim(0);
  const int64_t n = x.dim(1);
  PENSIEVE_CHECK_EQ(gain.dim(0), n);
  PENSIEVE_CHECK_EQ(bias.dim(0), n);
  PENSIEVE_CHECK(out->SameShape(x));
  const float* xp = x.data();
  const float* gp = gain.data();
  const float* bp = bias.data();
  float* op = out->data();
  ParallelFor(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const float* row = xp + i * n;
          float mean = 0.0f;
          for (int64_t j = 0; j < n; ++j) {
            mean += row[j];
          }
          mean /= static_cast<float>(n);
          float var = 0.0f;
          for (int64_t j = 0; j < n; ++j) {
            var += (row[j] - mean) * (row[j] - mean);
          }
          var /= static_cast<float>(n);
          const float inv_std = 1.0f / std::sqrt(var + eps);
          float* orow = op + i * n;
          for (int64_t j = 0; j < n; ++j) {
            orow[j] = (row[j] - mean) * inv_std * gp[j] + bp[j];
          }
        }
      },
      GrainForItemCost(n));
}

Tensor LayerNorm(const Tensor& x, const Tensor& gain, const Tensor& bias, float eps) {
  Tensor out(x.shape());
  LayerNormInto(x, gain, bias, eps, &out);
  return out;
}

void RmsNormInto(const Tensor& x, const Tensor& gain, float eps, Tensor* out) {
  PENSIEVE_CHECK_EQ(x.rank(), 2u);
  const int64_t m = x.dim(0);
  const int64_t n = x.dim(1);
  PENSIEVE_CHECK_EQ(gain.dim(0), n);
  PENSIEVE_CHECK(out->SameShape(x));
  const float* xp = x.data();
  const float* gp = gain.data();
  float* op = out->data();
  ParallelFor(
      0, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const float* row = xp + i * n;
          float sum_sq = 0.0f;
          for (int64_t j = 0; j < n; ++j) {
            sum_sq += row[j] * row[j];
          }
          const float inv_rms =
              1.0f / std::sqrt(sum_sq / static_cast<float>(n) + eps);
          float* orow = op + i * n;
          for (int64_t j = 0; j < n; ++j) {
            orow[j] = row[j] * inv_rms * gp[j];
          }
        }
      },
      GrainForItemCost(n));
}

Tensor RmsNorm(const Tensor& x, const Tensor& gain, float eps) {
  Tensor out(x.shape());
  RmsNormInto(x, gain, eps, &out);
  return out;
}

void SiluInPlace(Tensor& x) {
  float* xp = x.data();
  ParallelFor(
      0, x.numel(),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          xp[i] = xp[i] / (1.0f + std::exp(-xp[i]));
        }
      },
      GrainForItemCost(1));
}

void GeluInPlace(Tensor& x) {
  // tanh approximation, as used by GPT-family models.
  constexpr float kSqrt2OverPi = 0.7978845608f;
  float* xp = x.data();
  ParallelFor(
      0, x.numel(),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const float v = xp[i];
          xp[i] =
              0.5f * v * (1.0f + std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v)));
        }
      },
      GrainForItemCost(1));
}

void ReluInPlace(Tensor& x) {
  float* xp = x.data();
  ParallelFor(
      0, x.numel(),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          xp[i] = std::max(0.0f, xp[i]);
        }
      },
      GrainForItemCost(1));
}

void MulInPlace(Tensor& x, const Tensor& y) {
  PENSIEVE_CHECK(x.SameShape(y));
  float* xp = x.data();
  const float* yp = y.data();
  ParallelFor(
      0, x.numel(),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          xp[i] *= yp[i];
        }
      },
      GrainForItemCost(1));
}

void ApplyRotaryInPlace(Tensor& x, const std::vector<int64_t>& positions, float base) {
  PENSIEVE_CHECK_EQ(x.rank(), 3u);
  const int64_t num_tokens = x.dim(0);
  const int64_t num_heads = x.dim(1);
  const int64_t head_dim = x.dim(2);
  PENSIEVE_CHECK_EQ(static_cast<int64_t>(positions.size()), num_tokens);
  PENSIEVE_CHECK_EQ(head_dim % 2, 0);
  float* xp = x.data();
  ParallelFor(
      0, num_tokens,
      [&](int64_t token_begin, int64_t token_end) {
        for (int64_t t = token_begin; t < token_end; ++t) {
          const double pos = static_cast<double>(positions[static_cast<size_t>(t)]);
          for (int64_t h = 0; h < num_heads; ++h) {
            float* vec = xp + (t * num_heads + h) * head_dim;
            for (int64_t i = 0; i < head_dim / 2; ++i) {
              const double theta =
                  pos * std::pow(static_cast<double>(base),
                                 -2.0 * static_cast<double>(i) /
                                     static_cast<double>(head_dim));
              const float cos_t = static_cast<float>(std::cos(theta));
              const float sin_t = static_cast<float>(std::sin(theta));
              const float a = vec[2 * i];
              const float b = vec[2 * i + 1];
              vec[2 * i] = a * cos_t - b * sin_t;
              vec[2 * i + 1] = a * sin_t + b * cos_t;
            }
          }
        }
      },
      GrainForItemCost(num_heads * head_dim));
}

void FillNormal(Tensor& x, uint64_t seed, float stddev) {
  std::mt19937_64 engine(seed);
  std::normal_distribution<float> dist(0.0f, stddev);
  float* xp = x.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    xp[i] = dist(engine);
  }
}

}  // namespace pensieve

// Prepacked weight matrices and the cache-blocked GEMM that consumes them.
//
// Every static projection matrix in the model (wqkv, wo, the FFN mats, the
// tied LM head) is multiplied thousands of times against activations but
// never changes after load. PackedMatrix pays a one-time reorganisation of
// the [out, in] row-major weight into NR-wide column panels so that the hot
// GEMM loop reads both operands with unit stride and keeps an MR x NR
// accumulator tile in registers — the same GotoBLAS/BLIS structure Cutlass
// applies on the GPU side of the paper's implementation.
//
// Layout. Output columns are grouped into panels of kNR; within panel p the
// elements are k-major: packed[p][kk][j] = W[p * kNR + j][kk]. A microkernel
// step therefore loads one contiguous kNR-vector of B per k-step. The last
// panel is zero-padded to full width, so the microkernel never branches on
// column remainder (stores are still clipped to the real width).
//
// Determinism. For every output element C[i][j] the k-reduction order is a
// pure function of k alone: kKC-sized blocks ascending, plain ascending
// accumulation inside each block, one add into C per block. Both
// partitioning strategies (over row-blocks for large m, over panels for the
// decode GEMV path) and every row-remainder microkernel variant follow this
// exact order, so results are bit-identical across thread counts, across
// the two paths, and for the same row regardless of batch size — the
// contract tests/thread_determinism_test.cc pins.
//
// Microkernels. x86-64 builds carry two microkernel bodies: a portable one
// the autovectorizer lowers to SSE, and an AVX2+FMA one (one panel row ==
// one ymm, MR fused multiply-adds per k-step) selected once per process via
// __builtin_cpu_supports — the binary needs no -mavx2 to build or to run on
// older CPUs. Both follow the reduction order above; FMA rounds differently
// than mul+add, so absolute values may differ *between* the two variants,
// but never within a process (one variant serves every call).
//
// Int8 path (QuantMode::kInt8). Decode GEMV is memory-bound: m = 1 streams
// the whole weight matrix per token and saturates the bus long before the
// ALUs. Quantizing the payload to int8 (symmetric per output column:
// scale[j] = amax_k |W[j][k]| / 127, stored once per panel column) quarters
// the bytes streamed while accumulation stays fp32 — each int8 panel entry
// is widened to float inside the microkernel, summed in the exact reduction
// order above, and the column scale is applied once per kKC block as the
// block's partial sum is folded into C. That keeps the §7 determinism
// contract intact for the int8 path: still bit-identical across thread
// counts, partitioning paths and batch sizes (DESIGN.md §12).

#ifndef PENSIEVE_SRC_TENSOR_PACKED_MATRIX_H_
#define PENSIEVE_SRC_TENSOR_PACKED_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace pensieve {

// Weight storage mode for a PackedMatrix. kFp32 is the exact prepacked
// float path; kInt8 stores the panels as symmetric per-column int8 with
// fp32 accumulation.
enum class QuantMode { kFp32, kInt8 };

// "fp32" / "int8".
const char* QuantModeName(QuantMode mode);
// Parses "fp32" / "int8"; returns false on anything else.
bool QuantModeByName(const std::string& name, QuantMode* mode);

// Instruction set the per-process GEMM dispatcher selected: "avx2" or
// "sse". Recorded in bench JSON headers so results are attributable.
const char* GemmIsaName();

// Register-tile and cache-block constants for the packed GEMM. Sized for a
// baseline SSE2 target: an MR x NR = 4 x 8 float accumulator tile uses 8 of
// the 16 xmm registers, and a kKC x kNR packed B block (512 * 8 * 4B = 16KB)
// fits in half an L1d.
inline constexpr int64_t kGemmNR = 8;
inline constexpr int64_t kGemmMR = 4;
inline constexpr int64_t kGemmKC = 512;

// A weight matrix W[out, in] repacked into kNR-wide, k-major column panels.
// Built once at model-construction time; immutable afterwards.
class PackedMatrix {
 public:
  // Empty placeholder (0 x 0); assign a packed value before use.
  PackedMatrix() = default;

  // Packs w (rank 2, [out, in]). Parallelized over panels. kInt8 quantizes
  // each output column symmetrically (scale = amax / 127) while packing;
  // the fp32 weights are not retained.
  explicit PackedMatrix(const Tensor& w, QuantMode mode = QuantMode::kFp32);

  int64_t out_dim() const { return out_dim_; }
  int64_t in_dim() const { return in_dim_; }
  int64_t num_panels() const { return num_panels_; }
  QuantMode quant_mode() const { return quant_mode_; }

  // Start of panel p: in_dim() rows of kGemmNR contiguous floats. fp32 mode
  // only.
  const float* panel(int64_t p) const {
    PENSIEVE_CHECK_LT(p, num_panels_);
    return data_.data() + p * in_dim_ * kGemmNR;
  }

  // Int8-mode accessors: panel payload (same k-major layout as panel(),
  // int8 entries) and the kGemmNR per-column scales of panel p (padding
  // columns carry scale 0).
  const int8_t* qpanel(int64_t p) const {
    PENSIEVE_CHECK_LT(p, num_panels_);
    return qdata_.data() + p * in_dim_ * kGemmNR;
  }
  const float* scales(int64_t p) const {
    PENSIEVE_CHECK_LT(p, num_panels_);
    return scales_.data() + p * kGemmNR;
  }

  // Bytes the GEMV streams per full pass over the matrix (payload plus, in
  // int8 mode, the per-column scales). The memory-bound decode story in
  // BENCH_gemm.json is told in these bytes.
  int64_t PackedBytes() const;

 private:
  int64_t out_dim_ = 0;
  int64_t in_dim_ = 0;
  int64_t num_panels_ = 0;
  QuantMode quant_mode_ = QuantMode::kFp32;
  std::vector<float> data_;      // fp32 mode payload
  std::vector<int8_t> qdata_;    // int8 mode payload
  std::vector<float> scales_;    // int8 mode: num_panels * kGemmNR scales
};

// C[m, out] = A[m, in] * W^T for a prepacked W. Overwrites c (no need to
// zero it first); c must already have shape [m, out]. Equivalent to
// MatMulTransposedB(a, w) up to floating-point reassociation.
//
// m > 8 partitions over row-blocks; m <= 8 (decode) partitions over column
// panels so single-token steps still use every thread.
void MatMulPackedInto(const Tensor& a, const PackedMatrix& w, Tensor* c);

// Allocating wrapper around MatMulPackedInto.
Tensor MatMulPacked(const Tensor& a, const PackedMatrix& w);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_TENSOR_PACKED_MATRIX_H_

// Prepacked weight matrices and the cache-blocked GEMM that consumes them.
//
// Every static projection matrix in the model (wqkv, wo, the FFN mats, the
// tied LM head) is multiplied thousands of times against activations but
// never changes after load. PackedMatrix pays a one-time reorganisation of
// the [out, in] row-major weight into NR-wide column panels so that the hot
// GEMM loop reads both operands with unit stride and keeps an MR x NR
// accumulator tile in registers — the same GotoBLAS/BLIS structure Cutlass
// applies on the GPU side of the paper's implementation.
//
// Layout. Output columns are grouped into panels of kNR; within panel p the
// elements are k-major: packed[p][kk][j] = W[p * kNR + j][kk]. A microkernel
// step therefore loads one contiguous kNR-vector of B per k-step. The last
// panel is zero-padded to full width, so the microkernel never branches on
// column remainder (stores are still clipped to the real width).
//
// Determinism. For every output element C[i][j] the k-reduction order is a
// pure function of k alone: kKC-sized blocks ascending, plain ascending
// accumulation inside each block, one add into C per block. Both
// partitioning strategies (over row-blocks for large m, over panels for the
// decode GEMV path) and every row-remainder microkernel variant follow this
// exact order, so results are bit-identical across thread counts, across
// the two paths, and for the same row regardless of batch size — the
// contract tests/thread_determinism_test.cc pins.
//
// Microkernels. x86-64 builds carry two microkernel bodies: a portable one
// the autovectorizer lowers to SSE, and an AVX2+FMA one (one panel row ==
// one ymm, MR fused multiply-adds per k-step) selected once per process via
// __builtin_cpu_supports — the binary needs no -mavx2 to build or to run on
// older CPUs. Both follow the reduction order above; FMA rounds differently
// than mul+add, so absolute values may differ *between* the two variants,
// but never within a process (one variant serves every call).

#ifndef PENSIEVE_SRC_TENSOR_PACKED_MATRIX_H_
#define PENSIEVE_SRC_TENSOR_PACKED_MATRIX_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace pensieve {

// Register-tile and cache-block constants for the packed GEMM. Sized for a
// baseline SSE2 target: an MR x NR = 4 x 8 float accumulator tile uses 8 of
// the 16 xmm registers, and a kKC x kNR packed B block (512 * 8 * 4B = 16KB)
// fits in half an L1d.
inline constexpr int64_t kGemmNR = 8;
inline constexpr int64_t kGemmMR = 4;
inline constexpr int64_t kGemmKC = 512;

// A weight matrix W[out, in] repacked into kNR-wide, k-major column panels.
// Built once at model-construction time; immutable afterwards.
class PackedMatrix {
 public:
  // Empty placeholder (0 x 0); assign a packed value before use.
  PackedMatrix() = default;

  // Packs w (rank 2, [out, in]). Parallelized over panels.
  explicit PackedMatrix(const Tensor& w);

  int64_t out_dim() const { return out_dim_; }
  int64_t in_dim() const { return in_dim_; }
  int64_t num_panels() const { return num_panels_; }

  // Start of panel p: in_dim() rows of kGemmNR contiguous floats.
  const float* panel(int64_t p) const {
    PENSIEVE_CHECK_LT(p, num_panels_);
    return data_.data() + p * in_dim_ * kGemmNR;
  }

 private:
  int64_t out_dim_ = 0;
  int64_t in_dim_ = 0;
  int64_t num_panels_ = 0;
  std::vector<float> data_;
};

// C[m, out] = A[m, in] * W^T for a prepacked W. Overwrites c (no need to
// zero it first); c must already have shape [m, out]. Equivalent to
// MatMulTransposedB(a, w) up to floating-point reassociation.
//
// m > 8 partitions over row-blocks; m <= 8 (decode) partitions over column
// panels so single-token steps still use every thread.
void MatMulPackedInto(const Tensor& a, const PackedMatrix& w, Tensor* c);

// Allocating wrapper around MatMulPackedInto.
Tensor MatMulPacked(const Tensor& a, const PackedMatrix& w);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_TENSOR_PACKED_MATRIX_H_

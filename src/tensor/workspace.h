// Per-forward workspace arena: a bump allocator for transient compute
// buffers, reused across layers and steps.
//
// The paper's implementation leans on PyTorch's caching allocator to keep
// steady-state decode off the system allocator; this arena is our explicit
// equivalent. The engine (Transformer) owns one Workspace, calls Reset() at
// the top of each forward pass, and hands out borrowed Tensors
// (Tensor::Borrowed) over bump-allocated storage. After the first pass has
// sized the arena, every subsequent pass of the same or smaller footprint
// performs zero heap allocations — tests/workspace_test.cc pins this with a
// global operator-new counting hook.
//
// Lifetime rules:
//  * A pointer or borrowed Tensor obtained from the arena is valid until
//    the next Reset(). Reset() does not free memory, it rewinds the bump
//    pointer (and coalesces overflow slabs into one, so the next pass runs
//    out of a single allocation).
//  * Nothing that must survive the forward pass may live in the arena —
//    Transformer::ForwardInto writes logits to caller-owned storage.
//  * The arena is single-writer: one forward pass at a time. Parallel
//    kernels receive their scratch slices *before* the parallel region
//    starts (see the chunk-indexed scratch in src/kernels/attention.cc).
//
// Buffers are 64-byte aligned so tiles used by the packed GEMM microkernel
// never straddle cache lines.

#ifndef PENSIEVE_SRC_TENSOR_WORKSPACE_H_
#define PENSIEVE_SRC_TENSOR_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace pensieve {

class Workspace {
 public:
  Workspace() = default;

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // Rewinds the arena to empty, invalidating everything allocated since the
  // previous Reset. Capacity is kept; if the previous pass overflowed into
  // extra slabs they are coalesced into one slab of the combined size.
  void Reset();

  // Bump-allocates uninitialized, 64-byte-aligned storage valid until the
  // next Reset().
  float* AllocFloats(int64_t n);
  int64_t* AllocInts(int64_t n);

  // Borrowed tensor over AllocFloats(numel(shape)); contents uninitialized.
  Tensor Alloc(Shape shape);

  // Bytes handed out since the last Reset().
  int64_t bytes_in_use() const { return bytes_in_use_; }
  // Total capacity across slabs.
  int64_t capacity_bytes() const;
  // Test hook: number of slab (heap) allocations ever made. Stable across
  // passes once the arena is warm.
  int64_t total_slab_allocs() const { return total_slab_allocs_; }
  size_t num_slabs() const { return slabs_.size(); }

 private:
  static constexpr int64_t kAlignment = 64;
  static constexpr int64_t kMinSlabBytes = 64 * 1024;

  struct Slab {
    std::unique_ptr<std::byte[]> storage;  // raw, over-allocated by kAlignment
    std::byte* base = nullptr;             // aligned start
    int64_t size = 0;                      // usable bytes from base
    int64_t used = 0;
  };

  std::byte* AllocBytes(int64_t nbytes);
  void AddSlab(int64_t min_size);

  std::vector<Slab> slabs_;
  int64_t bytes_in_use_ = 0;
  int64_t total_slab_allocs_ = 0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_TENSOR_WORKSPACE_H_

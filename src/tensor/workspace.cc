#include "src/tensor/workspace.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace pensieve {

namespace {

int64_t AlignUp(int64_t n, int64_t alignment) {
  return (n + alignment - 1) / alignment * alignment;
}

}  // namespace

void Workspace::Reset() {
  if (slabs_.size() > 1) {
    // The previous pass overflowed the first slab. Replace the slab list
    // with one slab of the combined capacity so the next pass of the same
    // footprint bump-allocates out of a single block and never grows again.
    int64_t total = 0;
    for (const Slab& s : slabs_) {
      total += s.size;
    }
    slabs_.clear();
    AddSlab(total);
  }
  for (Slab& s : slabs_) {
    s.used = 0;
  }
  bytes_in_use_ = 0;
}

std::byte* Workspace::AllocBytes(int64_t nbytes) {
  PENSIEVE_CHECK_GE(nbytes, 0);
  nbytes = AlignUp(nbytes, kAlignment);
  if (slabs_.empty() || slabs_.back().used + nbytes > slabs_.back().size) {
    AddSlab(nbytes);
  }
  Slab& slab = slabs_.back();
  std::byte* p = slab.base + slab.used;
  slab.used += nbytes;
  bytes_in_use_ += nbytes;
  return p;
}

void Workspace::AddSlab(int64_t min_size) {
  int64_t size = std::max<int64_t>(min_size, kMinSlabBytes);
  if (!slabs_.empty()) {
    // Geometric growth keeps the number of overflow slabs (and therefore the
    // number of coalescing re-allocations across the arena's lifetime)
    // logarithmic in the peak footprint.
    size = std::max(size, 2 * slabs_.back().size);
  }
  Slab slab;
  slab.storage = std::make_unique<std::byte[]>(static_cast<size_t>(size + kAlignment));
  ++total_slab_allocs_;
  auto addr = reinterpret_cast<uintptr_t>(slab.storage.get());
  uintptr_t aligned = (addr + kAlignment - 1) / kAlignment * kAlignment;
  slab.base = slab.storage.get() + (aligned - addr);
  slab.size = size;
  slab.used = 0;
  slabs_.push_back(std::move(slab));
}

float* Workspace::AllocFloats(int64_t n) {
  return reinterpret_cast<float*>(AllocBytes(n * static_cast<int64_t>(sizeof(float))));
}

int64_t* Workspace::AllocInts(int64_t n) {
  return reinterpret_cast<int64_t*>(
      AllocBytes(n * static_cast<int64_t>(sizeof(int64_t))));
}

Tensor Workspace::Alloc(Shape shape) {
  int64_t numel = 1;
  for (int64_t d : shape) {
    numel *= d;
  }
  return Tensor::Borrowed(AllocFloats(numel), shape);
}

int64_t Workspace::capacity_bytes() const {
  int64_t total = 0;
  for (const Slab& s : slabs_) {
    total += s.size;
  }
  return total;
}

}  // namespace pensieve

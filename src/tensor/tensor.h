// Minimal dense fp32 CPU tensor used as Pensieve's numeric substrate.
//
// The paper's implementation relies on PyTorch's C++ frontend for operator
// execution; this class plus the free functions in src/tensor/ops.h is our
// from-scratch replacement, sized for the tiny validation models that the
// tests and examples run end to end.

#ifndef PENSIEVE_SRC_TENSOR_TENSOR_H_
#define PENSIEVE_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/logging.h"

namespace pensieve {

// Row-major dense float tensor with up to 4 dimensions.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(size_t i) const {
    PENSIEVE_CHECK_LT(i, shape_.size());
    return shape_[i];
  }
  size_t rank() const { return shape_.size(); }
  int64_t numel() const { return numel_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  float& operator[](int64_t flat_idx) {
    PENSIEVE_CHECK_LT(flat_idx, numel_);
    return data_[static_cast<size_t>(flat_idx)];
  }
  float operator[](int64_t flat_idx) const {
    PENSIEVE_CHECK_LT(flat_idx, numel_);
    return data_[static_cast<size_t>(flat_idx)];
  }

  // Reinterpret with a new shape of equal element count.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  // Contiguous row slice of a rank >= 1 tensor: rows [begin, end) along
  // dimension 0.
  Tensor SliceRows(int64_t begin, int64_t end) const;

  std::string ShapeString() const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;

  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
  std::vector<float> data_;
};

// Max absolute elementwise difference; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_TENSOR_TENSOR_H_

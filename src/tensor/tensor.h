// Minimal dense fp32 CPU tensor used as Pensieve's numeric substrate.
//
// The paper's implementation relies on PyTorch's C++ frontend for operator
// execution; this class plus the free functions in src/tensor/ops.h is our
// from-scratch replacement, sized for the tiny validation models that the
// tests and examples run end to end.
//
// Tensors come in two flavours:
//  * owned    — the default; the buffer lives in a std::vector member.
//  * borrowed — Tensor::Borrowed wraps caller-owned storage (typically a
//    Workspace arena, see src/tensor/workspace.h) without allocating or
//    copying. Copying a borrowed tensor copies the *view* (both alias the
//    same buffer); the buffer must outlive every view. Reshaping a borrowed
//    tensor is free (returns another view of the same buffer).
//
// Shape is a fixed-capacity inline array (rank <= 4), so constructing a
// Tensor view never touches the heap — a prerequisite for the
// allocation-free forward pass.

#ifndef PENSIEVE_SRC_TENSOR_TENSOR_H_
#define PENSIEVE_SRC_TENSOR_TENSOR_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/logging.h"

namespace pensieve {

// Inline tensor shape: up to 4 dimensions, no heap allocation.
class Shape {
 public:
  static constexpr size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) {
    PENSIEVE_CHECK_LE(dims.size(), kMaxRank);
    for (int64_t d : dims) {
      dims_[rank_++] = d;
    }
  }

  size_t size() const { return rank_; }
  int64_t operator[](size_t i) const {
    PENSIEVE_CHECK_LT(i, rank_);
    return dims_[i];
  }
  int64_t& operator[](size_t i) {
    PENSIEVE_CHECK_LT(i, rank_);
    return dims_[i];
  }
  const int64_t* begin() const { return dims_.data(); }
  const int64_t* end() const { return dims_.data() + rank_; }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) {
      return false;
    }
    for (size_t i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) {
        return false;
      }
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  std::array<int64_t, kMaxRank> dims_{};
  size_t rank_ = 0;
};

// Row-major dense float tensor with up to 4 dimensions.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor Zeros(Shape shape);
  static Tensor Full(Shape shape, float value);

  // Non-owning view over caller-owned storage of numel(shape) floats. The
  // buffer must outlive the view and every copy of it; contents are left
  // untouched (not zeroed).
  static Tensor Borrowed(float* buffer, Shape shape);

  // True when the tensor owns its buffer (false for Borrowed views).
  bool owns_data() const { return view_ == nullptr; }

  const Shape& shape() const { return shape_; }
  int64_t dim(size_t i) const {
    PENSIEVE_CHECK_LT(i, shape_.size());
    return shape_[i];
  }
  size_t rank() const { return shape_.size(); }
  int64_t numel() const { return numel_; }

  float* data() { return view_ != nullptr ? view_ : data_.data(); }
  const float* data() const { return view_ != nullptr ? view_ : data_.data(); }

  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  float& operator[](int64_t flat_idx) {
    PENSIEVE_CHECK_LT(flat_idx, numel_);
    return data()[flat_idx];
  }
  float operator[](int64_t flat_idx) const {
    PENSIEVE_CHECK_LT(flat_idx, numel_);
    return data()[flat_idx];
  }

  // Reinterpret with a new shape of equal element count. For a borrowed
  // tensor this is a free alias of the same buffer; for an owned tensor the
  // data is copied.
  Tensor Reshaped(Shape new_shape) const;

  // Contiguous row slice of a rank >= 1 tensor: rows [begin, end) along
  // dimension 0. Always returns an owned copy.
  Tensor SliceRows(int64_t begin, int64_t end) const;

  std::string ShapeString() const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;

  Shape shape_;
  int64_t numel_ = 0;
  std::vector<float> data_;
  float* view_ = nullptr;  // non-null => borrowed (data_ stays empty)
};

// Max absolute elementwise difference; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_TENSOR_TENSOR_H_

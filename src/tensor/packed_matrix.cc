#include "src/tensor/packed_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/thread_pool.h"

// x86-64 builds get a runtime-dispatched AVX2+FMA microkernel next to the
// portable one: the binary itself stays baseline (no -mavx2 build flag
// required), and the dispatcher below picks the wide kernel only when the
// CPU reports support.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PENSIEVE_GEMM_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace pensieve {

const char* QuantModeName(QuantMode mode) {
  return mode == QuantMode::kInt8 ? "int8" : "fp32";
}

bool QuantModeByName(const std::string& name, QuantMode* mode) {
  if (name == "fp32") {
    *mode = QuantMode::kFp32;
    return true;
  }
  if (name == "int8") {
    *mode = QuantMode::kInt8;
    return true;
  }
  return false;
}

PackedMatrix::PackedMatrix(const Tensor& w, QuantMode mode) : quant_mode_(mode) {
  PENSIEVE_CHECK_EQ(w.rank(), 2u);
  out_dim_ = w.dim(0);
  in_dim_ = w.dim(1);
  num_panels_ = (out_dim_ + kGemmNR - 1) / kGemmNR;
  const float* wp = w.data();
  const int64_t k = in_dim_;
  if (mode == QuantMode::kInt8) {
    qdata_.assign(static_cast<size_t>(num_panels_ * k * kGemmNR), 0);
    scales_.assign(static_cast<size_t>(num_panels_ * kGemmNR), 0.0f);
    int8_t* qp = qdata_.data();
    float* sp = scales_.data();
    ParallelFor(
        0, num_panels_,
        [&](int64_t p_begin, int64_t p_end) {
          for (int64_t p = p_begin; p < p_end; ++p) {
            const int64_t ncols = std::min(kGemmNR, out_dim_ - p * kGemmNR);
            int8_t* panel = qp + p * k * kGemmNR;
            float* pscale = sp + p * kGemmNR;
            for (int64_t j = 0; j < ncols; ++j) {
              const float* wrow = wp + (p * kGemmNR + j) * k;
              float amax = 0.0f;
              for (int64_t kk = 0; kk < k; ++kk) {
                amax = std::max(amax, std::fabs(wrow[kk]));
              }
              // All-zero (or empty) column: scale 0, all codes 0, and the
              // dequantized column is exactly zero.
              const float scale = amax / 127.0f;
              pscale[j] = scale;
              if (scale == 0.0f) {
                continue;
              }
              for (int64_t kk = 0; kk < k; ++kk) {
                // lround = round-half-away-from-zero, independent of the FP
                // environment, so packing is deterministic. |wrow| <= amax
                // bounds the quotient by 127; the clamp only guards rounding
                // at the +-amax endpoints.
                const long q = std::lround(wrow[kk] / scale);
                panel[kk * kGemmNR + j] = static_cast<int8_t>(
                    std::max<long>(-127, std::min<long>(127, q)));
              }
            }
          }
        },
        GrainForItemCost(2 * k * kGemmNR));
    return;
  }
  data_.assign(static_cast<size_t>(num_panels_ * in_dim_ * kGemmNR), 0.0f);
  float* dp = data_.data();
  ParallelFor(
      0, num_panels_,
      [&](int64_t p_begin, int64_t p_end) {
        for (int64_t p = p_begin; p < p_end; ++p) {
          const int64_t ncols = std::min(kGemmNR, out_dim_ - p * kGemmNR);
          float* panel = dp + p * k * kGemmNR;
          for (int64_t j = 0; j < ncols; ++j) {
            const float* wrow = wp + (p * kGemmNR + j) * k;
            for (int64_t kk = 0; kk < k; ++kk) {
              panel[kk * kGemmNR + j] = wrow[kk];
            }
          }
        }
      },
      GrainForItemCost(k * kGemmNR));
}

int64_t PackedMatrix::PackedBytes() const {
  if (quant_mode_ == QuantMode::kInt8) {
    return static_cast<int64_t>(qdata_.size()) * static_cast<int64_t>(sizeof(int8_t)) +
           static_cast<int64_t>(scales_.size()) * static_cast<int64_t>(sizeof(float));
  }
  return static_cast<int64_t>(data_.size()) * static_cast<int64_t>(sizeof(float));
}

namespace {

// One MR x kGemmNR register tile over k-range [0, kc) of a packed panel
// block. `first` selects store-vs-accumulate into C; per output element this
// yields the fixed reduction order documented in the header. MR is a
// template parameter so the accumulator array stays in registers; the
// per-element arithmetic order is identical for every MR, which keeps the
// same row bit-identical across batch sizes.
template <int MR>
void MicroKernel(const float* a, int64_t lda, const float* bblock, int64_t kc,
                 bool first, float* c, int64_t ldc, int64_t ncols) {
  float acc[MR][kGemmNR] = {{0.0f}};
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* brow = bblock + kk * kGemmNR;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      for (int64_t j = 0; j < kGemmNR; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = c + r * ldc;
    if (first) {
      for (int64_t j = 0; j < ncols; ++j) {
        crow[j] = acc[r][j];
      }
    } else {
      for (int64_t j = 0; j < ncols; ++j) {
        crow[j] += acc[r][j];
      }
    }
  }
}

// Computes C rows covered by row-blocks [rb_begin, rb_end) against panels
// [p_begin, p_end). Shared by both partitioning paths so their
// per-element reduction order is identical by construction. Loop nest is
// kb -> panel -> row-block: the kc x kNR packed B block stays L1-resident
// across all row-blocks of the chunk.
void ComputeRange(const float* ap, int64_t m, int64_t k, const PackedMatrix& w,
                  float* cp, int64_t n, int64_t rb_begin, int64_t rb_end,
                  int64_t p_begin, int64_t p_end) {
  for (int64_t kb = 0; kb < k; kb += kGemmKC) {
    const int64_t kc = std::min(kGemmKC, k - kb);
    const bool first = kb == 0;
    for (int64_t p = p_begin; p < p_end; ++p) {
      const int64_t j0 = p * kGemmNR;
      const int64_t ncols = std::min(kGemmNR, n - j0);
      const float* bblock = w.panel(p) + kb * kGemmNR;
      for (int64_t rb = rb_begin; rb < rb_end; ++rb) {
        const int64_t i0 = rb * kGemmMR;
        const int64_t mr = std::min(kGemmMR, m - i0);
        const float* ablock = ap + i0 * k + kb;
        float* cblock = cp + i0 * n + j0;
        switch (mr) {
          case 1:
            MicroKernel<1>(ablock, k, bblock, kc, first, cblock, n, ncols);
            break;
          case 2:
            MicroKernel<2>(ablock, k, bblock, kc, first, cblock, n, ncols);
            break;
          case 3:
            MicroKernel<3>(ablock, k, bblock, kc, first, cblock, n, ncols);
            break;
          default:
            MicroKernel<4>(ablock, k, bblock, kc, first, cblock, n, ncols);
            break;
        }
      }
    }
  }
}

// Int8 twin of MicroKernel: the panel payload is int8, widened to float at
// each k-step, accumulated in fp32 in the same kk-ascending order, and the
// per-column scale is applied once as the block's partial sum folds into C.
// Per output element: C = sum over k-blocks of scale[j] * (block partial) —
// a pure function of k, identical across MR variants and both partitioning
// paths, so the §7 bit-identity contract holds for the quantized path too.
template <int MR>
void MicroKernelInt8(const float* a, int64_t lda, const int8_t* bblock,
                     const float* colscale, int64_t kc, bool first, float* c,
                     int64_t ldc, int64_t ncols) {
  float acc[MR][kGemmNR] = {{0.0f}};
  for (int64_t kk = 0; kk < kc; ++kk) {
    const int8_t* brow = bblock + kk * kGemmNR;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      for (int64_t j = 0; j < kGemmNR; ++j) {
        acc[r][j] += av * static_cast<float>(brow[j]);
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = c + r * ldc;
    if (first) {
      for (int64_t j = 0; j < ncols; ++j) {
        crow[j] = colscale[j] * acc[r][j];
      }
    } else {
      for (int64_t j = 0; j < ncols; ++j) {
        crow[j] += colscale[j] * acc[r][j];
      }
    }
  }
}

// Int8 twin of ComputeRange; identical loop nest, panels resolved through
// qpanel()/scales().
void ComputeRangeInt8(const float* ap, int64_t m, int64_t k, const PackedMatrix& w,
                      float* cp, int64_t n, int64_t rb_begin, int64_t rb_end,
                      int64_t p_begin, int64_t p_end) {
  for (int64_t kb = 0; kb < k; kb += kGemmKC) {
    const int64_t kc = std::min(kGemmKC, k - kb);
    const bool first = kb == 0;
    for (int64_t p = p_begin; p < p_end; ++p) {
      const int64_t j0 = p * kGemmNR;
      const int64_t ncols = std::min(kGemmNR, n - j0);
      const int8_t* bblock = w.qpanel(p) + kb * kGemmNR;
      const float* colscale = w.scales(p);
      for (int64_t rb = rb_begin; rb < rb_end; ++rb) {
        const int64_t i0 = rb * kGemmMR;
        const int64_t mr = std::min(kGemmMR, m - i0);
        const float* ablock = ap + i0 * k + kb;
        float* cblock = cp + i0 * n + j0;
        switch (mr) {
          case 1:
            MicroKernelInt8<1>(ablock, k, bblock, colscale, kc, first, cblock,
                               n, ncols);
            break;
          case 2:
            MicroKernelInt8<2>(ablock, k, bblock, colscale, kc, first, cblock,
                               n, ncols);
            break;
          case 3:
            MicroKernelInt8<3>(ablock, k, bblock, colscale, kc, first, cblock,
                               n, ncols);
            break;
          default:
            MicroKernelInt8<4>(ablock, k, bblock, colscale, kc, first, cblock,
                               n, ncols);
            break;
        }
      }
    }
  }
}

#if PENSIEVE_GEMM_X86_DISPATCH

// AVX2+FMA twin of MicroKernel: one kGemmNR-wide panel row is exactly one
// ymm vector, so the MR x NR tile is MR ymm accumulators fed by one fused
// multiply-add per (row, k) step. Per output element the reduction order is
// the same kk-ascending order as the generic kernel and identical across
// every MR, so the batch-size/path bit-identity invariants carry over
// unchanged; only the rounding differs from the generic kernel (FMA skips
// the intermediate product rounding), which is why dispatch is per-process:
// one variant serves every call, whatever its partitioning.
template <int MR>
__attribute__((target("avx2,fma"))) void MicroKernelAvx2(
    const float* a, int64_t lda, const float* bblock, int64_t kc, bool first,
    float* c, int64_t ldc, int64_t ncols) {
  static_assert(kGemmNR == 8, "one panel row == one 8-float ymm vector");
  __m256 acc[MR];
  for (int r = 0; r < MR; ++r) {
    acc[r] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b = _mm256_loadu_ps(bblock + kk * kGemmNR);
    for (int r = 0; r < MR; ++r) {
      acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(a[r * lda + kk]), b, acc[r]);
    }
  }
  if (ncols == kGemmNR) {
    for (int r = 0; r < MR; ++r) {
      float* crow = c + r * ldc;
      if (first) {
        _mm256_storeu_ps(crow, acc[r]);
      } else {
        _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[r]));
      }
    }
  } else {
    // Ragged last panel: the accumulators hold the full 8 lanes (the panel
    // is zero-padded), only ncols of them are real outputs.
    alignas(32) float tmp[kGemmNR];
    for (int r = 0; r < MR; ++r) {
      _mm256_store_ps(tmp, acc[r]);
      float* crow = c + r * ldc;
      if (first) {
        for (int64_t j = 0; j < ncols; ++j) {
          crow[j] = tmp[j];
        }
      } else {
        for (int64_t j = 0; j < ncols; ++j) {
          crow[j] += tmp[j];
        }
      }
    }
  }
}

__attribute__((target("avx2,fma"))) void ComputeRangeAvx2(
    const float* ap, int64_t m, int64_t k, const PackedMatrix& w, float* cp,
    int64_t n, int64_t rb_begin, int64_t rb_end, int64_t p_begin,
    int64_t p_end) {
  for (int64_t kb = 0; kb < k; kb += kGemmKC) {
    const int64_t kc = std::min(kGemmKC, k - kb);
    const bool first = kb == 0;
    for (int64_t p = p_begin; p < p_end; ++p) {
      const int64_t j0 = p * kGemmNR;
      const int64_t ncols = std::min(kGemmNR, n - j0);
      const float* bblock = w.panel(p) + kb * kGemmNR;
      for (int64_t rb = rb_begin; rb < rb_end; ++rb) {
        const int64_t i0 = rb * kGemmMR;
        const int64_t mr = std::min(kGemmMR, m - i0);
        const float* ablock = ap + i0 * k + kb;
        float* cblock = cp + i0 * n + j0;
        switch (mr) {
          case 1:
            MicroKernelAvx2<1>(ablock, k, bblock, kc, first, cblock, n, ncols);
            break;
          case 2:
            MicroKernelAvx2<2>(ablock, k, bblock, kc, first, cblock, n, ncols);
            break;
          case 3:
            MicroKernelAvx2<3>(ablock, k, bblock, kc, first, cblock, n, ncols);
            break;
          default:
            MicroKernelAvx2<4>(ablock, k, bblock, kc, first, cblock, n, ncols);
            break;
        }
      }
    }
  }
}

// AVX2+FMA twin of MicroKernelInt8: 8 int8 panel entries are widened to one
// ymm float vector per k-step (cvtepi8_epi32 -> cvtepi32_ps), accumulated
// with FMA in the same kk-ascending order, and the column-scale vector is
// applied once per k-block on the way into C. The widening converts are
// exact (int8 is representable in fp32), so only the FMA-vs-mul+add rounding
// differs from the portable kernel — handled, as for fp32, by per-process
// dispatch.
template <int MR>
__attribute__((target("avx2,fma"))) void MicroKernelInt8Avx2(
    const float* a, int64_t lda, const int8_t* bblock, const float* colscale,
    int64_t kc, bool first, float* c, int64_t ldc, int64_t ncols) {
  static_assert(kGemmNR == 8, "one int8 panel row == one 8-byte load");
  __m256 acc[MR];
  for (int r = 0; r < MR; ++r) {
    acc[r] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m128i b8 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(bblock + kk * kGemmNR));
    const __m256 b = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b8));
    for (int r = 0; r < MR; ++r) {
      acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(a[r * lda + kk]), b, acc[r]);
    }
  }
  const __m256 s = _mm256_loadu_ps(colscale);
  if (ncols == kGemmNR) {
    for (int r = 0; r < MR; ++r) {
      float* crow = c + r * ldc;
      if (first) {
        _mm256_storeu_ps(crow, _mm256_mul_ps(s, acc[r]));
      } else {
        _mm256_storeu_ps(crow,
                         _mm256_fmadd_ps(s, acc[r], _mm256_loadu_ps(crow)));
      }
    }
  } else {
    // Ragged last panel: scale all 8 lanes (padding scales are 0), store
    // only the real columns. An element's panel — hence its store path — is
    // fixed by its column index, so this never mixes with the vector path
    // for the same element.
    alignas(32) float tmp[kGemmNR];
    for (int r = 0; r < MR; ++r) {
      _mm256_store_ps(tmp, _mm256_mul_ps(s, acc[r]));
      float* crow = c + r * ldc;
      if (first) {
        for (int64_t j = 0; j < ncols; ++j) {
          crow[j] = tmp[j];
        }
      } else {
        for (int64_t j = 0; j < ncols; ++j) {
          crow[j] += tmp[j];
        }
      }
    }
  }
}

__attribute__((target("avx2,fma"))) void ComputeRangeInt8Avx2(
    const float* ap, int64_t m, int64_t k, const PackedMatrix& w, float* cp,
    int64_t n, int64_t rb_begin, int64_t rb_end, int64_t p_begin,
    int64_t p_end) {
  for (int64_t kb = 0; kb < k; kb += kGemmKC) {
    const int64_t kc = std::min(kGemmKC, k - kb);
    const bool first = kb == 0;
    for (int64_t p = p_begin; p < p_end; ++p) {
      const int64_t j0 = p * kGemmNR;
      const int64_t ncols = std::min(kGemmNR, n - j0);
      const int8_t* bblock = w.qpanel(p) + kb * kGemmNR;
      const float* colscale = w.scales(p);
      for (int64_t rb = rb_begin; rb < rb_end; ++rb) {
        const int64_t i0 = rb * kGemmMR;
        const int64_t mr = std::min(kGemmMR, m - i0);
        const float* ablock = ap + i0 * k + kb;
        float* cblock = cp + i0 * n + j0;
        switch (mr) {
          case 1:
            MicroKernelInt8Avx2<1>(ablock, k, bblock, colscale, kc, first,
                                   cblock, n, ncols);
            break;
          case 2:
            MicroKernelInt8Avx2<2>(ablock, k, bblock, colscale, kc, first,
                                   cblock, n, ncols);
            break;
          case 3:
            MicroKernelInt8Avx2<3>(ablock, k, bblock, colscale, kc, first,
                                   cblock, n, ncols);
            break;
          default:
            MicroKernelInt8Avx2<4>(ablock, k, bblock, colscale, kc, first,
                                   cblock, n, ncols);
            break;
        }
      }
    }
  }
}

#endif  // PENSIEVE_GEMM_X86_DISPATCH

using ComputeRangeFn = void (*)(const float*, int64_t, int64_t,
                                const PackedMatrix&, float*, int64_t, int64_t,
                                int64_t, int64_t, int64_t);

bool GemmDispatchHasAvx2() {
#if PENSIEVE_GEMM_X86_DISPATCH
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// Picked once per process so every GEMM call — any path, any thread count —
// runs the same instruction sequence, keeping results bit-reproducible
// within a run.
ComputeRangeFn PickComputeRange() {
#if PENSIEVE_GEMM_X86_DISPATCH
  if (GemmDispatchHasAvx2()) {
    return ComputeRangeAvx2;
  }
#endif
  return ComputeRange;
}

ComputeRangeFn PickComputeRangeInt8() {
#if PENSIEVE_GEMM_X86_DISPATCH
  if (GemmDispatchHasAvx2()) {
    return ComputeRangeInt8Avx2;
  }
#endif
  return ComputeRangeInt8;
}

const ComputeRangeFn kComputeRange = PickComputeRange();
const ComputeRangeFn kComputeRangeInt8 = PickComputeRangeInt8();

// Decode-sized matmuls (m <= kGemvMaxRows) partition over output panels
// instead of rows; a single-token step otherwise runs on one thread.
constexpr int64_t kGemvMaxRows = 8;

}  // namespace

const char* GemmIsaName() { return GemmDispatchHasAvx2() ? "avx2" : "sse"; }

void MatMulPackedInto(const Tensor& a, const PackedMatrix& w, Tensor* c) {
  PENSIEVE_CHECK_EQ(a.rank(), 2u);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  PENSIEVE_CHECK_EQ(k, w.in_dim());
  const int64_t n = w.out_dim();
  PENSIEVE_CHECK_EQ(c->rank(), 2u);
  PENSIEVE_CHECK_EQ(c->dim(0), m);
  PENSIEVE_CHECK_EQ(c->dim(1), n);
  if (m == 0 || n == 0) {
    return;
  }
  const float* ap = a.data();
  float* cp = c->data();
  if (k == 0) {
    std::memset(cp, 0, static_cast<size_t>(m * n) * sizeof(float));
    return;
  }
  const ComputeRangeFn compute =
      w.quant_mode() == QuantMode::kInt8 ? kComputeRangeInt8 : kComputeRange;
  const int64_t num_row_blocks = (m + kGemmMR - 1) / kGemmMR;
  if (m <= kGemvMaxRows) {
    ParallelFor(
        0, w.num_panels(),
        [&](int64_t p_begin, int64_t p_end) {
          compute(ap, m, k, w, cp, n, 0, num_row_blocks, p_begin, p_end);
        },
        GrainForItemCost(m * k * kGemmNR));
    return;
  }
  ParallelFor(
      0, num_row_blocks,
      [&](int64_t rb_begin, int64_t rb_end) {
        compute(ap, m, k, w, cp, n, rb_begin, rb_end, 0, w.num_panels());
      },
      GrainForItemCost(kGemmMR * k * n));
}

Tensor MatMulPacked(const Tensor& a, const PackedMatrix& w) {
  Tensor c({a.dim(0), w.out_dim()});
  MatMulPackedInto(a, w, &c);
  return c;
}

}  // namespace pensieve

// Dense CPU operators used by the reference transformer (src/model) and the
// attention kernels (src/kernels).
//
// These mirror the operator set Pensieve obtains from the PyTorch C++
// frontend in the paper's implementation: GEMM, softmax, LayerNorm, RMSNorm,
// SiLU/GELU activations, and rotary position embedding.

#ifndef PENSIEVE_SRC_TENSOR_OPS_H_
#define PENSIEVE_SRC_TENSOR_OPS_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace pensieve {

// C[m,n] = A[m,k] * B[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

// C[m,n] = A[m,k] * B[n,k]^T. Weight matrices are stored [out, in], so this
// is the projection form used throughout the model.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

// y = x + b, broadcasting bias b[n] over rows of x[m,n].
void AddBiasInPlace(Tensor& x, const Tensor& bias);

// Elementwise sum into x; shapes must match.
void AddInPlace(Tensor& x, const Tensor& y);

// Row-wise numerically-stable softmax over the last dimension of a rank-2
// tensor.
void SoftmaxRowsInPlace(Tensor& x);

// Standard LayerNorm over the last dimension with learned gain/bias.
Tensor LayerNorm(const Tensor& x, const Tensor& gain, const Tensor& bias, float eps);

// RMSNorm (Zhang & Sennrich) over the last dimension with learned gain.
Tensor RmsNorm(const Tensor& x, const Tensor& gain, float eps);

// Out-parameter norm variants for the allocation-free forward pass; *out
// must already have x's shape (typically a workspace-borrowed tensor) and
// may not alias x.
void LayerNormInto(const Tensor& x, const Tensor& gain, const Tensor& bias,
                   float eps, Tensor* out);
void RmsNormInto(const Tensor& x, const Tensor& gain, float eps, Tensor* out);

// Elementwise activations.
void SiluInPlace(Tensor& x);
void GeluInPlace(Tensor& x);
void ReluInPlace(Tensor& x);

// Elementwise product into x; shapes must match. (Used by Llama's gated FFN.)
void MulInPlace(Tensor& x, const Tensor& y);

// Applies rotary position embedding in place to x[num_tokens, num_heads,
// head_dim]; positions[t] is the absolute position of token t. Pairs
// (x[2i], x[2i+1]) are rotated by theta_i = pos * base^(-2i/head_dim).
void ApplyRotaryInPlace(Tensor& x, const std::vector<int64_t>& positions, float base);

// Fills a tensor with samples from N(0, stddev) using the given engine seed.
void FillNormal(Tensor& x, uint64_t seed, float stddev);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_TENSOR_OPS_H_

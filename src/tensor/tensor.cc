#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pensieve {

namespace {

int64_t ComputeNumel(const Shape& shape) {
  int64_t numel = 1;
  for (int64_t d : shape) {
    PENSIEVE_CHECK_GE(d, 0);
    numel *= d;
  }
  return numel;
}

}  // namespace

Tensor::Tensor(Shape shape)
    : shape_(shape), numel_(ComputeNumel(shape_)),
      data_(static_cast<size_t>(numel_), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(shape), numel_(ComputeNumel(shape_)), data_(std::move(data)) {
  PENSIEVE_CHECK_EQ(static_cast<int64_t>(data_.size()), numel_);
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(shape); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(shape);
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::Borrowed(float* buffer, Shape shape) {
  Tensor t;
  t.shape_ = shape;
  t.numel_ = ComputeNumel(t.shape_);
  PENSIEVE_CHECK(buffer != nullptr || t.numel_ == 0);
  t.view_ = buffer;
  return t;
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  PENSIEVE_CHECK_EQ(idx.size(), shape_.size());
  int64_t flat = 0;
  size_t i = 0;
  for (int64_t v : idx) {
    PENSIEVE_CHECK_GE(v, 0);
    PENSIEVE_CHECK_LT(v, shape_[i]);
    flat = flat * shape_[i] + v;
    ++i;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data()[FlatIndex(idx)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data()[FlatIndex(idx)];
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  PENSIEVE_CHECK_EQ(ComputeNumel(new_shape), numel_);
  if (view_ != nullptr) {
    return Borrowed(view_, new_shape);
  }
  return Tensor(new_shape, data_);
}

Tensor Tensor::SliceRows(int64_t begin, int64_t end) const {
  PENSIEVE_CHECK_GE(rank(), 1u);
  PENSIEVE_CHECK_GE(begin, 0);
  PENSIEVE_CHECK_LE(begin, end);
  PENSIEVE_CHECK_LE(end, shape_[0]);
  int64_t row_size = shape_[0] > 0 ? numel_ / shape_[0] : 0;
  Shape new_shape = shape_;
  new_shape[0] = end - begin;
  const float* base = data();
  std::vector<float> new_data(base + begin * row_size, base + end * row_size);
  return Tensor(new_shape, std::move(new_data));
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  PENSIEVE_CHECK(a.SameShape(b));
  float max_diff = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace pensieve

#include "src/tensor/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>

namespace pensieve {

namespace {

int64_t ComputeNumel(const std::vector<int64_t>& shape) {
  int64_t numel = 1;
  for (int64_t d : shape) {
    PENSIEVE_CHECK_GE(d, 0);
    numel *= d;
  }
  return numel;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), numel_(ComputeNumel(shape_)),
      data_(static_cast<size_t>(numel_), 0.0f) {
  PENSIEVE_CHECK_LE(shape_.size(), 4u);
}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), numel_(ComputeNumel(shape_)), data_(std::move(data)) {
  PENSIEVE_CHECK_LE(shape_.size(), 4u);
  PENSIEVE_CHECK_EQ(static_cast<int64_t>(data_.size()), numel_);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  PENSIEVE_CHECK_EQ(idx.size(), shape_.size());
  int64_t flat = 0;
  size_t i = 0;
  for (int64_t v : idx) {
    PENSIEVE_CHECK_GE(v, 0);
    PENSIEVE_CHECK_LT(v, shape_[i]);
    flat = flat * shape_[i] + v;
    ++i;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data_[static_cast<size_t>(FlatIndex(idx))];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data_[static_cast<size_t>(FlatIndex(idx))];
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  PENSIEVE_CHECK_EQ(ComputeNumel(new_shape), numel_);
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::SliceRows(int64_t begin, int64_t end) const {
  PENSIEVE_CHECK_GE(rank(), 1u);
  PENSIEVE_CHECK_GE(begin, 0);
  PENSIEVE_CHECK_LE(begin, end);
  PENSIEVE_CHECK_LE(end, shape_[0]);
  int64_t row_size = shape_[0] > 0 ? numel_ / shape_[0] : 0;
  std::vector<int64_t> new_shape = shape_;
  new_shape[0] = end - begin;
  std::vector<float> new_data(data_.begin() + static_cast<size_t>(begin * row_size),
                              data_.begin() + static_cast<size_t>(end * row_size));
  return Tensor(std::move(new_shape), std::move(new_data));
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  PENSIEVE_CHECK(a.SameShape(b));
  float max_diff = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace pensieve

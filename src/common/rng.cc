#include "src/common/rng.h"

#include <cmath>

#include "src/common/logging.h"

namespace pensieve {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PENSIEVE_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  PENSIEVE_CHECK_GT(mean, 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

int64_t Rng::Poisson(double mean) {
  PENSIEVE_CHECK_GE(mean, 0.0);
  if (mean == 0.0) {
    return 0;
  }
  std::poisson_distribution<int64_t> dist(mean);
  return dist(engine_);
}

double Rng::LogNormalWithMean(double mean, double stddev) {
  PENSIEVE_CHECK_GT(mean, 0.0);
  PENSIEVE_CHECK_GT(stddev, 0.0);
  // If X ~ LogNormal(mu, sigma), then E[X] = exp(mu + sigma^2/2) and
  // Var[X] = (exp(sigma^2) - 1) exp(2mu + sigma^2). Invert for (mu, sigma).
  const double variance_ratio = (stddev * stddev) / (mean * mean);
  const double sigma2 = std::log1p(variance_ratio);
  const double mu = std::log(mean) - 0.5 * sigma2;
  std::lognormal_distribution<double> dist(mu, std::sqrt(sigma2));
  return dist(engine_);
}

int64_t Rng::GeometricAtLeastOne(double p) {
  PENSIEVE_CHECK_GT(p, 0.0);
  PENSIEVE_CHECK_LE(p, 1.0);
  std::geometric_distribution<int64_t> dist(p);
  return dist(engine_) + 1;
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace pensieve

// Deterministic intra-op parallelism for the CPU compute substrate.
//
// The real Pensieve artifact gets its parallelism from CUDA (Cutlass GEMMs,
// a FlashAttention-style fused softmax, paper §5). This pool is the CPU
// analogue: a persistent set of workers plus ParallelFor with *static
// index-range partitioning*, used by the attention kernels (src/kernels),
// the dense operators (src/tensor) and the reference transformer
// (src/model).
//
// Determinism contract. ParallelFor splits [begin, end) into contiguous
// chunks and runs fn(chunk_begin, chunk_end[, chunk_index]). Callers may
// only partition loops whose iterations write disjoint outputs and whose
// per-iteration floating-point reduction order does not depend on the chunk
// boundaries (e.g. one output row / one (query token, head) pair per
// index). Under that discipline results are bit-identical for every thread
// count — the same fixed-reduction-order discipline vLLM-style paged
// kernels apply per (query, head) pair. tests/thread_determinism_test.cc
// enforces it at threads ∈ {1, 2, 8}.
//
// Scheduling. Chunk *boundaries* are a pure function of (range, grain,
// num_threads): chunk_size = max(grain, ceil(n / num_threads)). Which
// thread executes which chunk is first-come-first-served (and thus
// non-deterministic), which is harmless because chunk contents are fixed.
// Small ranges (n <= grain), single-thread pools, and nested calls (a
// ParallelFor issued from inside a chunk) all run inline on the calling
// thread, so the pool can never deadlock on itself.
//
// Allocation contract. A steady-state ParallelFor performs no heap
// allocations: the callback is passed as a non-owning ChunkFnRef (no
// std::function type erasure), and dispatch reuses pooled Task records
// once warmed up. This is what lets Transformer::ForwardInto run
// allocation-free (see src/tensor/workspace.h).

#ifndef PENSIEVE_SRC_COMMON_THREAD_POOL_H_
#define PENSIEVE_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pensieve {

// Non-owning reference to a chunk callback, invoked as fn(chunk_begin,
// chunk_end, chunk_index). Callables taking only (chunk_begin, chunk_end)
// are adapted transparently. ParallelFor blocks until every chunk has run,
// so binding the caller's stack-allocated lambda by reference is safe —
// and, unlike std::function, construction never heap-allocates.
//
// chunk_index is in [0, num_chunks) with num_chunks <= num_threads(); the
// inline path always passes 0. Kernels use it to index pre-sized per-chunk
// scratch (see src/kernels/attention.cc) instead of allocating per task.
class ChunkFnRef {
 public:
  using Invoker = void (*)(const void*, int64_t, int64_t, int);

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, ChunkFnRef>>>
  ChunkFnRef(const F& fn) : obj_(&fn) {  // NOLINT(runtime/explicit)
    if constexpr (std::is_invocable_v<const F&, int64_t, int64_t, int>) {
      invoke_ = [](const void* obj, int64_t begin, int64_t end, int chunk) {
        (*static_cast<const F*>(obj))(begin, end, chunk);
      };
    } else {
      static_assert(std::is_invocable_v<const F&, int64_t, int64_t>,
                    "ParallelFor callback must accept (int64_t begin, int64_t end"
                    "[, int chunk_index])");
      invoke_ = [](const void* obj, int64_t begin, int64_t end, int /*chunk*/) {
        (*static_cast<const F*>(obj))(begin, end);
      };
    }
  }

  void operator()(int64_t begin, int64_t end, int chunk) const {
    invoke_(obj_, begin, end, chunk);
  }

  const void* obj() const { return obj_; }
  Invoker invoker() const { return invoke_; }

 private:
  const void* obj_;
  Invoker invoke_;
};

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers; the caller of ParallelFor is always the
  // remaining executor. num_threads < 1 is clamped to 1 (pure inline pool).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(chunk_begin, chunk_end, chunk_index) over a static partition of
  // [begin, end) into at most num_threads() contiguous chunks of at least
  // `grain` indices. Blocks until every chunk finished. The first exception
  // thrown by any chunk is rethrown here (remaining chunks still run;
  // outputs are then unspecified). Concurrent top-level callers are
  // serialized.
  void ParallelFor(int64_t begin, int64_t end, ChunkFnRef fn, int64_t grain = 1);

  // Upper bound on the chunk_index a ParallelFor on this pool can pass:
  // indices are always < num_threads(). Used to size per-chunk scratch.
  int max_chunks() const { return num_threads_; }

  // Process-wide pool used by the compute layer. Lazily built with
  // DefaultThreads() on first use.
  static ThreadPool& Global();

  // Rebuilds the global pool with the given size; num_threads <= 0 resets
  // to DefaultThreads(). Must not race with in-flight ParallelFor calls —
  // call it from setup code (flag parsing, test fixtures) only.
  static void SetGlobalThreads(int num_threads);

  // PENSIEVE_THREADS env var if set to a positive integer, else
  // std::thread::hardware_concurrency() (min 1).
  static int DefaultThreads();

 private:
  struct Task;

  void WorkerLoop();
  // Executes chunks of `task` until its dispenser is exhausted.
  static void RunChunks(Task* task);
  // Returns a Task no worker still references, reusing pooled records where
  // possible (steady-state dispatch allocates nothing).
  std::shared_ptr<Task> AcquireTask();

  const int num_threads_;
  std::vector<std::thread> workers_;

  // Guards task_ / generation_ / stop_; workers sleep on work_cv_.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::shared_ptr<Task> task_;
  uint64_t generation_ = 0;
  bool stop_ = false;

  // Serializes top-level ParallelFor callers (one active task at a time).
  std::mutex dispatch_mu_;
  // Recycled Task records, guarded by dispatch_mu_. An entry is reusable
  // once its use_count() drops to 1 (no worker is still draining it); the
  // vector grows to at most ~num_threads entries before every dispatch hits
  // the cache.
  std::vector<std::shared_ptr<Task>> task_cache_;
};

// ParallelFor on the global pool.
void ParallelFor(int64_t begin, int64_t end, ChunkFnRef fn, int64_t grain = 1);

// Grain-size heuristic: the minimum indices per chunk so that one chunk
// carries at least ~32K arithmetic operations, given the cost of a single
// index. Keeps dispatch overhead below ~1% for fine-grained loops while
// leaving heavy loops (attention over a long context) at grain 1.
inline int64_t GrainForItemCost(int64_t per_item_cost) {
  constexpr int64_t kMinTaskCost = 32 * 1024;
  const int64_t cost = per_item_cost > 1 ? per_item_cost : 1;
  const int64_t grain = kMinTaskCost / cost;
  return grain > 1 ? grain : 1;
}

}  // namespace pensieve

#endif  // PENSIEVE_SRC_COMMON_THREAD_POOL_H_

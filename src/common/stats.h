// Streaming statistics accumulators used by the metrics layer and benches.

#ifndef PENSIEVE_SRC_COMMON_STATS_H_
#define PENSIEVE_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace pensieve {

// Accumulates samples and answers mean / percentile / min / max queries.
// Percentile queries sort a copy lazily; fine for offline metrics.
class SampleStats {
 public:
  void Add(double value);
  void Merge(const SampleStats& other);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  // q in [0, 1]; linear interpolation between closest ranks.
  double Percentile(double q) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// first/last bucket. Used for quick distribution sanity checks in tests.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double value);

  size_t bucket_count() const { return counts_.size(); }
  size_t BucketCount(size_t i) const { return counts_[i]; }
  double BucketLow(size_t i) const;
  size_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_COMMON_STATS_H_

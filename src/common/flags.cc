#include "src/common/flags.h"

#include <cstdlib>
#include <sstream>

#include "src/common/logging.h"

namespace pensieve {

void FlagParser::AddString(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  Flag flag;
  flag.kind = Kind::kString;
  flag.help = help;
  flag.string_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  Flag flag;
  flag.kind = Kind::kInt;
  flag.help = help;
  flag.int_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag flag;
  flag.kind = Kind::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag flag;
  flag.kind = Kind::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flags_[name] = std::move(flag);
}

Status FlagParser::SetValue(Flag* flag, const std::string& name,
                            const std::string& value) {
  char* end = nullptr;
  switch (flag->kind) {
    case Kind::kString:
      flag->string_value = value;
      return Status::Ok();
    case Kind::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                       value + "'");
      }
      flag->int_value = v;
      return Status::Ok();
    }
    case Kind::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                       value + "'");
      }
      flag->double_value = v;
      return Status::Ok();
    }
    case Kind::kBool:
      if (value == "true" || value == "1") {
        flag->bool_value = true;
      } else if (value == "false" || value == "0") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument("--" + name + " expects true/false, got '" +
                                       value + "'");
      }
      return Status::Ok();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!have_value) {
      if (it->second.kind == Kind::kBool) {
        // `--flag` alone means true.
        it->second.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--" + name + " is missing a value");
      }
      value = argv[++i];
    }
    Status status = SetValue(&it->second, name, value);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

const FlagParser::Flag& FlagParser::MustFind(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  PENSIEVE_CHECK(it != flags_.end()) << "unregistered flag --" << name;
  PENSIEVE_CHECK(it->second.kind == kind) << "type mismatch for flag --" << name;
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return MustFind(name, Kind::kString).string_value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return MustFind(name, Kind::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return MustFind(name, Kind::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return MustFind(name, Kind::kBool).bool_value;
}

std::string FlagParser::Help() const {
  std::ostringstream os;
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.kind) {
      case Kind::kString:
        os << "=<string>  (default: \"" << flag.string_value << "\")";
        break;
      case Kind::kInt:
        os << "=<int>  (default: " << flag.int_value << ")";
        break;
      case Kind::kDouble:
        os << "=<number>  (default: " << flag.double_value << ")";
        break;
      case Kind::kBool:
        os << "=<bool>  (default: " << (flag.bool_value ? "true" : "false") << ")";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace pensieve

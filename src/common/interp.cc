#include "src/common/interp.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

void InterpTable::AddPoint(double x, double y) {
  if (!xs_.empty()) {
    PENSIEVE_CHECK_GT(x, xs_.back());
  }
  xs_.push_back(x);
  ys_.push_back(y);
}

double InterpTable::Eval(double x) const {
  PENSIEVE_CHECK(!xs_.empty());
  if (xs_.size() == 1) {
    return ys_[0];
  }
  // Find the segment [i, i+1] to interpolate on, clamping to the end
  // segments for extrapolation.
  size_t hi = std::upper_bound(xs_.begin(), xs_.end(), x) - xs_.begin();
  if (hi == 0) {
    hi = 1;
  } else if (hi == xs_.size()) {
    hi = xs_.size() - 1;
  }
  const size_t lo = hi - 1;
  const double slope = (ys_[hi] - ys_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + slope * (x - xs_[lo]);
}

}  // namespace pensieve

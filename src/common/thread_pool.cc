#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

namespace pensieve {

namespace {
// Set while a thread executes a chunk; a ParallelFor issued under it runs
// inline so the pool cannot wait on itself.
thread_local bool tls_in_chunk = false;
}  // namespace

struct ThreadPool::Task {
  const void* fn_obj = nullptr;
  ChunkFnRef::Invoker fn_invoke = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk_size = 0;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> chunks_done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr first_error;  // guarded by done_mu
};

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(num_threads, 1)) {
  // Pre-seed the dispatch cache with num_threads records. At most the
  // num_threads - 1 workers can each pin one record at a time, so AcquireTask
  // always finds a free one and steady-state dispatch provably never
  // allocates.
  task_cache_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    task_cache_.push_back(std::make_shared<Task>());
  }
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (task_ != nullptr && generation_ != seen_generation);
    });
    if (stop_) {
      return;
    }
    seen_generation = generation_;
    // Keep a shared reference so the task outlives the caller's stack frame
    // even if this worker is still draining the (empty) dispenser after the
    // caller observed completion and returned. The reference also keeps the
    // record out of the dispatch cache (use_count > 1) until released, so a
    // reused Task is never mutated under a draining worker.
    std::shared_ptr<Task> task = task_;
    lock.unlock();
    RunChunks(task.get());
    task.reset();
    lock.lock();
  }
}

void ThreadPool::RunChunks(Task* task) {
  for (;;) {
    const int64_t c = task->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= task->num_chunks) {
      return;
    }
    const int64_t chunk_begin = task->begin + c * task->chunk_size;
    const int64_t chunk_end = std::min(task->end, chunk_begin + task->chunk_size);
    tls_in_chunk = true;
    try {
      task->fn_invoke(task->fn_obj, chunk_begin, chunk_end, static_cast<int>(c));
    } catch (...) {
      std::lock_guard<std::mutex> lock(task->done_mu);
      if (!task->first_error) {
        task->first_error = std::current_exception();
      }
    }
    tls_in_chunk = false;
    if (task->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        task->num_chunks) {
      // Lock so the notify cannot slip between the waiter's predicate check
      // and its wait.
      std::lock_guard<std::mutex> lock(task->done_mu);
      task->done_cv.notify_all();
    }
  }
}

std::shared_ptr<ThreadPool::Task> ThreadPool::AcquireTask() {
  // Called under dispatch_mu_. Workers obtain Task references only from
  // task_ (under mu_), and task_ is cleared before the previous dispatch
  // releases dispatch_mu_ — so once an entry's use_count() reads 1 here, no
  // new reference can appear and the record is exclusively ours.
  for (std::shared_ptr<Task>& cached : task_cache_) {
    if (cached.use_count() == 1) {
      cached->next_chunk.store(0, std::memory_order_relaxed);
      cached->chunks_done.store(0, std::memory_order_relaxed);
      cached->first_error = nullptr;
      return cached;
    }
  }
  // Unreachable in practice: the cache is pre-seeded with num_threads
  // records and at most num_threads - 1 workers can pin one each. Kept as a
  // safe fallback rather than a CHECK.
  task_cache_.push_back(std::make_shared<Task>());
  return task_cache_.back();
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, ChunkFnRef fn,
                             int64_t grain) {
  const int64_t n = end - begin;
  if (n <= 0) {
    return;
  }
  grain = std::max<int64_t>(grain, 1);
  const int64_t chunk_size =
      std::max(grain, (n + num_threads_ - 1) / static_cast<int64_t>(num_threads_));
  const int64_t num_chunks = (n + chunk_size - 1) / chunk_size;
  if (num_threads_ <= 1 || tls_in_chunk || num_chunks <= 1) {
    fn(begin, end, 0);
    return;
  }

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> dispatch(dispatch_mu_);
    std::shared_ptr<Task> task = AcquireTask();
    task->fn_obj = fn.obj();
    task->fn_invoke = fn.invoker();
    task->begin = begin;
    task->end = end;
    task->chunk_size = chunk_size;
    task->num_chunks = num_chunks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = task;
      ++generation_;
    }
    work_cv_.notify_all();
    RunChunks(task.get());  // The caller is always one of the executors.
    {
      std::unique_lock<std::mutex> lock(task->done_mu);
      task->done_cv.wait(lock, [&] {
        return task->chunks_done.load(std::memory_order_acquire) ==
               task->num_chunks;
      });
      error = task->first_error;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_.reset();
    }
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

namespace {
std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;
}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(DefaultThreads());
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_pool =
      std::make_unique<ThreadPool>(num_threads > 0 ? num_threads : DefaultThreads());
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("PENSIEVE_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

void ParallelFor(int64_t begin, int64_t end, ChunkFnRef fn, int64_t grain) {
  ThreadPool::Global().ParallelFor(begin, end, fn, grain);
}

}  // namespace pensieve

#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace pensieve {

void SampleStats::Add(double value) { samples_.push_back(value); }

void SampleStats::Merge(const SampleStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

double SampleStats::Sum() const {
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum;
}

double SampleStats::Mean() const {
  PENSIEVE_CHECK(!samples_.empty());
  return Sum() / static_cast<double>(samples_.size());
}

double SampleStats::Min() const {
  PENSIEVE_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  PENSIEVE_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Stddev() const {
  PENSIEVE_CHECK(!samples_.empty());
  const double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) {
    acc += (s - mean) * (s - mean);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampleStats::Percentile(double q) const {
  PENSIEVE_CHECK(!samples_.empty());
  PENSIEVE_CHECK_GE(q, 0.0);
  PENSIEVE_CHECK_LE(q, 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_buckets)),
      counts_(num_buckets, 0) {
  PENSIEVE_CHECK_GT(hi, lo);
  PENSIEVE_CHECK_GT(num_buckets, 0u);
}

void Histogram::Add(double value) {
  double idx = (value - lo_) / width_;
  long bucket = static_cast<long>(idx);
  bucket = std::clamp<long>(bucket, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bucket)];
  ++total_;
}

double Histogram::BucketLow(size_t i) const {
  PENSIEVE_CHECK_LT(i, counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace pensieve

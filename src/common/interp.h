// Piecewise-linear interpolation table.
//
// The eviction policy's offline profiler (paper §4.3.1) measures attention
// cost only at power-of-two context sizes and interpolates the rest; this is
// the interpolator it uses.

#ifndef PENSIEVE_SRC_COMMON_INTERP_H_
#define PENSIEVE_SRC_COMMON_INTERP_H_

#include <cstddef>
#include <vector>

namespace pensieve {

class InterpTable {
 public:
  InterpTable() = default;

  // Points must be added with strictly increasing x.
  void AddPoint(double x, double y);

  bool empty() const { return xs_.empty(); }
  size_t size() const { return xs_.size(); }

  // Piecewise-linear evaluation. Extrapolates linearly beyond both ends
  // using the nearest segment slope (constant if only one point).
  double Eval(double x) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_COMMON_INTERP_H_

// Lightweight status / error-reporting types used across Pensieve.
//
// Pensieve is a serving system: most internal failures (cache exhaustion,
// bad request parameters) are recoverable conditions that must be reported
// to the scheduler rather than aborting the process, so we use an explicit
// Status type instead of exceptions on hot paths.

#ifndef PENSIEVE_SRC_COMMON_STATUS_H_
#define PENSIEVE_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace pensieve {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDataLoss,
};

// Human-readable name for a status code ("OK", "RESOURCE_EXHAUSTED", ...).
const char* StatusCodeName(StatusCode code);

// Value-semantic status: either OK or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Minimal StatusOr: either a Status (non-OK) or a value.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_COMMON_STATUS_H_

// Minimal logging and invariant-checking macros.
//
// CHECK-style macros abort on violated invariants (programming errors);
// recoverable conditions go through Status (see status.h).

#ifndef PENSIEVE_SRC_COMMON_LOGGING_H_
#define PENSIEVE_SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "src/common/status.h"

namespace pensieve {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global minimum severity; messages below it are discarded.
LogSeverity GetMinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

// RAII sink: accumulates a message and emits it (to stderr) on destruction.
// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Discards everything streamed to it; used for disabled log levels so that
// the streamed expressions still type-check but cost nothing at runtime.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Lets CHECK macros swallow a trailing stream chain inside a ternary:
// operator& binds looser than operator<<, so the chain evaluates first.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace pensieve

#define PENSIEVE_LOG_DEBUG \
  ::pensieve::LogMessage(::pensieve::LogSeverity::kDebug, __FILE__, __LINE__).stream()
#define PENSIEVE_LOG_INFO \
  ::pensieve::LogMessage(::pensieve::LogSeverity::kInfo, __FILE__, __LINE__).stream()
#define PENSIEVE_LOG_WARNING \
  ::pensieve::LogMessage(::pensieve::LogSeverity::kWarning, __FILE__, __LINE__).stream()
#define PENSIEVE_LOG_ERROR \
  ::pensieve::LogMessage(::pensieve::LogSeverity::kError, __FILE__, __LINE__).stream()
#define PENSIEVE_LOG_FATAL \
  ::pensieve::LogMessage(::pensieve::LogSeverity::kFatal, __FILE__, __LINE__).stream()

#define PENSIEVE_CHECK(cond)                       \
  (cond) ? (void)0                                 \
         : ::pensieve::LogMessageVoidify() &       \
               PENSIEVE_LOG_FATAL << "Check failed: " #cond " "

#define PENSIEVE_CHECK_OP(a, b, op)                                               \
  ((a)op(b)) ? (void)0                                                            \
             : ::pensieve::LogMessageVoidify() &                                  \
                   PENSIEVE_LOG_FATAL << "Check failed: " #a " " #op " " #b " ("  \
                                      << (a) << " vs " << (b) << ") "

#define PENSIEVE_CHECK_EQ(a, b) PENSIEVE_CHECK_OP(a, b, ==)
#define PENSIEVE_CHECK_NE(a, b) PENSIEVE_CHECK_OP(a, b, !=)
#define PENSIEVE_CHECK_LT(a, b) PENSIEVE_CHECK_OP(a, b, <)
#define PENSIEVE_CHECK_LE(a, b) PENSIEVE_CHECK_OP(a, b, <=)
#define PENSIEVE_CHECK_GT(a, b) PENSIEVE_CHECK_OP(a, b, >)
#define PENSIEVE_CHECK_GE(a, b) PENSIEVE_CHECK_OP(a, b, >=)

#define PENSIEVE_CHECK_OK(status_expr)                                         \
  do {                                                                         \
    const ::pensieve::Status& _pensieve_st = (status_expr);                    \
    if (!_pensieve_st.ok()) {                                                  \
      PENSIEVE_LOG_FATAL << "Status not OK: " << _pensieve_st.ToString();      \
    }                                                                          \
  } while (0)

#endif  // PENSIEVE_SRC_COMMON_LOGGING_H_

// Seeded random-number utilities used by the workload generator and tests.
//
// All randomness in Pensieve flows through Rng so that every experiment is
// reproducible from a single 64-bit seed.

#ifndef PENSIEVE_SRC_COMMON_RNG_H_
#define PENSIEVE_SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace pensieve {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given mean (mean = 1 / rate).
  double Exponential(double mean);

  // Poisson-distributed count with the given mean.
  int64_t Poisson(double mean);

  // Log-normal parameterized by the *target* mean and standard deviation of
  // the resulting distribution (not of the underlying normal).
  double LogNormalWithMean(double mean, double stddev);

  // Geometric number of trials >= 1 with success probability p.
  int64_t GeometricAtLeastOne(double p);

  // Standard normal times stddev plus mean.
  double Normal(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Split off an independent child stream (deterministic given parent state).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_COMMON_RNG_H_

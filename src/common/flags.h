// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports `--name=value` and `--name value`; unknown flags are errors so
// typos surface immediately.

#ifndef PENSIEVE_SRC_COMMON_FLAGS_H_
#define PENSIEVE_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace pensieve {

class FlagParser {
 public:
  // Registers a flag with a default value and help text. Call before Parse.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddInt(const std::string& name, int64_t default_value, const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value, const std::string& help);

  // Parses argv. Returns an error on unknown flags or malformed values.
  Status Parse(int argc, char** argv);

  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // Formatted help text listing every registered flag.
  std::string Help() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };

  Status SetValue(Flag* flag, const std::string& name, const std::string& value);
  const Flag& MustFind(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_COMMON_FLAGS_H_

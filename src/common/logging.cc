#include "src/common/logging.h"

#include <atomic>
#include <cstring>

namespace pensieve {

namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kWarning};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSeverity GetMinLogSeverity() { return g_min_severity.load(std::memory_order_relaxed); }

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= GetMinLogSeverity() || severity_ == LogSeverity::kFatal) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace pensieve

// FNV-1a hashing shared by the KV-transfer checksum path and the
// content-addressed prefix-dedup trie. Both use the same byte-stream
// algorithm; the checksum path keeps the 32-bit variant it has always
// emitted, the trie chains the 64-bit variant across blocks.

#ifndef PENSIEVE_SRC_COMMON_HASH_H_
#define PENSIEVE_SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace pensieve {

inline constexpr uint32_t kFnv1a32OffsetBasis = 2166136261u;
inline constexpr uint32_t kFnv1a32Prime = 16777619u;
inline constexpr uint64_t kFnv1a64OffsetBasis = 14695981039346656037ull;
inline constexpr uint64_t kFnv1a64Prime = 1099511628211ull;

inline uint32_t Fnv1a32(const void* data, size_t n,
                        uint32_t seed = kFnv1a32OffsetBasis) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t hash = seed;
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kFnv1a32Prime;
  }
  return hash;
}

inline uint64_t Fnv1a64(const void* data, size_t n,
                        uint64_t seed = kFnv1a64OffsetBasis) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kFnv1a64Prime;
  }
  return hash;
}

// Deterministic token-identity mix for position `position` of shared-prefix
// template `template_id` (SplitMix64, salted differently from the
// per-conversation SyntheticToken stream so templates never collide with
// conversation bodies). Every conversation carrying the same template id has
// this exact raw-token stream as its history prefix; the workload layer
// reduces it to a vocabulary token id, the serving layer chains it through
// Fnv1a64 to key the prefix-dedup trie.
inline uint64_t TemplatePrefixMix(int32_t template_id, int64_t position) {
  uint64_t z = (static_cast<uint64_t>(static_cast<uint32_t>(template_id)) ^
                0x94D049BB133111EBULL) *
                   0x9E3779B97F4A7C15ULL +
               static_cast<uint64_t>(position);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace pensieve

#endif  // PENSIEVE_SRC_COMMON_HASH_H_

#include "src/kernels/attention.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/tensor/ops.h"
#include "src/tensor/workspace.h"

namespace pensieve {

namespace {

// Validates shared preconditions and returns (num_heads, head_dim).
std::pair<int64_t, int64_t> CheckQueryShape(const KvPool& pool, const Tensor& query,
                                            Tensor* out) {
  PENSIEVE_CHECK_EQ(query.rank(), 3u);
  PENSIEVE_CHECK(out->SameShape(query));
  const int64_t num_heads = query.dim(1);
  const int64_t head_dim = query.dim(2);
  PENSIEVE_CHECK_EQ(head_dim, pool.head_dim());
  PENSIEVE_CHECK_EQ(num_heads % pool.num_kv_heads(), 0);
  return {num_heads, head_dim};
}

// Streaming-softmax accumulator for one (query token, head) pair. Matches
// the fused no-materialization formulation the real kernel uses (paper cites
// FlashAttention [10]); avoids the O(context) score buffer. The accumulator
// storage is caller-provided scratch (head_dim floats) so one task reuses a
// single buffer across its whole (token, head) walk instead of paying a heap
// allocation per pair.
struct OnlineSoftmax {
  float running_max;
  float running_sum;
  float* acc;  // caller-owned, head_dim floats
  int64_t head_dim;

  OnlineSoftmax(float* scratch, int64_t head_dim_in)
      : acc(scratch), head_dim(head_dim_in) {
    Reset();
  }

  void Reset() {
    running_max = -std::numeric_limits<float>::infinity();
    running_sum = 0.0f;
    std::fill(acc, acc + head_dim, 0.0f);
  }

  void Observe(float score, const float* value) {
    if (score > running_max) {
      const float correction =
          running_max == -std::numeric_limits<float>::infinity()
              ? 0.0f
              : std::exp(running_max - score);
      for (int64_t d = 0; d < head_dim; ++d) {
        acc[d] *= correction;
      }
      running_sum *= correction;
      running_max = score;
    }
    const float w = std::exp(score - running_max);
    running_sum += w;
    for (int64_t d = 0; d < head_dim; ++d) {
      acc[d] += w * value[d];
    }
  }

  void Finalize(float* out) const {
    const float inv = running_sum > 0.0f ? 1.0f / running_sum : 0.0f;
    for (int64_t d = 0; d < head_dim; ++d) {
      out[d] = acc[d] * inv;
    }
  }
};

// Four independent accumulators let the compiler vectorize; the combine
// order (a0+a1)+(a2+a3) is fixed so the result is a pure function of the
// inputs — identical for every thread count and every chunk boundary.
float Dot(const float* a, const float* b, int64_t n) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += a[i] * b[i];
    a1 += a[i + 1] * b[i + 1];
    a2 += a[i + 2] * b[i + 2];
    a3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) {
    a0 += a[i] * b[i];
  }
  return (a0 + a1) + (a2 + a3);
}

void CheckSubRequest(const KvPool& pool, const Tensor& query,
                     const AttentionSubRequest& sub) {
  PENSIEVE_CHECK(sub.block_table != nullptr);
  PENSIEVE_CHECK_GE(sub.query_len, 1);
  PENSIEVE_CHECK_GE(sub.context_len, sub.query_len);
  PENSIEVE_CHECK_LE(sub.query_start + sub.query_len, query.dim(0));
  const int64_t blocks_needed =
      (sub.context_len + pool.block_size() - 1) / pool.block_size();
  PENSIEVE_CHECK_GE(static_cast<int64_t>(sub.block_table->size()), blocks_needed);
}

// Exclusive prefix sum of per-sub flat item counts ((query token, head)
// pairs), written into caller-owned storage (workspace or stack fallback);
// also returns the mean context length for the grain heuristic.
struct FlatIndex {
  const int64_t* prefix = nullptr;  // subs.size() + 1 entries
  int64_t total = 0;
  int64_t mean_context = 1;
};

FlatIndex BuildFlatIndex(const std::vector<AttentionSubRequest>& subs,
                         int64_t items_per_token, int64_t* prefix) {
  FlatIndex index;
  index.prefix = prefix;
  prefix[0] = 0;
  int64_t context_sum = 0;
  for (size_t i = 0; i < subs.size(); ++i) {
    prefix[i + 1] = prefix[i] + subs[i].query_len * items_per_token;
    context_sum += subs[i].context_len;
  }
  index.total = prefix[subs.size()];
  if (!subs.empty()) {
    index.mean_context =
        std::max<int64_t>(1, context_sum / static_cast<int64_t>(subs.size()));
  }
  return index;
}

}  // namespace

void MultiTokenPagedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                              const std::vector<AttentionSubRequest>& subs, float scale,
                              Tensor* out, Workspace* ws) {
  const auto [num_heads, head_dim] = CheckQueryShape(pool, query, out);
  const int64_t group = num_heads / pool.num_kv_heads();
  const int64_t block_size = pool.block_size();
  const int64_t token_stride = pool.num_kv_heads() * head_dim;

  for (const AttentionSubRequest& sub : subs) {
    CheckSubRequest(pool, query, sub);
  }
  // Transient buffers come from the workspace when available (steady-state
  // decode must not touch the heap); otherwise from one-off locals. The
  // softmax scratch is sized for every chunk the pool can dispatch and
  // indexed by chunk_index, so chunks never share or allocate.
  const int64_t max_chunks = ThreadPool::Global().max_chunks();
  std::vector<int64_t> prefix_fallback;
  std::vector<float> scratch_fallback;
  int64_t* prefix;
  float* scratch;
  if (ws != nullptr) {
    prefix = ws->AllocInts(static_cast<int64_t>(subs.size()) + 1);
    scratch = ws->AllocFloats(max_chunks * head_dim);
  } else {
    prefix_fallback.resize(subs.size() + 1);
    scratch_fallback.resize(static_cast<size_t>(max_chunks * head_dim));
    prefix = prefix_fallback.data();
    scratch = scratch_fallback.data();
  }
  const FlatIndex index = BuildFlatIndex(subs, num_heads, prefix);
  const int64_t* prefix_end = index.prefix + subs.size() + 1;
  // One flat item = one (sub, query token, head) pair; its whole context
  // walk (the floating-point reduction) stays inside a single chunk, so
  // partitioning cannot change reduction order.
  ParallelFor(
      0, index.total,
      [&, num_heads = num_heads, head_dim = head_dim](int64_t item_begin,
                                                      int64_t item_end, int chunk) {
        OnlineSoftmax softmax(scratch + chunk * head_dim, head_dim);
        size_t s = static_cast<size_t>(
            std::upper_bound(index.prefix, prefix_end, item_begin) -
            index.prefix - 1);
        for (int64_t item = item_begin; item < item_end; ++item) {
          while (item >= index.prefix[s + 1]) {
            ++s;
          }
          const AttentionSubRequest& sub = subs[s];
          const std::vector<BlockId>& table = *sub.block_table;
          const int64_t local = item - index.prefix[s];
          const int64_t j = local / num_heads;
          const int64_t h = local % num_heads;
          // Causal mask, fused: token j sees positions [0, end_pos].
          const int64_t end_pos = sub.context_len - sub.query_len + j;
          const int64_t token_row = sub.query_start + j;
          const int64_t kv_head = h / group;
          const float* q = query.data() + (token_row * num_heads + h) * head_dim;
          softmax.Reset();
          // Walk the context block by block, mirroring the real kernel's
          // block-granular loads from non-contiguous memory.
          for (int64_t pos = 0; pos <= end_pos;) {
            const int64_t block_idx = pos / block_size;
            const int64_t slot_begin = pos % block_size;
            const int64_t slot_end =
                std::min(block_size, end_pos + 1 - block_idx * block_size);
            const BlockId block = table[static_cast<size_t>(block_idx)];
            const float* k_base = pool.TokenData(block, layer, /*kv=*/0, 0);
            const float* v_base = pool.TokenData(block, layer, /*kv=*/1, 0);
            for (int64_t slot = slot_begin; slot < slot_end; ++slot) {
              const float* k = k_base + slot * token_stride + kv_head * head_dim;
              const float* v = v_base + slot * token_stride + kv_head * head_dim;
              softmax.Observe(Dot(q, k, head_dim) * scale, v);
            }
            pos = block_idx * block_size + slot_end;
          }
          softmax.Finalize(out->data() + (token_row * num_heads + h) * head_dim);
        }
      },
      GrainForItemCost(index.mean_context * head_dim));
}

void SingleTokenPagedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                               const std::vector<AttentionSubRequest>& subs, float scale,
                               Tensor* out, Workspace* ws) {
  for (const AttentionSubRequest& sub : subs) {
    PENSIEVE_CHECK_EQ(sub.query_len, 1)
        << "PagedAttention-style kernel is restricted to one input token per request";
  }
  // With query_len == 1 the causal mask is a no-op and the computation
  // degenerates to the matrix-vector form of the multi-token kernel.
  MultiTokenPagedAttention(pool, layer, query, subs, scale, out, ws);
}

void ContiguousAttention(const Tensor& query,
                         const std::vector<ContiguousAttentionRequest>& reqs, float scale,
                         Tensor* out) {
  PENSIEVE_CHECK_EQ(query.rank(), 3u);
  PENSIEVE_CHECK(out->SameShape(query));
  const int64_t num_heads = query.dim(1);
  const int64_t head_dim = query.dim(2);

  std::vector<int64_t> prefix(reqs.size() + 1, 0);
  int64_t context_sum = 0;
  for (size_t i = 0; i < reqs.size(); ++i) {
    const ContiguousAttentionRequest& req = reqs[i];
    PENSIEVE_CHECK(req.keys != nullptr);
    PENSIEVE_CHECK(req.values != nullptr);
    PENSIEVE_CHECK_EQ(req.keys->rank(), 3u);
    PENSIEVE_CHECK(req.keys->SameShape(*req.values));
    const int64_t context_len = req.keys->dim(0);
    const int64_t num_kv_heads = req.keys->dim(1);
    PENSIEVE_CHECK_EQ(req.keys->dim(2), head_dim);
    PENSIEVE_CHECK_EQ(num_heads % num_kv_heads, 0);
    PENSIEVE_CHECK_GE(context_len, req.query_len);
    prefix[i + 1] = prefix[i] + req.query_len * num_heads;
    context_sum += context_len;
  }
  const int64_t total = prefix.back();
  const int64_t mean_context =
      reqs.empty() ? 1
                   : std::max<int64_t>(1, context_sum /
                                              static_cast<int64_t>(reqs.size()));
  std::vector<float> scratch(
      static_cast<size_t>(ThreadPool::Global().max_chunks() * head_dim));
  ParallelFor(
      0, total,
      [&](int64_t item_begin, int64_t item_end, int chunk) {
        OnlineSoftmax softmax(scratch.data() + chunk * head_dim, head_dim);
        size_t r = static_cast<size_t>(
            std::upper_bound(prefix.begin(), prefix.end(), item_begin) -
            prefix.begin() - 1);
        for (int64_t item = item_begin; item < item_end; ++item) {
          while (item >= prefix[r + 1]) {
            ++r;
          }
          const ContiguousAttentionRequest& req = reqs[r];
          const int64_t context_len = req.keys->dim(0);
          const int64_t num_kv_heads = req.keys->dim(1);
          const int64_t group = num_heads / num_kv_heads;
          const int64_t kv_stride = num_kv_heads * head_dim;
          const int64_t local = item - prefix[r];
          const int64_t j = local / num_heads;
          const int64_t h = local % num_heads;
          const int64_t end_pos = context_len - req.query_len + j;
          const int64_t token_row = req.query_start + j;
          const int64_t kv_head = h / group;
          const float* q = query.data() + (token_row * num_heads + h) * head_dim;
          softmax.Reset();
          const float* k_base = req.keys->data() + kv_head * head_dim;
          const float* v_base = req.values->data() + kv_head * head_dim;
          for (int64_t pos = 0; pos <= end_pos; ++pos) {
            softmax.Observe(Dot(q, k_base + pos * kv_stride, head_dim) * scale,
                            v_base + pos * kv_stride);
          }
          softmax.Finalize(out->data() + (token_row * num_heads + h) * head_dim);
        }
      },
      GrainForItemCost(mean_context * head_dim));
}

void CopyOutPagedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                           const std::vector<AttentionSubRequest>& subs, float scale,
                           Tensor* out) {
  const auto [num_heads, head_dim] = CheckQueryShape(pool, query, out);
  (void)num_heads;
  const int64_t block_size = pool.block_size();
  const int64_t token_stride = pool.num_kv_heads() * head_dim;

  // The extra cost this straw-man models: materializing the whole context
  // into contiguous buffers before attention can run. The gather is
  // partitioned over the flattened (sub, position) space; every position
  // writes a disjoint row, so the copy is order-independent.
  std::vector<Tensor> key_bufs;
  std::vector<Tensor> value_bufs;
  std::vector<ContiguousAttentionRequest> dense;
  key_bufs.reserve(subs.size());
  value_bufs.reserve(subs.size());
  dense.reserve(subs.size());
  std::vector<int64_t> prefix(subs.size() + 1, 0);
  for (size_t i = 0; i < subs.size(); ++i) {
    CheckSubRequest(pool, query, subs[i]);
    key_bufs.emplace_back(
        Tensor({subs[i].context_len, pool.num_kv_heads(), head_dim}));
    value_bufs.emplace_back(
        Tensor({subs[i].context_len, pool.num_kv_heads(), head_dim}));
    prefix[i + 1] = prefix[i] + subs[i].context_len;
  }
  ParallelFor(
      0, prefix.back(),
      [&, head_dim = head_dim](int64_t item_begin, int64_t item_end) {
        size_t s = static_cast<size_t>(
            std::upper_bound(prefix.begin(), prefix.end(), item_begin) -
            prefix.begin() - 1);
        for (int64_t item = item_begin; item < item_end; ++item) {
          while (item >= prefix[s + 1]) {
            ++s;
          }
          const AttentionSubRequest& sub = subs[s];
          const int64_t pos = item - prefix[s];
          const BlockId block =
              (*sub.block_table)[static_cast<size_t>(pos / block_size)];
          const int64_t slot = pos % block_size;
          std::memcpy(key_bufs[s].data() + pos * token_stride,
                      pool.TokenData(block, layer, /*kv=*/0, slot),
                      static_cast<size_t>(token_stride) * sizeof(float));
          std::memcpy(value_bufs[s].data() + pos * token_stride,
                      pool.TokenData(block, layer, /*kv=*/1, slot),
                      static_cast<size_t>(token_stride) * sizeof(float));
        }
      },
      GrainForItemCost(token_stride));
  for (size_t i = 0; i < subs.size(); ++i) {
    dense.push_back(ContiguousAttentionRequest{subs[i].query_start, subs[i].query_len,
                                               &key_bufs[i], &value_bufs[i]});
  }
  ContiguousAttention(query, dense, scale, out);
}

void MultiRoundPagedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                              const std::vector<AttentionSubRequest>& subs, float scale,
                              Tensor* out) {
  // One single-token kernel invocation per prompt token: each round r
  // processes the r-th token of every sub-request that still has one,
  // mirroring how a serving system would loop PagedAttention over the
  // prompt. Earlier tokens see a shortened context to preserve causality.
  int64_t max_query_len = 0;
  for (const AttentionSubRequest& sub : subs) {
    CheckSubRequest(pool, query, sub);
    max_query_len = std::max(max_query_len, sub.query_len);
  }
  for (int64_t round = 0; round < max_query_len; ++round) {
    std::vector<AttentionSubRequest> round_subs;
    for (const AttentionSubRequest& sub : subs) {
      if (round >= sub.query_len) {
        continue;
      }
      AttentionSubRequest single;
      single.query_start = sub.query_start + round;
      single.query_len = 1;
      single.context_len = sub.context_len - sub.query_len + round + 1;
      single.block_table = sub.block_table;
      round_subs.push_back(single);
    }
    // The single-token kernel reads rows addressed by query_start directly
    // from the shared Q/out tensors, so no repacking is needed.
    SingleTokenPagedAttention(pool, layer, query, round_subs, scale, out);
  }
}

void NaiveMaskedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                          const std::vector<AttentionSubRequest>& subs, float scale,
                          Tensor* out) {
  const auto [num_heads, head_dim] = CheckQueryShape(pool, query, out);
  const int64_t group = num_heads / pool.num_kv_heads();
  const int64_t block_size = pool.block_size();

  for (const AttentionSubRequest& sub : subs) {
    CheckSubRequest(pool, query, sub);
  }
  // One flat item = one (sub, head): each materializes its own score matrix.
  const int64_t total = static_cast<int64_t>(subs.size()) * num_heads;
  ParallelFor(0, total, [&, num_heads = num_heads,
                         head_dim = head_dim](int64_t item_begin, int64_t item_end) {
    for (int64_t item = item_begin; item < item_end; ++item) {
      const AttentionSubRequest& sub = subs[static_cast<size_t>(item / num_heads)];
      const int64_t h = item % num_heads;
      const int64_t kv_head = h / group;
      // Materialize the full [query_len, context_len] score matrix with an
      // explicit causal mask, then do a plain softmax + weighted sum.
      Tensor scores({sub.query_len, sub.context_len});
      for (int64_t j = 0; j < sub.query_len; ++j) {
        const int64_t end_pos = sub.context_len - sub.query_len + j;
        const float* q =
            query.data() + ((sub.query_start + j) * num_heads + h) * head_dim;
        for (int64_t pos = 0; pos < sub.context_len; ++pos) {
          if (pos > end_pos) {
            scores.at({j, pos}) = -std::numeric_limits<float>::infinity();
            continue;
          }
          const BlockId block =
              (*sub.block_table)[static_cast<size_t>(pos / block_size)];
          const float* k =
              pool.TokenData(block, layer, /*kv=*/0, pos % block_size) +
              kv_head * head_dim;
          scores.at({j, pos}) = Dot(q, k, head_dim) * scale;
        }
      }
      SoftmaxRowsInPlace(scores);
      for (int64_t j = 0; j < sub.query_len; ++j) {
        float* o = out->data() + ((sub.query_start + j) * num_heads + h) * head_dim;
        std::fill(o, o + head_dim, 0.0f);
        for (int64_t pos = 0; pos < sub.context_len; ++pos) {
          const float w = scores.at({j, pos});
          if (w == 0.0f) {
            continue;
          }
          const BlockId block =
              (*sub.block_table)[static_cast<size_t>(pos / block_size)];
          const float* v =
              pool.TokenData(block, layer, /*kv=*/1, pos % block_size) +
              kv_head * head_dim;
          for (int64_t d = 0; d < head_dim; ++d) {
            o[d] += w * v[d];
          }
        }
      }
    }
  });
}

}  // namespace pensieve

// Attention kernels over the paged KV pool (paper §4.4).
//
// The centerpiece is MultiTokenPagedAttention: attention between a batch of
// requests' *multiple* input tokens (ragged query sizes) and their contexts
// stored in *non-contiguous* KV blocks, with fused causal masking and
// grouped-query attention. It subsumes single-token (decode) attention as
// the query_len == 1 special case, which is what enables Pensieve's unified
// prefill+generation batches (§4.4.1).
//
// For the paper's Figure 12 comparison we also provide:
//  * SingleTokenPagedAttention — vLLM PagedAttention semantics (one query
//    token per request).
//  * ContiguousAttention       — the "ideal" baseline over dense K/V.
//  * CopyOutPagedAttention     — straw-man: gather the paged context into a
//    contiguous buffer, then run ContiguousAttention.
//  * MultiRoundPagedAttention  — straw-man: process the prompt one token at
//    a time with the single-token kernel.
//  * NaiveMaskedAttention      — O(n^2)-memory reference used by tests.
//
// Conventions. Q tensors are [num_tokens, num_heads, head_dim]; the KV pool
// holds [num_kv_heads, head_dim] vectors per token per layer. All kernels
// assume that the query tokens' own K/V have already been written to the
// cache (Pensieve writes K/V before attention, paper Figure 8 step c).

#ifndef PENSIEVE_SRC_KERNELS_ATTENTION_H_
#define PENSIEVE_SRC_KERNELS_ATTENTION_H_

#include <cstdint>
#include <vector>

#include "src/kvcache/block.h"
#include "src/kvcache/kv_pool.h"
#include "src/tensor/tensor.h"

namespace pensieve {

class Workspace;

// One attention work item. A request in its generation phase contributes a
// query_len == 1 item; a prefill request contributes one item — or two items
// sharing a block table when a dropped prefix is being recomputed alongside
// the new prompt (paper §4.3.4): the prefix sub-request attends to itself
// only (smaller context_len), the prompt sub-request attends to everything.
struct AttentionSubRequest {
  // Row offset of this sub-request's first query token in the batched Q.
  int64_t query_start = 0;
  int64_t query_len = 0;
  // Number of KV tokens the *last* query token attends to, including itself.
  // Query token j (0-based) attends to positions [0, context_len - query_len + j].
  int64_t context_len = 0;
  // GPU blocks covering at least ceil(context_len / block_size) chunks.
  const std::vector<BlockId>* block_table = nullptr;
};

// Pensieve's kernel: batched, ragged multi-token attention over paged KV.
// query/out: [total_query_tokens, num_heads, head_dim].
//
// When `ws` is non-null its arena supplies the kernel's transient buffers
// (sub-request prefix table, per-chunk softmax scratch) so the call performs
// no heap allocation; the caller must not Reset the workspace while the
// kernel runs. With ws == nullptr the kernel allocates its own scratch.
void MultiTokenPagedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                              const std::vector<AttentionSubRequest>& subs, float scale,
                              Tensor* out, Workspace* ws = nullptr);

// vLLM-style decode kernel: every sub-request must have query_len == 1.
void SingleTokenPagedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                               const std::vector<AttentionSubRequest>& subs, float scale,
                               Tensor* out, Workspace* ws = nullptr);

// Ideal baseline: context K/V are dense tensors [context_len, num_kv_heads,
// head_dim] supplied per request (contiguous memory).
struct ContiguousAttentionRequest {
  int64_t query_start = 0;
  int64_t query_len = 0;
  const Tensor* keys = nullptr;    // [context_len, num_kv_heads, head_dim]
  const Tensor* values = nullptr;  // same shape as keys
};
void ContiguousAttention(const Tensor& query,
                         const std::vector<ContiguousAttentionRequest>& reqs, float scale,
                         Tensor* out);

// Straw-man 1: gathers each sub-request's paged context into freshly
// allocated contiguous buffers, then runs ContiguousAttention.
void CopyOutPagedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                           const std::vector<AttentionSubRequest>& subs, float scale,
                           Tensor* out);

// Straw-man 2: runs the single-token kernel once per query token (per
// sub-request), shrinking the context for earlier tokens to preserve
// causality.
void MultiRoundPagedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                              const std::vector<AttentionSubRequest>& subs, float scale,
                              Tensor* out);

// Reference implementation materializing the full masked score matrix.
void NaiveMaskedAttention(const KvPool& pool, int64_t layer, const Tensor& query,
                          const std::vector<AttentionSubRequest>& subs, float scale,
                          Tensor* out);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_KERNELS_ATTENTION_H_

#include "src/eviction/cost_estimator.h"

#include <chrono>

#include "src/common/logging.h"
#include "src/kernels/attention.h"
#include "src/kvcache/kv_pool.h"
#include "src/tensor/ops.h"

namespace pensieve {

ChunkCostEstimator ChunkCostEstimator::ProfileFromCostModel(const GpuCostModel& cost_model,
                                                            int64_t chunk_size,
                                                            int64_t max_context) {
  PENSIEVE_CHECK_GT(chunk_size, 0);
  InterpTable table;
  for (int64_t ctx = chunk_size; ctx <= max_context; ctx *= 2) {
    table.AddPoint(static_cast<double>(ctx),
                   cost_model.ChunkRecomputeCost(chunk_size, ctx));
  }
  PENSIEVE_CHECK(!table.empty());
  return ChunkCostEstimator(chunk_size, std::move(table));
}

ChunkCostEstimator ChunkCostEstimator::ProfileFromKernels(const ModelConfig& config,
                                                          int64_t chunk_size,
                                                          int64_t max_context) {
  PENSIEVE_CHECK_GT(chunk_size, 0);
  PENSIEVE_CHECK_LE(config.hidden_size, 512) << "kernel profiling is for tiny configs";
  const int64_t num_blocks = (max_context + chunk_size - 1) / chunk_size + 1;
  KvPool pool(num_blocks, chunk_size, /*num_layers=*/1, config.num_kv_heads,
              config.head_dim);
  // Populate the pool with arbitrary data; contents do not affect timing.
  Tensor kv({config.num_kv_heads, config.head_dim});
  FillNormal(kv, /*seed=*/7, 1.0f);
  for (BlockId b = 0; b < num_blocks; ++b) {
    for (int64_t slot = 0; slot < chunk_size; ++slot) {
      pool.WriteToken(b, 0, slot, kv.data(), kv.data());
    }
  }
  std::vector<BlockId> block_table;
  for (BlockId b = 0; b < num_blocks; ++b) {
    block_table.push_back(b);
  }
  Tensor query({chunk_size, config.num_heads, config.head_dim});
  FillNormal(query, /*seed=*/11, 1.0f);
  Tensor out({chunk_size, config.num_heads, config.head_dim});

  InterpTable table;
  for (int64_t ctx = chunk_size; ctx <= max_context; ctx *= 2) {
    AttentionSubRequest sub;
    sub.query_start = 0;
    sub.query_len = chunk_size;
    sub.context_len = ctx;
    sub.block_table = &block_table;
    const auto start = std::chrono::steady_clock::now();
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      MultiTokenPagedAttention(pool, /*layer=*/0, query, {sub}, /*scale=*/0.125f, &out);
    }
    const auto end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(end - start).count() / kReps;
    table.AddPoint(static_cast<double>(ctx), seconds);
  }
  return ChunkCostEstimator(chunk_size, std::move(table));
}

double ChunkCostEstimator::Cost(int64_t context_len) const {
  return table_.Eval(static_cast<double>(context_len));
}

RestoreAction PlanChunkRestore(const ChunkCostEstimator& estimator,
                               RestoreSource source, int64_t chunk_tokens,
                               int64_t context_len, int64_t kv_bytes_per_token,
                               const RestoreLinkSpeeds& speeds) {
  PENSIEVE_CHECK_GT(speeds.pcie_bandwidth, 0.0);
  const double bytes =
      static_cast<double>(chunk_tokens) * static_cast<double>(kv_bytes_per_token);
  double restore_s = bytes / speeds.pcie_bandwidth;
  if (source == RestoreSource::kSsd) {
    PENSIEVE_CHECK_GT(speeds.ssd_read_bandwidth, 0.0);
    restore_s += speeds.ssd_access_latency + bytes / speeds.ssd_read_bandwidth;
  }
  const double recompute_s = estimator.Cost(context_len);
  return recompute_s < restore_s ? RestoreAction::kRecompute
                                 : RestoreAction::kRestore;
}

}  // namespace pensieve

#include "src/eviction/policy.h"

#include <algorithm>

namespace pensieve {

namespace {
// Guards against division by ~zero for a conversation active "just now".
constexpr double kMinInactiveSeconds = 1e-3;
}  // namespace

double RetentionValuePolicy::Score(const ChunkCandidate& candidate, double now) const {
  const double inactive = std::max(kMinInactiveSeconds, now - candidate.last_active);
  if (candidate.shared) {
    // Other live readers keep the physical block warm; restoring this view
    // costs a refcount bump, not a recompute.
    return 0.0;
  }
  return estimator_.Cost(candidate.context_len) / inactive;
}

double LruPolicy::Score(const ChunkCandidate& candidate, double now) const {
  // Older last_active => smaller score => evicted first. Chunk index breaks
  // ties toward the leading end so the drop-prefix invariant is satisfiable.
  return candidate.last_active +
         1e-9 * static_cast<double>(candidate.chunk_index);
}

double CostOnlyPolicy::Score(const ChunkCandidate& candidate, double now) const {
  if (candidate.shared) {
    return 0.0;  // restore already paid for by another reader
  }
  return estimator_.Cost(candidate.context_len);
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   const ChunkCostEstimator& estimator) {
  switch (kind) {
    case EvictionPolicyKind::kRetentionValue:
      return std::make_unique<RetentionValuePolicy>(estimator);
    case EvictionPolicyKind::kLru:
    case EvictionPolicyKind::kConversationLru:
      return std::make_unique<LruPolicy>();
    case EvictionPolicyKind::kCostOnly:
      return std::make_unique<CostOnlyPolicy>(estimator);
  }
  return nullptr;
}

}  // namespace pensieve

// Chunk-recomputation cost estimation (paper §4.3.1).
//
// The retention value of a chunk is V = Cost(s, l) / T. Cost is profiled
// offline at power-of-two context sizes and interpolated elsewhere, exactly
// as the paper does. Two profiling sources are provided: the analytical GPU
// cost model (simulated serving) and wall-clock measurement of the real CPU
// kernels (numeric mode / tests).

#ifndef PENSIEVE_SRC_EVICTION_COST_ESTIMATOR_H_
#define PENSIEVE_SRC_EVICTION_COST_ESTIMATOR_H_

#include <cstdint>

#include "src/common/interp.h"
#include "src/model/model_config.h"
#include "src/sim/cost_model.h"

namespace pensieve {

class ChunkCostEstimator {
 public:
  // Profiles Cost(chunk_size, l) for l in {chunk_size, 2*chunk_size, ...,
  // max_context} restricted to powers of two (times chunk_size), using the
  // analytical model.
  static ChunkCostEstimator ProfileFromCostModel(const GpuCostModel& cost_model,
                                                 int64_t chunk_size, int64_t max_context);

  // Profiles by timing the real multi-token paged attention kernel on a
  // scratch pool built from `config` (must be a tiny config).
  static ChunkCostEstimator ProfileFromKernels(const ModelConfig& config,
                                               int64_t chunk_size, int64_t max_context);

  // Interpolated recomputation cost of a chunk whose last token has context
  // length `context_len` (seconds).
  double Cost(int64_t context_len) const;

  int64_t chunk_size() const { return chunk_size_; }

 private:
  ChunkCostEstimator(int64_t chunk_size, InterpTable table)
      : chunk_size_(chunk_size), table_(std::move(table)) {}

  int64_t chunk_size_;
  InterpTable table_;
};

// --- Three-way restore decision (flash tier) -------------------------------
// With the SSD behind the CPU tier, bringing a chunk back to the GPU is a
// three-way choice: restore from CPU (one PCIe hop), restore from SSD (flash
// read + PCIe hop), or recompute from raw tokens. Recomputation cost grows
// with context length while restore cost is flat per byte, so for short
// contexts recompute wins — especially against the slower SSD path.

enum class RestoreSource { kCpu, kSsd };
enum class RestoreAction { kRestore, kRecompute };

// Link speeds feeding the decision (taken from HardwareSpec).
struct RestoreLinkSpeeds {
  double pcie_bandwidth = 0.0;      // bytes/s, host -> device
  double ssd_read_bandwidth = 0.0;  // bytes/s, flash -> host
  double ssd_access_latency = 0.0;  // seconds per flash read op
};

// Picks the cheaper of restoring `chunk_tokens` from `source` (transfer time
// over the links involved) and recomputing them (estimator.Cost at the
// chunk's context length).
RestoreAction PlanChunkRestore(const ChunkCostEstimator& estimator,
                               RestoreSource source, int64_t chunk_tokens,
                               int64_t context_len, int64_t kv_bytes_per_token,
                               const RestoreLinkSpeeds& speeds);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_EVICTION_COST_ESTIMATOR_H_

// Chunk-recomputation cost estimation (paper §4.3.1).
//
// The retention value of a chunk is V = Cost(s, l) / T. Cost is profiled
// offline at power-of-two context sizes and interpolated elsewhere, exactly
// as the paper does. Two profiling sources are provided: the analytical GPU
// cost model (simulated serving) and wall-clock measurement of the real CPU
// kernels (numeric mode / tests).

#ifndef PENSIEVE_SRC_EVICTION_COST_ESTIMATOR_H_
#define PENSIEVE_SRC_EVICTION_COST_ESTIMATOR_H_

#include <cstdint>

#include "src/common/interp.h"
#include "src/model/model_config.h"
#include "src/sim/cost_model.h"

namespace pensieve {

class ChunkCostEstimator {
 public:
  // Profiles Cost(chunk_size, l) for l in {chunk_size, 2*chunk_size, ...,
  // max_context} restricted to powers of two (times chunk_size), using the
  // analytical model.
  static ChunkCostEstimator ProfileFromCostModel(const GpuCostModel& cost_model,
                                                 int64_t chunk_size, int64_t max_context);

  // Profiles by timing the real multi-token paged attention kernel on a
  // scratch pool built from `config` (must be a tiny config).
  static ChunkCostEstimator ProfileFromKernels(const ModelConfig& config,
                                               int64_t chunk_size, int64_t max_context);

  // Interpolated recomputation cost of a chunk whose last token has context
  // length `context_len` (seconds).
  double Cost(int64_t context_len) const;

  int64_t chunk_size() const { return chunk_size_; }

 private:
  ChunkCostEstimator(int64_t chunk_size, InterpTable table)
      : chunk_size_(chunk_size), table_(std::move(table)) {}

  int64_t chunk_size_;
  InterpTable table_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_EVICTION_COST_ESTIMATOR_H_

// Cache eviction policies (paper §4.3.1 and the Figure 14 ablation).
//
// A policy assigns each candidate chunk a score; the cache coordinator
// evicts/drops candidates in ascending score order. Pensieve's policy is the
// retention value V = Cost(s, l) / T: cheap-to-recompute chunks and chunks
// of long-inactive conversations go first. The ablation baselines are
// classic conversation-LRU and a cost-only policy.

#ifndef PENSIEVE_SRC_EVICTION_POLICY_H_
#define PENSIEVE_SRC_EVICTION_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/eviction/cost_estimator.h"

namespace pensieve {

struct ChunkCandidate {
  int64_t conversation_id = 0;
  int64_t chunk_index = 0;
  // Context length of the chunk's last token (tokens it attends to).
  int64_t context_len = 0;
  // When the owning conversation was last active (virtual seconds).
  double last_active = 0.0;
  // The chunk is a view over a GPU block other conversations also hold.
  // Detaching it loses nothing another reader hasn't already paid for — a
  // later restore is a trie re-attach, not a recompute — so cost-aware
  // policies treat it as the cheapest possible victim.
  bool shared = false;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  // Lower score = evicted earlier. `now` is the current virtual time.
  virtual double Score(const ChunkCandidate& candidate, double now) const = 0;
  virtual const char* name() const = 0;
};

// Pensieve's policy: V = Cost(s, l) / T.
class RetentionValuePolicy final : public EvictionPolicy {
 public:
  explicit RetentionValuePolicy(ChunkCostEstimator estimator)
      : estimator_(std::move(estimator)) {}
  double Score(const ChunkCandidate& candidate, double now) const override;
  const char* name() const override { return "retention-value"; }

 private:
  ChunkCostEstimator estimator_;
};

// Conversation-granularity LRU: least recently active conversation first;
// leading chunks first within a conversation (required by the drop-prefix
// mechanism anyway).
class LruPolicy final : public EvictionPolicy {
 public:
  double Score(const ChunkCandidate& candidate, double now) const override;
  const char* name() const override { return "lru"; }
};

// Ablation: pure recomputation cost, ignoring recency.
class CostOnlyPolicy final : public EvictionPolicy {
 public:
  explicit CostOnlyPolicy(ChunkCostEstimator estimator)
      : estimator_(std::move(estimator)) {}
  double Score(const ChunkCandidate& candidate, double now) const override;
  const char* name() const override { return "cost-only"; }

 private:
  ChunkCostEstimator estimator_;
};

// kRetentionValue — Pensieve's V = Cost/T, chunk granularity.
// kLru            — LRU scoring, chunk granularity (ablation isolating the
//                   scoring function from the granularity).
// kConversationLru— classic LRU evicting entire conversations at once (the
//                   paper's Figure 14 baseline; CachedAttention-style
//                   granularity per Table 3).
// kCostOnly       — pure recompute cost, ignoring recency (ablation).
enum class EvictionPolicyKind { kRetentionValue, kLru, kConversationLru, kCostOnly };

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   const ChunkCostEstimator& estimator);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_EVICTION_POLICY_H_

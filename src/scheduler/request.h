// Request and outcome types shared by every serving engine.

#ifndef PENSIEVE_SRC_SCHEDULER_REQUEST_H_
#define PENSIEVE_SRC_SCHEDULER_REQUEST_H_

#include <cstdint>

#include "src/common/logging.h"

namespace pensieve {

// One turn of a conversation submitted to the serving system. The prompt is
// described by lengths; raw token ids are rematerialized on demand from the
// persistent history store (SyntheticToken) where numerics are needed.
struct Request {
  int64_t request_id = 0;
  int64_t conversation_id = 0;
  int32_t turn_index = 0;
  // Tokens in the new user prompt of this turn.
  int64_t new_prompt_len = 0;
  // Raw conversation tokens accumulated before this turn (all previous
  // prompts and responses). A stateless system re-processes these.
  int64_t history_len = 0;
  // Response length; generation stops after this many tokens (stand-in for
  // the model emitting EOS).
  int64_t target_output_len = 0;
  double arrival_time = 0.0;
  // Shared-prefix template metadata: the conversation's first
  // `template_prefix_len` raw tokens are the deterministic token stream of
  // template `template_id` (TemplatePrefixToken), identical across every
  // conversation carrying the same id. -1 = no template.
  int32_t template_id = -1;
  int64_t template_prefix_len = 0;
  // Disaggregated serving (DESIGN.md §13). `prefill_only`: the engine
  // finishes this request right after its prefill step (one token emitted);
  // the cluster driver then streams the KV to a decode replica.
  // `handoff_continuation`: the decode-side remainder of a handed-off
  // request; its outcome is merged with the prefill side's before being
  // recorded. Both are false outside disaggregated runs.
  bool prefill_only = false;
  bool handoff_continuation = false;
};

// Completion record for one request, with the reuse accounting that the
// paper's Figure 14 analysis reports.
struct RequestOutcome {
  Request request;
  double first_scheduled_time = 0.0;
  double finish_time = 0.0;
  // Input tokens processed during this request's prefill (new prompt plus
  // any recomputed history).
  int64_t prefill_input_tokens = 0;
  // History tokens served from the GPU cache without recomputation.
  int64_t reused_gpu_tokens = 0;
  // History tokens restored from the CPU cache (swap-in).
  int64_t reused_cpu_tokens = 0;
  // History tokens promoted from the flash (SSD) tier, then restored. Counted
  // separately from reused_cpu_tokens: these paid the extra flash read.
  int64_t reused_ssd_tokens = 0;
  // Tokens attached as views over blocks another conversation prefilled
  // (shared-prefix dedup). A subset of reused_gpu_tokens — the shared run is
  // GPU-resident at admission — broken out because no conversation-local
  // cache could have served them.
  int64_t reused_shared_tokens = 0;
  // History tokens recomputed because their KV had been dropped (or the
  // system is stateless).
  int64_t recomputed_tokens = 0;
  // Output tokens actually generated. Normally equals
  // request.target_output_len; smaller when a run is cut short (e.g. a
  // max_steps abort mid-generation would leave partial requests, and future
  // EOS-style termination ends early by design).
  int64_t generated_tokens = 0;
  // Times the request was suspended and re-queued (paper §4.3.5).
  int32_t suspensions = 0;
  // Virtual time the first output token was emitted (end of the prefill
  // step); 0 when the engine predates the field or the request never
  // prefilled. TTFT = first_token_time - arrival, inter-token latency =
  // (finish - first_token_time) / (generated - 1).
  double first_token_time = 0.0;
  // Start of the step that ran this request's prefill — the window over
  // which a handoff stream's per-layer chunks become ready. Only stamped for
  // prefill_only requests.
  double prefill_compute_start = 0.0;
  // Disaggregated handoff attribution (-1 / 0 when the request never handed
  // off): the replica that ran the prefill, when its KV stream landed at the
  // decode replica, and when the decode side first scheduled the
  // continuation. first_scheduled_time stays the *prefill-side* admission.
  int32_t prefill_replica = -1;
  double handoff_stream_done = 0.0;
  double decode_admit_time = 0.0;

  double NormalizedLatency() const {
    PENSIEVE_CHECK_GT(request.target_output_len, 0);
    return (finish_time - request.arrival_time) /
           static_cast<double>(request.target_output_len);
  }
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SCHEDULER_REQUEST_H_

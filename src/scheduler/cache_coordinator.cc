#include "src/scheduler/cache_coordinator.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace pensieve {

CacheCoordinator::CacheCoordinator(TwoTierKvCache* cache, const EvictionPolicy* policy,
                                   Options options,
                                   std::function<bool(ConversationId)> may_forget)
    : cache_(cache), policy_(policy), options_(options),
      may_forget_(std::move(may_forget)) {
  PENSIEVE_CHECK(cache != nullptr);
  PENSIEVE_CHECK(policy != nullptr);
}

void CacheCoordinator::MaybeForget(ConversationId id) {
  const ContextState* state = cache_->Find(id);
  if (state == nullptr || state->pinned()) {
    return;
  }
  for (const Chunk& c : state->chunks()) {
    if (!c.Dropped()) {
      return;
    }
  }
  if (may_forget_ != nullptr && !may_forget_(id)) {
    return;
  }
  cache_->Release(id);
}

double CacheCoordinator::Score(ConversationId id, const ContextState& state,
                               int64_t chunk_index, double now) const {
  ChunkCandidate candidate;
  candidate.conversation_id = id;
  candidate.chunk_index = chunk_index;
  candidate.context_len = state.ChunkContextLen(chunk_index);
  candidate.last_active = state.last_active();
  const Chunk& chunk = state.chunk(chunk_index);
  candidate.shared = chunk.OnGpu() && cache_->SharedGpuBlock(chunk.gpu_block);
  return policy_->Score(candidate, now);
}

std::optional<CacheCoordinator::Victim> CacheCoordinator::PickVictim(
    double now, const std::function<bool(const Chunk&)>& eligible,
    bool prefix_only) const {
  std::optional<Victim> best;
  for (const auto& [id, state] : cache_->conversations()) {
    if (state.pinned()) {
      continue;
    }
    if (prefix_only) {
      // Only the frontier (first non-dropped) chunk is a legal DropChunk
      // target.
      const int64_t frontier = state.LeadingDroppedChunks();
      if (frontier >= state.num_chunks() || !eligible(state.chunk(frontier))) {
        continue;
      }
      const double score = Score(id, state, frontier, now);
      if (!best.has_value() || score < best->score) {
        best = Victim{id, frontier, score};
      }
      continue;
    }
    for (int64_t i = 0; i < state.num_chunks(); ++i) {
      if (!eligible(state.chunk(i))) {
        continue;
      }
      const double score = Score(id, state, i, now);
      if (!best.has_value() || score < best->score) {
        best = Victim{id, i, score};
      }
    }
  }
  return best;
}

CacheCoordinator::EvictOutcome CacheCoordinator::AheadOfTimeEvict(double now) {
  EvictOutcome outcome;
  const int64_t capacity = cache_->gpu_allocator().capacity();
  if (capacity == 0) {
    return outcome;
  }
  const int64_t target_blocks =
      static_cast<int64_t>(options_.swap_out_target * static_cast<double>(capacity));
  if (cache_->AvailableGpuBlocks() >= target_blocks) {
    aot_failed_at_ = kNeverFailed;
    return outcome;
  }
  // Retry guard: a pass that could not reach the target (CPU tier full,
  // everything pinned) is only retried when virtual time has advanced or
  // the available count changed — at most one rescan per scheduler step.
  if (now == aot_failed_at_ && cache_->AvailableGpuBlocks() == aot_last_failed_available_) {
    return outcome;
  }
  if (!options_.use_cpu_cache) {
    // GPU-cache-only variant: evicted chunks are simply dropped, frontier
    // first (only frontier chunks are legal drop targets).
    while (cache_->AvailableGpuBlocks() < target_blocks) {
      auto drop = PickVictim(
          now, [](const Chunk& c) { return c.OnGpu(); }, /*prefix_only=*/true);
      if (!drop.has_value()) {
        break;
      }
      const ContextState* state = cache_->Find(drop->conversation);
      if (options_.conversation_granularity) {
        outcome.dropped_tokens += state->TokensOnGpu() + state->TokensCpuOnly();
        DropWholeConversation(drop->conversation);
      } else {
        const int64_t tokens = state->chunk(drop->chunk_index).num_tokens;
        if (!cache_->DropChunk(drop->conversation, drop->chunk_index).ok()) {
          break;  // would re-pick the same victim forever
        }
        outcome.dropped_tokens += tokens;
      }
      MaybeForget(drop->conversation);
    }
    if (cache_->AvailableGpuBlocks() < target_blocks) {
      aot_last_failed_available_ = cache_->AvailableGpuBlocks();
      aot_failed_at_ = now;
    }
    return outcome;
  }
  // Collect every GPU-only chunk of unpinned conversations once, sort by
  // ascending retention score, and swap out until the target is met.
  std::vector<Victim> candidates;
  for (const auto& [id, state] : cache_->conversations()) {
    if (state.pinned()) {
      continue;
    }
    for (int64_t i = 0; i < state.num_chunks(); ++i) {
      if (state.chunk(i).location == ChunkLocation::kGpu) {
        candidates.push_back(Victim{id, i, Score(id, state, i, now)});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Victim& a, const Victim& b) { return a.score < b.score; });
  // Reserve CPU space for the whole deficit in one pass; fall back to
  // per-chunk frees only if that could not be satisfied.
  const int64_t deficit = target_blocks - cache_->AvailableGpuBlocks();
  (void)EnsureFreeCpuBlocks(std::min<int64_t>(deficit,
                                              cache_->cpu_allocator().capacity()),
                            now);
  for (const Victim& victim : candidates) {
    if (cache_->AvailableGpuBlocks() >= target_blocks) {
      break;
    }
    if (cache_->cpu_allocator().num_free() == 0 && !EnsureFreeCpuBlocks(1, now)) {
      break;
    }
    const ContextState* state = cache_->Find(victim.conversation);
    if (state == nullptr) {
      continue;  // forgotten by a CPU-pressure drop during this loop
    }
    const int64_t chunk_tokens = state->chunk(victim.chunk_index).num_tokens;
    const Status status = cache_->SwapOut(victim.conversation, victim.chunk_index);
    if (!status.ok()) {
      continue;
    }
    outcome.swapped_out_tokens += chunk_tokens;
    outcome.swapped.emplace_back(victim.conversation, victim.chunk_index);
  }
  if (cache_->AvailableGpuBlocks() < target_blocks) {
    aot_last_failed_available_ = cache_->AvailableGpuBlocks();
    aot_failed_at_ = now;
  }
  return outcome;
}

void CacheCoordinator::DropWholeConversation(ConversationId id) {
  ContextState* state = cache_->Find(id);
  PENSIEVE_CHECK(state != nullptr);
  for (int64_t i = 0; i < state->num_chunks(); ++i) {
    if (!state->chunk(i).Dropped()) {
      if (!cache_->DropChunk(id, i).ok()) {
        break;  // later chunks would violate the drop-prefix invariant anyway
      }
    }
  }
}

bool CacheCoordinator::EnsureFreeCpuBlocks(int64_t n, double now) {
  while (cache_->cpu_allocator().num_free() < n) {
    // Prefer evicting frontier chunks that live only on the CPU: that frees
    // a CPU block and loses the least valuable data per the policy. With the
    // flash tier enabled they are demoted to SSD instead of dropped. One
    // scan finds the best victim and the runner-up score; we then keep
    // evicting the victim conversation's successive frontier chunks for as
    // long as they still beat the runner-up — exactly the strict per-chunk
    // policy order, without rescanning per block. The frontier is the first
    // chunk past the dropped/SSD prefix, so conversations whose oldest
    // resident data already sits on flash remain eligible.
    std::optional<Victim> best;
    double runner_up = std::numeric_limits<double>::infinity();
    for (const auto& [id, state] : cache_->conversations()) {
      if (state.pinned()) {
        continue;
      }
      const int64_t frontier = state.LeadingDroppedOrSsdChunks();
      if (frontier >= state.num_chunks() ||
          state.chunk(frontier).location != ChunkLocation::kCpu) {
        continue;
      }
      const double score = Score(id, state, frontier, now);
      if (!best.has_value() || score < best->score) {
        if (best.has_value()) {
          runner_up = best->score;
        }
        best = Victim{id, frontier, score};
      } else if (score < runner_up) {
        runner_up = score;
      }
    }
    if (best.has_value()) {
      if (options_.conversation_granularity) {
        DropWholeConversation(best->conversation);
      } else {
        ContextState* state = cache_->Find(best->conversation);
        int64_t chunk = best->chunk_index;
        while (cache_->cpu_allocator().num_free() < n && chunk < state->num_chunks() &&
               state->chunk(chunk).location == ChunkLocation::kCpu &&
               Score(best->conversation, *state, chunk, now) <= runner_up) {
          if (options_.use_ssd_cache) {
            const int64_t tokens = state->chunk(chunk).num_tokens;
            if (cache_->DemoteToFlash(best->conversation, chunk).ok()) {
              pending_spill_.demoted_tokens += tokens;
              pending_spill_.demoted.emplace_back(best->conversation, chunk);
              ++chunk;
              continue;
            }
            ++pending_spill_.failed_demotes;
            // Flash full of pinned chunks, or the CPU copy failed its
            // checksum: fall through to dropping.
          }
          // Cross-replica spill: the chunk is a clean CPU frontier copy and
          // is about to be dropped either way; offering it to a peer is pure
          // upside (a failed transfer degrades to exactly this drop).
          const bool offerable =
              options_.peer_spill && !state->chunk(chunk).cpu_corrupt;
          const int64_t offer_tokens = state->chunk(chunk).num_tokens;
          // DropThroughPrefix also takes down any SSD chunks demoted just
          // above when flash admission stalls mid-conversation.
          if (!cache_->DropThroughPrefix(best->conversation, chunk).ok()) {
            break;
          }
          if (offerable) {
            PeerOffer offer;
            offer.conversation = best->conversation;
            offer.chunk_index = chunk;
            offer.first_token = chunk * cache_->block_size();
            offer.num_tokens = offer_tokens;
            pending_peer_offers_.push_back(offer);
          }
          ++chunk;
        }
      }
      MaybeForget(best->conversation);
      continue;
    }
    // Otherwise discard a clean CPU copy (the chunk stays on the GPU).
    auto dual = PickVictim(
        now, [](const Chunk& c) { return c.location == ChunkLocation::kGpuAndCpu; },
        /*prefix_only=*/false);
    if (dual.has_value()) {
      if (!cache_->DropCpuCopy(dual->conversation, dual->chunk_index).ok()) {
        return false;
      }
      continue;
    }
    return false;
  }
  return true;
}

CacheCoordinator::SpillOutcome CacheCoordinator::TakeSpill() {
  SpillOutcome spill = std::move(pending_spill_);
  pending_spill_ = SpillOutcome{};
  return spill;
}

std::vector<CacheCoordinator::PeerOffer> CacheCoordinator::TakePeerOffers() {
  std::vector<PeerOffer> offers = std::move(pending_peer_offers_);
  pending_peer_offers_.clear();
  return offers;
}

CacheCoordinator::FreeOutcome CacheCoordinator::EnsureFreeGpuBlocks(int64_t n,
                                                                    double now) {
  FreeOutcome outcome;
  // 1. Instant reclamation of clean copies: one scan, sorted, reclaim as
  // many as needed.
  if (cache_->gpu_allocator().num_free() < n) {
    std::vector<Victim> reclaimable;
    for (const auto& [id, state] : cache_->conversations()) {
      if (state.pinned()) {
        continue;
      }
      for (int64_t i = 0; i < state.num_chunks(); ++i) {
        if (state.chunk(i).location == ChunkLocation::kGpuAndCpu) {
          reclaimable.push_back(Victim{id, i, Score(id, state, i, now)});
        }
      }
    }
    std::sort(reclaimable.begin(), reclaimable.end(),
              [](const Victim& a, const Victim& b) { return a.score < b.score; });
    for (const Victim& v : reclaimable) {
      if (cache_->gpu_allocator().num_free() >= n) {
        break;
      }
      if (!cache_->ReclaimGpu(v.conversation, v.chunk_index).ok()) {
        continue;  // e.g. the CPU copy was corrupted by a faulted transfer
      }
      ++outcome.reclaimed_blocks;
    }
  }
  // 2. Forced swap-out (ahead-of-time swapping fell behind): pays a
  // synchronous PCIe stall, charged by the engine.
  if (options_.use_cpu_cache && cache_->gpu_allocator().num_free() < n) {
    std::vector<Victim> swappable;
    for (const auto& [id, state] : cache_->conversations()) {
      if (state.pinned()) {
        continue;
      }
      for (int64_t i = 0; i < state.num_chunks(); ++i) {
        if (state.chunk(i).location == ChunkLocation::kGpu) {
          swappable.push_back(Victim{id, i, Score(id, state, i, now)});
        }
      }
    }
    std::sort(swappable.begin(), swappable.end(),
              [](const Victim& a, const Victim& b) { return a.score < b.score; });
    const int64_t swap_deficit = n - cache_->gpu_allocator().num_free();
    (void)EnsureFreeCpuBlocks(
        std::min<int64_t>(swap_deficit, cache_->cpu_allocator().capacity()), now);
    for (const Victim& v : swappable) {
      if (cache_->gpu_allocator().num_free() >= n) {
        break;
      }
      if (cache_->cpu_allocator().num_free() == 0 && !EnsureFreeCpuBlocks(1, now)) {
        break;
      }
      const ContextState* state = cache_->Find(v.conversation);
      if (state == nullptr || v.chunk_index >= state->num_chunks() ||
          state->chunk(v.chunk_index).location != ChunkLocation::kGpu) {
        continue;  // state changed under CPU-pressure drops
      }
      const int64_t tokens = state->chunk(v.chunk_index).num_tokens;
      if (!cache_->SwapOut(v.conversation, v.chunk_index).ok()) {
        continue;
      }
      if (!cache_->ReclaimGpu(v.conversation, v.chunk_index).ok()) {
        continue;  // chunk stays kGpuAndCpu; no block freed, no stall charged
      }
      outcome.forced_swap_out_tokens += tokens;
      outcome.forced_swapped.emplace_back(v.conversation, v.chunk_index);
    }
  }
  while (cache_->gpu_allocator().num_free() < n) {
    // 3. Last resort (and the only path in GPU-cache-only mode): drop the
    // lowest-retention frontier chunk that still occupies GPU memory.
    auto drop = PickVictim(
        now, [](const Chunk& c) { return c.OnGpu(); },
        /*prefix_only=*/true);
    if (drop.has_value()) {
      const ContextState* state = cache_->Find(drop->conversation);
      if (options_.conversation_granularity) {
        outcome.dropped_tokens += state->TokensOnGpu() + state->TokensCpuOnly();
        DropWholeConversation(drop->conversation);
      } else {
        const int64_t tokens = state->chunk(drop->chunk_index).num_tokens;
        if (!cache_->DropChunk(drop->conversation, drop->chunk_index).ok()) {
          outcome.ok = false;  // would re-pick the same victim forever
          return outcome;
        }
        outcome.dropped_tokens += tokens;
      }
      MaybeForget(drop->conversation);
      continue;
    }
    // 3b. Flash frontier (SSD tier only): a conversation whose oldest
    // resident chunks were demoted to flash holds its GPU blocks behind a
    // kSsd/kCpu prefix that the frontier-only DropChunk above cannot reach —
    // pre-flash, CPU-pressure drops kept such prefixes kDropped and the
    // conversation visible. Pick the best conversation by its first
    // GPU-resident chunk and drop the whole prefix through it.
    if (options_.use_ssd_cache) {
      std::optional<Victim> deep;
      for (const auto& [id, state] : cache_->conversations()) {
        if (state.pinned()) {
          continue;
        }
        int64_t i = state.LeadingDroppedChunks();
        while (i < state.num_chunks() && !state.chunk(i).OnGpu()) {
          ++i;
        }
        if (i >= state.num_chunks()) {
          continue;
        }
        const double score = Score(id, state, i, now);
        if (!deep.has_value() || score < deep->score) {
          deep = Victim{id, i, score};
        }
      }
      if (deep.has_value()) {
        int64_t dropped = 0;
        if (cache_->DropThroughPrefix(deep->conversation, deep->chunk_index,
                                      &dropped)
                .ok()) {
          outcome.dropped_tokens += dropped;
          MaybeForget(deep->conversation);
          continue;
        }
      }
    }
    // Nothing evictable: every conversation with GPU-resident chunks is
    // pinned by the running batch.
    outcome.ok = false;
    return outcome;
  }
  outcome.ok = true;
  return outcome;
}

}  // namespace pensieve

// Shared step-latency computation for serving engines.
//
// Engines describe a step as a list of (query_len, context_len) items and an
// optional dense-operator speedup (TensorRT-LLM's graph-fusion advantage is
// modeled as a > 1 speedup on non-attention work, which is exactly what the
// paper attributes its edge to).

#ifndef PENSIEVE_SRC_SCHEDULER_STEP_COST_H_
#define PENSIEVE_SRC_SCHEDULER_STEP_COST_H_

#include <vector>

#include "src/sim/cost_model.h"

namespace pensieve {

double UnifiedStepTime(const GpuCostModel& cost_model,
                       const std::vector<GpuCostModel::BatchItem>& items,
                       double dense_speedup);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SCHEDULER_STEP_COST_H_

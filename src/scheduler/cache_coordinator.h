// Scheduler-side cache policy application (paper §4.3).
//
// The TwoTierKvCache provides mechanisms; this coordinator decides *which*
// chunks move, consulting the eviction policy:
//
//  * Ahead-of-time swap-out (§4.3.2): when free+reclaimable GPU slots fall
//    below a threshold, copy the lowest-retention GPU chunks to the CPU so
//    their slots become reclaimable for free later.
//  * GPU allocation pressure: reclaim clean-copy slots first (instant),
//    force-swap (synchronous PCIe stall) second, drop (recompute later)
//    last.
//  * CPU pressure: drop the lowest-retention frontier chunks (the paper
//    drops from the leading end of a conversation because leading tokens
//    are cheapest to recompute).
//
// Pinned conversations (those with a request in the running batch) are never
// victimized.

#ifndef PENSIEVE_SRC_SCHEDULER_CACHE_COORDINATOR_H_
#define PENSIEVE_SRC_SCHEDULER_CACHE_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/eviction/policy.h"
#include "src/kvcache/two_tier_cache.h"

namespace pensieve {

class CacheCoordinator {
 public:
  struct Options {
    // false = the Pensieve (GPU cache) variant: evicted chunks are dropped
    // rather than swapped to the CPU tier.
    bool use_cpu_cache = true;
    // Spill CPU-pressure victims to the flash tier (DemoteToFlash) instead
    // of dropping them. Requires the cache to have a flash tier configured.
    bool use_ssd_cache = false;
    // Ahead-of-time swap-out keeps free+reclaimable above this fraction
    // (paper uses a 25% trigger).
    double swap_out_target = 0.25;
    // Classic-LRU granularity (the Figure 14 baseline): once a conversation
    // is chosen for dropping, its *entire* cached history is dropped, as in
    // CachedAttention (paper Table 3), instead of Pensieve's chunk-level
    // dropping.
    bool conversation_granularity = false;
    // Cross-replica spill (DESIGN.md §14): record CPU-pressure drops as
    // peer offers so the cluster driver can ship the chunk to a peer's idle
    // CPU tier. The drop itself is unchanged (the offer is the cluster-side
    // copy); chunk-granularity only.
    bool peer_spill = false;
  };

  // `may_forget` (optional) is consulted before erasing a fully-dropped
  // conversation's bookkeeping: the engine returns false while a request for
  // that conversation is still queued or running.
  CacheCoordinator(TwoTierKvCache* cache, const EvictionPolicy* policy, Options options,
                   std::function<bool(ConversationId)> may_forget = nullptr);

  struct FreeOutcome {
    bool ok = false;
    int64_t reclaimed_blocks = 0;
    // Tokens force-swapped synchronously (the engine charges their PCIe
    // transfer as a stall: ahead-of-time swapping failed to keep up).
    int64_t forced_swap_out_tokens = 0;
    int64_t dropped_tokens = 0;
    // The (conversation, chunk) pairs behind forced_swap_out_tokens. The
    // chunks are kCpu once this returns; if the engine's d2h transfer for
    // them fails, it marks each one corrupt so a later swap-in degrades to
    // recomputation instead of restoring garbage.
    std::vector<std::pair<ConversationId, int64_t>> forced_swapped;
  };
  // Makes at least `n` blocks available on the GPU free list.
  FreeOutcome EnsureFreeGpuBlocks(int64_t n, double now);

  // Ahead-of-time eviction toward the target free fraction. With the CPU
  // tier enabled this swaps out lowest-retention GPU chunks (returning the
  // tokens to schedule on the device-to-host link); in GPU-cache-only mode
  // it drops lowest-retention frontier chunks instead (the paper's
  // "Pensieve (GPU cache)" variant discards evicted tokens).
  struct EvictOutcome {
    int64_t swapped_out_tokens = 0;
    int64_t dropped_tokens = 0;
    // The (conversation, chunk) pairs behind swapped_out_tokens. The chunks
    // are still kGpuAndCpu (reclamation is lazy); if the engine's d2h
    // transfer for them fails, it rolls the copies back with DropCpuCopy —
    // nothing is lost, the chunks simply stay unevicted.
    std::vector<std::pair<ConversationId, int64_t>> swapped;
  };
  EvictOutcome AheadOfTimeEvict(double now);

  // Frees at least `n` CPU blocks by dropping low-retention chunks — or,
  // with use_ssd_cache, demoting them to the flash tier instead.
  bool EnsureFreeCpuBlocks(int64_t n, double now);

  // Demotions performed since the last call (any coordinator entry point may
  // spill under CPU pressure). The engine drains this after each call and
  // charges the chunks' SSD writes as background traffic; on a failed
  // transfer it marks them corrupt.
  struct SpillOutcome {
    int64_t demoted_tokens = 0;
    // Demotions refused (flash full of pinned chunks / corrupt CPU copy)
    // that fell back to dropping.
    int64_t failed_demotes = 0;
    // The (conversation, chunk) pairs now kSsd.
    std::vector<std::pair<ConversationId, int64_t>> demoted;
  };
  SpillOutcome TakeSpill();

  // One CPU-tier eviction offered to a peer replica instead of silently
  // dropping (recorded just before the drop; the chunk was an uncorrupted
  // kCpu frontier chunk, so successive offers of one conversation are
  // contiguous token ranges).
  struct PeerOffer {
    ConversationId conversation = 0;
    int64_t chunk_index = 0;
    int64_t first_token = 0;
    int64_t num_tokens = 0;
  };
  // Offers recorded since the last call; drained by the engine after each
  // entry point, like TakeSpill.
  std::vector<PeerOffer> TakePeerOffers();

  const Options& options() const { return options_; }

 private:
  struct Victim {
    ConversationId conversation;
    int64_t chunk_index;
    double score;
  };

  // Lowest-score chunk among unpinned conversations satisfying `eligible`.
  // For prefix_only victims, only each conversation's first non-dropped
  // chunk is considered (DropChunk legality).
  std::optional<Victim> PickVictim(double now,
                                   const std::function<bool(const Chunk&)>& eligible,
                                   bool prefix_only) const;

  double Score(ConversationId id, const ContextState& state, int64_t chunk_index,
               double now) const;

  // Drops every cached chunk of a conversation (classic-LRU granularity).
  void DropWholeConversation(ConversationId id);

  // Erases a conversation whose chunks are all dropped (pure bookkeeping at
  // that point) so eviction scans stay proportional to *resident*
  // conversations, unless the engine still has a request for it in flight.
  void MaybeForget(ConversationId id);

  TwoTierKvCache* cache_;
  const EvictionPolicy* policy_;
  Options options_;
  std::function<bool(ConversationId)> may_forget_;
  SpillOutcome pending_spill_;
  std::vector<PeerOffer> pending_peer_offers_;
  // Retry guard for ahead-of-time eviction: when a pass could not reach the
  // target (e.g. CPU tier full), skip further passes within the same virtual
  // instant unless the available block count changed.
  static constexpr double kNeverFailed = -1.0;
  double aot_failed_at_ = kNeverFailed;
  int64_t aot_last_failed_available_ = -1;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SCHEDULER_CACHE_COORDINATOR_H_

#include "src/scheduler/step_cost.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

double UnifiedStepTime(const GpuCostModel& cost_model,
                       const std::vector<GpuCostModel::BatchItem>& items,
                       double dense_speedup) {
  PENSIEVE_CHECK_GT(dense_speedup, 0.0);
  int64_t total_tokens = 0;
  double attention_time = 0.0;
  for (const GpuCostModel::BatchItem& item : items) {
    total_tokens += item.query_len;
    attention_time += cost_model.AttentionTime(item.query_len, item.context_len);
  }
  if (total_tokens == 0) {
    return 0.0;
  }
  const double dense_math = cost_model.LinearTime(total_tokens) / dense_speedup;
  const double dense_time = std::max(dense_math, cost_model.WeightReadTime());
  const HardwareSpec& hw = cost_model.hardware();
  const double overhead =
      hw.step_overhead +
      hw.layer_overhead * static_cast<double>(cost_model.model().num_layers);
  return dense_time + attention_time + overhead;
}

}  // namespace pensieve

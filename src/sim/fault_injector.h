// Deterministic, seeded fault injection for the simulated KV-transfer links.
//
// Both KV-moving links — the per-replica PCIe link group (swap-out/swap-in,
// src/sim/pcie_link.h) and the inter-replica NIC (migration,
// src/sim/cluster_link.h) — are infallible by construction; this wrapper
// makes them lie. Each transfer draws at most one fault per attempt from a
// per-link profile:
//
//   timeout     nothing crosses the link; the sender burns a detection
//               window, then retries.
//   stall       the transfer completes, but occupies `stall_factor` x its
//               nominal link time (congestion / degraded lanes).
//   partial     a prefix of the bytes consumes bandwidth, then the transfer
//               dies; the whole payload is retransmitted.
//   corruption  all bytes land but the per-block checksum rejects them on
//               arrival (silent bit flip in flight); retransmitted.
//
// Failed attempts retry with exponential backoff up to `max_attempts`; every
// second of fault handling (timeouts, dead partial transfers, backoff) is
// charged through the simulated clock via the wrapped schedule call, so
// fault cost shows up in step durations and latency percentiles, never in
// wall time. When retries exhaust, the caller degrades: the engine treats
// the affected blocks as dropped prefix and recomputes (paper §4.3.4), the
// cluster driver re-homes the conversation without its KV. No fault ever
// drops a request.
//
// Determinism: all randomness flows through one seeded Rng owned by the
// injector (§7 contract), and a profile with all rates zero takes a fast
// path that draws nothing and schedules exactly one attempt — bit-identical
// to the pre-fault-injection code.

#ifndef PENSIEVE_SRC_SIM_FAULT_INJECTOR_H_
#define PENSIEVE_SRC_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>

#include "src/common/rng.h"

namespace pensieve {

class FlagParser;

enum class LinkFaultKind : uint8_t {
  kNone = 0,
  kTimeout,
  kStall,
  kPartial,
  kCorruption,
};

const char* LinkFaultKindName(LinkFaultKind kind);

// Per-attempt fault probabilities and shape parameters for one link.
struct LinkFaultProfile {
  double timeout_rate = 0.0;
  double stall_rate = 0.0;
  double partial_rate = 0.0;
  double corruption_rate = 0.0;
  // Seconds a timed-out attempt burns before the sender gives up on it.
  double timeout_seconds = 0.2;
  // A stalled attempt occupies this multiple of its nominal bytes' link time.
  double stall_factor = 4.0;
  // A partial transfer delivers a dead prefix in [min_partial_fraction, 1)
  // of the bytes before failing.
  double min_partial_fraction = 0.25;

  bool Enabled() const {
    return timeout_rate > 0.0 || stall_rate > 0.0 || partial_rate > 0.0 ||
           corruption_rate > 0.0;
  }
};

// Bounded retry with exponential backoff for transient link faults.
struct LinkRetryPolicy {
  int32_t max_attempts = 4;
  double backoff_initial = 0.01;  // seconds before the second attempt
  double backoff_factor = 2.0;
};

// Fault accounting. The identity every run must satisfy (pinned by tests):
//   injected_timeouts + injected_partials + injected_corruptions
//     == recovered_faults + unrecovered_faults
// (stalls deliver — late — and so are never retried or recovered).
struct LinkFaultStats {
  int64_t transfers = 0;          // Transfer() calls
  int64_t faulted_transfers = 0;  // transfers that hit at least one fault
  int64_t injected_timeouts = 0;
  int64_t injected_stalls = 0;
  int64_t injected_partials = 0;
  int64_t injected_corruptions = 0;
  int64_t retries = 0;  // extra attempts after a failed one
  // Failed attempts papered over by a later successful attempt of the same
  // transfer vs. failed attempts of transfers that exhausted their retries.
  int64_t recovered_faults = 0;
  int64_t unrecovered_faults = 0;
  // Transfers that exhausted max_attempts; the caller degraded to recompute.
  int64_t exhausted_transfers = 0;
  double retry_backoff_seconds = 0.0;

  int64_t InjectedFaults() const {
    return injected_timeouts + injected_stalls + injected_partials +
           injected_corruptions;
  }

  LinkFaultStats& operator+=(const LinkFaultStats& other) {
    transfers += other.transfers;
    faulted_transfers += other.faulted_transfers;
    injected_timeouts += other.injected_timeouts;
    injected_stalls += other.injected_stalls;
    injected_partials += other.injected_partials;
    injected_corruptions += other.injected_corruptions;
    retries += other.retries;
    recovered_faults += other.recovered_faults;
    unrecovered_faults += other.unrecovered_faults;
    exhausted_transfers += other.exhausted_transfers;
    retry_backoff_seconds += other.retry_backoff_seconds;
    return *this;
  }
};

struct LinkTransferOutcome {
  // Delivery time when `delivered`, otherwise the time the final attempt
  // was abandoned (link time already burned either way).
  double done = 0.0;
  bool delivered = true;
  int32_t attempts = 1;
  LinkFaultKind last_fault = LinkFaultKind::kNone;
};

class LinkFaultInjector {
 public:
  LinkFaultInjector(uint64_t seed, LinkFaultProfile profile,
                    LinkRetryPolicy retry);

  // Schedules `bytes` on the underlying link: `schedule(start, bytes)`
  // must book the transfer and return its completion time (PcieLink /
  // TpLinkGroup / ClusterInterconnect all fit). May call `schedule` several
  // times (retries, partials); with faults disabled it calls it exactly
  // once with (now, bytes).
  LinkTransferOutcome Transfer(
      double now, double bytes,
      const std::function<double(double start, double bytes)>& schedule);

  bool enabled() const { return profile_.Enabled(); }
  const LinkFaultProfile& profile() const { return profile_; }
  const LinkFaultStats& stats() const { return stats_; }

 private:
  LinkFaultKind Draw();

  LinkFaultProfile profile_;
  LinkRetryPolicy retry_;
  Rng rng_;
  LinkFaultStats stats_;
};

// --- Command-line surface ----------------------------------------------------
// Shared fault configuration for the tools and benches: one profile per
// link kind plus the common retry policy and seed.
struct FaultConfig {
  uint64_t seed = 0;
  LinkRetryPolicy retry;
  LinkFaultProfile pcie;  // swap-out / swap-in transfers
  LinkFaultProfile nic;   // inter-replica KV migration
  LinkFaultProfile ssd;   // flash-tier demote / promote transfers

  bool Enabled() const {
    return pcie.Enabled() || nic.Enabled() || ssd.Enabled();
  }
};

// Registers the --fault-* flags on `flags` / reads them back.
void AddFaultFlags(FlagParser* flags);
FaultConfig FaultConfigFromFlags(const FlagParser& flags);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_FAULT_INJECTOR_H_

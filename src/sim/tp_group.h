// Tensor-parallel worker group (paper §4.4.2).
//
// For multi-GPU models, Pensieve partitions the model — and therefore the
// KV cache — along the feature dimension across N workers, one per GPU.
// Cache decisions are made once by the scheduler; because partitioning is
// feature-wise, the *same* migration plan applies to every worker, each of
// which moves its own 1/N slice of every chunk over its own PCIe link.
//
// Two pieces:
//  * TpLinkGroup  — N per-worker PCIe links; a transfer of per-worker
//    `bytes` is scheduled on every link, and the group completion is the
//    slowest worker's completion (links can be skewed).
//  * TpWorkerGroup — N mirrored block-allocator replicas that all apply the
//    scheduler's CachePlan; a consistency audit verifies the replicas never
//    diverge (the property §4.4.2 relies on).

#ifndef PENSIEVE_SRC_SIM_TP_GROUP_H_
#define PENSIEVE_SRC_SIM_TP_GROUP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/kvcache/block.h"
#include "src/kvcache/block_allocator.h"
#include "src/sim/pcie_link.h"

namespace pensieve {

class TpLinkGroup {
 public:
  TpLinkGroup(int num_workers, double bandwidth_per_dir, double duplex_factor,
              bool prioritize_h2d);

  int num_workers() const { return static_cast<int>(links_.size()); }
  PcieLink& link(int worker) { return *links_[static_cast<size_t>(worker)]; }

  // Schedules `bytes_per_worker` on every worker's link; returns the group
  // completion time (slowest worker).
  double ScheduleHostToDevice(double now, double bytes_per_worker);
  double ScheduleDeviceToHost(double now, double bytes_per_worker);

 private:
  std::vector<std::unique_ptr<PcieLink>> links_;
};

// One step's cache migrations, as broadcast by the scheduler (§4.1: "the
// worker performs the actual data movements ... based on the batch's cache
// plan as determined by the scheduler").
struct CachePlan {
  enum class OpKind : uint8_t { kAllocateGpu, kFreeGpu, kAllocateCpu, kFreeCpu };
  struct Op {
    OpKind kind;
    // Block id in the scheduler's (mirrored) id space.
    BlockId block;
  };
  int64_t step_id = 0;
  std::vector<Op> ops;
};

// N mirrored replicas of the scheduler's allocator state. Every worker
// applies every plan; ApplyToAll aborts the process if any replica would
// diverge (double-free / double-allocate), which would mean the feature
// partitions no longer describe the same tokens.
class TpWorkerGroup {
 public:
  TpWorkerGroup(int num_workers, int64_t num_gpu_blocks, int64_t num_cpu_blocks);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Applies the plan to every worker replica. Returns an error (with no
  // partial application across workers — the plan is validated against the
  // first replica before any replica mutates) if the plan is inconsistent
  // with the mirrored state.
  Status ApplyToAll(const CachePlan& plan);

  // True when every worker's allocator state is byte-identical.
  bool ReplicasConsistent() const;

  int64_t gpu_free(int worker) const {
    return workers_[static_cast<size_t>(worker)]->gpu.num_free();
  }
  int64_t cpu_free(int worker) const {
    return workers_[static_cast<size_t>(worker)]->cpu.num_free();
  }
  int64_t last_applied_step(int worker) const {
    return workers_[static_cast<size_t>(worker)]->last_step;
  }
  bool IsGpuAllocated(int worker, BlockId block) const {
    return workers_[static_cast<size_t>(worker)]->gpu.IsAllocated(block);
  }
  bool IsCpuAllocated(int worker, BlockId block) const {
    return workers_[static_cast<size_t>(worker)]->cpu.IsAllocated(block);
  }

 private:
  struct Worker {
    Worker(int64_t gpu_blocks, int64_t cpu_blocks) : gpu(gpu_blocks), cpu(cpu_blocks) {}
    BlockAllocator gpu;
    BlockAllocator cpu;
    int64_t last_step = -1;
  };

  // Validates that the plan's frees target allocated blocks and allocations
  // target free blocks, against one replica (they are all identical).
  Status Validate(const CachePlan& plan) const;

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_TP_GROUP_H_

// Hardware description for the simulated serving platform.
//
// The paper evaluates on Azure NC A100 v4 (1-4x A100-80GB, PCIe, 220 GB host
// RAM per GPU). We reproduce that platform as an analytical model: effective
// GEMM throughput, HBM bandwidth (decode steps are memory-bound), PCIe
// bandwidth per direction with the measured 18-20% duplex interference
// (paper §5), and tensor-parallel scaling efficiency for multi-GPU models.

#ifndef PENSIEVE_SRC_SIM_HARDWARE_H_
#define PENSIEVE_SRC_SIM_HARDWARE_H_

#include <cstdint>

namespace pensieve {

struct HardwareSpec {
  // Effective fp16 math throughput per GPU (FLOP/s). A100 peak is 312 TFLOPS
  // with sparsity off; sustained GEMM efficiency on serving shapes ~45%.
  double gpu_flops = 312e12 * 0.45;
  // Effective HBM bandwidth per GPU (bytes/s). A100-80GB peak 2.0 TB/s,
  // ~80% achievable on streaming reads.
  double hbm_bandwidth = 2.0e12 * 0.8;
  // PCIe 4.0 x16 effective bandwidth per direction (bytes/s).
  double pcie_bandwidth = 25e9;
  // Multiplier applied to each direction while both are active; the paper
  // measured an 18-20% throughput drop under full-duplex transfers.
  double pcie_duplex_factor = 0.8;
  // GEMM utilization half-point: dense kernels reach half of their peak
  // efficiency at this many tokens per step. Small batches underutilize the
  // GPU, which is why running prefills as separate small kernels (split
  // scheduling) costs throughput (paper §4.2 / Figure 13).
  double gemm_utilization_half_tokens = 64.0;
  // Fixed kernel-launch / sync overhead per transformer layer per step.
  double layer_overhead = 4e-6;
  // Fixed per-iteration overhead (scheduling, batching, output handling).
  double step_overhead = 250e-6;
  // Tensor-parallel GPUs serving the model.
  int num_gpus = 1;
  // Scaling efficiency of tensor parallelism (all-reduce costs).
  double tp_efficiency = 0.85;
  // GPU memory reserved for the KV cache, per GPU. The paper configures
  // 40 GB per GPU for every system.
  int64_t gpu_kv_cache_bytes = 40LL * 1024 * 1024 * 1024;
  // Host memory available for the CPU cache tier, per GPU (220 GB per GPU on
  // the paper's VMs; leave headroom for the runtime).
  int64_t cpu_kv_cache_bytes = 180LL * 1024 * 1024 * 1024;
  // Local NVMe SSD backing the flash KV tier: effective sequential
  // bandwidths per direction (reads are the latency-critical promote path;
  // log-structured writes stream sequentially but NAND programs slower than
  // it reads) and a fixed per-operation access latency (FTL + queueing).
  double ssd_read_bandwidth = 6e9;
  double ssd_write_bandwidth = 3e9;
  double ssd_access_latency = 80e-6;
};

// The paper's testbed: Azure NC A100 v4 with `num_gpus` GPUs.
HardwareSpec A100Spec(int num_gpus);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_HARDWARE_H_

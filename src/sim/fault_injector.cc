#include "src/sim/fault_injector.h"

#include <cmath>

#include "src/common/flags.h"
#include "src/common/logging.h"

namespace pensieve {

const char* LinkFaultKindName(LinkFaultKind kind) {
  switch (kind) {
    case LinkFaultKind::kNone:
      return "none";
    case LinkFaultKind::kTimeout:
      return "timeout";
    case LinkFaultKind::kStall:
      return "stall";
    case LinkFaultKind::kPartial:
      return "partial";
    case LinkFaultKind::kCorruption:
      return "corruption";
  }
  return "?";
}

LinkFaultInjector::LinkFaultInjector(uint64_t seed, LinkFaultProfile profile,
                                     LinkRetryPolicy retry)
    : profile_(profile), retry_(retry), rng_(seed) {
  PENSIEVE_CHECK_GE(retry_.max_attempts, 1);
  PENSIEVE_CHECK_GE(profile_.timeout_rate, 0.0);
  PENSIEVE_CHECK_GE(profile_.stall_rate, 0.0);
  PENSIEVE_CHECK_GE(profile_.partial_rate, 0.0);
  PENSIEVE_CHECK_GE(profile_.corruption_rate, 0.0);
  PENSIEVE_CHECK_LE(profile_.timeout_rate + profile_.stall_rate +
                        profile_.partial_rate + profile_.corruption_rate,
                    1.0);
}

LinkFaultKind LinkFaultInjector::Draw() {
  // One uniform draw per attempt, sliced by cumulative rate thresholds so
  // the per-attempt draw count is fixed (determinism survives profile
  // tweaks within a run).
  const double u = rng_.Uniform(0.0, 1.0);
  double edge = profile_.timeout_rate;
  if (u < edge) {
    return LinkFaultKind::kTimeout;
  }
  edge += profile_.stall_rate;
  if (u < edge) {
    return LinkFaultKind::kStall;
  }
  edge += profile_.partial_rate;
  if (u < edge) {
    return LinkFaultKind::kPartial;
  }
  edge += profile_.corruption_rate;
  if (u < edge) {
    return LinkFaultKind::kCorruption;
  }
  return LinkFaultKind::kNone;
}

LinkTransferOutcome LinkFaultInjector::Transfer(
    double now, double bytes,
    const std::function<double(double start, double bytes)>& schedule) {
  ++stats_.transfers;
  LinkTransferOutcome out;
  if (!profile_.Enabled()) {
    // Zero-rate fast path: no RNG draws, one attempt, identical link state
    // to the pre-fault-injection code.
    out.done = schedule(now, bytes);
    return out;
  }
  double t = now;
  int64_t failed_attempts = 0;
  bool faulted = false;
  for (int32_t attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    out.attempts = attempt;
    const LinkFaultKind kind = Draw();
    switch (kind) {
      case LinkFaultKind::kNone:
        out.done = schedule(t, bytes);
        out.delivered = true;
        out.last_fault = LinkFaultKind::kNone;
        stats_.recovered_faults += failed_attempts;
        stats_.faulted_transfers += faulted ? 1 : 0;
        return out;
      case LinkFaultKind::kStall:
        // Delivered, late: the attempt occupies stall_factor x the nominal
        // link time of its bytes.
        ++stats_.injected_stalls;
        out.done = schedule(t, bytes * profile_.stall_factor);
        out.delivered = true;
        out.last_fault = LinkFaultKind::kStall;
        stats_.recovered_faults += failed_attempts;
        ++stats_.faulted_transfers;
        return out;
      case LinkFaultKind::kTimeout:
        // Nothing crossed the link; only the detection window elapses.
        ++stats_.injected_timeouts;
        t += profile_.timeout_seconds;
        break;
      case LinkFaultKind::kPartial: {
        // A dead prefix of the payload consumed real bandwidth.
        ++stats_.injected_partials;
        const double fraction = rng_.Uniform(profile_.min_partial_fraction, 1.0);
        t = schedule(t, bytes * fraction);
        break;
      }
      case LinkFaultKind::kCorruption:
        // Full payload lands; the receiver's checksum rejects it.
        ++stats_.injected_corruptions;
        t = schedule(t, bytes);
        break;
    }
    faulted = true;
    out.last_fault = kind;
    ++failed_attempts;
    if (attempt < retry_.max_attempts) {
      ++stats_.retries;
      const double backoff =
          retry_.backoff_initial *
          std::pow(retry_.backoff_factor, static_cast<double>(attempt - 1));
      stats_.retry_backoff_seconds += backoff;
      t += backoff;
    }
  }
  ++stats_.faulted_transfers;
  ++stats_.exhausted_transfers;
  stats_.unrecovered_faults += failed_attempts;
  out.done = t;
  out.delivered = false;
  return out;
}

void AddFaultFlags(FlagParser* flags) {
  flags->AddInt("fault-seed", 0, "fault-injection RNG seed");
  flags->AddInt("fault-max-attempts", 4,
                "KV transfer attempts before degrading to recomputation");
  flags->AddDouble("fault-backoff-s", 0.01,
                   "initial retry backoff (seconds); doubles per retry");
  flags->AddDouble("fault-timeout-s", 0.2,
                   "detection window burned by a timed-out transfer attempt");
  flags->AddDouble("fault-stall-factor", 4.0,
                   "slowdown multiplier for stalled transfer attempts");
  flags->AddDouble("fault-pcie-timeout", 0.0,
                   "per-attempt timeout probability on the PCIe (swap) link");
  flags->AddDouble("fault-pcie-stall", 0.0,
                   "per-attempt stall probability on the PCIe (swap) link");
  flags->AddDouble("fault-pcie-partial", 0.0,
                   "per-attempt partial-transfer probability on the PCIe link");
  flags->AddDouble("fault-pcie-corrupt", 0.0,
                   "per-attempt silent-corruption probability on the PCIe "
                   "link (caught by block checksums at swap-in)");
  flags->AddDouble("fault-nic-timeout", 0.0,
                   "per-attempt timeout probability on the inter-replica NIC");
  flags->AddDouble("fault-nic-stall", 0.0,
                   "per-attempt stall probability on the inter-replica NIC");
  flags->AddDouble("fault-nic-partial", 0.0,
                   "per-attempt partial-transfer probability on the NIC");
  flags->AddDouble("fault-nic-corrupt", 0.0,
                   "per-attempt silent-corruption probability on the NIC "
                   "(caught by block checksums at migration arrival)");
  flags->AddDouble("fault-ssd-timeout", 0.0,
                   "per-attempt timeout probability on the flash (SSD) link");
  flags->AddDouble("fault-ssd-stall", 0.0,
                   "per-attempt stall probability on the flash (SSD) link");
  flags->AddDouble("fault-ssd-partial", 0.0,
                   "per-attempt partial-transfer probability on the SSD link");
  flags->AddDouble("fault-ssd-corrupt", 0.0,
                   "per-attempt silent-corruption probability on the SSD "
                   "link (caught by block checksums at promote-from-SSD)");
}

FaultConfig FaultConfigFromFlags(const FlagParser& flags) {
  FaultConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
  config.retry.max_attempts =
      static_cast<int32_t>(flags.GetInt("fault-max-attempts"));
  config.retry.backoff_initial = flags.GetDouble("fault-backoff-s");
  config.pcie.timeout_rate = flags.GetDouble("fault-pcie-timeout");
  config.pcie.stall_rate = flags.GetDouble("fault-pcie-stall");
  config.pcie.partial_rate = flags.GetDouble("fault-pcie-partial");
  config.pcie.corruption_rate = flags.GetDouble("fault-pcie-corrupt");
  config.nic.timeout_rate = flags.GetDouble("fault-nic-timeout");
  config.nic.stall_rate = flags.GetDouble("fault-nic-stall");
  config.nic.partial_rate = flags.GetDouble("fault-nic-partial");
  config.nic.corruption_rate = flags.GetDouble("fault-nic-corrupt");
  config.ssd.timeout_rate = flags.GetDouble("fault-ssd-timeout");
  config.ssd.stall_rate = flags.GetDouble("fault-ssd-stall");
  config.ssd.partial_rate = flags.GetDouble("fault-ssd-partial");
  config.ssd.corruption_rate = flags.GetDouble("fault-ssd-corrupt");
  for (LinkFaultProfile* profile : {&config.pcie, &config.nic, &config.ssd}) {
    profile->timeout_seconds = flags.GetDouble("fault-timeout-s");
    profile->stall_factor = flags.GetDouble("fault-stall-factor");
  }
  return config;
}

}  // namespace pensieve

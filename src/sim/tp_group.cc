#include "src/sim/tp_group.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

TpLinkGroup::TpLinkGroup(int num_workers, double bandwidth_per_dir,
                         double duplex_factor, bool prioritize_h2d) {
  PENSIEVE_CHECK_GT(num_workers, 0);
  links_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    links_.push_back(
        std::make_unique<PcieLink>(bandwidth_per_dir, duplex_factor, prioritize_h2d));
  }
}

double TpLinkGroup::ScheduleHostToDevice(double now, double bytes_per_worker) {
  double done = now;
  for (auto& link : links_) {
    done = std::max(done, link->ScheduleHostToDevice(now, bytes_per_worker));
  }
  return done;
}

double TpLinkGroup::ScheduleDeviceToHost(double now, double bytes_per_worker) {
  double done = now;
  for (auto& link : links_) {
    done = std::max(done, link->ScheduleDeviceToHost(now, bytes_per_worker));
  }
  return done;
}

TpWorkerGroup::TpWorkerGroup(int num_workers, int64_t num_gpu_blocks,
                             int64_t num_cpu_blocks) {
  PENSIEVE_CHECK_GT(num_workers, 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(num_gpu_blocks, num_cpu_blocks));
  }
}

Status TpWorkerGroup::Validate(const CachePlan& plan) const {
  const Worker& w = *workers_.front();
  // Simulate the plan against a copy of the occupancy to catch intra-plan
  // conflicts (free-then-free, allocate-beyond-capacity).
  int64_t gpu_free = w.gpu.num_free();
  int64_t cpu_free = w.cpu.num_free();
  std::vector<int8_t> gpu_delta(static_cast<size_t>(w.gpu.capacity()), 0);
  std::vector<int8_t> cpu_delta(static_cast<size_t>(w.cpu.capacity()), 0);
  for (const CachePlan::Op& op : plan.ops) {
    switch (op.kind) {
      case CachePlan::OpKind::kAllocateGpu:
        if (gpu_free == 0) {
          return Status::ResourceExhausted("plan over-allocates GPU blocks");
        }
        --gpu_free;
        break;
      case CachePlan::OpKind::kAllocateCpu:
        if (cpu_free == 0) {
          return Status::ResourceExhausted("plan over-allocates CPU blocks");
        }
        --cpu_free;
        break;
      case CachePlan::OpKind::kFreeGpu: {
        if (op.block < 0 || op.block >= w.gpu.capacity()) {
          return Status::InvalidArgument("plan frees an out-of-range GPU block");
        }
        int8_t& d = gpu_delta[static_cast<size_t>(op.block)];
        if (!w.gpu.IsAllocated(op.block) || d != 0) {
          return Status::FailedPrecondition("plan frees a non-allocated GPU block");
        }
        d = 1;
        ++gpu_free;
        break;
      }
      case CachePlan::OpKind::kFreeCpu: {
        if (op.block < 0 || op.block >= w.cpu.capacity()) {
          return Status::InvalidArgument("plan frees an out-of-range CPU block");
        }
        int8_t& d = cpu_delta[static_cast<size_t>(op.block)];
        if (!w.cpu.IsAllocated(op.block) || d != 0) {
          return Status::FailedPrecondition("plan frees a non-allocated CPU block");
        }
        d = 1;
        ++cpu_free;
        break;
      }
    }
  }
  return Status::Ok();
}

Status TpWorkerGroup::ApplyToAll(const CachePlan& plan) {
  Status status = Validate(plan);
  if (!status.ok()) {
    return status;
  }
  for (auto& worker : workers_) {
    PENSIEVE_CHECK_GT(plan.step_id, worker->last_step)
        << "cache plans must be applied in order";
    for (const CachePlan::Op& op : plan.ops) {
      switch (op.kind) {
        case CachePlan::OpKind::kAllocateGpu:
          PENSIEVE_CHECK(worker->gpu.Allocate().has_value());
          break;
        case CachePlan::OpKind::kAllocateCpu:
          PENSIEVE_CHECK(worker->cpu.Allocate().has_value());
          break;
        case CachePlan::OpKind::kFreeGpu:
          worker->gpu.Free(op.block);
          break;
        case CachePlan::OpKind::kFreeCpu:
          worker->cpu.Free(op.block);
          break;
      }
    }
    worker->last_step = plan.step_id;
  }
  PENSIEVE_CHECK(ReplicasConsistent())
      << "tensor-parallel replicas diverged after plan " << plan.step_id;
  return Status::Ok();
}

bool TpWorkerGroup::ReplicasConsistent() const {
  const Worker& first = *workers_.front();
  for (size_t i = 1; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    if (w.gpu.num_free() != first.gpu.num_free() ||
        w.cpu.num_free() != first.cpu.num_free() ||
        w.last_step != first.last_step) {
      return false;
    }
    for (BlockId b = 0; b < first.gpu.capacity(); ++b) {
      if (w.gpu.IsAllocated(b) != first.gpu.IsAllocated(b)) {
        return false;
      }
    }
    for (BlockId b = 0; b < first.cpu.capacity(); ++b) {
      if (w.cpu.IsAllocated(b) != first.cpu.IsAllocated(b)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace pensieve

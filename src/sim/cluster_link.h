// Virtual-time inter-replica interconnect model.
//
// Each replica owns a full-duplex NIC (200 Gb/s-class datacenter fabric by
// default); a KV migration from replica A to replica B occupies A's egress
// and B's ingress for bytes/bandwidth seconds after a fixed propagation
// latency, serialized behind earlier transfers on either port. The same
// busy-until bookkeeping as the PCIe model (src/sim/pcie_link.h), lifted to
// a replica-to-replica fabric.

#ifndef PENSIEVE_SRC_SIM_CLUSTER_LINK_H_
#define PENSIEVE_SRC_SIM_CLUSTER_LINK_H_

#include <cstdint>
#include <vector>

namespace pensieve {

struct InterconnectSpec {
  // Effective per-direction NIC bandwidth (bytes/s). 200 Gb/s InfiniBand /
  // Ethernet lands around 25 GB/s of goodput.
  double bandwidth = 25e9;
  // Fixed per-transfer setup + propagation latency (seconds).
  double latency = 50e-6;
};

class ClusterInterconnect {
 public:
  ClusterInterconnect(int num_replicas, const InterconnectSpec& spec);

  // Schedules a transfer of `bytes` from `src` to `dst` starting no earlier
  // than `now`; returns its completion time on the virtual clock.
  double ScheduleTransfer(int src, int dst, double now, double bytes);

  // Port occupancy on the virtual clock. The layer-pipelined KV stream model
  // (src/sim/kv_stream.h) reads these *before* scheduling its chunks to price
  // what an equivalent single blocking transfer would have cost.
  double EgressBusyUntil(int replica) const;
  double IngressBusyUntil(int replica) const;

  const InterconnectSpec& spec() const { return spec_; }

  int64_t num_transfers() const { return num_transfers_; }
  double total_bytes() const { return total_bytes_; }

 private:
  InterconnectSpec spec_;
  // Per-replica port busy-until times on the virtual clock.
  std::vector<double> egress_busy_until_;
  std::vector<double> ingress_busy_until_;
  int64_t num_transfers_ = 0;
  double total_bytes_ = 0.0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_CLUSTER_LINK_H_

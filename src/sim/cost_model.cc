#include "src/sim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace pensieve {

GpuCostModel::GpuCostModel(const ModelConfig& model, const HardwareSpec& hw,
                           QuantMode weight_quant)
    : model_(model), hw_(hw), weight_quant_(weight_quant) {
  PENSIEVE_CHECK_EQ(model.num_gpus, hw.num_gpus);
  effective_flops_ = hw.gpu_flops * hw.num_gpus * (hw.num_gpus > 1 ? hw.tp_efficiency : 1.0);
  effective_hbm_ = hw.hbm_bandwidth * hw.num_gpus * (hw.num_gpus > 1 ? hw.tp_efficiency : 1.0);
  const double weight_bytes_per_value =
      weight_quant == QuantMode::kInt8 ? 1.0
                                       : static_cast<double>(model.bytes_per_value);
  weight_bytes_ = static_cast<double>(model.ApproxParamCount()) * weight_bytes_per_value;
}

double GpuCostModel::WeightReadTime() const { return weight_bytes_ / effective_hbm_; }

double GpuCostModel::LinearTime(int64_t num_tokens) const {
  if (num_tokens <= 0) {
    return 0.0;
  }
  const double flops = model_.NonAttentionFlopsPerToken() * static_cast<double>(num_tokens);
  // Small batches underutilize the GEMM units: utilization ramps as
  // T / (T + T_half), reaching ~half efficiency at T_half tokens.
  const double tokens = static_cast<double>(num_tokens);
  const double utilization =
      tokens / (tokens + hw_.gemm_utilization_half_tokens);
  const double math_time = flops / (effective_flops_ * utilization);
  // Activation traffic is negligible next to weight traffic; the weight
  // read is accounted once per step in StepTime, not per token here.
  return math_time;
}

double GpuCostModel::MarginalLinearTime(int64_t num_tokens) const {
  if (num_tokens <= 0) {
    return 0.0;
  }
  const double flops =
      model_.NonAttentionFlopsPerToken() * static_cast<double>(num_tokens);
  return flops / effective_flops_;
}

double GpuCostModel::AttentionTime(int64_t query_len, int64_t context_len) const {
  if (query_len <= 0) {
    return 0.0;
  }
  PENSIEVE_CHECK_GE(context_len, query_len);
  // Average causal context per query token: the i-th of `query_len` tokens
  // sees (context_len - query_len + i + 1) KV entries.
  const double avg_ctx =
      static_cast<double>(context_len) - static_cast<double>(query_len - 1) / 2.0;
  const double flops =
      model_.AttentionFlopsPerToken(1) * avg_ctx * static_cast<double>(query_len);
  const double math_time = flops / effective_flops_;
  // KV traffic: the kernel streams the context's K and V once per block
  // tile; queries within a tile share the load, so traffic ~ context size.
  const double kv_bytes =
      static_cast<double>(model_.KvBytesPerToken()) * static_cast<double>(context_len);
  const double mem_time = kv_bytes / effective_hbm_;
  return std::max(math_time, mem_time);
}

double GpuCostModel::StepTime(const std::vector<BatchItem>& items) const {
  int64_t total_tokens = 0;
  double attention_time = 0.0;
  for (const BatchItem& item : items) {
    total_tokens += item.query_len;
    attention_time += AttentionTime(item.query_len, item.context_len);
  }
  if (total_tokens == 0) {
    return 0.0;
  }
  const double dense_math = LinearTime(total_tokens);
  // Dense work is bounded below by reading the weights once per step.
  const double dense_time = std::max(dense_math, WeightReadTime());
  const double overhead =
      hw_.step_overhead + hw_.layer_overhead * static_cast<double>(model_.num_layers);
  return dense_time + attention_time + overhead;
}

double GpuCostModel::SwapTime(int64_t num_tokens) const {
  // Each tensor-parallel worker moves its own KV partition over its own
  // PCIe link concurrently, so per-token transfer time uses the per-GPU
  // share of the KV bytes.
  const double bytes =
      static_cast<double>(KvBytesPerToken()) * static_cast<double>(num_tokens);
  return bytes / hw_.pcie_bandwidth;
}

double GpuCostModel::ChunkRecomputeCost(int64_t chunk_size, int64_t context_len) const {
  const double attn = AttentionTime(chunk_size, context_len);
  // Recomputation rides inside a unified batch, so its dense cost is the
  // marginal (fully-utilized) one.
  const double other = MarginalLinearTime(chunk_size) +
                       hw_.layer_overhead * static_cast<double>(model_.num_layers);
  return attn + other;
}

double RestoreStall(double compute_s, double transfer_s, int64_t num_layers,
                    bool pipelined) {
  if (transfer_s <= 0.0) {
    return 0.0;
  }
  if (!pipelined) {
    return transfer_s;
  }
  PENSIEVE_CHECK_GT(num_layers, 0);
  // Layer l's KV must land before layer l's attention runs. With uniform
  // per-layer transfer and compute, the binding constraint is the last
  // layer: its data lands at `transfer_s`, its compute would start at
  // compute_s * (L-1) / L. The first layer additionally waits for its own
  // slice (transfer_s / L).
  const double last_layer_wait =
      transfer_s - compute_s * static_cast<double>(num_layers - 1) /
                       static_cast<double>(num_layers);
  const double first_layer_wait = transfer_s / static_cast<double>(num_layers);
  return std::max(first_layer_wait, std::max(0.0, last_layer_wait));
}

}  // namespace pensieve

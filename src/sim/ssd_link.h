// Virtual-time SSD link model.
//
// Companion of PcieLink for the flash tier: an NVMe-class device with
// asymmetric read/write bandwidth and a fixed per-operation access latency
// (flash translation + queueing floor, microseconds where PCIe transfers are
// dominated by bandwidth). Reads (promote-from-SSD) and writes
// (demote-to-SSD) use independent busy-until times: NVMe devices sustain
// concurrent reads and writes, and the asymmetric bandwidths already fold in
// steady-state interference.

#ifndef PENSIEVE_SRC_SIM_SSD_LINK_H_
#define PENSIEVE_SRC_SIM_SSD_LINK_H_

namespace pensieve {

class SsdLink {
 public:
  SsdLink(double read_bandwidth, double write_bandwidth, double access_latency);

  // Schedules a flash-to-host read starting no earlier than `now`; returns
  // its completion time on the virtual clock.
  double ScheduleRead(double now, double bytes);

  // Schedules a host-to-flash write; returns its completion time.
  double ScheduleWrite(double now, double bytes);

  double read_busy_until() const { return read_busy_until_; }
  double write_busy_until() const { return write_busy_until_; }

  // Aggregate transferred byte counters (for metrics).
  double total_read_bytes() const { return total_read_bytes_; }
  double total_write_bytes() const { return total_write_bytes_; }

 private:
  double read_bandwidth_;
  double write_bandwidth_;
  double access_latency_;
  double read_busy_until_ = 0.0;
  double write_busy_until_ = 0.0;
  double total_read_bytes_ = 0.0;
  double total_write_bytes_ = 0.0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_SSD_LINK_H_

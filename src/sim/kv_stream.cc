#include "src/sim/kv_stream.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace pensieve {

KvStreamResult StreamKvLayers(ClusterInterconnect* net,
                              LinkFaultInjector* faults,
                              const KvStreamPlan& plan) {
  PENSIEVE_CHECK(net != nullptr);
  PENSIEVE_CHECK_GE(plan.bytes, 0.0);
  PENSIEVE_CHECK_GT(plan.num_layers, 0);
  PENSIEVE_CHECK_GE(plan.compute_end, plan.compute_start);

  KvStreamResult result;
  if (plan.bytes <= 0.0) {
    // Nothing on the wire: the "stream" completes with the prefill itself.
    result.done = plan.compute_end;
    result.unpipelined_done = plan.compute_end;
    result.delivered = true;
    return result;
  }

  const InterconnectSpec& spec = net->spec();
  // Price the blocking alternative against the port state *before* this
  // stream occupies it.
  const double unpipelined_start =
      std::max({plan.compute_end, net->EgressBusyUntil(plan.src),
                net->IngressBusyUntil(plan.dst)});
  result.unpipelined_done =
      unpipelined_start + spec.latency + plan.bytes / spec.bandwidth;

  // Coalesce layers into chunks big enough that the per-transfer latency
  // does not dominate: chunk link time >= spec.latency. A zero-latency link
  // streams one chunk per layer.
  int64_t chunks = plan.num_layers;
  if (spec.latency > 0.0) {
    const double link_time = plan.bytes / spec.bandwidth;
    const int64_t fit = static_cast<int64_t>(link_time / spec.latency);
    chunks = std::clamp<int64_t>(fit, 1, plan.num_layers);
  }
  result.chunks_total = chunks;
  result.chunks.reserve(static_cast<size_t>(chunks));

  const double per_chunk = plan.bytes / static_cast<double>(chunks);
  const double span = plan.compute_end - plan.compute_start;
  double prev_done = plan.compute_start;
  for (int64_t c = 0; c < chunks; ++c) {
    KvChunkArrival chunk;
    // The chunk covers layers (c/chunks, (c+1)/chunks] of the forward pass;
    // it is ready when the last of them has computed.
    chunk.ready = plan.compute_start +
                  span * static_cast<double>(c + 1) /
                      static_cast<double>(chunks);
    // Strict send order: never offer chunk c+1 to the link before chunk c
    // delivered. The link's port serialization alone would not guarantee
    // this — injector timeouts and backoff burn time off-link.
    const double send_at = std::max(chunk.ready, prev_done);
    const auto schedule = [&](double start, double bytes) {
      return net->ScheduleTransfer(plan.src, plan.dst, start, bytes);
    };
    LinkTransferOutcome out;
    if (faults != nullptr) {
      out = faults->Transfer(send_at, per_chunk, schedule);
    } else {
      out.done = schedule(send_at, per_chunk);
      out.delivered = true;
    }
    chunk.done = out.done;
    chunk.delivered = out.delivered;
    result.chunks.push_back(chunk);
    result.done = out.done;
    prev_done = out.done;
    if (!out.delivered) {
      // A prefix of layers is useless KV; abandon the stream and let the
      // decode side recompute.
      result.delivered = false;
      return result;
    }
    ++result.chunks_delivered;
    result.bytes_delivered += per_chunk;
  }
  result.delivered = true;
  return result;
}

}  // namespace pensieve

// Analytical GPU execution-cost model.
//
// Produces the step latency of a unified batch on the simulated A100s using
// a roofline formulation: every step pays max(math time, memory time) for
// its non-attention (dense) work plus per-request attention terms whose cost
// grows linearly with context length (the property the eviction policy
// exploits, paper Figure 4).

#ifndef PENSIEVE_SRC_SIM_COST_MODEL_H_
#define PENSIEVE_SRC_SIM_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/model/model_config.h"
#include "src/sim/hardware.h"
#include "src/tensor/packed_matrix.h"

namespace pensieve {

class GpuCostModel {
 public:
  // weight_quant models int8 weight storage: the per-step weight-read floor
  // (the memory-bound decode bound) streams one byte per parameter instead
  // of bytes_per_value. FLOP counts are unchanged — accumulation stays
  // wide — so only the bandwidth term moves, matching the CPU substrate's
  // prepacked int8 microkernels.
  GpuCostModel(const ModelConfig& model, const HardwareSpec& hw,
               QuantMode weight_quant = QuantMode::kFp32);

  const ModelConfig& model() const { return model_; }
  const HardwareSpec& hardware() const { return hw_; }
  QuantMode weight_quant() const { return weight_quant_; }

  // One request's contribution to a batch step: it processes `query_len`
  // input tokens attending to a total context of `context_len` tokens
  // (context includes the query tokens themselves).
  struct BatchItem {
    int64_t query_len = 0;
    int64_t context_len = 0;
  };

  // Latency of one unified batch step (seconds).
  double StepTime(const std::vector<BatchItem>& items) const;

  // Dense (non-attention) time to process `num_tokens` input tokens as a
  // whole step: projections + FFN, with small-batch GEMM underutilization.
  double LinearTime(int64_t num_tokens) const;

  // Marginal dense cost of `num_tokens` extra tokens riding inside an
  // already-large batch (full GEMM utilization). Used for per-chunk
  // recomputation costing: dropped-prefix recompute executes merged into
  // the unified batch, not as its own kernel.
  double MarginalLinearTime(int64_t num_tokens) const;

  // Attention time for one request: `query_len` tokens attending causally
  // within a context of `context_len` (roofline of score/aggregate math vs
  // KV-cache traffic).
  double AttentionTime(int64_t query_len, int64_t context_len) const;

  // Time to read the model weights once (memory-bound floor of any step).
  double WeightReadTime() const;

  // KV bytes per token per GPU (fp16), for swap sizing.
  int64_t KvBytesPerToken() const { return model_.KvBytesPerTokenPerGpu(); }

  // Transfer time of `num_tokens` KV over PCIe at full one-direction speed.
  double SwapTime(int64_t num_tokens) const;

  // --- Eviction-policy profiling hooks (paper §4.3.1) --------------------
  // Cost of recomputing a chunk of `chunk_size` tokens whose last token has
  // context `context_len`: Cost_attention(chunk, l) + Cost_other(chunk).
  double ChunkRecomputeCost(int64_t chunk_size, int64_t context_len) const;

 private:
  ModelConfig model_;
  HardwareSpec hw_;
  QuantMode weight_quant_ = QuantMode::kFp32;
  double effective_flops_;   // across all tensor-parallel GPUs
  double effective_hbm_;     // across all tensor-parallel GPUs
  double weight_bytes_;
};

// Models the stall added to a step when `transfer_s` seconds of swap-in
// traffic must land before the corresponding layers can attend. With
// pipelined layer-by-layer restore (paper §4.3.3) transfers overlap earlier
// layers' compute; without it the step blocks for the whole transfer.
double RestoreStall(double compute_s, double transfer_s, int64_t num_layers,
                    bool pipelined);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_COST_MODEL_H_

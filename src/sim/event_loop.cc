#include "src/sim/event_loop.h"

#include <limits>

namespace pensieve {

const char* SimEventKindName(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kArrival:
      return "arrival";
    case SimEventKind::kReplicaFail:
      return "fail";
    case SimEventKind::kReplicaRecover:
      return "recover";
    case SimEventKind::kHandoffArrival:
      return "handoff";
    case SimEventKind::kHealthProbe:
      return "probe";
    case SimEventKind::kAutoscale:
      return "autoscale";
  }
  return "?";
}

double EventQueue::NextTime() const {
  return heap_.empty() ? std::numeric_limits<double>::infinity()
                       : heap_.top().time;
}

}  // namespace pensieve

// Layer-pipelined KV streaming between replicas (DESIGN.md §13).
//
// When a prefill replica hands a conversation to a decode replica, it does
// not wait for the whole prefill to finish before shipping the KV cache:
// each transformer layer's KV is ready as soon as that layer's forward pass
// completes, so the stream overlaps NIC transfer with the remaining prefill
// compute (DejaVu's KV-streaming design, arXiv 2403.01876). This module
// models that overlap on the virtual clock:
//
//  - Layer l's chunk becomes *ready* at a point linearly interpolated across
//    the prefill step window [compute_start, compute_end] (the per-layer
//    costs are uniform in our cost model, matching RestoreStall's layer
//    pipelining math in src/sim/cost_model.cc).
//  - Chunks are sent strictly in layer order over the fault-injected NIC:
//    chunk l+1 is offered to the link only after chunk l's delivery, so
//    arrivals are monotone even when the injector burns retry/backoff time
//    off-link. The decode side admits the request when the *last* layer
//    lands.
//  - Consecutive layers are coalesced into fewer wire chunks when the
//    per-layer payload would be dwarfed by the per-transfer latency
//    (chunk link time >= NIC latency), so tiny streams never pay
//    num_layers x latency for no overlap win.
//  - Any chunk that exhausts its fault retries fails the whole stream — a
//    KV cache covering a prefix of layers is useless, the decode side
//    degrades to dropped-prefix recompute.
//
// The result also reports `unpipelined_done`: when a single blocking
// transfer of the full payload, issued at prefill completion on a fault-free
// link, would have landed. The difference is the overlap the pipeline
// bought; benches assert it is positive at prefill-heavy scale.

#ifndef PENSIEVE_SRC_SIM_KV_STREAM_H_
#define PENSIEVE_SRC_SIM_KV_STREAM_H_

#include <cstdint>
#include <vector>

#include "src/sim/cluster_link.h"
#include "src/sim/fault_injector.h"

namespace pensieve {

struct KvStreamPlan {
  int src = 0;
  int dst = 0;
  // Total wire bytes (already priced at KvWireBytesPerToken, so --kv-quant
  // compresses the stream).
  double bytes = 0.0;
  // Transformer layers producing KV; one potential chunk per layer.
  int64_t num_layers = 1;
  // The prefill step window over which layers become ready.
  double compute_start = 0.0;
  double compute_end = 0.0;
};

struct KvChunkArrival {
  double ready = 0.0;  // when the producing layers finished computing
  double done = 0.0;   // delivery (or abandonment) time on the wire
  bool delivered = false;
};

struct KvStreamResult {
  // Delivery time of the final chunk when `delivered`; abandonment time of
  // the failed chunk otherwise.
  double done = 0.0;
  bool delivered = false;
  int64_t chunks_total = 0;
  int64_t chunks_delivered = 0;
  double bytes_delivered = 0.0;
  // Completion time of the hypothetical blocking handoff: one fault-free
  // transfer of the full payload issued at compute_end against the port
  // state observed before this stream ran.
  double unpipelined_done = 0.0;
  // Per-chunk arrivals in send order (monotone `done`); tests assert the
  // ordering invariant on this.
  std::vector<KvChunkArrival> chunks;
};

// Streams `plan.bytes` from src to dst over `net`, drawing faults per chunk
// from `faults` (shared with migration traffic so the NIC accounting
// identity spans both). `faults` may be nullptr for a fault-free stream.
KvStreamResult StreamKvLayers(ClusterInterconnect* net,
                              LinkFaultInjector* faults,
                              const KvStreamPlan& plan);

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_KV_STREAM_H_

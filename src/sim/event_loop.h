// Typed discrete-event queue shared by the serving experiment drivers.
//
// Both the single-engine driver and the cluster driver advance virtual time
// by repeatedly asking "what happens next?" — a workload arrival, a replica
// fault, or a replica scheduler step. The first two are explicit events held
// in this queue; replica steps are implicit (each replica reports its own
// next-event time) and always rank *after* queued events on time ties, so
// routers and engines observe the freshest queue state before computing.
//
// Tie-break order at equal times: arrival < fail < recover < (replica step),
// then FIFO by push order. The order is total and deterministic, which is
// what makes replayed experiments reproducible bit for bit.

#ifndef PENSIEVE_SRC_SIM_EVENT_LOOP_H_
#define PENSIEVE_SRC_SIM_EVENT_LOOP_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace pensieve {

// Enumerator values define the tie-break priority at equal times (lower
// pops first).
enum class SimEventKind : int32_t {
  kArrival = 0,        // a conversation turn reaches the front door
  kReplicaFail = 1,    // a replica crashes: KV lost, work re-routed
  kReplicaRecover = 2, // a failed replica rejoins, empty
  // A prefill->decode KV handoff stream finishes: the decode replica can
  // admit the continuation. Ranks after fail/recover so a stream landing at
  // the exact instant its destination dies (or rejoins) observes the final
  // replica state.
  kHandoffArrival = 3,
  // Recurring control-plane timers (elastic replica set, DESIGN.md §14).
  // They rank after every workload/fault event at the same instant so the
  // health monitor and autoscaler observe the settled cluster state.
  kHealthProbe = 4,   // one probe round across the replica set
  kAutoscale = 5,     // one autoscaler evaluation
};

// Number of distinct SimEventKind values (for per-kind bookkeeping).
inline constexpr int32_t kNumSimEventKinds = 6;

const char* SimEventKindName(SimEventKind kind);

struct SimEvent {
  double time = 0.0;
  SimEventKind kind = SimEventKind::kArrival;
  // Payload: arrivals carry (conversation index, turn index); fault events
  // carry the replica id in `id`.
  int64_t id = 0;
  int32_t turn = 0;
  // Assigned by EventQueue::Push; FIFO among equal (time, kind).
  int64_t seq = 0;
};

class EventQueue {
 public:
  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  // Time of the next event, +inf when empty (so callers can min() it
  // against replica next-event times without branching).
  double NextTime() const;

  const SimEvent& Top() const { return heap_.top(); }

  void Push(SimEvent event) {
    event.seq = next_seq_++;
    ++kind_counts_[static_cast<size_t>(event.kind)];
    heap_.push(event);
  }

  SimEvent Pop() {
    SimEvent event = heap_.top();
    heap_.pop();
    --kind_counts_[static_cast<size_t>(event.kind)];
    return event;
  }

  // Pending events of one kind. Recurring timer events (probe/autoscale)
  // use this to decide whether re-arming themselves could still matter: when
  // every remaining event is a timer and all replicas are quiescent, the
  // timer lets itself lapse so the run can terminate.
  int64_t PendingOfKind(SimEventKind kind) const {
    return kind_counts_[static_cast<size_t>(kind)];
  }

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      if (a.kind != b.kind) {
        return static_cast<int32_t>(a.kind) > static_cast<int32_t>(b.kind);
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  int64_t next_seq_ = 0;
  std::array<int64_t, kNumSimEventKinds> kind_counts_{};
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_EVENT_LOOP_H_

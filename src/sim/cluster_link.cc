#include "src/sim/cluster_link.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

ClusterInterconnect::ClusterInterconnect(int num_replicas,
                                         const InterconnectSpec& spec)
    : spec_(spec),
      egress_busy_until_(static_cast<size_t>(num_replicas), 0.0),
      ingress_busy_until_(static_cast<size_t>(num_replicas), 0.0) {
  PENSIEVE_CHECK_GT(num_replicas, 0);
  PENSIEVE_CHECK_GT(spec.bandwidth, 0.0);
}

double ClusterInterconnect::EgressBusyUntil(int replica) const {
  PENSIEVE_CHECK_LT(static_cast<size_t>(replica), egress_busy_until_.size());
  return egress_busy_until_[static_cast<size_t>(replica)];
}

double ClusterInterconnect::IngressBusyUntil(int replica) const {
  PENSIEVE_CHECK_LT(static_cast<size_t>(replica), ingress_busy_until_.size());
  return ingress_busy_until_[static_cast<size_t>(replica)];
}

double ClusterInterconnect::ScheduleTransfer(int src, int dst, double now,
                                             double bytes) {
  PENSIEVE_CHECK_LT(static_cast<size_t>(src), egress_busy_until_.size());
  PENSIEVE_CHECK_LT(static_cast<size_t>(dst), ingress_busy_until_.size());
  PENSIEVE_CHECK(src != dst);
  PENSIEVE_CHECK_GE(bytes, 0.0);
  const double start = std::max(
      {now, egress_busy_until_[static_cast<size_t>(src)],
       ingress_busy_until_[static_cast<size_t>(dst)]});
  const double done = start + spec_.latency + bytes / spec_.bandwidth;
  egress_busy_until_[static_cast<size_t>(src)] = done;
  ingress_busy_until_[static_cast<size_t>(dst)] = done;
  ++num_transfers_;
  total_bytes_ += bytes;
  return done;
}

}  // namespace pensieve

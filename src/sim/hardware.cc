#include "src/sim/hardware.h"

namespace pensieve {

HardwareSpec A100Spec(int num_gpus) {
  HardwareSpec spec;
  spec.num_gpus = num_gpus;
  return spec;
}

}  // namespace pensieve

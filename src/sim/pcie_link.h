// Virtual-time PCIe link model.
//
// Tracks per-direction busy-until times on the virtual clock and applies the
// duplex-interference penalty when both directions overlap. Also implements
// the paper's §5 optimization: when enabled, device-to-host eviction traffic
// waits until no host-to-device (swap-in) transfer is in flight, trading
// duplex bandwidth for undisturbed restores.

#ifndef PENSIEVE_SRC_SIM_PCIE_LINK_H_
#define PENSIEVE_SRC_SIM_PCIE_LINK_H_

#include <cstdint>

namespace pensieve {

class PcieLink {
 public:
  PcieLink(double bandwidth_per_dir, double duplex_factor, bool prioritize_h2d);

  // Schedules a host-to-device (swap-in) transfer starting no earlier than
  // `now`; returns its completion time on the virtual clock.
  double ScheduleHostToDevice(double now, double bytes);

  // Schedules a device-to-host (swap-out / eviction) transfer; returns its
  // completion time. With prioritize_h2d, it queues behind in-flight
  // host-to-device traffic.
  double ScheduleDeviceToHost(double now, double bytes);

  double h2d_busy_until() const { return h2d_busy_until_; }
  double d2h_busy_until() const { return d2h_busy_until_; }

  // Aggregate transferred byte counters (for metrics).
  double total_h2d_bytes() const { return total_h2d_bytes_; }
  double total_d2h_bytes() const { return total_d2h_bytes_; }

 private:
  double EffectiveBandwidth(double start, double other_busy_until) const;

  double bandwidth_;
  double duplex_factor_;
  bool prioritize_h2d_;
  double h2d_busy_until_ = 0.0;
  double d2h_busy_until_ = 0.0;
  double total_h2d_bytes_ = 0.0;
  double total_d2h_bytes_ = 0.0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_PCIE_LINK_H_

#include "src/sim/ssd_link.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

SsdLink::SsdLink(double read_bandwidth, double write_bandwidth, double access_latency)
    : read_bandwidth_(read_bandwidth), write_bandwidth_(write_bandwidth),
      access_latency_(access_latency) {
  PENSIEVE_CHECK_GT(read_bandwidth_, 0.0);
  PENSIEVE_CHECK_GT(write_bandwidth_, 0.0);
  PENSIEVE_CHECK_GE(access_latency_, 0.0);
}

double SsdLink::ScheduleRead(double now, double bytes) {
  PENSIEVE_CHECK_GE(bytes, 0.0);
  const double start = std::max(now, read_busy_until_);
  read_busy_until_ = start + access_latency_ + bytes / read_bandwidth_;
  total_read_bytes_ += bytes;
  return read_busy_until_;
}

double SsdLink::ScheduleWrite(double now, double bytes) {
  PENSIEVE_CHECK_GE(bytes, 0.0);
  const double start = std::max(now, write_busy_until_);
  write_busy_until_ = start + access_latency_ + bytes / write_bandwidth_;
  total_write_bytes_ += bytes;
  return write_busy_until_;
}

}  // namespace pensieve

#include "src/sim/pcie_link.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pensieve {

PcieLink::PcieLink(double bandwidth_per_dir, double duplex_factor, bool prioritize_h2d)
    : bandwidth_(bandwidth_per_dir), duplex_factor_(duplex_factor),
      prioritize_h2d_(prioritize_h2d) {
  PENSIEVE_CHECK_GT(bandwidth_, 0.0);
  PENSIEVE_CHECK_GT(duplex_factor_, 0.0);
  PENSIEVE_CHECK_LE(duplex_factor_, 1.0);
}

double PcieLink::EffectiveBandwidth(double start, double other_busy_until) const {
  // If the other direction is still transferring when we start, both suffer
  // the duplex penalty. (We charge the penalty to the new transfer only —
  // a coarse but conservative approximation.)
  return other_busy_until > start ? bandwidth_ * duplex_factor_ : bandwidth_;
}

double PcieLink::ScheduleHostToDevice(double now, double bytes) {
  PENSIEVE_CHECK_GE(bytes, 0.0);
  const double start = std::max(now, h2d_busy_until_);
  const double bw = EffectiveBandwidth(start, d2h_busy_until_);
  h2d_busy_until_ = start + bytes / bw;
  total_h2d_bytes_ += bytes;
  return h2d_busy_until_;
}

double PcieLink::ScheduleDeviceToHost(double now, double bytes) {
  PENSIEVE_CHECK_GE(bytes, 0.0);
  double start = std::max(now, d2h_busy_until_);
  if (prioritize_h2d_) {
    // Paper §5: eviction copies wait for in-flight swap-ins to finish so
    // restores never see the duplex penalty.
    start = std::max(start, h2d_busy_until_);
  }
  const double bw = prioritize_h2d_ ? bandwidth_ : EffectiveBandwidth(start, h2d_busy_until_);
  d2h_busy_until_ = start + bytes / bw;
  total_d2h_bytes_ += bytes;
  return d2h_busy_until_;
}

}  // namespace pensieve

// Monotonic virtual clock for the discrete-event serving simulation.

#ifndef PENSIEVE_SRC_SIM_VIRTUAL_CLOCK_H_
#define PENSIEVE_SRC_SIM_VIRTUAL_CLOCK_H_

#include "src/common/logging.h"

namespace pensieve {

class VirtualClock {
 public:
  double now() const { return now_; }

  void Advance(double seconds) {
    PENSIEVE_CHECK_GE(seconds, 0.0);
    now_ += seconds;
  }

  void AdvanceTo(double t) {
    PENSIEVE_CHECK_GE(t, now_);
    now_ = t;
  }

 private:
  double now_ = 0.0;
};

}  // namespace pensieve

#endif  // PENSIEVE_SRC_SIM_VIRTUAL_CLOCK_H_

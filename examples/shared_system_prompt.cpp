// Shared system prompt (paper footnote 3): a chatbot deployment prepends
// the same system prompt to every conversation. Pensieve computes its KV
// state once, pins it in the cache, and every conversation's paged block
// table simply points at the shared blocks — zero extra memory or compute
// per user.
//
//   ./build/examples/shared_system_prompt

#include <cstdio>
#include <vector>

#include "src/core/pensieve.h"

int main() {
  pensieve::StatefulServerConfig config;
  config.model = pensieve::TinyOptConfig();
  config.block_size = 8;
  config.num_gpu_blocks = 96;
  config.num_cpu_blocks = 96;
  pensieve::StatefulLlmServer server(config);

  // A 48-token "system prompt" (6 chunks, fully shareable).
  std::vector<int32_t> system_prompt;
  for (int i = 0; i < 48; ++i) {
    system_prompt.push_back(pensieve::SyntheticToken(/*conv=*/0, i, 128));
  }
  auto prefix = server.RegisterSharedPrefix(system_prompt);
  if (!prefix.ok()) {
    std::printf("error: %s\n", prefix.status().ToString().c_str());
    return 1;
  }
  const int64_t blocks_for_prefix = server.cache().gpu_allocator().num_allocated();
  std::printf("registered system prompt: %zu tokens, %ld shared, %ld GPU blocks\n",
              system_prompt.size(),
              static_cast<long>(server.SharedPrefixLen(*prefix)),
              static_cast<long>(blocks_for_prefix));

  // Three users chat concurrently; each attends to the one pinned copy.
  for (int64_t user = 1; user <= 3; ++user) {
    (void)server.StartConversationWithPrefix(user, *prefix);
    std::vector<int32_t> prompt;
    for (int i = 0; i < 6; ++i) {
      prompt.push_back(pensieve::SyntheticToken(user, 1000 + i, 128));
    }
    auto reply = server.Chat(user, prompt, 5);
    if (!reply.ok()) {
      std::printf("user %ld error: %s\n", user, reply.status().ToString().c_str());
      return 1;
    }
    std::printf("user %ld reply:", user);
    for (int32_t t : reply.value()) {
      std::printf(" %d", t);
    }
    std::printf("  (own KV tokens: %ld)\n",
                static_cast<long>(server.cache().Find(user)->kv_len()));
  }

  const int64_t total_blocks = server.cache().gpu_allocator().num_allocated();
  std::printf("\nGPU blocks: %ld total; without sharing each user would add %ld "
              "more for the prompt\n",
              static_cast<long>(total_blocks), static_cast<long>(blocks_for_prefix));

  for (int64_t user = 1; user <= 3; ++user) {
    server.EndConversation(user);
  }
  (void)server.UnregisterSharedPrefix(*prefix);
  std::printf("all conversations ended, prefix unregistered; blocks in use: %ld\n",
              static_cast<long>(server.cache().gpu_allocator().num_allocated()));
  return 0;
}

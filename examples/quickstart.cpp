// Quickstart: embed Pensieve's stateful serving API.
//
// Builds a tiny randomly-initialized model (weights don't matter for the
// serving mechanics), runs a three-turn conversation, and shows that only
// the new prompt tokens are processed on each follow-up turn while the
// cached context is reused — including across a forced eviction to the CPU
// tier.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "src/core/pensieve.h"

namespace {

void PrintCacheState(const pensieve::StatefulLlmServer& server, int64_t conv) {
  const pensieve::ContextState* state = server.cache().Find(conv);
  if (state == nullptr) {
    std::printf("  cache: <empty>\n");
    return;
  }
  std::printf("  cache: %ld KV tokens (%ld on GPU, %ld CPU-only, %ld dropped) in "
              "%ld chunks\n",
              static_cast<long>(state->kv_len()),
              static_cast<long>(state->TokensOnGpu()),
              static_cast<long>(state->TokensCpuOnly()),
              static_cast<long>(state->TokensDropped()),
              static_cast<long>(state->num_chunks()));
}

void PrintTokens(const char* label, const std::vector<int32_t>& tokens) {
  std::printf("  %s:", label);
  for (int32_t t : tokens) {
    std::printf(" %d", t);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // 1. Configure a server around a model. Tiny presets run real numerics on
  //    the CPU; the same cache/scheduler machinery scales to the paper's
  //    13B-70B models on the simulated A100s (see serving_comparison).
  pensieve::StatefulServerConfig config;
  config.model = pensieve::TinyLlamaConfig();  // RMSNorm + RoPE + GQA
  config.block_size = 8;                       // KV chunk size
  config.num_gpu_blocks = 64;
  config.num_cpu_blocks = 128;
  pensieve::StatefulLlmServer server(config);

  const int64_t conversation = 1;

  // 2. Turn 1: the full prompt is processed (prefill) and the response is
  //    generated token by token. The KV state stays cached afterwards.
  std::printf("turn 1: prompt of 12 tokens\n");
  std::vector<int32_t> prompt1;
  for (int i = 0; i < 12; ++i) {
    prompt1.push_back(pensieve::SyntheticToken(conversation, i, 128));
  }
  auto reply1 = server.Chat(conversation, prompt1, /*max_new_tokens=*/6);
  if (!reply1.ok()) {
    std::printf("error: %s\n", reply1.status().ToString().c_str());
    return 1;
  }
  PrintTokens("reply", reply1.value());
  PrintCacheState(server, conversation);

  // 3. Turn 2: only the 5 new prompt tokens are processed; the 17 cached
  //    context tokens are reused from the GPU.
  std::printf("turn 2: follow-up prompt of 5 tokens (history reused)\n");
  std::vector<int32_t> prompt2 = {7, 21, 42, 63, 99};
  auto reply2 = server.Chat(conversation, prompt2, /*max_new_tokens=*/6);
  PrintTokens("reply", reply2.value());
  PrintCacheState(server, conversation);

  // 4. Simulate memory pressure: push the whole conversation to the CPU
  //    tier (this is what ahead-of-time swapping does in the background).
  //    The next turn transparently swaps it back in.
  std::printf("turn 3: after forcing the conversation to the CPU tier\n");
  (void)server.SwapOutConversation(conversation);
  PrintCacheState(server, conversation);
  std::vector<int32_t> prompt3 = {1, 2, 3};
  auto reply3 = server.Chat(conversation, prompt3, /*max_new_tokens=*/6);
  PrintTokens("reply", reply3.value());
  PrintCacheState(server, conversation);

  // 5. Done with the conversation: release its cache.
  server.EndConversation(conversation);
  std::printf("conversation ended; GPU blocks in use: %ld\n",
              static_cast<long>(server.cache().gpu_allocator().num_allocated()));
  return 0;
}

// Multi-turn chatbot under cache pressure — the paper's motivating workload
// (§3.1) on the real numeric server.
//
// Several users hold long conversations against a deliberately small GPU
// tier. The example prints, per turn, where the context came from (GPU hits,
// CPU swap-ins, dropped-prefix recomputation) and verifies at the end that
// one conversation's replies are identical to a pressure-free rerun —
// evictions never change outputs, only costs.
//
//   ./build/examples/multi_turn_chatbot

#include <cstdio>
#include <vector>

#include "src/core/pensieve.h"

namespace {

struct TurnPlan {
  int64_t user;
  int64_t prompt_len;
};

std::vector<int32_t> PromptFor(int64_t user, int64_t turn, int64_t len) {
  std::vector<int32_t> prompt;
  for (int64_t i = 0; i < len; ++i) {
    prompt.push_back(pensieve::SyntheticToken(user * 1000 + turn, i, 128));
  }
  return prompt;
}

}  // namespace

int main() {
  pensieve::StatefulServerConfig config;
  config.model = pensieve::TinyOptConfig();
  config.block_size = 8;
  config.num_gpu_blocks = 12;   // 96 GPU token slots: pressure!
  config.num_cpu_blocks = 10;   // 80 CPU slots: drops under pressure too
  pensieve::StatefulLlmServer server(config);

  // Interleaved turns from three users, as a serving system would see them.
  const std::vector<TurnPlan> schedule = {
      {1, 16}, {2, 12}, {3, 20}, {1, 6}, {3, 8},
      {2, 10}, {1, 8},  {2, 6},  {3, 6}, {1, 4},
  };
  std::vector<int64_t> turn_count(4, 0);
  std::vector<std::vector<int32_t>> user1_replies;

  std::printf("%-5s %-5s %-8s %-9s %-9s %-9s %-9s\n", "user", "turn", "prompt",
              "kv_total", "gpu", "cpu", "dropped");
  for (const TurnPlan& plan : schedule) {
    const int64_t turn = turn_count[static_cast<size_t>(plan.user)]++;
    // Residency *before* the turn shows what the request will find.
    const pensieve::ContextState* state = server.cache().Find(plan.user);
    const int64_t gpu = state != nullptr ? state->TokensOnGpu() : 0;
    const int64_t cpu = state != nullptr ? state->TokensCpuOnly() : 0;
    const int64_t dropped = state != nullptr ? state->TokensDropped() : 0;
    const int64_t total = state != nullptr ? state->kv_len() : 0;
    std::printf("%-5ld %-5ld %-8ld %-9ld %-9ld %-9ld %-9ld\n", plan.user, turn,
                plan.prompt_len, total, gpu, cpu, dropped);

    auto reply =
        server.Chat(plan.user, PromptFor(plan.user, turn, plan.prompt_len), 5);
    if (!reply.ok()) {
      std::printf("turn failed: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    if (plan.user == 1) {
      user1_replies.push_back(reply.value());
    }
  }

  // Replay user 1's conversation on a pressure-free server: outputs must be
  // identical — eviction affects performance, never results.
  pensieve::StatefulServerConfig roomy = config;
  roomy.num_gpu_blocks = 256;
  roomy.num_cpu_blocks = 256;
  pensieve::StatefulLlmServer reference(roomy);
  const std::vector<int64_t> user1_lens = {16, 6, 8, 4};
  bool all_match = true;
  for (size_t turn = 0; turn < user1_lens.size(); ++turn) {
    auto reply = reference.Chat(1, PromptFor(1, static_cast<int64_t>(turn),
                                             user1_lens[turn]),
                                5);
    all_match = all_match && reply.ok() && reply.value() == user1_replies[turn];
  }
  std::printf("\nuser 1 replies identical to pressure-free rerun: %s\n",
              all_match ? "yes" : "NO (bug!)");
  return all_match ? 0 : 1;
}

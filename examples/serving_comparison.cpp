// Serving-system comparison on the simulated A100: Pensieve vs vLLM vs
// TensorRT-LLM serving OPT-13B on a ShareGPT-like multi-turn workload — a
// pocket edition of the paper's Figure 10 experiment.
//
//   ./build/examples/serving_comparison [conversation_rate]

#include <cstdio>
#include <cstdlib>

#include "src/core/pensieve.h"

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 1.0;

  // The paper's single-GPU setup: OPT-13B, 40 GB of KV cache, 60 s mean
  // user think time, Poisson conversation arrivals.
  const pensieve::GpuCostModel cost_model(pensieve::Opt13BConfig(),
                                          pensieve::A100Spec(1));
  pensieve::TraceOptions trace_options;
  trace_options.num_conversations = 150;
  trace_options.conversation_rate = rate;
  trace_options.mean_think_time = 60.0;
  pensieve::WorkloadTrace trace(pensieve::ShareGptProfile(), trace_options);

  std::printf("OPT-13B on 1 simulated A100, %ld conversations at %.2f conv/s "
              "(~%.1f req/s offered)\n\n",
              static_cast<long>(trace_options.num_conversations), rate,
              rate * 5.56);
  std::printf("%-20s %-13s %-15s %-15s %-12s %-14s\n", "system", "tput(req/s)",
              "p90_lat(ms/tok)", "mean_lat(ms/tok)", "hit_rate",
              "recomp_tokens");

  for (pensieve::SystemKind kind :
       {pensieve::SystemKind::kPensieve, pensieve::SystemKind::kPensieveGpuOnly,
        pensieve::SystemKind::kVllm, pensieve::SystemKind::kTensorRtLlm}) {
    auto engine = pensieve::MakeEngine(kind, cost_model);
    pensieve::ServingSummary s =
        pensieve::RunServingExperiment(engine.get(), trace);
    std::printf("%-20s %-13.3f %-15.1f %-15.1f %-12.3f %-14ld\n",
                s.engine_name.c_str(), s.throughput_rps,
                s.p90_normalized_latency * 1e3, s.mean_normalized_latency * 1e3,
                s.engine_stats.CacheHitRate(),
                static_cast<long>(s.engine_stats.recomputed_history_tokens));
  }
  std::printf("\nExpected ordering (paper Figure 10): Pensieve wins by skipping "
              "history recomputation;\nTensorRT-LLM's fused kernels beat vLLM "
              "but still recompute everything.\n");
  return 0;
}

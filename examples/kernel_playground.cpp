// Kernel playground: drive the multi-token paged attention kernel directly.
//
// Shows the three situations the kernel unifies (paper §4.4):
//   1. decode        — one query token attending to a long paged context;
//   2. prefill       — many query tokens with fused causal masking;
//   3. dropped prefix— two sub-requests sharing one block table (the §4.3.4
//                      recomputation trick), batched together with 1 and 2.
//
//   ./build/examples/kernel_playground

#include <cstdio>
#include <vector>

#include "src/core/pensieve.h"

namespace {

void FillTokens(pensieve::KvPool& pool, const std::vector<pensieve::BlockId>& table,
                int64_t count, uint64_t seed) {
  pensieve::Tensor k({pool.num_kv_heads(), pool.head_dim()});
  pensieve::Tensor v({pool.num_kv_heads(), pool.head_dim()});
  for (int64_t pos = 0; pos < count; ++pos) {
    pensieve::FillNormal(k, seed + 2 * static_cast<uint64_t>(pos), 1.0f);
    pensieve::FillNormal(v, seed + 2 * static_cast<uint64_t>(pos) + 1, 1.0f);
    pool.WriteToken(table[static_cast<size_t>(pos / pool.block_size())], 0,
                    pos % pool.block_size(), k.data(), v.data());
  }
}

}  // namespace

int main() {
  constexpr int64_t kBlockSize = 16;
  constexpr int64_t kNumHeads = 4;
  constexpr int64_t kNumKvHeads = 2;  // GQA group size 2
  constexpr int64_t kHeadDim = 32;
  pensieve::KvPool pool(/*num_blocks=*/32, kBlockSize, /*num_layers=*/1,
                        kNumKvHeads, kHeadDim);

  // Request A (decode): context of 40 tokens scattered across blocks
  // {11, 3, 27}; one new query token.
  std::vector<pensieve::BlockId> table_a = {11, 3, 27};
  FillTokens(pool, table_a, 40, /*seed=*/100);

  // Request B (prefill): 10-token prompt, context = itself, blocks {5, 19}.
  std::vector<pensieve::BlockId> table_b = {5, 19};
  FillTokens(pool, table_b, 10, /*seed=*/200);

  // Request C (dropped prefix): 48-token context in blocks {8, 1, 30};
  // the first 16 tokens were dropped and are being recomputed, the last 8
  // are the new prompt, the 24 in between are cached.
  std::vector<pensieve::BlockId> table_c = {8, 1, 30};
  FillTokens(pool, table_c, 48, /*seed=*/300);

  // One unified batch: 1 + 10 + (16 + 8) = 35 query rows.
  const int64_t total_rows = 1 + 10 + 24;
  pensieve::Tensor query({total_rows, kNumHeads, kHeadDim});
  pensieve::FillNormal(query, 42, 1.0f);
  pensieve::Tensor out({total_rows, kNumHeads, kHeadDim});

  std::vector<pensieve::AttentionSubRequest> subs = {
      // A: single-token decode — PagedAttention is this special case.
      {0, 1, 40, &table_a},
      // B: plain prefill with causal masking.
      {1, 10, 10, &table_b},
      // C, sub-request 1: recomputed dropped prefix attends to itself.
      {11, 16, 16, &table_c},
      // C, sub-request 2: new prompt attends to the entire 48-token context.
      {27, 8, 48, &table_c},
  };
  pensieve::MultiTokenPagedAttention(pool, 0, query, subs, /*scale=*/0.176f, &out);

  // Validate against the materialized-scores reference.
  pensieve::Tensor expected({total_rows, kNumHeads, kHeadDim});
  pensieve::NaiveMaskedAttention(pool, 0, query, subs, 0.176f, &expected);
  const float diff = pensieve::MaxAbsDiff(out, expected);

  std::printf("unified batch: %ld query rows across 4 sub-requests "
              "(decode + prefill + split recompute)\n",
              static_cast<long>(total_rows));
  std::printf("max |kernel - reference| = %.2e (%s)\n", diff,
              diff < 1e-3f ? "OK" : "MISMATCH");
  std::printf("sample outputs: A[0][0]=%.4f  B[last][0]=%.4f  C[prompt0][0]=%.4f\n",
              out.at({0, 0, 0}), out.at({10, 0, 0}), out.at({27, 0, 0}));
  return diff < 1e-3f ? 0 : 1;
}

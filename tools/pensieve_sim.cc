// pensieve_sim — command-line serving-experiment runner.
//
// Runs one serving experiment on the simulated A100 testbed and prints the
// summary; optionally dumps per-request outcomes and per-step traces as CSV
// for plotting.
//
// Examples:
//   pensieve_sim --model=llama2-13b --dataset=sharegpt --system=pensieve
//                --rate=1.0 --conversations=600 --think=60
//   pensieve_sim --model=opt-66b --system=vllm --rate=0.4
//                --outcomes_csv=/tmp/outcomes.csv --steps_csv=/tmp/steps.csv

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>

#include "src/common/flags.h"
#include "src/common/thread_pool.h"
#include "src/core/pensieve.h"
#include "src/serving/telemetry.h"
#include "src/sim/fault_injector.h"
#include "src/workload/trace_io.h"

namespace pensieve {
namespace {

// Parses a sick-window list of the form "ID@T1:T2[,ID@T1:T2...]" (replica
// id, window begin/end in virtual seconds) into SickWindow entries.
bool ParseSickList(const std::string& spec, std::vector<SickWindow>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(pos, comma - pos);
    const size_t at = item.find('@');
    const size_t colon = item.find(':', at == std::string::npos ? 0 : at + 1);
    if (at == std::string::npos || at == 0 || colon == std::string::npos ||
        colon <= at + 1 || colon + 1 >= item.size()) {
      return false;
    }
    SickWindow window;
    try {
      window.replica_id = static_cast<int32_t>(std::stol(item.substr(0, at)));
      window.begin = std::stod(item.substr(at + 1, colon - at - 1));
      window.end = std::stod(item.substr(colon + 1));
    } catch (...) {
      return false;
    }
    if (window.replica_id < 0 || window.begin < 0.0 ||
        window.end <= window.begin) {
      return false;
    }
    out->push_back(window);
    pos = comma + 1;
  }
  return true;
}

// Parses a fault list of the form "ID@T[,ID@T...]" (replica id, virtual
// time in seconds) into ReplicaFault events.
bool ParseFaultList(const std::string& spec, bool recover,
                    std::vector<ReplicaFault>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(pos, comma - pos);
    const size_t at = item.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= item.size()) {
      return false;
    }
    ReplicaFault fault;
    fault.recover = recover;
    try {
      fault.replica_id = static_cast<int32_t>(std::stol(item.substr(0, at)));
      fault.time = std::stod(item.substr(at + 1));
    } catch (...) {
      return false;
    }
    if (fault.replica_id < 0 || fault.time < 0.0) {
      return false;
    }
    out->push_back(fault);
    pos = comma + 1;
  }
  return true;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("model", "opt-13b",
                  "model preset: opt-13b, opt-66b, llama2-13b, llama2-70b");
  flags.AddString("dataset", "sharegpt", "workload profile: sharegpt or ultrachat");
  flags.AddString("system", "pensieve",
                  "serving system: pensieve, pensieve-gpu, vllm, tensorrt-llm");
  flags.AddString("policy", "retention",
                  "eviction policy: retention, lru, conversation-lru, cost-only");
  flags.AddDouble("rate", 1.0, "conversation arrival rate (conversations/s)");
  flags.AddInt("conversations", 600, "number of conversations in the trace");
  flags.AddDouble("think", 60.0, "mean user think time (s)");
  flags.AddDouble("cache_scale", 1.0,
                  "scales both cache tiers relative to the paper's 40 GB setup");
  flags.AddDouble("cpu-scale", 1.0,
                  "extra multiplier on the CPU tier only (on top of "
                  "cache_scale); < 1 forces traffic into the flash tier");
  flags.AddDouble("ssd-capacity", 0.0,
                  "flash (SSD) tier capacity in GiB of KV data behind the CPU "
                  "tier; 0 disables the tier (bit-identical to the two-tier "
                  "build). Full pensieve system only; not scaled by "
                  "cache_scale");
  flags.AddString("ssd-algo", "lru",
                  "flash-tier eviction/indexing algorithm: lru, fifo, s3fifo, "
                  "sieve");
  flags.AddInt("ssd-segment-blocks", 64,
               "blocks per append-only flash log segment (GC granularity)");
  flags.AddInt("prefix-templates", 0,
               "number of shared prompt templates; conversation i opens with "
               "template (i mod N) prepended to its first prompt (0 = none)");
  flags.AddInt("prefix-len", 0,
               "tokens per shared prompt template (ignored unless "
               "--prefix-templates > 0)");
  flags.AddBool("prefix-share", true,
                "cross-conversation shared-prefix dedup (Pensieve variants): "
                "conversations opening with the same template attach "
                "refcounted views over the first conversation's KV blocks "
                "instead of prefilling; off = every conversation prefills its "
                "own copy");
  flags.AddInt("seed", 42, "workload seed");
  flags.AddInt("replicas", 1,
               "number of serving replicas; > 1 runs the cluster layer");
  flags.AddString("router", "session-affinity",
                  "cluster routing policy: round-robin, least-loaded, "
                  "session-affinity");
  flags.AddInt("overload_tokens", 8192,
               "affinity failover: absolute outstanding-token floor before a "
               "home replica counts as overloaded");
  flags.AddDouble("overload_factor", 2.0,
                  "affinity failover: overloaded when outstanding tokens also "
                  "exceed this multiple of the cluster mean");
  flags.AddString("disagg", "off",
                  "prefill/decode disaggregation (DESIGN.md §13): on splits "
                  "the cluster into prefill- and decode-role replicas and "
                  "streams each prefill's KV layer-by-layer over the NIC into "
                  "the decode replica; off (default) is bit-identical to the "
                  "colocated cluster");
  flags.AddInt("prefill-replicas", 1,
               "replicas [0, N) serve prefill when --disagg=on (clamped to "
               "leave at least one decode replica)");
  flags.AddInt("disagg-min-prefill", 64,
               "minimum pending prefill tokens (prompt + uncached history) "
               "for a turn to be handed to the prefill pool");
  flags.AddString("health-probe", "off",
                  "active health probing (DESIGN.md §14): on runs a seeded "
                  "probe loop over every active replica and quarantines "
                  "replicas that fail consecutive probes — routers stop "
                  "dispatching to them and their conversations drain to "
                  "healthy peers; off is bit-identical to the unprobed "
                  "cluster");
  flags.AddDouble("probe-interval", 1.0,
                  "virtual seconds between health-probe rounds");
  flags.AddDouble("probe-timeout-ms", 50.0,
                  "probe round-trips slower than this count as failed");
  flags.AddInt("probe-quarantine-after", 4,
               "consecutive probe failures before quarantine (a replica "
               "turns suspect at half this count)");
  flags.AddInt("probe-healthy-after", 3,
               "consecutive probe successes a quarantined replica needs to "
               "rejoin the dispatch set");
  flags.AddDouble("probe-loss", 0.0,
                  "ambient probe-loss probability on the probe link "
                  "(independent seeded stream; models a flaky control plane)");
  flags.AddString("sick-replica", "",
                  "force probes of replica ID to fail during [T1, T2): "
                  "ID@T1:T2[,ID@T1:T2...]; models a degraded replica that "
                  "probing can catch before it hard-fails");
  flags.AddString("autoscale", "off",
                  "queue/latency-driven autoscaling (DESIGN.md §14): on "
                  "starts --min-replicas active out of --replicas slots and "
                  "grows/shrinks the active set mid-run; retiring replicas "
                  "drain before destruction. off is bit-identical to the "
                  "fixed-size cluster");
  flags.AddInt("min-replicas", 1,
               "autoscaling floor: active replicas never drop below this");
  flags.AddInt("max-replicas", 0,
               "autoscaling ceiling (0 = --replicas); must not exceed "
               "--replicas, which sizes the slot vector");
  flags.AddDouble("scale-interval", 2.0,
                  "virtual seconds between autoscaler evaluations");
  flags.AddDouble("scale-cooldown", 10.0,
                  "minimum virtual seconds between two scale actions");
  flags.AddInt("scale-up-tokens", 4096,
               "grow when mean outstanding weighted tokens per active "
               "replica exceeds this");
  flags.AddInt("scale-down-tokens", 512,
               "shrink when mean outstanding weighted tokens per active "
               "replica falls below this (and the latency signal is calm)");
  flags.AddDouble("scale-up-p99-ms", 0.0,
                  "also grow when the p99 normalized latency (ms/token) of "
                  "recently finished requests exceeds this (0 = queue-depth "
                  "signal only)");
  flags.AddString("peer-spill", "off",
                  "cross-replica CPU-tier spill (DESIGN.md §14): on offers "
                  "an overloaded replica's CPU-tier evictions to a peer with "
                  "idle CPU budget over the NIC instead of dropping them; "
                  "off is bit-identical to the unshared tiers");
  flags.AddString("fail-replica", "",
                  "kill replica ID at virtual time T: ID@T[,ID@T...]; its KV "
                  "is lost and its requests re-route to surviving replicas");
  flags.AddString("recover-replica", "",
                  "bring replica ID back (empty) at virtual time T: "
                  "ID@T[,ID@T...]");
  flags.AddBool("split_scheduling", false,
                "disable unified batching (Figure 13 ablation)");
  flags.AddString("trace_csv", "",
                  "replay conversations from this CSV (see src/workload/trace_io.h) "
                  "instead of synthesizing them");
  flags.AddString("outcomes_csv", "", "write per-request outcomes CSV here");
  flags.AddString("steps_csv", "", "write per-step trace CSV here");
  flags.AddInt("threads", 0,
               "worker threads for the CPU kernels/GEMMs (default: "
               "PENSIEVE_THREADS env var, else hardware concurrency); results "
               "are bit-identical for every value");
  flags.AddString("weight-quant", "fp32",
                  "weight storage: fp32 (default, bit-identical to prior "
                  "builds) or int8 (per-column symmetric scales; the cost "
                  "model's per-step weight-read floor streams 1 B/param)");
  flags.AddString("kv-quant", "off",
                  "int8 KV compression at the GPU boundary: on quantizes "
                  "blocks demoted to the CPU/SSD tiers (~2x capacity, "
                  "compressed transfers), off keeps fp16 KV everywhere "
                  "(bit-identical to prior builds)");
  AddFaultFlags(&flags);
  flags.AddBool("help", false, "print usage");
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n\nflags:\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("pensieve_sim: serving-experiment runner\n\nflags:\n%s",
                flags.Help().c_str());
    return 0;
  }
  ThreadPool::SetGlobalThreads(static_cast<int>(flags.GetInt("threads")));

  ModelConfig model;
  if (!ModelConfigByName(flags.GetString("model"), &model)) {
    std::fprintf(stderr, "unknown model '%s'\n", flags.GetString("model").c_str());
    return 2;
  }
  DatasetProfile profile;
  if (flags.GetString("dataset") == "sharegpt") {
    profile = ShareGptProfile();
  } else if (flags.GetString("dataset") == "ultrachat") {
    profile = UltraChatProfile();
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", flags.GetString("dataset").c_str());
    return 2;
  }
  SystemKind kind;
  const std::string system = flags.GetString("system");
  if (system == "pensieve") {
    kind = SystemKind::kPensieve;
  } else if (system == "pensieve-gpu") {
    kind = SystemKind::kPensieveGpuOnly;
  } else if (system == "vllm") {
    kind = SystemKind::kVllm;
  } else if (system == "tensorrt-llm") {
    kind = SystemKind::kTensorRtLlm;
  } else {
    std::fprintf(stderr, "unknown system '%s'\n", system.c_str());
    return 2;
  }
  EngineOverrides overrides;
  overrides.cache_scale = flags.GetDouble("cache_scale");
  overrides.cpu_cache_scale = flags.GetDouble("cpu-scale");
  overrides.unified_scheduling = !flags.GetBool("split_scheduling");
  overrides.enable_prefix_sharing = flags.GetBool("prefix-share");
  const std::string policy = flags.GetString("policy");
  if (policy == "retention") {
    overrides.policy = EvictionPolicyKind::kRetentionValue;
  } else if (policy == "lru") {
    overrides.policy = EvictionPolicyKind::kLru;
  } else if (policy == "conversation-lru") {
    overrides.policy = EvictionPolicyKind::kConversationLru;
  } else if (policy == "cost-only") {
    overrides.policy = EvictionPolicyKind::kCostOnly;
  } else {
    std::fprintf(stderr, "unknown policy '%s'\n", policy.c_str());
    return 2;
  }
  const FaultConfig fault_config = FaultConfigFromFlags(flags);
  overrides.pcie_fault_profile = fault_config.pcie;
  overrides.fault_retry = fault_config.retry;
  overrides.fault_seed = fault_config.seed;
  overrides.ssd_capacity_gb = flags.GetDouble("ssd-capacity");
  if (!FlashAlgoKindByName(flags.GetString("ssd-algo"), &overrides.ssd_algo)) {
    std::fprintf(stderr, "unknown ssd-algo '%s'\n",
                 flags.GetString("ssd-algo").c_str());
    return 2;
  }
  overrides.ssd_segment_blocks = flags.GetInt("ssd-segment-blocks");
  overrides.ssd_fault_profile = fault_config.ssd;
  QuantMode weight_quant;
  if (!QuantModeByName(flags.GetString("weight-quant"), &weight_quant)) {
    std::fprintf(stderr, "unknown weight-quant '%s' (fp32 or int8)\n",
                 flags.GetString("weight-quant").c_str());
    return 2;
  }
  const std::string kv_quant = flags.GetString("kv-quant");
  if (kv_quant != "on" && kv_quant != "off") {
    std::fprintf(stderr, "unknown kv-quant '%s' (on or off)\n", kv_quant.c_str());
    return 2;
  }
  overrides.kv_quant = kv_quant == "on";

  const GpuCostModel cost_model(model, A100Spec(model.num_gpus), weight_quant);
  TraceOptions trace_options;
  trace_options.num_conversations = flags.GetInt("conversations");
  trace_options.conversation_rate = flags.GetDouble("rate");
  trace_options.mean_think_time = flags.GetDouble("think");
  trace_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  trace_options.num_prefix_templates = flags.GetInt("prefix-templates");
  trace_options.prefix_len = flags.GetInt("prefix-len");
  std::optional<WorkloadTrace> trace_storage;
  if (!flags.GetString("trace_csv").empty()) {
    auto loaded = LoadConversationsCsv(flags.GetString("trace_csv"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    trace_storage.emplace(std::move(loaded).value(), profile, trace_options);
  } else {
    trace_storage.emplace(profile, trace_options);
  }
  const WorkloadTrace& trace = *trace_storage;

  const int64_t replicas = flags.GetInt("replicas");
  RouterPolicy router_policy;
  if (!RouterPolicyByName(flags.GetString("router"), &router_policy)) {
    std::fprintf(stderr, "unknown router '%s'\n",
                 flags.GetString("router").c_str());
    return 2;
  }
  std::vector<ReplicaFault> fault_events;
  if (!ParseFaultList(flags.GetString("fail-replica"), /*recover=*/false,
                      &fault_events) ||
      !ParseFaultList(flags.GetString("recover-replica"), /*recover=*/true,
                      &fault_events)) {
    std::fprintf(stderr,
                 "malformed fault spec (expected ID@T[,ID@T...]): "
                 "--fail-replica='%s' --recover-replica='%s'\n",
                 flags.GetString("fail-replica").c_str(),
                 flags.GetString("recover-replica").c_str());
    return 2;
  }
  for (const ReplicaFault& fault : fault_events) {
    if (fault.replica_id >= replicas) {
      std::fprintf(stderr, "fault names replica %d but only %ld configured\n",
                   fault.replica_id, static_cast<long>(replicas));
      return 2;
    }
  }
  const std::string disagg = flags.GetString("disagg");
  if (disagg != "on" && disagg != "off") {
    std::fprintf(stderr, "unknown disagg '%s' (on or off)\n", disagg.c_str());
    return 2;
  }
  if (disagg == "on" && replicas < 2) {
    std::fprintf(stderr,
                 "--disagg=on needs --replicas>=2 (one prefill + one decode)\n");
    return 2;
  }
  const int64_t prefill_replicas = flags.GetInt("prefill-replicas");
  if (disagg == "on" &&
      (prefill_replicas < 1 || prefill_replicas >= replicas)) {
    std::fprintf(stderr,
                 "--prefill-replicas=%ld out of range: --disagg=on needs "
                 "1 <= prefill-replicas <= replicas-1 (= %ld) so at least "
                 "one decode replica remains\n",
                 static_cast<long>(prefill_replicas),
                 static_cast<long>(replicas - 1));
    return 2;
  }

  ElasticOptions elastic;
  const std::string health_probe = flags.GetString("health-probe");
  if (health_probe != "on" && health_probe != "off") {
    std::fprintf(stderr, "unknown health-probe '%s' (on or off)\n",
                 health_probe.c_str());
    return 2;
  }
  elastic.health.enabled = health_probe == "on";
  elastic.health.probe_interval = flags.GetDouble("probe-interval");
  elastic.health.probe_timeout = flags.GetDouble("probe-timeout-ms") / 1e3;
  elastic.health.quarantine_after =
      static_cast<int32_t>(flags.GetInt("probe-quarantine-after"));
  elastic.health.suspect_after =
      std::max<int32_t>(1, elastic.health.quarantine_after / 2);
  elastic.health.healthy_after =
      static_cast<int32_t>(flags.GetInt("probe-healthy-after"));
  elastic.health.probe_faults.timeout_rate = flags.GetDouble("probe-loss");
  if (!ParseSickList(flags.GetString("sick-replica"), &elastic.health.sick)) {
    std::fprintf(stderr,
                 "malformed sick spec (expected ID@T1:T2[,ID@T1:T2...]): "
                 "--sick-replica='%s'\n",
                 flags.GetString("sick-replica").c_str());
    return 2;
  }
  for (const SickWindow& window : elastic.health.sick) {
    if (window.replica_id >= replicas) {
      std::fprintf(stderr,
                   "sick window names replica %d but only %ld configured\n",
                   window.replica_id, static_cast<long>(replicas));
      return 2;
    }
  }
  if (elastic.health.enabled &&
      (elastic.health.probe_interval <= 0.0 ||
       elastic.health.probe_timeout <= 0.0 ||
       elastic.health.quarantine_after < 1 ||
       elastic.health.healthy_after < 1)) {
    std::fprintf(stderr,
                 "--health-probe=on needs positive --probe-interval, "
                 "--probe-timeout-ms, --probe-quarantine-after and "
                 "--probe-healthy-after\n");
    return 2;
  }
  const std::string autoscale = flags.GetString("autoscale");
  if (autoscale != "on" && autoscale != "off") {
    std::fprintf(stderr, "unknown autoscale '%s' (on or off)\n",
                 autoscale.c_str());
    return 2;
  }
  elastic.autoscale.enabled = autoscale == "on";
  elastic.autoscale.min_replicas =
      static_cast<int32_t>(flags.GetInt("min-replicas"));
  elastic.autoscale.max_replicas =
      flags.GetInt("max-replicas") == 0
          ? static_cast<int32_t>(replicas)
          : static_cast<int32_t>(flags.GetInt("max-replicas"));
  elastic.autoscale.check_interval = flags.GetDouble("scale-interval");
  elastic.autoscale.cooldown = flags.GetDouble("scale-cooldown");
  elastic.autoscale.up_queue_tokens = flags.GetInt("scale-up-tokens");
  elastic.autoscale.down_queue_tokens = flags.GetInt("scale-down-tokens");
  elastic.autoscale.up_p99_latency = flags.GetDouble("scale-up-p99-ms") / 1e3;
  if (elastic.autoscale.enabled) {
    if (elastic.autoscale.min_replicas < 1 ||
        elastic.autoscale.min_replicas > elastic.autoscale.max_replicas ||
        elastic.autoscale.max_replicas > replicas) {
      std::fprintf(stderr,
                   "--autoscale=on needs 1 <= min-replicas <= max-replicas "
                   "<= replicas (got min=%d max=%d replicas=%ld)\n",
                   elastic.autoscale.min_replicas,
                   elastic.autoscale.max_replicas,
                   static_cast<long>(replicas));
      return 2;
    }
    if (elastic.autoscale.up_queue_tokens <=
        elastic.autoscale.down_queue_tokens) {
      std::fprintf(stderr,
                   "--scale-up-tokens (%ld) must exceed --scale-down-tokens "
                   "(%ld): the gap is the hysteresis band\n",
                   static_cast<long>(elastic.autoscale.up_queue_tokens),
                   static_cast<long>(elastic.autoscale.down_queue_tokens));
      return 2;
    }
    if (elastic.autoscale.check_interval <= 0.0 ||
        elastic.autoscale.cooldown < 0.0) {
      std::fprintf(stderr,
                   "--autoscale=on needs positive --scale-interval and "
                   "non-negative --scale-cooldown\n");
      return 2;
    }
    if (disagg == "on") {
      std::fprintf(stderr,
                   "--autoscale=on is incompatible with --disagg=on (the "
                   "prefill/decode role split assumes a fixed replica set)\n");
      return 2;
    }
  }
  const std::string peer_spill = flags.GetString("peer-spill");
  if (peer_spill != "on" && peer_spill != "off") {
    std::fprintf(stderr, "unknown peer-spill '%s' (on or off)\n",
                 peer_spill.c_str());
    return 2;
  }
  elastic.peer_spill.enabled = peer_spill == "on";
  if (elastic.peer_spill.enabled && replicas < 2) {
    std::fprintf(stderr, "--peer-spill=on needs --replicas>=2\n");
    return 2;
  }
  overrides.peer_spill = elastic.peer_spill.enabled;

  // Fault injection, disaggregation, and the elastic features all run
  // through the cluster layer even with one replica.
  if (replicas > 1 || !fault_events.empty() || elastic.Enabled()) {
    ClusterOptions cluster_options;
    cluster_options.num_replicas = static_cast<int32_t>(replicas);
    cluster_options.router.policy = router_policy;
    cluster_options.router.min_overload_tokens = flags.GetInt("overload_tokens");
    cluster_options.router.overload_factor = flags.GetDouble("overload_factor");
    cluster_options.faults = std::move(fault_events);
    cluster_options.nic_fault_profile = fault_config.nic;
    cluster_options.fault_retry = fault_config.retry;
    cluster_options.fault_seed = fault_config.seed;
    cluster_options.elastic = elastic;
    if (disagg == "on") {
      cluster_options.disagg.enabled = true;
      cluster_options.disagg.prefill_replicas =
          static_cast<int32_t>(prefill_replicas);
      cluster_options.disagg.min_handoff_tokens =
          flags.GetInt("disagg-min-prefill");
      cluster_options.disagg.stream_layers = model.num_layers;
    }
    std::vector<RequestOutcome> outcomes;
    std::vector<ClusterStepTraceEntry> steps;
    cluster_options.outcomes = &outcomes;
    cluster_options.step_trace = &steps;
    const ClusterSummary cs = RunClusterExperiment(
        [&](int32_t replica_id) {
          // Each replica (and each recovery incarnation) draws from its own
          // deterministic fault stream.
          EngineOverrides replica_overrides = overrides;
          replica_overrides.fault_seed =
              fault_config.seed +
              0x9E3779B9ull * static_cast<uint64_t>(replica_id + 1);
          return MakeEngine(kind, cost_model, replica_overrides);
        },
        trace, cluster_options);
    const ServingSummary& s = cs.cluster;
    std::printf("cluster:           %ld x %s behind %s router\n",
                static_cast<long>(replicas), system.c_str(), cs.router_name.c_str());
    std::printf("model:             %s on %d GPU(s) per replica\n",
                model.name.c_str(), model.num_gpus);
    std::printf("requests:          %ld completed, makespan %.1f s\n",
                static_cast<long>(s.completed_requests), s.makespan);
    std::printf("throughput:        %.3f req/s (%.1f tok/s) over steady window "
                "[%.1f, %.1f] s\n",
                s.throughput_rps, s.token_throughput, s.window_begin,
                s.window_end);
    std::printf("norm latency:      mean %.1f / p50 %.1f / p90 %.1f / p99 %.1f "
                "ms per token\n",
                s.mean_normalized_latency * 1e3, s.p50_normalized_latency * 1e3,
                s.p90_normalized_latency * 1e3, s.p99_normalized_latency * 1e3);
    std::printf("cache:             hit %.3f (cpu-tier hit %.3f), %ld tokens "
                "recomputed\n",
                s.engine_stats.CacheHitRate(), s.engine_stats.CpuCacheHitRate(),
                static_cast<long>(s.engine_stats.recomputed_history_tokens));
    std::printf("balance:           load imbalance %.2f (peak/mean busy)\n",
                cs.load_imbalance);
    std::printf("migration:         %ld transfers (%ld rehomes, %ld queued at "
                "home), %.1f MB, %ld tokens adopted, %.3f s stall\n",
                static_cast<long>(cs.migration.migrations),
                static_cast<long>(cs.migration.rehomes),
                static_cast<long>(cs.migration.overload_queued),
                cs.migration.migrated_bytes / 1e6,
                static_cast<long>(cs.migration.migrated_tokens),
                cs.migration.migration_stall_seconds);
    if (cs.faults.failures > 0 || cs.faults.recoveries > 0) {
      std::printf("faults:            %ld failure(s), %ld recovery(ies); %ld "
                  "requests re-routed (%ld orphaned), %ld KV tokens lost, %ld "
                  "generated tokens lost\n",
                  static_cast<long>(cs.faults.failures),
                  static_cast<long>(cs.faults.recoveries),
                  static_cast<long>(cs.faults.rerouted_requests),
                  static_cast<long>(cs.faults.orphaned_requests),
                  static_cast<long>(cs.faults.lost_kv_tokens),
                  static_cast<long>(cs.faults.lost_generated_tokens));
    }
    if (cs.nic_link_faults.InjectedFaults() > 0 ||
        cs.migration.failed_migrations > 0) {
      std::printf("nic-faults:        %s\n",
                  FormatLinkFaultLine(cs.nic_link_faults).c_str());
      std::printf("nic-degrade:       %ld failed migrations, %ld KV tokens "
                  "recomputed at destination\n",
                  static_cast<long>(cs.migration.failed_migrations),
                  static_cast<long>(cs.migration.kv_tokens_lost_in_transit));
    }
    // Empty unless the run actually handed off, so colocated output is
    // bit-identical to pre-disaggregation builds.
    std::printf("%s", FormatHandoffSummary(cs.handoff).c_str());
    // Likewise empty when no probing, scaling, or spill happened.
    std::printf("%s", FormatElasticSummary(cs.elastic).c_str());
    std::printf("%s", FormatKvFaultSummary(s.engine_stats).c_str());
    std::printf("%s", FormatSsdTierSummary(s.engine_stats).c_str());
    std::printf("%s", FormatPrefixSharingSummary(s.engine_stats).c_str());
    std::printf("%s", FormatKvQuantSummary(s.engine_stats).c_str());
    for (size_t i = 0; i < cs.replicas.size(); ++i) {
      const ServingSummary& r = cs.replicas[i];
      std::printf("  replica %-2zu       %ld requests, %.1f s busy, hit %.3f\n",
                  i, static_cast<long>(r.completed_requests),
                  r.engine_stats.busy_seconds, r.engine_stats.CacheHitRate());
    }
    if (!flags.GetString("outcomes_csv").empty()) {
      status = WriteOutcomesCsv(flags.GetString("outcomes_csv"), outcomes);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", flags.GetString("outcomes_csv").c_str());
    }
    if (!flags.GetString("steps_csv").empty()) {
      status = WriteClusterStepTraceCsv(flags.GetString("steps_csv"), steps);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", flags.GetString("steps_csv").c_str());
    }
    return 0;
  }

  auto engine = MakeEngine(kind, cost_model, overrides);
  std::vector<RequestOutcome> outcomes;
  std::vector<StepTraceEntry> steps;
  DriverOptions driver_options;
  driver_options.outcomes = &outcomes;
  driver_options.step_trace = &steps;
  const ServingSummary s =
      RunServingExperiment(engine.get(), trace, driver_options);

  std::printf("system:            %s\n", s.engine_name.c_str());
  std::printf("model:             %s on %d GPU(s)\n", model.name.c_str(),
              model.num_gpus);
  std::printf("requests:          %ld completed, makespan %.1f s\n",
              static_cast<long>(s.completed_requests), s.makespan);
  std::printf("throughput:        %.3f req/s (%.1f tok/s) over steady window "
              "[%.1f, %.1f] s\n",
              s.throughput_rps, s.token_throughput, s.window_begin, s.window_end);
  std::printf("norm latency:      mean %.1f / p50 %.1f / p90 %.1f / p99 %.1f "
              "ms per token\n",
              s.mean_normalized_latency * 1e3, s.p50_normalized_latency * 1e3,
              s.p90_normalized_latency * 1e3, s.p99_normalized_latency * 1e3);
  std::printf("cache:             hit %.3f (cpu-tier hit %.3f), %ld tokens "
              "recomputed, %.2f s recompute\n",
              s.engine_stats.CacheHitRate(), s.engine_stats.CpuCacheHitRate(),
              static_cast<long>(s.engine_stats.recomputed_history_tokens),
              s.engine_stats.recompute_seconds);
  std::printf("swapping:          %ld AOT tokens out, %ld forced, %ld dropped, "
              "%.2f s restore stall\n",
              static_cast<long>(s.engine_stats.aot_swap_out_tokens),
              static_cast<long>(s.engine_stats.forced_swap_out_tokens),
              static_cast<long>(s.engine_stats.dropped_tokens),
              s.engine_stats.restore_stall_seconds);
  std::printf("%s", FormatKvFaultSummary(s.engine_stats).c_str());
  std::printf("%s", FormatSsdTierSummary(s.engine_stats).c_str());
  std::printf("%s", FormatPrefixSharingSummary(s.engine_stats).c_str());
  std::printf("%s", FormatKvQuantSummary(s.engine_stats).c_str());
  const StepTraceSummary st = SummarizeStepTrace(steps);
  std::printf("scheduler:         %ld steps, mean batch %.1f requests / %.1f "
              "tokens, %.1f s busy\n",
              static_cast<long>(st.steps), st.mean_batch_requests,
              st.mean_batch_tokens, st.busy_seconds);

  if (!flags.GetString("outcomes_csv").empty()) {
    status = WriteOutcomesCsv(flags.GetString("outcomes_csv"), outcomes);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.GetString("outcomes_csv").c_str());
  }
  if (!flags.GetString("steps_csv").empty()) {
    status = WriteStepTraceCsv(flags.GetString("steps_csv"), steps, weight_quant);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.GetString("steps_csv").c_str());
  }
  return 0;
}

}  // namespace
}  // namespace pensieve

int main(int argc, char** argv) { return pensieve::Run(argc, argv); }

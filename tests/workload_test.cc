// Tests for workload synthesis: dataset profiles (paper Table 2) and traces.

#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "src/workload/dataset.h"
#include "src/workload/trace.h"
#include "src/workload/trace_io.h"

namespace pensieve {
namespace {

// --- Dataset profiles / Table 2 ------------------------------------------------

TEST(DatasetProfileTest, Table2Means) {
  DatasetProfile sg = ShareGptProfile();
  EXPECT_NEAR(sg.mean_turns, 5.56, 1e-9);
  EXPECT_NEAR(sg.mean_input_len, 37.77, 1e-9);
  EXPECT_NEAR(sg.mean_output_len, 204.58, 1e-9);
  EXPECT_EQ(sg.max_context, 16384);

  DatasetProfile uc = UltraChatProfile();
  EXPECT_NEAR(uc.mean_turns, 3.86, 1e-9);
  EXPECT_NEAR(uc.mean_input_len, 51.78, 1e-9);
  EXPECT_NEAR(uc.mean_output_len, 257.81, 1e-9);
}

class DatasetStatisticsTest : public ::testing::TestWithParam<DatasetProfile> {};

TEST_P(DatasetStatisticsTest, GeneratedStatisticsMatchTable2) {
  const DatasetProfile profile = GetParam();
  ConversationGenerator gen(profile, 1234);
  double total_turns = 0.0;
  double total_input = 0.0;
  double total_output = 0.0;
  int64_t total_requests = 0;
  const int kConversations = 20000;
  for (int i = 0; i < kConversations; ++i) {
    ConversationSpec spec = gen.Next();
    EXPECT_GE(spec.turns.size(), 1u);
    EXPECT_LE(spec.TotalTokens(), profile.max_context);
    total_turns += static_cast<double>(spec.turns.size());
    for (const TurnSpec& turn : spec.turns) {
      EXPECT_GE(turn.input_len, 1);
      EXPECT_GE(turn.output_len, 1);
      total_input += static_cast<double>(turn.input_len);
      total_output += static_cast<double>(turn.output_len);
      ++total_requests;
    }
  }
  const double mean_turns = total_turns / kConversations;
  const double mean_input = total_input / static_cast<double>(total_requests);
  const double mean_output = total_output / static_cast<double>(total_requests);
  // The 16K context cap truncates long conversations, pulling the means
  // slightly below the raw distribution targets; allow 15%.
  EXPECT_NEAR(mean_turns, profile.mean_turns, profile.mean_turns * 0.15);
  EXPECT_NEAR(mean_input, profile.mean_input_len, profile.mean_input_len * 0.15);
  EXPECT_NEAR(mean_output, profile.mean_output_len, profile.mean_output_len * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Profiles, DatasetStatisticsTest,
                         ::testing::Values(ShareGptProfile(), UltraChatProfile()),
                         [](const ::testing::TestParamInfo<DatasetProfile>& info) {
                           return info.param.name;
                         });

TEST(ConversationGeneratorTest, DeterministicForSeed) {
  ConversationGenerator a(ShareGptProfile(), 7);
  ConversationGenerator b(ShareGptProfile(), 7);
  for (int i = 0; i < 50; ++i) {
    ConversationSpec sa = a.Next();
    ConversationSpec sb = b.Next();
    ASSERT_EQ(sa.turns.size(), sb.turns.size());
    for (size_t t = 0; t < sa.turns.size(); ++t) {
      EXPECT_EQ(sa.turns[t].input_len, sb.turns[t].input_len);
      EXPECT_EQ(sa.turns[t].output_len, sb.turns[t].output_len);
    }
  }
}

TEST(ConversationGeneratorTest, AssignsSequentialIds) {
  ConversationGenerator gen(UltraChatProfile(), 3);
  EXPECT_EQ(gen.Next().conversation_id, 0);
  EXPECT_EQ(gen.Next().conversation_id, 1);
  EXPECT_EQ(gen.Next().conversation_id, 2);
}

TEST(ConversationSpecTest, HistoryAccumulates) {
  ConversationSpec spec;
  spec.turns = {{10, 100}, {20, 200}, {5, 50}};
  EXPECT_EQ(spec.HistoryLenBeforeTurn(0), 0);
  EXPECT_EQ(spec.HistoryLenBeforeTurn(1), 110);
  EXPECT_EQ(spec.HistoryLenBeforeTurn(2), 330);
  EXPECT_EQ(spec.TotalTokens(), 385);
}

TEST(SyntheticTokenTest, DeterministicAndInRange) {
  std::set<int32_t> values;
  for (int64_t pos = 0; pos < 1000; ++pos) {
    const int32_t t = SyntheticToken(42, pos, 128);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 128);
    EXPECT_EQ(t, SyntheticToken(42, pos, 128));
    values.insert(t);
  }
  // Well spread over the vocabulary.
  EXPECT_GT(values.size(), 100u);
}

TEST(SyntheticTokenTest, DiffersAcrossConversations) {
  int differences = 0;
  for (int64_t pos = 0; pos < 100; ++pos) {
    if (SyntheticToken(1, pos, 1 << 20) != SyntheticToken(2, pos, 1 << 20)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 95);
}

// --- WorkloadTrace ---------------------------------------------------------------

TEST(WorkloadTraceTest, ArrivalsAreIncreasingPoisson) {
  TraceOptions options;
  options.num_conversations = 5000;
  options.conversation_rate = 2.0;
  options.seed = 9;
  WorkloadTrace trace(ShareGptProfile(), options);
  ASSERT_EQ(trace.conversations().size(), 5000u);
  double prev = 0.0;
  double last = 0.0;
  for (const TraceConversation& conv : trace.conversations()) {
    EXPECT_GT(conv.first_arrival, prev);
    prev = conv.first_arrival;
    last = conv.first_arrival;
  }
  // 5000 arrivals at 2/s should take roughly 2500 seconds.
  EXPECT_NEAR(last, 2500.0, 200.0);
}

TEST(WorkloadTraceTest, ThinkTimesMatchMean) {
  TraceOptions options;
  options.num_conversations = 5000;
  options.conversation_rate = 1.0;
  options.mean_think_time = 60.0;
  options.seed = 10;
  WorkloadTrace trace(ShareGptProfile(), options);
  double sum = 0.0;
  int64_t count = 0;
  for (const TraceConversation& conv : trace.conversations()) {
    EXPECT_EQ(conv.think_times.size(), conv.spec.turns.size() - 1);
    for (double t : conv.think_times) {
      sum += t;
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_NEAR(sum / static_cast<double>(count), 60.0, 3.0);
}

TEST(WorkloadTraceTest, TotalRequestsCountsTurns) {
  TraceOptions options;
  options.num_conversations = 100;
  options.conversation_rate = 1.0;
  WorkloadTrace trace(UltraChatProfile(), options);
  int64_t expected = 0;
  for (const TraceConversation& conv : trace.conversations()) {
    expected += static_cast<int64_t>(conv.spec.turns.size());
  }
  EXPECT_EQ(trace.TotalRequests(), expected);
}

TEST(WorkloadTraceTest, DeterministicForSeed) {
  TraceOptions options;
  options.num_conversations = 50;
  options.conversation_rate = 1.5;
  options.seed = 77;
  WorkloadTrace a(ShareGptProfile(), options);
  WorkloadTrace b(ShareGptProfile(), options);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.conversations()[i].first_arrival,
                     b.conversations()[i].first_arrival);
  }
}

TEST(TemplatePrefixTokenTest, DeterministicInRangeAndTemplateSensitive) {
  std::set<int32_t> values;
  for (int64_t pos = 0; pos < 500; ++pos) {
    const int32_t t = TemplatePrefixToken(3, pos, 128);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 128);
    EXPECT_EQ(t, TemplatePrefixToken(3, pos, 128));
    values.insert(t);
  }
  EXPECT_GT(values.size(), 100u);
  // Different templates produce different streams.
  int differences = 0;
  for (int64_t pos = 0; pos < 100; ++pos) {
    if (TemplatePrefixToken(1, pos, 1 << 20) != TemplatePrefixToken(2, pos, 1 << 20)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 95);
}

TEST(WorkloadTraceTest, PrefixTemplateKnobsAssignRoundRobin) {
  TraceOptions base;
  base.num_conversations = 60;
  base.conversation_rate = 1.0;
  base.seed = 21;
  TraceOptions templated = base;
  templated.num_prefix_templates = 4;
  templated.prefix_len = 64;
  WorkloadTrace plain(ShareGptProfile(), base);
  WorkloadTrace with(ShareGptProfile(), templated);
  ASSERT_EQ(plain.conversations().size(), with.conversations().size());
  const int64_t max_context = ShareGptProfile().max_context;
  int64_t assigned = 0;
  for (size_t i = 0; i < with.conversations().size(); ++i) {
    const ConversationSpec& p = plain.conversations()[i].spec;
    const ConversationSpec& t = with.conversations()[i].spec;
    ASSERT_EQ(t.turns.size(), p.turns.size());
    if (t.template_id >= 0) {
      ++assigned;
      EXPECT_EQ(t.template_id, static_cast<int32_t>(t.conversation_id % 4));
      EXPECT_EQ(t.template_prefix_len, 64);
      // The prefix rides in front of the first turn's prompt; nothing else
      // about the conversation changes.
      EXPECT_EQ(t.turns[0].input_len, p.turns[0].input_len + 64);
    } else {
      // Only oversized conversations are exempt.
      EXPECT_GT(p.TotalTokens() + 64, max_context);
      EXPECT_EQ(t.turns[0].input_len, p.turns[0].input_len);
    }
    for (size_t turn = 1; turn < t.turns.size(); ++turn) {
      EXPECT_EQ(t.turns[turn].input_len, p.turns[turn].input_len);
      EXPECT_EQ(t.turns[turn].output_len, p.turns[turn].output_len);
    }
  }
  EXPECT_GT(assigned, 50);
}

TEST(WorkloadTraceTest, PrefixTemplatesDrawNothingFromRng) {
  // Template assignment is deterministic bookkeeping: the Poisson arrival
  // process and think times must be bit-identical with and without it.
  TraceOptions base;
  base.num_conversations = 40;
  base.conversation_rate = 2.0;
  base.mean_think_time = 30.0;
  base.seed = 13;
  TraceOptions templated = base;
  templated.num_prefix_templates = 8;
  templated.prefix_len = 96;
  WorkloadTrace plain(ShareGptProfile(), base);
  WorkloadTrace with(ShareGptProfile(), templated);
  ASSERT_EQ(plain.conversations().size(), with.conversations().size());
  for (size_t i = 0; i < plain.conversations().size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.conversations()[i].first_arrival,
                     with.conversations()[i].first_arrival);
    ASSERT_EQ(plain.conversations()[i].think_times.size(),
              with.conversations()[i].think_times.size());
    for (size_t t = 0; t < plain.conversations()[i].think_times.size(); ++t) {
      EXPECT_DOUBLE_EQ(plain.conversations()[i].think_times[t],
                       with.conversations()[i].think_times[t]);
    }
  }
}

TEST(WorkloadTraceTest, HigherRateCompressesArrivals) {
  TraceOptions slow;
  slow.num_conversations = 1000;
  slow.conversation_rate = 0.5;
  TraceOptions fast = slow;
  fast.conversation_rate = 4.0;
  WorkloadTrace a(ShareGptProfile(), slow);
  WorkloadTrace b(ShareGptProfile(), fast);
  EXPECT_GT(a.conversations().back().first_arrival,
            4.0 * b.conversations().back().first_arrival);
}


// --- Trace I/O -------------------------------------------------------------------

std::string TraceTempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceIoTest, RoundTripPreservesConversations) {
  ConversationGenerator gen(ShareGptProfile(), 5);
  std::vector<ConversationSpec> original;
  for (int i = 0; i < 20; ++i) {
    original.push_back(gen.Next());
  }
  const std::string path = TraceTempPath("trace_roundtrip.csv");
  ASSERT_TRUE(WriteConversationsCsv(path, original).ok());
  auto loaded = LoadConversationsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ((*loaded)[i].turns.size(), original[i].turns.size());
    for (size_t t = 0; t < original[i].turns.size(); ++t) {
      EXPECT_EQ((*loaded)[i].turns[t].input_len, original[i].turns[t].input_len);
      EXPECT_EQ((*loaded)[i].turns[t].output_len, original[i].turns[t].output_len);
    }
  }
}

TEST(TraceIoTest, RejectsMalformedFiles) {
  const std::string path = TraceTempPath("trace_bad.csv");
  auto write = [&](const std::string& contents) {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  };
  write("wrong,header\n");
  EXPECT_EQ(LoadConversationsCsv(path).status().code(), StatusCode::kInvalidArgument);
  write("conversation_id,turn,input_len,output_len\n1,0,abc,5\n");
  EXPECT_EQ(LoadConversationsCsv(path).status().code(), StatusCode::kInvalidArgument);
  write("conversation_id,turn,input_len,output_len\n1,1,5,5\n");  // no turn 0
  EXPECT_EQ(LoadConversationsCsv(path).status().code(), StatusCode::kInvalidArgument);
  write("conversation_id,turn,input_len,output_len\n1,0,5,5\n1,2,5,5\n");  // gap
  EXPECT_EQ(LoadConversationsCsv(path).status().code(), StatusCode::kInvalidArgument);
  write("conversation_id,turn,input_len,output_len\n1,0,0,5\n");  // zero length
  EXPECT_EQ(LoadConversationsCsv(path).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(LoadConversationsCsv("/does/not/exist.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(TraceIoTest, InterleavedConversationsSupported) {
  const std::string path = TraceTempPath("trace_interleaved.csv");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "conversation_id,turn,input_len,output_len\n"
           "7,0,10,20\n"
           "9,0,5,5\n"
           "7,1,3,4\n";
  }
  auto loaded = LoadConversationsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].turns.size(), 2u);
  EXPECT_EQ((*loaded)[1].turns.size(), 1u);
}

TEST(TraceIoTest, LoadedConversationsBuildAReplayableTrace) {
  ConversationGenerator gen(UltraChatProfile(), 11);
  std::vector<ConversationSpec> specs;
  for (int i = 0; i < 10; ++i) {
    specs.push_back(gen.Next());
  }
  const std::string path = TraceTempPath("trace_replay.csv");
  ASSERT_TRUE(WriteConversationsCsv(path, specs).ok());
  auto loaded = LoadConversationsCsv(path);
  ASSERT_TRUE(loaded.ok());

  TraceOptions options;
  options.num_conversations = 5;  // cap
  options.conversation_rate = 1.0;
  WorkloadTrace trace(std::move(loaded).value(), UltraChatProfile(), options);
  ASSERT_EQ(trace.conversations().size(), 5u);
  for (size_t i = 0; i < trace.conversations().size(); ++i) {
    // Ids re-assigned densely so the driver can index by them.
    EXPECT_EQ(trace.conversations()[i].spec.conversation_id,
              static_cast<int64_t>(i));
    EXPECT_EQ(trace.conversations()[i].think_times.size(),
              trace.conversations()[i].spec.turns.size() - 1);
  }
}

}  // namespace
}  // namespace pensieve

// Tests for layer-pipelined KV streaming (src/sim/kv_stream.h): chunk
// ordering under faults, overlap vs the blocking-transfer equivalent, and
// whole-stream failure semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/cluster_link.h"
#include "src/sim/fault_injector.h"
#include "src/sim/kv_stream.h"

namespace pensieve {
namespace {

InterconnectSpec NicSpec(double bandwidth = 25e9, double latency = 50e-6) {
  InterconnectSpec spec;
  spec.bandwidth = bandwidth;
  spec.latency = latency;
  return spec;
}

KvStreamPlan Plan(double bytes, int64_t layers, double compute_start,
                  double compute_end) {
  KvStreamPlan plan;
  plan.src = 0;
  plan.dst = 1;
  plan.bytes = bytes;
  plan.num_layers = layers;
  plan.compute_start = compute_start;
  plan.compute_end = compute_end;
  return plan;
}

void ExpectInOrder(const KvStreamResult& result) {
  double prev_done = -1.0;
  for (const KvChunkArrival& chunk : result.chunks) {
    EXPECT_GE(chunk.done, chunk.ready)
        << "chunk delivered before its layers computed";
    EXPECT_GE(chunk.done, prev_done) << "chunk arrivals out of send order";
    prev_done = chunk.done;
  }
}

TEST(KvStreamTest, FaultFreeStreamDeliversEverythingInOrder) {
  ClusterInterconnect net(2, NicSpec());
  const KvStreamResult result =
      StreamKvLayers(&net, nullptr, Plan(1e9, 40, 1.0, 1.5));
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.chunks_delivered, result.chunks_total);
  EXPECT_DOUBLE_EQ(result.bytes_delivered, 1e9);
  EXPECT_GT(result.chunks_total, 1);
  ExpectInOrder(result);
  EXPECT_DOUBLE_EQ(result.done, result.chunks.back().done);
}

TEST(KvStreamTest, PipelineBeatsBlockingTransferOnLongPrefill) {
  // 1 GB over 25 GB/s is 40 ms of wire time against a 500 ms prefill: almost
  // all of the transfer should hide under compute.
  ClusterInterconnect net(2, NicSpec());
  const KvStreamResult result =
      StreamKvLayers(&net, nullptr, Plan(1e9, 40, 1.0, 1.5));
  EXPECT_TRUE(result.delivered);
  EXPECT_LT(result.done, result.unpipelined_done);
  // The blocking equivalent starts at compute_end and pays full
  // serialization after it.
  EXPECT_GE(result.unpipelined_done, 1.5 + 1e9 / 25e9);
}

TEST(KvStreamTest, TinyStreamCoalescesToOneChunkAndNeverLosesToBlocking) {
  // 1 KB across 40 layers would cost 40 x 50us latency un-coalesced; the
  // stream must collapse to a single chunk and still finish no later than
  // the blocking transfer.
  ClusterInterconnect net(2, NicSpec());
  const KvStreamResult result =
      StreamKvLayers(&net, nullptr, Plan(1e3, 40, 2.0, 2.1));
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.chunks_total, 1);
  EXPECT_LE(result.done, result.unpipelined_done);
}

TEST(KvStreamTest, ZeroLatencyLinkStillStreamsPerLayer) {
  ClusterInterconnect net(2, NicSpec(25e9, 0.0));
  const KvStreamResult result =
      StreamKvLayers(&net, nullptr, Plan(1e9, 8, 0.0, 1.0));
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.chunks_total, 8);
  ExpectInOrder(result);
  EXPECT_LE(result.done, result.unpipelined_done);
}

TEST(KvStreamTest, StallAndPartialFaultsPreserveOrderAndAccounting) {
  ClusterInterconnect net(2, NicSpec());
  LinkFaultProfile profile;
  profile.stall_rate = 0.3;
  profile.partial_rate = 0.3;
  // Generous retry budget: a chunk fails only after 10 partials in a row, so
  // every stream below delivers and the ordering invariant is exercised at a
  // high fault rate.
  LinkRetryPolicy retry;
  retry.max_attempts = 10;
  LinkFaultInjector faults(7, profile, retry);
  KvStreamResult last;
  for (int i = 0; i < 20; ++i) {
    last = StreamKvLayers(&net, &faults, Plan(5e8, 40, i * 10.0, i * 10.0 + 0.4));
    ASSERT_TRUE(last.delivered) << "chunk exhausted a 10-attempt retry budget";
    ExpectInOrder(last);
  }
  const LinkFaultStats& stats = faults.stats();
  EXPECT_GT(stats.injected_stalls + stats.injected_partials, 0);
  // Accounting identity (stalls excluded: a stalled transfer still lands on
  // the first attempt).
  EXPECT_EQ(stats.injected_timeouts + stats.injected_partials +
                stats.injected_corruptions,
            stats.recovered_faults + stats.unrecovered_faults);
  EXPECT_EQ(stats.unrecovered_faults, 0);
}

TEST(KvStreamTest, ExhaustedChunkFailsTheWholeStream) {
  ClusterInterconnect net(2, NicSpec());
  LinkFaultProfile profile;
  profile.corruption_rate = 1.0;  // every attempt corrupts
  LinkRetryPolicy retry;
  retry.max_attempts = 2;
  LinkFaultInjector faults(11, profile, retry);
  const KvStreamResult result =
      StreamKvLayers(&net, &faults, Plan(1e9, 40, 1.0, 1.5));
  EXPECT_FALSE(result.delivered);
  EXPECT_LT(result.chunks_delivered, result.chunks_total);
  EXPECT_LT(result.bytes_delivered, 1e9);
  // done reports the abandonment time of the failed chunk; it must still be
  // a real time on the clock (after compute began).
  EXPECT_GE(result.done, 1.0);
  EXPECT_GT(faults.stats().exhausted_transfers, 0);
  EXPECT_EQ(faults.stats().injected_timeouts + faults.stats().injected_partials +
                faults.stats().injected_corruptions,
            faults.stats().recovered_faults + faults.stats().unrecovered_faults);
}

TEST(KvStreamTest, BusyIngressPortDelaysStreamAndBlockingEquivalentAlike) {
  ClusterInterconnect net(3, NicSpec());
  // Saturate replica 1's ingress with a fat migration from replica 2.
  net.ScheduleTransfer(2, 1, 0.0, 10e9);
  const double ingress_free = net.IngressBusyUntil(1);
  const KvStreamResult result =
      StreamKvLayers(&net, nullptr, Plan(1e9, 40, 0.0, 0.1));
  EXPECT_TRUE(result.delivered);
  // Nothing lands while the port is owned by the earlier transfer.
  EXPECT_GE(result.chunks.front().done, ingress_free);
  EXPECT_GE(result.unpipelined_done, ingress_free);
  ExpectInOrder(result);
}

}  // namespace
}  // namespace pensieve

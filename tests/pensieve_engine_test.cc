// Tests for the Pensieve stateful serving engine.

#include <gtest/gtest.h>

#include "src/model/model_config.h"
#include "src/serving/pensieve_engine.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

Request MakeRequest(int64_t id, int64_t conv, int32_t turn, int64_t prompt,
                    int64_t history, int64_t output, double arrival = 0.0) {
  Request r;
  r.request_id = id;
  r.conversation_id = conv;
  r.turn_index = turn;
  r.new_prompt_len = prompt;
  r.history_len = history;
  r.target_output_len = output;
  r.arrival_time = arrival;
  return r;
}

PensieveEngineOptions SmallOptions(int64_t gpu_blocks = 64, int64_t cpu_blocks = 256) {
  PensieveEngineOptions o;
  o.block_size = 32;
  o.num_gpu_blocks = gpu_blocks;
  o.num_cpu_blocks = cpu_blocks;
  o.max_batch_tokens = 4096;
  return o;
}

std::vector<RequestOutcome> Drain(Engine* engine, double start = 0.0,
                                  int64_t max_steps = 100000) {
  std::vector<RequestOutcome> outcomes;
  double now = start;
  for (int64_t i = 0; i < max_steps && engine->HasWork(); ++i) {
    StepResult r = engine->Step(now);
    EXPECT_FALSE(r.idle) << "engine idled with pending work";
    if (r.idle) {
      break;
    }
    now += r.duration;
    for (auto& o : r.finished) {
      outcomes.push_back(std::move(o));
    }
  }
  return outcomes;
}

TEST(PensieveEngineTest, SingleRequestLifecycle) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SmallOptions());
  engine.Enqueue(MakeRequest(0, 0, 0, 50, 0, 10), 0.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].prefill_input_tokens, 50);
  EXPECT_EQ(engine.stats().generated_tokens, 10);
  // KV retained after completion: 50 prompt + 9 processed output tokens
  // (the final generated token stays pending).
  EXPECT_EQ(engine.cache().Find(0)->kv_len(), 59);
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineTest, SecondTurnReusesCachedHistory) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SmallOptions());
  engine.Enqueue(MakeRequest(0, 0, 0, 50, 0, 10), 0.0);
  Drain(&engine);
  // Turn 2 arrives: history = 50 prompt + 10 output = 60 raw tokens, of
  // which 59 have cached KV and 1 is the pending tail token. The engine
  // treats the pending token as part of the new input.
  engine.Enqueue(MakeRequest(1, 0, 1, 41, 60, 5, 100.0), 100.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 100.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].reused_gpu_tokens, 59);
  EXPECT_EQ(outcomes[0].recomputed_tokens, 0);
  EXPECT_EQ(outcomes[0].reused_cpu_tokens, 0);
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineTest, UnifiedStepMixesPrefillAndDecode) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SmallOptions());
  engine.Enqueue(MakeRequest(0, 0, 0, 50, 0, 20), 0.0);
  StepResult first = engine.Step(0.0);  // prefill A
  EXPECT_EQ(engine.num_running(), 1);
  engine.Enqueue(MakeRequest(1, 1, 0, 80, 0, 5, first.duration), first.duration);
  // Next step admits B while A decodes: both make progress in one step.
  const int64_t generated_before = engine.stats().generated_tokens;
  StepResult second = engine.Step(first.duration);
  EXPECT_EQ(engine.stats().generated_tokens, generated_before + 2);
  EXPECT_EQ(engine.num_running(), 2);
  (void)second;
}

TEST(PensieveEngineTest, SplitSchedulingRunsPrefillAlone) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options = SmallOptions();
  options.unified_scheduling = false;
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 50, 0, 20), 0.0);
  StepResult first = engine.Step(0.0);
  engine.Enqueue(MakeRequest(1, 1, 0, 80, 0, 5, first.duration), first.duration);
  // Split mode: the admitted request prefills alone; request A is paused.
  const int64_t generated_before = engine.stats().generated_tokens;
  engine.Step(first.duration);
  EXPECT_EQ(engine.stats().generated_tokens, generated_before + 1);
}

TEST(PensieveEngineTest, EvictsToCpuAndSwapsBackIn) {
  GpuCostModel model = Opt13BModel();
  // Tiny GPU tier: 8 blocks of 32 = 256 tokens.
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/8, /*cpu_blocks=*/64);
  PensieveEngine engine(model, options);
  // Conversation 0 fills most of the GPU.
  engine.Enqueue(MakeRequest(0, 0, 0, 150, 0, 10), 0.0);
  Drain(&engine);
  // Conversation 1 needs space: conversation 0's chunks get evicted.
  engine.Enqueue(MakeRequest(1, 1, 0, 150, 0, 10, 10.0), 10.0);
  Drain(&engine, 10.0);
  engine.cache().CheckInvariants();
  // Conversation 0 returns: some of its history must come from the CPU.
  engine.Enqueue(MakeRequest(2, 0, 1, 30, 160, 5, 20.0), 20.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 20.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_GT(outcomes[0].reused_cpu_tokens, 0);
  // Cached history = 160 raw tokens minus the pending tail token.
  EXPECT_EQ(outcomes[0].reused_cpu_tokens + outcomes[0].reused_gpu_tokens +
                outcomes[0].recomputed_tokens,
            159);
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineTest, GpuOnlyVariantDropsInsteadOfSwapping) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/8, /*cpu_blocks=*/64);
  options.use_cpu_cache = false;
  options.name = "pensieve-gpu-cache";
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 150, 0, 10), 0.0);
  Drain(&engine);
  engine.Enqueue(MakeRequest(1, 1, 0, 150, 0, 10, 10.0), 10.0);
  Drain(&engine, 10.0);
  engine.Enqueue(MakeRequest(2, 0, 1, 30, 160, 5, 20.0), 20.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 20.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].reused_cpu_tokens, 0);
  EXPECT_GT(outcomes[0].recomputed_tokens, 0);
  EXPECT_EQ(engine.stats().aot_swap_out_tokens, 0);
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineTest, DroppedPrefixIsRecomputedCorrectly) {
  GpuCostModel model = Opt13BModel();
  // GPU so small that conversation 0 cannot be fully cached across turns,
  // CPU tier disabled to force drops.
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/6, /*cpu_blocks=*/0);
  options.use_cpu_cache = false;
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 100, 0, 10), 0.0);
  Drain(&engine);
  engine.Enqueue(MakeRequest(1, 1, 0, 100, 0, 10, 5.0), 5.0);
  Drain(&engine, 5.0);
  engine.Enqueue(MakeRequest(2, 0, 1, 20, 110, 5, 9.0), 9.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 9.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_GT(outcomes[0].recomputed_tokens, 0);
  EXPECT_EQ(outcomes[0].recomputed_tokens + outcomes[0].reused_gpu_tokens, 109);
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineTest, AheadOfTimeSwapOutTriggersBelowThreshold) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/10, /*cpu_blocks=*/64);
  options.swap_out_threshold = 0.5;
  PensieveEngine engine(model, options);
  // Fill ~80% of GPU with a finished conversation.
  engine.Enqueue(MakeRequest(0, 0, 0, 240, 0, 10), 0.0);
  Drain(&engine);
  // The next step (even an idle-ish one with a tiny new request) should
  // trigger ahead-of-time swap-out to restore the free threshold.
  engine.Enqueue(MakeRequest(1, 1, 0, 10, 0, 3, 1.0), 1.0);
  Drain(&engine, 1.0);
  EXPECT_GT(engine.stats().aot_swap_out_tokens, 0);
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineTest, SuspendsLatestRequestUnderDecodePressure) {
  GpuCostModel model = Opt13BModel();
  // 4 blocks of 32 = 128 token slots; two long-generation requests cannot
  // both fit as their outputs grow.
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/4, /*cpu_blocks=*/64);
  options.decode_reserve = 0.0;  // force both to be admitted
  options.swap_out_threshold = 0.0;
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 50, 0, 60, 0.0), 0.0);
  engine.Enqueue(MakeRequest(1, 1, 0, 50, 0, 60, 0.1), 0.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_GT(engine.stats().suspensions, 0);
  // The later-arrived request bears the suspension.
  for (const RequestOutcome& o : outcomes) {
    if (o.request.request_id == 1) {
      EXPECT_GT(o.suspensions, 0);
    }
  }
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineTest, DecodeReserveDelaysAdmission) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/10, /*cpu_blocks=*/64);
  options.decode_reserve = 0.5;  // very conservative
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 128, 0, 30), 0.0);
  engine.Step(0.0);
  // Request 0 holds 4+ blocks; admitting request 1 (4 blocks) would leave
  // less than 50% free, so it must wait.
  engine.Enqueue(MakeRequest(1, 1, 0, 128, 0, 30, 0.1), 0.1);
  engine.Step(0.1);
  EXPECT_EQ(engine.num_running(), 1);
  EXPECT_EQ(engine.num_waiting(), 1);
}

TEST(PensieveEngineTest, TracksHitRateStatistics) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SmallOptions());
  engine.Enqueue(MakeRequest(0, 0, 0, 64, 0, 8), 0.0);
  Drain(&engine);
  engine.Enqueue(MakeRequest(1, 0, 1, 32, 72, 8, 50.0), 50.0);
  Drain(&engine, 50.0);
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.reused_gpu_tokens, 71);  // 72 history - 1 pending tail
  EXPECT_EQ(stats.recomputed_history_tokens, 0);
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 1.0);
}

TEST(PensieveEngineTest, ManyConversationsInterleaved) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SmallOptions(/*gpu_blocks=*/128, /*cpu_blocks=*/512));
  int64_t id = 0;
  // Turn 1 for 8 conversations.
  for (int64_t conv = 0; conv < 8; ++conv) {
    engine.Enqueue(MakeRequest(id++, conv, 0, 40 + conv, 0, 6, 0.01 * conv), 0.0);
  }
  std::vector<RequestOutcome> first = Drain(&engine);
  EXPECT_EQ(first.size(), 8u);
  // Turn 2 for all of them: everything should be reused.
  for (int64_t conv = 0; conv < 8; ++conv) {
    engine.Enqueue(MakeRequest(id++, conv, 1, 20, 40 + conv + 6, 6, 100.0), 100.0);
  }
  std::vector<RequestOutcome> second = Drain(&engine, 100.0);
  EXPECT_EQ(second.size(), 8u);
  for (const RequestOutcome& o : second) {
    EXPECT_EQ(o.recomputed_tokens, 0);
    EXPECT_EQ(o.reused_gpu_tokens, o.request.history_len - 1);  // pending tail
  }
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineTest, LruPolicyOptionWorks) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/8, /*cpu_blocks=*/16);
  options.policy = EvictionPolicyKind::kLru;
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 150, 0, 10), 0.0);
  Drain(&engine);
  engine.Enqueue(MakeRequest(1, 1, 0, 150, 0, 10, 5.0), 5.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 5.0);
  EXPECT_EQ(outcomes.size(), 1u);
  engine.cache().CheckInvariants();
}

TEST(PensieveEngineTest, RestoreStallAccountedWhenSwappingIn) {
  GpuCostModel model = Opt13BModel();
  PensieveEngineOptions options = SmallOptions(/*gpu_blocks=*/8, /*cpu_blocks=*/64);
  PensieveEngine engine(model, options);
  engine.Enqueue(MakeRequest(0, 0, 0, 200, 0, 10), 0.0);
  Drain(&engine);
  engine.Enqueue(MakeRequest(1, 1, 0, 200, 0, 10, 10.0), 10.0);
  Drain(&engine, 10.0);
  // Conversation 0 must swap back in from CPU; the engine charges some
  // pipelined-restore stall.
  engine.Enqueue(MakeRequest(2, 0, 1, 30, 210, 5, 20.0), 20.0);
  std::vector<RequestOutcome> outcomes = Drain(&engine, 20.0);
  ASSERT_EQ(outcomes.size(), 1u);
  if (outcomes[0].reused_cpu_tokens > 0) {
    EXPECT_GT(engine.stats().restore_stall_seconds, 0.0);
  }
}

TEST(PensieveEngineDeathTest, RejectsEmptyPrompt) {
  GpuCostModel model = Opt13BModel();
  PensieveEngine engine(model, SmallOptions());
  EXPECT_DEATH(engine.Enqueue(MakeRequest(0, 0, 0, 0, 0, 5), 0.0), "Check failed");
}

}  // namespace
}  // namespace pensieve

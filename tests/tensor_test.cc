// Unit tests for the tensor substrate (src/tensor).

#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace pensieve {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, FullFills) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t[i], 2.5f);
  }
}

TEST(TensorTest, AtIndexingRowMajor) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  t.at({0, 1}) = 3.0f;
  EXPECT_EQ(t[1], 3.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.at({2, 1}), 6.0f);
}

TEST(TensorTest, SliceRows) {
  Tensor t({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = t.SliceRows(1, 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.at({0, 0}), 3.0f);
  EXPECT_EQ(s.at({1, 1}), 6.0f);
}

TEST(TensorTest, ShapeString) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ShapeString(), "[2, 3, 4]");
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.5f, 1.0f});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 1.0f);
}

// --- MatMul -----------------------------------------------------------------

TEST(OpsTest, MatMulSmall) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(OpsTest, MatMulIdentity) {
  Tensor a({2, 2}, {3, 4, 5, 6});
  Tensor eye({2, 2}, {1, 0, 0, 1});
  Tensor c = MatMul(a, eye);
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, c), 0.0f);
}

TEST(OpsTest, MatMulTransposedBMatchesMatMul) {
  Tensor a({3, 4});
  FillNormal(a, 1, 1.0f);
  Tensor b({4, 5});
  FillNormal(b, 2, 1.0f);
  // b_t[n, k] with b_t[j][i] = b[i][j]
  Tensor b_t({5, 4});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      b_t.at({j, i}) = b.at({i, j});
    }
  }
  Tensor c1 = MatMul(a, b);
  Tensor c2 = MatMulTransposedB(a, b_t);
  EXPECT_LT(MaxAbsDiff(c1, c2), 1e-5f);
}

// --- Elementwise -------------------------------------------------------------

TEST(OpsTest, AddBias) {
  Tensor x({2, 2}, {1, 2, 3, 4});
  Tensor bias({2}, {10, 20});
  AddBiasInPlace(x, bias);
  EXPECT_FLOAT_EQ(x.at({0, 0}), 11.0f);
  EXPECT_FLOAT_EQ(x.at({1, 1}), 24.0f);
}

TEST(OpsTest, AddInPlace) {
  Tensor x({3}, {1, 2, 3});
  Tensor y({3}, {10, 20, 30});
  AddInPlace(x, y);
  EXPECT_FLOAT_EQ(x[2], 33.0f);
}

TEST(OpsTest, MulInPlace) {
  Tensor x({2}, {3, 4});
  Tensor y({2}, {2, 0.5f});
  MulInPlace(x, y);
  EXPECT_FLOAT_EQ(x[0], 6.0f);
  EXPECT_FLOAT_EQ(x[1], 2.0f);
}

TEST(OpsTest, Relu) {
  Tensor x({3}, {-1, 0, 2});
  ReluInPlace(x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_FLOAT_EQ(x[2], 2.0f);
}

TEST(OpsTest, SiluValues) {
  Tensor x({2}, {0.0f, 1.0f});
  SiluInPlace(x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_NEAR(x[1], 1.0f / (1.0f + std::exp(-1.0f)), 1e-6);
}

TEST(OpsTest, GeluApproxValues) {
  Tensor x({3}, {-10.0f, 0.0f, 10.0f});
  GeluInPlace(x);
  EXPECT_NEAR(x[0], 0.0f, 1e-3);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_NEAR(x[2], 10.0f, 1e-3);
}

// --- Softmax -----------------------------------------------------------------

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor x({3, 5});
  FillNormal(x, 3, 2.0f);
  SoftmaxRowsInPlace(x);
  for (int64_t i = 0; i < 3; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_GE(x.at({i, j}), 0.0f);
      sum += x.at({i, j});
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(OpsTest, SoftmaxNumericallyStableForLargeInputs) {
  Tensor x({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  SoftmaxRowsInPlace(x);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(x[j], 1.0f / 3.0f, 1e-5);
  }
}

TEST(OpsTest, SoftmaxHandlesMinusInfinityMask) {
  Tensor x({1, 3},
           {0.0f, -std::numeric_limits<float>::infinity(), 0.0f});
  SoftmaxRowsInPlace(x);
  EXPECT_NEAR(x[0], 0.5f, 1e-6);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_NEAR(x[2], 0.5f, 1e-6);
}

// --- Norms -------------------------------------------------------------------

TEST(OpsTest, LayerNormZeroMeanUnitVar) {
  Tensor x({1, 4}, {1, 2, 3, 4});
  Tensor gain = Tensor::Full({4}, 1.0f);
  Tensor bias = Tensor::Zeros({4});
  Tensor out = LayerNorm(x, gain, bias, 1e-5f);
  float mean = 0.0f;
  float var = 0.0f;
  for (int64_t j = 0; j < 4; ++j) {
    mean += out[j];
  }
  mean /= 4.0f;
  for (int64_t j = 0; j < 4; ++j) {
    var += (out[j] - mean) * (out[j] - mean);
  }
  var /= 4.0f;
  EXPECT_NEAR(mean, 0.0f, 1e-5);
  EXPECT_NEAR(var, 1.0f, 1e-3);
}

TEST(OpsTest, LayerNormAppliesGainAndBias) {
  Tensor x({1, 2}, {-1.0f, 1.0f});
  Tensor gain({2}, {2.0f, 2.0f});
  Tensor bias({2}, {5.0f, 5.0f});
  Tensor out = LayerNorm(x, gain, bias, 1e-6f);
  EXPECT_NEAR(out[0], 5.0f - 2.0f, 1e-3);
  EXPECT_NEAR(out[1], 5.0f + 2.0f, 1e-3);
}

TEST(OpsTest, RmsNormUnitRms) {
  Tensor x({1, 4}, {3, -3, 3, -3});
  Tensor gain = Tensor::Full({4}, 1.0f);
  Tensor out = RmsNorm(x, gain, 1e-6f);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(std::fabs(out[j]), 1.0f, 1e-4);
  }
}

TEST(OpsTest, RmsNormScaleInvariantDirection) {
  Tensor x({1, 3}, {1.0f, 2.0f, 3.0f});
  Tensor x2({1, 3}, {10.0f, 20.0f, 30.0f});
  Tensor gain = Tensor::Full({3}, 1.0f);
  Tensor a = RmsNorm(x, gain, 0.0f);
  Tensor b = RmsNorm(x2, gain, 0.0f);
  EXPECT_LT(MaxAbsDiff(a, b), 1e-5f);
}

// --- Rotary ------------------------------------------------------------------

TEST(OpsTest, RotaryAtPositionZeroIsIdentity) {
  Tensor x({1, 2, 4});
  FillNormal(x, 5, 1.0f);
  Tensor orig = x;
  ApplyRotaryInPlace(x, {0}, 10000.0f);
  EXPECT_LT(MaxAbsDiff(x, orig), 1e-6f);
}

TEST(OpsTest, RotaryPreservesNorm) {
  Tensor x({3, 2, 8});
  FillNormal(x, 6, 1.0f);
  float norm_before = 0.0f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    norm_before += x[i] * x[i];
  }
  ApplyRotaryInPlace(x, {5, 17, 129}, 10000.0f);
  float norm_after = 0.0f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    norm_after += x[i] * x[i];
  }
  EXPECT_NEAR(norm_before, norm_after, 1e-3f);
}

TEST(OpsTest, RotaryDotProductDependsOnRelativePositionOnly) {
  // The defining property of RoPE: <R(p)q, R(p+d)k> depends only on d.
  const int64_t head_dim = 16;
  Tensor q({1, 1, head_dim});
  Tensor k({1, 1, head_dim});
  FillNormal(q, 7, 1.0f);
  FillNormal(k, 8, 1.0f);

  auto rotated_dot = [&](int64_t pos_q, int64_t pos_k) {
    Tensor q2 = q;
    Tensor k2 = k;
    ApplyRotaryInPlace(q2, {pos_q}, 10000.0f);
    ApplyRotaryInPlace(k2, {pos_k}, 10000.0f);
    float dot = 0.0f;
    for (int64_t i = 0; i < head_dim; ++i) {
      dot += q2[i] * k2[i];
    }
    return dot;
  };

  EXPECT_NEAR(rotated_dot(0, 4), rotated_dot(10, 14), 1e-3f);
  EXPECT_NEAR(rotated_dot(3, 3), rotated_dot(100, 100), 1e-3f);
}

TEST(OpsTest, FillNormalDeterministic) {
  Tensor a({100});
  Tensor b({100});
  FillNormal(a, 42, 1.0f);
  FillNormal(b, 42, 1.0f);
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 0.0f);
}

}  // namespace
}  // namespace pensieve

// Tests for the command-line flag parser.

#include <gtest/gtest.h>

#include "src/common/flags.h"

namespace pensieve {
namespace {

FlagParser MakeParser() {
  FlagParser flags;
  flags.AddString("name", "default", "a string");
  flags.AddInt("count", 7, "an int");
  flags.AddDouble("rate", 1.5, "a double");
  flags.AddBool("verbose", false, "a bool");
  return flags;
}

std::vector<char*> Argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (std::string& a : args) {
    argv.push_back(a.data());
  }
  return argv;
}

TEST(FlagsTest, DefaultsApplyWithoutArguments) {
  FlagParser flags = MakeParser();
  std::vector<std::string> args;
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 1.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser flags = MakeParser();
  std::vector<std::string> args = {"--name=abc", "--count=42", "--rate=0.25",
                                   "--verbose=true"};
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetString("name"), "abc");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, SpaceSeparatedValues) {
  FlagParser flags = MakeParser();
  std::vector<std::string> args = {"--name", "xyz", "--count", "-3"};
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags.GetString("name"), "xyz");
  EXPECT_EQ(flags.GetInt("count"), -3);
}

TEST(FlagsTest, BareBoolMeansTrue) {
  FlagParser flags = MakeParser();
  std::vector<std::string> args = {"--verbose"};
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagParser flags = MakeParser();
  std::vector<std::string> args = {"input.txt", "--count=1", "output.txt"};
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser flags = MakeParser();
  std::vector<std::string> args = {"--nope=1"};
  auto argv = Argv(args);
  EXPECT_EQ(flags.Parse(static_cast<int>(argv.size()), argv.data()).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, MalformedValuesRejected) {
  {
    FlagParser flags = MakeParser();
    std::vector<std::string> args = {"--count=twelve"};
    auto argv = Argv(args);
    EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  }
  {
    FlagParser flags = MakeParser();
    std::vector<std::string> args = {"--rate=fast"};
    auto argv = Argv(args);
    EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  }
  {
    FlagParser flags = MakeParser();
    std::vector<std::string> args = {"--verbose=maybe"};
    auto argv = Argv(args);
    EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  }
}

TEST(FlagsTest, MissingValueRejected) {
  FlagParser flags = MakeParser();
  std::vector<std::string> args = {"--name"};
  auto argv = Argv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, HelpListsEveryFlag) {
  FlagParser flags = MakeParser();
  const std::string help = flags.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("--rate"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
}

}  // namespace
}  // namespace pensieve

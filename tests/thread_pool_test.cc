// Tests for the intra-op thread pool (src/common/thread_pool).
//
// The pool underpins the determinism contract of every parallel kernel, so
// beyond basic coverage these tests pin down the edge semantics the kernels
// rely on: inline fallback for small ranges and nested calls, exception
// propagation, and stable reuse across many dispatches.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace pensieve {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr int64_t kN = 10000;
  std::vector<int> hits(kN, 0);
  pool.ParallelFor(0, kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      ++hits[static_cast<size_t>(i)];  // chunks are disjoint, no race
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NonZeroBeginIsRespected) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, 200, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) {
      local += i;
    }
    sum += local;
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { called = true; });
  pool.ParallelFor(7, 3, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleElementRunsInlineOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(3, 4, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(begin, 3);
    EXPECT_EQ(end, 4);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, GrainBoundsChunkSizeAndForcesInline) {
  ThreadPool pool(8);
  // n <= grain: one inline call covering the whole range.
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(
      0, 64,
      [&](int64_t begin, int64_t end) {
        EXPECT_EQ(begin, 0);
        EXPECT_EQ(end, 64);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls;
      },
      /*grain=*/64);
  EXPECT_EQ(calls, 1);
  // n > grain: chunk_size = max(30, ceil(100/8)) = 30, so every chunk except
  // the tail holds at least `grain` indices.
  std::atomic<int> small_chunks{0};
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(
      0, 100,
      [&](int64_t begin, int64_t end) {
        covered += end - begin;
        if (end - begin < 30 && end != 100) {
          ++small_chunks;  // only the tail chunk may be short
        }
      },
      /*grain=*/30);
  EXPECT_EQ(covered.load(), 100);
  EXPECT_EQ(small_chunks.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, 1000, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (int64_t i = begin; i < end; ++i) {
      ++hits[static_cast<size_t>(i)];
    }
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000,
                       [&](int64_t begin, int64_t end) {
                         for (int64_t i = begin; i < end; ++i) {
                           if (i == 617) {
                             throw std::runtime_error("boom");
                           }
                         }
                       }),
      std::runtime_error);
  // The pool survives a throwing task and keeps working.
  std::atomic<int64_t> count{0};
  pool.ParallelFor(0, 100, [&](int64_t begin, int64_t end) { count += end - begin; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, InlineExceptionAlsoPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(
                   0, 10, [](int64_t, int64_t) { throw std::logic_error("inline"); }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedCallFallsBackInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> inner_total{0};
  std::atomic<bool> inner_same_thread{true};
  pool.ParallelFor(0, 8, [&](int64_t begin, int64_t end) {
    const std::thread::id outer_thread = std::this_thread::get_id();
    for (int64_t i = begin; i < end; ++i) {
      // A nested ParallelFor must run inline on the chunk's thread — even
      // for a range big enough to otherwise go parallel.
      pool.ParallelFor(0, 5000, [&](int64_t inner_begin, int64_t inner_end) {
        if (std::this_thread::get_id() != outer_thread) {
          inner_same_thread = false;
        }
        inner_total += inner_end - inner_begin;
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 5000);
  EXPECT_TRUE(inner_same_thread.load());
}

TEST(ThreadPoolTest, ReuseAcrossManyDispatches) {
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 1000, [&](int64_t begin, int64_t end) {
      int64_t local = 0;
      for (int64_t i = begin; i < end; ++i) {
        local += i;
      }
      sum += local;
    });
    ASSERT_EQ(sum.load(), 999 * 1000 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, OversubscriptionBeyondHardwareWorks) {
  // More threads than cores must still terminate and cover the range.
  ThreadPool pool(16);
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(0, 4096, [&](int64_t begin, int64_t end) { covered += end - begin; });
  EXPECT_EQ(covered.load(), 4096);
}

TEST(ThreadPoolTest, DefaultThreadsHonorsEnvVar) {
  const char* saved = std::getenv("PENSIEVE_THREADS");
  const std::string saved_copy = saved != nullptr ? saved : "";
  setenv("PENSIEVE_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 3);
  setenv("PENSIEVE_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);  // falls back to hardware
  if (saved != nullptr) {
    setenv("PENSIEVE_THREADS", saved_copy.c_str(), 1);
  } else {
    unsetenv("PENSIEVE_THREADS");
  }
}

TEST(ThreadPoolTest, GlobalPoolResizes) {
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 2);
  std::atomic<int64_t> covered{0};
  ParallelFor(0, 1000, [&](int64_t begin, int64_t end) { covered += end - begin; });
  EXPECT_EQ(covered.load(), 1000);
  ThreadPool::SetGlobalThreads(0);  // back to default for other tests
  EXPECT_EQ(ThreadPool::Global().num_threads(), ThreadPool::DefaultThreads());
}

TEST(ThreadPoolTest, GrainForItemCostScalesInversely) {
  EXPECT_EQ(GrainForItemCost(32 * 1024), 1);
  EXPECT_EQ(GrainForItemCost(16 * 1024), 2);
  EXPECT_EQ(GrainForItemCost(1), 32 * 1024);
  EXPECT_EQ(GrainForItemCost(0), 32 * 1024);    // clamped item cost
  EXPECT_EQ(GrainForItemCost(1 << 30), 1);      // never below 1
}

}  // namespace
}  // namespace pensieve

// Unit tests for src/common: status, rng, stats, interp.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/interp.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"

namespace pensieve {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ResourceExhausted("no blocks");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "no blocks");
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: no blocks");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::InvalidArgument("bad"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) != b.UniformInt(0, 1000000)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 90);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(60.0);
  }
  EXPECT_NEAR(sum / n, 60.0, 2.0);
}

TEST(RngTest, LogNormalMatchesTargetMoments) {
  Rng rng(3);
  const double target_mean = 204.58;
  const double target_std = 180.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.LogNormalWithMean(target_mean, target_std);
    sum += v;
    sum_sq += v * v;
    EXPECT_GT(v, 0.0);
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, target_mean, target_mean * 0.05);
  EXPECT_NEAR(std::sqrt(var), target_std, target_std * 0.10);
}

TEST(RngTest, GeometricAtLeastOneHasCorrectMean) {
  Rng rng(4);
  const double p = 1.0 / 5.56;  // ShareGPT's mean turn count
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.GeometricAtLeastOne(p);
    EXPECT_GE(v, 1);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 5.56, 0.15);
}

TEST(RngTest, PoissonMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(3.5));
  }
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.Fork();
  // The child stream should not simply mirror the parent.
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.UniformInt(0, 1 << 30) != child.UniformInt(0, 1 << 30)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 45);
}

// --- SampleStats -------------------------------------------------------------

TEST(SampleStatsTest, BasicMoments) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(SampleStatsTest, PercentileInterpolates) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(s.Percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.Percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(0.9), 90.1, 1e-9);
}

TEST(SampleStatsTest, SingleSamplePercentile) {
  SampleStats s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.9), 7.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

TEST(SampleStatsTest, MergeCombines) {
  SampleStats a;
  SampleStats b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(SampleStatsTest, StddevOfConstantIsZero) {
  SampleStats s;
  for (int i = 0; i < 10; ++i) {
    s.Add(5.0);
  }
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bucket 0
  h.Add(9.5);   // bucket 4
  h.Add(-3.0);  // clamps to bucket 0
  h.Add(42.0);  // clamps to bucket 4
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 2.0);
}

// --- InterpTable -------------------------------------------------------------

TEST(InterpTest, ExactAtKnots) {
  InterpTable t;
  t.AddPoint(1.0, 10.0);
  t.AddPoint(2.0, 20.0);
  t.AddPoint(4.0, 80.0);
  EXPECT_DOUBLE_EQ(t.Eval(1.0), 10.0);
  EXPECT_DOUBLE_EQ(t.Eval(2.0), 20.0);
  EXPECT_DOUBLE_EQ(t.Eval(4.0), 80.0);
}

TEST(InterpTest, LinearBetweenKnots) {
  InterpTable t;
  t.AddPoint(0.0, 0.0);
  t.AddPoint(10.0, 100.0);
  EXPECT_DOUBLE_EQ(t.Eval(2.5), 25.0);
  EXPECT_DOUBLE_EQ(t.Eval(7.5), 75.0);
}

TEST(InterpTest, ExtrapolatesWithEndSlopes) {
  InterpTable t;
  t.AddPoint(1.0, 1.0);
  t.AddPoint(2.0, 3.0);  // slope 2
  t.AddPoint(3.0, 4.0);  // slope 1
  EXPECT_DOUBLE_EQ(t.Eval(0.0), -1.0);  // 1 - 2*1
  EXPECT_DOUBLE_EQ(t.Eval(5.0), 6.0);   // 4 + 1*2
}

TEST(InterpTest, SinglePointIsConstant) {
  InterpTable t;
  t.AddPoint(5.0, 42.0);
  EXPECT_DOUBLE_EQ(t.Eval(-100.0), 42.0);
  EXPECT_DOUBLE_EQ(t.Eval(100.0), 42.0);
}

TEST(InterpTest, PowerOfTwoProfileInterpolation) {
  // Mirrors the paper's profiling scheme: knots at powers of two; the
  // interpolated cost between knots must be monotone for a linear cost.
  InterpTable t;
  for (int64_t ctx = 32; ctx <= 16384; ctx *= 2) {
    t.AddPoint(static_cast<double>(ctx), 1e-6 * static_cast<double>(ctx) + 5e-4);
  }
  double prev = 0.0;
  for (int64_t ctx = 32; ctx <= 16384; ctx += 111) {
    const double v = t.Eval(static_cast<double>(ctx));
    EXPECT_GT(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace pensieve

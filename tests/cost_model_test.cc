// Tests for the hardware simulator (src/sim): cost model, PCIe link, stalls.

#include <gtest/gtest.h>

#include "src/model/model_config.h"
#include "src/sim/cost_model.h"
#include "src/sim/hardware.h"
#include "src/sim/pcie_link.h"
#include "src/sim/virtual_clock.h"

namespace pensieve {
namespace {

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

// --- VirtualClock -------------------------------------------------------------

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.Advance(1.5);
  clock.AdvanceTo(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(VirtualClockDeathTest, RejectsTimeTravel) {
  VirtualClock clock;
  clock.Advance(5.0);
  EXPECT_DEATH(clock.AdvanceTo(4.0), "Check failed");
}

// --- GpuCostModel --------------------------------------------------------------

TEST(CostModelTest, MarginalLinearTimeScalesExactly) {
  GpuCostModel m = Opt13BModel();
  EXPECT_NEAR(m.MarginalLinearTime(200) / m.MarginalLinearTime(100), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.MarginalLinearTime(0), 0.0);
}

TEST(CostModelTest, LinearTimeReflectsSmallBatchUnderutilization) {
  GpuCostModel m = Opt13BModel();
  EXPECT_DOUBLE_EQ(m.LinearTime(0), 0.0);
  // Per-token dense cost shrinks as the batch grows (GEMM utilization).
  const double small = m.LinearTime(32) / 32.0;
  const double large = m.LinearTime(4096) / 4096.0;
  EXPECT_GT(small, 1.5 * large);
  // At large batches the whole-step cost approaches the marginal cost.
  EXPECT_NEAR(m.LinearTime(8192), m.MarginalLinearTime(8192),
              m.MarginalLinearTime(8192) * 0.05);
  // Sub-linear doubling in the ramp-up region.
  const double ratio = m.LinearTime(200) / m.LinearTime(100);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.0);
}

TEST(CostModelTest, AttentionTimeGrowsLinearlyWithContext) {
  // Paper Figure 4: attention cost of a fixed-size chunk grows linearly
  // with context length.
  GpuCostModel m = Opt13BModel();
  const double t1k = m.AttentionTime(32, 1024);
  const double t2k = m.AttentionTime(32, 2048);
  const double t4k = m.AttentionTime(32, 4096);
  EXPECT_NEAR(t2k / t1k, 2.0, 0.1);
  EXPECT_NEAR(t4k / t2k, 2.0, 0.1);
}

TEST(CostModelTest, Figure4CrossoverShape) {
  // Figure 4 normalizes attention time by non-attention time for a 32-token
  // chunk; the ratio must start well below 1 at small contexts and grow
  // past 1 for multi-thousand-token contexts.
  GpuCostModel m = Opt13BModel();
  const double other = m.MarginalLinearTime(32);
  EXPECT_LT(m.AttentionTime(32, 128) / other, 0.5);
  EXPECT_GT(m.AttentionTime(32, 16384) / other, 1.0);
}

TEST(CostModelTest, DecodeStepIsMemoryBoundAtSmallBatch) {
  // A single-token decode step is dominated by reading the weights once.
  GpuCostModel m = Opt13BModel();
  std::vector<GpuCostModel::BatchItem> batch = {{1, 512}};
  const double step = m.StepTime(batch);
  EXPECT_GE(step, m.WeightReadTime());
  // And the weight read itself dwarfs the math for one token.
  EXPECT_GT(m.WeightReadTime(), m.MarginalLinearTime(1));
}

TEST(CostModelTest, PrefillOutgrowsGenerationWithHistory) {
  // Paper Figure 3: prefill of 200 prompt tokens with a growing history
  // eventually costs more than 200 generation steps... per-step, the
  // prefill step cost grows linearly in history length.
  GpuCostModel m = Opt13BModel();
  std::vector<GpuCostModel::BatchItem> no_history(32, {200, 200});
  std::vector<GpuCostModel::BatchItem> with_history(32, {200 + 4000, 200 + 4000});
  EXPECT_GT(m.StepTime(with_history), 3.0 * m.StepTime(no_history));
}

TEST(CostModelTest, StepTimeEmptyBatchIsZero) {
  GpuCostModel m = Opt13BModel();
  EXPECT_DOUBLE_EQ(m.StepTime({}), 0.0);
}

TEST(CostModelTest, MultiGpuSpeedsUpCompute) {
  GpuCostModel one(Opt13BConfig(), A100Spec(1));
  ModelConfig quad_model = Opt13BConfig();
  quad_model.num_gpus = 4;
  GpuCostModel four(quad_model, A100Spec(4));
  std::vector<GpuCostModel::BatchItem> batch = {{2048, 2048}};
  EXPECT_LT(four.StepTime(batch), one.StepTime(batch));
  // KV per GPU shrinks accordingly.
  EXPECT_EQ(four.KvBytesPerToken(), one.KvBytesPerToken() / 4);
}

TEST(CostModelTest, SwapTimeProportionalToTokens) {
  GpuCostModel m = Opt13BModel();
  EXPECT_NEAR(m.SwapTime(64) / m.SwapTime(32), 2.0, 1e-9);
  // 32 OPT-13B tokens = 32 * 0.78 MiB ~ 25 MB over 25 GB/s ~ 1 ms.
  EXPECT_NEAR(m.SwapTime(32), 1.0e-3, 0.3e-3);
}

TEST(CostModelTest, ChunkRecomputeCostMonotoneInContext) {
  GpuCostModel m = Opt13BModel();
  double prev = 0.0;
  for (int64_t ctx = 32; ctx <= 16384; ctx *= 2) {
    const double cost = m.ChunkRecomputeCost(32, ctx);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(CostModelTest, GqaModelHasCheaperAttentionMemoryTraffic) {
  GpuCostModel opt(Opt13BConfig(), A100Spec(1));
  GpuCostModel llama(Llama2_13BConfig(), A100Spec(1));
  // Same context: Llama's GQA KV is 4x smaller, so memory-bound decode
  // attention is cheaper.
  EXPECT_LT(llama.AttentionTime(1, 8192), opt.AttentionTime(1, 8192));
}

// --- RestoreStall --------------------------------------------------------------

TEST(RestoreStallTest, NoTransferNoStall) {
  EXPECT_DOUBLE_EQ(RestoreStall(0.01, 0.0, 40, true), 0.0);
}

TEST(RestoreStallTest, BlockingModePaysFullTransfer) {
  EXPECT_DOUBLE_EQ(RestoreStall(0.01, 0.005, 40, false), 0.005);
}

TEST(RestoreStallTest, PipelinedHidesTransferBehindCompute) {
  // Transfer shorter than compute: only the first-layer slice is exposed.
  const double stall = RestoreStall(0.010, 0.005, 40, true);
  EXPECT_LT(stall, 0.005);
  EXPECT_NEAR(stall, 0.005 / 40, 1e-6);
}

TEST(RestoreStallTest, PipelinedExposesTransferOverhang) {
  // Transfer much longer than compute: stall approaches transfer - compute.
  const double stall = RestoreStall(0.002, 0.020, 40, true);
  EXPECT_GT(stall, 0.017);
  EXPECT_LT(stall, 0.020);
}

TEST(RestoreStallTest, PipelinedNeverWorseThanBlocking) {
  for (double compute : {0.001, 0.01, 0.1}) {
    for (double transfer : {0.0005, 0.005, 0.05}) {
      EXPECT_LE(RestoreStall(compute, transfer, 40, true),
                RestoreStall(compute, transfer, 40, false) + 1e-12);
    }
  }
}

// --- PcieLink -------------------------------------------------------------------

TEST(PcieLinkTest, SingleTransferTakesBytesOverBandwidth) {
  PcieLink link(25e9, 0.8, true);
  const double done = link.ScheduleHostToDevice(0.0, 25e9);
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST(PcieLinkTest, SameDirectionTransfersQueue) {
  PcieLink link(10e9, 0.8, true);
  link.ScheduleHostToDevice(0.0, 10e9);           // finishes at 1.0
  const double done = link.ScheduleHostToDevice(0.5, 10e9);
  EXPECT_NEAR(done, 2.0, 1e-9);
}

TEST(PcieLinkTest, PrioritizedEvictionWaitsForSwapIn) {
  // Paper §5: device-to-host eviction waits for in-flight swap-ins.
  PcieLink link(10e9, 0.8, /*prioritize_h2d=*/true);
  link.ScheduleHostToDevice(0.0, 10e9);  // busy until 1.0
  const double done = link.ScheduleDeviceToHost(0.2, 5e9);
  // Starts at 1.0 (after the swap-in), full bandwidth: 0.5s.
  EXPECT_NEAR(done, 1.5, 1e-9);
}

TEST(PcieLinkTest, DuplexPenaltyWithoutPrioritization) {
  PcieLink link(10e9, 0.8, /*prioritize_h2d=*/false);
  link.ScheduleHostToDevice(0.0, 10e9);  // busy until 1.0
  const double done = link.ScheduleDeviceToHost(0.0, 8e9);
  // Concurrent: effective bandwidth 8 GB/s -> 1.0s.
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST(PcieLinkTest, NoPenaltyWhenOtherDirectionIdle) {
  PcieLink link(10e9, 0.8, false);
  const double done = link.ScheduleDeviceToHost(2.0, 10e9);
  EXPECT_NEAR(done, 3.0, 1e-9);
}

TEST(PcieLinkTest, TracksTotals) {
  PcieLink link(10e9, 0.8, true);
  link.ScheduleHostToDevice(0.0, 100.0);
  link.ScheduleHostToDevice(0.0, 50.0);
  link.ScheduleDeviceToHost(0.0, 25.0);
  EXPECT_DOUBLE_EQ(link.total_h2d_bytes(), 150.0);
  EXPECT_DOUBLE_EQ(link.total_d2h_bytes(), 25.0);
}

// --- Hardware spec ---------------------------------------------------------------

TEST(HardwareTest, A100SpecDefaults) {
  HardwareSpec hw = A100Spec(4);
  EXPECT_EQ(hw.num_gpus, 4);
  EXPECT_EQ(hw.gpu_kv_cache_bytes, 40LL * 1024 * 1024 * 1024);
  EXPECT_GT(hw.pcie_duplex_factor, 0.75);
  EXPECT_LT(hw.pcie_duplex_factor, 0.85);  // paper: 18-20% drop
}

}  // namespace
}  // namespace pensieve

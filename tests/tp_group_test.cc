// Tests for the tensor-parallel worker group (paper Â§4.4.2).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/tp_group.h"

namespace pensieve {
namespace {

// --- TpLinkGroup ---------------------------------------------------------------

TEST(TpLinkGroupTest, IdenticalLinksFinishTogether) {
  TpLinkGroup group(4, 10e9, 0.8, true);
  const double done = group.ScheduleHostToDevice(0.0, 5e9);
  EXPECT_NEAR(done, 0.5, 1e-9);
  for (int w = 0; w < 4; ++w) {
    EXPECT_NEAR(group.link(w).h2d_busy_until(), 0.5, 1e-9);
  }
}

TEST(TpLinkGroupTest, SkewedWorkerDelaysGroupCompletion) {
  TpLinkGroup group(4, 10e9, 0.8, true);
  // Worker 2's link is busy with an unrelated transfer until t = 1.0.
  group.link(2).ScheduleHostToDevice(0.0, 10e9);
  const double done = group.ScheduleHostToDevice(0.0, 5e9);
  // Workers 0/1/3 finish at 0.5, worker 2 at 1.5: the group (and thus the
  // layer's attention) waits for the slowest partition.
  EXPECT_NEAR(done, 1.5, 1e-9);
}

TEST(TpLinkGroupTest, EvictionWaitsPerWorker) {
  TpLinkGroup group(2, 10e9, 0.8, /*prioritize_h2d=*/true);
  group.ScheduleHostToDevice(0.0, 10e9);  // busy until 1.0 on both
  const double done = group.ScheduleDeviceToHost(0.0, 5e9);
  EXPECT_NEAR(done, 1.5, 1e-9);  // waits for the swap-in, then 0.5s
}

TEST(TpLinkGroupTest, PerWorkerBytesNotTotal) {
  // A chunk's KV is split feature-wise: each worker moves 1/N of the bytes,
  // so N workers move a chunk in the time one worker moves 1/N of it.
  TpLinkGroup one(1, 10e9, 0.8, true);
  TpLinkGroup four(4, 10e9, 0.8, true);
  const double total_bytes = 8e9;
  const double t1 = one.ScheduleHostToDevice(0.0, total_bytes);
  const double t4 = four.ScheduleHostToDevice(0.0, total_bytes / 4);
  EXPECT_NEAR(t1, 0.8, 1e-9);
  EXPECT_NEAR(t4, 0.2, 1e-9);
}

// --- TpWorkerGroup ---------------------------------------------------------------

CachePlan MakePlan(int64_t step, std::vector<CachePlan::Op> ops) {
  CachePlan plan;
  plan.step_id = step;
  plan.ops = std::move(ops);
  return plan;
}

TEST(TpWorkerGroupTest, MirroredAllocationStaysConsistent) {
  TpWorkerGroup group(4, 8, 8);
  ASSERT_TRUE(group
                  .ApplyToAll(MakePlan(0, {{CachePlan::OpKind::kAllocateGpu, 0},
                                           {CachePlan::OpKind::kAllocateGpu, 0},
                                           {CachePlan::OpKind::kAllocateCpu, 0}}))
                  .ok());
  EXPECT_TRUE(group.ReplicasConsistent());
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(group.gpu_free(w), 6);
    EXPECT_EQ(group.cpu_free(w), 7);
    EXPECT_EQ(group.last_applied_step(w), 0);
  }
}

TEST(TpWorkerGroupTest, FreeOfAllocatedBlockSucceedsEverywhere) {
  TpWorkerGroup group(2, 4, 4);
  ASSERT_TRUE(
      group.ApplyToAll(MakePlan(0, {{CachePlan::OpKind::kAllocateGpu, 0}})).ok());
  // The deterministic LIFO allocator hands out block 0 first, on every
  // replica alike.
  ASSERT_TRUE(group.IsGpuAllocated(0, 0));
  ASSERT_TRUE(group.IsGpuAllocated(1, 0));
  ASSERT_TRUE(group.ApplyToAll(MakePlan(1, {{CachePlan::OpKind::kFreeGpu, 0}})).ok());
  EXPECT_EQ(group.gpu_free(0), 4);
  EXPECT_TRUE(group.ReplicasConsistent());
}

TEST(TpWorkerGroupTest, RejectsOverAllocation) {
  TpWorkerGroup group(2, 2, 2);
  CachePlan plan = MakePlan(0, {{CachePlan::OpKind::kAllocateGpu, 0},
                                {CachePlan::OpKind::kAllocateGpu, 0},
                                {CachePlan::OpKind::kAllocateGpu, 0}});
  Status status = group.ApplyToAll(plan);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Rejection is atomic: no replica applied anything.
  EXPECT_EQ(group.gpu_free(0), 2);
  EXPECT_EQ(group.gpu_free(1), 2);
}

TEST(TpWorkerGroupTest, RejectsBadFrees) {
  TpWorkerGroup group(2, 4, 4);
  EXPECT_EQ(group.ApplyToAll(MakePlan(0, {{CachePlan::OpKind::kFreeGpu, 1}})).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(group.ApplyToAll(MakePlan(0, {{CachePlan::OpKind::kFreeGpu, 99}})).code(),
            StatusCode::kInvalidArgument);
  // Double-free within one plan.
  ASSERT_TRUE(
      group.ApplyToAll(MakePlan(0, {{CachePlan::OpKind::kAllocateGpu, 0}})).ok());
  EXPECT_EQ(group
                .ApplyToAll(MakePlan(1, {{CachePlan::OpKind::kFreeGpu, 0},
                                         {CachePlan::OpKind::kFreeGpu, 0}}))
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(TpWorkerGroupTest, PlansMustApplyInOrder) {
  TpWorkerGroup group(2, 4, 4);
  ASSERT_TRUE(
      group.ApplyToAll(MakePlan(5, {{CachePlan::OpKind::kAllocateGpu, 0}})).ok());
  EXPECT_DEATH(
      (void)group.ApplyToAll(MakePlan(5, {{CachePlan::OpKind::kAllocateGpu, 0}})),
      "plans must be applied in order");
}

TEST(TpWorkerGroupTest, RandomPlansNeverDiverge) {
  Rng rng(99);
  constexpr int64_t kBlocks = 16;
  TpWorkerGroup group(4, kBlocks, kBlocks);
  for (int64_t step = 0; step < 500; ++step) {
    CachePlan plan;
    plan.step_id = step;
    int64_t gpu_free = group.gpu_free(0);
    int64_t cpu_free = group.cpu_free(0);
    // Blocks currently allocated on (mirrored) replica 0, minus frees
    // already queued in this plan.
    std::vector<BlockId> gpu_freeable;
    for (BlockId b = 0; b < kBlocks; ++b) {
      if (group.IsGpuAllocated(0, b)) {
        gpu_freeable.push_back(b);
      }
    }
    const int n_ops = static_cast<int>(rng.UniformInt(1, 5));
    for (int i = 0; i < n_ops; ++i) {
      const int choice = static_cast<int>(rng.UniformInt(0, 2));
      if (choice == 0 && gpu_free > 0) {
        plan.ops.push_back({CachePlan::OpKind::kAllocateGpu, 0});
        --gpu_free;
      } else if (choice == 1 && !gpu_freeable.empty()) {
        const size_t idx = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(gpu_freeable.size()) - 1));
        plan.ops.push_back({CachePlan::OpKind::kFreeGpu, gpu_freeable[idx]});
        gpu_freeable.erase(gpu_freeable.begin() + static_cast<int64_t>(idx));
      } else if (cpu_free > 0) {
        plan.ops.push_back({CachePlan::OpKind::kAllocateCpu, 0});
        --cpu_free;
      }
    }
    Status status = group.ApplyToAll(plan);
    ASSERT_TRUE(status.ok()) << status << " at step " << step;
    ASSERT_TRUE(group.ReplicasConsistent()) << "step " << step;
  }
}

}  // namespace
}  // namespace pensieve

// End-to-end numeric tests for the stateful serving API.
//
// The central property: Pensieve's stateful serving — with KV reuse, swaps
// and dropped-prefix recomputation — produces exactly the same tokens as
// stateless serving that reprocesses the full conversation from scratch at
// every turn.

#include <gtest/gtest.h>

#include "src/core/stateful_server.h"
#include "src/model/model_config.h"
#include "src/workload/dataset.h"

namespace pensieve {
namespace {

StatefulServerConfig TinyConfig(const ModelConfig& model, int64_t gpu_blocks = 64,
                                int64_t cpu_blocks = 128) {
  StatefulServerConfig config;
  config.model = model;
  config.block_size = 8;
  config.num_gpu_blocks = gpu_blocks;
  config.num_cpu_blocks = cpu_blocks;
  config.weight_seed = 99;
  return config;
}

std::vector<int32_t> MakePrompt(int64_t conv, int64_t start, int64_t len,
                                int32_t vocab) {
  std::vector<int32_t> prompt;
  prompt.reserve(static_cast<size_t>(len));
  for (int64_t i = 0; i < len; ++i) {
    prompt.push_back(SyntheticToken(conv, start + i, vocab));
  }
  return prompt;
}

// Serves `turns` via a fresh stateless server per turn: each turn replays
// the full raw history as the prompt. Returns per-turn outputs.
std::vector<std::vector<int32_t>> StatelessReference(
    const ModelConfig& model, const std::vector<std::vector<int32_t>>& prompts,
    int64_t output_len) {
  std::vector<std::vector<int32_t>> outputs;
  std::vector<int32_t> history;
  for (const std::vector<int32_t>& prompt : prompts) {
    StatefulLlmServer fresh(TinyConfig(model, 256, 256));
    std::vector<int32_t> full_prompt = history;
    full_prompt.insert(full_prompt.end(), prompt.begin(), prompt.end());
    auto result = fresh.Chat(/*conversation_id=*/0, full_prompt, output_len);
    EXPECT_TRUE(result.ok()) << result.status();
    outputs.push_back(result.value());
    history = full_prompt;
    history.insert(history.end(), result.value().begin(), result.value().end());
  }
  return outputs;
}

class EquivalenceTest : public ::testing::TestWithParam<const char*> {
 protected:
  ModelConfig Model() const {
    ModelConfig model;
    EXPECT_TRUE(ModelConfigByName(GetParam(), &model));
    return model;
  }
};

TEST_P(EquivalenceTest, StatefulMatchesStatelessAcrossTurns) {
  const ModelConfig model = Model();
  const std::vector<std::vector<int32_t>> prompts = {
      MakePrompt(1, 0, 12, static_cast<int32_t>(model.vocab_size)),
      MakePrompt(1, 100, 7, static_cast<int32_t>(model.vocab_size)),
      MakePrompt(1, 200, 9, static_cast<int32_t>(model.vocab_size)),
  };
  const int64_t output_len = 6;
  const auto expected = StatelessReference(model, prompts, output_len);

  StatefulLlmServer server(TinyConfig(model));
  for (size_t turn = 0; turn < prompts.size(); ++turn) {
    auto result = server.Chat(7, prompts[turn], output_len);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result.value(), expected[turn]) << "turn " << turn;
  }
}

TEST_P(EquivalenceTest, SwapToCpuBetweenTurnsPreservesOutputs) {
  const ModelConfig model = Model();
  const std::vector<std::vector<int32_t>> prompts = {
      MakePrompt(2, 0, 14, static_cast<int32_t>(model.vocab_size)),
      MakePrompt(2, 50, 8, static_cast<int32_t>(model.vocab_size)),
  };
  const int64_t output_len = 5;
  const auto expected = StatelessReference(model, prompts, output_len);

  StatefulLlmServer server(TinyConfig(model));
  auto t0 = server.Chat(3, prompts[0], output_len);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(t0.value(), expected[0]);
  // Force the whole conversation to the CPU tier; the next turn must swap
  // it back in and produce identical tokens.
  ASSERT_TRUE(server.SwapOutConversation(3).ok());
  EXPECT_EQ(server.cache().Find(3)->TokensOnGpu(), 0);
  auto t1 = server.Chat(3, prompts[1], output_len);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1.value(), expected[1]);
}

TEST_P(EquivalenceTest, DroppedPrefixRecomputationPreservesOutputs) {
  const ModelConfig model = Model();
  const std::vector<std::vector<int32_t>> prompts = {
      MakePrompt(4, 0, 20, static_cast<int32_t>(model.vocab_size)),
      MakePrompt(4, 60, 6, static_cast<int32_t>(model.vocab_size)),
  };
  const int64_t output_len = 5;
  const auto expected = StatelessReference(model, prompts, output_len);

  StatefulLlmServer server(TinyConfig(model));
  auto t0 = server.Chat(5, prompts[0], output_len);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(t0.value(), expected[0]);
  // Drop the first two chunks: turn 2 must recompute them from raw history
  // via the sub-request split and still match the stateless reference.
  ASSERT_TRUE(server.DropLeadingChunks(5, 2).ok());
  EXPECT_GT(server.cache().Find(5)->LeadingDroppedTokens(), 0);
  auto t1 = server.Chat(5, prompts[1], output_len);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1.value(), expected[1]);
}

TEST_P(EquivalenceTest, MixedSwapAndDropPreservesOutputs) {
  const ModelConfig model = Model();
  const std::vector<std::vector<int32_t>> prompts = {
      MakePrompt(6, 0, 24, static_cast<int32_t>(model.vocab_size)),
      MakePrompt(6, 70, 5, static_cast<int32_t>(model.vocab_size)),
      MakePrompt(6, 140, 7, static_cast<int32_t>(model.vocab_size)),
  };
  const int64_t output_len = 4;
  const auto expected = StatelessReference(model, prompts, output_len);

  StatefulLlmServer server(TinyConfig(model));
  auto t0 = server.Chat(9, prompts[0], output_len);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(t0.value(), expected[0]);
  // Drop the first chunk, swap the rest to CPU.
  ASSERT_TRUE(server.DropLeadingChunks(9, 1).ok());
  ASSERT_TRUE(server.SwapOutConversation(9).ok());
  auto t1 = server.Chat(9, prompts[1], output_len);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1.value(), expected[1]);
  // And once more with only a swap.
  ASSERT_TRUE(server.SwapOutConversation(9).ok());
  auto t2 = server.Chat(9, prompts[2], output_len);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2.value(), expected[2]);
}

INSTANTIATE_TEST_SUITE_P(Models, EquivalenceTest,
                         ::testing::Values("tiny-opt", "tiny-llama"));

TEST(StatefulServerTest, HistoryTracksPromptsAndOutputs) {
  ModelConfig model = TinyOptConfig();
  StatefulLlmServer server(TinyConfig(model));
  auto prompt = MakePrompt(1, 0, 10, 128);
  auto result = server.Chat(1, prompt, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(server.History(1).size(), 14u);
  // KV covers everything except the pending final token.
  EXPECT_EQ(server.cache().Find(1)->kv_len(), 13);
}

TEST(StatefulServerTest, MultipleIndependentConversations) {
  ModelConfig model = TinyOptConfig();
  StatefulLlmServer server(TinyConfig(model));
  auto p1 = MakePrompt(1, 0, 10, 128);
  auto p2 = MakePrompt(2, 0, 10, 128);
  auto r1 = server.Chat(1, p1, 5);
  auto r2 = server.Chat(2, p2, 5);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Different prompts give different generations (overwhelmingly likely).
  EXPECT_NE(r1.value(), r2.value());
  // Conversation 1's second turn unaffected by conversation 2's existence.
  auto follow = server.Chat(1, MakePrompt(1, 50, 5, 128), 3);
  ASSERT_TRUE(follow.ok());
}

TEST(StatefulServerTest, EndConversationReleasesState) {
  ModelConfig model = TinyOptConfig();
  StatefulLlmServer server(TinyConfig(model));
  ASSERT_TRUE(server.Chat(1, MakePrompt(1, 0, 10, 128), 4).ok());
  EXPECT_GT(server.cache().gpu_allocator().num_allocated(), 0);
  server.EndConversation(1);
  EXPECT_EQ(server.cache().gpu_allocator().num_allocated(), 0);
  EXPECT_EQ(server.cache().Find(1), nullptr);
  EXPECT_TRUE(server.History(1).empty());
}

TEST(StatefulServerTest, RejectsBadArguments) {
  ModelConfig model = TinyOptConfig();
  StatefulLlmServer server(TinyConfig(model));
  EXPECT_EQ(server.Chat(1, {}, 4).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Chat(1, {3}, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.SwapOutConversation(42).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.DropLeadingChunks(42, 1).code(), StatusCode::kNotFound);
}

TEST(StatefulServerTest, EvictionUnderGpuPressureAcrossConversations) {
  // A GPU tier too small for all conversations forces the coordinator to
  // evict older conversations; everything must still serve correctly.
  ModelConfig model = TinyOptConfig();
  StatefulServerConfig config = TinyConfig(model, /*gpu_blocks=*/12,
                                           /*cpu_blocks=*/64);
  StatefulLlmServer server(config);
  for (int64_t conv = 1; conv <= 4; ++conv) {
    auto result = server.Chat(conv, MakePrompt(conv, 0, 16, 128), 6);
    ASSERT_TRUE(result.ok()) << "conv " << conv << ": " << result.status();
  }
  server.cache().CheckInvariants();
  // Revisit the first conversation (its chunks were likely evicted).
  auto result = server.Chat(1, MakePrompt(1, 99, 5, 128), 4);
  ASSERT_TRUE(result.ok()) << result.status();
  server.cache().CheckInvariants();
}

TEST(StatefulServerTest, DeterministicAcrossServerInstances) {
  ModelConfig model = TinyLlamaConfig();
  auto prompt = MakePrompt(8, 0, 12, 128);
  StatefulLlmServer a(TinyConfig(model));
  StatefulLlmServer b(TinyConfig(model));
  auto ra = a.Chat(1, prompt, 6);
  auto rb = b.Chat(1, prompt, 6);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value(), rb.value());
}


// --- Shared system prompts (paper footnote 3) --------------------------------

TEST(SharedPrefixTest, PrefixedConversationMatchesMonolithicComputation) {
  // Serving [system prompt ++ user prompt] via a shared prefix must produce
  // exactly the tokens of serving the concatenation monolithically.
  const ModelConfig model = TinyOptConfig();
  std::vector<int32_t> system_prompt = MakePrompt(50, 0, 19, 128);  // 2 chunks + 3
  std::vector<int32_t> user_prompt = MakePrompt(51, 0, 7, 128);

  StatefulLlmServer mono(TinyConfig(model));
  std::vector<int32_t> full = system_prompt;
  full.insert(full.end(), user_prompt.begin(), user_prompt.end());
  auto expected = mono.Chat(1, full, 6);
  ASSERT_TRUE(expected.ok());

  StatefulLlmServer shared(TinyConfig(model));
  auto prefix = shared.RegisterSharedPrefix(system_prompt);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  // block_size = 8: 19 tokens -> 16 shared, 3 re-processed per conversation.
  EXPECT_EQ(shared.SharedPrefixLen(*prefix), 16);
  ASSERT_TRUE(shared.StartConversationWithPrefix(2, *prefix).ok());
  auto got = shared.Chat(2, user_prompt, 6);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), expected.value());
}

TEST(SharedPrefixTest, ManyConversationsShareOnePrefix) {
  const ModelConfig model = TinyLlamaConfig();  // RoPE positions must shift too
  std::vector<int32_t> system_prompt = MakePrompt(60, 0, 16, 128);
  StatefulLlmServer shared(TinyConfig(model));
  auto prefix = shared.RegisterSharedPrefix(system_prompt);
  ASSERT_TRUE(prefix.ok());
  const int64_t blocks_after_prefix = shared.cache().gpu_allocator().num_allocated();

  StatefulLlmServer mono(TinyConfig(model));
  for (int64_t conv = 1; conv <= 3; ++conv) {
    std::vector<int32_t> user = MakePrompt(70 + conv, 0, 5 + conv, 128);
    ASSERT_TRUE(shared.StartConversationWithPrefix(conv, *prefix).ok());
    auto got = shared.Chat(conv, user, 4);
    std::vector<int32_t> full = system_prompt;
    full.insert(full.end(), user.begin(), user.end());
    auto expected = mono.Chat(100 + conv, full, 4);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(got.value(), expected.value()) << "conversation " << conv;
  }
  // The shared prefix occupies its blocks exactly once, not per conversation.
  const int64_t prefix_blocks = blocks_after_prefix;
  EXPECT_EQ(prefix_blocks, 2);  // 16 tokens / block_size 8
}

TEST(SharedPrefixTest, PrefixSurvivesConversationEvictionAndMultiTurn) {
  const ModelConfig model = TinyOptConfig();
  StatefulServerConfig config = TinyConfig(model, /*gpu_blocks=*/24,
                                           /*cpu_blocks=*/32);
  StatefulLlmServer server(config);
  auto prefix = server.RegisterSharedPrefix(MakePrompt(80, 0, 16, 128));
  ASSERT_TRUE(prefix.ok());
  ASSERT_TRUE(server.StartConversationWithPrefix(1, *prefix).ok());
  auto t1 = server.Chat(1, MakePrompt(81, 0, 10, 128), 5);
  ASSERT_TRUE(t1.ok());
  // Evict the conversation (the pinned prefix must stay GPU-resident).
  ASSERT_TRUE(server.SwapOutConversation(1).ok());
  ASSERT_TRUE(server.DropLeadingChunks(1, 1).ok());
  auto t2 = server.Chat(1, MakePrompt(82, 0, 6, 128), 5);
  ASSERT_TRUE(t2.ok()) << t2.status();
  server.cache().CheckInvariants();

  // Compare against a fresh prefixed server with the same turn sequence.
  StatefulLlmServer reference(TinyConfig(model, 256, 256));
  auto ref_prefix = reference.RegisterSharedPrefix(MakePrompt(80, 0, 16, 128));
  ASSERT_TRUE(ref_prefix.ok());
  ASSERT_TRUE(reference.StartConversationWithPrefix(1, *ref_prefix).ok());
  auto r1 = reference.Chat(1, MakePrompt(81, 0, 10, 128), 5);
  auto r2 = reference.Chat(1, MakePrompt(82, 0, 6, 128), 5);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(t1.value(), r1.value());
  EXPECT_EQ(t2.value(), r2.value());
}

TEST(SharedPrefixTest, LifecycleGuards) {
  const ModelConfig model = TinyOptConfig();
  StatefulLlmServer server(TinyConfig(model));
  EXPECT_EQ(server.RegisterSharedPrefix({}).status().code(),
            StatusCode::kInvalidArgument);
  auto prefix = server.RegisterSharedPrefix(MakePrompt(90, 0, 8, 128));
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(server.StartConversationWithPrefix(1, 999).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(server.StartConversationWithPrefix(1, *prefix).ok());
  // Attaching twice, or to a conversation with history, is rejected.
  EXPECT_EQ(server.StartConversationWithPrefix(1, *prefix).code(),
            StatusCode::kFailedPrecondition);
  // Unregister is blocked while attached...
  EXPECT_EQ(server.UnregisterSharedPrefix(*prefix).code(),
            StatusCode::kFailedPrecondition);
  server.EndConversation(1);
  // ...and succeeds (freeing the pinned blocks) once detached.
  EXPECT_TRUE(server.UnregisterSharedPrefix(*prefix).ok());
  EXPECT_EQ(server.cache().gpu_allocator().num_allocated(), 0);
  EXPECT_EQ(server.UnregisterSharedPrefix(*prefix).code(), StatusCode::kNotFound);
}

TEST(SharedPrefixTest, SubChunkPrefixIsFullyRecomputed) {
  // A prefix shorter than one chunk shares nothing but still works.
  const ModelConfig model = TinyOptConfig();
  std::vector<int32_t> tiny_prefix = MakePrompt(95, 0, 5, 128);  // < block_size 8
  std::vector<int32_t> user = MakePrompt(96, 0, 6, 128);

  StatefulLlmServer shared(TinyConfig(model));
  auto prefix = shared.RegisterSharedPrefix(tiny_prefix);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(shared.SharedPrefixLen(*prefix), 0);
  ASSERT_TRUE(shared.StartConversationWithPrefix(1, *prefix).ok());
  auto got = shared.Chat(1, user, 4);
  ASSERT_TRUE(got.ok());

  StatefulLlmServer mono(TinyConfig(model));
  std::vector<int32_t> full = tiny_prefix;
  full.insert(full.end(), user.begin(), user.end());
  auto expected = mono.Chat(1, full, 4);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(got.value(), expected.value());
}

}  // namespace
}  // namespace pensieve

// Randomized stress tests: long random operation sequences against the
// cache state machine, the serving engines, and the numeric server, with
// full invariant audits throughout. These are the tests that catch state
// machine corner cases no hand-written scenario covers.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/core/stateful_server.h"
#include "src/model/model_config.h"
#include "src/scheduler/cache_coordinator.h"
#include "src/serving/pensieve_engine.h"
#include "src/sim/hardware.h"
#include "src/workload/dataset.h"

namespace pensieve {
namespace {

// --- Random walk over the TwoTierKvCache state machine -----------------------

class CacheFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheFuzzTest, RandomOperationSequencePreservesInvariants) {
  Rng rng(GetParam());
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = 24;
  config.num_cpu_blocks = 24;
  TwoTierKvCache cache(config);
  constexpr int64_t kConversations = 6;

  for (int step = 0; step < 2000; ++step) {
    const int64_t conv = rng.UniformInt(0, kConversations - 1);
    const int op = static_cast<int>(rng.UniformInt(0, 6));
    ContextState* state = cache.Find(conv);
    const int64_t chunks = state != nullptr ? state->num_chunks() : 0;
    switch (op) {
      case 0: {  // append a few tokens (ignore exhaustion)
        const int64_t n = rng.UniformInt(1, 6);
        // Appending requires a GPU-resident (or absent) partial tail.
        if (state != nullptr && state->num_chunks() > 0) {
          const Chunk& tail = state->chunk(state->num_chunks() - 1);
          if (tail.num_tokens < config.block_size && !tail.OnGpu()) {
            break;
          }
          if (tail.Dropped()) {
            break;
          }
        }
        (void)cache.AppendTokenSlots(conv, n, nullptr);
        break;
      }
      case 1: {  // swap out a random GPU chunk
        if (chunks == 0) {
          break;
        }
        (void)cache.SwapOut(conv, rng.UniformInt(0, chunks - 1));
        break;
      }
      case 2: {  // reclaim a random clean chunk
        if (chunks == 0) {
          break;
        }
        (void)cache.ReclaimGpu(conv, rng.UniformInt(0, chunks - 1));
        break;
      }
      case 3: {  // swap a random chunk back in
        if (chunks == 0) {
          break;
        }
        (void)cache.SwapIn(conv, rng.UniformInt(0, chunks - 1));
        break;
      }
      case 4: {  // drop the frontier chunk
        if (state == nullptr || chunks == 0) {
          break;
        }
        const int64_t frontier = state->LeadingDroppedChunks();
        if (frontier < chunks) {
          (void)cache.DropChunk(conv, frontier);
        }
        break;
      }
      case 5: {  // restore the last dropped chunk (back-to-front order
                 // preserves the dropped-prefix invariant at every point)
        if (state == nullptr) {
          break;
        }
        const int64_t frontier = state->LeadingDroppedChunks();
        if (frontier > 0) {
          (void)cache.RestoreDropped(conv, frontier - 1);
        }
        break;
      }
      case 6: {  // occasionally release the whole conversation
        if (rng.Bernoulli(0.05)) {
          cache.Release(conv);
        }
        break;
      }
    }
    if (step % 50 == 0) {
      cache.CheckInvariants();
    }
  }
  cache.CheckInvariants();
  // Releasing everything must return all blocks.
  for (int64_t conv = 0; conv < kConversations; ++conv) {
    cache.Release(conv);
  }
  EXPECT_EQ(cache.gpu_allocator().num_allocated(), 0);
  EXPECT_EQ(cache.cpu_allocator().num_allocated(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u, 99u, 12345u));

// --- Random walk through coordinator-driven eviction --------------------------

class CoordinatorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoordinatorFuzzTest, EvictionUnderRandomLoadKeepsInvariants) {
  Rng rng(GetParam());
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = 16;
  config.num_cpu_blocks = 12;
  TwoTierKvCache cache(config);
  GpuCostModel cost_model(Opt13BConfig(), A100Spec(1));
  ChunkCostEstimator estimator =
      ChunkCostEstimator::ProfileFromCostModel(cost_model, 4, 1024);
  RetentionValuePolicy policy(estimator);
  CacheCoordinator::Options options;
  options.use_cpu_cache = true;
  options.swap_out_target = 0.25;
  CacheCoordinator coordinator(&cache, &policy, options);

  double now = 0.0;
  for (int step = 0; step < 1000; ++step) {
    now += rng.Exponential(1.0);
    const int64_t conv = rng.UniformInt(0, 9);
    const int64_t n = rng.UniformInt(1, 8);
    ContextState& state = cache.GetOrCreate(conv);
    // Bring the conversation fully GPU-resident first (as the engine would).
    for (int64_t i = 0; i < state.num_chunks(); ++i) {
      if (state.chunk(i).location == ChunkLocation::kCpu) {
        if (cache.gpu_allocator().num_free() == 0) {
          coordinator.EnsureFreeGpuBlocks(1, now);
        }
        (void)cache.SwapIn(conv, i);
      } else if (state.chunk(i).Dropped()) {
        if (cache.gpu_allocator().num_free() == 0) {
          coordinator.EnsureFreeGpuBlocks(1, now);
        }
        (void)cache.RestoreDropped(conv, i);
      }
    }
    state.Pin();
    const int64_t needed = state.NumNewChunksForAppend(n);
    if (coordinator.EnsureFreeGpuBlocks(needed, now).ok && state.FullyOnGpu()) {
      ASSERT_TRUE(cache.AppendTokenSlots(conv, n, nullptr).ok());
    }
    state.Unpin();
    state.set_last_active(now);
    coordinator.AheadOfTimeEvict(now);
    if (step % 25 == 0) {
      cache.CheckInvariants();
    }
  }
  cache.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoordinatorFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// --- Serving-engine stress under assorted memory regimes ----------------------

struct EngineStressCase {
  uint64_t seed;
  int64_t gpu_blocks;
  int64_t cpu_blocks;
  bool use_cpu_cache;
  bool unified;
};

class EngineStressTest : public ::testing::TestWithParam<EngineStressCase> {};

TEST_P(EngineStressTest, RandomWorkloadDrainsCompletely) {
  const EngineStressCase& c = GetParam();
  GpuCostModel cost_model(Opt13BConfig(), A100Spec(1));
  PensieveEngineOptions options;
  options.block_size = 32;
  options.num_gpu_blocks = c.gpu_blocks;
  options.num_cpu_blocks = c.cpu_blocks;
  options.use_cpu_cache = c.use_cpu_cache;
  options.unified_scheduling = c.unified;
  PensieveEngine engine(cost_model, options);

  Rng rng(c.seed);
  // Multi-turn conversations with random lengths, delivered in bursts. A
  // conversation whose context would outgrow the GPU tier is retired and
  // replaced by a fresh one — no serving system can hold a context larger
  // than its cache.
  const int64_t context_cap = c.gpu_blocks * options.block_size * 7 / 10;
  struct Conv {
    int64_t id = 0;
    int64_t history = 0;
    int32_t turn = 0;
  };
  std::vector<Conv> convs(8);
  int64_t next_conv_id = 0;
  for (Conv& conv : convs) {
    conv.id = next_conv_id++;
  }
  int64_t request_id = 0;
  double now = 0.0;
  int64_t delivered = 0;
  int64_t finished = 0;
  for (int round = 0; round < 30; ++round) {
    const int burst = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<bool> used(convs.size(), false);
    for (int b = 0; b < burst; ++b) {
      const int64_t ci = rng.UniformInt(0, static_cast<int64_t>(convs.size()) - 1);
      if (used[static_cast<size_t>(ci)]) {
        continue;  // a conversation's turns are causally ordered
      }
      used[static_cast<size_t>(ci)] = true;
      Conv& conv = convs[static_cast<size_t>(ci)];
      const int64_t prompt_len = rng.UniformInt(1, 120);
      const int64_t output_len = rng.UniformInt(1, 60);
      if (conv.history + prompt_len + output_len > context_cap) {
        conv = Conv{next_conv_id++, 0, 0};  // retire; start fresh
      }
      Request req;
      req.request_id = request_id++;
      req.conversation_id = conv.id;
      req.turn_index = conv.turn++;
      req.new_prompt_len = prompt_len;
      req.history_len = conv.history;
      req.target_output_len = output_len;
      req.arrival_time = now;
      conv.history += prompt_len + output_len;
      engine.Enqueue(req, now);
      ++delivered;
      // Causality within a conversation: drain before this conversation's
      // next turn can be enqueued. Simplest: fully drain each burst.
    }
    int64_t guard = 0;
    while (engine.HasWork()) {
      StepResult r = engine.Step(now);
      ASSERT_FALSE(r.idle) << "stuck with pending work (round " << round << ")";
      now += r.duration;
      finished += static_cast<int64_t>(r.finished.size());
      ASSERT_LT(++guard, 200000);
    }
    engine.cache().CheckInvariants();
    now += rng.Exponential(30.0);
  }
  EXPECT_EQ(finished, delivered);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, EngineStressTest,
    ::testing::Values(EngineStressCase{1, 64, 256, true, true},
                      EngineStressCase{2, 16, 64, true, true},    // tight GPU
                      EngineStressCase{3, 16, 8, true, true},     // tight CPU too
                      EngineStressCase{4, 16, 0, false, true},    // GPU-only
                      EngineStressCase{5, 16, 64, true, false},   // split phase
                      EngineStressCase{6, 12, 16, true, true}),
    [](const ::testing::TestParamInfo<EngineStressCase>& info) {
      return "case" + std::to_string(info.index);
    });

// --- Numeric server under randomized eviction schedules -----------------------

TEST(NumericStressTest, RandomEvictionScheduleNeverChangesOutputs) {
  // Two servers serve the same 6-turn conversation; one suffers a random
  // swap/drop schedule between turns. Outputs must match turn for turn.
  const ModelConfig model = TinyOptConfig();
  StatefulServerConfig roomy;
  roomy.model = model;
  roomy.block_size = 8;
  roomy.num_gpu_blocks = 256;
  roomy.num_cpu_blocks = 256;
  StatefulServerConfig tight = roomy;
  tight.num_gpu_blocks = 64;
  tight.num_cpu_blocks = 64;

  StatefulLlmServer reference(roomy);
  StatefulLlmServer tortured(tight);
  Rng rng(77);
  for (int turn = 0; turn < 6; ++turn) {
    const int64_t len = rng.UniformInt(3, 18);
    std::vector<int32_t> prompt;
    for (int64_t i = 0; i < len; ++i) {
      prompt.push_back(SyntheticToken(turn, i, 128));
    }
    auto expected = reference.Chat(1, prompt, 5);
    auto got = tortured.Chat(1, prompt, 5);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value(), expected.value()) << "turn " << turn;
    // Random torture between turns.
    if (rng.Bernoulli(0.7)) {
      ASSERT_TRUE(tortured.SwapOutConversation(1).ok());
    }
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(tortured.DropLeadingChunks(1, rng.UniformInt(1, 3)).ok());
    }
    tortured.cache().CheckInvariants();
  }
}

}  // namespace
}  // namespace pensieve

// Int8 quantization: the prepacked int8 weight path (accuracy against its
// own dequantized weights, batch-size and thread-count bit-identity, amax
// edge cases) and KV-block quantization at the tier boundary (round-trip
// error bounds, checksum-over-quantized-bytes stability, corruption
// degrading to recomputation, compressed capacity accounting).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/kvcache/kv_pool.h"
#include "src/kvcache/two_tier_cache.h"
#include "src/model/model_config.h"
#include "src/model/transformer.h"
#include "src/tensor/ops.h"
#include "src/tensor/packed_matrix.h"

namespace pensieve {
namespace {

// --- PackedMatrix int8 --------------------------------------------------------

TEST(QuantModeTest, NamesRoundTrip) {
  EXPECT_STREQ(QuantModeName(QuantMode::kFp32), "fp32");
  EXPECT_STREQ(QuantModeName(QuantMode::kInt8), "int8");
  QuantMode mode;
  ASSERT_TRUE(QuantModeByName("int8", &mode));
  EXPECT_EQ(mode, QuantMode::kInt8);
  ASSERT_TRUE(QuantModeByName("fp32", &mode));
  EXPECT_EQ(mode, QuantMode::kFp32);
  EXPECT_FALSE(QuantModeByName("fp16", &mode));
}

// Reconstructs the weights the int8 panels actually encode (scale * q), so
// the kernel can be checked against an exact reference instead of a loose
// quantization-error bound.
Tensor DequantizedWeights(const PackedMatrix& q, int64_t n, int64_t k) {
  EXPECT_EQ(q.quant_mode(), QuantMode::kInt8);
  Tensor w({n, k});
  for (int64_t j = 0; j < n; ++j) {
    const int64_t p = j / kGemmNR;
    const int64_t lane = j % kGemmNR;
    const float s = q.scales(p)[lane];
    const int8_t* panel = q.qpanel(p);
    for (int64_t kk = 0; kk < k; ++kk) {
      w.data()[j * k + kk] =
          s * static_cast<float>(panel[kk * kGemmNR + lane]);
    }
  }
  return w;
}

TEST(Int8PackedGemmTest, MatchesDequantizedReferenceAcrossOddShapes) {
  const int64_t ms[] = {1, 3, 8, 17};
  const int64_t ks[] = {3, 37, 515};
  const int64_t ns[] = {1, 8, 130};
  for (int64_t m : ms) {
    for (int64_t k : ks) {
      for (int64_t n : ns) {
        Tensor a({m, k});
        Tensor w({n, k});
        FillNormal(a, static_cast<uint64_t>(m * 1009 + k * 31 + n), 1.0f);
        FillNormal(w, static_cast<uint64_t>(m * 71 + k * 7 + n + 5), 1.0f);
        const PackedMatrix qpacked(w, QuantMode::kInt8);
        EXPECT_EQ(qpacked.out_dim(), n);
        EXPECT_EQ(qpacked.in_dim(), k);
        const Tensor wdq = DequantizedWeights(qpacked, n, k);
        // The int8 path folds the column scale once per k-block instead of
        // into every product, so the comparison is reassociation-tight, not
        // bit-exact.
        const Tensor expected = MatMulTransposedB(a, wdq);
        const Tensor got = MatMulPacked(a, qpacked);
        ASSERT_TRUE(expected.SameShape(got));
        EXPECT_LE(MaxAbsDiff(expected, got),
                  5e-3f)
            << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(Int8PackedGemmTest, RowsAreBatchSizeInvariant) {
  // Same contract as the fp32 path: one row alone (GEMV partitioning) must
  // reproduce byte-identical output to that row inside a 17-row batch (row
  // partitioning), for every remainder position of the 4-row micro tile.
  const int64_t k = 515, n = 130;
  Tensor a({17, k});
  Tensor w({n, k});
  FillNormal(a, 13, 1.0f);
  FillNormal(w, 14, 1.0f);
  const PackedMatrix qpacked(w, QuantMode::kInt8);
  const Tensor batch = MatMulPacked(a, qpacked);
  for (int64_t i = 0; i < a.dim(0); ++i) {
    const Tensor row = MatMulPacked(a.SliceRows(i, i + 1), qpacked);
    EXPECT_EQ(0, std::memcmp(batch.data() + i * n, row.data(),
                             static_cast<size_t>(n) * sizeof(float)))
        << "row " << i;
  }
}

TEST(Int8PackedGemmTest, BitIdenticalAcrossThreadCounts) {
  const int64_t k = 700, n = 97;
  Tensor a1({1, k});
  Tensor a17({17, k});
  Tensor w({n, k});
  FillNormal(a1, 21, 1.0f);
  FillNormal(a17, 22, 1.0f);
  FillNormal(w, 23, 1.0f);
  const PackedMatrix qpacked(w, QuantMode::kInt8);
  ThreadPool::SetGlobalThreads(1);
  const Tensor ref1 = MatMulPacked(a1, qpacked);
  const Tensor ref17 = MatMulPacked(a17, qpacked);
  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    const Tensor got1 = MatMulPacked(a1, qpacked);
    const Tensor got17 = MatMulPacked(a17, qpacked);
    EXPECT_EQ(0, std::memcmp(ref1.data(), got1.data(),
                             static_cast<size_t>(ref1.numel()) * sizeof(float)))
        << "m=1 threads=" << threads;
    EXPECT_EQ(0, std::memcmp(ref17.data(), got17.data(),
                             static_cast<size_t>(ref17.numel()) * sizeof(float)))
        << "m=17 threads=" << threads;
  }
  ThreadPool::SetGlobalThreads(0);
}

TEST(Int8PackedGemmTest, PackedBytesRoughlyQuartered) {
  Tensor w({256, 512});
  FillNormal(w, 31, 1.0f);
  const PackedMatrix fp32(w);
  const PackedMatrix int8(w, QuantMode::kInt8);
  EXPECT_EQ(fp32.quant_mode(), QuantMode::kFp32);
  EXPECT_EQ(int8.quant_mode(), QuantMode::kInt8);
  // int8 payload is a quarter of the fp32 panels; per-column scales add a
  // small constant.
  EXPECT_LT(int8.PackedBytes(), fp32.PackedBytes() / 3);
  EXPECT_GT(int8.PackedBytes(), fp32.PackedBytes() / 5);
}

TEST(Int8PackedGemmTest, AllZeroColumnStaysExactlyZero) {
  const int64_t k = 40, n = 9;
  Tensor w({n, k});
  FillNormal(w, 41, 1.0f);
  for (int64_t kk = 0; kk < k; ++kk) {
    w.data()[3 * k + kk] = 0.0f;  // output column 3 is all-zero
  }
  const PackedMatrix qpacked(w, QuantMode::kInt8);
  Tensor a({2, k});
  FillNormal(a, 42, 1.0f);
  const Tensor got = MatMulPacked(a, qpacked);
  EXPECT_EQ(got.at({0, 3}), 0.0f);
  EXPECT_EQ(got.at({1, 3}), 0.0f);
}

TEST(Int8PackedGemmTest, AmaxEndpointsSurviveQuantization) {
  // A one-hot activation reads a single dequantized weight; the column's
  // +-amax entries map to +-127 and must come back as ~amax exactly (up to
  // one rounding in scale = amax / 127).
  const int64_t k = 16, n = 8;
  const float amax = 3.75f;
  Tensor w({n, k});
  FillNormal(w, 51, 0.5f);
  w.data()[0 * k + 2] = amax;   // column 0 endpoint +amax
  w.data()[0 * k + 7] = -amax;  // and -amax
  const PackedMatrix qpacked(w, QuantMode::kInt8);
  Tensor a({1, k});
  for (int64_t kk = 0; kk < k; ++kk) {
    a.data()[kk] = 0.0f;
  }
  a.data()[2] = 1.0f;
  Tensor hit_pos = MatMulPacked(a, qpacked);
  EXPECT_NEAR(hit_pos.at({0, 0}), amax, amax * 1e-5f);
  a.data()[2] = 0.0f;
  a.data()[7] = 1.0f;
  Tensor hit_neg = MatMulPacked(a, qpacked);
  EXPECT_NEAR(hit_neg.at({0, 0}), -amax, amax * 1e-5f);
}

TEST(Int8PackedGemmTest, DenormalWeightsStayFinite) {
  // amax in the denormal range: scale = amax / 127 may itself be denormal
  // (or flush the whole column to zero); either way the kernel must produce
  // finite, tiny outputs — never NaN or inf.
  const int64_t k = 12, n = 8;
  Tensor w({n, k});
  for (int64_t i = 0; i < w.numel(); ++i) {
    w.data()[i] = 1e-41f * static_cast<float>((i % 5) - 2);
  }
  const PackedMatrix qpacked(w, QuantMode::kInt8);
  Tensor a({1, k});
  FillNormal(a, 61, 1.0f);
  const Tensor got = MatMulPacked(a, qpacked);
  for (int64_t j = 0; j < n; ++j) {
    EXPECT_TRUE(std::isfinite(got.at({0, j}))) << "col " << j;
    EXPECT_LE(std::fabs(got.at({0, j})), 1e-38f) << "col " << j;
  }
}

// --- Transformer int8 logit gate ---------------------------------------------

TEST(Int8TransformerTest, LogitsStayNearFp32Reference) {
  for (const char* preset : {"tiny-opt", "tiny-llama"}) {
    ModelConfig config;
    ASSERT_TRUE(ModelConfigByName(preset, &config));
    Transformer fp32(config, 7);
    Transformer int8(config, 7, QuantMode::kInt8);
    EXPECT_EQ(int8.weight_quant(), QuantMode::kInt8);
    KvPool pool_a(4, 8, config.num_layers, config.num_kv_heads, config.head_dim);
    KvPool pool_b(4, 8, config.num_layers, config.num_kv_heads, config.head_dim);
    const std::vector<BlockId> table = {0, 1, 2, 3};
    const std::vector<int32_t> tokens = {5, 9, 13, 2, 88, 17, 4, 30};
    ForwardBatch batch;
    const int64_t n = static_cast<int64_t>(tokens.size());
    for (int64_t i = 0; i < n; ++i) {
      batch.tokens.push_back(tokens[static_cast<size_t>(i)]);
      batch.positions.push_back(i);
      batch.kv_slots.push_back(
          {table[static_cast<size_t>(i / pool_a.block_size())],
           i % pool_a.block_size()});
    }
    batch.subs.push_back({0, n, n, &table});
    batch.logit_rows.push_back(n - 1);
    const Tensor ref = fp32.Forward(&pool_a, batch);
    const Tensor got = int8.Forward(&pool_b, batch);
    ASSERT_TRUE(ref.SameShape(got));
    float max_abs = 0.0f;
    for (int64_t i = 0; i < ref.numel(); ++i) {
      max_abs = std::max(max_abs, std::fabs(ref.data()[i]));
    }
    ASSERT_GT(max_abs, 0.0f);
    // Perplexity-proxy gate: per-matrix int8 weight error must not move any
    // logit by more than 5% of the logit scale.
    EXPECT_LE(MaxAbsDiff(ref, got), 0.05f * max_abs) << preset;
  }
}

// --- KvPool block quantization -----------------------------------------------

KvPool MakePool(int64_t blocks = 4) {
  return KvPool(blocks, /*block_size=*/4, /*num_layers=*/2, /*num_kv_heads=*/2,
                /*head_dim=*/4);
}

// Fills every slot of `block` with a deterministic varied pattern and
// returns the written values in layout order.
std::vector<float> FillBlock(KvPool* pool, BlockId block, float scale) {
  std::vector<float> written;
  const int64_t ts = pool->num_kv_heads() * pool->head_dim();
  std::vector<float> k(static_cast<size_t>(ts));
  std::vector<float> v(static_cast<size_t>(ts));
  for (int64_t layer = 0; layer < pool->num_layers(); ++layer) {
    for (int64_t slot = 0; slot < pool->block_size(); ++slot) {
      for (int64_t i = 0; i < ts; ++i) {
        k[static_cast<size_t>(i)] =
            scale * static_cast<float>((layer * 131 + slot * 17 + i * 3) % 23 - 11);
        v[static_cast<size_t>(i)] =
            scale * static_cast<float>((layer * 37 + slot * 5 + i * 7) % 19 - 9);
      }
      pool->WriteToken(block, layer, slot, k.data(), v.data());
    }
  }
  for (int64_t layer = 0; layer < pool->num_layers(); ++layer) {
    for (int kv = 0; kv < 2; ++kv) {
      for (int64_t slot = 0; slot < pool->block_size(); ++slot) {
        const float* p = pool->TokenData(block, layer, kv, slot);
        written.insert(written.end(), p, p + ts);
      }
    }
  }
  return written;
}

TEST(KvQuantTest, RoundTripWithinHalfScale) {
  KvPool gpu = MakePool();
  KvPool cpu = MakePool();
  KvPool back = MakePool();
  const std::vector<float> original = FillBlock(&gpu, 0, 0.25f);
  KvPool::QuantizeBlock(gpu, 0, cpu, 1);
  EXPECT_TRUE(cpu.BlockQuantized(1));
  EXPECT_FALSE(gpu.BlockQuantized(0));
  const float scale = cpu.BlockScale(1);
  EXPECT_GT(scale, 0.0f);
  KvPool::DequantizeBlock(cpu, 1, back, 2);
  EXPECT_FALSE(back.BlockQuantized(2));
  size_t idx = 0;
  const float tol = 0.5f * scale * (1.0f + 1e-5f);
  for (int64_t layer = 0; layer < back.num_layers(); ++layer) {
    for (int kv = 0; kv < 2; ++kv) {
      for (int64_t slot = 0; slot < back.block_size(); ++slot) {
        const float* p = back.TokenData(2, layer, kv, slot);
        for (int64_t i = 0; i < back.num_kv_heads() * back.head_dim(); ++i) {
          EXPECT_NEAR(p[i], original[idx], tol) << "idx " << idx;
          ++idx;
        }
      }
    }
  }
}

TEST(KvQuantTest, AllZeroBlockRoundTripsExactly) {
  KvPool gpu = MakePool();
  KvPool cpu = MakePool();
  KvPool back = MakePool();
  // Poison the destination first: dequantize must overwrite, not blend.
  FillBlock(&back, 1, 5.0f);
  KvPool::QuantizeBlock(gpu, 0, cpu, 0);
  EXPECT_TRUE(cpu.BlockQuantized(0));
  EXPECT_EQ(cpu.BlockScale(0), 0.0f);
  KvPool::DequantizeBlock(cpu, 0, back, 1);
  for (int64_t slot = 0; slot < back.block_size(); ++slot) {
    const float* p = back.TokenData(1, 0, 0, slot);
    for (int64_t i = 0; i < back.num_kv_heads() * back.head_dim(); ++i) {
      EXPECT_EQ(p[i], 0.0f);
    }
  }
}

TEST(KvQuantTest, DenormalAmaxFlushesToZeroOrStaysFinite) {
  KvPool gpu = MakePool();
  KvPool cpu = MakePool();
  KvPool back = MakePool();
  const int64_t ts = gpu.num_kv_heads() * gpu.head_dim();
  std::vector<float> k(static_cast<size_t>(ts), 1e-44f);  // deep denormal
  std::vector<float> v(static_cast<size_t>(ts), -1e-44f);
  gpu.WriteToken(0, 0, 0, k.data(), v.data());
  KvPool::QuantizeBlock(gpu, 0, cpu, 0);
  KvPool::DequantizeBlock(cpu, 0, back, 0);
  for (int64_t slot = 0; slot < back.block_size(); ++slot) {
    for (int kv = 0; kv < 2; ++kv) {
      const float* p = back.TokenData(0, 0, kv, slot);
      for (int64_t i = 0; i < ts; ++i) {
        EXPECT_TRUE(std::isfinite(p[i]));
        EXPECT_LE(std::fabs(p[i]), 1e-40f);
      }
    }
  }
}

TEST(KvQuantTest, AmaxEndpointsMapToFullRange) {
  KvPool gpu = MakePool();
  KvPool cpu = MakePool();
  KvPool back = MakePool();
  const int64_t ts = gpu.num_kv_heads() * gpu.head_dim();
  const float amax = 7.5f;
  std::vector<float> k(static_cast<size_t>(ts), 0.0f);
  std::vector<float> v(static_cast<size_t>(ts), 0.0f);
  k[0] = amax;
  v[0] = -amax;
  gpu.WriteToken(0, 1, 2, k.data(), v.data());
  KvPool::QuantizeBlock(gpu, 0, cpu, 0);
  EXPECT_NEAR(cpu.BlockScale(0), amax / 127.0f, amax * 1e-6f);
  KvPool::DequantizeBlock(cpu, 0, back, 0);
  EXPECT_NEAR(back.TokenData(0, 1, 0, 2)[0], amax, amax * 1e-5f);
  EXPECT_NEAR(back.TokenData(0, 1, 1, 2)[0], -amax, amax * 1e-5f);
}

TEST(KvQuantTest, DequantizeOfUnquantizedBlockIsPlainCopy) {
  KvPool a = MakePool();
  KvPool b = MakePool();
  const std::vector<float> original = FillBlock(&a, 3, 1.0f);
  KvPool::DequantizeBlock(a, 3, b, 0);
  EXPECT_FALSE(b.BlockQuantized(0));
  EXPECT_EQ(0, std::memcmp(a.TokenData(3, 0, 0, 0), b.TokenData(0, 0, 0, 0),
                           sizeof(float)));
  EXPECT_EQ(a.BlockChecksum(3), b.BlockChecksum(0));
}

TEST(KvQuantTest, ChecksumCoversQuantizedBytesAndScale) {
  KvPool gpu = MakePool();
  KvPool cpu = MakePool(6);
  FillBlock(&gpu, 0, 0.5f);
  KvPool::QuantizeBlock(gpu, 0, cpu, 0);
  const uint32_t sum = cpu.BlockChecksum(0);
  // Stable across a metadata-preserving copy (the flash demote/promote
  // path): same payload + same scale -> same checksum.
  KvPool::CopyBlock(cpu, 0, cpu, 1);
  EXPECT_TRUE(cpu.BlockQuantized(1));
  EXPECT_EQ(cpu.BlockScale(1), cpu.BlockScale(0));
  EXPECT_EQ(cpu.BlockChecksum(1), sum);
  // A payload bit flip lands inside the hashed int8 bytes.
  cpu.CorruptBlock(1);
  EXPECT_NE(cpu.BlockChecksum(1), sum);
  // Same payload with a different scale must not collide either.
  KvPool::CopyBlock(cpu, 0, cpu, 2);
  FillBlock(&gpu, 1, 2.0f);
  KvPool::QuantizeBlock(gpu, 1, cpu, 3);
  EXPECT_NE(cpu.BlockChecksum(3), sum);
}

// --- TwoTierKvCache with kv_quant --------------------------------------------

KvCacheConfig QuantNumericConfig(int64_t gpu_blocks = 8, int64_t cpu_blocks = 8) {
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = gpu_blocks;
  config.num_cpu_blocks = cpu_blocks;
  config.numeric = true;
  config.num_layers = 2;
  config.num_kv_heads = 2;
  config.head_dim = 4;
  config.kv_quant = true;
  return config;
}

TEST(KvQuantCacheTest, SwapOutQuantizesAndSwapInRestores) {
  TwoTierKvCache cache(QuantNumericConfig());
  std::vector<ContextState::SlotRef> slots;
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, &slots).ok());
  std::vector<float> k(8, 3.0f);
  std::vector<float> v(8, -4.0f);
  cache.gpu_pool()->WriteToken(slots[2].block, 1, slots[2].slot, k.data(),
                               v.data());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  const BlockId cpu_block = cache.Find(1)->chunk(0).cpu_block;
  EXPECT_TRUE(cache.cpu_pool()->BlockQuantized(cpu_block));
  EXPECT_EQ(cache.counters().quantized_blocks, 1);
  EXPECT_GT(cache.counters().quant_bytes_saved, 0);
  EXPECT_TRUE(cache.VerifyCpuChecksum(1, 0).ok());
  ASSERT_TRUE(cache.ReclaimGpu(1, 0).ok());
  ASSERT_TRUE(cache.SwapIn(1, 0).ok());
  const BlockId gpu_block = cache.Find(1)->chunk(0).gpu_block;
  EXPECT_FALSE(cache.gpu_pool()->BlockQuantized(gpu_block));
  // amax = 4, scale = 4/127: written values return within half a step.
  const float tol = 0.5f * 4.0f / 127.0f * 1.01f;
  EXPECT_NEAR(cache.gpu_pool()->TokenData(gpu_block, 1, 0, 2)[0], 3.0f, tol);
  EXPECT_NEAR(cache.gpu_pool()->TokenData(gpu_block, 1, 1, 2)[7], -4.0f, tol);
  cache.CheckInvariants();
}

TEST(KvQuantCacheTest, CorruptQuantizedCopyDegradesToRecompute) {
  TwoTierKvCache cache(QuantNumericConfig());
  std::vector<ContextState::SlotRef> slots;
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, &slots).ok());
  std::vector<float> k(8, 1.0f);
  std::vector<float> v(8, 2.0f);
  cache.gpu_pool()->WriteToken(slots[0].block, 0, slots[0].slot, k.data(),
                               v.data());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.ReclaimGpu(1, 0).ok());
  // Flip a bit of the int8 payload behind the cache's back: the checksum
  // over quantized bytes must catch it and the swap-in must refuse.
  cache.cpu_pool()->CorruptBlock(cache.Find(1)->chunk(0).cpu_block);
  EXPECT_EQ(cache.VerifyCpuChecksum(1, 0).code(), StatusCode::kDataLoss);
  EXPECT_EQ(cache.SwapIn(1, 0).code(), StatusCode::kDataLoss);
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kCpu);
  // Degradation path: drop the poisoned chunk and restore a fresh block for
  // recomputation — exactly what the engine's fault handling does.
  ASSERT_TRUE(cache.DropChunk(1, 0).ok());
  ASSERT_TRUE(cache.RestoreDropped(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kGpu);
  cache.CheckInvariants();
}

TEST(KvQuantCacheTest, CompressedBytesScaleCpuCapacity) {
  // Capacity accounting in compressed bytes: the same byte budget holds
  // raw/quant times more blocks. With the fp16 substrate ratio this is ~2x
  // and must clear the 1.8x the paper-scale configs rely on.
  const ModelConfig model = Opt13BConfig();
  const int64_t block_size = 16;
  KvCacheConfig config = QuantNumericConfig(/*gpu_blocks=*/4, /*cpu_blocks=*/10);
  config.kv_raw_block_bytes = block_size * model.KvBytesPerTokenPerGpu();
  config.kv_quant_block_bytes =
      block_size * model.KvQuantBytesPerTokenPerGpu() +
      static_cast<int64_t>(sizeof(float));
  const double ratio = static_cast<double>(config.kv_raw_block_bytes) /
                       static_cast<double>(config.kv_quant_block_bytes);
  EXPECT_GE(ratio, 1.8);
  TwoTierKvCache cache(config);
  // GPU tier is never compressed; CPU tier stores quantized blocks.
  EXPECT_EQ(cache.gpu_pool()->num_blocks(), 4);
  EXPECT_EQ(cache.cpu_pool()->num_blocks(),
            10 * config.kv_raw_block_bytes / config.kv_quant_block_bytes);
  EXPECT_GE(cache.cpu_pool()->num_blocks(), 18);  // >= 1.8x the fp16 budget
}

TEST(KvQuantCacheTest, QuantOffConfigUnchanged) {
  KvCacheConfig config = QuantNumericConfig();
  config.kv_quant = false;
  config.kv_raw_block_bytes = 4096;
  config.kv_quant_block_bytes = 2052;
  TwoTierKvCache cache(config);
  EXPECT_EQ(cache.cpu_pool()->num_blocks(), 8);
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  EXPECT_FALSE(
      cache.cpu_pool()->BlockQuantized(cache.Find(1)->chunk(0).cpu_block));
  EXPECT_EQ(cache.counters().quantized_blocks, 0);
  EXPECT_EQ(cache.counters().quant_bytes_saved, 0);
}

}  // namespace
}  // namespace pensieve

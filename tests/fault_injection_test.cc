// Tests for the KV-transfer fault-injection subsystem: link-fault injector
// determinism and accounting, checksum detection in the two-tier cache, and
// the Pensieve engine's graceful degradation under an unreliable PCIe link
// (including the §7 determinism contract at several thread counts).

#include <gtest/gtest.h>

#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/experiment.h"
#include "src/kvcache/two_tier_cache.h"
#include "src/model/model_config.h"
#include "src/serving/driver.h"
#include "src/sim/fault_injector.h"
#include "src/sim/hardware.h"
#include "src/workload/trace.h"

namespace pensieve {
namespace {

// --- LinkFaultInjector -------------------------------------------------------

// A linear 1 GB/s link starting at `start`.
double FlatLink(double start, double bytes) { return start + bytes * 1e-9; }

TEST(LinkFaultInjectorTest, ZeroRatesTakeTheFastPath) {
  LinkFaultInjector injector(/*seed=*/99, LinkFaultProfile{}, LinkRetryPolicy{});
  int schedule_calls = 0;
  for (int i = 0; i < 50; ++i) {
    const LinkTransferOutcome out =
        injector.Transfer(static_cast<double>(i), 1e6, [&](double s, double b) {
          ++schedule_calls;
          return FlatLink(s, b);
        });
    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(out.attempts, 1);
    EXPECT_DOUBLE_EQ(out.done, static_cast<double>(i) + 1e-3);
  }
  // Exactly one schedule call per transfer: no retries, no extra draws.
  EXPECT_EQ(schedule_calls, 50);
  EXPECT_EQ(injector.stats().transfers, 50);
  EXPECT_EQ(injector.stats().InjectedFaults(), 0);
  EXPECT_EQ(injector.stats().retries, 0);
}

LinkFaultProfile HeavyMixedProfile() {
  LinkFaultProfile profile;
  profile.timeout_rate = 0.2;
  profile.stall_rate = 0.1;
  profile.partial_rate = 0.1;
  profile.corruption_rate = 0.2;
  return profile;
}

TEST(LinkFaultInjectorTest, SameSeedReplaysIdenticalOutcomes) {
  LinkRetryPolicy retry;
  retry.max_attempts = 3;
  LinkFaultInjector a(/*seed=*/7, HeavyMixedProfile(), retry);
  LinkFaultInjector b(/*seed=*/7, HeavyMixedProfile(), retry);
  for (int i = 0; i < 300; ++i) {
    const double now = 0.5 * static_cast<double>(i);
    const double bytes = 1e5 * static_cast<double>(1 + i % 7);
    const LinkTransferOutcome oa = a.Transfer(now, bytes, FlatLink);
    const LinkTransferOutcome ob = b.Transfer(now, bytes, FlatLink);
    EXPECT_DOUBLE_EQ(oa.done, ob.done);
    EXPECT_EQ(oa.delivered, ob.delivered);
    EXPECT_EQ(oa.attempts, ob.attempts);
    EXPECT_EQ(oa.last_fault, ob.last_fault);
  }
  EXPECT_EQ(a.stats().InjectedFaults(), b.stats().InjectedFaults());
  EXPECT_EQ(a.stats().retries, b.stats().retries);
  EXPECT_DOUBLE_EQ(a.stats().retry_backoff_seconds,
                   b.stats().retry_backoff_seconds);
  // A different seed draws a different fault stream.
  LinkFaultInjector c(/*seed=*/8, HeavyMixedProfile(), retry);
  int differences = 0;
  LinkFaultInjector a2(/*seed=*/7, HeavyMixedProfile(), retry);
  for (int i = 0; i < 300; ++i) {
    const double now = 0.5 * static_cast<double>(i);
    const double bytes = 1e5 * static_cast<double>(1 + i % 7);
    if (a2.Transfer(now, bytes, FlatLink).done !=
        c.Transfer(now, bytes, FlatLink).done) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(LinkFaultInjectorTest, AccountingIdentityHolds) {
  LinkRetryPolicy retry;
  retry.max_attempts = 2;
  LinkFaultInjector injector(/*seed=*/3, HeavyMixedProfile(), retry);
  int64_t undelivered = 0;
  for (int i = 0; i < 500; ++i) {
    if (!injector.Transfer(static_cast<double>(i), 2e6, FlatLink).delivered) {
      ++undelivered;
    }
  }
  const LinkFaultStats& s = injector.stats();
  EXPECT_EQ(s.transfers, 500);
  EXPECT_GT(s.InjectedFaults(), 0);
  // Every retryable fault (timeout, partial, corruption) ends recovered or
  // unrecovered; stalls deliver late and are never retried.
  EXPECT_EQ(s.injected_timeouts + s.injected_partials + s.injected_corruptions,
            s.recovered_faults + s.unrecovered_faults);
  // An undelivered transfer is exactly an exhausted one.
  EXPECT_EQ(s.exhausted_transfers, undelivered);
  EXPECT_GT(s.exhausted_transfers, 0);
}

TEST(LinkFaultInjectorTest, CertainTimeoutExhaustsWithBackoff) {
  LinkFaultProfile profile;
  profile.timeout_rate = 1.0;
  LinkRetryPolicy retry;
  retry.max_attempts = 3;
  LinkFaultInjector injector(/*seed=*/1, profile, retry);
  const LinkTransferOutcome out = injector.Transfer(10.0, 1e6, FlatLink);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(out.last_fault, LinkFaultKind::kTimeout);
  // Three timeout windows plus two exponential backoff sleeps, all charged
  // through the returned completion time.
  const double backoff =
      retry.backoff_initial + retry.backoff_initial * retry.backoff_factor;
  EXPECT_DOUBLE_EQ(out.done, 10.0 + 3.0 * profile.timeout_seconds + backoff);
  EXPECT_DOUBLE_EQ(injector.stats().retry_backoff_seconds, backoff);
  EXPECT_EQ(injector.stats().unrecovered_faults, 3);
  EXPECT_EQ(injector.stats().exhausted_transfers, 1);
}

// --- Checksums in the two-tier cache ----------------------------------------

KvCacheConfig SmallConfig() {
  KvCacheConfig config;
  config.block_size = 4;
  config.num_gpu_blocks = 8;
  config.num_cpu_blocks = 8;
  return config;
}

TEST(CacheChecksumTest, SwapOutRecordsVerifiableChecksum) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  EXPECT_TRUE(cache.VerifyCpuChecksum(1, 0).ok());
  EXPECT_EQ(cache.counters().checksum_verifications, 1);
  EXPECT_EQ(cache.counters().checksum_failures, 0);
}

TEST(CacheChecksumTest, MarkCpuCorruptFailsVerification) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.MarkCpuCorrupt(1, 0).ok());
  EXPECT_EQ(cache.VerifyCpuChecksum(1, 0).code(), StatusCode::kDataLoss);
  EXPECT_EQ(cache.counters().corrupt_marked_chunks, 1);
  EXPECT_EQ(cache.counters().checksum_failures, 1);
  // No CPU copy, nothing to corrupt or verify.
  ASSERT_TRUE(cache.AppendTokenSlots(2, 4, nullptr).ok());
  EXPECT_EQ(cache.MarkCpuCorrupt(2, 0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cache.VerifyCpuChecksum(2, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CacheChecksumTest, SwapInRefusesCorruptCopyAndRecomputePathWorks) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.ReclaimGpu(1, 0).ok());
  ASSERT_TRUE(cache.MarkCpuCorrupt(1, 0).ok());
  EXPECT_EQ(cache.SwapIn(1, 0).code(), StatusCode::kDataLoss);
  // Still kCpu: the refused swap-in must not half-transition the chunk.
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kCpu);
  cache.CheckInvariants();
  // The degradation ladder: drop the poisoned prefix, then restore it as a
  // recompute target.
  ASSERT_TRUE(cache.DropChunk(1, 0).ok());
  ASSERT_TRUE(cache.RestoreDropped(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kGpu);
  cache.CheckInvariants();
}

TEST(CacheChecksumTest, ReclaimRefusesCorruptCopy) {
  TwoTierKvCache cache(SmallConfig());
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, nullptr).ok());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  ASSERT_TRUE(cache.MarkCpuCorrupt(1, 0).ok());
  // Reclaiming would leave the corrupt copy as the only copy.
  EXPECT_EQ(cache.ReclaimGpu(1, 0).code(), StatusCode::kDataLoss);
  // Rollback: discard the poisoned copy; the GPU copy is intact.
  ASSERT_TRUE(cache.DropCpuCopy(1, 0).ok());
  EXPECT_EQ(cache.Find(1)->chunk(0).location, ChunkLocation::kGpu);
  cache.CheckInvariants();
}

TEST(CacheChecksumTest, NumericBitFlipDetectedByHash) {
  KvCacheConfig config = SmallConfig();
  config.numeric = true;
  config.num_layers = 1;
  config.num_kv_heads = 1;
  config.head_dim = 4;
  TwoTierKvCache cache(config);
  std::vector<ContextState::SlotRef> slots;
  ASSERT_TRUE(cache.AppendTokenSlots(1, 4, &slots).ok());
  std::vector<float> k(4, 1.0f);
  std::vector<float> v(4, 2.0f);
  cache.gpu_pool()->WriteToken(slots[0].block, 0, slots[0].slot, k.data(),
                               v.data());
  ASSERT_TRUE(cache.SwapOut(1, 0).ok());
  EXPECT_TRUE(cache.VerifyCpuChecksum(1, 0).ok());
  // Flip one bit in the CPU copy behind the cache's back: the recorded
  // FNV-1a hash — not a flag — must catch it.
  cache.cpu_pool()->CorruptBlock(cache.Find(1)->chunk(0).cpu_block);
  EXPECT_EQ(cache.VerifyCpuChecksum(1, 0).code(), StatusCode::kDataLoss);
}

// --- Engine-level degradation and determinism --------------------------------

GpuCostModel Opt13BModel() { return GpuCostModel(Opt13BConfig(), A100Spec(1)); }

WorkloadTrace SmallTrace(int64_t conversations = 15) {
  TraceOptions options;
  options.num_conversations = conversations;
  options.conversation_rate = 0.5;
  options.mean_think_time = 10.0;
  options.seed = 1;
  return WorkloadTrace(ShareGptProfile(), options);
}

EngineOverrides FaultyOverrides(double timeout, double corrupt) {
  EngineOverrides overrides;
  overrides.cache_scale = 0.15;  // small cache: heavy swap traffic
  overrides.pcie_fault_profile.timeout_rate = timeout;
  overrides.pcie_fault_profile.corruption_rate = corrupt;
  overrides.fault_retry.max_attempts = 2;
  overrides.fault_seed = 7;
  return overrides;
}

ServingSummary RunOnce(const EngineOverrides& overrides,
                       const WorkloadTrace& trace) {
  auto engine = MakeEngine(SystemKind::kPensieve, Opt13BModel(), overrides);
  return RunServingExperiment(engine.get(), trace);
}

void ExpectSummariesIdentical(const ServingSummary& a, const ServingSummary& b) {
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.token_throughput, b.token_throughput);
  EXPECT_EQ(a.mean_normalized_latency, b.mean_normalized_latency);
  EXPECT_EQ(a.p50_normalized_latency, b.p50_normalized_latency);
  EXPECT_EQ(a.p90_normalized_latency, b.p90_normalized_latency);
  EXPECT_EQ(a.p99_normalized_latency, b.p99_normalized_latency);
  EXPECT_EQ(a.engine_stats.recomputed_history_tokens,
            b.engine_stats.recomputed_history_tokens);
  EXPECT_EQ(a.engine_stats.aot_swap_out_tokens,
            b.engine_stats.aot_swap_out_tokens);
  EXPECT_EQ(a.engine_stats.forced_swap_out_tokens,
            b.engine_stats.forced_swap_out_tokens);
  EXPECT_EQ(a.engine_stats.link_faults.InjectedFaults(),
            b.engine_stats.link_faults.InjectedFaults());
  EXPECT_EQ(a.engine_stats.link_faults.retries,
            b.engine_stats.link_faults.retries);
  EXPECT_EQ(a.engine_stats.fault_degraded_admissions,
            b.engine_stats.fault_degraded_admissions);
  EXPECT_EQ(a.engine_stats.fault_recompute_tokens,
            b.engine_stats.fault_recompute_tokens);
}

TEST(EngineFaultTest, ZeroRatesAreBitIdenticalToDefault) {
  const WorkloadTrace trace = SmallTrace();
  EngineOverrides plain;
  plain.cache_scale = 0.15;
  // Same config with the injector armed (nonzero seed, retry budget) but
  // every rate zero: the fast path must draw no randomness and change no
  // schedule call.
  EngineOverrides armed = plain;
  armed.fault_seed = 12345;
  armed.fault_retry.max_attempts = 7;
  const ServingSummary a = RunOnce(plain, trace);
  const ServingSummary b = RunOnce(armed, trace);
  ExpectSummariesIdentical(a, b);
  EXPECT_EQ(b.engine_stats.link_faults.InjectedFaults(), 0);
}

TEST(EngineFaultTest, HeavyFaultsNeverDropRequestsAndAccountFully) {
  const WorkloadTrace trace = SmallTrace();
  EngineOverrides plain;
  plain.cache_scale = 0.15;
  const ServingSummary clean = RunOnce(plain, trace);
  const ServingSummary faulted = RunOnce(FaultyOverrides(0.3, 0.3), trace);

  // Degradation is graceful: every request the clean run completes, the
  // faulted run completes too — faults cost time, never requests.
  EXPECT_EQ(faulted.completed_requests, clean.completed_requests);
  EXPECT_GE(faulted.makespan, clean.makespan);

  const LinkFaultStats& lf = faulted.engine_stats.link_faults;
  EXPECT_GT(lf.InjectedFaults(), 0);
  EXPECT_EQ(lf.injected_timeouts + lf.injected_partials +
                lf.injected_corruptions,
            lf.recovered_faults + lf.unrecovered_faults);
  // Whatever the retries could not recover surfaced through the degradation
  // ladder: corrupt copies rolled back or marked, prefixes recomputed.
  if (lf.unrecovered_faults > 0) {
    EXPECT_GT(faulted.engine_stats.fault_failed_swap_outs +
                  faulted.engine_stats.fault_degraded_admissions +
                  faulted.engine_stats.fault_dropped_chunks,
              0);
  }
}

TEST(EngineFaultTest, SameFaultSeedIsDeterministicAcrossThreadCounts) {
  const WorkloadTrace trace = SmallTrace();
  ThreadPool::SetGlobalThreads(1);
  const ServingSummary t1 = RunOnce(FaultyOverrides(0.2, 0.2), trace);
  const ServingSummary t1_again = RunOnce(FaultyOverrides(0.2, 0.2), trace);
  ThreadPool::SetGlobalThreads(8);
  const ServingSummary t8 = RunOnce(FaultyOverrides(0.2, 0.2), trace);
  ThreadPool::SetGlobalThreads(1);
  ExpectSummariesIdentical(t1, t1_again);
  ExpectSummariesIdentical(t1, t8);
}

}  // namespace
}  // namespace pensieve

// Workspace arena semantics (src/tensor/workspace.h) and the headline
// property it exists for: a warmed-up Transformer::ForwardInto performs ZERO
// heap allocations in steady-state decode. The whole-binary operator
// new/delete overrides below count every allocation; the steady-state test
// snapshots the counter around forward passes and requires a delta of 0.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/kvcache/kv_pool.h"
#include "src/model/transformer.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"

namespace {
std::atomic<long long> g_alloc_calls{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
}  // namespace

// Global replacements: every operator new in this binary funnels through
// CountedAlloc (malloc keeps the hooks sanitizer-friendly — asan intercepts
// malloc/free underneath). GCC pairs inlined new/delete sites and flags the
// free() as mismatched; with both operators replaced the pairing is
// malloc/free by construction.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpragmas"
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

namespace pensieve {
namespace {

long long AllocCalls() { return g_alloc_calls.load(std::memory_order_relaxed); }

TEST(WorkspaceTest, AlignmentAndAccounting) {
  Workspace ws;
  EXPECT_EQ(ws.bytes_in_use(), 0);
  float* a = ws.AllocFloats(3);
  int64_t* b = ws.AllocInts(5);
  float* c = ws.AllocFloats(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  // Each request rounds up to the 64-byte alignment quantum.
  EXPECT_EQ(ws.bytes_in_use(), 64 + 64 + 448);
  EXPECT_GE(ws.capacity_bytes(), ws.bytes_in_use());
}

TEST(WorkspaceTest, ResetReusesSameStorage) {
  Workspace ws;
  float* first = ws.AllocFloats(1000);
  first[0] = 1.0f;
  const int64_t slabs_after_warmup = ws.total_slab_allocs();
  for (int i = 0; i < 5; ++i) {
    ws.Reset();
    EXPECT_EQ(ws.bytes_in_use(), 0);
    float* again = ws.AllocFloats(1000);
    EXPECT_EQ(again, first) << "Reset must rewind, not reallocate";
  }
  EXPECT_EQ(ws.total_slab_allocs(), slabs_after_warmup);
}

TEST(WorkspaceTest, OverflowSlabsCoalesceOnReset) {
  Workspace ws;
  // Force several overflow slabs within one pass.
  ws.AllocFloats(20 * 1024);   // 80KB > the 64KB minimum slab
  ws.AllocFloats(60 * 1024);   // exceeds remaining capacity -> new slab
  ws.AllocFloats(200 * 1024);  // and again
  EXPECT_GT(ws.num_slabs(), 1u);
  const int64_t capacity = ws.capacity_bytes();
  ws.Reset();
  // Coalesced into one slab of the combined capacity...
  EXPECT_EQ(ws.num_slabs(), 1u);
  EXPECT_EQ(ws.capacity_bytes(), capacity);
  const int64_t allocs_after_coalesce = ws.total_slab_allocs();
  // ...so an identical second pass fits without any new slab.
  ws.AllocFloats(20 * 1024);
  ws.AllocFloats(60 * 1024);
  ws.AllocFloats(200 * 1024);
  EXPECT_EQ(ws.num_slabs(), 1u);
  EXPECT_EQ(ws.total_slab_allocs(), allocs_after_coalesce);
}

TEST(WorkspaceTest, BorrowedTensorsAliasTheArena) {
  Workspace ws;
  Tensor t = ws.Alloc({4, 6});
  EXPECT_FALSE(t.owns_data());
  t.at({2, 3}) = 42.0f;
  // Copies and reshapes of a borrowed tensor are views of the same buffer.
  Tensor copy = t;
  Tensor reshaped = t.Reshaped({24});
  EXPECT_EQ(copy.data(), t.data());
  EXPECT_EQ(reshaped.data(), t.data());
  reshaped[2 * 6 + 3] = 7.0f;
  EXPECT_EQ(t.at({2, 3}), 7.0f);
  // An owned tensor's reshape is still a copy.
  Tensor owned({2, 2});
  EXPECT_TRUE(owned.owns_data());
  EXPECT_NE(owned.Reshaped({4}).data(), owned.data());
}

// Tiny Llama-style model shared by the forward-pass tests.
ModelConfig TinyConfig() {
  ModelConfig config;
  config.name = "tiny";
  config.num_layers = 2;
  config.hidden_size = 24;
  config.num_heads = 4;
  config.num_kv_heads = 2;
  config.head_dim = 6;
  config.ffn_hidden = 48;
  config.vocab_size = 50;
  config.activation = Activation::kSilu;
  config.norm = NormKind::kRmsNorm;
  config.pos_embedding = PositionEmbedding::kRotary;
  config.gated_ffn = true;
  config.qkv_bias = false;
  return config;
}

TEST(WorkspaceForwardTest, RepeatedForwardReusesArenaAndStaysBitIdentical) {
  const ModelConfig config = TinyConfig();
  const Transformer model(config, /*seed=*/11);
  KvPool pool(8, /*block_size=*/4, config.num_layers, config.num_kv_heads,
              config.head_dim);
  const std::vector<BlockId> table = {0, 1};
  ForwardBatch batch;
  for (int64_t t = 0; t < 5; ++t) {
    batch.tokens.push_back(static_cast<int32_t>(t + 1));
    batch.positions.push_back(t);
    batch.kv_slots.push_back({table[static_cast<size_t>(t / 4)], t % 4});
  }
  batch.subs.push_back({0, 5, 5, &table});
  batch.logit_rows = {4};

  // The same batch re-run writes the same K/V to the same slots, so logits
  // must be byte-identical run to run — and after the first pass the arena
  // must never grow another slab.
  Tensor logits;
  model.ForwardInto(&pool, batch, &logits);
  const int64_t warm_slab_allocs = model.workspace().total_slab_allocs();
  Tensor first(logits.shape());
  std::memcpy(first.data(), logits.data(),
              static_cast<size_t>(logits.numel()) * sizeof(float));
  for (int i = 0; i < 3; ++i) {
    model.ForwardInto(&pool, batch, &logits);
    EXPECT_EQ(0, std::memcmp(first.data(), logits.data(),
                             static_cast<size_t>(logits.numel()) * sizeof(float)));
  }
  EXPECT_EQ(model.workspace().total_slab_allocs(), warm_slab_allocs);
  EXPECT_LE(model.workspace().num_slabs(), 1u);
}

TEST(WorkspaceForwardTest, SteadyStateDecodeIsAllocationFree) {
  const ModelConfig config = TinyConfig();
  const Transformer model(config, /*seed=*/29);
  KvPool pool(8, /*block_size=*/4, config.num_layers, config.num_kv_heads,
              config.head_dim);
  const std::vector<BlockId> table = {0, 1, 2};

  // Prefill 4 tokens, then decode one token at a time, exactly as the
  // serving loop does.
  ForwardBatch prefill;
  for (int64_t t = 0; t < 4; ++t) {
    prefill.tokens.push_back(static_cast<int32_t>(t + 1));
    prefill.positions.push_back(t);
    prefill.kv_slots.push_back({table[0], t});
  }
  prefill.subs.push_back({0, 4, 4, &table});
  prefill.logit_rows = {3};
  Tensor logits;
  model.ForwardInto(&pool, prefill, &logits);

  ForwardBatch decode;
  decode.tokens.assign(1, 0);
  decode.positions.assign(1, 0);
  decode.kv_slots.assign(1, ForwardBatch::KvSlot{table[0], 0});
  decode.subs.assign(1, AttentionSubRequest{0, 1, 1, &table});
  decode.logit_rows.assign(1, 0);
  auto decode_step = [&](int64_t pos) {
    decode.tokens[0] = Transformer::Greedy(logits, 0);
    decode.positions[0] = pos;
    decode.kv_slots[0] = {table[static_cast<size_t>(pos / 4)], pos % 4};
    decode.subs[0].context_len = pos + 1;
    model.ForwardInto(&pool, decode, &logits);
  };
  // Warm up: grows the arena to its decode footprint, pre-touches the
  // thread-pool dispatch cache, sizes the logits buffer.
  decode_step(4);
  decode_step(5);

  const long long before = AllocCalls();
  decode_step(6);
  decode_step(7);
  decode_step(8);
  const long long after = AllocCalls();
  EXPECT_EQ(after - before, 0)
      << "steady-state decode performed " << (after - before)
      << " heap allocations inside ForwardInto";
  EXPECT_GT(before, 0) << "the counting hook is not active";
}

}  // namespace
}  // namespace pensieve

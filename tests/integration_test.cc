// Cross-system integration tests: small-scale versions of the paper's
// headline comparisons, asserting the *shape* of the results (who wins).

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/model/model_config.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

ServingSummary RunSystem(SystemKind kind, const GpuCostModel& model, double rate,
                         int64_t conversations = 60, uint64_t seed = 5) {
  TraceOptions trace_options;
  trace_options.num_conversations = conversations;
  trace_options.conversation_rate = rate;
  trace_options.mean_think_time = 20.0;
  trace_options.seed = seed;
  WorkloadTrace trace(ShareGptProfile(), trace_options);
  auto engine = MakeEngine(kind, model);
  return RunServingExperiment(engine.get(), trace);
}

TEST(IntegrationTest, PensieveAvoidsRecomputationVllmDoesNot) {
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  ServingSummary pensieve = RunSystem(SystemKind::kPensieve, model, 0.5);
  ServingSummary vllm = RunSystem(SystemKind::kVllm, model, 0.5);
  EXPECT_EQ(pensieve.completed_requests, vllm.completed_requests);
  // Pensieve reuses nearly all history; vLLM recomputes all of it.
  EXPECT_LT(pensieve.engine_stats.recomputed_history_tokens,
            vllm.engine_stats.recomputed_history_tokens / 10);
  EXPECT_GT(pensieve.engine_stats.CacheHitRate(), 0.9);
  // Fewer prefill tokens => less GPU busy time.
  EXPECT_LT(pensieve.engine_stats.prefill_tokens, vllm.engine_stats.prefill_tokens);
}

TEST(IntegrationTest, PensieveLatencyBeatsVllmUnderLoad) {
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  const double rate = 0.6;
  ServingSummary pensieve = RunSystem(SystemKind::kPensieve, model, rate);
  ServingSummary vllm = RunSystem(SystemKind::kVllm, model, rate);
  EXPECT_LT(pensieve.p90_normalized_latency, vllm.p90_normalized_latency);
}

TEST(IntegrationTest, TensorRtBeatsVllmButNotPensieve) {
  // Paper Figure 10: TRT-LLM consistently outperforms vLLM (dense-operator
  // fusion) but Pensieve overtakes both by avoiding recomputation.
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  const double rate = 0.6;
  ServingSummary trt = RunSystem(SystemKind::kTensorRtLlm, model, rate);
  ServingSummary vllm = RunSystem(SystemKind::kVllm, model, rate);
  ServingSummary pensieve = RunSystem(SystemKind::kPensieve, model, rate);
  EXPECT_LT(trt.p90_normalized_latency, vllm.p90_normalized_latency);
  EXPECT_LT(pensieve.p90_normalized_latency, trt.p90_normalized_latency);
}

TEST(IntegrationTest, GpuOnlyVariantFallsBetweenPensieveAndVllm) {
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  const double rate = 0.6;
  ServingSummary full = RunSystem(SystemKind::kPensieve, model, rate);
  ServingSummary gpu_only = RunSystem(SystemKind::kPensieveGpuOnly, model, rate);
  // The GPU-only cache still reuses some history but recomputes more than
  // the two-tier cache.
  EXPECT_GE(gpu_only.engine_stats.recomputed_history_tokens,
            full.engine_stats.recomputed_history_tokens);
}

TEST(IntegrationTest, GqaModelRaisesPensieveAdvantage) {
  // Paper: Llama 2-13B (GQA group 4) stores 4x more KV tokens, so Pensieve
  // keeps a higher hit rate under the same memory budget than with OPT-13B
  // when the cache is under pressure.
  HardwareSpec hw = A100Spec(1);
  // Shrink the cache to create pressure at this small scale (but keep it
  // larger than the 16K maximum conversation so every request fits).
  EngineOverrides overrides;
  overrides.cache_scale = 0.4;
  SweepOptions sweep;
  sweep.target_arrival_span = 0;  // fixed-size regime validated for direction
  sweep.num_conversations = 120;
  sweep.mean_think_time = 20.0;
  sweep.overrides = overrides;

  GpuCostModel opt(Opt13BConfig(), hw);
  GpuCostModel llama(Llama2_13BConfig(), hw);
  auto opt_points = RateSweep(SystemKind::kPensieve, opt, ShareGptProfile(), {0.5},
                              sweep);
  auto llama_points = RateSweep(SystemKind::kPensieve, llama, ShareGptProfile(),
                                {0.5}, sweep);
  EXPECT_GE(llama_points[0].summary.engine_stats.CacheHitRate(),
            opt_points[0].summary.engine_stats.CacheHitRate());
}

TEST(IntegrationTest, RetentionPolicyRecomputesNoMoreThanLru) {
  // Paper Figure 14 / Â§6.6: the retention-value policy beats classic
  // (conversation-granularity) LRU under cache pressure. The effect is
  // modest in the paper (up to 14.6% fewer recomputed tokens, only beyond
  // ~3 req/s on a 48K-conversation trace) and smaller still at this test's
  // scale, so the assertion averages several seeds and allows 2% slack;
  // bench_fig14_eviction reports the full comparison.
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  auto run = [&](EvictionPolicyKind policy) {
    double recompute_seconds = 0.0;
    for (uint64_t seed : {42ULL, 7ULL, 101ULL, 2024ULL, 555ULL}) {
      EngineOverrides overrides;
      overrides.cache_scale = 0.3;  // heavy pressure at small scale
      overrides.policy = policy;
      SweepOptions sweep;
      sweep.target_arrival_span = 0;
      sweep.num_conversations = 200;
      sweep.mean_think_time = 60.0;
      sweep.seed = seed;
      sweep.overrides = overrides;
      auto points =
          RateSweep(SystemKind::kPensieve, model, ShareGptProfile(), {1.0}, sweep);
      recompute_seconds += points[0].summary.engine_stats.recompute_seconds;
    }
    return recompute_seconds;
  };
  const double retention = run(EvictionPolicyKind::kRetentionValue);
  const double conversation_lru = run(EvictionPolicyKind::kConversationLru);
  EXPECT_LE(retention, conversation_lru * 1.02);
}

TEST(IntegrationTest, LongerThinkTimeLowersHitRate) {
  // Paper Figure 15: longer user think times cause more cache turnover.
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  EngineOverrides overrides;
  overrides.cache_scale = 0.4;
  SweepOptions fast;
  fast.target_arrival_span = 0;  // fixed-size regime validated for direction
  fast.num_conversations = 120;
  fast.mean_think_time = 5.0;
  fast.overrides = overrides;
  SweepOptions slow = fast;
  slow.mean_think_time = 200.0;

  auto short_think =
      RateSweep(SystemKind::kPensieve, model, ShareGptProfile(), {0.5}, fast);
  auto long_think =
      RateSweep(SystemKind::kPensieve, model, ShareGptProfile(), {0.5}, slow);
  EXPECT_GE(short_think[0].summary.engine_stats.CacheHitRate(),
            long_think[0].summary.engine_stats.CacheHitRate());
}

TEST(IntegrationTest, UnifiedSchedulingNoWorseThanSplit) {
  // Paper Figure 13.
  GpuCostModel model(Llama2_13BConfig(), A100Spec(1));
  EngineOverrides unified;
  EngineOverrides split;
  split.unified_scheduling = false;
  SweepOptions sweep_unified;
  sweep_unified.target_arrival_span = 0;  // fixed-size regime validated for direction
  sweep_unified.num_conversations = 60;
  sweep_unified.mean_think_time = 20.0;
  sweep_unified.overrides = unified;
  SweepOptions sweep_split = sweep_unified;
  sweep_split.overrides = split;

  auto u = RateSweep(SystemKind::kPensieve, model, ShareGptProfile(), {0.8},
                     sweep_unified);
  auto s = RateSweep(SystemKind::kPensieve, model, ShareGptProfile(), {0.8},
                     sweep_split);
  EXPECT_LE(u[0].summary.p90_normalized_latency,
            s[0].summary.p90_normalized_latency * 1.05);
}

TEST(IntegrationTest, CacheInvariantsHoldAfterFullExperiment) {
  GpuCostModel model(Opt13BConfig(), A100Spec(1));
  TraceOptions trace_options;
  trace_options.num_conversations = 40;
  trace_options.conversation_rate = 1.0;
  trace_options.mean_think_time = 10.0;
  WorkloadTrace trace(UltraChatProfile(), trace_options);
  PensieveEngineOptions options;
  options.num_gpu_blocks =
      GpuKvCacheTokens(model.model(), model.hardware()) * 2 / 5 / 32;
  options.num_cpu_blocks = options.num_gpu_blocks * 2;
  PensieveEngine engine(model, options);
  ServingSummary summary = RunServingExperiment(&engine, trace);
  EXPECT_EQ(summary.completed_requests, trace.TotalRequests());
  engine.cache().CheckInvariants();
}

}  // namespace
}  // namespace pensieve

// Tests for the serving experiment driver and metrics collection.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/model/model_config.h"
#include "src/serving/driver.h"
#include "src/serving/metrics.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

WorkloadTrace SmallTrace(int64_t conversations = 20, double rate = 0.5,
                         double think = 10.0, uint64_t seed = 1) {
  TraceOptions options;
  options.num_conversations = conversations;
  options.conversation_rate = rate;
  options.mean_think_time = think;
  options.seed = seed;
  return WorkloadTrace(ShareGptProfile(), options);
}

TEST(MetricsTest, SummaryComputesThroughputAndPercentiles) {
  MetricsCollector metrics;
  for (int i = 0; i < 10; ++i) {
    RequestOutcome o;
    o.request.request_id = i;
    o.request.arrival_time = 0.0;
    o.request.target_output_len = 10;
    o.generated_tokens = 10;
    o.finish_time = 1.0 + i;  // normalized latency = (1+i)/10
    metrics.Record(o);
  }
  EngineStats stats;
  ServingSummary summary = metrics.Summarize("test", /*makespan=*/100.0, stats);
  EXPECT_EQ(summary.completed_requests, 10);
  EXPECT_DOUBLE_EQ(summary.throughput_rps, 0.1);
  EXPECT_DOUBLE_EQ(summary.token_throughput, 1.0);
  EXPECT_NEAR(summary.mean_normalized_latency, 0.55, 1e-9);
  EXPECT_NEAR(summary.p90_normalized_latency, 0.91, 1e-6);
}

TEST(MetricsTest, TokenThroughputCountsGeneratedNotTarget) {
  // An early-terminated request (generated < target) must not inflate token
  // throughput with tokens it never produced.
  MetricsCollector metrics;
  for (int i = 0; i < 10; ++i) {
    RequestOutcome o;
    o.request.request_id = i;
    o.request.arrival_time = 0.0;
    o.request.target_output_len = 100;
    o.generated_tokens = (i == 0) ? 40 : 100;  // one request stopped early
    o.finish_time = 1.0 + i;
    metrics.Record(o);
  }
  EngineStats stats;
  ServingSummary summary = metrics.Summarize("test", /*makespan=*/100.0, stats);
  // (9 * 100 + 40) tokens over the 100 s window, not 10 * 100.
  EXPECT_DOUBLE_EQ(summary.token_throughput, 9.4);
}

TEST(MetricsTest, SmallWindowFallsBackToFullRun) {
  // Only one completion lands inside the requested steady-state window; the
  // summary must fall back to the full run instead of reporting a
  // one-sample "steady state".
  MetricsCollector metrics;
  for (int i = 0; i < 20; ++i) {
    RequestOutcome o;
    o.request.request_id = i;
    o.request.arrival_time = 0.0;
    o.request.target_output_len = 10;
    o.generated_tokens = 10;
    o.finish_time = (i < 19) ? 1.0 : 50.0;
    metrics.Record(o);
  }
  EngineStats stats;
  ServingSummary summary =
      metrics.Summarize("test", /*makespan=*/100.0, stats,
                        /*window_begin=*/40.0, /*window_end=*/60.0);
  EXPECT_DOUBLE_EQ(summary.window_begin, 0.0);
  EXPECT_DOUBLE_EQ(summary.window_end, 100.0);
  EXPECT_EQ(summary.window_completions, 20);
  EXPECT_DOUBLE_EQ(summary.token_throughput, 2.0);
}

TEST(MetricsTest, SummaryWithNoOutcomes) {
  MetricsCollector metrics;
  EngineStats stats;
  ServingSummary summary = metrics.Summarize("test", /*makespan=*/10.0, stats);
  EXPECT_EQ(summary.completed_requests, 0);
  EXPECT_DOUBLE_EQ(summary.throughput_rps, 0.0);
  EXPECT_DOUBLE_EQ(summary.token_throughput, 0.0);
  EXPECT_DOUBLE_EQ(summary.p50_normalized_latency, 0.0);
  EXPECT_DOUBLE_EQ(summary.p99_normalized_latency, 0.0);
}

TEST(MetricsTest, SummaryWithSingleOutcome) {
  // Every percentile of a one-sample distribution is that sample.
  MetricsCollector metrics;
  RequestOutcome o;
  o.request.arrival_time = 1.0;
  o.request.target_output_len = 4;
  o.generated_tokens = 4;
  o.finish_time = 3.0;  // normalized latency = 0.5
  metrics.Record(o);
  EngineStats stats;
  ServingSummary summary = metrics.Summarize("test", /*makespan=*/10.0, stats);
  EXPECT_EQ(summary.completed_requests, 1);
  EXPECT_DOUBLE_EQ(summary.mean_normalized_latency, 0.5);
  EXPECT_DOUBLE_EQ(summary.p50_normalized_latency, 0.5);
  EXPECT_DOUBLE_EQ(summary.p99_normalized_latency, 0.5);
  EXPECT_DOUBLE_EQ(summary.token_throughput, 0.4);
}

TEST(DriverTest, OutcomesReportGeneratedTokens) {
  // End-to-end: engines fill RequestOutcome::generated_tokens with what they
  // actually produced (equal to the target when nothing terminates early).
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/5);
  auto engine = MakeEngine(SystemKind::kPensieve, model);
  DriverOptions options;
  std::vector<RequestOutcome> outcomes;
  options.outcomes = &outcomes;
  RunServingExperiment(engine.get(), trace, options);
  ASSERT_EQ(static_cast<int64_t>(outcomes.size()), trace.TotalRequests());
  for (const RequestOutcome& o : outcomes) {
    EXPECT_EQ(o.generated_tokens, o.request.target_output_len);
  }
}

TEST(DriverTest, CompletesAllRequests) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace();
  auto engine = MakeEngine(SystemKind::kPensieve, model);
  ServingSummary summary = RunServingExperiment(engine.get(), trace);
  EXPECT_EQ(summary.completed_requests, trace.TotalRequests());
  EXPECT_GT(summary.throughput_rps, 0.0);
  EXPECT_GT(summary.p90_normalized_latency, 0.0);
}

TEST(DriverTest, StatelessEngineCompletesAllRequests) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace();
  auto engine = MakeEngine(SystemKind::kVllm, model);
  ServingSummary summary = RunServingExperiment(engine.get(), trace);
  EXPECT_EQ(summary.completed_requests, trace.TotalRequests());
  // Stateless engines recompute every history token.
  int64_t expected_history = 0;
  for (const TraceConversation& conv : trace.conversations()) {
    for (size_t t = 0; t < conv.spec.turns.size(); ++t) {
      expected_history += conv.spec.HistoryLenBeforeTurn(static_cast<int64_t>(t));
    }
  }
  EXPECT_EQ(summary.engine_stats.recomputed_history_tokens, expected_history);
}

TEST(DriverTest, CausalTurnOrdering) {
  // A conversation's turn t+1 never starts before turn t finished plus the
  // sampled think time.
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/10, /*rate=*/1.0,
                                   /*think=*/5.0, /*seed=*/3);
  auto engine = MakeEngine(SystemKind::kPensieve, model);
  ServingSummary summary = RunServingExperiment(engine.get(), trace);
  EXPECT_EQ(summary.completed_requests, trace.TotalRequests());
}

TEST(DriverTest, DeterministicAcrossRuns) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace();
  auto e1 = MakeEngine(SystemKind::kPensieve, model);
  auto e2 = MakeEngine(SystemKind::kPensieve, model);
  ServingSummary s1 = RunServingExperiment(e1.get(), trace);
  ServingSummary s2 = RunServingExperiment(e2.get(), trace);
  EXPECT_DOUBLE_EQ(s1.makespan, s2.makespan);
  EXPECT_DOUBLE_EQ(s1.p90_normalized_latency, s2.p90_normalized_latency);
}

TEST(DriverTest, MaxStepsGuardStopsEarly) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(100, 5.0, 10.0);
  auto engine = MakeEngine(SystemKind::kPensieve, model);
  DriverOptions options;
  options.max_steps = 5;
  ServingSummary summary = RunServingExperiment(engine.get(), trace, options);
  EXPECT_LT(summary.completed_requests, trace.TotalRequests());
}

TEST(ExperimentTest, CapacityMatchesPaperConfiguration) {
  // 40 GB of KV per GPU: OPT-13B stores ~52K tokens, Llama 2-13B (GQA/4)
  // stores 4x that.
  HardwareSpec hw = A100Spec(1);
  const int64_t opt_tokens = GpuKvCacheTokens(Opt13BConfig(), hw);
  const int64_t llama_tokens = GpuKvCacheTokens(Llama2_13BConfig(), hw);
  EXPECT_NEAR(static_cast<double>(opt_tokens), 52400.0, 2000.0);
  // GQA group 4 => 4x the token capacity (up to integer rounding).
  EXPECT_NEAR(static_cast<double>(llama_tokens) / static_cast<double>(opt_tokens),
              4.0, 1e-3);
}

TEST(ExperimentTest, MakeEngineProducesAllSystems) {
  GpuCostModel model = Opt13BModel();
  EXPECT_EQ(MakeEngine(SystemKind::kPensieve, model)->name(), "pensieve");
  EXPECT_EQ(MakeEngine(SystemKind::kPensieveGpuOnly, model)->name(),
            "pensieve-gpu-cache");
  EXPECT_EQ(MakeEngine(SystemKind::kVllm, model)->name(), "vllm");
  EXPECT_EQ(MakeEngine(SystemKind::kTensorRtLlm, model)->name(), "tensorrt-llm");
}

TEST(ExperimentTest, RateSweepReturnsOnePointPerRate) {
  GpuCostModel model = Opt13BModel();
  SweepOptions options;
  options.num_conversations = 10;
  std::vector<SweepPoint> points =
      RateSweep(SystemKind::kVllm, model, ShareGptProfile(), {0.2, 0.5}, options);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].conversation_rate, 0.2);
  EXPECT_GT(points[1].summary.completed_requests, 0);
}

}  // namespace
}  // namespace pensieve

// Tests for the cluster serving layer: routing policies, the inter-replica
// interconnect, and the multi-replica experiment driver.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/cluster/cluster_driver.h"
#include "src/cluster/router.h"
#include "src/core/experiment.h"
#include "src/model/model_config.h"
#include "src/serving/driver.h"
#include "src/serving/experiment_core.h"
#include "src/sim/cluster_link.h"
#include "src/sim/hardware.h"

namespace pensieve {
namespace {

GpuCostModel Opt13BModel() {
  return GpuCostModel(Opt13BConfig(), A100Spec(1));
}

WorkloadTrace SmallTrace(int64_t conversations = 20, double rate = 0.5,
                         double think = 10.0, uint64_t seed = 1) {
  TraceOptions options;
  options.num_conversations = conversations;
  options.conversation_rate = rate;
  options.mean_think_time = think;
  options.seed = seed;
  return WorkloadTrace(ShareGptProfile(), options);
}

ReplicaEngineFactory PensieveFactory(const GpuCostModel& model) {
  return [&model](int32_t) { return MakeEngine(SystemKind::kPensieve, model); };
}

void ExpectStatsEq(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_EQ(a.prefill_tokens, b.prefill_tokens);
  EXPECT_EQ(a.reused_gpu_tokens, b.reused_gpu_tokens);
  EXPECT_EQ(a.reused_cpu_tokens, b.reused_cpu_tokens);
  EXPECT_EQ(a.recomputed_history_tokens, b.recomputed_history_tokens);
  EXPECT_EQ(a.suspensions, b.suspensions);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.forced_swap_out_tokens, b.forced_swap_out_tokens);
  EXPECT_EQ(a.aot_swap_out_tokens, b.aot_swap_out_tokens);
  EXPECT_EQ(a.dropped_tokens, b.dropped_tokens);
  EXPECT_EQ(a.migrated_out_tokens, b.migrated_out_tokens);
  EXPECT_EQ(a.migrated_in_tokens, b.migrated_in_tokens);
  EXPECT_DOUBLE_EQ(a.busy_seconds, b.busy_seconds);
  EXPECT_DOUBLE_EQ(a.recompute_seconds, b.recompute_seconds);
  EXPECT_DOUBLE_EQ(a.restore_stall_seconds, b.restore_stall_seconds);
}

// Bit-for-bit: identical completions, identical virtual-time metrics.
void ExpectSummaryEq(const ServingSummary& a, const ServingSummary& b) {
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.window_begin, b.window_begin);
  EXPECT_DOUBLE_EQ(a.window_end, b.window_end);
  EXPECT_EQ(a.window_completions, b.window_completions);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_DOUBLE_EQ(a.token_throughput, b.token_throughput);
  EXPECT_DOUBLE_EQ(a.mean_normalized_latency, b.mean_normalized_latency);
  EXPECT_DOUBLE_EQ(a.p50_normalized_latency, b.p50_normalized_latency);
  EXPECT_DOUBLE_EQ(a.p90_normalized_latency, b.p90_normalized_latency);
  EXPECT_DOUBLE_EQ(a.p99_normalized_latency, b.p99_normalized_latency);
  ExpectStatsEq(a.engine_stats, b.engine_stats);
}

TEST(ClusterInterconnectTest, TransferTimeIsLatencyPlusSerialization) {
  InterconnectSpec spec;
  spec.bandwidth = 1e9;
  spec.latency = 1e-3;
  ClusterInterconnect link(2, spec);
  const double done = link.ScheduleTransfer(0, 1, /*now=*/1.0, /*bytes=*/1e9);
  EXPECT_DOUBLE_EQ(done, 1.0 + 1e-3 + 1.0);
  EXPECT_EQ(link.num_transfers(), 1);
  EXPECT_DOUBLE_EQ(link.total_bytes(), 1e9);
}

TEST(ClusterInterconnectTest, PortsSerializeIndependentPairsDoNot) {
  InterconnectSpec spec;
  spec.bandwidth = 1e9;
  spec.latency = 0.0;
  ClusterInterconnect link(4, spec);
  const double first = link.ScheduleTransfer(0, 1, 0.0, 1e9);   // 0 -> 1s
  const double second = link.ScheduleTransfer(0, 2, 0.0, 1e9);  // egress busy
  const double third = link.ScheduleTransfer(2, 3, 0.0, 1e9);   // free pair
  EXPECT_DOUBLE_EQ(first, 1.0);
  EXPECT_DOUBLE_EQ(second, 2.0);  // queued behind replica 0's egress
  EXPECT_DOUBLE_EQ(third, 1.0);   // 2 -> 3 shares no port with 0 -> 1
}

TEST(RouterTest, RoundRobinRotates) {
  RouterOptions options;
  options.policy = RouterPolicy::kRoundRobin;
  auto router = MakeRouter(options);
  std::vector<ReplicaView> replicas(3);
  Request req;
  for (int i = 0; i < 6; ++i) {
    req.conversation_id = i;
    EXPECT_EQ(router->Route(req, replicas).target, i % 3);
  }
}

TEST(RouterTest, LeastLoadedPicksFewestOutstandingTokens) {
  RouterOptions options;
  options.policy = RouterPolicy::kLeastLoaded;
  auto router = MakeRouter(options);
  std::vector<ReplicaView> replicas(3);
  replicas[0].load.queued_input_tokens = 100;
  replicas[1].load.outstanding_output_tokens = 10;
  replicas[2].load.queued_input_tokens = 50;
  Request req;
  EXPECT_EQ(router->Route(req, replicas).target, 1);
}

TEST(RouterTest, SessionAffinityKeepsConversationHome) {
  RouterOptions options;
  options.policy = RouterPolicy::kSessionAffinity;
  auto router = MakeRouter(options);
  std::vector<ReplicaView> replicas(2);
  replicas[0].load.queued_input_tokens = 100;
  Request req;
  req.conversation_id = 7;
  // First contact lands least-loaded (replica 1).
  EXPECT_EQ(router->Route(req, replicas).target, 1);
  // Later turns return home even when the other replica is now emptier.
  replicas[0].load.queued_input_tokens = 0;
  replicas[1].load.queued_input_tokens = 40;
  RoutingDecision decision = router->Route(req, replicas);
  EXPECT_EQ(decision.target, 1);
  EXPECT_FALSE(decision.migrate);
}

TEST(RouterTest, SessionAffinityFailsOverWhenHomeOverloaded) {
  RouterOptions options;
  options.policy = RouterPolicy::kSessionAffinity;
  options.min_overload_tokens = 10;
  options.overload_factor = 1.5;
  auto router = MakeRouter(options);
  std::vector<ReplicaView> replicas(2);
  Request req;
  req.conversation_id = 3;
  ASSERT_EQ(router->Route(req, replicas).target, 0);  // first contact
  // Home now far above both the absolute floor and the cluster mean.
  replicas[0].load.queued_input_tokens = 1000;
  replicas[1].load.queued_input_tokens = 10;
  RoutingDecision decision = router->Route(req, replicas);
  EXPECT_EQ(decision.target, 1);
  EXPECT_EQ(decision.source, 0);
  EXPECT_EQ(router->counters().rehomes, 1);
  // The conversation is re-homed: the next turn goes to replica 1 directly.
  replicas[0].load.queued_input_tokens = 0;
  replicas[1].load.queued_input_tokens = 0;
  EXPECT_EQ(router->Route(req, replicas).target, 1);
}

TEST(RouterTest, SessionAffinityQueuesAtHomeWhenMigrationDisabled) {
  RouterOptions options;
  options.policy = RouterPolicy::kSessionAffinity;
  options.min_overload_tokens = 10;
  options.overload_factor = 1.5;
  options.migrate_on_overload = false;
  auto router = MakeRouter(options);
  std::vector<ReplicaView> replicas(2);
  Request req;
  req.conversation_id = 3;
  ASSERT_EQ(router->Route(req, replicas).target, 0);
  replicas[0].load.queued_input_tokens = 1000;
  RoutingDecision decision = router->Route(req, replicas);
  EXPECT_EQ(decision.target, 0);
  EXPECT_FALSE(decision.migrate);
  EXPECT_EQ(router->counters().overload_queued, 1);
}

// A 1-replica cluster must reproduce the single-engine experiment exactly,
// whatever the routing policy: every policy maps all requests to replica 0
// and the cluster event loop collapses to the single driver's.
TEST(ClusterDriverTest, OneReplicaMatchesSingleEngineBitForBit) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace();
  auto single_engine = MakeEngine(SystemKind::kPensieve, model);
  ServingSummary single = RunServingExperiment(single_engine.get(), trace);

  for (RouterPolicy policy :
       {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
        RouterPolicy::kSessionAffinity}) {
    ClusterOptions options;
    options.num_replicas = 1;
    options.router.policy = policy;
    ClusterSummary cluster =
        RunClusterExperiment(PensieveFactory(model), trace, options);
    SCOPED_TRACE(RouterPolicyName(policy));
    ASSERT_EQ(cluster.replicas.size(), 1u);
    ExpectSummaryEq(cluster.replicas[0], single);
    ExpectSummaryEq(cluster.cluster, single);
    EXPECT_EQ(cluster.migration.migrations, 0);
    EXPECT_EQ(cluster.migration.rehomes, 0);
  }
}

TEST(ClusterDriverTest, OneReplicaMatchesSingleEngineForStatelessBaseline) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace();
  auto single_engine = MakeEngine(SystemKind::kVllm, model);
  ServingSummary single = RunServingExperiment(single_engine.get(), trace);

  ClusterOptions options;
  options.num_replicas = 1;
  options.router.policy = RouterPolicy::kSessionAffinity;
  ClusterSummary cluster = RunClusterExperiment(
      [&model](int32_t) { return MakeEngine(SystemKind::kVllm, model); }, trace,
      options);
  ExpectSummaryEq(cluster.cluster, single);
}

TEST(ClusterDriverTest, AffinityBeatsRoundRobinOnCacheHits) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/40, /*rate=*/1.0,
                                   /*think=*/5.0, /*seed=*/7);

  auto run = [&](RouterPolicy policy) {
    ClusterOptions options;
    options.num_replicas = 2;
    options.router.policy = policy;
    return RunClusterExperiment(PensieveFactory(model), trace, options);
  };
  ClusterSummary round_robin = run(RouterPolicy::kRoundRobin);
  ClusterSummary affinity = run(RouterPolicy::kSessionAffinity);

  EXPECT_EQ(round_robin.cluster.completed_requests, trace.TotalRequests());
  EXPECT_EQ(affinity.cluster.completed_requests, trace.TotalRequests());
  // Routing conversations back to the replica that caches their KV is the
  // whole point: strictly more history served from cache.
  EXPECT_GT(affinity.cluster.engine_stats.CacheHitRate(),
            round_robin.cluster.engine_stats.CacheHitRate());
}

TEST(ClusterDriverTest, ConservationAcrossReplicas) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/30, /*rate=*/1.0,
                                   /*think=*/5.0, /*seed=*/11);
  ClusterOptions options;
  options.num_replicas = 3;
  options.router.policy = RouterPolicy::kLeastLoaded;
  std::vector<RequestOutcome> outcomes;
  options.outcomes = &outcomes;
  ClusterSummary summary =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  // Every request completes on exactly one replica.
  int64_t per_replica_total = 0;
  for (const ServingSummary& r : summary.replicas) {
    per_replica_total += r.completed_requests;
  }
  EXPECT_EQ(per_replica_total, trace.TotalRequests());
  EXPECT_EQ(summary.cluster.completed_requests, trace.TotalRequests());
  EXPECT_EQ(static_cast<int64_t>(outcomes.size()), trace.TotalRequests());
}

TEST(ClusterDriverTest, MigrationAccountingIsConsistent) {
  GpuCostModel model = Opt13BModel();
  // Aggressive failover thresholds so the bursty trace actually re-homes.
  WorkloadTrace trace = SmallTrace(/*conversations=*/60, /*rate=*/4.0,
                                   /*think=*/2.0, /*seed=*/13);
  ClusterOptions options;
  options.num_replicas = 2;
  options.router.policy = RouterPolicy::kSessionAffinity;
  options.router.min_overload_tokens = 64;
  options.router.overload_factor = 1.1;
  ClusterSummary summary =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  EXPECT_EQ(summary.cluster.completed_requests, trace.TotalRequests());
  ASSERT_GT(summary.migration.rehomes, 0);
  ASSERT_GT(summary.migration.migrations, 0);
  EXPECT_GT(summary.migration.migrated_bytes, 0.0);
  EXPECT_GE(summary.migration.migration_stall_seconds, 0.0);

  // Each migrated token is charged to exactly one importer: the cluster-wide
  // imported total is the sum of per-replica adopted counts, and nobody can
  // adopt more than was shipped.
  int64_t imported = 0;
  int64_t exported = 0;
  for (const ServingSummary& r : summary.replicas) {
    imported += r.engine_stats.migrated_in_tokens;
    exported += r.engine_stats.migrated_out_tokens;
  }
  EXPECT_EQ(summary.migration.migrated_tokens, imported);
  EXPECT_EQ(summary.cluster.engine_stats.migrated_in_tokens, imported);
  EXPECT_EQ(summary.cluster.engine_stats.migrated_out_tokens, exported);
  EXPECT_LE(imported, exported);
  EXPECT_GT(exported, 0);
}

TEST(ClusterDriverTest, DeterministicAcrossRuns) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/25, /*rate=*/1.0,
                                   /*think=*/5.0, /*seed=*/17);
  ClusterOptions options;
  options.num_replicas = 2;
  options.router.policy = RouterPolicy::kSessionAffinity;
  ClusterSummary s1 = RunClusterExperiment(PensieveFactory(model), trace, options);
  ClusterSummary s2 = RunClusterExperiment(PensieveFactory(model), trace, options);
  ExpectSummaryEq(s1.cluster, s2.cluster);
  EXPECT_DOUBLE_EQ(s1.load_imbalance, s2.load_imbalance);
  EXPECT_EQ(s1.migration.migrations, s2.migration.migrations);
}

TEST(RouterTest, RoundRobinSkipsDeadReplicas) {
  RouterOptions options;
  options.policy = RouterPolicy::kRoundRobin;
  auto router = MakeRouter(options);
  std::vector<ReplicaView> replicas(3);
  router->NotifyReplicaDown(1);  // no-op for round-robin, but legal
  replicas[1].alive = false;
  Request req;
  EXPECT_EQ(router->Route(req, replicas).target, 0);
  EXPECT_EQ(router->Route(req, replicas).target, 2);
  EXPECT_EQ(router->Route(req, replicas).target, 0);
  EXPECT_EQ(router->Route(req, replicas).target, 2);
  // The rotation picks replica 1 back up once it is alive again.
  replicas[1].alive = true;
  EXPECT_EQ(router->Route(req, replicas).target, 0);
  EXPECT_EQ(router->Route(req, replicas).target, 1);
  EXPECT_EQ(router->Route(req, replicas).target, 2);
}

TEST(RouterTest, LeastLoadedSkipsDeadReplicas) {
  RouterOptions options;
  options.policy = RouterPolicy::kLeastLoaded;
  auto router = MakeRouter(options);
  std::vector<ReplicaView> replicas(3);
  // Replica 1 would win on load, but it is dead.
  replicas[0].load.queued_input_tokens = 100;
  replicas[1].alive = false;
  replicas[2].load.queued_input_tokens = 50;
  Request req;
  EXPECT_EQ(router->Route(req, replicas).target, 2);
}

TEST(RouterTest, SessionAffinityRehomesAfterReplicaDown) {
  RouterOptions options;
  options.policy = RouterPolicy::kSessionAffinity;
  auto router = MakeRouter(options);
  std::vector<ReplicaView> replicas(2);
  replicas[0].load.queued_input_tokens = 100;
  Request req;
  req.conversation_id = 5;
  ASSERT_EQ(router->Route(req, replicas).target, 1);  // home = 1

  // The home dies: its KV is gone, so the affinity entry must go with it and
  // the conversation re-homes as first contact onto an alive replica.
  router->NotifyReplicaDown(1);
  replicas[1].alive = false;
  RoutingDecision decision = router->Route(req, replicas);
  EXPECT_EQ(decision.target, 0);
  EXPECT_FALSE(decision.migrate);  // nothing to migrate from a dead replica
  // The new home sticks even after the old one recovers (empty anyway).
  router->NotifyReplicaUp(1);
  replicas[1].alive = true;
  replicas[0].load.queued_input_tokens = 100;
  EXPECT_EQ(router->Route(req, replicas).target, 0);
}

TEST(ClusterDriverTest, ReplicaFailureMidRunStillCompletesEverything) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/30, /*rate=*/1.0,
                                   /*think=*/5.0, /*seed=*/19);
  ClusterOptions options;
  options.num_replicas = 2;
  options.router.policy = RouterPolicy::kSessionAffinity;
  ClusterSummary baseline =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  options.faults.push_back(
      ReplicaFault{0.5 * ArrivalSpan(trace), /*replica_id=*/0,
                   /*recover=*/false});
  ClusterSummary faulted =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  // The survivor absorbs everything: no request is lost to the crash.
  EXPECT_EQ(faulted.cluster.completed_requests, trace.TotalRequests());
  EXPECT_EQ(faulted.faults.failures, 1);
  EXPECT_EQ(faulted.faults.recoveries, 0);
  EXPECT_EQ(faulted.faults.orphaned_requests, 0);
  EXPECT_GT(faulted.faults.lost_kv_tokens, 0);
  // Re-homed conversations restart their history from scratch.
  EXPECT_GE(faulted.cluster.engine_stats.recomputed_history_tokens,
            baseline.cluster.engine_stats.recomputed_history_tokens);
}

TEST(ClusterDriverTest, FailAndRecoverRoundTrip) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/30, /*rate=*/1.0,
                                   /*think=*/5.0, /*seed=*/23);
  const double span = ArrivalSpan(trace);
  ClusterOptions options;
  options.num_replicas = 2;
  options.router.policy = RouterPolicy::kRoundRobin;
  options.faults.push_back(ReplicaFault{0.3 * span, 0, /*recover=*/false});
  options.faults.push_back(ReplicaFault{0.6 * span, 0, /*recover=*/true});
  ClusterSummary summary =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  EXPECT_EQ(summary.cluster.completed_requests, trace.TotalRequests());
  EXPECT_EQ(summary.faults.failures, 1);
  EXPECT_EQ(summary.faults.recoveries, 1);
  // The recovered replica comes back empty but must end up serving work
  // again: its engine ran steps after t=0.6*span.
  ASSERT_EQ(summary.replicas.size(), 2u);
  EXPECT_GT(summary.replicas[0].engine_stats.steps, 0);
}

TEST(ClusterDriverTest, DeterministicAcrossRunsWithFaults) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/25, /*rate=*/1.0,
                                   /*think=*/5.0, /*seed=*/29);
  const double span = ArrivalSpan(trace);
  ClusterOptions options;
  options.num_replicas = 2;
  options.router.policy = RouterPolicy::kSessionAffinity;
  options.faults.push_back(ReplicaFault{0.4 * span, 1, /*recover=*/false});
  options.faults.push_back(ReplicaFault{0.8 * span, 1, /*recover=*/true});
  ClusterSummary s1 = RunClusterExperiment(PensieveFactory(model), trace, options);
  ClusterSummary s2 = RunClusterExperiment(PensieveFactory(model), trace, options);
  ExpectSummaryEq(s1.cluster, s2.cluster);
  EXPECT_EQ(s1.faults.failures, s2.faults.failures);
  EXPECT_EQ(s1.faults.recoveries, s2.faults.recoveries);
  EXPECT_EQ(s1.faults.rerouted_requests, s2.faults.rerouted_requests);
  EXPECT_EQ(s1.faults.orphaned_requests, s2.faults.orphaned_requests);
  EXPECT_EQ(s1.faults.lost_kv_tokens, s2.faults.lost_kv_tokens);
  EXPECT_EQ(s1.faults.lost_generated_tokens, s2.faults.lost_generated_tokens);
}

TEST(ClusterDriverTest, SoleReplicaCrashOrphansUntilRecovery) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/20, /*rate=*/1.0,
                                   /*think=*/5.0, /*seed=*/31);
  const double span = ArrivalSpan(trace);
  ClusterOptions options;
  options.num_replicas = 1;
  options.faults.push_back(ReplicaFault{0.2 * span, 0, /*recover=*/false});
  options.faults.push_back(ReplicaFault{0.9 * span, 0, /*recover=*/true});
  ClusterSummary summary =
      RunClusterExperiment(PensieveFactory(model), trace, options);

  // Arrivals during the outage had nowhere to go; the recovery flushes the
  // orphan buffer and the run still completes every request.
  EXPECT_GT(summary.faults.orphaned_requests, 0);
  EXPECT_EQ(summary.cluster.completed_requests, trace.TotalRequests());
}

TEST(ClusterDriverTest, CrashWithoutRecoveryTerminates) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/20, /*rate=*/1.0,
                                   /*think=*/5.0, /*seed=*/31);
  ClusterOptions options;
  options.num_replicas = 1;
  options.faults.push_back(
      ReplicaFault{0.2 * ArrivalSpan(trace), 0, /*recover=*/false});
  // The loop must drain the remaining arrival events into the orphan buffer
  // and exit rather than spin waiting for a replica that never comes back.
  ClusterSummary summary =
      RunClusterExperiment(PensieveFactory(model), trace, options);
  EXPECT_LT(summary.cluster.completed_requests, trace.TotalRequests());
  EXPECT_GT(summary.faults.orphaned_requests, 0);
  EXPECT_EQ(summary.faults.recoveries, 0);
}

TEST(ClusterDriverTest, StepTraceTagsReplicas) {
  GpuCostModel model = Opt13BModel();
  WorkloadTrace trace = SmallTrace(/*conversations=*/10);
  ClusterOptions options;
  options.num_replicas = 2;
  options.router.policy = RouterPolicy::kRoundRobin;
  std::vector<ClusterStepTraceEntry> step_trace;
  options.step_trace = &step_trace;
  RunClusterExperiment(PensieveFactory(model), trace, options);
  ASSERT_FALSE(step_trace.empty());
  bool saw[2] = {false, false};
  for (const ClusterStepTraceEntry& e : step_trace) {
    ASSERT_GE(e.replica_id, 0);
    ASSERT_LT(e.replica_id, 2);
    saw[e.replica_id] = true;
    EXPECT_GE(e.step.duration, 0.0);
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

}  // namespace
}  // namespace pensieve

// Tests for the reference transformer over the paged KV pool (src/model).

#include <gtest/gtest.h>

#include "src/kvcache/kv_pool.h"
#include "src/model/model_config.h"
#include "src/model/transformer.h"
#include "src/tensor/tensor.h"

namespace pensieve {
namespace {

// --- ModelConfig (paper Table 1) ---------------------------------------------

TEST(ModelConfigTest, Table1Presets) {
  ModelConfig opt13 = Opt13BConfig();
  EXPECT_EQ(opt13.num_layers, 40);
  EXPECT_EQ(opt13.hidden_size, 5120);
  EXPECT_EQ(opt13.num_heads, 40);
  EXPECT_EQ(opt13.num_kv_heads, 40);
  EXPECT_EQ(opt13.head_dim, 128);
  EXPECT_EQ(opt13.num_gpus, 1);

  ModelConfig opt66 = Opt66BConfig();
  EXPECT_EQ(opt66.num_layers, 64);
  EXPECT_EQ(opt66.hidden_size, 9216);
  EXPECT_EQ(opt66.num_heads, 72);
  EXPECT_EQ(opt66.num_kv_heads, 72);
  EXPECT_EQ(opt66.num_gpus, 4);

  ModelConfig llama13 = Llama2_13BConfig();
  EXPECT_EQ(llama13.num_layers, 40);
  EXPECT_EQ(llama13.hidden_size, 5120);
  EXPECT_EQ(llama13.num_kv_heads, 10);  // paper's GQA modification
  EXPECT_EQ(llama13.GqaGroupSize(), 4);

  ModelConfig llama70 = Llama2_70BConfig();
  EXPECT_EQ(llama70.num_layers, 80);
  EXPECT_EQ(llama70.hidden_size, 8192);
  EXPECT_EQ(llama70.num_kv_heads, 8);
  EXPECT_EQ(llama70.GqaGroupSize(), 8);
  EXPECT_EQ(llama70.num_gpus, 4);
}

TEST(ModelConfigTest, KvBytesMatchesPaperExample) {
  // Paper §3.2: a 13B GPT-3-like model stores 2 * 40 * 5120 * 2 B = 0.78 MB
  // per KV token.
  EXPECT_EQ(Opt13BConfig().KvBytesPerToken(), 2LL * 40 * 5120 * 2);
}

TEST(ModelConfigTest, GqaReducesKvBytes) {
  // Llama 2-13B with GQA group 4 needs 4x less KV memory than OPT-13B
  // (same layers/hidden/head size).
  EXPECT_EQ(Opt13BConfig().KvBytesPerToken() / Llama2_13BConfig().KvBytesPerToken(), 4);
  // Llama 2-70B uses GQA group 8.
  ModelConfig llama70 = Llama2_70BConfig();
  EXPECT_EQ(llama70.KvBytesPerToken(),
            2 * llama70.num_layers * 8 * 128 * 2);
}

TEST(ModelConfigTest, KvCacheGrowthRatioOpt13ToOpt66) {
  // Paper §6.3: OPT-13B -> OPT-66B grows KV size per token by 2.88x
  // (# layer x # hidden doubles disproportionately to compute).
  const double ratio = static_cast<double>(Opt66BConfig().KvBytesPerToken()) /
                       static_cast<double>(Opt13BConfig().KvBytesPerToken());
  EXPECT_NEAR(ratio, 2.88, 0.01);
}

TEST(ModelConfigTest, LookupByName) {
  ModelConfig c;
  EXPECT_TRUE(ModelConfigByName("opt-66b", &c));
  EXPECT_EQ(c.name, "opt-66b");
  EXPECT_TRUE(ModelConfigByName("tiny-llama", &c));
  EXPECT_EQ(c.num_kv_heads, 2);
  EXPECT_FALSE(ModelConfigByName("gpt-5", &c));
}

TEST(ModelConfigTest, ParamCountsRoughlyMatchNames) {
  EXPECT_NEAR(static_cast<double>(Opt13BConfig().ApproxParamCount()), 13e9, 2e9);
  EXPECT_NEAR(static_cast<double>(Opt66BConfig().ApproxParamCount()), 66e9, 8e9);
  EXPECT_NEAR(static_cast<double>(Llama2_13BConfig().ApproxParamCount()), 13e9, 2e9);
  EXPECT_NEAR(static_cast<double>(Llama2_70BConfig().ApproxParamCount()), 70e9, 8e9);
}

// --- Transformer forward ------------------------------------------------------

class TransformerForwardTest : public ::testing::TestWithParam<const char*> {
 protected:
  ModelConfig Config() const {
    ModelConfig config;
    EXPECT_TRUE(ModelConfigByName(GetParam(), &config));
    return config;
  }
};

// Helper: run a full prefill of `tokens` in one batch and return the logits
// of the final token.
Tensor FullPrefillLogits(const Transformer& model, KvPool* pool,
                         const std::vector<int32_t>& tokens,
                         const std::vector<BlockId>& table) {
  ForwardBatch batch;
  const int64_t n = static_cast<int64_t>(tokens.size());
  for (int64_t i = 0; i < n; ++i) {
    batch.tokens.push_back(tokens[static_cast<size_t>(i)]);
    batch.positions.push_back(i);
    batch.kv_slots.push_back({table[static_cast<size_t>(i / pool->block_size())],
                              i % pool->block_size()});
  }
  batch.subs.push_back({0, n, n, &table});
  batch.logit_rows.push_back(n - 1);
  return model.Forward(pool, batch);
}

TEST_P(TransformerForwardTest, DeterministicAcrossInstances) {
  ModelConfig config = Config();
  Transformer a(config, 7);
  Transformer b(config, 7);
  KvPool pool_a(4, 8, config.num_layers, config.num_kv_heads, config.head_dim);
  KvPool pool_b(4, 8, config.num_layers, config.num_kv_heads, config.head_dim);
  std::vector<BlockId> table = {0, 1, 2, 3};
  std::vector<int32_t> tokens = {5, 9, 13, 2, 88, 17};
  Tensor la = FullPrefillLogits(a, &pool_a, tokens, table);
  Tensor lb = FullPrefillLogits(b, &pool_b, tokens, table);
  EXPECT_FLOAT_EQ(MaxAbsDiff(la, lb), 0.0f);
}

TEST_P(TransformerForwardTest, DifferentSeedsGiveDifferentModels) {
  ModelConfig config = Config();
  Transformer a(config, 7);
  Transformer b(config, 8);
  KvPool pool_a(2, 8, config.num_layers, config.num_kv_heads, config.head_dim);
  KvPool pool_b(2, 8, config.num_layers, config.num_kv_heads, config.head_dim);
  std::vector<BlockId> table = {0, 1};
  std::vector<int32_t> tokens = {1, 2, 3};
  Tensor la = FullPrefillLogits(a, &pool_a, tokens, table);
  Tensor lb = FullPrefillLogits(b, &pool_b, tokens, table);
  EXPECT_GT(MaxAbsDiff(la, lb), 1e-3f);
}

TEST_P(TransformerForwardTest, IncrementalDecodeMatchesFullPrefill) {
  // The KV-cache property: prefill of [t0..t5] then decoding must give the
  // same logits as a longer prefill — here we check that processing the
  // last token incrementally (against cached context) equals processing
  // everything at once.
  ModelConfig config = Config();
  Transformer model(config, 21);
  std::vector<int32_t> tokens = {3, 14, 15, 92, 65, 35, 89, 79, 32};
  const int64_t n = static_cast<int64_t>(tokens.size());
  const int64_t block_size = 4;
  std::vector<BlockId> table = {0, 1, 2};

  // (a) One-shot prefill.
  KvPool pool_full(3, block_size, config.num_layers, config.num_kv_heads,
                   config.head_dim);
  Tensor full = FullPrefillLogits(model, &pool_full, tokens, table);

  // (b) Prefill of n-1 tokens, then a single-token decode step.
  KvPool pool_inc(3, block_size, config.num_layers, config.num_kv_heads,
                  config.head_dim);
  {
    ForwardBatch prefill;
    for (int64_t i = 0; i < n - 1; ++i) {
      prefill.tokens.push_back(tokens[static_cast<size_t>(i)]);
      prefill.positions.push_back(i);
      prefill.kv_slots.push_back({table[static_cast<size_t>(i / block_size)],
                                  i % block_size});
    }
    prefill.subs.push_back({0, n - 1, n - 1, &table});
    prefill.logit_rows.push_back(n - 2);
    model.Forward(&pool_inc, prefill);
  }
  ForwardBatch decode;
  decode.tokens.push_back(tokens[static_cast<size_t>(n - 1)]);
  decode.positions.push_back(n - 1);
  decode.kv_slots.push_back({table[static_cast<size_t>((n - 1) / block_size)],
                             (n - 1) % block_size});
  decode.subs.push_back({0, 1, n, &table});
  decode.logit_rows.push_back(0);
  Tensor incremental = model.Forward(&pool_inc, decode);

  EXPECT_LT(MaxAbsDiff(full, incremental), 2e-3f);
  EXPECT_EQ(Transformer::Greedy(full, 0), Transformer::Greedy(incremental, 0));
}

TEST_P(TransformerForwardTest, UnifiedBatchMatchesSeparateExecution) {
  // Two requests in one unified batch (one prefilling, one decoding) must
  // produce the same logits as running them in separate batches.
  ModelConfig config = Config();
  Transformer model(config, 33);
  const int64_t block_size = 4;

  // Request A: prefill 5 tokens. Request B: decode its 4th token.
  std::vector<int32_t> a_tokens = {10, 20, 30, 40, 50};
  std::vector<int32_t> b_history = {7, 8, 9};
  const int32_t b_next = 11;

  auto run = [&](bool unified) {
    KvPool pool(6, block_size, config.num_layers, config.num_kv_heads,
                config.head_dim);
    std::vector<BlockId> table_a = {0, 1};
    std::vector<BlockId> table_b = {2, 3};
    // Pre-populate B's history.
    {
      ForwardBatch warm;
      for (int64_t i = 0; i < 3; ++i) {
        warm.tokens.push_back(b_history[static_cast<size_t>(i)]);
        warm.positions.push_back(i);
        warm.kv_slots.push_back({table_b[static_cast<size_t>(i / block_size)],
                                 i % block_size});
      }
      warm.subs.push_back({0, 3, 3, &table_b});
      warm.logit_rows.push_back(2);
      model.Forward(&pool, warm);
    }
    if (unified) {
      ForwardBatch batch;
      for (int64_t i = 0; i < 5; ++i) {
        batch.tokens.push_back(a_tokens[static_cast<size_t>(i)]);
        batch.positions.push_back(i);
        batch.kv_slots.push_back({table_a[static_cast<size_t>(i / block_size)],
                                  i % block_size});
      }
      batch.tokens.push_back(b_next);
      batch.positions.push_back(3);
      batch.kv_slots.push_back({table_b[0], 3});
      batch.subs.push_back({0, 5, 5, &table_a});
      batch.subs.push_back({5, 1, 4, &table_b});
      batch.logit_rows.push_back(4);  // A's last token
      batch.logit_rows.push_back(5);  // B's decode token
      return model.Forward(&pool, batch);
    }
    // Separate: A prefill, then B decode; stitch the logits together.
    ForwardBatch a;
    for (int64_t i = 0; i < 5; ++i) {
      a.tokens.push_back(a_tokens[static_cast<size_t>(i)]);
      a.positions.push_back(i);
      a.kv_slots.push_back({table_a[static_cast<size_t>(i / block_size)],
                            i % block_size});
    }
    a.subs.push_back({0, 5, 5, &table_a});
    a.logit_rows.push_back(4);
    Tensor la = model.Forward(&pool, a);

    ForwardBatch b;
    b.tokens.push_back(b_next);
    b.positions.push_back(3);
    b.kv_slots.push_back({table_b[0], 3});
    b.subs.push_back({0, 1, 4, &table_b});
    b.logit_rows.push_back(0);
    Tensor lb = model.Forward(&pool, b);

    Tensor stitched({2, la.dim(1)});
    for (int64_t j = 0; j < la.dim(1); ++j) {
      stitched.at({0, j}) = la.at({0, j});
      stitched.at({1, j}) = lb.at({0, j});
    }
    return stitched;
  };

  Tensor unified = run(true);
  Tensor separate = run(false);
  EXPECT_LT(MaxAbsDiff(unified, separate), 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(Models, TransformerForwardTest,
                         ::testing::Values("tiny-opt", "tiny-llama"));

TEST(TransformerTest, GreedyPicksArgmax) {
  Tensor logits({2, 4}, {0.1f, 0.9f, 0.3f, 0.2f, 5.0f, 1.0f, 9.0f, 2.0f});
  EXPECT_EQ(Transformer::Greedy(logits, 0), 1);
  EXPECT_EQ(Transformer::Greedy(logits, 1), 2);
}

TEST(TransformerDeathTest, RejectsOutOfVocabToken) {
  ModelConfig config = TinyOptConfig();
  Transformer model(config, 3);
  KvPool pool(1, 8, config.num_layers, config.num_kv_heads, config.head_dim);
  std::vector<BlockId> table = {0};
  ForwardBatch batch;
  batch.tokens.push_back(static_cast<int32_t>(config.vocab_size));  // out of range
  batch.positions.push_back(0);
  batch.kv_slots.push_back({0, 0});
  batch.subs.push_back({0, 1, 1, &table});
  batch.logit_rows.push_back(0);
  EXPECT_DEATH(model.Forward(&pool, batch), "Check failed");
}

}  // namespace
}  // namespace pensieve
